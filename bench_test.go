// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI). Each benchmark regenerates its experiment and
// reports the headline quantities as custom metrics, printing the full
// table/series once so the output can be compared side by side with
// the paper (see EXPERIMENTS.md for the recorded comparison).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package ciflow_test

import (
	"fmt"
	"sync"
	"testing"

	"ciflow/internal/analysis"
	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// printOnce deduplicates the table dumps across -benchtime iterations.
var printOnce sync.Map

func dump(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(s)
	}
}

// BenchmarkTableII regenerates Table II (DRAM traffic and arithmetic
// intensity for MP/DC/OC, evks streamed, 32 MB on-chip).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := analysis.NewRunner() // fresh runner: measure generation, not the cache
		rows, err := r.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("table2", analysis.FormatTableII(rows))
			var best float64
			for _, row := range rows {
				if g := row.MB[0] / row.MB[2]; g > best {
					best = g
				}
			}
			b.ReportMetric(best, "max_MP/OC_traffic_x")
		}
	}
}

// BenchmarkTableIII regenerates Table III (parameter sets and sizes).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := analysis.FormatTableIII()
		if i == 0 {
			dump("table3", s)
		}
	}
}

// BenchmarkTableIV regenerates Table IV (OCbase bandwidth, bandwidth
// saving and OC speedup over MP).
func BenchmarkTableIV(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("table4", analysis.FormatTableIV(rows))
			var maxSp, maxSv float64
			for _, row := range rows {
				if row.Speedup > maxSp {
					maxSp = row.Speedup
				}
				if row.SavedBW > maxSv {
					maxSv = row.SavedBW
				}
			}
			b.ReportMetric(maxSp, "max_OC_speedup_x")
			b.ReportMetric(maxSv, "max_saved_BW_x")
		}
	}
}

// BenchmarkTableV regenerates Table V (configs matching ARK's
// saturation point).
func BenchmarkTableV(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.TableV()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("table5", analysis.FormatTableV(rows))
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (runtime vs bandwidth, three
// dataflows, evk on-chip), one sub-benchmark per paper panel.
func BenchmarkFigure4(b *testing.B) {
	r := analysis.NewRunner()
	for _, bench := range params.All() {
		bws := analysis.StdBandwidthsGBs
		if bench.Name == "ARK" || bench.Name == "BTS3" {
			bws = analysis.ExtBandwidthsGBs
		}
		b.Run(bench.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := r.Figure4(bench, bws)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					dump("fig4-"+bench.Name, analysis.FormatSweep(
						fmt.Sprintf("Figure 4 (%s)", bench.Name), pts))
					low := pts[0]
					b.ReportMetric(low.MS[0]/low.MS[2], "MP/OC_at_8GBs_x")
				}
			}
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5 (BTS3, evk streamed vs
// on-chip).
func BenchmarkFigure5(b *testing.B) {
	benchStream(b, params.BTS3, "fig5")
}

// BenchmarkFigure6 regenerates Figure 6 (ARK, evk streamed vs
// on-chip).
func BenchmarkFigure6(b *testing.B) {
	benchStream(b, params.ARK, "fig6")
}

func benchStream(b *testing.B, bench params.Benchmark, key string) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.FigureStream(bench, analysis.ExtBandwidthsGBs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump(key, analysis.FormatStream(
				fmt.Sprintf("Figure (%s): evk streamed vs on-chip", bench.Name), pts))
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 (OC streaming slowdown and
// equivalent bandwidth per benchmark).
func BenchmarkFigure7(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("fig7", analysis.FormatFigure7(rows))
			var worst float64
			for _, row := range rows {
				if row.Slowdown > worst {
					worst = row.Slowdown
				}
			}
			b.ReportMetric(worst, "max_stream_slowdown_x")
		}
	}
}

// BenchmarkFigure8 regenerates Figure 8 (ARK MODOPS sensitivity).
func BenchmarkFigure8(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		pts, err := r.Figure8(params.ARK, analysis.ExtBandwidthsGBs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("fig8", analysis.FormatFigure8("Figure 8 (ARK): OC at 1-16x MODOPS", pts))
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9 (equivalent configurations
// with streamed evks).
func BenchmarkFigure9(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		sat, base, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("fig9", analysis.FormatFigure9(sat, base))
		}
	}
}

// BenchmarkAblationKeyCompression regenerates the §IV-D key
// compression claim (AI up to 3.82 with 2x key compression).
func BenchmarkAblationKeyCompression(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationKeyCompression()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("keycomp", analysis.FormatKeyCompression(rows))
			var best float64
			for _, row := range rows {
				if row.AIComp > best {
					best = row.AIComp
				}
			}
			b.ReportMetric(best, "best_compressed_AI")
		}
	}
}

// BenchmarkAblationOCF regenerates the fused-ModDown extension
// comparison (OCF vs OC, beyond the paper).
func BenchmarkAblationOCF(b *testing.B) {
	r := analysis.NewRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.AblationOCF()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("ocf", analysis.FormatOCF(rows))
			var best float64
			for _, row := range rows {
				if row.SavedPct > best {
					best = row.SavedPct
				}
			}
			b.ReportMetric(best, "best_traffic_saved_%")
		}
	}
}

// BenchmarkMemorySweep regenerates the §IV working-set analysis.
func BenchmarkMemorySweep(b *testing.B) {
	sizes := []int64{8, 16, 32, 64, 128, 256, 512}
	for i := 0; i < b.N; i++ {
		pts, err := analysis.MemorySweep(params.BTS3, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			dump("memsweep", analysis.FormatMemory(params.BTS3, pts))
		}
	}
}

// BenchmarkScheduleGeneration measures raw schedule-generation cost
// per dataflow on the largest benchmark.
func BenchmarkScheduleGeneration(b *testing.B) {
	for _, df := range dataflow.AllDataflows() {
		b.Run(df.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dataflow.Generate(df, dataflow.Config{
					Bench: params.BTS3, DataMemBytes: 32 << 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
