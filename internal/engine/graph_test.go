package engine

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderRecorder collects node completion order under a lock so tests
// can assert dependency ordering.
type orderRecorder struct {
	mu    sync.Mutex
	order []int
}

func (o *orderRecorder) hit(id int) {
	o.mu.Lock()
	o.order = append(o.order, id)
	o.mu.Unlock()
}

func (o *orderRecorder) indexOf(id int) int {
	for i, v := range o.order {
		if v == id {
			return i
		}
	}
	return -1
}

func TestGraphRespectsDependencies(t *testing.T) {
	e := New(4)
	defer e.Close()
	// Diamond: 0 -> {1, 2} -> 3, plus a chain 0 -> 4 -> 5.
	rec := &orderRecorder{}
	g := NewGraph()
	n0 := g.Node(func() { rec.hit(0) })
	n1 := g.Node(func() { rec.hit(1) }, n0)
	n2 := g.Node(func() { rec.hit(2) }, n0)
	g.Node(func() { rec.hit(3) }, n1, n2)
	n4 := g.Node(func() { rec.hit(4) }, n0)
	g.Node(func() { rec.hit(5) }, n4)
	e.RunGraph(g)

	if len(rec.order) != 6 {
		t.Fatalf("ran %d nodes, want 6: %v", len(rec.order), rec.order)
	}
	before := func(a, b int) {
		t.Helper()
		if rec.indexOf(a) > rec.indexOf(b) {
			t.Fatalf("node %d completed after %d: %v", a, b, rec.order)
		}
	}
	before(0, 1)
	before(0, 2)
	before(1, 3)
	before(2, 3)
	before(0, 4)
	before(4, 5)
}

func TestGraphIsReusable(t *testing.T) {
	e := New(4)
	defer e.Close()
	var runs atomic.Int64
	g := NewGraph()
	a := g.Node(func() { runs.Add(1) })
	g.Node(func() { runs.Add(1) }, a)
	for i := 0; i < 10; i++ {
		e.RunGraph(g)
	}
	if runs.Load() != 20 {
		t.Fatalf("runs = %d, want 20", runs.Load())
	}
}

func TestGraphWideFanOut(t *testing.T) {
	e := New(4)
	defer e.Close()
	const width = 200
	var sum atomic.Int64
	g := NewGraph()
	root := g.Node(func() { sum.Add(1) })
	mids := make([]int, width)
	for i := 0; i < width; i++ {
		mids[i] = g.Node(func() { sum.Add(1) }, root)
	}
	g.Node(func() { sum.Add(1) }, mids...)
	e.RunGraph(g)
	if sum.Load() != width+2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), width+2)
	}
}

func TestGraphInvalidDependencyPanics(t *testing.T) {
	g := NewGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("forward dependency accepted")
		}
	}()
	g.Node(func() {}, 3)
}

func TestGraphEmptyRun(t *testing.T) {
	e := New(2)
	defer e.Close()
	if err := e.RunGraphCtx(context.Background(), NewGraph()); err != nil {
		t.Fatal(err)
	}
}

func TestGraphPanicPropagates(t *testing.T) {
	e := New(4)
	defer e.Close()
	g := NewGraph()
	a := g.Node(func() { panic("node boom") })
	g.Node(func() {}, a)
	defer func() {
		if r := recover(); r != "node boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	e.RunGraph(g)
	t.Fatal("unreachable: panic did not propagate")
}

func TestGraphCancellation(t *testing.T) {
	e := New(2)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())

	var started, ran atomic.Int64
	release := make(chan struct{})
	g := NewGraph()
	// Two slow roots occupy the workers; a long tail of dependents
	// must be skipped after cancellation.
	r1 := g.Node(func() { started.Add(1); <-release; ran.Add(1) })
	r2 := g.Node(func() { started.Add(1); <-release; ran.Add(1) })
	prev := []int{r1, r2}
	for i := 0; i < 50; i++ {
		prev = []int{g.Node(func() { ran.Add(1) }, prev...)}
	}

	done := make(chan error, 1)
	go func() { done <- e.RunGraphCtx(ctx, g) }()

	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The two in-flight roots finish; the dependent chain is skipped
	// (scheduling is concurrent, so allow a small prefix to slip in,
	// but the 50-node tail must not have fully run).
	if got := ran.Load(); got >= 52 {
		t.Fatalf("cancellation skipped nothing: ran %d nodes", got)
	}
	// The graph must remain reusable after a cancelled run.
	var again atomic.Int64
	g2 := NewGraph()
	g2.Node(func() { again.Add(1) })
	if err := e.RunGraphCtx(context.Background(), g2); err != nil {
		t.Fatal(err)
	}
	if again.Load() != 1 {
		t.Fatal("engine unusable after cancellation")
	}
}

func TestGraphPreCancelledContext(t *testing.T) {
	e := New(2)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	g := NewGraph()
	g.Node(func() { ran.Add(1) })
	if err := e.RunGraphCtx(ctx, g); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 0 {
		t.Fatal("pre-cancelled run executed nodes")
	}
}

func TestGraphRunsOnClosedEngineInline(t *testing.T) {
	e := New(2)
	e.Close()
	var n atomic.Int64
	g := NewGraph()
	a := g.Node(func() { n.Add(1) })
	g.Node(func() { n.Add(1) }, a)
	e.RunGraph(g)
	if n.Load() != 2 {
		t.Fatalf("closed-engine graph ran %d/2 nodes", n.Load())
	}
}
