// Package engine is a dataflow-aware parallel execution runtime for
// the hybrid key-switching pipelines this repository models. Where
// internal/dataflow *simulates* the MP/DC/OC stage graphs on the RPU
// cost model, engine *executes* them: a fixed pool of worker
// goroutines (sized to GOMAXPROCS by default, injectable for tests)
// runs per-tower and per-digit tasks connected by the same dependency
// structure, so the dataflow choice becomes a measurable wall-clock
// effect on real hardware.
//
// The package provides two building blocks:
//
//   - Engine: the worker pool itself, with a deadlock-free
//     ParallelFor in which the calling goroutine always participates
//     (nested parallel sections degrade gracefully instead of
//     starving the pool).
//   - Graph: a reusable dependency DAG of tasks executed by the pool
//     with atomic in-degree counting (graph.go).
//
// Limb-buffer reuse lives with the data owners (internal/bconv pools
// its conversion scratch, internal/hks pools whole switch states), so
// steady-state key switching performs no per-operation allocations on
// the hot path.
//
// The engine is deliberately policy-free: it executes whatever graph
// shape it is handed. internal/hks builds the per-switch and hoisted
// graphs on it, and internal/serve layers request-level scheduling on
// top — its batch executor fans coalesced request groups out with
// ParallelFor while each group's hoist and replay run as nested
// graphs, which the pool supports by construction (waiters help run
// queued tasks instead of starving them).
//
// Engines are cheap but not free (one goroutine per worker): create
// one per process or per benchmark configuration and Close it when
// done. The package-level Default engine is lazily created and lives
// for the process lifetime.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer receives a span for every *named* graph node the engine
// executes (see Graph.NodeNamed). internal/obs provides the standard
// implementation; the interface lives here so the engine does not
// depend on the observability layer. Implementations must be safe for
// concurrent use — spans arrive from every worker at once.
type Tracer interface {
	Span(name string, start, end time.Time)
}

// tracerBox wraps the interface so atomic.Value accepts differing
// concrete types (including nil).
type tracerBox struct{ t Tracer }

var tracer atomic.Value // tracerBox

// SetTracer installs (or, with nil, removes) the process-wide tracer.
// Tracing applies only to named graph nodes; unnamed nodes and
// ParallelFor bodies are never traced, so the zero-overhead default
// is preserved for them.
func SetTracer(t Tracer) { tracer.Store(tracerBox{t: t}) }

// currentTracer returns the installed tracer, or nil.
func currentTracer() Tracer {
	if b, ok := tracer.Load().(tracerBox); ok {
		return b.t
	}
	return nil
}

// Engine is a fixed-size worker pool executing func() tasks. The zero
// value is not usable; construct with New. Safe for concurrent use.
type Engine struct {
	workers int

	mu     sync.Mutex
	closed bool
	jobs   chan func()
	wg     sync.WaitGroup
}

// New starts an engine with the given number of workers; workers <= 0
// selects GOMAXPROCS. Call Close to release the worker goroutines.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		workers: workers,
		jobs:    make(chan func(), 4*workers),
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns a process-wide engine sized to GOMAXPROCS, created
// on first use and never closed.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close stops the workers after they drain any queued tasks. It is
// idempotent and safe to call concurrently with task submission:
// sections submitted after (or racing with) Close simply run on the
// calling goroutine.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs) // no sends can race: every send holds mu and checks closed
	e.mu.Unlock()
	e.wg.Wait()
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for f := range e.jobs {
		f()
	}
}

// trySubmit enqueues f if the engine is open and the queue has room.
// Callers fall back to running f inline, which keeps every construct
// in this package deadlock-free by construction: work never waits on
// queue capacity.
func (e *Engine) trySubmit(f func()) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	select {
	case e.jobs <- f:
		return true
	default:
		return false
	}
}

// ParallelFor runs fn(0..n-1) across the pool and returns when every
// iteration has completed. Iterations are claimed dynamically from a
// shared counter, so uneven task sizes balance automatically. The
// caller participates as one worker and then parks until the last
// in-flight iteration completes — every iteration is claimed by a
// running body, so no queue helping is needed for progress, sections
// nest safely, and a closed engine degrades to a serial loop. A panic
// in fn is re-raised on the calling goroutine after all iterations
// finish.
func (e *Engine) ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var next, completed atomic.Int64
	done := make(chan struct{})
	var pmu sync.Mutex
	var panicked any
	body := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						pmu.Lock()
						if panicked == nil {
							panicked = r
						}
						pmu.Unlock()
					}
					if completed.Add(1) == int64(n) {
						close(done)
					}
				}()
				fn(int(i))
			}()
		}
	}
	for i := 0; i < w-1; i++ {
		if !e.trySubmit(body) {
			break // saturated or closed: the caller will do the work
		}
	}
	body()
	if completed.Load() < int64(n) {
		<-done
	}
	if panicked != nil {
		panic(panicked)
	}
}
