package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForRunsEveryIteration(t *testing.T) {
	e := New(4)
	defer e.Close()
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]atomic.Int32, n)
		e.ParallelFor(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: iteration %d ran %d times", n, i, got)
			}
		}
	}
}

func TestParallelForSingleWorkerIsSerial(t *testing.T) {
	e := New(1)
	defer e.Close()
	order := make([]int, 0, 10)
	e.ParallelFor(10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order %v not serial", order)
		}
	}
}

func TestParallelForNested(t *testing.T) {
	// Nested sections must not deadlock even when all workers are
	// occupied by the outer loop: callers help drain the queue.
	e := New(3)
	defer e.Close()
	var total atomic.Int64
	e.ParallelFor(8, func(i int) {
		e.ParallelFor(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested total = %d, want 64", total.Load())
	}
}

func TestParallelForConcurrentSections(t *testing.T) {
	e := New(4)
	defer e.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.ParallelFor(100, func(i int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 800 {
		t.Fatalf("total = %d, want 800", total.Load())
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	e := New(4)
	defer e.Close()
	var completed atomic.Int64
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// Every iteration must have finished (or panicked) before the
		// panic is re-raised; the engine must remain usable.
		var n atomic.Int64
		e.ParallelFor(10, func(i int) { n.Add(1) })
		if n.Load() != 10 {
			t.Fatalf("engine unusable after panic: %d/10", n.Load())
		}
		_ = completed.Load()
	}()
	e.ParallelFor(16, func(i int) {
		if i == 7 {
			panic("boom")
		}
		completed.Add(1)
	})
	t.Fatal("unreachable: panic did not propagate")
}

func TestCloseIsIdempotentAndDrains(t *testing.T) {
	e := New(2)
	var n atomic.Int64
	e.ParallelFor(50, func(i int) { n.Add(1) })
	e.Close()
	e.Close() // second close is a no-op
	if n.Load() != 50 {
		t.Fatalf("work lost before close: %d/50", n.Load())
	}
}

func TestParallelForAfterCloseRunsInline(t *testing.T) {
	e := New(4)
	e.Close()
	var n atomic.Int64
	e.ParallelFor(20, func(i int) { n.Add(1) })
	if n.Load() != 20 {
		t.Fatalf("after close: %d/20 iterations", n.Load())
	}
}

func TestCloseConcurrentWithSubmission(t *testing.T) {
	// Shutdown racing with active sections must neither deadlock nor
	// lose iterations.
	e := New(4)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				e.ParallelFor(25, func(i int) { total.Add(1) })
			}
		}()
	}
	e.Close()
	wg.Wait()
	if total.Load() != 4*20*25 {
		t.Fatalf("total = %d, want %d", total.Load(), 4*20*25)
	}
}

func TestDefaultEngine(t *testing.T) {
	e := Default()
	if e != Default() {
		t.Fatal("Default not a singleton")
	}
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
	var n atomic.Int64
	e.ParallelFor(10, func(i int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatal("default engine lost work")
	}
}

func TestNewZeroWorkersUsesGOMAXPROCS(t *testing.T) {
	e := New(0)
	defer e.Close()
	if e.Workers() < 1 {
		t.Fatalf("workers = %d", e.Workers())
	}
}
