package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Graph is a dependency DAG of tasks, the execution-time counterpart
// of the stage graphs internal/dataflow generates for the RPU model:
// each node is one tile of work (an NTT of one tower, a BConv of one
// output tower, one digit's pipeline, ...) and edges are the data
// dependencies of the chosen dataflow.
//
// Nodes are added in topological order (a node may only depend on
// already-created nodes), which makes cycles impossible by
// construction. A Graph is reusable — Run resets the dependency
// counters — but must not be run concurrently with itself. Pool
// graphs (e.g. with sync.Pool) to run the same pipeline shape on
// overlapping requests.
type Graph struct {
	nodes []gnode

	// Per-run state; a Graph runs one execution at a time.
	rem       []int32
	completed atomic.Int64
	aborted   atomic.Bool
	pmu       sync.Mutex
	panicked  any
	eng       *Engine
	ctx       context.Context
	done      chan struct{} // closed by the node that completes the run
}

type gnode struct {
	run   func()
	name  string // non-empty: emit a tracer span around run
	succ  []int32
	ndeps int32
	task  func() // prebuilt submit thunk, so runs allocate nothing
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return &Graph{} }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Node adds a task that runs after every listed dependency has
// completed, returning its id for use as a dependency of later nodes.
// Dependencies must be ids of previously added nodes.
func (g *Graph) Node(run func(), deps ...int) int {
	return g.NodeNamed("", run, deps...)
}

// NodeNamed is Node with a tile name for the trace timeline: when a
// Tracer is installed (SetTracer), the engine emits one span per
// execution of the node. An empty name keeps the node invisible to
// tracing with zero overhead.
func (g *Graph) NodeNamed(name string, run func(), deps ...int) int {
	id := len(g.nodes)
	for _, d := range deps {
		if d < 0 || d >= id {
			panic(fmt.Sprintf("engine: node %d depends on invalid node %d", id, d))
		}
		g.nodes[d].succ = append(g.nodes[d].succ, int32(id))
	}
	g.nodes = append(g.nodes, gnode{run: run, name: name, ndeps: int32(len(deps))})
	g.nodes[id].task = func() { g.exec(int32(id)) }
	return id
}

func (g *Graph) exec(id int32) {
	nd := &g.nodes[id]
	if !g.aborted.Load() && g.ctx.Err() != nil {
		g.aborted.Store(true)
	}
	if !g.aborted.Load() {
		func() {
			defer func() {
				if r := recover(); r != nil {
					g.pmu.Lock()
					if g.panicked == nil {
						g.panicked = r
					}
					g.pmu.Unlock()
					g.aborted.Store(true)
				}
			}()
			if tr := currentTracer(); tr != nil && nd.name != "" {
				start := time.Now()
				nd.run()
				tr.Span(nd.name, start, time.Now())
			} else {
				nd.run()
			}
		}()
	}
	if g.completed.Add(1) == int64(len(g.nodes)) {
		close(g.done)
	}
	for _, s := range nd.succ {
		if atomic.AddInt32(&g.rem[s], -1) == 0 {
			g.spawn(s)
		}
	}
}

func (g *Graph) spawn(id int32) {
	nd := &g.nodes[id]
	if !g.eng.trySubmit(nd.task) {
		nd.task()
	}
}

// RunGraph executes g on the pool and returns when every node has
// completed. A panic in a node aborts the remaining nodes and is
// re-raised on the calling goroutine.
func (e *Engine) RunGraph(g *Graph) {
	_ = e.RunGraphCtx(context.Background(), g)
}

// RunGraphCtx is RunGraph with cancellation: when ctx is cancelled,
// nodes that have not started are skipped, in-flight nodes finish, and
// the context error is returned. On cancellation the graph's outputs
// are undefined; on a nil return every node ran exactly once.
func (e *Engine) RunGraphCtx(ctx context.Context, g *Graph) error {
	n := len(g.nodes)
	if err := ctx.Err(); err != nil || n == 0 {
		return err
	}
	if cap(g.rem) < n {
		g.rem = make([]int32, n)
	}
	g.rem = g.rem[:n]
	for i := range g.rem {
		g.rem[i] = g.nodes[i].ndeps
	}
	g.completed.Store(0)
	g.aborted.Store(false)
	g.eng = e
	g.ctx = ctx
	g.done = make(chan struct{})

	for i := range g.nodes {
		if g.nodes[i].ndeps == 0 {
			g.spawn(int32(i))
		}
	}
	// The caller helps drain the pool while waiting — nested graphs
	// need someone to run their dynamically spawned nodes when every
	// worker is itself blocked in a RunGraph — but it blocks on the
	// queue rather than spinning, so an idle waiter costs no CPU. The
	// price of helping is that a stolen task may belong to another
	// operation and extend this call by that task's length.
	jobs := e.jobs
	ctxDone := ctx.Done()
	for waiting := true; waiting; {
		select {
		case <-g.done:
			waiting = false
		case <-ctxDone:
			g.aborted.Store(true)
			ctxDone = nil // nodes drain via the per-node ctx check
		case f, ok := <-jobs:
			if !ok {
				jobs = nil // engine closed; spawn falls back to inline
				continue
			}
			f()
		}
	}
	g.eng = nil
	g.ctx = nil
	g.done = nil
	if g.panicked != nil {
		pv := g.panicked
		g.panicked = nil
		panic(pv)
	}
	return ctx.Err()
}
