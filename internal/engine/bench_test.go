package engine

import (
	"sync/atomic"
	"testing"
)

// BenchmarkParallelForOverhead measures scheduling cost per iteration
// with a trivial body — the floor below which tower-sized tasks must
// stay profitable.
func BenchmarkParallelForOverhead(b *testing.B) {
	e := New(4)
	defer e.Close()
	var sink atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ParallelFor(64, func(j int) { sink.Add(1) })
	}
}

// BenchmarkGraphOverhead measures per-node dispatch cost of a reused
// three-stage graph shaped like an HKS pipeline (fan-out, barrier,
// fan-out).
func BenchmarkGraphOverhead(b *testing.B) {
	e := New(4)
	defer e.Close()
	var sink atomic.Int64
	g := NewGraph()
	stage1 := make([]int, 16)
	for i := range stage1 {
		stage1[i] = g.Node(func() { sink.Add(1) })
	}
	mid := g.Node(func() { sink.Add(1) }, stage1...)
	for i := 0; i < 16; i++ {
		g.Node(func() { sink.Add(1) }, mid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunGraph(g)
	}
}
