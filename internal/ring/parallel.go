package ring

// Runner is the minimal parallel-execution interface the ring accepts;
// *engine.Engine implements it. It is declared here (rather than
// importing internal/engine) so the arithmetic layers stay free of
// runtime dependencies. A nil Runner means "run serially".
type Runner interface {
	ParallelFor(n int, fn func(i int))
}

// NTTWith transforms every tower of p to the evaluation domain,
// limb-parallel on e: each tower's transform is an independent task
// (the per-tower independence the paper's dataflows exploit). The
// result is bit-exact with NTT.
func (r *Ring) NTTWith(e Runner, p *Poly) {
	if e == nil {
		r.NTT(p)
		return
	}
	if p.IsNTT {
		panic("ring: NTT on poly already in evaluation domain")
	}
	e.ParallelFor(len(p.Basis), func(i int) {
		r.Tables[p.Basis[i]].Forward(p.Coeffs[i])
	})
	p.IsNTT = true
}

// INTTWith transforms every tower of p back to the coefficient domain,
// limb-parallel on e. Bit-exact with INTT.
func (r *Ring) INTTWith(e Runner, p *Poly) {
	if e == nil {
		r.INTT(p)
		return
	}
	if !p.IsNTT {
		panic("ring: INTT on poly already in coefficient domain")
	}
	e.ParallelFor(len(p.Basis), func(i int) {
		r.Tables[p.Basis[i]].Inverse(p.Coeffs[i])
	})
	p.IsNTT = false
}
