package ring

// Seed-expandable uniform polynomials. The random `a`-half of an RLWE
// pair is uniform, so instead of storing N×(ℓ+K) residues it can be
// stored as the 32-byte seed of the PRG that produced it and expanded
// on load — the HEAAN-Demystified evaluation-key compression that
// halves key bytes. UniformFromSeed is the expansion: a pure function
// of (ring, basis, seed), so any process holding the seed regenerates
// the identical polynomial, bit for bit.
//
// The expander is xoshiro256** with its 256-bit state whitened from
// the seed bytes through splitmix64. Like Sampler it is NOT
// constant-time and NOT a CSPRNG — this library analyzes dataflow, not
// production cryptography — but unlike Sampler's shared sequential
// stream, expansion is stateless per seed, which is what lets one evk
// digit be expanded independently of (and concurrently with) every
// other.

import "encoding/binary"

// Seed identifies one seed-expandable uniform polynomial.
type Seed [32]byte

// NewSeed draws a fresh expansion seed from the sampler's stream, so
// key generation stays a pure function of the sampler's own seed.
func (s *Sampler) NewSeed() Seed {
	var sd Seed
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint64(sd[8*i:], s.rng.Uint64())
	}
	return sd
}

// splitmix64 whitens one 64-bit lane of the seed. Even an all-zero
// Seed lands on a non-degenerate xoshiro state (xoshiro256** cycles at
// the zero state), so every Seed value is usable.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedRNG is the xoshiro256** generator behind UniformFromSeed.
type seedRNG struct{ s0, s1, s2, s3 uint64 }

func newSeedRNG(seed Seed) seedRNG {
	return seedRNG{
		s0: splitmix64(binary.LittleEndian.Uint64(seed[0:8]) + 1),
		s1: splitmix64(binary.LittleEndian.Uint64(seed[8:16]) + 2),
		s2: splitmix64(binary.LittleEndian.Uint64(seed[16:24]) + 3),
		s3: splitmix64(binary.LittleEndian.Uint64(seed[24:32]) + 4),
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (g *seedRNG) next() uint64 {
	res := rotl(g.s1*5, 7) * 9
	t := g.s1 << 17
	g.s2 ^= g.s0
	g.s3 ^= g.s1
	g.s1 ^= g.s2
	g.s0 ^= g.s3
	g.s2 ^= t
	g.s3 = rotl(g.s3, 45)
	return res
}

// UniformFromSeed expands seed into a fresh polynomial over basis b
// with independent uniform residues in each tower (coefficient-domain
// flag left false; uniform residues are uniform in either domain, so
// callers mark IsNTT as needed, exactly like Sampler.Uniform).
// Deterministic: the same (basis, seed) always yields the same bits.
func (r *Ring) UniformFromSeed(b Basis, seed Seed) *Poly {
	g := newSeedRNG(seed)
	p := r.NewPoly(b)
	for i, t := range b {
		q := r.Mods[t].Q
		row := p.Coeffs[i]
		for j := range row {
			row[j] = g.next() % q
		}
	}
	return p
}
