package ring

import "fmt"

// Automorphism applies the Galois automorphism σ_k: X → X^k to p
// (coefficient domain), writing the result to out. k must be odd so
// that σ_k is an automorphism of Z[X]/(X^N+1). Rotating a CKKS vector
// message by r slots corresponds to k = 5^r mod 2N (paper §II:
// ciphertext rotations are the primary way of computing linear
// layers).
func (r *Ring) Automorphism(p *Poly, k int, out *Poly) {
	if p.IsNTT {
		panic("ring: Automorphism requires coefficient domain")
	}
	if !p.Basis.Equal(out.Basis) {
		panic("ring: Automorphism basis mismatch")
	}
	twoN := 2 * r.N
	k = ((k % twoN) + twoN) % twoN
	if k%2 == 0 {
		panic(fmt.Sprintf("ring: automorphism exponent %d must be odd", k))
	}
	for i, t := range p.Basis {
		m := r.Mods[t]
		src, dst := p.Coeffs[i], out.Coeffs[i]
		for j := 0; j < r.N; j++ {
			// X^j → X^(jk mod 2N), with X^(N+e) = -X^e.
			e := (j * k) % twoN
			v := src[j]
			if e >= r.N {
				e -= r.N
				v = m.Neg(v)
			}
			dst[e] = v
		}
	}
	out.IsNTT = false
}

// GaloisElement returns the automorphism exponent 5^r mod 2N that
// rotates the CKKS message vector left by r slots (negative r rotates
// right).
func (r *Ring) GaloisElement(rot int) int {
	twoN := 2 * r.N
	n2 := r.N / 2
	rot = ((rot % n2) + n2) % n2
	g := 1
	for i := 0; i < rot; i++ {
		g = (g * 5) % twoN
	}
	return g
}
