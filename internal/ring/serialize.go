package ring

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization for polynomials: a fixed little-endian header
// (magic, domain flag, tower count, degree) followed by the basis
// indices and the residue rows. Ciphertexts and evaluation keys are
// (de)serialized by composing WritePoly/ReadPoly.

const polyMagic = uint32(0x43464c57) // "CFLW"

// WritePoly serializes p.
func (r *Ring) WritePoly(w io.Writer, p *Poly) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{polyMagic, 0, uint32(len(p.Basis)), uint32(r.N)}
	if p.IsNTT {
		hdr[1] = 1
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range p.Basis {
		if err := binary.Write(bw, binary.LittleEndian, uint32(t)); err != nil {
			return err
		}
	}
	for _, row := range p.Coeffs {
		if err := binary.Write(bw, binary.LittleEndian, row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoly deserializes a polynomial written by WritePoly, validating
// the header and every basis index and residue against this ring.
// It reads exactly one polynomial's bytes, so several objects can
// share one stream (no read-ahead buffering).
func (r *Ring) ReadPoly(rd io.Reader) (*Poly, error) {
	br := rd
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("ring: short poly header: %w", err)
		}
	}
	if hdr[0] != polyMagic {
		return nil, fmt.Errorf("ring: bad magic %#x", hdr[0])
	}
	if hdr[3] != uint32(r.N) {
		return nil, fmt.Errorf("ring: poly degree %d does not match ring N=%d", hdr[3], r.N)
	}
	nt := int(hdr[2])
	if nt == 0 || nt > len(r.Moduli) {
		return nil, fmt.Errorf("ring: tower count %d out of range", nt)
	}
	basis := make(Basis, nt)
	for i := range basis {
		var t uint32
		if err := binary.Read(br, binary.LittleEndian, &t); err != nil {
			return nil, err
		}
		if int(t) >= len(r.Moduli) {
			return nil, fmt.Errorf("ring: tower index %d out of range", t)
		}
		basis[i] = int(t)
	}
	p := r.NewPoly(basis)
	p.IsNTT = hdr[1] == 1
	for i, t := range basis {
		if err := binary.Read(br, binary.LittleEndian, p.Coeffs[i]); err != nil {
			return nil, err
		}
		q := r.Mods[t].Q
		for _, v := range p.Coeffs[i] {
			if v >= q {
				return nil, fmt.Errorf("ring: residue %d exceeds modulus %d", v, q)
			}
		}
	}
	return p, nil
}
