package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests over the ring operations, run on a fixed small ring
// with randomized polynomial contents.

func quickRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRingGenerated(32, 3, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// randPoly derives a deterministic polynomial from a seed.
func randPoly(r *Ring, b Basis, seed int64) *Poly {
	return NewSampler(r, seed).Uniform(b)
}

func TestQuickAddCommutes(t *testing.T) {
	r := quickRing(t)
	b := r.DBasis(2)
	f := func(s1, s2 int64) bool {
		x := randPoly(r, b, s1)
		y := randPoly(r, b, s2)
		xy := r.NewPoly(b)
		yx := r.NewPoly(b)
		r.Add(x, y, xy)
		r.Add(y, x, yx)
		return xy.Equal(yx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulAssociates(t *testing.T) {
	r := quickRing(t)
	b := r.QBasis(1)
	f := func(s1, s2, s3 int64) bool {
		x := randPoly(r, b, s1)
		y := randPoly(r, b, s2)
		z := randPoly(r, b, s3)
		x.IsNTT, y.IsNTT, z.IsNTT = true, true, true
		xy := r.NewPoly(b)
		r.MulCoeffwise(x, y, xy)
		xyz1 := r.NewPoly(b)
		r.MulCoeffwise(xy, z, xyz1)
		yz := r.NewPoly(b)
		r.MulCoeffwise(y, z, yz)
		xyz2 := r.NewPoly(b)
		r.MulCoeffwise(x, yz, xyz2)
		return xyz1.Equal(xyz2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNTTIsLinearBijection(t *testing.T) {
	r := quickRing(t)
	b := r.QBasis(2)
	f := func(s1, s2 int64) bool {
		x := randPoly(r, b, s1)
		y := randPoly(r, b, s2)
		// NTT(x+y) == NTT(x) + NTT(y)
		sum := r.NewPoly(b)
		r.Add(x, y, sum)
		r.NTT(sum)
		xc, yc := x.Copy(), y.Copy()
		r.NTT(xc)
		r.NTT(yc)
		sum2 := r.NewPoly(b)
		r.Add(xc, yc, sum2)
		if !sum.Equal(sum2) {
			return false
		}
		// Bijection: INTT(NTT(x)) == x
		r.INTT(xc)
		return xc.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAutomorphismInvertible(t *testing.T) {
	r := quickRing(t)
	b := r.QBasis(1)
	twoN := 2 * r.N
	f := func(seed int64, rotRaw int) bool {
		rot := ((rotRaw % (r.N / 2)) + r.N/2) % (r.N / 2)
		g := r.GaloisElement(rot)
		gInv := r.GaloisElement(-rot)
		if g*gInv%twoN != 1 {
			return false
		}
		x := randPoly(r, b, seed)
		fwd := r.NewPoly(b)
		back := r.NewPoly(b)
		r.Automorphism(x, g, fwd)
		r.Automorphism(fwd, gInv, back)
		return back.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTowerScalarsMatchScalar(t *testing.T) {
	r := quickRing(t)
	b := r.DBasis(2)
	f := func(seed int64, sRaw uint64) bool {
		s := sRaw % (1 << 29) // below every modulus
		x := randPoly(r, b, seed)
		viaScalar := r.NewPoly(b)
		r.MulScalar(x, s, viaScalar)
		scalars := make([]uint64, len(b))
		for i := range scalars {
			scalars[i] = s
		}
		viaTower := r.NewPoly(b)
		r.MulTowerScalars(x, scalars, viaTower)
		return viaScalar.Equal(viaTower)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCRTRoundTrip(t *testing.T) {
	r := quickRing(t)
	b := r.QBasis(2)
	rng := rand.New(rand.NewSource(77))
	p := r.NewPoly(b)
	for trial := 0; trial < 50; trial++ {
		j := rng.Intn(r.N)
		// Random value within the basis product's centered range.
		v := rng.Int63() - (1 << 62 / 2)
		bi := bigFromInt64(v)
		r.SetBig(p, j, bi)
		got := r.ToBigCentered(p, j)
		if got.Cmp(bi) != 0 {
			t.Fatalf("roundtrip %d: got %v", v, got)
		}
	}
}

// bigFromInt64 builds a big.Int without importing math/big at every
// call site in the quick tests.
func bigFromInt64(v int64) *big.Int { return big.NewInt(v) }
