package ring

import (
	"bytes"
	"strings"
	"testing"
)

func TestPolyRoundTrip(t *testing.T) {
	r := quickRing(t)
	for _, basis := range []Basis{r.QBasis(2), r.PBasis(), r.DBasis(1)} {
		for _, nttDomain := range []bool{false, true} {
			p := NewSampler(r, 3).Uniform(basis)
			p.IsNTT = nttDomain
			var buf bytes.Buffer
			if err := r.WritePoly(&buf, p); err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadPoly(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(p) {
				t.Fatalf("basis %v ntt=%v: roundtrip mismatch", basis, nttDomain)
			}
		}
	}
}

func TestReadPolyRejectsCorruption(t *testing.T) {
	r := quickRing(t)
	p := NewSampler(r, 4).Uniform(r.QBasis(1))
	var buf bytes.Buffer
	if err := r.WritePoly(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := r.ReadPoly(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted magic accepted")
	}

	// Truncated payload.
	if _, err := r.ReadPoly(bytes.NewReader(good[:len(good)-9])); err == nil {
		t.Error("truncated stream accepted")
	}

	// Out-of-range residue: flip a residue to all-ones.
	bad = append([]byte(nil), good...)
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0xff
	}
	if _, err := r.ReadPoly(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range residue accepted")
	}

	// Wrong ring degree.
	other, err := NewRingGenerated(64, 3, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ReadPoly(bytes.NewReader(good)); err == nil ||
		!strings.Contains(err.Error(), "degree") {
		t.Errorf("cross-ring read accepted: %v", err)
	}
}

func TestReadPolyRejectsGarbage(t *testing.T) {
	r := quickRing(t)
	if _, err := r.ReadPoly(strings.NewReader("not a poly")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := r.ReadPoly(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

// Every strict prefix of a serialized polynomial must produce an
// error — never a panic, never a false success — and a lying tower
// count must be rejected before any count-sized allocation. This is
// the robustness contract the cluster wire protocol composes on.
func TestReadPolyTruncationRobust(t *testing.T) {
	r := quickRing(t)
	p := NewSampler(r, 5).Uniform(r.QBasis(2))
	p.IsNTT = true
	var buf bytes.Buffer
	if err := r.WritePoly(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("truncation at %d/%d panicked: %v", i, len(good), rec)
				}
			}()
			if _, err := r.ReadPoly(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("truncation at %d/%d read successfully", i, len(good))
			}
		}()
	}
	// Oversized tower-count declaration: must error on the range
	// check, not allocate towers' worth of memory.
	bad := append([]byte(nil), good...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := r.ReadPoly(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "tower count") {
		t.Errorf("oversized tower count: got %v", err)
	}
}
