package ring

import (
	"bytes"
	"strings"
	"testing"
)

func TestPolyRoundTrip(t *testing.T) {
	r := quickRing(t)
	for _, basis := range []Basis{r.QBasis(2), r.PBasis(), r.DBasis(1)} {
		for _, nttDomain := range []bool{false, true} {
			p := NewSampler(r, 3).Uniform(basis)
			p.IsNTT = nttDomain
			var buf bytes.Buffer
			if err := r.WritePoly(&buf, p); err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadPoly(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(p) {
				t.Fatalf("basis %v ntt=%v: roundtrip mismatch", basis, nttDomain)
			}
		}
	}
}

func TestReadPolyRejectsCorruption(t *testing.T) {
	r := quickRing(t)
	p := NewSampler(r, 4).Uniform(r.QBasis(1))
	var buf bytes.Buffer
	if err := r.WritePoly(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := r.ReadPoly(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted magic accepted")
	}

	// Truncated payload.
	if _, err := r.ReadPoly(bytes.NewReader(good[:len(good)-9])); err == nil {
		t.Error("truncated stream accepted")
	}

	// Out-of-range residue: flip a residue to all-ones.
	bad = append([]byte(nil), good...)
	for i := len(bad) - 8; i < len(bad); i++ {
		bad[i] = 0xff
	}
	if _, err := r.ReadPoly(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range residue accepted")
	}

	// Wrong ring degree.
	other, err := NewRingGenerated(64, 3, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ReadPoly(bytes.NewReader(good)); err == nil ||
		!strings.Contains(err.Error(), "degree") {
		t.Errorf("cross-ring read accepted: %v", err)
	}
}

func TestReadPolyRejectsGarbage(t *testing.T) {
	r := quickRing(t)
	if _, err := r.ReadPoly(strings.NewReader("not a poly")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := r.ReadPoly(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}
