package ring

import (
	"testing"

	"ciflow/internal/engine"
)

func TestNTTWithMatchesSerial(t *testing.T) {
	r, err := NewRingGenerated(64, 4, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(4)
	defer e.Close()
	s := NewSampler(r, 7)
	full := r.DBasis(r.NumQ - 1)

	p := s.Uniform(full)
	serial := p.Copy()
	par := p.Copy()

	r.NTT(serial)
	r.NTTWith(e, par)
	if !serial.Equal(par) {
		t.Fatal("NTTWith differs from NTT")
	}

	r.INTT(serial)
	r.INTTWith(e, par)
	if !serial.Equal(par) {
		t.Fatal("INTTWith differs from INTT")
	}
}

func TestNTTWithNilRunnerIsSerial(t *testing.T) {
	r, err := NewRingGenerated(32, 3, 30, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(r, 3)
	p := s.Uniform(r.QBasis(2))
	want := p.Copy()
	r.NTT(want)
	r.NTTWith(nil, p)
	if !want.Equal(p) {
		t.Fatal("nil-runner NTTWith differs")
	}
	r.INTTWith(nil, p)
	r.INTT(want)
	if !want.Equal(p) {
		t.Fatal("nil-runner INTTWith differs")
	}
}

func TestNTTWithDomainChecks(t *testing.T) {
	r, err := NewRingGenerated(32, 2, 30, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(2)
	defer e.Close()
	p := r.NewPoly(r.QBasis(1))
	p.IsNTT = true
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NTTWith accepted NTT-domain input")
			}
		}()
		r.NTTWith(e, p)
	}()
	p.IsNTT = false
	defer func() {
		if recover() == nil {
			t.Fatal("INTTWith accepted coefficient-domain input")
		}
	}()
	r.INTTWith(e, p)
}
