package ring

import (
	"math"
	"math/rand"
)

// Sampler draws the random polynomials needed by RLWE key and
// ciphertext generation. It is deterministic given its seed, which
// keeps every test reproducible. It is NOT constant-time and must not
// be used to protect real secrets; this library's goal is dataflow
// analysis, not production cryptography.
type Sampler struct {
	r   *Ring
	rng *rand.Rand
}

// NewSampler creates a sampler over r seeded with seed.
func NewSampler(r *Ring, seed int64) *Sampler {
	return &Sampler{r: r, rng: rand.New(rand.NewSource(seed))}
}

// Uniform fills a fresh coefficient-domain polynomial over basis b
// with independent uniform residues in each tower. (Used for the `a`
// component of RLWE samples, which is uniform in the NTT domain too;
// callers transform as needed.)
func (s *Sampler) Uniform(b Basis) *Poly {
	p := s.r.NewPoly(b)
	for i, t := range b {
		q := s.r.Mods[t].Q
		row := p.Coeffs[i]
		for j := range row {
			row[j] = s.rng.Uint64() % q
		}
	}
	return p
}

// Ternary samples a polynomial with coefficients in {-1, 0, 1}
// represented consistently across all towers of basis b (the
// small-norm secret key distribution).
func (s *Sampler) Ternary(b Basis) *Poly {
	p := s.r.NewPoly(b)
	for j := 0; j < s.r.N; j++ {
		v := s.rng.Intn(3) - 1 // -1, 0, or 1
		for i, t := range b {
			m := s.r.Mods[t]
			switch v {
			case 1:
				p.Coeffs[i][j] = 1
			case -1:
				p.Coeffs[i][j] = m.Q - 1
			}
		}
	}
	return p
}

// GaussianSigma is the standard deviation of the RLWE error
// distribution, the conventional value used across HE libraries.
const GaussianSigma = 3.2

// Gaussian samples a small-error polynomial with discrete-Gaussian
// coefficients (σ = GaussianSigma), represented across all towers of
// basis b.
func (s *Sampler) Gaussian(b Basis) *Poly {
	p := s.r.NewPoly(b)
	for j := 0; j < s.r.N; j++ {
		v := int64(math.Round(s.rng.NormFloat64() * GaussianSigma))
		for i, t := range b {
			m := s.r.Mods[t]
			if v >= 0 {
				p.Coeffs[i][j] = m.Reduce(uint64(v))
			} else {
				p.Coeffs[i][j] = m.Sub(0, m.Reduce(uint64(-v)))
			}
		}
	}
	return p
}
