package ring

import "testing"

func TestUniformFromSeedDeterministic(t *testing.T) {
	r := testRing(t)
	b := r.DBasis(3)
	s := NewSampler(r, 7)
	seed := s.NewSeed()
	p1 := r.UniformFromSeed(b, seed)
	p2 := r.UniformFromSeed(b, seed)
	if !p1.Equal(p2) {
		t.Fatal("same seed expanded to different polynomials")
	}
	for i, tw := range b {
		q := r.Mods[tw].Q
		for j, v := range p1.Coeffs[i] {
			if v >= q {
				t.Fatalf("tower %d coeff %d = %d out of range mod %d", i, j, v, q)
			}
		}
	}
	// A different seed must diverge; a same-seed expansion over a
	// prefix basis must agree on the shared towers (digit-independent
	// streams would break this — each tower is drawn in basis order,
	// so only an identical basis guarantees identical rows; assert the
	// full-basis property we rely on instead: distinct seeds differ).
	if p3 := r.UniformFromSeed(b, s.NewSeed()); p3.Equal(p1) {
		t.Fatal("distinct seeds expanded to identical polynomials")
	}
}

func TestNewSeedStreamsFromSampler(t *testing.T) {
	r := testRing(t)
	a, b := NewSampler(r, 42), NewSampler(r, 42)
	if a.NewSeed() != b.NewSeed() {
		t.Fatal("equal sampler seeds produced different expansion seeds")
	}
	s := NewSampler(r, 42)
	if s.NewSeed() == s.NewSeed() {
		t.Fatal("consecutive NewSeed calls repeated a seed")
	}
	// The all-zero seed must still expand (splitmix64 whitening keeps
	// the xoshiro state non-degenerate).
	p := r.UniformFromSeed(r.QBasis(0), Seed{})
	var nonzero bool
	for _, v := range p.Coeffs[0] {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("zero seed expanded to the zero polynomial")
	}
}
