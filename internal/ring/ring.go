// Package ring implements RNS polynomial arithmetic in
// Z_Q[X]/(X^N+1), the substrate of CKKS and of the hybrid
// key-switching algorithm analyzed by CiFlow.
//
// A Ring owns the full moduli chain — the L+1 "Q towers" q_0..q_L plus
// the K auxiliary "P towers" p_0..p_{K-1} (paper Table I) — with one
// NTT table per modulus. A Poly stores one residue row ("tower",
// paper §II) per modulus of its Basis, mirroring the N×ℓ matrix view
// the paper uses for dataflow analysis.
package ring

import (
	"fmt"

	"ciflow/internal/mod"
	"ciflow/internal/ntt"
	"ciflow/internal/primes"
)

// Ring is the arithmetic context for Z[X]/(X^N+1) under an RNS moduli
// chain. Immutable after construction; safe for concurrent use.
type Ring struct {
	N      int
	Moduli []uint64 // q_0..q_L, p_0..p_{K-1}
	NumQ   int      // L+1
	NumP   int      // K

	Mods   []mod.Modulus
	Tables []*ntt.Table
}

// NewRing constructs a ring of degree n with the given Q and P chains.
// All moduli must be distinct NTT-friendly primes for degree n.
func NewRing(n int, qs, ps []uint64) (*Ring, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("ring: empty Q chain")
	}
	all := make([]uint64, 0, len(qs)+len(ps))
	all = append(all, qs...)
	all = append(all, ps...)
	seen := make(map[uint64]bool, len(all))
	r := &Ring{
		N:      n,
		Moduli: all,
		NumQ:   len(qs),
		NumP:   len(ps),
		Mods:   make([]mod.Modulus, len(all)),
		Tables: make([]*ntt.Table, len(all)),
	}
	for i, q := range all {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		if !mod.IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		tab, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, fmt.Errorf("ring: modulus %d: %w", q, err)
		}
		r.Mods[i] = mod.New(q)
		r.Tables[i] = tab
	}
	return r, nil
}

// NewRingGenerated constructs a ring of degree n with numQ Q-moduli of
// qBits bits and numP P-moduli of pBits bits, generated automatically.
// Q and P chains draw from disjoint prime sequences (P scans from a
// different bit size or continues past Q's primes).
func NewRingGenerated(n, numQ, qBits, numP, pBits int) (*Ring, error) {
	if qBits == pBits {
		// One scan, split between the chains, keeps all primes distinct.
		all, err := primes.Generate(qBits, n, numQ+numP)
		if err != nil {
			return nil, err
		}
		return NewRing(n, all[:numQ], all[numQ:])
	}
	qs, err := primes.Generate(qBits, n, numQ)
	if err != nil {
		return nil, err
	}
	var ps []uint64
	if numP > 0 {
		ps, err = primes.Generate(pBits, n, numP)
		if err != nil {
			return nil, err
		}
	}
	return NewRing(n, qs, ps)
}

// QBasis returns the basis of the first level+1 Q towers
// (B_ℓ in paper Table I).
func (r *Ring) QBasis(level int) Basis {
	if level < 0 || level >= r.NumQ {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d)", level, r.NumQ))
	}
	b := make(Basis, level+1)
	for i := range b {
		b[i] = i
	}
	return b
}

// PBasis returns the basis of all K P towers (C in paper Table I).
func (r *Ring) PBasis() Basis {
	b := make(Basis, r.NumP)
	for i := range b {
		b[i] = r.NumQ + i
	}
	return b
}

// DBasis returns the union basis D_ℓ = B_ℓ ∪ C (paper Table I).
func (r *Ring) DBasis(level int) Basis {
	return append(r.QBasis(level), r.PBasis()...)
}

// Basis is an ordered set of tower indices into Ring.Moduli.
type Basis []int

// Equal reports whether two bases contain the same towers in the same
// order.
func (b Basis) Equal(o Basis) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Sub returns the sub-basis b[from:to].
func (b Basis) Sub(from, to int) Basis {
	return b[from:to]
}

// Contains reports whether tower t is in the basis.
func (b Basis) Contains(t int) bool {
	for _, x := range b {
		if x == t {
			return true
		}
	}
	return false
}

// Poly is an RNS polynomial: one length-N residue row per tower of its
// basis. IsNTT records whether rows are in the evaluation domain.
type Poly struct {
	Basis  Basis
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial over basis b.
func (r *Ring) NewPoly(b Basis) *Poly {
	c := make([][]uint64, len(b))
	backing := make([]uint64, len(b)*r.N)
	for i := range c {
		c[i], backing = backing[:r.N:r.N], backing[r.N:]
	}
	return &Poly{Basis: append(Basis(nil), b...), Coeffs: c}
}

// Copy returns a deep copy of p.
func (p *Poly) Copy() *Poly {
	q := &Poly{
		Basis:  append(Basis(nil), p.Basis...),
		Coeffs: make([][]uint64, len(p.Coeffs)),
		IsNTT:  p.IsNTT,
	}
	for i := range p.Coeffs {
		q.Coeffs[i] = append([]uint64(nil), p.Coeffs[i]...)
	}
	return q
}

// Tower returns the residue row for ring-tower index t, or nil if t is
// not in p's basis.
func (p *Poly) Tower(t int) []uint64 {
	for i, x := range p.Basis {
		if x == t {
			return p.Coeffs[i]
		}
	}
	return nil
}

// SubPoly returns a view (shared storage) of p restricted to basis b,
// which must be a subset of p's basis.
func (p *Poly) SubPoly(b Basis) *Poly {
	q := &Poly{Basis: append(Basis(nil), b...), Coeffs: make([][]uint64, len(b)), IsNTT: p.IsNTT}
	for i, t := range b {
		row := p.Tower(t)
		if row == nil {
			panic(fmt.Sprintf("ring: tower %d not present in poly basis %v", t, p.Basis))
		}
		q.Coeffs[i] = row
	}
	return q
}

func (r *Ring) checkMatch(op string, a, b, out *Poly) {
	if !a.Basis.Equal(b.Basis) || !a.Basis.Equal(out.Basis) {
		panic(fmt.Sprintf("ring: %s basis mismatch: %v vs %v vs %v", op, a.Basis, b.Basis, out.Basis))
	}
	if a.IsNTT != b.IsNTT {
		panic(fmt.Sprintf("ring: %s domain mismatch", op))
	}
}

// Add sets out = a + b tower-wise. Bases and domains must match.
func (r *Ring) Add(a, b, out *Poly) {
	r.checkMatch("Add", a, b, out)
	for i, t := range a.Basis {
		m := r.Mods[t]
		ar, br, or := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Add(ar[j], br[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub sets out = a - b tower-wise.
func (r *Ring) Sub(a, b, out *Poly) {
	r.checkMatch("Sub", a, b, out)
	for i, t := range a.Basis {
		m := r.Mods[t]
		ar, br, or := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Sub(ar[j], br[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg sets out = -a tower-wise.
func (r *Ring) Neg(a, out *Poly) {
	if !a.Basis.Equal(out.Basis) {
		panic("ring: Neg basis mismatch")
	}
	for i, t := range a.Basis {
		m := r.Mods[t]
		ar, or := a.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Neg(ar[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffwise sets out = a ⊙ b (point-wise product). Both operands
// must be in the NTT domain for this to implement ring multiplication.
func (r *Ring) MulCoeffwise(a, b, out *Poly) {
	r.checkMatch("MulCoeffwise", a, b, out)
	for i, t := range a.Basis {
		m := r.Mods[t]
		ar, br, or := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Mul(ar[j], br[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulAddCoeffwise sets out += a ⊙ b point-wise. This is the ApplyKey
// primitive (paper ModUp P4/P5 fused accumulate).
func (r *Ring) MulAddCoeffwise(a, b, out *Poly) {
	r.checkMatch("MulAddCoeffwise", a, b, out)
	for i, t := range a.Basis {
		m := r.Mods[t]
		ar, br, or := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Add(or[j], m.Mul(ar[j], br[j]))
		}
	}
}

// MulScalar sets out = a · s, with the scalar reduced per tower.
func (r *Ring) MulScalar(a *Poly, s uint64, out *Poly) {
	if !a.Basis.Equal(out.Basis) {
		panic("ring: MulScalar basis mismatch")
	}
	for i, t := range a.Basis {
		m := r.Mods[t]
		sv := m.Reduce(s)
		ar, or := a.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Mul(ar[j], sv)
		}
	}
	out.IsNTT = a.IsNTT
}

// MulTowerScalars sets out = a scaled per tower: tower i is multiplied
// by scalars[i] (already reduced modulo that tower's modulus). This is
// the gadget-factor application of key-switching key generation.
func (r *Ring) MulTowerScalars(a *Poly, scalars []uint64, out *Poly) {
	if !a.Basis.Equal(out.Basis) {
		panic("ring: MulTowerScalars basis mismatch")
	}
	if len(scalars) != len(a.Basis) {
		panic(fmt.Sprintf("ring: MulTowerScalars got %d scalars for %d towers", len(scalars), len(a.Basis)))
	}
	for i, t := range a.Basis {
		m := r.Mods[t]
		s := m.Reduce(scalars[i])
		ar, or := a.Coeffs[i], out.Coeffs[i]
		for j := range ar {
			or[j] = m.Mul(ar[j], s)
		}
	}
	out.IsNTT = a.IsNTT
}

// NTT transforms every tower of p to the evaluation domain.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT on poly already in evaluation domain")
	}
	for i, t := range p.Basis {
		r.Tables[t].Forward(p.Coeffs[i])
	}
	p.IsNTT = true
}

// INTT transforms every tower of p back to the coefficient domain.
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT on poly already in coefficient domain")
	}
	for i, t := range p.Basis {
		r.Tables[t].Inverse(p.Coeffs[i])
	}
	p.IsNTT = false
}

// NTTTower transforms a single tower row in place for ring-tower t.
func (r *Ring) NTTTower(t int, row []uint64) { r.Tables[t].Forward(row) }

// INTTTower inverse-transforms a single tower row in place.
func (r *Ring) INTTTower(t int, row []uint64) { r.Tables[t].Inverse(row) }

// Equal reports whether two polynomials agree exactly (basis, domain
// and every coefficient).
func (p *Poly) Equal(q *Poly) bool {
	if !p.Basis.Equal(q.Basis) || p.IsNTT != q.IsNTT {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}
