package ring

import (
	"fmt"
	"math/big"
)

// BasisProduct returns the product of the moduli in basis b.
func (r *Ring) BasisProduct(b Basis) *big.Int {
	prod := big.NewInt(1)
	for _, t := range b {
		prod.Mul(prod, new(big.Int).SetUint64(r.Moduli[t]))
	}
	return prod
}

// ToBigCentered reconstructs coefficient j of p (which must be in the
// coefficient domain) as a centered integer in (-M/2, M/2], where M is
// the product of p's basis moduli. Used only by tests and noise
// measurement; it is the exact CRT ground truth the fast RNS basis
// conversion approximates.
func (r *Ring) ToBigCentered(p *Poly, j int) *big.Int {
	if p.IsNTT {
		panic("ring: ToBigCentered requires coefficient domain")
	}
	M := r.BasisProduct(p.Basis)
	acc := new(big.Int)
	tmp := new(big.Int)
	for i, t := range p.Basis {
		qi := new(big.Int).SetUint64(r.Moduli[t])
		Mi := new(big.Int).Div(M, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(Mi, qi), qi)
		if inv == nil {
			panic(fmt.Sprintf("ring: moduli not coprime at tower %d", t))
		}
		tmp.SetUint64(p.Coeffs[i][j])
		tmp.Mul(tmp, inv).Mod(tmp, qi) // x_i * (M/q_i)^-1 mod q_i
		tmp.Mul(tmp, Mi)
		acc.Add(acc, tmp)
	}
	acc.Mod(acc, M)
	half := new(big.Int).Rsh(M, 1)
	if acc.Cmp(half) > 0 {
		acc.Sub(acc, M)
	}
	return acc
}

// SetBig sets coefficient j of p from the (possibly negative) integer
// v, reducing into every tower of p's basis.
func (r *Ring) SetBig(p *Poly, j int, v *big.Int) {
	for i, t := range p.Basis {
		qi := new(big.Int).SetUint64(r.Moduli[t])
		res := new(big.Int).Mod(v, qi) // Go's Mod is non-negative for positive modulus
		p.Coeffs[i][j] = res.Uint64()
	}
}

// InfNorm returns the largest centered-absolute coefficient of p,
// interpreting p over its basis product. p must be in the coefficient
// domain.
func (r *Ring) InfNorm(p *Poly) *big.Int {
	max := new(big.Int)
	for j := 0; j < r.N; j++ {
		c := r.ToBigCentered(p, j)
		c.Abs(c)
		if c.Cmp(max) > 0 {
			max.Set(c)
		}
	}
	return max
}
