package ring

import (
	"math/big"
	"testing"
)

func testRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRingGenerated(64, 4, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(64, nil, nil); err == nil {
		t.Error("empty Q chain accepted")
	}
	if _, err := NewRing(64, []uint64{769, 769}, nil); err == nil {
		t.Error("duplicate moduli accepted")
	}
	if _, err := NewRing(64, []uint64{1025}, nil); err == nil {
		t.Error("composite modulus accepted")
	}
	if _, err := NewRing(64, []uint64{97}, nil); err == nil {
		t.Error("non-NTT-friendly modulus accepted")
	}
}

func TestBases(t *testing.T) {
	r := testRing(t)
	if got := r.QBasis(2); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("QBasis(2) = %v", got)
	}
	if got := r.PBasis(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("PBasis() = %v", got)
	}
	d := r.DBasis(3)
	if len(d) != 6 {
		t.Fatalf("DBasis(3) = %v", d)
	}
	if !d.Contains(5) || d.Contains(6) {
		t.Fatal("DBasis membership wrong")
	}
	if !d.Sub(0, 4).Equal(r.QBasis(3)) {
		t.Fatal("Sub-basis mismatch")
	}
}

func TestPolyAddSubNeg(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 1)
	b := r.DBasis(3)
	a := s.Uniform(b)
	c := s.Uniform(b)
	sum := r.NewPoly(b)
	r.Add(a, c, sum)
	diff := r.NewPoly(b)
	r.Sub(sum, c, diff)
	if !diff.Equal(a) {
		t.Fatal("(a+c)-c != a")
	}
	neg := r.NewPoly(b)
	r.Neg(a, neg)
	zero := r.NewPoly(b)
	r.Add(a, neg, zero)
	for i := range zero.Coeffs {
		for j := range zero.Coeffs[i] {
			if zero.Coeffs[i][j] != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

func TestMulCoeffwiseMatchesBigConvolution(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 2)
	b := r.QBasis(1)
	a := s.Gaussian(b)
	c := s.Gaussian(b)

	// Ground truth: negacyclic product over the integers via big.Int.
	n := r.N
	av := make([]*big.Int, n)
	cv := make([]*big.Int, n)
	for j := 0; j < n; j++ {
		av[j] = r.ToBigCentered(a, j)
		cv[j] = r.ToBigCentered(c, j)
	}
	want := make([]*big.Int, n)
	for j := range want {
		want[j] = new(big.Int)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := new(big.Int).Mul(av[i], cv[j])
			if i+j < n {
				want[i+j].Add(want[i+j], p)
			} else {
				want[i+j-n].Sub(want[i+j-n], p)
			}
		}
	}

	r.NTT(a)
	r.NTT(c)
	prod := r.NewPoly(b)
	r.MulCoeffwise(a, c, prod)
	r.INTT(prod)
	for j := 0; j < n; j++ {
		got := r.ToBigCentered(prod, j)
		if got.Cmp(want[j]) != 0 {
			t.Fatalf("coefficient %d: got %v want %v", j, got, want[j])
		}
	}
}

func TestMulAddCoeffwise(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 3)
	b := r.QBasis(2)
	a := s.Uniform(b)
	c := s.Uniform(b)
	a.IsNTT, c.IsNTT = true, true
	acc := r.NewPoly(b)
	acc.IsNTT = true
	r.MulAddCoeffwise(a, c, acc)
	r.MulAddCoeffwise(a, c, acc)
	want := r.NewPoly(b)
	want.IsNTT = true
	r.MulCoeffwise(a, c, want)
	r.Add(want, want, want)
	if !acc.Equal(want) {
		t.Fatal("MulAdd twice != 2*Mul")
	}
}

func TestNTTDomainTracking(t *testing.T) {
	r := testRing(t)
	p := r.NewPoly(r.QBasis(0))
	r.NTT(p)
	if !p.IsNTT {
		t.Fatal("IsNTT not set")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double NTT did not panic")
		}
	}()
	r.NTT(p)
}

func TestSubPolyView(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 4)
	p := s.Uniform(r.DBasis(3))
	v := p.SubPoly(r.PBasis())
	// Mutating the view mutates the parent: shared storage.
	v.Coeffs[0][0] = 12345 % r.Mods[r.NumQ].Q
	if p.Tower(r.NumQ)[0] != v.Coeffs[0][0] {
		t.Fatal("SubPoly does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SubPoly with missing tower did not panic")
		}
	}()
	q := s.Uniform(r.QBasis(0))
	q.SubPoly(r.PBasis())
}

func TestCRTRoundTrip(t *testing.T) {
	r := testRing(t)
	b := r.DBasis(3)
	p := r.NewPoly(b)
	vals := []int64{0, 1, -1, 1 << 40, -(1 << 40), 123456789}
	for j, v := range vals {
		r.SetBig(p, j, big.NewInt(v))
	}
	for j, v := range vals {
		got := r.ToBigCentered(p, j)
		if got.Cmp(big.NewInt(v)) != 0 {
			t.Fatalf("coefficient %d: got %v want %d", j, got, v)
		}
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 5)
	b := r.QBasis(3)

	tern := s.Ternary(b)
	for j := 0; j < r.N; j++ {
		v := r.ToBigCentered(tern, j)
		if v.Cmp(big.NewInt(1)) > 0 || v.Cmp(big.NewInt(-1)) < 0 {
			t.Fatalf("ternary coefficient %d out of range: %v", j, v)
		}
	}

	g := s.Gaussian(b)
	norm := r.InfNorm(g)
	// 6σ tail bound with generous slack.
	if norm.Cmp(big.NewInt(int64(GaussianSigma*10))) > 0 {
		t.Fatalf("gaussian coefficient suspiciously large: %v", norm)
	}

	u := s.Uniform(b)
	for i, tw := range b {
		q := r.Mods[tw].Q
		for j := 0; j < r.N; j++ {
			if u.Coeffs[i][j] >= q {
				t.Fatal("uniform residue out of range")
			}
		}
	}
}

func TestSamplerDeterminism(t *testing.T) {
	r := testRing(t)
	a := NewSampler(r, 42).Uniform(r.QBasis(2))
	b := NewSampler(r, 42).Uniform(r.QBasis(2))
	if !a.Equal(b) {
		t.Fatal("same seed produced different polynomials")
	}
}

func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 6)
	b := r.QBasis(2)
	p := s.Uniform(b)

	// σ_k(σ_k'(p)) == σ_{kk'}(p)
	k1, k2 := 5, 25
	tmp := r.NewPoly(b)
	out1 := r.NewPoly(b)
	r.Automorphism(p, k1, tmp)
	r.Automorphism(tmp, k2, out1)
	out2 := r.NewPoly(b)
	r.Automorphism(p, k1*k2, out2)
	if !out1.Equal(out2) {
		t.Fatal("automorphisms do not compose")
	}

	// σ_1 is the identity.
	id := r.NewPoly(b)
	r.Automorphism(p, 1, id)
	if !id.Equal(p) {
		t.Fatal("sigma_1 != identity")
	}
}

func TestAutomorphismPreservesProducts(t *testing.T) {
	// σ_k is a ring homomorphism: σ(a·b) = σ(a)·σ(b).
	r := testRing(t)
	s := NewSampler(r, 7)
	b := r.QBasis(1)
	a := s.Gaussian(b)
	c := s.Gaussian(b)
	k := r.GaloisElement(3)

	prod := r.NewPoly(b)
	an, cn := a.Copy(), c.Copy()
	r.NTT(an)
	r.NTT(cn)
	r.MulCoeffwise(an, cn, prod)
	r.INTT(prod)
	sigmaProd := r.NewPoly(b)
	r.Automorphism(prod, k, sigmaProd)

	sa, sc := r.NewPoly(b), r.NewPoly(b)
	r.Automorphism(a, k, sa)
	r.Automorphism(c, k, sc)
	r.NTT(sa)
	r.NTT(sc)
	prodSigma := r.NewPoly(b)
	r.MulCoeffwise(sa, sc, prodSigma)
	r.INTT(prodSigma)

	if !sigmaProd.Equal(prodSigma) {
		t.Fatal("automorphism is not a ring homomorphism")
	}
}

func TestGaloisElement(t *testing.T) {
	r := testRing(t)
	if r.GaloisElement(0) != 1 {
		t.Fatal("rotation by 0 should be identity")
	}
	// Rotating by n/2 slots wraps to identity.
	if r.GaloisElement(r.N/2) != 1 {
		t.Fatal("full wrap should be identity")
	}
	if r.GaloisElement(1) != 5 {
		t.Fatalf("GaloisElement(1) = %d, want 5", r.GaloisElement(1))
	}
	// Negative rotation is the inverse element.
	gPos := r.GaloisElement(1)
	gNeg := r.GaloisElement(-1)
	if gPos*gNeg%(2*r.N) != 1 {
		t.Fatal("GaloisElement(-1) is not inverse of GaloisElement(1)")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t)
	s := NewSampler(r, 8)
	b := r.QBasis(2)
	a := s.Uniform(b)
	out := r.NewPoly(b)
	r.MulScalar(a, 3, out)
	want := r.NewPoly(b)
	r.Add(a, a, want)
	r.Add(want, a, want)
	if !out.Equal(want) {
		t.Fatal("3*a != a+a+a")
	}
}
