package ckks

import (
	"math"
	"math/cmplx"
	"testing"
)

// testContext: N=128, 4 towers of 30 bits, 2 P towers, dnum=2.
func testContext(t *testing.T) (*Context, *Encoder, *KeyChain, *PublicKey, *Evaluator) {
	t.Helper()
	ctx, err := NewContext(128, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	kc, pk := GenKeys(ctx, 1)
	ev := NewEvaluator(ctx, kc)
	return ctx, enc, kc, pk, ev
}

func randomValues(n int, seed float64) []complex128 {
	out := make([]complex128, n)
	x := seed
	for i := range out {
		x = math.Mod(x*997.13+0.7, 2) - 1
		y := math.Mod(x*313.77+0.3, 2) - 1
		out[i] = complex(x, y)
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ctx, enc, _, _, _ := testContext(t)
	vals := randomValues(ctx.Slots(), 0.4)
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(pt)
	if e := maxErr(vals, got[:len(vals)]); e > 1e-5 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncodeRejectsOverfull(t *testing.T) {
	ctx, enc, _, _, _ := testContext(t)
	if _, err := enc.Encode(make([]complex128, ctx.Slots()+1), ctx.MaxLevel); err == nil {
		t.Fatal("oversized vector accepted")
	}
}

func TestEncryptDecrypt(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.9)
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pt, pk)
	dec := enc.Decode(ev.Decrypt(ct, kc.Secret()))
	if e := maxErr(vals, dec[:len(vals)]); e > 1e-4 {
		t.Fatalf("encrypt/decrypt error %g", e)
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	a := randomValues(ctx.Slots(), 0.1)
	b := randomValues(ctx.Slots(), 0.8)
	pa, _ := enc.Encode(a, ctx.MaxLevel)
	pb, _ := enc.Encode(b, ctx.MaxLevel)
	ca := ev.Encrypt(pa, pk)
	cb := ev.Encrypt(pb, pk)

	sum := enc.Decode(ev.Decrypt(ev.Add(ca, cb), kc.Secret()))
	diff := enc.Decode(ev.Decrypt(ev.Sub(ca, cb), kc.Secret()))
	for i := range a {
		if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("slot %d: sum error", i)
		}
		if cmplx.Abs(diff[i]-(a[i]-b[i])) > 1e-4 {
			t.Fatalf("slot %d: diff error", i)
		}
	}
}

func TestMulRelinRescale(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	a := randomValues(ctx.Slots(), 0.3)
	b := randomValues(ctx.Slots(), 0.6)
	pa, _ := enc.Encode(a, ctx.MaxLevel)
	pb, _ := enc.Encode(b, ctx.MaxLevel)
	ca := ev.Encrypt(pa, pk)
	cb := ev.Encrypt(pb, pk)

	prod, err := ev.MulRelin(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err = ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Level != ctx.MaxLevel-1 {
		t.Fatalf("level after rescale = %d, want %d", prod.Level, ctx.MaxLevel-1)
	}
	dec := enc.Decode(ev.Decrypt(prod, kc.Secret()))
	for i := range a {
		if cmplx.Abs(dec[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("slot %d: product %v want %v", i, dec[i], a[i]*b[i])
		}
	}
}

func TestMulPlain(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	a := randomValues(ctx.Slots(), 0.2)
	w := randomValues(ctx.Slots(), 0.5)
	pa, _ := enc.Encode(a, ctx.MaxLevel)
	pw, _ := enc.Encode(w, ctx.MaxLevel)
	ct := ev.MulPlain(ev.Encrypt(pa, pk), pw)
	ct, err := ev.Rescale(ct)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(ct, kc.Secret()))
	for i := range a {
		if cmplx.Abs(dec[i]-a[i]*w[i]) > 1e-3 {
			t.Fatalf("slot %d: plain product error", i)
		}
	}
}

func TestRotate(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.7)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	slots := ctx.Slots()

	for _, r := range []int{1, 3, slots - 1} {
		rot, err := ev.Rotate(ct, r)
		if err != nil {
			t.Fatal(err)
		}
		dec := enc.Decode(ev.Decrypt(rot, kc.Secret()))
		for i := 0; i < slots; i++ {
			want := vals[(i+r)%slots]
			if cmplx.Abs(dec[i]-want) > 1e-3 {
				t.Fatalf("rot %d slot %d: got %v want %v", r, i, dec[i], want)
			}
		}
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.25)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	rot, err := ev.Rotate(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(rot, kc.Secret()))
	if e := maxErr(vals, dec[:len(vals)]); e > 1e-3 {
		t.Fatalf("rotation by 0 changed values: %g", e)
	}
}

func TestDepthTwoCircuit(t *testing.T) {
	// ((a*b) rescale) * (c at lower level) exercises level tracking
	// and per-level key generation.
	ctx, enc, kc, pk, ev := testContext(t)
	a := randomValues(ctx.Slots(), 0.11)
	b := randomValues(ctx.Slots(), 0.22)
	pa, _ := enc.Encode(a, ctx.MaxLevel)
	pb, _ := enc.Encode(b, ctx.MaxLevel)
	ca := ev.Encrypt(pa, pk)
	cb := ev.Encrypt(pb, pk)

	ab, err := ev.MulRelin(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	ab, err = ev.Rescale(ab)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := ev.MulRelin(ab, ab)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(sq, kc.Secret()))
	for i := range a {
		want := a[i] * b[i] * a[i] * b[i]
		if cmplx.Abs(dec[i]-want) > 5e-3 {
			t.Fatalf("slot %d: got %v want %v", i, dec[i], want)
		}
	}
}

func TestRescaleAtLevelZeroFails(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	vals := randomValues(4, 0.5)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	var err error
	for ct.Level > 0 {
		ct, err = ev.Rescale(ct)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ev.Rescale(ct); err == nil {
		t.Fatal("rescale at level 0 did not fail")
	}
}

func TestLevelMismatchPanics(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	vals := randomValues(4, 0.5)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct1 := ev.Encrypt(pt, pk)
	ct2, err := ev.Rescale(ev.Encrypt(pt, pk))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add across levels did not panic")
		}
	}()
	ev.Add(ct1, ct2)
}
