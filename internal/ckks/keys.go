package ckks

import (
	"fmt"
	"hash/fnv"
	"sync"

	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// SecretKey is the ternary secret over the full D basis (coefficient
// domain), so it can be restricted to any level and to the P towers.
type SecretKey struct {
	S *ring.Poly
}

// PublicKey is an RLWE encryption of zero at the top level, NTT domain.
type PublicKey struct {
	B, A *ring.Poly
}

// KeyChain owns the secret key and lazily materializes the evaluation
// keys (relinearization and rotation) that homomorphic operations
// need, one per level. A production library would precompute and
// serialize these; for analysis purposes lazy generation keeps tests
// and examples self-contained.
//
// A KeyChain is safe for concurrent use: the serving layer
// (internal/serve) loads keys from many request goroutines at once,
// and generation is memoized under one lock, so every caller of
// RotKey/HoistKey observes the identical key material — which is what
// keeps served results bit-exact across cache evictions and reloads.
// Beyond memoization, each key's randomness is derived from the chain
// seed and the key's own identity (keySampler), so two chains built
// from one seed agree bit-for-bit on every key regardless of the
// order keys are requested — the property that lets cluster shards
// regenerate a tenant's keys independently and still serve replicas
// bit-exactly.
type KeyChain struct {
	ctx     *Context
	seed    int64
	sampler *ring.Sampler // sequential stream for *ephemeral* randomness (Encrypt)
	sk      *SecretKey
	sSquare *ring.Poly // s², full D basis, coefficient domain

	// pool memoizes one switcher per level (internally synchronized,
	// dnum clamped at low levels). Switchers hold no secret material,
	// so they may be shared across key chains / tenants; KeyChain also
	// satisfies serve.SwitcherSource through Switcher.
	pool *hks.SwitcherPool

	mu    sync.Mutex // guards the maps below
	relin map[int]*hks.Evk
	rot   map[int]map[int]*hks.Evk // rot -> level -> evk
	hoist map[int]map[int]*hks.Evk // rot -> level -> hoisting-form evk
}

// GenKeys samples a fresh secret/public key pair and its key chain.
func GenKeys(ctx *Context, seed int64) (*KeyChain, *PublicKey) {
	r := ctx.R
	sampler := ring.NewSampler(r, seed)
	full := r.DBasis(r.NumQ - 1)
	sk := &SecretKey{S: sampler.Ternary(full)}

	// s² over the full basis, kept in the coefficient domain for evk
	// generation at any level.
	sN := sk.S.Copy()
	r.NTT(sN)
	s2 := r.NewPoly(full)
	r.MulCoeffwise(sN, sN, s2)
	r.INTT(s2)

	// pk = (-a·s + e, a) at the top level.
	top := r.QBasis(ctx.MaxLevel)
	a := sampler.Uniform(top)
	a.IsNTT = true
	e := sampler.Gaussian(top)
	r.NTT(e)
	sTop := sk.S.SubPoly(top).Copy()
	r.NTT(sTop)
	b := r.NewPoly(top)
	r.MulCoeffwise(a, sTop, b)
	r.Sub(e, b, b)

	kc := &KeyChain{
		ctx:     ctx,
		seed:    seed,
		sampler: sampler,
		sk:      sk,
		sSquare: s2,
		pool:    ctx.Switchers(),
		relin:   map[int]*hks.Evk{},
		rot:     map[int]map[int]*hks.Evk{},
		hoist:   map[int]map[int]*hks.Evk{},
	}
	return kc, &PublicKey{B: b, A: a}
}

// Secret exposes the secret key for decryption and testing.
func (kc *KeyChain) Secret() *SecretKey { return kc.sk }

// keySampler derives the sampler for one evaluation key from the
// chain seed and the key's identity (form, rotation, level) — NOT
// from a shared sequential stream. This makes every evaluation key a
// pure function of (context, seed, key identity): two independently
// constructed chains with one seed produce bit-identical keys no
// matter which keys are requested, in which order, from how many
// goroutines. The cluster layer is built on that property — any shard
// (or a router-side verifier) regenerates a tenant's keys from the
// tenant seed alone and must land on the same bits as every replica.
func (kc *KeyChain) keySampler(form string, rotBy, level int) *ring.Sampler {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", kc.seed, form, rotBy, level)
	return ring.NewSampler(kc.ctx.R, int64(h.Sum64()&^(1<<63)))
}

// Switcher returns (building if needed) the HKS switcher for a level.
// The signature matches serve.SwitcherSource, so a KeyChain can route
// a level-aware request stream directly.
func (kc *KeyChain) Switcher(level int) (*hks.Switcher, error) {
	return kc.switcherFor(level)
}

// switcherFor resolves a level through the shared pool (which carries
// its own lock — callers may hold kc.mu).
func (kc *KeyChain) switcherFor(level int) (*hks.Switcher, error) {
	sw, err := kc.pool.Switcher(level)
	if err != nil {
		return nil, fmt.Errorf("ckks: no switcher at level %d: %w", level, err)
	}
	return sw, nil
}

// RelinKey returns the s²→s evaluation key for a level.
func (kc *KeyChain) RelinKey(level int) (*hks.Evk, error) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if evk, ok := kc.relin[level]; ok {
		return evk, nil
	}
	sw, err := kc.switcherFor(level)
	if err != nil {
		return nil, err
	}
	evk := sw.GenEvk(kc.keySampler("relin", 0, level), kc.sSquare, kc.sk.S)
	kc.relin[level] = evk
	return evk, nil
}

// ConjKey returns the evaluation key for slot conjugation (the
// automorphism X → X^(2N−1)) at a level.
func (kc *KeyChain) ConjKey(level int) (*hks.Evk, error) {
	// Reserved map key far outside the valid rotation range
	// (rotations are reduced modulo N/2, so no collision).
	const conjSlot = 1 << 30
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if m, ok := kc.rot[conjSlot]; ok {
		if evk, ok := m[level]; ok {
			return evk, nil
		}
	}
	sw, err := kc.switcherFor(level)
	if err != nil {
		return nil, err
	}
	r := kc.ctx.R
	full := r.DBasis(r.NumQ - 1)
	sConj := r.NewPoly(full)
	r.Automorphism(kc.sk.S, 2*r.N-1, sConj)
	evk := sw.GenEvk(kc.keySampler("conj", 0, level), sConj, kc.sk.S)
	if kc.rot[conjSlot] == nil {
		kc.rot[conjSlot] = map[int]*hks.Evk{}
	}
	kc.rot[conjSlot][level] = evk
	return evk, nil
}

// RotKey returns the σ_g(s)→s evaluation key for a rotation amount at
// a level.
func (kc *KeyChain) RotKey(rotBy, level int) (*hks.Evk, error) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if m, ok := kc.rot[rotBy]; ok {
		if evk, ok := m[level]; ok {
			return evk, nil
		}
	}
	sw, err := kc.switcherFor(level)
	if err != nil {
		return nil, err
	}
	r := kc.ctx.R
	g := r.GaloisElement(rotBy)
	full := r.DBasis(r.NumQ - 1)
	sRot := r.NewPoly(full)
	r.Automorphism(kc.sk.S, g, sRot)
	evk := sw.GenEvk(kc.keySampler("rot", rotBy, level), sRot, kc.sk.S)
	if kc.rot[rotBy] == nil {
		kc.rot[rotBy] = map[int]*hks.Evk{}
	}
	kc.rot[rotBy][level] = evk
	return evk, nil
}

// HoistKey returns the hoisting-form rotation key for a rotation
// amount at a level: an evaluation key s → σ_g⁻¹(s), where g = 5^rot.
//
// The ordinary RotKey form σ_g(s) → s requires the automorphism to run
// *before* key switching, so the ModUp input differs per rotation and
// nothing can be shared. The hoisting form switches the un-rotated
// c1 first — k0 + k1·σ_g⁻¹(s) ≈ c1·s — and applies σ_g afterwards:
// σ_g(k1)·s = σ_g(k1·σ_g⁻¹(s)), so (σ_g(c0+k0), σ_g(k1)) decrypts to
// σ_g(m). With the key in this form every rotation of one ciphertext
// replays the same hoisted ModUp (Evaluator.RotateHoisted).
func (kc *KeyChain) HoistKey(rotBy, level int) (*hks.Evk, error) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	if m, ok := kc.hoist[rotBy]; ok {
		if evk, ok := m[level]; ok {
			return evk, nil
		}
	}
	sw, err := kc.switcherFor(level)
	if err != nil {
		return nil, err
	}
	r := kc.ctx.R
	// σ_g⁻¹ = σ_{g'} with g' = 5^(−rot): 5 has order N/2 modulo 2N, so
	// GaloisElement(−rot) is the modular inverse of GaloisElement(rot).
	gInv := r.GaloisElement(-rotBy)
	full := r.DBasis(r.NumQ - 1)
	sInv := r.NewPoly(full)
	r.Automorphism(kc.sk.S, gInv, sInv)
	evk := sw.GenEvk(kc.keySampler("hoist", rotBy, level), kc.sk.S, sInv)
	if kc.hoist[rotBy] == nil {
		kc.hoist[rotBy] = map[int]*hks.Evk{}
	}
	kc.hoist[rotBy][level] = evk
	return evk, nil
}
