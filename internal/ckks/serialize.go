package ckks

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Ciphertext serialization: level and scale header followed by the two
// component polynomials (see ring.WritePoly for the wire format).

// WriteCiphertext serializes ct.
func (c *Context) WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(ct.Level)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(ct.Scale)); err != nil {
		return err
	}
	if err := c.R.WritePoly(w, ct.C0); err != nil {
		return err
	}
	return c.R.WritePoly(w, ct.C1)
}

// ReadCiphertext deserializes a ciphertext written by WriteCiphertext.
func (c *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	var level uint32
	if err := binary.Read(r, binary.LittleEndian, &level); err != nil {
		return nil, fmt.Errorf("ckks: short ciphertext header: %w", err)
	}
	if int(level) > c.MaxLevel {
		return nil, fmt.Errorf("ckks: level %d exceeds context max %d", level, c.MaxLevel)
	}
	var scaleBits uint64
	if err := binary.Read(r, binary.LittleEndian, &scaleBits); err != nil {
		return nil, err
	}
	scale := math.Float64frombits(scaleBits)
	if !(scale > 0) || math.IsInf(scale, 0) {
		return nil, fmt.Errorf("ckks: invalid scale %g", scale)
	}
	c0, err := c.R.ReadPoly(r)
	if err != nil {
		return nil, err
	}
	c1, err := c.R.ReadPoly(r)
	if err != nil {
		return nil, err
	}
	want := c.R.QBasis(int(level))
	if !c0.Basis.Equal(want) || !c1.Basis.Equal(want) {
		return nil, fmt.Errorf("ckks: component basis does not match level %d", level)
	}
	return &Ciphertext{C0: c0, C1: c1, Level: int(level), Scale: scale}, nil
}
