package ckks

import (
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
)

// ctEqual asserts two ciphertexts agree bit for bit.
func ctEqual(t *testing.T, op string, a, b *Ciphertext) {
	t.Helper()
	if a.Level != b.Level || a.Scale != b.Scale {
		t.Fatalf("%s: level/scale differ: (%d, %g) vs (%d, %g)", op, a.Level, a.Scale, b.Level, b.Scale)
	}
	if !a.C0.Equal(b.C0) || !a.C1.Equal(b.C1) {
		t.Fatalf("%s: engine-backed evaluator differs from serial", op)
	}
}

// TestEvaluatorWithEngineBitExact runs the HKS-triggering operations
// through serial and engine-backed evaluators sharing one key chain,
// asserting identical ciphertexts for every dataflow.
func TestEvaluatorWithEngineBitExact(t *testing.T) {
	ctx, err := NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, pk := GenKeys(ctx, 1)
	serial := NewEvaluator(ctx, kc)
	e := engine.New(4)
	defer e.Close()

	enc := NewEncoder(ctx)
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(float64(i)*0.25, -float64(i)*0.125)
	}
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	ct1 := serial.Encrypt(pt, pk)
	ct2 := serial.Encrypt(pt, pk)

	// Pre-generate every lazily materialized key so evaluation order
	// cannot perturb the sampler stream between evaluators.
	if _, err := kc.RelinKey(ctx.MaxLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.RotKey(1, ctx.MaxLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := kc.ConjKey(ctx.MaxLevel); err != nil {
		t.Fatal(err)
	}

	wantMul, err := serial.MulRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := serial.Rescale(wantMul)
	if err != nil {
		t.Fatal(err)
	}
	wantRot, err := serial.Rotate(ct1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantConj, err := serial.Conjugate(ct1)
	if err != nil {
		t.Fatal(err)
	}

	for _, df := range []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC} {
		t.Run(df.String(), func(t *testing.T) {
			ev := serial.WithEngine(e, df)
			gotMul, err := ev.MulRelin(ct1, ct2)
			if err != nil {
				t.Fatal(err)
			}
			ctEqual(t, "MulRelin", gotMul, wantMul)

			gotRes, err := ev.Rescale(gotMul)
			if err != nil {
				t.Fatal(err)
			}
			ctEqual(t, "Rescale", gotRes, wantRes)

			gotRot, err := ev.Rotate(ct1, 1)
			if err != nil {
				t.Fatal(err)
			}
			ctEqual(t, "Rotate", gotRot, wantRot)

			gotConj, err := ev.Conjugate(ct1)
			if err != nil {
				t.Fatal(err)
			}
			ctEqual(t, "Conjugate", gotConj, wantConj)
		})
	}
}

// TestEvaluatorWithEngineDecrypts sanity-checks precision end to end
// through the engine path: encrypt, square, rescale, decrypt.
func TestEvaluatorWithEngineDecrypts(t *testing.T) {
	ctx, err := NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, pk := GenKeys(ctx, 2)
	e := engine.New(4)
	defer e.Close()
	ev := NewEvaluator(ctx, kc).WithEngine(e, dataflow.OC)

	enc := NewEncoder(ctx)
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(0.5+float64(i%4)*0.1, 0)
	}
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pt, pk)
	sq, err := ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = ev.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ev.Decrypt(sq, kc.Secret()))
	for i := range vals {
		want := vals[i] * vals[i]
		if d := got[i] - want; real(d)*real(d)+imag(d)*imag(d) > 1e-4 {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want)
		}
	}
}
