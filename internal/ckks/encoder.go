package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"ciflow/internal/ring"
)

// Encoder maps complex vectors to plaintext polynomials through the
// canonical embedding: slot j of a message is the evaluation of the
// plaintext polynomial at ζ^(5^j), ζ = e^(iπ/N). The direct O(N²)
// evaluation keeps the code transparent; functional tests and examples
// run at N ≤ 2^13 where this is fast enough.
type Encoder struct {
	ctx    *Context
	powers []int        // 5^j mod 2N for each slot j
	zeta   []complex128 // ζ^k for k in [0, 2N)
}

// NewEncoder builds an encoder for the context.
func NewEncoder(ctx *Context) *Encoder {
	n := ctx.R.N
	twoN := 2 * n
	e := &Encoder{ctx: ctx}
	e.powers = make([]int, n/2)
	g := 1
	for j := range e.powers {
		e.powers[j] = g
		g = (g * 5) % twoN
	}
	e.zeta = make([]complex128, twoN)
	for k := range e.zeta {
		theta := math.Pi * float64(k) / float64(n)
		e.zeta[k] = cmplx.Exp(complex(0, theta))
	}
	return e
}

// Plaintext is an encoded message: a polynomial over B_level carrying
// an encoding scale.
type Plaintext struct {
	P     *ring.Poly // NTT domain
	Level int
	Scale float64
}

// Encode embeds values (len ≤ N/2; shorter vectors are zero-padded)
// into a plaintext at the given level with the context scale.
func (e *Encoder) Encode(values []complex128, level int) (*Plaintext, error) {
	n := e.ctx.R.N
	slots := n / 2
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	z := make([]complex128, slots)
	copy(z, values)

	// m_k = (2Δ/N)·Re( Σ_j z_j · conj(ζ^(5^j·k)) ), rounded.
	p := e.ctx.R.NewPoly(e.ctx.R.QBasis(level))
	twoN := 2 * n
	for k := 0; k < n; k++ {
		var acc complex128
		for j, zj := range z {
			if zj == 0 {
				continue
			}
			rot := (e.powers[j] * k) % twoN
			acc += zj * cmplx.Conj(e.zeta[rot])
		}
		v := real(acc) * 2 / float64(n) * e.ctx.Scale
		setFloat(e.ctx.R, p, k, v)
	}
	e.ctx.R.NTT(p)
	return &Plaintext{P: p, Level: level, Scale: e.ctx.Scale}, nil
}

// Decode evaluates the plaintext polynomial at the slot roots and
// rescales, returning all N/2 slots.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	r := e.ctx.R
	p := pt.P.Copy()
	r.INTT(p)
	n := r.N
	twoN := 2 * n

	// Centered coefficients as floats (safe: decrypted plaintexts are
	// far below the basis product).
	coeffs := make([]float64, n)
	for k := 0; k < n; k++ {
		coeffs[k] = bigToFloat(r.ToBigCentered(p, k))
	}
	out := make([]complex128, n/2)
	for j := range out {
		var acc complex128
		for k := 0; k < n; k++ {
			if coeffs[k] == 0 {
				continue
			}
			rot := (e.powers[j] * k) % twoN
			acc += complex(coeffs[k], 0) * e.zeta[rot]
		}
		out[j] = acc / complex(pt.Scale, 0)
	}
	return out
}

// setFloat writes round(v) into coefficient k across all towers.
func setFloat(r *ring.Ring, p *ring.Poly, k int, v float64) {
	bi, _ := big.NewFloat(math.Round(v)).Int(nil)
	r.SetBig(p, k, bi)
}

// bigToFloat converts exactly enough of a centered big.Int for
// decoding purposes.
func bigToFloat(x *big.Int) float64 {
	f, _ := new(big.Float).SetInt(x).Float64()
	return f
}
