package ckks

import (
	"fmt"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// Ciphertext is a two-component RLWE ciphertext in the NTT domain over
// B_level, carrying its encoding scale.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Level  int
	Scale  float64
}

// Copy returns a deep copy.
func (ct *Ciphertext) Copy() *Ciphertext {
	return &Ciphertext{C0: ct.C0.Copy(), C1: ct.C1.Copy(), Level: ct.Level, Scale: ct.Scale}
}

// Evaluator performs homomorphic operations with keys from a KeyChain.
type Evaluator struct {
	ctx *Context
	kc  *KeyChain

	// When eng is set, key switching runs as a df-shaped task graph on
	// the worker pool and the transforms around it go tower-parallel;
	// results are bit-exact with the serial path.
	eng *engine.Engine
	df  dataflow.Dataflow
}

// NewEvaluator binds an evaluator to a context and key chain.
func NewEvaluator(ctx *Context, kc *KeyChain) *Evaluator {
	return &Evaluator{ctx: ctx, kc: kc}
}

// WithEngine returns an evaluator sharing ev's context and key chain
// whose hybrid key switches execute on e under the given dataflow
// (Rotate, MulRelin, Conjugate, and everything built on them benefit
// transparently). Outputs are bit-exact with the serial evaluator.
func (ev *Evaluator) WithEngine(e *engine.Engine, df dataflow.Dataflow) *Evaluator {
	ev2 := *ev
	ev2.eng = e
	ev2.df = df
	return &ev2
}

// runner adapts the engine for the ring's tower-parallel transforms;
// nil means serial.
func (ev *Evaluator) runner() ring.Runner {
	if ev.eng == nil {
		return nil
	}
	return ev.eng
}

// keySwitch dispatches one hybrid key switch to the engine when one is
// attached, falling back to the serial pipeline otherwise.
func (ev *Evaluator) keySwitch(sw *hks.Switcher, d *ring.Poly, evk *hks.Evk) (c0, c1 *ring.Poly) {
	if ev.eng == nil {
		return sw.KeySwitch(d, evk)
	}
	return sw.SwitchParallel(ev.eng, ev.df, d, evk)
}

// Encrypt encrypts a plaintext under the public key:
// ct = (b·u + e0 + pt, a·u + e1).
func (ev *Evaluator) Encrypt(pt *Plaintext, pk *PublicKey) *Ciphertext {
	r := ev.ctx.R
	top := r.QBasis(ev.ctx.MaxLevel)
	if pt.Level != ev.ctx.MaxLevel {
		panic(fmt.Sprintf("ckks: Encrypt requires a top-level plaintext, got level %d", pt.Level))
	}
	u := ev.kc.sampler.Ternary(top)
	r.NTT(u)
	e0 := ev.kc.sampler.Gaussian(top)
	e1 := ev.kc.sampler.Gaussian(top)
	r.NTT(e0)
	r.NTT(e1)

	c0 := r.NewPoly(top)
	r.MulCoeffwise(pk.B, u, c0)
	r.Add(c0, e0, c0)
	r.Add(c0, pt.P, c0)
	c1 := r.NewPoly(top)
	r.MulCoeffwise(pk.A, u, c1)
	r.Add(c1, e1, c1)
	return &Ciphertext{C0: c0, C1: c1, Level: pt.Level, Scale: pt.Scale}
}

// Decrypt recovers the plaintext pt = c0 + c1·s.
func (ev *Evaluator) Decrypt(ct *Ciphertext, sk *SecretKey) *Plaintext {
	r := ev.ctx.R
	b := r.QBasis(ct.Level)
	s := sk.S.SubPoly(b).Copy()
	r.NTT(s)
	p := r.NewPoly(b)
	r.MulCoeffwise(ct.C1, s, p)
	r.Add(p, ct.C0, p)
	return &Plaintext{P: p, Level: ct.Level, Scale: ct.Scale}
}

func (ev *Evaluator) checkPair(op string, a, b *Ciphertext) {
	if a.Level != b.Level {
		panic(fmt.Sprintf("ckks: %s level mismatch %d vs %d", op, a.Level, b.Level))
	}
	if a.Scale != b.Scale {
		panic(fmt.Sprintf("ckks: %s scale mismatch %g vs %g", op, a.Scale, b.Scale))
	}
}

// Add returns ct1 + ct2 (matching level and scale).
func (ev *Evaluator) Add(ct1, ct2 *Ciphertext) *Ciphertext {
	ev.checkPair("Add", ct1, ct2)
	r := ev.ctx.R
	out := &Ciphertext{
		C0: r.NewPoly(ct1.C0.Basis), C1: r.NewPoly(ct1.C1.Basis),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	r.Add(ct1.C0, ct2.C0, out.C0)
	r.Add(ct1.C1, ct2.C1, out.C1)
	return out
}

// Sub returns ct1 - ct2.
func (ev *Evaluator) Sub(ct1, ct2 *Ciphertext) *Ciphertext {
	ev.checkPair("Sub", ct1, ct2)
	r := ev.ctx.R
	out := &Ciphertext{
		C0: r.NewPoly(ct1.C0.Basis), C1: r.NewPoly(ct1.C1.Basis),
		Level: ct1.Level, Scale: ct1.Scale,
	}
	r.Sub(ct1.C0, ct2.C0, out.C0)
	r.Sub(ct1.C1, ct2.C1, out.C1)
	return out
}

// AddPlain returns ct + pt.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level || ct.Scale != pt.Scale {
		panic("ckks: AddPlain level/scale mismatch")
	}
	r := ev.ctx.R
	out := ct.Copy()
	r.Add(out.C0, pt.P, out.C0)
	return out
}

// MulPlain returns ct ⊙ pt (scale multiplies; rescale afterwards).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckks: MulPlain level mismatch")
	}
	r := ev.ctx.R
	out := ct.Copy()
	r.MulCoeffwise(out.C0, pt.P, out.C0)
	r.MulCoeffwise(out.C1, pt.P, out.C1)
	out.Scale = ct.Scale * pt.Scale
	return out
}

// MulRelin multiplies two ciphertexts and relinearizes the quadratic
// term through hybrid key switching (the paper's primary workload for
// multiplications). The result keeps scale Δ²; call Rescale next.
func (ev *Evaluator) MulRelin(ct1, ct2 *Ciphertext) (*Ciphertext, error) {
	if ct1.Level != ct2.Level {
		return nil, fmt.Errorf("ckks: MulRelin level mismatch %d vs %d", ct1.Level, ct2.Level)
	}
	r := ev.ctx.R
	b := r.QBasis(ct1.Level)
	d0 := r.NewPoly(b)
	d1 := r.NewPoly(b)
	d2 := r.NewPoly(b)
	r.MulCoeffwise(ct1.C0, ct2.C0, d0)
	r.MulCoeffwise(ct1.C0, ct2.C1, d1)
	r.MulAddCoeffwise(ct1.C1, ct2.C0, d1)
	r.MulCoeffwise(ct1.C1, ct2.C1, d2)

	sw, err := ev.kc.Switcher(ct1.Level)
	if err != nil {
		return nil, err
	}
	rlk, err := ev.kc.RelinKey(ct1.Level)
	if err != nil {
		return nil, err
	}
	k0, k1 := ev.keySwitch(sw, d2, rlk)
	r.Add(d0, k0, d0)
	r.Add(d1, k1, d1)
	return &Ciphertext{C0: d0, C1: d1, Level: ct1.Level, Scale: ct1.Scale * ct2.Scale}, nil
}

// Rescale drops the top tower, dividing the encrypted message by
// q_level and reducing the level by one (the RNS rescaling of
// full-RNS CKKS).
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	r := ev.ctx.R
	qLastTower := ct.Level
	qLast := r.Moduli[qLastTower]
	newB := r.QBasis(ct.Level - 1)
	out := &Ciphertext{Level: ct.Level - 1, Scale: ct.Scale / float64(qLast)}
	for ci, src := range []*ring.Poly{ct.C0, ct.C1} {
		p := src.Copy()
		r.INTTWith(ev.runner(), p)
		last := p.Tower(qLastTower)
		res := r.NewPoly(newB)
		for i, t := range newB {
			m := r.Mods[t]
			qInv := m.Inv(m.Reduce(qLast))
			row := p.Tower(t)
			dst := res.Coeffs[i]
			for k := range dst {
				// (c_t - [c]_qLast) / qLast mod q_t, with the residue
				// centered so the rounding error stays ≤ 1/2.
				v := last[k]
				centered := m.Reduce(v)
				if v > qLast/2 {
					centered = m.Sub(centered, m.Reduce(qLast))
				}
				dst[k] = m.Mul(m.Sub(row[k], centered), qInv)
			}
		}
		r.NTTWith(ev.runner(), res)
		if ci == 0 {
			out.C0 = res
		} else {
			out.C1 = res
		}
	}
	return out, nil
}

// Rotate cyclically rotates the message vector left by rotBy slots via
// the Galois automorphism σ_g, g = 5^rotBy, followed by key switching
// back to s — the second HKS trigger the paper analyzes.
func (ev *Evaluator) Rotate(ct *Ciphertext, rotBy int) (*Ciphertext, error) {
	r := ev.ctx.R
	b := r.QBasis(ct.Level)
	g := r.GaloisElement(rotBy)

	rc0 := ct.C0.Copy()
	rc1 := ct.C1.Copy()
	r.INTTWith(ev.runner(), rc0)
	r.INTTWith(ev.runner(), rc1)
	a0 := r.NewPoly(b)
	a1 := r.NewPoly(b)
	r.Automorphism(rc0, g, a0)
	r.Automorphism(rc1, g, a1)
	r.NTTWith(ev.runner(), a0)
	r.NTTWith(ev.runner(), a1)

	sw, err := ev.kc.Switcher(ct.Level)
	if err != nil {
		return nil, err
	}
	rk, err := ev.kc.RotKey(rotBy, ct.Level)
	if err != nil {
		return nil, err
	}
	k0, k1 := ev.keySwitch(sw, a1, rk)
	r.Add(a0, k0, a0)
	return &Ciphertext{C0: a0, C1: k1, Level: ct.Level, Scale: ct.Scale}, nil
}

// RotateHoisted rotates one ciphertext by every amount in rots with a
// single shared Decompose+ModUp: ct.C1 is hoisted once (hks.Hoisted),
// and each rotation replays only ApplyKey+ModDown against its
// hoisting-form key (KeyChain.HoistKey) before the Galois
// automorphism is applied to the switched pair. For k rotations this
// saves (k−1) executions of the ModUp pipeline versus k Rotate calls
// — the amortization CiFlow's reuse analysis models and the diagonal
// method's rotation fan-out exploits.
//
// Results are returned in rots order and decrypt to the same messages
// as the corresponding Rotate calls (the hoisting-form keys carry
// independent encryption randomness, so outputs agree to within key-
// switching noise, not bit-exactly). A rotation amount of 0 returns a
// copy of ct. With an engine attached (WithEngine), both the hoist
// and each replay run as task graphs under the evaluator's dataflow.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rots []int) ([]*Ciphertext, error) {
	r := ev.ctx.R
	b := r.QBasis(ct.Level)
	sw, err := ev.kc.Switcher(ct.Level)
	if err != nil {
		return nil, err
	}
	// Materialize every key first so no hoisted state is held across
	// key generation failures.
	evks := make([]*hks.Evk, len(rots))
	anyKey := false
	for i, rot := range rots {
		if rot%ev.ctx.Slots() == 0 {
			continue
		}
		if evks[i], err = ev.kc.HoistKey(rot, ct.Level); err != nil {
			return nil, err
		}
		anyKey = true
	}
	if !anyKey { // only identity rotations: nothing to hoist
		outs := make([]*Ciphertext, len(rots))
		for i := range outs {
			outs[i] = ct.Copy()
		}
		return outs, nil
	}

	var h *hks.Hoisted
	if ev.eng == nil {
		h = sw.Hoist(ct.C1)
	} else {
		h = sw.HoistParallel(ev.eng, ev.df, ct.C1)
	}
	defer h.Release()

	// Per-rotation scratch, reused across the fan-out.
	k0 := r.NewPoly(b)
	k1 := r.NewPoly(b)
	t0 := r.NewPoly(b)
	outs := make([]*Ciphertext, len(rots))
	for i, rot := range rots {
		if evks[i] == nil { // rotation by 0: identity
			outs[i] = ct.Copy()
			continue
		}
		if ev.eng == nil {
			h.SwitchInto(evks[i], k0, k1)
		} else {
			h.SwitchParallelInto(ev.eng, evks[i], k0, k1)
		}
		r.Add(ct.C0, k0, t0)
		r.INTTWith(ev.runner(), t0)
		r.INTTWith(ev.runner(), k1)
		a0 := r.NewPoly(b)
		a1 := r.NewPoly(b)
		g := r.GaloisElement(rot)
		r.Automorphism(t0, g, a0)
		r.Automorphism(k1, g, a1)
		r.NTTWith(ev.runner(), a0)
		r.NTTWith(ev.runner(), a1)
		outs[i] = &Ciphertext{C0: a0, C1: a1, Level: ct.Level, Scale: ct.Scale}
	}
	return outs, nil
}
