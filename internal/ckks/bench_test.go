package ckks

import "testing"

func benchEval(b *testing.B) (*Context, *Encoder, *KeyChain, *PublicKey, *Evaluator, *Ciphertext) {
	b.Helper()
	ctx, err := NewContext(1<<12, 6, 40, 3, 41, 3)
	if err != nil {
		b.Fatal(err)
	}
	enc := NewEncoder(ctx)
	kc, pk := GenKeys(ctx, 1)
	ev := NewEvaluator(ctx, kc)
	vals := make([]complex128, 16)
	for i := range vals {
		vals[i] = complex(0.01*float64(i), 0)
	}
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		b.Fatal(err)
	}
	return ctx, enc, kc, pk, ev, ev.Encrypt(pt, pk)
}

func BenchmarkMulRelin(b *testing.B) {
	_, _, kc, _, ev, ct := benchEval(b)
	if _, err := kc.RelinKey(ct.Level); err != nil { // pre-generate
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MulRelin(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotate(b *testing.B) {
	_, _, kc, _, ev, ct := benchEval(b)
	if _, err := kc.RotKey(1, ct.Level); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Rotate(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRescale(b *testing.B) {
	_, _, _, _, ev, ct := benchEval(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Rescale(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptDecrypt(b *testing.B) {
	ctx, enc, kc, pk, ev, _ := benchEval(b)
	vals := make([]complex128, 16)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct := ev.Encrypt(pt, pk)
		ev.Decrypt(ct, kc.Secret())
	}
}
