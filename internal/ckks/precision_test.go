package ckks

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// TestPrecisionOverDepth tracks error growth along a multiplication
// chain: x, x², x⁴ — each squaring costs one relinearization (a hybrid
// key switch) plus a rescale. Error must grow gracefully, staying far
// below the 2^-10 usefulness floor for inputs of magnitude ~1.
func TestPrecisionOverDepth(t *testing.T) {
	ctx, err := NewContext(128, 5, 35, 3, 36, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	kc, pk := GenKeys(ctx, 3)
	ev := NewEvaluator(ctx, kc)

	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(0.9-0.01*float64(i%50), 0)
	}
	pt, err := enc.Encode(vals, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	ct := ev.Encrypt(pt, pk)
	want := append([]complex128(nil), vals...)

	var prevErr float64
	for depth := 1; depth <= 2; depth++ {
		sq, err := ev.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = ev.Rescale(sq)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
		dec := enc.Decode(ev.Decrypt(ct, kc.Secret()))
		e := maxErr(want, dec[:len(want)])
		t.Logf("depth %d: max slot error %.3e", depth, e)
		if e > math.Pow(2, -10) {
			t.Fatalf("depth %d: error %g too large", depth, e)
		}
		if depth > 1 && e < prevErr/1e3 {
			t.Fatalf("error shrank implausibly between depths: %g -> %g", prevErr, e)
		}
		prevErr = e
	}
}

// TestQuickEncodeLinearity: Encode(a) + Encode(b) decodes to a+b.
func TestQuickEncodeLinearity(t *testing.T) {
	ctx, err := NewContext(64, 3, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(ctx)
	f := func(re1, im1, re2, im2 float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0.5
			}
			return math.Mod(v, 1)
		}
		a := complex(clamp(re1), clamp(im1))
		b := complex(clamp(re2), clamp(im2))
		pa, err1 := enc.Encode([]complex128{a}, ctx.MaxLevel)
		pb, err2 := enc.Encode([]complex128{b}, ctx.MaxLevel)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := &Plaintext{P: ctx.R.NewPoly(pa.P.Basis), Level: pa.Level, Scale: pa.Scale}
		ctx.R.Add(pa.P, pb.P, sum.P)
		got := enc.Decode(sum)[0]
		return cmplx.Abs(got-(a+b)) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleTrackingThroughOps pins the scale bookkeeping rules.
func TestScaleTrackingThroughOps(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	pt, _ := enc.Encode(randomValues(4, 0.5), ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	if ct.Scale != ctx.Scale {
		t.Fatalf("fresh ciphertext scale %g", ct.Scale)
	}
	prod, err := ev.MulRelin(ct, ct)
	if err != nil {
		t.Fatal(err)
	}
	if prod.Scale != ctx.Scale*ctx.Scale {
		t.Fatalf("product scale %g, want %g", prod.Scale, ctx.Scale*ctx.Scale)
	}
	res, err := ev.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	qLast := float64(ctx.R.Moduli[ctx.MaxLevel])
	if math.Abs(res.Scale-prod.Scale/qLast) > 1e-6 {
		t.Fatalf("rescaled scale %g, want %g", res.Scale, prod.Scale/qLast)
	}
	// Addition preserves scale.
	sum := ev.Add(ct, ct)
	if sum.Scale != ct.Scale {
		t.Fatal("Add changed the scale")
	}
}
