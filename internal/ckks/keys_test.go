package ckks

import (
	"bytes"
	"testing"
)

// Evaluation keys must be a pure function of (context, seed, key
// identity), independent of the order keys are requested: two chains
// built from one seed — on two cluster shards, or a shard and a
// verifier — have to agree on every key bit even though concurrent
// serving generates them in arbitrary order.
func TestKeyChainDeterministicAcrossInstances(t *testing.T) {
	ctx, err := NewContext(128, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := GenKeys(ctx, 42)
	b, _ := GenKeys(ctx, 42)
	other, _ := GenKeys(ctx, 43)

	type req struct {
		rot   int
		level int
	}
	reqs := []req{{1, 3}, {2, 3}, {4, 2}, {1, 1}, {8, 3}}
	// Chain b generates the same keys in reverse order, with unrelated
	// keys interleaved, so any shared-stream dependence would surface.
	for i := len(reqs) - 1; i >= 0; i-- {
		if _, err := b.RelinKey(reqs[i].level); err != nil {
			t.Fatal(err)
		}
		if _, err := b.HoistKey(reqs[i].rot, reqs[i].level); err != nil {
			t.Fatal(err)
		}
	}
	for _, rq := range reqs {
		ka, err := a.HoistKey(rq.rot, rq.level)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := b.HoistKey(rq.rot, rq.level)
		if err != nil {
			t.Fatal(err)
		}
		ko, err := other.HoistKey(rq.rot, rq.level)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := ctx.Switchers().Switcher(rq.level)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bb, bo bytes.Buffer
		if err := sw.WriteEvk(&ba, ka); err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteEvk(&bb, kb); err != nil {
			t.Fatal(err)
		}
		if err := sw.WriteEvk(&bo, ko); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("hoist key (rot %d, level %d) differs between same-seed chains", rq.rot, rq.level)
		}
		if bytes.Equal(ba.Bytes(), bo.Bytes()) {
			t.Fatalf("hoist key (rot %d, level %d) identical across different seeds", rq.rot, rq.level)
		}
	}
	ra, err := a.RelinKey(3)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RelinKey(3)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := ctx.Switchers().Switcher(3)
	var ba, bb bytes.Buffer
	if err := sw.WriteEvk(&ba, ra); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvk(&bb, rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("relin key differs between same-seed chains")
	}
}
