package ckks

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestCiphertextRoundTrip(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.44)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)

	var buf bytes.Buffer
	if err := ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != ct.Level || got.Scale != ct.Scale {
		t.Fatalf("header mismatch: %d/%g vs %d/%g", got.Level, got.Scale, ct.Level, ct.Scale)
	}
	if !got.C0.Equal(ct.C0) || !got.C1.Equal(ct.C1) {
		t.Fatal("components differ after roundtrip")
	}
	// The deserialized ciphertext must still decrypt.
	dec := enc.Decode(ev.Decrypt(got, kc.Secret()))
	if e := maxErr(vals, dec[:len(vals)]); e > 1e-4 {
		t.Fatalf("decryption after roundtrip error %g", e)
	}
}

func TestCiphertextRoundTripAfterRescale(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	pt, _ := enc.Encode(randomValues(4, 0.2), ctx.MaxLevel)
	ct, err := ev.Rescale(ev.Encrypt(pt, pk))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != ctx.MaxLevel-1 {
		t.Fatalf("level %d after roundtrip", got.Level)
	}
}

func TestReadCiphertextRejectsCorruption(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	pt, _ := enc.Encode(randomValues(4, 0.9), ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	var buf bytes.Buffer
	if err := ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Absurd level.
	bad := append([]byte(nil), good...)
	bad[0] = 0xee
	if _, err := ctx.ReadCiphertext(bytes.NewReader(bad)); err == nil {
		t.Error("bad level accepted")
	}
	// Zero scale.
	bad = append([]byte(nil), good...)
	for i := 4; i < 12; i++ {
		bad[i] = 0
	}
	if _, err := ctx.ReadCiphertext(bytes.NewReader(bad)); err == nil {
		t.Error("zero scale accepted")
	}
	// Truncation.
	if _, err := ctx.ReadCiphertext(bytes.NewReader(good[:20])); err == nil {
		t.Error("truncated ciphertext accepted")
	}
	if _, err := ctx.ReadCiphertext(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
}

// Exhaustive truncation sweep: every strict prefix of a serialized
// ciphertext must error without panicking, and non-finite or negative
// scales are rejected at the header.
func TestReadCiphertextTruncationRobust(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	pt, _ := enc.Encode(randomValues(4, 0.7), ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	var buf bytes.Buffer
	if err := ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("truncation at %d/%d panicked: %v", i, len(good), rec)
				}
			}()
			if _, err := ctx.ReadCiphertext(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("truncation at %d/%d read successfully", i, len(good))
			}
		}()
	}
	// +Inf and negative scale encodings must be refused.
	for name, bits := range map[string]uint64{
		"inf scale":      math.Float64bits(math.Inf(1)),
		"negative scale": math.Float64bits(-ct.Scale),
		"nan scale":      math.Float64bits(math.NaN()),
	} {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(bad[4:12], bits)
		if _, err := ctx.ReadCiphertext(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
