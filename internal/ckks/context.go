// Package ckks implements a compact CKKS scheme (Cheon–Kim–Kim–Song)
// on top of the hybrid key-switching core in internal/hks: encoding of
// real/complex vectors via the canonical embedding, public-key
// encryption, addition, multiplication with relinearization and
// rescaling, and slot rotation via Galois automorphisms.
//
// This is the workload layer of the CiFlow reproduction: rotations and
// multiplications are exactly the operations that trigger key
// switching (paper §II), and examples/private_inference uses this
// package to measure the HKS share of a linear-layer workload. Beyond
// the serial scheme, Evaluator.WithEngine runs every key switch as an
// engine task graph under a chosen dataflow, and the rotation fan-out
// of the diagonal method is hoisted: RotateHoisted (and Apply on top
// of it) shares one Decompose+ModUp across all rotation amounts using
// hoisting-form keys (KeyChain.HoistKey, s → σ_g⁻¹(s), automorphism
// applied after the switch).
//
// KeyChain is the key authority for the layers above: it lazily
// generates and memoizes switchers and evaluation keys per level, is
// safe for concurrent use, and backs the bounded rotation-key LRU of
// the internal/serve service — memoization is what keeps served
// results bit-exact across cache evictions and reloads.
//
// The implementation favours clarity and exact testability over
// performance and side-channel hygiene; it must not be used to protect
// real data.
package ckks

import (
	"fmt"
	"sync"

	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// Context carries the public parameters of a CKKS instance.
type Context struct {
	R        *ring.Ring
	Scale    float64 // Δ, the encoding scale
	Dnum     int     // key-switching digit count
	MaxLevel int     // top level L (towers q_0..q_L)

	// poolOnce/pool back Switchers: one shared per-level switcher pool
	// for every key chain over this context (switchers are public
	// precomputation — see hks.SwitcherPool — so tenants share them).
	poolOnce sync.Once
	pool     *hks.SwitcherPool
}

// NewContext builds a CKKS context over a generated ring with numQ
// Q-moduli of qBits bits and numP P-moduli of pBits bits. The scale is
// set to 2^qBits so that rescaling after multiplication approximately
// preserves it.
func NewContext(n, numQ, qBits, numP, pBits, dnum int) (*Context, error) {
	r, err := ring.NewRingGenerated(n, numQ, qBits, numP, pBits)
	if err != nil {
		return nil, err
	}
	if dnum < 1 || dnum > numQ {
		return nil, fmt.Errorf("ckks: dnum %d out of range [1,%d]", dnum, numQ)
	}
	return &Context{
		R:        r,
		Scale:    float64(uint64(1) << uint(qBits)),
		Dnum:     dnum,
		MaxLevel: numQ - 1,
	}, nil
}

// Slots returns the number of message slots, N/2.
func (c *Context) Slots() int { return c.R.N / 2 }

// Switchers returns the context's shared per-level switcher pool
// (lazily created): one hks.Switcher per level, with the digit count
// shrinking automatically when fewer towers than dnum remain active.
// Every KeyChain over this context draws from the same pool, so a
// multi-tenant deployment (one chain per tenant) builds each level's
// switcher once.
func (c *Context) Switchers() *hks.SwitcherPool {
	c.poolOnce.Do(func() { c.pool = hks.NewSwitcherPool(c.R, c.Dnum) })
	return c.pool
}
