package ckks

import (
	"fmt"
	"sort"

	"ciflow/internal/ring"
)

// Conjugate applies complex conjugation to every slot via the Galois
// automorphism X → X^(2N−1), followed by a key switch back to s.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	r := ev.ctx.R
	b := r.QBasis(ct.Level)
	k := 2*r.N - 1

	rc0 := ct.C0.Copy()
	rc1 := ct.C1.Copy()
	r.INTTWith(ev.runner(), rc0)
	r.INTTWith(ev.runner(), rc1)
	a0 := r.NewPoly(b)
	a1 := r.NewPoly(b)
	r.Automorphism(rc0, k, a0)
	r.Automorphism(rc1, k, a1)
	r.NTTWith(ev.runner(), a0)
	r.NTTWith(ev.runner(), a1)

	sw, err := ev.kc.Switcher(ct.Level)
	if err != nil {
		return nil, err
	}
	rk, err := ev.kc.ConjKey(ct.Level)
	if err != nil {
		return nil, err
	}
	k0, k1 := ev.keySwitch(sw, a1, rk)
	r.Add(a0, k0, a0)
	return &Ciphertext{C0: a0, C1: k1, Level: ct.Level, Scale: ct.Scale}, nil
}

// InnerSum adds the first n slots (n a power of two) into every one of
// those slot positions using log2(n) rotations — the rotate-and-sum
// reduction used by dot products and pooling layers. Each rotation is
// one hybrid key switch; the rotations form a sequential chain (each
// consumes the previous sum), so unlike Apply's independent fan-out
// they cannot share a hoisted ModUp.
func (ev *Evaluator) InnerSum(ct *Ciphertext, n int) (*Ciphertext, error) {
	if n < 1 || n&(n-1) != 0 || n > ev.ctx.Slots() {
		return nil, fmt.Errorf("ckks: InnerSum width %d must be a power of two <= %d", n, ev.ctx.Slots())
	}
	out := ct.Copy()
	for step := 1; step < n; step <<= 1 {
		rot, err := ev.Rotate(out, step)
		if err != nil {
			return nil, err
		}
		out = ev.Add(out, rot)
	}
	return out, nil
}

// LinearTransform is a plaintext matrix in diagonal form, ready to be
// applied to a ciphertext with the rotate-multiply-accumulate
// ("diagonal") method. Rotation r contributes diag_r(W)[i] = W[i][i+r].
type LinearTransform struct {
	Dim   int
	diags map[int]*Plaintext
}

// NewLinearTransform encodes the dim×dim real matrix W (row-major) at
// the given level. Only non-zero diagonals are stored; slots beyond
// the matrix replicate W so rotations wrap correctly (dim must divide
// the slot count).
func (e *Encoder) NewLinearTransform(w [][]float64, level int) (*LinearTransform, error) {
	dim := len(w)
	if dim == 0 {
		return nil, fmt.Errorf("ckks: empty matrix")
	}
	slots := e.ctx.Slots()
	if slots%dim != 0 {
		return nil, fmt.Errorf("ckks: matrix dim %d must divide slot count %d", dim, slots)
	}
	for i, row := range w {
		if len(row) != dim {
			return nil, fmt.Errorf("ckks: row %d has %d entries, want %d", i, len(row), dim)
		}
	}
	lt := &LinearTransform{Dim: dim, diags: map[int]*Plaintext{}}
	for r := 0; r < dim; r++ {
		vals := make([]complex128, slots)
		zero := true
		for i := range vals {
			v := w[i%dim][(i+r)%dim]
			vals[i] = complex(v, 0)
			if v != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		pt, err := e.Encode(vals, level)
		if err != nil {
			return nil, err
		}
		lt.diags[r] = pt
	}
	return lt, nil
}

// Rotations returns the rotation amounts the transform needs (its
// non-zero diagonals, excluding 0), in ascending order.
func (lt *LinearTransform) Rotations() []int {
	var rs []int
	for r := range lt.diags {
		if r != 0 {
			rs = append(rs, r)
		}
	}
	sort.Ints(rs)
	return rs
}

// Apply evaluates y = W·x homomorphically with the diagonal method.
// The input vector must be replicated across the slots with period
// Dim (see Encoder.NewLinearTransform).
//
// All rotations are produced by one RotateHoisted call, so ct.C1 goes
// through Decompose+ModUp exactly once no matter how many non-zero
// diagonals the transform has — the shared-ModUp execution of the
// reuse CiFlow's hoisting model (hks.HoistedOpsSaved) counts.
func (ev *Evaluator) Apply(lt *LinearTransform, ct *Ciphertext) (*Ciphertext, error) {
	if lt == nil || len(lt.diags) == 0 {
		return nil, fmt.Errorf("ckks: empty linear transform")
	}
	for r, pt := range lt.diags {
		if pt.Level != ct.Level {
			return nil, fmt.Errorf("ckks: transform diagonal %d encoded at level %d, ciphertext at %d", r, pt.Level, ct.Level)
		}
	}
	rots := lt.Rotations()
	rotated, err := ev.RotateHoisted(ct, rots)
	if err != nil {
		return nil, err
	}
	byRot := make(map[int]*Ciphertext, len(rots)+1)
	byRot[0] = ct
	for i, r := range rots {
		byRot[r] = rotated[i]
	}
	var acc *Ciphertext
	for r := 0; r < lt.Dim; r++ {
		pt, ok := lt.diags[r]
		if !ok {
			continue
		}
		term := ev.MulPlain(byRot[r], pt)
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	return ev.Rescale(acc)
}

// ringOf is a tiny helper for tests that need the evaluator's ring.
func (ev *Evaluator) ringOf() *ring.Ring { return ev.ctx.R }
