package ckks

import (
	"math/cmplx"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
)

// TestRotateHoistedMatchesRotate checks that every hoisted rotation
// decrypts to the same message as the per-rotation path (the keys
// differ in form and randomness, so agreement is up to key-switching
// noise, not bit-exact).
func TestRotateHoistedMatchesRotate(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.27)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)

	rots := []int{1, 3, 0, 7, ctx.Slots() - 1}
	hoisted, err := ev.RotateHoisted(ct, rots)
	if err != nil {
		t.Fatal(err)
	}
	if len(hoisted) != len(rots) {
		t.Fatalf("got %d outputs for %d rotations", len(hoisted), len(rots))
	}
	for i, rot := range rots {
		want, err := ev.Rotate(ct, rot)
		if err != nil {
			t.Fatal(err)
		}
		decH := enc.Decode(ev.Decrypt(hoisted[i], kc.Secret()))
		decW := enc.Decode(ev.Decrypt(want, kc.Secret()))
		for s := 0; s < ctx.Slots(); s++ {
			if cmplx.Abs(decH[s]-decW[s]) > 1e-3 {
				t.Fatalf("rot %d slot %d: hoisted %v vs per-rotation %v", rot, s, decH[s], decW[s])
			}
			// And against the plaintext rotation directly.
			if cmplx.Abs(decH[s]-vals[(s+rot)%ctx.Slots()]) > 1e-3 {
				t.Fatalf("rot %d slot %d: hoisted %v, want %v", rot, s, decH[s], vals[(s+rot)%ctx.Slots()])
			}
		}
	}
}

// TestRotateHoistedEngine runs the hoisted fan-out on the worker pool
// under every dataflow and checks decryption; with -race this also
// exercises the hoisted state pool from the evaluator layer.
func TestRotateHoistedEngine(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.41)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	rots := []int{2, 5, 9}

	e := engine.New(4)
	defer e.Close()
	for _, df := range []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC} {
		outs, err := ev.WithEngine(e, df).RotateHoisted(ct, rots)
		if err != nil {
			t.Fatal(err)
		}
		for i, rot := range rots {
			dec := enc.Decode(ev.Decrypt(outs[i], kc.Secret()))
			for s := 0; s < ctx.Slots(); s++ {
				if cmplx.Abs(dec[s]-vals[(s+rot)%ctx.Slots()]) > 1e-3 {
					t.Fatalf("%s rot %d slot %d: got %v want %v", df, rot, s, dec[s], vals[(s+rot)%ctx.Slots()])
				}
			}
		}
	}
}

// TestRotateHoistedRepeated replays the fan-out on one evaluator so
// pooled hoisted states and cached hoisting keys get reused.
func TestRotateHoistedRepeated(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	for rep := 0; rep < 3; rep++ {
		vals := randomValues(ctx.Slots(), 0.1+0.2*float64(rep))
		pt, _ := enc.Encode(vals, ctx.MaxLevel)
		ct := ev.Encrypt(pt, pk)
		outs, err := ev.RotateHoisted(ct, []int{1, 4})
		if err != nil {
			t.Fatal(err)
		}
		for i, rot := range []int{1, 4} {
			dec := enc.Decode(ev.Decrypt(outs[i], kc.Secret()))
			for s := 0; s < ctx.Slots(); s++ {
				if cmplx.Abs(dec[s]-vals[(s+rot)%ctx.Slots()]) > 1e-3 {
					t.Fatalf("rep %d rot %d slot %d mismatch", rep, rot, s)
				}
			}
		}
	}
}

// TestRotateHoistedEmpty covers the trivial fan-outs: an empty list
// and identity-only rotations, neither of which may pay for a hoist.
func TestRotateHoistedEmpty(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.19)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	outs, err := ev.RotateHoisted(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("empty rotation list produced %d outputs", len(outs))
	}

	outs, err = ev.RotateHoisted(ct, []int{0, ctx.Slots(), -ctx.Slots()})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("identity rotations produced %d outputs, want 3", len(outs))
	}
	for i, out := range outs {
		dec := enc.Decode(ev.Decrypt(out, kc.Secret()))
		for s := 0; s < ctx.Slots(); s++ {
			if cmplx.Abs(dec[s]-vals[s]) > 1e-3 {
				t.Fatalf("identity output %d slot %d: got %v want %v", i, s, dec[s], vals[s])
			}
		}
	}
}

// TestHoistKeyCaching asserts the hoisting-form keys are cached per
// (rotation, level) like the ordinary rotation keys.
func TestHoistKeyCaching(t *testing.T) {
	ctx, _, kc, _, _ := testContext(t)
	k1, err := kc.HoistKey(3, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := kc.HoistKey(3, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("HoistKey not cached")
	}
	k3, err := kc.HoistKey(3, ctx.MaxLevel-1)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("HoistKey shared across levels")
	}
}

// TestApplyHoistedEngine applies a linear transform through the
// engine-backed evaluator, covering the RotateHoisted path inside
// Apply under a worker pool.
func TestApplyHoistedEngine(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	const d = 4
	w := [][]float64{
		{0.2, 0.1, 0, -0.1},
		{0, 0.4, 0.2, 0},
		{0.1, 0, -0.3, 0.1},
		{-0.2, 0.1, 0, 0.5},
	}
	x := []float64{0.3, -0.4, 0.1, 0.2}
	lt, err := enc.NewLinearTransform(w, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(x[i%d], 0)
	}
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)

	e := engine.New(4)
	defer e.Close()
	y, err := ev.WithEngine(e, dataflow.OC).Apply(lt, ct)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(y, kc.Secret()))
	for i := 0; i < d; i++ {
		var want float64
		for j := 0; j < d; j++ {
			want += w[i][j] * x[j]
		}
		if cmplx.Abs(dec[i]-complex(want, 0)) > 1e-3 {
			t.Fatalf("row %d: got %v want %v", i, dec[i], want)
		}
	}
}
