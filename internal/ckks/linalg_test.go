package ckks

import (
	"math/cmplx"
	"testing"
)

func TestConjugate(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.35)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	conj, err := ev.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(conj, kc.Secret()))
	for i, v := range vals {
		if cmplx.Abs(dec[i]-cmplx.Conj(v)) > 1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, dec[i], cmplx.Conj(v))
		}
	}
}

func TestConjugateTwiceIsIdentity(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	vals := randomValues(ctx.Slots(), 0.15)
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	c1, err := ev.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ev.Conjugate(c1)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(c2, kc.Secret()))
	if e := maxErr(vals, dec[:len(vals)]); e > 1e-3 {
		t.Fatalf("double conjugation error %g", e)
	}
}

func TestInnerSum(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	slots := ctx.Slots()
	vals := make([]complex128, slots)
	for i := range vals {
		vals[i] = complex(float64(i%8)*0.01, 0)
	}
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)

	width := 8
	sum, err := ev.InnerSum(ct, width)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(sum, kc.Secret()))
	// Slot 0 holds v0+...+v7 (values repeat with period 8, so the
	// wraparound contributions equal the in-window ones).
	var want complex128
	for i := 0; i < width; i++ {
		want += vals[i]
	}
	if cmplx.Abs(dec[0]-want) > 1e-3 {
		t.Fatalf("slot 0: got %v want %v", dec[0], want)
	}
}

func TestInnerSumRejectsBadWidth(t *testing.T) {
	ctx, enc, _, pk, ev := testContext(t)
	pt, _ := enc.Encode([]complex128{1}, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)
	for _, n := range []int{0, 3, ctx.Slots() * 2} {
		if _, err := ev.InnerSum(ct, n); err == nil {
			t.Errorf("width %d accepted", n)
		}
	}
}

func TestLinearTransformMatchesPlainMatVec(t *testing.T) {
	ctx, enc, kc, pk, ev := testContext(t)
	const d = 4
	w := [][]float64{
		{0.5, -0.1, 0.0, 0.2},
		{0.0, 0.3, 0.1, 0.0},
		{-0.2, 0.0, 0.4, 0.1},
		{0.1, 0.1, 0.0, -0.3},
	}
	x := []float64{0.4, -0.2, 0.7, 0.1}

	lt, err := enc.NewLinearTransform(w, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate x across the slots.
	vals := make([]complex128, ctx.Slots())
	for i := range vals {
		vals[i] = complex(x[i%d], 0)
	}
	pt, _ := enc.Encode(vals, ctx.MaxLevel)
	ct := ev.Encrypt(pt, pk)

	y, err := ev.Apply(lt, ct)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(ev.Decrypt(y, kc.Secret()))
	for i := 0; i < d; i++ {
		var want float64
		for j := 0; j < d; j++ {
			want += w[i][j] * x[j]
		}
		if cmplx.Abs(dec[i]-complex(want, 0)) > 1e-3 {
			t.Fatalf("row %d: got %v want %v", i, dec[i], want)
		}
	}
	if y.Level != ctx.MaxLevel-1 {
		t.Fatalf("Apply should consume one level, got %d", y.Level)
	}
}

func TestLinearTransformSkipsZeroDiagonals(t *testing.T) {
	ctx, enc, _, _, _ := testContext(t)
	// Diagonal matrix: only diagonal 0 is non-zero.
	w := [][]float64{{1, 0}, {0, 2}}
	lt, err := enc.NewLinearTransform(w, ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Rotations()) != 0 {
		t.Fatalf("diagonal matrix should need no rotations, got %v", lt.Rotations())
	}
}

func TestLinearTransformValidation(t *testing.T) {
	ctx, enc, _, _, _ := testContext(t)
	if _, err := enc.NewLinearTransform(nil, ctx.MaxLevel); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := enc.NewLinearTransform([][]float64{{1, 2}, {3}}, ctx.MaxLevel); err == nil {
		t.Error("ragged matrix accepted")
	}
	// dim 3 does not divide the slot count (a power of two).
	bad := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if _, err := enc.NewLinearTransform(bad, ctx.MaxLevel); err == nil {
		t.Error("non-dividing dimension accepted")
	}
}

func TestRingOfHelper(t *testing.T) {
	ctx, _, kc, _, _ := testContext(t)
	ev := NewEvaluator(ctx, kc)
	if ev.ringOf() != ctx.R {
		t.Fatal("ringOf mismatch")
	}
}
