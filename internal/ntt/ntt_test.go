package ntt

import (
	"math/rand"
	"testing"

	"ciflow/internal/mod"
	"ciflow/internal/primes"
)

func newTestTable(t *testing.T, n int) *Table {
	t.Helper()
	ps, err := primes.Generate(30, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := NewTable(n, ps[0])
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(1000, 65537); err == nil {
		t.Error("non-power-of-two N accepted")
	}
	// 97 is prime but 97-1 is not divisible by 2*64.
	if _, err := NewTable(64, 97); err == nil {
		t.Error("non-NTT-friendly modulus accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{4, 16, 256, 1024, 4096} {
		tab := newTestTable(t, n)
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % tab.M.Q
		}
		orig := append([]uint64(nil), a...)
		tab.Forward(a)
		tab.Inverse(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("n=%d roundtrip mismatch at %d: got %d want %d", n, i, a[i], orig[i])
			}
		}
	}
}

func TestForwardChangesOrder(t *testing.T) {
	// The transform of a non-constant polynomial must differ from the
	// input (sanity against accidental identity implementations).
	tab := newTestTable(t, 64)
	a := make([]uint64, 64)
	a[1] = 1
	in := append([]uint64(nil), a...)
	tab.Forward(a)
	same := true
	for i := range a {
		if a[i] != in[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Forward acted as identity")
	}
}

// schoolbookNegacyclic computes c = a*b mod (X^n+1, q) directly.
func schoolbookNegacyclic(a, b []uint64, m mod.Modulus) []uint64 {
	n := len(a)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			k := i + j
			p := m.Mul(a[i], b[j])
			if k < n {
				c[k] = m.Add(c[k], p)
			} else {
				c[k-n] = m.Sub(c[k-n], p)
			}
		}
	}
	return c
}

func TestNegacyclicConvolution(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		tab := newTestTable(t, n)
		rng := rand.New(rand.NewSource(17))
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % tab.M.Q
			b[i] = rng.Uint64() % tab.M.Q
		}
		want := schoolbookNegacyclic(a, b, tab.M)

		tab.Forward(a)
		tab.Forward(b)
		c := make([]uint64, n)
		for i := range c {
			c[i] = tab.M.Mul(a[i], b[i])
		}
		tab.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("n=%d convolution mismatch at %d: got %d want %d", n, i, c[i], want[i])
			}
		}
	}
}

func TestXTimesXIsNegOne(t *testing.T) {
	// In Z_q[X]/(X^n+1): X^(n/2) * X^(n/2) = X^n = -1.
	n := 16
	tab := newTestTable(t, n)
	a := make([]uint64, n)
	a[n/2] = 1
	b := append([]uint64(nil), a...)
	tab.Forward(a)
	tab.Forward(b)
	c := make([]uint64, n)
	for i := range c {
		c[i] = tab.M.Mul(a[i], b[i])
	}
	tab.Inverse(c)
	if c[0] != tab.M.Q-1 {
		t.Fatalf("X^n != -1: c[0]=%d", c[0])
	}
	for i := 1; i < n; i++ {
		if c[i] != 0 {
			t.Fatalf("X^n has spurious coefficient at %d: %d", i, c[i])
		}
	}
}

func TestLinearity(t *testing.T) {
	n := 128
	tab := newTestTable(t, n)
	rng := rand.New(rand.NewSource(5))
	a := make([]uint64, n)
	b := make([]uint64, n)
	sum := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % tab.M.Q
		b[i] = rng.Uint64() % tab.M.Q
		sum[i] = tab.M.Add(a[i], b[i])
	}
	tab.Forward(a)
	tab.Forward(b)
	tab.Forward(sum)
	for i := range sum {
		if sum[i] != tab.M.Add(a[i], b[i]) {
			t.Fatalf("NTT not linear at %d", i)
		}
	}
}

func TestButterflyOps(t *testing.T) {
	cases := map[int]int{2: 1, 4: 4, 8: 12, 1024: 5120, 1 << 17: (1 << 16) * 17}
	for n, want := range cases {
		if got := ButterflyOps(n); got != want {
			t.Errorf("ButterflyOps(%d) = %d, want %d", n, got, want)
		}
	}
}

func BenchmarkForwardN4096(b *testing.B) {
	ps, _ := primes.Generate(55, 4096, 1)
	tab, _ := NewTable(4096, ps[0])
	a := make([]uint64, 4096)
	for i := range a {
		a[i] = uint64(i) * 2654435761 % tab.M.Q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func BenchmarkInverseN4096(b *testing.B) {
	ps, _ := primes.Generate(55, 4096, 1)
	tab, _ := NewTable(4096, ps[0])
	a := make([]uint64, 4096)
	for i := range a {
		a[i] = uint64(i) * 2654435761 % tab.M.Q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Inverse(a)
	}
}
