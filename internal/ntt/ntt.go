// Package ntt implements the negacyclic number-theoretic transform
// used throughout CKKS: multiplication in Z_q[X]/(X^N+1) becomes
// point-wise multiplication in the evaluation domain.
//
// The forward transform is a Cooley–Tukey decimation-in-time network
// that merges the ψ^i pre-twist into the butterflies; the inverse is
// the matching Gentleman–Sande network (Longa–Naehrig formulation).
// Twiddle factors are stored with Shoup precomputation, so each
// butterfly costs one word multiplication plus corrections — the same
// operation the RPU's HPLE lanes execute natively (paper §V-A).
package ntt

import (
	"fmt"
	"math/bits"

	"ciflow/internal/mod"
	"ciflow/internal/primes"
)

// Table holds the per-modulus precomputed state for transforms of a
// fixed power-of-two length N.
type Table struct {
	N int
	M mod.Modulus

	psi       []uint64 // ψ^brv(i), bit-reversed powers of the 2N-th root
	psiShoup  []uint64
	ipsi      []uint64 // ψ^-brv(i)
	ipsiShoup []uint64
	nInv      uint64 // N^-1 mod q
	nInvShoup uint64
}

// NewTable builds NTT tables for ring degree n and prime modulus q
// with q ≡ 1 (mod 2n).
func NewTable(n int, q uint64) (*Table, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ntt: ring degree %d is not a power of two >= 2", n)
	}
	psi, err := primes.RootOfUnity(q, n)
	if err != nil {
		return nil, fmt.Errorf("ntt: %w", err)
	}
	m := mod.New(q)
	t := &Table{
		N: n, M: m,
		psi:       make([]uint64, n),
		psiShoup:  make([]uint64, n),
		ipsi:      make([]uint64, n),
		ipsiShoup: make([]uint64, n),
	}
	ipsi := m.Inv(psi)
	logN := bits.Len(uint(n)) - 1
	fw, inv := uint64(1), uint64(1)
	powsF := make([]uint64, n)
	powsI := make([]uint64, n)
	for i := 0; i < n; i++ {
		powsF[i], powsI[i] = fw, inv
		fw, inv = m.Mul(fw, psi), m.Mul(inv, ipsi)
	}
	for i := 0; i < n; i++ {
		r := int(bitrev(uint64(i), logN))
		t.psi[i] = powsF[r]
		t.ipsi[i] = powsI[r]
		t.psiShoup[i] = m.ShoupPrecomp(t.psi[i])
		t.ipsiShoup[i] = m.ShoupPrecomp(t.ipsi[i])
	}
	t.nInv = m.Inv(uint64(n))
	t.nInvShoup = m.ShoupPrecomp(t.nInv)
	return t, nil
}

func bitrev(x uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Forward transforms a (natural coefficient order, reduced mod q) into
// the evaluation domain, in place. Output is in the transform's
// internal (bit-reversed) order, which all point-wise consumers treat
// opaquely.
func (t *Table) Forward(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Forward on slice of length %d, table N=%d", len(a), t.N))
	}
	m := t.M
	n := t.N
	for step, mm := n>>1, 1; step >= 1; step, mm = step>>1, mm<<1 {
		for i := 0; i < mm; i++ {
			w := t.psi[mm+i]
			ws := t.psiShoup[mm+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := m.MulShoup(a[j+step], w, ws)
				a[j] = m.Add(u, v)
				a[j+step] = m.Sub(u, v)
			}
		}
	}
}

// Inverse transforms a from the evaluation domain back to natural
// coefficient order, in place, including the 1/N scaling.
func (t *Table) Inverse(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Inverse on slice of length %d, table N=%d", len(a), t.N))
	}
	m := t.M
	n := t.N
	for step, mm := 1, n>>1; mm >= 1; step, mm = step<<1, mm>>1 {
		for i := 0; i < mm; i++ {
			w := t.ipsi[mm+i]
			ws := t.ipsiShoup[mm+i]
			j1 := 2 * i * step
			for j := j1; j < j1+step; j++ {
				u := a[j]
				v := a[j+step]
				a[j] = m.Add(u, v)
				a[j+step] = m.MulShoup(m.Sub(u, v), w, ws)
			}
		}
	}
	for j := range a {
		a[j] = m.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}

// ButterflyOps returns the number of butterfly evaluations in one
// transform of length N: (N/2)·log2(N). The RPU cost model charges
// each butterfly as one modular multiplication plus additions
// (paper §III: O(N log N) per (I)NTT).
func ButterflyOps(n int) int {
	return (n / 2) * (bits.Len(uint(n)) - 1)
}
