package dataflow

// generateDC emits the Digit-Centric schedule (paper §IV-B): each
// digit runs through all ModUp stages before the next digit starts,
// so a digit's INTT outputs never leave the chip. The per-digit
// partial products accumulate into the off-chip output ("sent
// off-chip to minimize on-chip memory requirements"), which is why DC
// converges to MP on the large benchmarks: the BConv expansion still
// spills, and the accumulator round-trips grow with dnum.
//
// With a single digit DC degenerates to MP exactly (paper §VI-A-2:
// "for BTS1 with one digit, MP and DC have the same implementation").
func (g *gen) generateDC() {
	b := g.bench()
	if b.Dnum == 1 {
		g.generateMP()
		return
	}
	tb := g.tb()
	widths := b.DigitWidths()
	// Keeping stage outputs resident must never starve a later digit
	// iteration, which pins up to 2α input/INTT towers and wants room
	// for the β-wide BConv expansion, nor ModDown's P-tower pin.
	maxBeta := 0
	for j := 0; j < b.Dnum; j++ {
		if bj := b.Beta(j); bj > maxBeta {
			maxBeta = bj
		}
	}
	reserve := int64(2*b.Alpha()+maxBeta+8) * tb
	if r := int64(b.KP+8) * tb; r > reserve {
		reserve = r
	}

	for t := 0; t < b.KL; t++ {
		g.m.announceDRAM(inName(t), tb)
	}

	for j := 0; j < b.Dnum; j++ {
		digit := g.digitTowers(j)
		alpha := widths[j]
		// Keep both the NTT-domain digit (bypass at P4) and its INTT
		// when they fit; otherwise reload the bypass towers at P4.
		keepBoth := int64(2*alpha+4)*tb <= g.cfg.DataMemBytes

		inttReads := make([]string, len(digit))
		for i, t := range digit {
			g.m.load(inName(t))
			g.m.compute("p1.intt", g.inttWithPreOps(), []string{inName(t)}, inttName(t), tb)
			inttReads[i] = inttName(t)
			if !keepBoth {
				g.m.free(inName(t), true) // clean; reload for bypass later
			}
		}

		// P2 stage: convert to all complement towers, keeping as many
		// outputs resident as the remaining space allows.
		muBudget := g.m.freeTowers(tb) - 4
		if muBudget < 0 {
			muBudget = 0
		}
		idx := int64(0)
		for _, t := range g.dTowers() {
			if !g.isP(t) && g.digitOf(t) == j {
				continue
			}
			mu := muName(j, t)
			g.m.compute("p2.bconv", g.bconvTowerOps(alpha), inttReads, mu, tb)
			if idx >= muBudget {
				g.m.store(mu)
				g.m.free(mu, false)
			}
			idx++
		}
		// The digit's INTT is dead once P2 is done.
		for _, name := range inttReads {
			g.m.free(name, true)
		}

		// P3 stage: NTT every converted tower; spilled towers make a
		// DRAM round-trip (the DC inefficiency the paper calls out).
		for _, t := range g.dTowers() {
			if !g.isP(t) && g.digitOf(t) == j {
				continue
			}
			mu := muName(j, t)
			if g.m.resident(mu) {
				g.m.compute("p3.ntt", g.nttOps(), []string{mu}, mu, 0)
			} else {
				g.m.ensure(mu)
				g.m.compute("p3.ntt", g.nttOps(), []string{mu}, mu, 0)
				g.m.spillUnless(mu, reserve)
			}
		}

		// P4+P5: apply the key and accumulate into the off-chip
		// output (incremental reduce).
		for _, t := range g.dTowers() {
			src := muName(j, t)
			if !g.isP(t) && g.digitOf(t) == j {
				src = inName(t)
			}
			g.m.ensure(src)
			ek := g.m.streamEvk(evkName(j, t), 2*tb)
			for p := 0; p < 2; p++ {
				acc := accName(p, t)
				if j == 0 {
					g.m.compute("p4.apply", g.applyKeyOps(), []string{src}, acc, tb, ek)
				} else {
					g.m.ensure(acc)
					g.m.compute("p4p5.acc", g.applyKeyOps()+g.reduceOps(), []string{src}, acc, 0, ek)
				}
				g.m.spillUnless(acc, reserve)
			}
			if src == inName(t) {
				g.m.free(src, true) // clean input copy remains in DRAM
			} else if g.m.get(src).inDRAM {
				g.m.free(src, false)
			} else {
				g.m.free(src, true) // resident-only mu tower, now dead
			}
		}
	}

	g.emitModDown()
}
