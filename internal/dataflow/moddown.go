package dataflow

// emitModDown appends the ModDown phase (paper Figure 1, bottom):
// both output polynomials' P towers are INTT'd, basis-converted to
// B_ℓ one output tower at a time, NTT'd, and folded into the final
// result with the P⁻¹ scaling. All dataflows share this emitter —
// the paper's §IV-C observation that "calculating one output tower at
// a time eliminates the expansion of ModDown P2" applies to the
// ModDown loop structure used here; the dataflows differ in whether
// the acc towers are still resident when ModDown starts.
//
// Preconditions: every acc(p,t) tile exists and is either resident or
// has a DRAM copy.
func (g *gen) emitModDown() {
	b := g.bench()
	tb := g.tb()
	kl, kp := b.KL, b.KP

	for p := 0; p < 2; p++ {
		// P1: pin this poly's P towers and INTT them in place. The
		// in-place transform also carries the BConv ŷ premultiply.
		pintReads := make([]string, 0, kp)
		for pt := kl; pt < kl+kp; pt++ {
			name := accName(p, pt)
			g.m.ensure(name)
			g.m.compute("md.intt", g.inttWithPreOps(), []string{name}, name, 0)
			pintReads = append(pintReads, name)
		}
		// P2–P4 per output tower.
		for t := 0; t < kl; t++ {
			cv := cvName(p, t)
			g.m.compute("md.bconv", g.bconvTowerOps(kp), pintReads, cv, tb)
			g.m.compute("md.ntt", g.nttOps(), []string{cv}, cv, 0)
			g.m.ensure(accName(p, t))
			g.m.compute("md.scale", g.scaleOps(), []string{cv, accName(p, t)}, outName(p, t), tb)
			g.m.store(outName(p, t))
			g.m.free(outName(p, t), false)
			g.m.free(cv, true)
			g.m.free(accName(p, t), true) // dead after the subtraction
		}
		for _, name := range pintReads {
			g.m.free(name, true) // consumed
		}
	}
}
