package dataflow

// generateMP emits the Max-Parallel schedule (paper §IV-A): every
// stage runs over all towers before the next stage starts, maximizing
// kernel-level parallelism. With a small data memory the stage
// outputs — especially the BConv expansion of ModUp P2 and the P4
// partial products — cannot stay on-chip, so MP pays heavy spill
// traffic (the paper's 675 MB working-set observation for BTS3).
//
// Residency policy: keep the INTT outputs and then the NTT-domain
// inputs resident across stages when they fit (small benchmarks);
// everything else streams through.
func (g *gen) generateMP() {
	b := g.bench()
	tb := g.tb()
	kl, dnum := b.KL, b.Dnum
	widths := b.DigitWidths()
	// Stage outputs stay resident only while this much space stays
	// free: enough for any later phase's pinned set (a digit's INTT
	// towers at P2, the dnum partials at P5, the P towers at ModDown)
	// plus transients.
	reserveTowers := int64(b.KP)
	for _, v := range []int64{int64(2 * dnum), int64(b.Alpha())} {
		if v > reserveTowers {
			reserveTowers = v
		}
	}
	reserve := (reserveTowers + 8) * tb

	for t := 0; t < kl; t++ {
		g.m.announceDRAM(inName(t), tb)
	}

	// P1: INTT all towers. The original NTT-domain towers are needed
	// again at P4 (digit bypass), the INTT outputs at P2.
	keepINTT := int64(kl+2)*tb <= g.cfg.DataMemBytes
	keepIN := int64(2*kl+2)*tb <= g.cfg.DataMemBytes
	for t := 0; t < kl; t++ {
		g.m.load(inName(t))
		g.m.compute("p1.intt", g.inttWithPreOps(), []string{inName(t)}, inttName(t), tb)
		if !keepINTT {
			g.m.store(inttName(t))
			g.m.free(inttName(t), false)
		}
		if !keepIN {
			g.m.free(inName(t), true) // clean: the DRAM copy is the input
		}
	}

	// P2+P3: per digit, convert to every complement tower and NTT the
	// result while it is still on-chip, then spill (fused BConv+NTT).
	for j := 0; j < dnum; j++ {
		digit := g.digitTowers(j)
		reads := make([]string, len(digit))
		for i, t := range digit {
			reads[i] = inttName(t)
			if !keepINTT {
				g.m.ensure(reads[i])
			}
		}
		for _, t := range g.dTowers() {
			if !g.isP(t) && g.digitOf(t) == j {
				continue
			}
			mu := muName(j, t)
			g.m.compute("p2.bconv", g.bconvTowerOps(widths[j]), reads, mu, tb)
			g.m.compute("p3.ntt", g.nttOps(), []string{mu}, mu, 0)
			g.m.spillUnless(mu, reserve)
		}
		if !keepINTT {
			for _, name := range reads {
				g.m.free(name, false) // DRAM copy exists from P1
			}
		}
	}
	if keepINTT {
		for t := 0; t < kl; t++ {
			g.m.free(inttName(t), true) // dead; never stored
		}
	}

	// P4: apply the key digit by digit, spilling partial products.
	// With a single digit the partials are already the reduced output.
	for j := 0; j < dnum; j++ {
		for _, t := range g.dTowers() {
			src := muName(j, t)
			if !g.isP(t) && g.digitOf(t) == j {
				src = inName(t) // bypass tower: the original NTT-domain input
			}
			g.m.ensure(src)
			ek := g.m.streamEvk(evkName(j, t), 2*tb)
			for p := 0; p < 2; p++ {
				out := ppName(j, p, t)
				if dnum == 1 {
					out = accName(p, t)
				}
				g.m.compute("p4.apply", g.applyKeyOps(), []string{src}, out, tb, ek)
				g.m.spillUnless(out, reserve)
			}
			// The source is dead after its ApplyKey: inputs keep their
			// original DRAM copy, spilled mu towers their stored one,
			// and never-spilled mu towers are simply discarded.
			g.m.free(src, !g.m.get(src).inDRAM)
		}
	}

	// P5: reduce the dnum partial products per tower.
	if dnum > 1 {
		for _, t := range g.dTowers() {
			for p := 0; p < 2; p++ {
				reads := make([]string, dnum)
				for j := 0; j < dnum; j++ {
					reads[j] = ppName(j, p, t)
					g.m.ensure(reads[j])
				}
				g.m.compute("p5.reduce", int64(dnum-1)*g.reduceOps(), reads, accName(p, t), tb)
				g.m.spillUnless(accName(p, t), reserve)
				for _, r := range reads {
					g.m.free(r, !g.m.get(r).inDRAM)
				}
			}
		}
	}

	g.emitModDown()
}
