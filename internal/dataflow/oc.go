package dataflow

// generateOC emits the Output-Centric schedule (paper §IV-C): compute
// one output tower at a time, keeping the INTT'd digits resident and
// streaming everything that has no reuse (evk towers, finished
// output towers). Section 1 produces the output towers in modulo Q —
// the tower's own digit bypasses BConv, the other dnum−1 digits are
// converted; Section 2 produces the towers in modulo P, to which all
// digits contribute. When the resident-digit budget cannot hold all
// the digits a section needs, the section runs in multiple passes with
// partial accumulations round-tripping through DRAM ("the final digit
// is loaded to compute the last partial sum", §IV-C).
func (g *gen) generateOC() {
	b := g.bench()
	tb := g.tb()
	kl, kp, dnum := b.KL, b.KP, b.Dnum
	widths := b.DigitWidths()

	for t := 0; t < kl; t++ {
		g.m.announceDRAM(inName(t), tb)
	}

	// Resident-digit budget: total capacity minus the per-tower
	// working set (bypass/cv tile plus the two accumulator towers,
	// with one tower of slack).
	budget := g.cfg.DataMemBytes/tb - 4

	// Plan all passes up front so the finished-tower residency policy
	// knows how much space future passes will demand.
	s1passes := make([][][]int, dnum)
	for grp := 0; grp < dnum; grp++ {
		var need []int
		for j := 0; j < dnum; j++ {
			if j != grp {
				need = append(need, j)
			}
		}
		s1passes[grp] = g.partitionDigits(need, budget)
	}
	all := make([]int, dnum)
	for j := range all {
		all[j] = j
	}
	s2passes := g.partitionDigits(all, budget)
	maxPass := int64(kp)
	count := func(pass []int) int64 {
		var n int64
		for _, j := range pass {
			n += int64(widths[j])
		}
		return n
	}
	for _, passes := range append(s1passes, s2passes) {
		for _, pass := range passes {
			if c := count(pass); c > maxPass {
				maxPass = c
			}
		}
	}
	// Finished acc towers stay resident for ModDown while at least
	// reserve towers remain free for future passes (paper §IV-C:
	// "we prioritize storing towers related to [P0]_B and [P1]_B").
	reserve := (maxPass + 4) * tb

	// Section 1: output towers in modulo Q, grouped by their digit.
	for grp := 0; grp < dnum; grp++ {
		passes := s1passes[grp]
		for pi, pass := range passes {
			g.ensureResidentINTT(pass)
			for _, t := range g.digitTowers(grp) {
				if pi == 0 {
					// Bypass: the tower's own digit contributes the
					// original NTT-domain input directly.
					g.m.ensure(inName(t))
					ek := g.m.streamEvk(evkName(grp, t), 2*tb)
					for p := 0; p < 2; p++ {
						g.m.compute("s1.bypass", g.applyKeyOps(), []string{inName(t)}, accName(p, t), tb, ek)
					}
					g.m.discardUnless(inName(t), reserve+8*tb)
				} else {
					for p := 0; p < 2; p++ {
						g.m.ensure(accName(p, t))
					}
				}
				for _, j := range pass {
					g.convContribution(j, widths[j], t, false)
				}
				g.finishAcc(t, pi == len(passes)-1, reserve)
			}
		}
	}

	// Section 2: output towers in modulo P; every digit contributes.
	for pi, pass := range s2passes {
		g.ensureResidentINTT(pass)
		for t := kl; t < kl+kp; t++ {
			if pi > 0 {
				for p := 0; p < 2; p++ {
					g.m.ensure(accName(p, t))
				}
			}
			for i, j := range pass {
				first := pi == 0 && i == 0
				g.convContribution(j, widths[j], t, first)
			}
			g.finishAcc(t, pi == len(s2passes)-1, reserve)
		}
	}

	// Release every resident INTT tower before ModDown.
	for t := 0; t < kl; t++ {
		name := inttName(t)
		if g.m.resident(name) {
			g.m.free(name, !g.m.get(name).inDRAM)
		}
	}

	g.emitModDown()
}

// finishAcc ends a pass's work on output tower t. Intermediate passes
// must spill the partial accumulators; the final pass keeps the
// finished towers resident for ModDown when at least reserve bytes
// stay free for the remaining passes.
func (g *gen) finishAcc(t int, lastPass bool, reserve int64) {
	for p := 0; p < 2; p++ {
		name := accName(p, t)
		if lastPass && g.m.fits(reserve) {
			continue // resident hand-off to ModDown
		}
		g.m.store(name)
		g.m.free(name, false)
	}
}

// convContribution converts digit j to D-tower t from its resident
// INTT towers, NTTs the tile, applies the streamed key and folds the
// result into acc(·, t). first marks the tower's first contribution
// (which creates the accumulators and is charged without reduce adds).
func (g *gen) convContribution(j, alpha, t int, first bool) {
	tb := g.tb()
	reads := make([]string, 0, alpha)
	for _, dt := range g.digitTowers(j) {
		reads = append(reads, inttName(dt))
	}
	cv := cvName(2+j, t) // poly slots 0/1 are taken by ModDown's cv names
	g.m.compute("oc.bconv", g.bconvTowerOps(alpha), reads, cv, tb)
	g.m.compute("oc.ntt", g.nttOps(), []string{cv}, cv, 0)
	ek := g.m.streamEvk(evkName(j, t), 2*tb)
	for p := 0; p < 2; p++ {
		acc := accName(p, t)
		if first {
			g.m.compute("oc.apply", g.applyKeyOps(), []string{cv}, acc, tb, ek)
		} else {
			g.m.compute("oc.acc", g.applyKeyOps()+g.reduceOps(), []string{cv}, acc, tb, ek)
		}
	}
	g.m.free(cv, true)
}

// partitionDigits splits the digit list into consecutive passes whose
// INTT towers fit in the resident budget. An empty need list yields a
// single empty pass (the dnum=1 Section 1 case, bypass only).
func (g *gen) partitionDigits(need []int, budget int64) [][]int {
	if len(need) == 0 {
		return [][]int{nil}
	}
	widths := g.bench().DigitWidths()
	var passes [][]int
	var cur []int
	var used int64
	for _, j := range need {
		w := int64(widths[j])
		if w > budget {
			// Guarded by Generate's minimum-capacity check.
			panic("dataflow: digit exceeds OC resident budget")
		}
		if used+w > budget && len(cur) > 0 {
			passes = append(passes, cur)
			cur, used = nil, 0
		}
		cur = append(cur, j)
		used += w
	}
	return append(passes, cur)
}

// ensureResidentINTT makes the INTT towers of the given digits
// resident. Other resident INTT towers are evicted lazily — only when
// space runs short — and are stored on first eviction so later passes
// reload instead of recomputing (the op count must not depend on the
// dataflow).
func (g *gen) ensureResidentINTT(pass []int) {
	b := g.bench()
	tb := g.tb()
	want := map[int]bool{}
	missing := 0
	for _, j := range pass {
		for _, t := range g.digitTowers(j) {
			want[t] = true
			if !g.m.resident(inttName(t)) {
				missing++
			}
		}
	}
	// Evict unwanted residents until the missing towers (plus the
	// per-tower working set) fit: clean input towers first, then
	// other digits' INTT towers (stored on first eviction).
	needBytes := int64(missing+4) * tb
	for t := 0; t < b.KL && !g.m.fits(needBytes); t++ {
		if g.m.resident(inName(t)) {
			g.m.free(inName(t), true)
		}
	}
	for t := 0; t < b.KL && !g.m.fits(needBytes); t++ {
		name := inttName(t)
		if g.m.resident(name) && !want[t] {
			if !g.m.get(name).inDRAM {
				g.m.store(name)
			}
			g.m.free(name, false)
		}
	}
	// Materialize what is missing: reload if previously stored,
	// otherwise compute from the input tower.
	for _, j := range pass {
		for _, t := range g.digitTowers(j) {
			name := inttName(t)
			if g.m.resident(name) {
				continue
			}
			if tl, ok := g.m.tiles[name]; ok && tl.inDRAM {
				g.m.load(name)
				continue
			}
			g.m.ensure(inName(t))
			g.m.compute("p1.intt", g.inttWithPreOps(), []string{inName(t)}, name, g.tb())
			// Keep the clean input tower around for its later bypass
			// use when memory is plentiful.
			g.m.discardUnless(inName(t), needBytes+4*g.tb())
		}
	}
}
