package dataflow

import (
	"fmt"

	"ciflow/internal/trace"
)

// machine is the schedule-time model of the RPU's on-chip data memory.
// Generators drive it with named tiles (towers); it tracks residency
// and capacity exactly, emits the load/store/compute tasks, wires
// dependencies (including anti-dependencies through freed space), and
// accounts DRAM traffic. Any attempt to exceed capacity or read a
// non-resident tile panics: a generator bug, not a runtime condition.
type machine struct {
	b    *trace.Builder
	cap  int64
	used int64

	tiles map[string]*tile
	// holes records freed space together with the last task that
	// touched it, so that a later allocation reusing the space cannot
	// be scheduled (by the decoupled front-end) before the previous
	// occupant's final use.
	holes []hole

	traffic   Traffic
	evkOnChip bool
	keyComp   bool
}

type tile struct {
	bytes    int64
	resident bool
	inDRAM   bool
	producer int // task providing the current on-chip copy (-1: none)
	store    int // latest store task (-1: none)
	lastUse  int // latest task touching the on-chip copy
}

type hole struct {
	bytes int64
	after int // anti-dependency: task that last used this space
}

func newMachine(capBytes int64, evkOnChip, keyComp bool) *machine {
	return &machine{
		b:         trace.NewBuilder(),
		cap:       capBytes,
		tiles:     map[string]*tile{},
		evkOnChip: evkOnChip,
		keyComp:   keyComp,
	}
}

// announceDRAM declares a tile that already lives in DRAM (inputs).
func (m *machine) announceDRAM(name string, bytes int64) {
	if _, ok := m.tiles[name]; ok {
		panic(fmt.Sprintf("dataflow: tile %q announced twice", name))
	}
	m.tiles[name] = &tile{bytes: bytes, inDRAM: true, producer: -1, store: -1, lastUse: -1}
}

// alloc reserves bytes of on-chip space, returning an anti-dependency
// task ID (or -1) that the allocating task must wait on.
func (m *machine) alloc(bytes int64) int {
	if m.used+bytes > m.cap {
		panic(fmt.Sprintf("dataflow: on-chip memory exceeded: %d + %d > %d", m.used, bytes, m.cap))
	}
	m.used += bytes
	after := -1
	need := bytes
	for need > 0 && len(m.holes) > 0 {
		h := &m.holes[0]
		if h.after > after {
			after = h.after
		}
		if h.bytes > need {
			h.bytes -= need
			need = 0
		} else {
			need -= h.bytes
			m.holes = m.holes[1:]
		}
	}
	return after
}

func (m *machine) get(name string) *tile {
	t, ok := m.tiles[name]
	if !ok {
		panic(fmt.Sprintf("dataflow: unknown tile %q", name))
	}
	return t
}

// resident reports whether the named tile currently occupies on-chip
// memory.
func (m *machine) resident(name string) bool {
	t, ok := m.tiles[name]
	return ok && t.resident
}

// load brings a DRAM-resident tile on-chip and returns the task ID.
func (m *machine) load(name string) int {
	t := m.get(name)
	if t.resident {
		panic(fmt.Sprintf("dataflow: load of already-resident tile %q", name))
	}
	if !t.inDRAM {
		panic(fmt.Sprintf("dataflow: load of tile %q with no DRAM copy", name))
	}
	deps := make([]int, 0, 2)
	if t.store >= 0 {
		deps = append(deps, t.store)
	}
	if anti := m.alloc(t.bytes); anti >= 0 {
		deps = append(deps, anti)
	}
	id := m.b.Load("ld:"+name, t.bytes, deps...)
	m.traffic.LoadBytes += t.bytes
	t.resident = true
	t.producer = id
	t.lastUse = id
	return id
}

// ensure loads the tile unless it is already resident; returns the
// task providing the on-chip copy.
func (m *machine) ensure(name string) int {
	if m.resident(name) {
		return m.get(name).producer
	}
	return m.load(name)
}

// compute emits a kernel task reading the named resident tiles and
// writing tile write (created with writeBytes if absent, accumulated
// in place if already resident). extraDeps (-1 entries ignored) wire
// in streamed operands.
func (m *machine) compute(name string, ops int64, reads []string, write string, writeBytes int64, extraDeps ...int) int {
	var deps []int
	for _, rd := range reads {
		t := m.get(rd)
		if !t.resident {
			panic(fmt.Sprintf("dataflow: compute %q reads non-resident tile %q", name, rd))
		}
		if t.producer >= 0 {
			deps = append(deps, t.producer)
		}
	}
	wt, ok := m.tiles[write]
	if ok && wt.resident {
		if wt.producer >= 0 {
			deps = append(deps, wt.producer)
		}
	} else {
		if anti := m.alloc(writeBytes); anti >= 0 {
			deps = append(deps, anti)
		}
		wt = &tile{bytes: writeBytes, resident: true, producer: -1, store: -1, lastUse: -1}
		m.tiles[write] = wt
	}
	for _, d := range extraDeps {
		if d >= 0 {
			deps = append(deps, d)
		}
	}
	id := m.b.Compute(name, ops, deps...)
	wt.resident = true
	wt.producer = id
	wt.inDRAM = false // on-chip copy is now newer than any DRAM copy
	wt.lastUse = id
	for _, rd := range reads {
		m.get(rd).lastUse = id
	}
	return id
}

// store writes a resident tile back to DRAM.
func (m *machine) store(name string) int {
	t := m.get(name)
	if !t.resident {
		panic(fmt.Sprintf("dataflow: store of non-resident tile %q", name))
	}
	var deps []int
	if t.producer >= 0 {
		deps = append(deps, t.producer)
	}
	id := m.b.Store("st:"+name, t.bytes, deps...)
	m.traffic.StoreBytes += t.bytes
	t.inDRAM = true
	t.store = id
	t.lastUse = id
	return id
}

// free releases a tile's on-chip space. Unless discard is set, the
// tile must already have a DRAM copy (store first) — losing live data
// silently would corrupt the schedule.
func (m *machine) free(name string, discard bool) {
	t := m.get(name)
	if !t.resident {
		panic(fmt.Sprintf("dataflow: free of non-resident tile %q", name))
	}
	if !discard && !t.inDRAM {
		panic(fmt.Sprintf("dataflow: freeing dirty tile %q without a store", name))
	}
	t.resident = false
	m.used -= t.bytes
	m.holes = append(m.holes, hole{bytes: t.bytes, after: t.lastUse})
	if discard && !t.inDRAM {
		delete(m.tiles, name) // fully dead; the name may be reused
	}
}

// streamEvk emits the streaming load of one evk tile. When evks are
// pre-loaded on-chip it is a no-op returning -1. Key compression
// (paper §IV-D ablation) halves the streamed bytes.
func (m *machine) streamEvk(name string, bytes int64) int {
	if m.evkOnChip {
		return -1
	}
	if m.keyComp {
		bytes /= 2
	}
	id := m.b.Load("evk:"+name, bytes)
	m.traffic.EvkBytes += bytes
	return id
}

// fits reports whether bytes more would still fit on-chip.
func (m *machine) fits(bytes int64) bool { return m.used+bytes <= m.cap }

// spillUnless keeps the resident tile if at least reserve bytes remain
// free; otherwise it stores (if dirty) and frees it. This is the
// uniform "keep intermediates on-chip when memory allows" policy that
// makes all dataflows converge to compulsory traffic with unlimited
// memory (paper §IV).
func (m *machine) spillUnless(name string, reserve int64) {
	if m.fits(reserve) {
		return
	}
	t := m.get(name)
	if !t.inDRAM {
		m.store(name)
	}
	m.free(name, false)
}

// discardUnless keeps a clean resident tile if at least reserve bytes
// remain free; otherwise it frees it without a store.
func (m *machine) discardUnless(name string, reserve int64) {
	if m.fits(reserve) {
		return
	}
	m.free(name, true)
}

// freeTowers returns how many whole tiles of the given size still fit.
func (m *machine) freeTowers(towerBytes int64) int64 {
	return (m.cap - m.used) / towerBytes
}
