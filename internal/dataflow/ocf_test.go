package dataflow

import (
	"testing"

	"ciflow/internal/params"
)

func TestOCFValidAndInvariant(t *testing.T) {
	for _, b := range params.All() {
		s := genOrFatal(t, OCF, streamCfg(b))
		if err := s.Prog.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got, want := s.Prog.Stats().ComputeOps, b.Ops().WeightedTotal(); got != want {
			t.Fatalf("%s: OCF ops %d != model %d", b.Name, got, want)
		}
		if s.Traffic.EvkBytes != b.EvkBytes() {
			t.Fatalf("%s: OCF evk traffic %d", b.Name, s.Traffic.EvkBytes)
		}
	}
}

func TestOCFNeverWorseThanOC(t *testing.T) {
	for _, b := range params.All() {
		oc := genOrFatal(t, OC, streamCfg(b)).Traffic.TotalBytes()
		ocf := genOrFatal(t, OCF, streamCfg(b)).Traffic.TotalBytes()
		if ocf > oc {
			t.Errorf("%s: OCF traffic %d exceeds OC %d", b.Name, ocf, oc)
		}
		t.Logf("%-7s OC=%4d MiB  OCF=%4d MiB  (%.0f%% saved)",
			b.Name, oc/mib, ocf/mib, 100*float64(oc-ocf)/float64(oc))
	}
}

func TestOCFSavesOnSmallBenchmarks(t *testing.T) {
	// The fusion fits for ARK and DPRIVE at 32 MB and must remove the
	// finished-tower round-trips (2x output size of load+store).
	for _, b := range []params.Benchmark{params.ARK, params.DPRIVE} {
		oc := genOrFatal(t, OC, streamCfg(b)).Traffic
		ocf := genOrFatal(t, OCF, streamCfg(b)).Traffic
		saved := (oc.LoadBytes + oc.StoreBytes) - (ocf.LoadBytes + ocf.StoreBytes)
		if saved <= 0 {
			t.Errorf("%s: fusion saved nothing", b.Name)
		}
	}
}

func TestOCFFallsBackForLargeBenchmarks(t *testing.T) {
	// BTS1's 2*KP = 56 ModDown towers cannot be pinned in 32 MB, so
	// OCF must degrade gracefully to OC-equivalent traffic.
	oc := genOrFatal(t, OC, streamCfg(params.BTS1)).Traffic
	ocf := genOrFatal(t, OCF, streamCfg(params.BTS1)).Traffic
	if oc != ocf {
		t.Errorf("BTS1: fallback traffic %+v differs from OC %+v", ocf, oc)
	}
}

func TestOCFString(t *testing.T) {
	if OCF.String() != "OCF" {
		t.Fatal("OCF name wrong")
	}
	if len(AllDataflowsExtended()) != 4 {
		t.Fatal("extended dataflow list wrong")
	}
}
