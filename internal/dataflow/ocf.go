package dataflow

// generateOCF emits the fused Output-Centric schedule, an extension
// beyond the paper's three dataflows: ModUp Section 2 (the P output
// towers) runs first, the ModDown INTT pins those towers on-chip, and
// ModUp Section 1 then produces each Q output tower fused with its
// ModDown conversion — the finished accumulators flow straight into
// the final subtract-and-scale without ever visiting DRAM.
//
// The fusion needs the 2·KP ModDown towers resident alongside a
// Section 1 digit pass; when that does not fit (BTS1/BTS2/BTS3 at
// 32 MB) the generator falls back to plain OC, so OCF is never worse.
// Operation counts are unchanged — only the order moves, in the spirit
// of the paper's own thesis.
func (g *gen) generateOCF() {
	b := g.bench()
	tb := g.tb()
	kl, kp, dnum := b.KL, b.KP, b.Dnum
	widths := b.DigitWidths()

	capTowers := g.cfg.DataMemBytes / tb
	maxWidth := 0
	for _, w := range widths {
		if w > maxWidth {
			maxWidth = w
		}
	}
	// Section 1 working set under fusion: the pinned ModDown towers,
	// at least one resident digit, and the per-tower transients
	// (bypass/cv/md-cv tiles plus the two accumulators).
	s1Budget := capTowers - int64(2*kp) - 6
	if s1Budget < int64(maxWidth) {
		g.generateOC()
		return
	}

	for t := 0; t < kl; t++ {
		g.m.announceDRAM(inName(t), tb)
	}

	// ---- ModUp Section 2 (as in OC): P output towers. ----
	budget := capTowers - 4
	all := make([]int, dnum)
	for j := range all {
		all[j] = j
	}
	s2passes := g.partitionDigits(all, budget)
	for pi, pass := range s2passes {
		g.ensureResidentINTT(pass)
		for t := kl; t < kl+kp; t++ {
			if pi > 0 {
				for p := 0; p < 2; p++ {
					g.m.ensure(accName(p, t))
				}
			}
			for i, j := range pass {
				g.convContribution(j, widths[j], t, pi == 0 && i == 0)
			}
			if pi == len(s2passes)-1 {
				// Keep the finished P towers resident: they are the
				// ModDown input. Spill only under pressure.
				for p := 0; p < 2; p++ {
					g.m.spillUnless(accName(p, t), (int64(maxWidth)+6)*tb)
				}
			} else {
				for p := 0; p < 2; p++ {
					g.m.store(accName(p, t))
					g.m.free(accName(p, t), false)
				}
			}
		}
	}
	// Trim the INTT residency to leave room for the pinned ModDown
	// towers during Section 1.
	for t := 0; t < kl; t++ {
		name := inttName(t)
		if g.m.resident(name) && !g.m.fits((int64(2*kp)+6)*tb) {
			if !g.m.get(name).inDRAM {
				g.m.store(name)
			}
			g.m.free(name, false)
		}
	}

	// ---- ModDown P1: pin and INTT the P towers of both polys. ----
	pintReads := [2][]string{}
	for p := 0; p < 2; p++ {
		for pt := kl; pt < kl+kp; pt++ {
			name := accName(p, pt)
			g.m.ensure(name)
			g.m.compute("md.intt", g.inttWithPreOps(), []string{name}, name, 0)
			pintReads[p] = append(pintReads[p], name)
		}
	}

	// ---- Section 1 fused with ModDown P2–P4. ----
	for grp := 0; grp < dnum; grp++ {
		var need []int
		for j := 0; j < dnum; j++ {
			if j != grp {
				need = append(need, j)
			}
		}
		passes := g.partitionDigits(need, s1Budget)
		for pi, pass := range passes {
			g.ensureResidentINTT(pass)
			last := pi == len(passes)-1
			for _, t := range g.digitTowers(grp) {
				if pi == 0 {
					g.m.ensure(inName(t))
					ek := g.m.streamEvk(evkName(grp, t), 2*tb)
					for p := 0; p < 2; p++ {
						g.m.compute("s1.bypass", g.applyKeyOps(), []string{inName(t)}, accName(p, t), tb, ek)
					}
					g.m.free(inName(t), true)
				} else {
					for p := 0; p < 2; p++ {
						g.m.ensure(accName(p, t))
					}
				}
				for _, j := range pass {
					g.convContribution(j, widths[j], t, false)
				}
				if !last {
					for p := 0; p < 2; p++ {
						g.m.store(accName(p, t))
						g.m.free(accName(p, t), false)
					}
					continue
				}
				// Fused ModDown: the finished accumulator pair is
				// converted and scaled right here; only the final
				// output tower touches DRAM.
				for p := 0; p < 2; p++ {
					cv := cvName(p, t)
					g.m.compute("md.bconv", g.bconvTowerOps(kp), pintReads[p], cv, tb)
					g.m.compute("md.ntt", g.nttOps(), []string{cv}, cv, 0)
					g.m.compute("md.scale", g.scaleOps(), []string{cv, accName(p, t)}, outName(p, t), tb)
					g.m.store(outName(p, t))
					g.m.free(outName(p, t), false)
					g.m.free(cv, true)
					g.m.free(accName(p, t), true)
				}
			}
		}
	}

	for p := 0; p < 2; p++ {
		for _, name := range pintReads[p] {
			g.m.free(name, true)
		}
	}
	// Any INTT towers still resident are dead now.
	for t := 0; t < kl; t++ {
		name := inttName(t)
		if g.m.resident(name) {
			g.m.free(name, !g.m.get(name).inDRAM)
		}
	}
}
