// Package dataflow generates RPU task-graph schedules for the hybrid
// key-switching algorithm under the three dataflows the paper proposes
// (§IV): Max-Parallel (MP), Digit-Centric (DC) and Output-Centric (OC).
//
// All three schedules compute the same operations — the total weighted
// op count always equals params.Ops().WeightedTotal() — but they order
// the work differently, which changes what can stay in the on-chip
// data memory and therefore how many bytes cross the DRAM interface.
// That traffic difference is the paper's entire story (Table II), and
// the simulator in internal/sim turns it into runtime (Figures 4–9).
package dataflow

import (
	"fmt"

	"ciflow/internal/params"
	"ciflow/internal/trace"
)

// Dataflow selects the scheduling strategy.
type Dataflow int

const (
	// MP is the Max-Parallel baseline: stage by stage over all towers
	// (Cheetah/HEAX style, paper §IV-A).
	MP Dataflow = iota
	// DC is Digit-Centric: one digit at a time through all ModUp
	// stages (MAD style, paper §IV-B).
	DC
	// OC is Output-Centric: one output tower at a time, the paper's
	// contribution (§IV-C).
	OC
	// OCF is this repository's extension: Output-Centric with the
	// ModDown conversion fused into Section 1, so finished output
	// towers never round-trip through DRAM. Falls back to OC when the
	// ModDown towers do not fit alongside a Section 1 digit pass.
	OCF
)

// String names the dataflow as in the paper.
func (d Dataflow) String() string {
	switch d {
	case MP:
		return "MP"
	case DC:
		return "DC"
	case OC:
		return "OC"
	case OCF:
		return "OCF"
	}
	return fmt.Sprintf("Dataflow(%d)", int(d))
}

// AllDataflows returns the paper's three dataflows, MP, DC, OC, in
// paper order.
func AllDataflows() []Dataflow { return []Dataflow{MP, DC, OC} }

// AllDataflowsExtended additionally includes this repository's OCF
// extension.
func AllDataflowsExtended() []Dataflow { return []Dataflow{MP, DC, OC, OCF} }

// Config parameterizes schedule generation.
type Config struct {
	Bench params.Benchmark
	// DataMemBytes is the on-chip memory available for inputs and
	// intermediates (32 MB in the paper's evaluations).
	DataMemBytes int64
	// EvkOnChip pre-loads evaluation keys into dedicated SRAM (the
	// paper's 392 MB configuration); when false they stream from DRAM.
	EvkOnChip bool
	// KeyCompression halves streamed evk bytes (paper §IV-D ablation).
	KeyCompression bool
}

// Traffic is the DRAM byte accounting of one schedule.
type Traffic struct {
	LoadBytes  int64 // data loads (inputs, spills, reloads)
	StoreBytes int64 // data stores (spills, outputs)
	EvkBytes   int64 // streamed evaluation keys (0 when on-chip)
}

// TotalBytes returns all DRAM traffic including streamed keys.
func (t Traffic) TotalBytes() int64 { return t.LoadBytes + t.StoreBytes + t.EvkBytes }

// Schedule is a generated HKS program plus its traffic accounting.
type Schedule struct {
	Dataflow Dataflow
	Cfg      Config
	Prog     *trace.Program
	Traffic  Traffic
}

// ArithmeticIntensity returns weighted modular operations per DRAM
// byte (paper Table II's AI column).
func (s *Schedule) ArithmeticIntensity() float64 {
	total := s.Traffic.TotalBytes()
	if s.Cfg.EvkOnChip {
		// The paper's AI is defined for the streaming configuration;
		// with resident keys, count the one-time key footprint like
		// Table II does by construction (keys still cross DRAM once).
		total += s.Cfg.Bench.EvkBytes()
	}
	if total == 0 {
		return 0
	}
	return float64(s.Cfg.Bench.Ops().WeightedTotal()) / float64(total)
}

// Generate builds the schedule for one dataflow and configuration.
func Generate(df Dataflow, cfg Config) (*Schedule, error) {
	if err := cfg.Bench.Validate(); err != nil {
		return nil, err
	}
	tb := cfg.Bench.TowerBytes()
	minTowers := int64(cfg.Bench.KP) + 4
	if mt := int64(cfg.Bench.Alpha()) + 4; mt > minTowers {
		minTowers = mt
	}
	if cfg.DataMemBytes < minTowers*tb {
		return nil, fmt.Errorf("dataflow: %s needs at least %d towers (%d bytes) of on-chip memory, have %d",
			cfg.Bench.Name, minTowers, minTowers*tb, cfg.DataMemBytes)
	}
	g := &gen{
		cfg: cfg,
		m:   newMachine(cfg.DataMemBytes, cfg.EvkOnChip, cfg.KeyCompression),
	}
	switch df {
	case MP:
		g.generateMP()
	case DC:
		g.generateDC()
	case OC:
		g.generateOC()
	case OCF:
		g.generateOCF()
	default:
		return nil, fmt.Errorf("dataflow: unknown dataflow %d", int(df))
	}
	s := &Schedule{Dataflow: df, Cfg: cfg, Prog: g.m.b.Program(), Traffic: g.m.traffic}
	if err := s.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("dataflow: generated invalid program: %w", err)
	}
	if got, want := s.Prog.Stats().ComputeOps, cfg.Bench.Ops().WeightedTotal(); got != want {
		return nil, fmt.Errorf("dataflow: %s op count %d differs from model %d (dataflow must not change work)",
			df, got, want)
	}
	return s, nil
}

// gen carries the per-generation state shared by the three dataflow
// emitters.
type gen struct {
	cfg Config
	m   *machine
}

func (g *gen) bench() params.Benchmark { return g.cfg.Bench }
func (g *gen) tb() int64               { return g.cfg.Bench.TowerBytes() }

// ---- Tower naming ----
// D-basis tower indices run 0..KL-1 (Q part) then KL..KL+KP-1 (P part).

func inName(t int) string       { return fmt.Sprintf("in.%d", t) }
func inttName(t int) string     { return fmt.Sprintf("intt.%d", t) }
func muName(j, t int) string    { return fmt.Sprintf("mu.%d.%d", j, t) }
func ppName(j, p, t int) string { return fmt.Sprintf("pp.%d.%d.%d", j, p, t) }
func accName(p, t int) string   { return fmt.Sprintf("acc.%d.%d", p, t) }
func cvName(p, t int) string    { return fmt.Sprintf("cv.%d.%d", p, t) }
func outName(p, t int) string   { return fmt.Sprintf("out.%d.%d", p, t) }
func evkName(j, t int) string   { return fmt.Sprintf("%d.%d", j, t) }

// digitOf returns which digit Q-tower t belongs to.
func (g *gen) digitOf(t int) int {
	a := g.bench().Alpha()
	return t / a
}

// digitTowers returns the Q-tower indices of digit j.
func (g *gen) digitTowers(j int) []int {
	a := g.bench().Alpha()
	w := g.bench().DigitWidths()[j]
	ts := make([]int, w)
	for i := range ts {
		ts[i] = j*a + i
	}
	return ts
}

// dTowers returns all D-basis tower indices (Q then P).
func (g *gen) dTowers() []int {
	n := g.bench().KL + g.bench().KP
	ts := make([]int, n)
	for i := range ts {
		ts[i] = i
	}
	return ts
}

// isP reports whether D-tower t is a P tower.
func (g *gen) isP(t int) bool { return t >= g.bench().KL }

// ---- Weighted op costs per tile (see params for the weights) ----

func (g *gen) nttOps() int64 {
	n := int64(g.bench().N())
	logN := int64(g.bench().LogN)
	return params.ButterflyWeight * (n / 2 * logN)
}

// inttWithPreOps is an INTT plus this tower's share of the digit's
// BConv ŷ pre-multiplication (N mul-accs, folded here so the premul is
// counted exactly once per tower regardless of dataflow).
func (g *gen) inttWithPreOps() int64 {
	return g.nttOps() + params.MulAccWeight*int64(g.bench().N())
}

// bconvTowerOps is one converted output tower from a digit of width
// alpha: N·alpha mul-accs.
func (g *gen) bconvTowerOps(alpha int) int64 {
	return params.MulAccWeight * int64(g.bench().N()) * int64(alpha)
}

// applyKeyOps is one poly's share of ApplyKey on one D-tower:
// N mul-accs against the streamed (or resident) evk tower.
func (g *gen) applyKeyOps() int64 {
	return params.MulAccWeight * int64(g.bench().N())
}

// reduceOps is one poly's share of accumulating one extra digit's
// partial product on one D-tower: N additions.
func (g *gen) reduceOps() int64 {
	return params.AddWeight * int64(g.bench().N())
}

// scaleOps is the ModDown P4 sub-and-scale on one tower of one poly.
func (g *gen) scaleOps() int64 {
	return params.ScaleWeight * int64(g.bench().N())
}
