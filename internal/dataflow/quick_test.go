package dataflow

import (
	"math/rand"
	"testing"

	"ciflow/internal/params"
)

// TestRandomConfigurations fuzzes the schedule generators across
// randomized HKS parameterizations and memory sizes. Every accepted
// configuration must produce a structurally valid program whose op
// count matches the analytic model and whose traffic is at least
// compulsory; rejections must come back as errors, never panics.
func TestRandomConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	accepted := 0
	for trial := 0; trial < 300; trial++ {
		b := params.Benchmark{
			Name: "fuzz",
			LogN: 12 + rng.Intn(6), // 2^12 .. 2^17
			KL:   1 + rng.Intn(48),
			KP:   rng.Intn(29),
			Dnum: 1 + rng.Intn(6),
		}
		if b.Dnum > b.KL {
			b.Dnum = b.KL
		}
		memTowers := int64(4 + rng.Intn(200))
		cfg := Config{
			Bench:          b,
			DataMemBytes:   memTowers * b.TowerBytes(),
			EvkOnChip:      rng.Intn(2) == 0,
			KeyCompression: rng.Intn(2) == 0,
		}
		df := AllDataflows()[rng.Intn(3)]

		s, err := func() (s *Schedule, err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (%s %+v, mem=%d towers): panic %v", trial, df, b, memTowers, r)
				}
			}()
			return Generate(df, cfg)
		}()
		if err != nil {
			continue
		}
		accepted++
		if err := s.Prog.Validate(); err != nil {
			t.Fatalf("trial %d (%s %+v): invalid program: %v", trial, df, b, err)
		}
		if got, want := s.Prog.Stats().ComputeOps, b.Ops().WeightedTotal(); got != want {
			t.Fatalf("trial %d (%s %+v): ops %d != %d", trial, df, b, got, want)
		}
		if s.Traffic.LoadBytes < b.InputBytes() {
			t.Fatalf("trial %d (%s): loads %d below compulsory input %d", trial, df, s.Traffic.LoadBytes, b.InputBytes())
		}
		if s.Traffic.StoreBytes < b.OutputBytes() {
			t.Fatalf("trial %d (%s): stores %d below compulsory output %d", trial, df, s.Traffic.StoreBytes, b.OutputBytes())
		}
		if cfg.EvkOnChip && s.Traffic.EvkBytes != 0 {
			t.Fatalf("trial %d: evk traffic with on-chip keys", trial)
		}
		if !cfg.EvkOnChip {
			want := b.EvkBytes()
			if cfg.KeyCompression {
				want /= 2
			}
			if s.Traffic.EvkBytes != want {
				t.Fatalf("trial %d: evk traffic %d, want %d", trial, s.Traffic.EvkBytes, want)
			}
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d of 300 fuzz configurations were schedulable; fuzzer too strict", accepted)
	}
}

// TestMachineMisusePanics pins the machine's fail-fast contract: the
// generators rely on these panics to catch scheduling bugs at
// generation time.
func TestMachineMisusePanics(t *testing.T) {
	expectPanic := func(name string, f func(m *machine)) {
		t.Helper()
		m := newMachine(1<<20, false, false)
		m.announceDRAM("x", 1<<10)
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f(m)
	}
	expectPanic("load unknown tile", func(m *machine) { m.load("nope") })
	expectPanic("double load", func(m *machine) { m.load("x"); m.load("x") })
	expectPanic("capacity overflow", func(m *machine) {
		m.announceDRAM("big", 2<<20)
		m.load("big")
	})
	expectPanic("read non-resident", func(m *machine) {
		m.compute("k", 1, []string{"x"}, "y", 8)
	})
	expectPanic("store non-resident", func(m *machine) { m.store("x") })
	expectPanic("free non-resident", func(m *machine) { m.free("x", true) })
	expectPanic("free dirty without store", func(m *machine) {
		m.load("x")
		m.compute("k", 1, []string{"x"}, "x", 0) // dirty now
		m.free("x", false)
	})
	expectPanic("announce twice", func(m *machine) { m.announceDRAM("x", 8) })
	expectPanic("load with no DRAM copy", func(m *machine) {
		m.compute("k", 1, nil, "fresh", 8)
		m.free("fresh", true)
		// "fresh" was discarded entirely; recreate a record-less load.
		m.load("fresh")
	})
}

// TestAntiDependencyThroughFreedSpace verifies that a load reusing
// freed space waits for the previous occupant's last use.
func TestAntiDependencyThroughFreedSpace(t *testing.T) {
	m := newMachine(1<<10, false, false) // room for exactly one 1 KiB tile
	m.announceDRAM("a", 1<<10)
	m.announceDRAM("b", 1<<10)
	m.load("a")
	use := m.compute("k", 10, []string{"a"}, "a", 0)
	m.store("a")
	m.free("a", false)
	ld := m.load("b")
	prog := m.b.Program()
	deps := prog.Tasks[ld].Deps
	found := false
	for _, d := range deps {
		if d >= use {
			found = true
		}
	}
	if !found {
		t.Fatalf("load of b (deps %v) does not wait for a's last use (task %d)", deps, use)
	}
}
