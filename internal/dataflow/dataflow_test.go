package dataflow

import (
	"testing"

	"ciflow/internal/params"
)

const mib = 1 << 20

func genOrFatal(t *testing.T, df Dataflow, cfg Config) *Schedule {
	t.Helper()
	s, err := Generate(df, cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", df, cfg.Bench.Name, err)
	}
	return s
}

func streamCfg(b params.Benchmark) Config {
	return Config{Bench: b, DataMemBytes: 32 * mib, EvkOnChip: false}
}

func TestGenerateAllBenchmarksAllDataflows(t *testing.T) {
	for _, b := range params.All() {
		for _, df := range AllDataflows() {
			s := genOrFatal(t, df, streamCfg(b))
			if err := s.Prog.Validate(); err != nil {
				t.Fatalf("%s/%s: invalid program: %v", df, b.Name, err)
			}
			st := s.Prog.Stats()
			if st.ComputeOps != b.Ops().WeightedTotal() {
				t.Fatalf("%s/%s: ops %d != model %d", df, b.Name, st.ComputeOps, b.Ops().WeightedTotal())
			}
			// Traffic accounting must match the emitted tasks.
			if st.LoadBytes != s.Traffic.LoadBytes+s.Traffic.EvkBytes {
				t.Fatalf("%s/%s: load bytes %d != traffic %d+%d", df, b.Name,
					st.LoadBytes, s.Traffic.LoadBytes, s.Traffic.EvkBytes)
			}
			if st.StoreBytes != s.Traffic.StoreBytes {
				t.Fatalf("%s/%s: store bytes mismatch", df, b.Name)
			}
			t.Logf("%s/%-6s: load=%5.0f MiB store=%5.0f MiB evk=%4.0f MiB total=%5.0f MiB AI=%.2f tasks=%d",
				df, b.Name,
				float64(s.Traffic.LoadBytes)/mib, float64(s.Traffic.StoreBytes)/mib,
				float64(s.Traffic.EvkBytes)/mib, float64(s.Traffic.TotalBytes())/mib,
				s.ArithmeticIntensity(), st.Tasks)
		}
	}
}

func TestEvkStreamBytesMatchKeySize(t *testing.T) {
	// Every (digit, tower) evk pair streams exactly once, so streamed
	// key traffic must equal the Table III key size.
	for _, b := range params.All() {
		for _, df := range AllDataflows() {
			s := genOrFatal(t, df, streamCfg(b))
			if s.Traffic.EvkBytes != b.EvkBytes() {
				t.Errorf("%s/%s: evk stream %d bytes, key size %d", df, b.Name, s.Traffic.EvkBytes, b.EvkBytes())
			}
		}
	}
}

func TestEvkOnChipEliminatesKeyTraffic(t *testing.T) {
	for _, df := range AllDataflows() {
		cfg := streamCfg(params.BTS3)
		cfg.EvkOnChip = true
		s := genOrFatal(t, df, cfg)
		if s.Traffic.EvkBytes != 0 {
			t.Errorf("%s: on-chip evks still streamed %d bytes", df, s.Traffic.EvkBytes)
		}
		// Data traffic must be identical to the streaming schedule.
		ss := genOrFatal(t, df, streamCfg(params.BTS3))
		if s.Traffic.LoadBytes != ss.Traffic.LoadBytes || s.Traffic.StoreBytes != ss.Traffic.StoreBytes {
			t.Errorf("%s: data traffic depends on evk placement", df)
		}
	}
}

func TestKeyCompressionHalvesEvkTraffic(t *testing.T) {
	cfg := streamCfg(params.ARK)
	cfg.KeyCompression = true
	for _, df := range AllDataflows() {
		s := genOrFatal(t, df, cfg)
		if s.Traffic.EvkBytes != params.ARK.EvkBytes()/2 {
			t.Errorf("%s: compressed evk stream %d, want %d", df, s.Traffic.EvkBytes, params.ARK.EvkBytes()/2)
		}
	}
}

func TestTrafficOrderingOCBest(t *testing.T) {
	// The paper's Table II ordering: OC < DC <= MP for every
	// benchmark (total traffic including streamed keys).
	for _, b := range params.All() {
		var tot [3]int64
		for i, df := range AllDataflows() {
			tot[i] = genOrFatal(t, df, streamCfg(b)).Traffic.TotalBytes()
		}
		if !(tot[2] < tot[1] && tot[1] <= tot[0]) {
			t.Errorf("%s: traffic MP=%d DC=%d OC=%d violates OC < DC <= MP", b.Name, tot[0], tot[1], tot[2])
		}
	}
}

func TestDCEqualsMPForSingleDigit(t *testing.T) {
	// BTS1 has one digit: DC and MP are the same implementation.
	mp := genOrFatal(t, MP, streamCfg(params.BTS1))
	dc := genOrFatal(t, DC, streamCfg(params.BTS1))
	if mp.Traffic != dc.Traffic {
		t.Errorf("BTS1: MP %+v != DC %+v", mp.Traffic, dc.Traffic)
	}
}

func TestUnlimitedMemoryConvergence(t *testing.T) {
	// With on-chip memory big enough for the whole working set, all
	// dataflows converge to compulsory traffic (paper §IV): input +
	// output + streamed keys only.
	for _, b := range []params.Benchmark{params.ARK, params.BTS3} {
		cfg := Config{Bench: b, DataMemBytes: 4 << 30, EvkOnChip: false}
		compulsoryLoad := b.InputBytes()
		compulsoryStore := b.OutputBytes()
		for _, df := range AllDataflows() {
			s := genOrFatal(t, df, cfg)
			if s.Traffic.LoadBytes != compulsoryLoad {
				t.Errorf("%s/%s unlimited: load %d, compulsory %d", df, b.Name, s.Traffic.LoadBytes, compulsoryLoad)
			}
			if s.Traffic.StoreBytes < compulsoryStore {
				t.Errorf("%s/%s unlimited: store %d below compulsory %d", df, b.Name, s.Traffic.StoreBytes, compulsoryStore)
			}
		}
	}
}

func TestTooSmallMemoryRejected(t *testing.T) {
	cfg := Config{Bench: params.BTS3, DataMemBytes: 4 * mib}
	for _, df := range AllDataflows() {
		if _, err := Generate(df, cfg); err == nil {
			t.Errorf("%s: 4 MiB accepted for BTS3", df)
		}
	}
}

func TestDataflowString(t *testing.T) {
	if MP.String() != "MP" || DC.String() != "DC" || OC.String() != "OC" {
		t.Fatal("dataflow names wrong")
	}
}
