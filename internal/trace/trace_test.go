package trace

import "testing"

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	l := b.Load("in", 100)
	c := b.Compute("intt", 500, l)
	s := b.Store("out", 100, c)
	p := b.Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Tasks) != 3 {
		t.Fatalf("got %d tasks", len(p.Tasks))
	}
	if len(p.MemQueue) != 2 || len(p.CmpQueue) != 1 {
		t.Fatalf("queues %v %v", p.MemQueue, p.CmpQueue)
	}
	st := p.Stats()
	if st.LoadBytes != 100 || st.StoreBytes != 100 || st.ComputeOps != 500 {
		t.Fatalf("stats %+v", st)
	}
	if p.Tasks[s].Deps[0] != c || p.Tasks[c].Deps[0] != l {
		t.Fatal("dependencies not recorded")
	}
}

func TestDepsAreCopied(t *testing.T) {
	b := NewBuilder()
	deps := []int{b.Load("a", 1)}
	b.Compute("c", 1, deps...)
	deps[0] = 99 // mutating the caller slice must not corrupt the task
	if b.Program().Tasks[1].Deps[0] != 0 {
		t.Fatal("builder aliased the caller's dependency slice")
	}
}

func TestValidateRejectsForwardDep(t *testing.T) {
	p := &Program{
		Tasks: []Task{
			{ID: 0, Kind: Compute, Deps: []int{1}},
			{ID: 1, Kind: Compute},
		},
		CmpQueue: []int{0, 1},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("forward dependency accepted")
	}
}

func TestValidateRejectsWrongQueue(t *testing.T) {
	p := &Program{
		Tasks:    []Task{{ID: 0, Kind: Load, Bytes: 8}},
		CmpQueue: []int{0},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("load in compute queue accepted")
	}
}

func TestValidateRejectsUnqueuedTask(t *testing.T) {
	p := &Program{Tasks: []Task{{ID: 0, Kind: Load, Bytes: 8}}}
	if err := p.Validate(); err == nil {
		t.Fatal("unqueued task accepted")
	}
}

func TestValidateRejectsDoubleQueue(t *testing.T) {
	p := &Program{
		Tasks:    []Task{{ID: 0, Kind: Load, Bytes: 8}},
		MemQueue: []int{0, 0},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("doubly queued task accepted")
	}
}

func TestValidateRejectsMixedPayload(t *testing.T) {
	p := &Program{
		Tasks:    []Task{{ID: 0, Kind: Compute, Bytes: 8}},
		CmpQueue: []int{0},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("compute task with bytes accepted")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" || Compute.String() != "compute" {
		t.Fatal("kind names wrong")
	}
}
