// Package trace defines the task-graph intermediate representation
// shared by the dataflow generators and the RPU performance simulator.
//
// It mirrors the paper's software framework (§V-C): a program is two
// in-order queues — memory tasks (off-chip transfers) and compute
// tasks (HKS kernel tiles) — with explicit cross-queue dependencies.
// The task at the front of each queue issues once its dependencies
// have completed, so independent data movement overlaps computation.
package trace

import "fmt"

// Kind classifies a task.
type Kind int

const (
	// Load moves bytes from DRAM to on-chip memory.
	Load Kind = iota
	// Store moves bytes from on-chip memory to DRAM.
	Store
	// Compute executes a kernel tile on the vector backend.
	Compute
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Task is one schedulable unit. Memory tasks carry Bytes; compute
// tasks carry Ops (weighted modular operations, see params).
type Task struct {
	ID    int
	Kind  Kind
	Name  string
	Bytes int64
	Ops   int64
	Deps  []int
}

// Program is a complete HKS schedule: the task set plus the two issue
// queues, each holding task IDs in program order.
type Program struct {
	Tasks    []Task
	MemQueue []int
	CmpQueue []int
}

// Builder incrementally constructs a Program.
type Builder struct {
	p Program
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

func (b *Builder) add(k Kind, name string, bytes, ops int64, deps []int) int {
	id := len(b.p.Tasks)
	// Copy deps defensively; callers often reuse slices.
	d := append([]int(nil), deps...)
	b.p.Tasks = append(b.p.Tasks, Task{ID: id, Kind: k, Name: name, Bytes: bytes, Ops: ops, Deps: d})
	if k == Compute {
		b.p.CmpQueue = append(b.p.CmpQueue, id)
	} else {
		b.p.MemQueue = append(b.p.MemQueue, id)
	}
	return id
}

// Load appends a DRAM→chip transfer and returns its task ID.
func (b *Builder) Load(name string, bytes int64, deps ...int) int {
	return b.add(Load, name, bytes, 0, deps)
}

// Store appends a chip→DRAM transfer and returns its task ID.
func (b *Builder) Store(name string, bytes int64, deps ...int) int {
	return b.add(Store, name, bytes, 0, deps)
}

// Compute appends a kernel tile and returns its task ID.
func (b *Builder) Compute(name string, ops int64, deps ...int) int {
	return b.add(Compute, name, 0, ops, deps)
}

// Program finalizes and returns the built program.
func (b *Builder) Program() *Program { return &b.p }

// Stats aggregates a program's volume.
type Stats struct {
	Tasks      int
	LoadBytes  int64
	StoreBytes int64
	ComputeOps int64
}

// Stats scans the program.
func (p *Program) Stats() Stats {
	var s Stats
	s.Tasks = len(p.Tasks)
	for _, t := range p.Tasks {
		switch t.Kind {
		case Load:
			s.LoadBytes += t.Bytes
		case Store:
			s.StoreBytes += t.Bytes
		case Compute:
			s.ComputeOps += t.Ops
		}
	}
	return s
}

// Validate checks structural well-formedness: IDs are dense and
// self-consistent, dependencies reference earlier-created tasks (the
// construction order is a topological order, so the graph is acyclic),
// queue membership matches task kinds, and every task appears in
// exactly one queue slot.
func (p *Program) Validate() error {
	for i, t := range p.Tasks {
		if t.ID != i {
			return fmt.Errorf("trace: task %d carries ID %d", i, t.ID)
		}
		for _, d := range t.Deps {
			if d < 0 || d >= len(p.Tasks) {
				return fmt.Errorf("trace: task %d depends on unknown task %d", i, d)
			}
			if d >= i {
				return fmt.Errorf("trace: task %d depends on later task %d (cycle risk)", i, d)
			}
		}
		if t.Kind == Compute && t.Bytes != 0 {
			return fmt.Errorf("trace: compute task %d carries bytes", i)
		}
		if t.Kind != Compute && t.Ops != 0 {
			return fmt.Errorf("trace: memory task %d carries ops", i)
		}
	}
	seen := make([]bool, len(p.Tasks))
	check := func(queue []int, wantCompute bool) error {
		for _, id := range queue {
			if id < 0 || id >= len(p.Tasks) {
				return fmt.Errorf("trace: queue references unknown task %d", id)
			}
			if seen[id] {
				return fmt.Errorf("trace: task %d queued twice", id)
			}
			seen[id] = true
			if isCompute := p.Tasks[id].Kind == Compute; isCompute != wantCompute {
				return fmt.Errorf("trace: task %d (%s) in wrong queue", id, p.Tasks[id].Kind)
			}
		}
		return nil
	}
	if err := check(p.MemQueue, false); err != nil {
		return err
	}
	if err := check(p.CmpQueue, true); err != nil {
		return err
	}
	for id, ok := range seen {
		if !ok {
			return fmt.Errorf("trace: task %d not queued", id)
		}
	}
	return nil
}
