package trace

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	b := NewBuilder()
	l := b.Load("ld:in.0", 100)
	c := b.Compute("p1.intt", 500, l)
	b.Store("st:out.0", 100, c)
	var sb strings.Builder
	if err := b.Program().WriteDOT(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "t0 -> t1", "t1 -> t2", "shape=box", "shape=ellipse"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTTruncates(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 20; i++ {
		b.Load("ld:x", 1)
	}
	var sb strings.Builder
	if err := b.Program().WriteDOT(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "t5 ") {
		t.Error("truncation did not apply")
	}
}

func TestStageTraffic(t *testing.T) {
	b := NewBuilder()
	b.Load("ld:in.0", 100)
	b.Load("ld:in.1", 100)
	b.Load("evk:0.3", 50)
	b.Store("st:mu.1.7", 25)
	b.Compute("k", 10)
	got := b.Program().StageTraffic()
	want := map[string]int64{"ld:in": 200, "evk:0": 50, "st:mu": 25}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("stage %q = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
}
