package trace

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the task graph in Graphviz DOT format for visual
// inspection of a schedule's dependency structure. Memory tasks are
// drawn as boxes, compute tasks as ellipses; queue order is implicit
// in the task IDs. Intended for small schedules or truncated views
// (maxTasks ≤ 0 renders everything).
func (p *Program) WriteDOT(w io.Writer, maxTasks int) error {
	n := len(p.Tasks)
	if maxTasks > 0 && maxTasks < n {
		n = maxTasks
	}
	var sb strings.Builder
	sb.WriteString("digraph schedule {\n  rankdir=LR;\n")
	for i := 0; i < n; i++ {
		t := &p.Tasks[i]
		shape := "ellipse"
		label := fmt.Sprintf("%s\\n%d ops", t.Name, t.Ops)
		if t.Kind != Compute {
			shape = "box"
			label = fmt.Sprintf("%s\\n%d B", t.Name, t.Bytes)
		}
		fmt.Fprintf(&sb, "  t%d [shape=%s,label=\"%s\"];\n", t.ID, shape, escapeDOT(label))
	}
	for i := 0; i < n; i++ {
		for _, d := range p.Tasks[i].Deps {
			if d < n {
				fmt.Fprintf(&sb, "  t%d -> t%d;\n", d, p.Tasks[i].ID)
			}
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

func escapeDOT(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// StageTraffic aggregates a program's memory tasks by the colon-free
// prefix of their names (e.g. "ld:intt.3" groups under "ld:intt"),
// giving the per-stage traffic breakdown the dataflow analysis uses to
// explain where each schedule spends its bytes.
func (p *Program) StageTraffic() map[string]int64 {
	out := map[string]int64{}
	for _, t := range p.Tasks {
		if t.Kind == Compute {
			continue
		}
		name := t.Name
		// Trim the per-tile numeric suffix: "ld:mu.2.17" -> "ld:mu".
		if i := strings.IndexAny(name, ".0123456789"); i > 0 {
			// Keep the "ld:"/"st:"/"evk:" prefix plus the tile class.
			if j := strings.Index(name, ":"); j >= 0 {
				rest := name[j+1:]
				if k := strings.Index(rest, "."); k > 0 {
					name = name[:j+1] + rest[:k]
				}
			}
		}
		out[name] += t.Bytes
	}
	return out
}
