package workload

// The scenario library: generators for workload shapes beyond the
// bootstrap/matvec/fanout trio, plus the canonical named scenarios the
// golden files, the fuzz seeds, and the scenario perf baseline pin.
// Each generator stresses a different corner of the serving layer's
// reuse machinery:
//
//   - PIR: batched private-lookup queries — per batch one wide
//     hoisted rotation fan-out (the masked database probes share one
//     query ciphertext) folded by a single dependent combine
//     rotation. Maximum width, minimum depth: the shape where
//     coalescing is nearly the whole cost model.
//   - PrivateInference: the examples/private_inference pipeline as a
//     schedule — a chain of BSGS matvec layers (hoistable babies,
//     dependent giants) with one relinearization between layers, each
//     layer two levels below the last (the matvec's rescale plus the
//     multiplication's). Interleaves every dependency pattern the
//     replay client understands.
//   - EvalMod: the bootstrap sine-polynomial evaluation modeled
//     honestly — a pure chain of relinearizations, one per level.
//     Zero hoistable fan-out: the degenerate dependency-only case,
//     where a correct serving layer must coalesce *nothing*.
//
// Scenario(name) builds each library member at its canonical replay
// geometry (top level scenarioTop, so every scenario fits the
// towers-6 replay rings of the smoke jobs and the bench), except the
// bootstrap scenario, which keeps the paper's BTS2 geometry and
// exists for export/import golden coverage rather than replay.

import (
	"fmt"

	"ciflow/internal/params"
)

// PIR builds a PIR-style batched-lookup schedule: batches independent
// queries, each a hoist group of width masked-probe rotations (one
// shared query ciphertext) feeding one dependent combine rotation
// that folds the partial results, all at one level. Wide fan-out,
// depth 2: predicted ModUps = 2·batches, coalesced = batches·width.
func PIR(batches, width, level int) (*Schedule, error) {
	if batches < 1 || width < 2 {
		return nil, fmt.Errorf("workload: pir needs batches >= 1 and width >= 2, got %d, %d", batches, width)
	}
	b := &builder{name: fmt.Sprintf("pir-%dx%d", batches, width)}
	rots := make([]int, width)
	for i := range rots {
		rots[i] = i + 1
	}
	for q := 0; q < batches; q++ {
		probes := b.group(fmt.Sprintf("query%d probe", q), level, nil, rots)
		b.node(fmt.Sprintf("query%d combine", q), Rotate, width+1, level, probes)
	}
	return b.schedule()
}

// PrivateInference builds a private-inference pipeline of layers BSGS
// matvec layers (n1 babies, n2 giants — the examples/private_inference
// diagonal method) with one relinearization between consecutive
// layers. Layer l's rotations run at level top−2l and its relin one
// level below (the matvec consumes one level rescaling, the
// multiplication another), so the schedule needs top ≥ 2·layers−1.
func PrivateInference(layers, n1, n2, top int) (*Schedule, error) {
	if layers < 1 || n1 < 2 || n2 < 1 {
		return nil, fmt.Errorf("workload: private-inference needs layers >= 1, n1 >= 2, n2 >= 1, got %d, %d, %d",
			layers, n1, n2)
	}
	if top < 2*layers-1 {
		return nil, fmt.Errorf("workload: private-inference with %d layers needs top level >= %d, have %d",
			layers, 2*layers-1, top)
	}
	b := &builder{name: fmt.Sprintf("private-inference-%dx%dx%d", layers, n1, n2)}
	babies := make([]int, n1-1)
	for i := range babies {
		babies[i] = i + 1
	}
	var deps []int
	level := top
	for l := 0; l < layers; l++ {
		out := b.group(fmt.Sprintf("layer%d baby", l), level, deps, babies)
		if n2 > 1 {
			giants := make([]int, 0, n2-1)
			for j := 1; j < n2; j++ {
				giants = append(giants, b.node(fmt.Sprintf("layer%d giant", l), Rotate, j*n1, level, out))
			}
			out = giants
		}
		deps = []int{b.node(fmt.Sprintf("layer%d relin", l), Relin, 0, level-1, out)}
		level -= 2
	}
	return b.schedule()
}

// EvalMod builds the bootstrap modular-reduction polynomial as an
// honest relin chain: depth relinearizations, each depending on the
// previous, descending one level per node from top. No hoistable
// fan-out at all — the schedule predicts zero coalesces, and a
// serving layer that merges any of these logically sequential
// switches fails the exact-count gate.
func EvalMod(depth, top int) (*Schedule, error) {
	if depth < 1 {
		return nil, fmt.Errorf("workload: evalmod needs depth >= 1, got %d", depth)
	}
	if top < depth-1 {
		return nil, fmt.Errorf("workload: evalmod of depth %d needs top level >= %d, have %d", depth, depth-1, top)
	}
	b := &builder{name: fmt.Sprintf("evalmod-%d", depth)}
	var deps []int
	for i := 0; i < depth; i++ {
		deps = []int{b.node(fmt.Sprintf("evalmod%d", i), Relin, 0, top-i, deps)}
	}
	return b.schedule()
}

// scenarioTop is the canonical top level of the replayable library
// scenarios: level 5, so each fits a towers-6 replay ring
// (ckks.NewContext MaxLevel = towers−1) at any logn the smoke jobs
// and the bench use.
const scenarioTop = 5

// ScenarioNames lists the library scenarios in display order; every
// name has a committed golden file testdata/<name>.schedule.json.
func ScenarioNames() []string {
	return []string{"bootstrap-bts2", "matvec", "pir", "private-inference", "evalmod"}
}

// Scenario builds one named library scenario at its canonical
// geometry. All but bootstrap-bts2 replay on a towers-6 ring;
// bootstrap-bts2 is the paper's BTS2 pipeline at its own 2^16-slot,
// KL-level geometry (golden/export coverage — far too many levels for
// the replay rings).
func Scenario(name string) (*Schedule, error) {
	switch name {
	case "bootstrap-bts2":
		return BootstrapBTS(params.BTS2, 0)
	case "matvec":
		return Matvec(8, 4, scenarioTop)
	case "pir":
		return PIR(4, 16, scenarioTop)
	case "private-inference":
		return PrivateInference(3, 4, 4, scenarioTop)
	case "evalmod":
		return EvalMod(6, scenarioTop)
	default:
		return nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, ScenarioNames())
	}
}
