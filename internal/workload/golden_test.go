package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// update regenerates the committed golden schedule files from the
// scenario library:
//
//	go test ./internal/workload -run TestScenarioGoldens -update
var update = flag.Bool("update", false, "rewrite the testdata/*.schedule.json goldens")

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".schedule.json")
}

// TestScenarioGoldens pins every library scenario byte for byte: the
// generator's export must match the committed golden exactly, the
// golden must import to a schedule with identical per-level count
// predictions, and re-exporting the import must reproduce the golden
// — so the committed files, the generators, and the serializer cannot
// drift apart, and the smoke jobs replaying a golden replay exactly
// what the generators predict.
func TestScenarioGoldens(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			s, err := Scenario(name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Export()
			if err != nil {
				t.Fatal(err)
			}
			path := goldenPath(name)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s drifted from the %s generator (regenerate with -update if intended)", path, name)
			}
			imp, err := ImportFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(imp.Counts(), s.Counts()) {
				t.Fatalf("imported golden predicts %+v, generator %+v", imp.Counts(), s.Counts())
			}
			re, err := imp.Export()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, want) {
				t.Fatal("golden not byte-stable across import/export")
			}
		})
	}
}
