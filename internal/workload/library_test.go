package workload

import (
	"reflect"
	"strings"
	"testing"
)

// TestPIRCounts pins the PIR shape's exact predictions: per batch one
// hoist group of width probes (one shared ModUp) plus one dependent
// combine (its own ModUp), all on one level.
func TestPIRCounts(t *testing.T) {
	s, err := PIR(2, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c.Switches != 12 || c.Rotations != 12 || c.Relins != 0 {
		t.Fatalf("switch counts %+v", c)
	}
	if c.ModUps != 4 || c.HoistGroups != 2 || c.Coalesced != 10 || c.MaxWidth != 5 {
		t.Fatalf("hoist counts %+v", c)
	}
	if c.Depth != 2 {
		t.Fatalf("depth %d, want 2 (probes, then the combine)", c.Depth)
	}
	want := []LevelCount{{Level: 3, Switches: 12, ModUps: 4, Coalesced: 10}}
	if !reflect.DeepEqual(c.PerLevel, want) {
		t.Fatalf("per-level %+v, want %+v", c.PerLevel, want)
	}
}

// TestPrivateInferenceCounts pins the layered matvec/relin stack:
// each layer one baby hoist group, dependent giants, and a relin one
// level below, the next layer two levels down.
func TestPrivateInferenceCounts(t *testing.T) {
	s, err := PrivateInference(2, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c.Switches != 8 || c.Rotations != 6 || c.Relins != 2 {
		t.Fatalf("switch counts %+v", c)
	}
	if c.ModUps != 6 || c.HoistGroups != 2 || c.Coalesced != 4 {
		t.Fatalf("hoist counts %+v", c)
	}
	if c.Depth != 6 {
		t.Fatalf("depth %d, want 6 (baby-giant-relin twice)", c.Depth)
	}
	want := []LevelCount{
		{Level: 4, Switches: 3, ModUps: 2, Coalesced: 2},
		{Level: 3, Switches: 1, ModUps: 1},
		{Level: 2, Switches: 3, ModUps: 2, Coalesced: 2},
		{Level: 1, Switches: 1, ModUps: 1},
	}
	if !reflect.DeepEqual(c.PerLevel, want) {
		t.Fatalf("per-level %+v, want %+v", c.PerLevel, want)
	}
}

// TestEvalModCounts pins the degenerate dependency-only chain: one
// relin per level, nothing hoistable, nothing coalesced.
func TestEvalModCounts(t *testing.T) {
	s, err := EvalMod(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c.Switches != 4 || c.Rotations != 0 || c.Relins != 4 {
		t.Fatalf("switch counts %+v", c)
	}
	if c.ModUps != 4 || c.HoistGroups != 0 || c.Coalesced != 0 {
		t.Fatalf("hoist counts %+v", c)
	}
	if c.Depth != 4 {
		t.Fatalf("depth %d, want 4 (a pure chain)", c.Depth)
	}
	want := []LevelCount{
		{Level: 5, Switches: 1, ModUps: 1},
		{Level: 4, Switches: 1, ModUps: 1},
		{Level: 3, Switches: 1, ModUps: 1},
		{Level: 2, Switches: 1, ModUps: 1},
	}
	if !reflect.DeepEqual(c.PerLevel, want) {
		t.Fatalf("per-level %+v, want %+v", c.PerLevel, want)
	}
}

func TestLibraryRejects(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*Schedule, error)
		want string
	}{
		{"pir-width", func() (*Schedule, error) { return PIR(1, 1, 0) }, "width >= 2"},
		{"pi-shape", func() (*Schedule, error) { return PrivateInference(0, 3, 2, 4) }, "layers >= 1"},
		{"pi-levels", func() (*Schedule, error) { return PrivateInference(4, 3, 2, 4) }, "top level >= 7"},
		{"evalmod-depth", func() (*Schedule, error) { return EvalMod(0, 5) }, "depth >= 1"},
		{"evalmod-levels", func() (*Schedule, error) { return EvalMod(7, 5) }, "top level >= 6"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.f()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestScenarios: every library scenario builds, validates, and (except
// the BTS2 bootstrap, which keeps the paper's deep geometry) fits the
// canonical towers-6 replay ring.
func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		s, err := Scenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "bootstrap-bts2" {
			continue
		}
		for _, n := range s.Nodes {
			if n.Level > scenarioTop {
				t.Fatalf("%s: node %d at level %d above the scenario top %d", name, n.ID, n.Level, scenarioTop)
			}
		}
	}
	if _, err := Scenario("nope"); err == nil || !strings.Contains(err.Error(), `unknown scenario "nope"`) {
		t.Fatalf("unknown scenario: %v", err)
	}
}
