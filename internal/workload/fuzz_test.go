package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScheduleImport drives the importer with arbitrary bytes, seeded
// with the committed scenario goldens and the rejection corpus. The
// properties: Import never panics; whatever it accepts passes
// Validate() (so it is replayable with exact Counts() predictions),
// exports canonically (export→import→export is byte-stable), and
// predicts the same counts after the round trip. CI runs this briefly
// on every push (see .github/workflows/ci.yml); longer local runs:
//
//	go test ./internal/workload -run NONE -fuzz FuzzScheduleImport
func FuzzScheduleImport(f *testing.F) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "*.schedule.json"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range goldens {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(validScheduleJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"name":"x","nodes":[]}`))
	f.Add([]byte(`{"version":2,"name":"x","nodes":[]}`))
	f.Add([]byte(`{"version":1,"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"deps":[0],"group":0}]}`))
	f.Add([]byte(`not a schedule`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Import(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("import accepted a schedule failing Validate: %v", err)
		}
		out, err := s.Export()
		if err != nil {
			t.Fatalf("accepted schedule does not export: %v", err)
		}
		again, err := Import(out)
		if err != nil {
			t.Fatalf("canonical export does not re-import: %v", err)
		}
		re, err := again.Export()
		if err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if !bytes.Equal(re, out) {
			t.Fatal("export not byte-stable across a round trip")
		}
		if !reflect.DeepEqual(again.Counts(), s.Counts()) {
			t.Fatal("round trip changed the count predictions")
		}
	})
}
