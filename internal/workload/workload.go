// Package workload represents key-switch traffic as typed schedule
// DAGs and replays them against the internal/serve service.
//
// The serving layer's reuse machinery — hoisted-state coalescing,
// key caching, micro-batching — was built under an independent
// fan-out load: every request ready the moment it is issued, every
// fan-out on one shared input. Real CKKS workloads are not shaped
// like that. The paper's heaviest key-switch mix, CKKS bootstrapping,
// is long *dependent* chains of CoeffToSlot/SlotToCoeff stages
// interleaved with wide hoistable rotation fan-outs: a stage's
// baby-step rotations can share one Decompose+ModUp, but its
// giant-step rotations each consume a distinct inner sum (no sharing
// possible), and the next stage cannot start until the current one
// finishes. Whether coalescing wins anything under that dependency
// pressure is a property of the schedule's *shape*, not of any single
// switch — which is exactly the dataflow argument this repository
// reproduces, lifted from one key switch to a whole schedule.
//
// A Schedule is a DAG of key switches. Each Node is one rotation or
// one multiplication relinearization at an explicit ciphertext level,
// with explicit data dependencies (Deps) and a hoist-group assignment
// (Group): nodes of one group consume the same input polynomial and
// may legally share one hoisted ModUp. Generators (generate.go) build
// three shapes:
//
//   - Bootstrap: CoeffToSlot/SlotToCoeff rotation schedules with
//     radix-split rotation indices and one level consumed per stage,
//     derived from the BTS1–3 parameter sets (or scaled onto a
//     smaller replay ring);
//   - Matvec: one baby-step/giant-step diagonal matrix-vector
//     product — a hoistable baby fan-out feeding dependent giant
//     singletons;
//   - Fanout: the serving layer's original independent fan-out
//     bursts, as the degenerate (dependency-free) case.
//
// Counts() predicts, from the DAG alone, exactly what a correct
// serving layer must measure: key switches per level, ModUp
// executions with hoisting (one per group) and without (one per
// node), and the coalesced-request count. The replay client
// (replay.go) drives internal/serve respecting the DAG — a node is
// submitted only after its predecessors' results land, hoist groups
// are submitted together so the coalescer can merge them — and the
// measured serve.Stats deltas must equal these predictions *exactly*;
// any drift means the service either coalesced logically sequential
// work (a correctness hazard) or failed to coalesce a hoistable group
// (a performance regression). `ciflow schedule` prints a schedule's
// shape and predictions; `ciflow serve -workload ...` replays it.
package workload

import (
	"fmt"
	"sort"
)

// Kind is the operation class of a schedule node. Both kinds cost one
// hybrid key switch; they differ in which evaluation key they consume
// (a rotation key vs the s²→s relinearization key).
type Kind int

const (
	// Rotate is a slot rotation: one key switch under a rotation key.
	Rotate Kind = iota
	// Relin is a ciphertext multiplication's relinearization: one key
	// switch under the relinearization key. The replay client models
	// it as a switch under the identity-automorphism key (Rot 0),
	// which has the identical cost shape at the hks layer.
	Relin
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Rotate:
		return "rotate"
	case Relin:
		return "relin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one key switch of a schedule. Nodes are identified by their
// index in Schedule.Nodes; dependencies always point at lower IDs, so
// a schedule is acyclic by construction.
type Node struct {
	// ID is the node's index in Schedule.Nodes.
	ID int `json:"id"`
	// Kind selects rotation vs relinearization.
	Kind Kind `json:"kind"`
	// Rot is the rotation amount (Rotate nodes; 0 for Relin).
	Rot int `json:"rot"`
	// Level is the ciphertext level the switch runs at.
	Level int `json:"level"`
	// Deps lists the nodes whose outputs this node's input is derived
	// from; empty for root nodes. All members of one hoist group carry
	// identical Deps — they consume the same input.
	Deps []int `json:"deps,omitempty"`
	// Group is the hoist-group index. Members of one group share one
	// input polynomial and may share one hoisted ModUp; singleton
	// groups get their own ModUp. Group IDs are dense, ascending, and
	// members are consecutive in Schedule.Nodes.
	Group int `json:"group"`
	// Stage is a human label ("CtS0 baby", "giant", ...), for reports.
	Stage string `json:"stage,omitempty"`
}

// Schedule is a dependency DAG of key switches, in topological order.
// Construct through the generators in generate.go (or assemble Nodes
// directly and Validate).
type Schedule struct {
	Name  string `json:"name"`
	Nodes []Node `json:"nodes"`
	// Radix is the effective per-stage DFT radix of a bootstrap
	// schedule (after auto-fit or clamping); 0 for other shapes.
	Radix int `json:"radix,omitempty"`
}

// Groups returns the hoist groups as slices of node IDs, indexed by
// group ID. Validate guarantees members are consecutive and groups
// densely numbered.
func (s *Schedule) Groups() [][]int {
	var groups [][]int
	for _, n := range s.Nodes {
		if n.Group == len(groups) {
			groups = append(groups, nil)
		}
		groups[n.Group] = append(groups[n.Group], n.ID)
	}
	return groups
}

// Validate checks the DAG invariants the replay client and the count
// predictions rely on: IDs match positions, dependencies point
// backwards (acyclicity), levels never increase along an edge (a
// node's input must be derivable from its predecessors' outputs by
// basis restriction), and hoist groups are dense, consecutive runs of
// nodes sharing identical Deps, Level and Kind.
func (s *Schedule) Validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("workload: schedule %q has no nodes", s.Name)
	}
	nextGroup := 0
	for i, n := range s.Nodes {
		if n.ID != i {
			return fmt.Errorf("workload: node at index %d has ID %d", i, n.ID)
		}
		if n.Level < 0 {
			return fmt.Errorf("workload: node %d at negative level %d", i, n.Level)
		}
		if n.Kind != Rotate && n.Kind != Relin {
			return fmt.Errorf("workload: node %d has unknown kind %d", i, int(n.Kind))
		}
		if n.Kind == Relin && n.Rot != 0 {
			return fmt.Errorf("workload: relin node %d carries rotation %d", i, n.Rot)
		}
		for _, d := range n.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("workload: node %d depends on %d (must be an earlier node)", i, d)
			}
			if s.Nodes[d].Level < n.Level {
				return fmt.Errorf("workload: node %d at level %d depends on node %d at lower level %d",
					i, n.Level, d, s.Nodes[d].Level)
			}
		}
		switch {
		case n.Group == nextGroup:
			nextGroup++
		case n.Group == nextGroup-1 && i > 0:
			// Continuing the current group: members must be exact
			// replicas but for the rotation amount.
			prev := s.Nodes[i-1]
			if prev.Group != n.Group {
				return fmt.Errorf("workload: group %d is not consecutive at node %d", n.Group, i)
			}
			if n.Level != prev.Level || n.Kind != prev.Kind || !equalDeps(n.Deps, prev.Deps) {
				return fmt.Errorf("workload: node %d does not match its hoist group %d (level/kind/deps differ)",
					i, n.Group)
			}
		default:
			return fmt.Errorf("workload: node %d has group %d, want %d or %d (groups must be dense and consecutive)",
				i, n.Group, nextGroup-1, nextGroup)
		}
	}
	return nil
}

func equalDeps(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LevelCount is one level's slice of a schedule's predicted counts:
// key switches at the level, hoisted Decompose+ModUp executions (one
// per hoist group running at the level), and requests served out of
// shared hoisted state (the summed width of the level's hoist groups
// with at least two members). The replay client cross-validates these
// against the service's own per-level counters (serve.Stats.PerLevel),
// so the level mix — not just the totals — must survive any serving
// layer between client and executor.
type LevelCount struct {
	Level     int `json:"level"`
	Switches  int `json:"switches"`
	ModUps    int `json:"mod_ups"`
	Coalesced int `json:"coalesced,omitempty"`
}

// Counts are the exact operation counts a schedule predicts for any
// correct executor: the replay client asserts the measured serve
// counters equal these, field for field.
type Counts struct {
	// Switches is the total key switches (nodes); a serving layer's
	// Served delta must equal it.
	Switches int `json:"switches"`
	// Rotations and Relins partition Switches by kind.
	Rotations int `json:"rotations"`
	Relins    int `json:"relins"`
	// ModUps is the Decompose+ModUp executions with hoisting: exactly
	// one per hoist group (singletons included). serve.Stats.ModUps
	// and serve.Stats.Groups deltas must both equal it.
	ModUps int `json:"mod_ups"`
	// ModUpsUnhoisted is the count without hoisting: one per switch.
	ModUpsUnhoisted int `json:"mod_ups_unhoisted"`
	// HoistGroups counts the groups with at least two members — the
	// fan-outs where coalescing must fire.
	HoistGroups int `json:"hoist_groups"`
	// Coalesced is the number of requests served out of shared hoisted
	// state: the summed size of all hoist groups (width ≥ 2). The
	// serve.Stats.Coalesced delta must equal it — more means the
	// service merged logically sequential steps, fewer means a
	// hoistable fan-out was split.
	Coalesced int `json:"coalesced"`
	// MaxWidth is the widest hoist group.
	MaxWidth int `json:"max_width"`
	// Depth is the longest dependency chain, in key switches — the
	// schedule's critical path when every switch takes unit time.
	Depth int `json:"depth"`
	// DistinctKeys is the number of distinct (kind, rotation, level)
	// evaluation keys the schedule touches — the key-cache working set.
	DistinctKeys int `json:"distinct_keys"`
	// PerLevel is the switch count per ciphertext level, descending
	// from the top level.
	PerLevel []LevelCount `json:"per_level"`
}

// CoalescingFactor is the predicted served-requests-per-ModUp ratio of
// the whole schedule under hoisting.
func (c Counts) CoalescingFactor() float64 {
	if c.ModUps == 0 {
		return 0
	}
	return float64(c.Switches) / float64(c.ModUps)
}

// HoistCoalescingFactor is the predicted coalescing factor *inside*
// hoist groups: coalesced requests per hoist-group ModUp. This is the
// number the perf gate requires to stay above 1 — across chain steps
// it must contribute nothing.
func (c Counts) HoistCoalescingFactor() float64 {
	if c.HoistGroups == 0 {
		return 0
	}
	return float64(c.Coalesced) / float64(c.HoistGroups)
}

// Counts computes the schedule's predictions. The schedule must be
// valid (see Validate).
func (s *Schedule) Counts() Counts {
	c := Counts{
		Switches:        len(s.Nodes),
		ModUpsUnhoisted: len(s.Nodes),
	}
	type key struct {
		kind  Kind
		rot   int
		level int
	}
	keys := map[key]struct{}{}
	perLevel := map[int]int{}
	depth := make([]int, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Kind == Relin {
			c.Relins++
		} else {
			c.Rotations++
		}
		keys[key{n.Kind, n.Rot, n.Level}] = struct{}{}
		perLevel[n.Level]++
		depth[i] = 1
		for _, d := range n.Deps {
			if depth[d]+1 > depth[i] {
				depth[i] = depth[d] + 1
			}
		}
		if depth[i] > c.Depth {
			c.Depth = depth[i]
		}
	}
	perLevelMod := map[int]int{}
	perLevelCoal := map[int]int{}
	for _, g := range s.Groups() {
		c.ModUps++
		gl := s.Nodes[g[0]].Level // group members share one level
		perLevelMod[gl]++
		if len(g) > c.MaxWidth {
			c.MaxWidth = len(g)
		}
		if len(g) >= 2 {
			c.HoistGroups++
			c.Coalesced += len(g)
			perLevelCoal[gl] += len(g)
		}
	}
	c.DistinctKeys = len(keys)
	levels := make([]int, 0, len(perLevel))
	for l := range perLevel {
		levels = append(levels, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(levels)))
	for _, l := range levels {
		c.PerLevel = append(c.PerLevel, LevelCount{
			Level: l, Switches: perLevel[l], ModUps: perLevelMod[l], Coalesced: perLevelCoal[l],
		})
	}
	return c
}

// HoistGroupSizes returns the widths of the hoist groups with at
// least two members, in schedule order — the shape
// analysis.Workload.HoistGroups consumes to price shared-ModUp
// savings in the paper's cost model.
func (s *Schedule) HoistGroupSizes() []int {
	var sizes []int
	for _, g := range s.Groups() {
		if len(g) >= 2 {
			sizes = append(sizes, len(g))
		}
	}
	return sizes
}

// builder assembles schedules for the generators; it keeps group IDs
// dense and node IDs positional by construction.
type builder struct {
	name  string
	nodes []Node
}

// group appends one hoist group of len(rots) rotation nodes sharing
// deps at level, returning the new node IDs.
func (b *builder) group(stage string, level int, deps []int, rots []int) []int {
	g := b.nextGroup()
	ids := make([]int, len(rots))
	for i, rot := range rots {
		ids[i] = len(b.nodes)
		b.nodes = append(b.nodes, Node{
			ID: ids[i], Kind: Rotate, Rot: rot, Level: level,
			Deps: deps, Group: g, Stage: stage,
		})
	}
	return ids
}

// node appends one singleton-group node.
func (b *builder) node(stage string, kind Kind, rot, level int, deps []int) int {
	id := len(b.nodes)
	b.nodes = append(b.nodes, Node{
		ID: id, Kind: kind, Rot: rot, Level: level,
		Deps: deps, Group: b.nextGroup(), Stage: stage,
	})
	return id
}

func (b *builder) nextGroup() int {
	if len(b.nodes) == 0 {
		return 0
	}
	return b.nodes[len(b.nodes)-1].Group + 1
}

// schedule validates and returns the assembled schedule.
func (b *builder) schedule() (*Schedule, error) {
	s := &Schedule{Name: b.name, Nodes: b.nodes}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
