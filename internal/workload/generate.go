package workload

// Schedule generators. Three shapes, in increasing dependency
// pressure:
//
//   - Fanout: the serving layer's original load — independent bursts
//     of rotations on distinct inputs. No dependencies at all; every
//     burst is a hoist group. The degenerate case.
//   - Matvec: one baby-step/giant-step diagonal matrix-vector
//     product. The baby rotations are a classic hoistable fan-out
//     (one shared input), but each giant rotation consumes its own
//     inner sum, so the giants are dependent singletons: coalescing
//     helps the first half of the operation and is structurally
//     impossible in the second.
//   - Bootstrap: CKKS bootstrapping's CoeffToSlot/SlotToCoeff
//     pipeline — a chain of homomorphic DFT stages, each one a BSGS
//     matvec, each consuming a ciphertext level, with one
//     EvalMod-style relinearization between the halves. This is the
//     paper's heaviest key-switch mix: long dependent chains
//     interleaved with wide hoisted fan-outs.
//
// Bootstrapping shape. A radix-2^k DFT stage over 2^logSlots slots
// needs the rotations {±j·stride : 0 < j < 2^k} at stride 2^(sum of
// earlier chunks); evaluated with baby-step/giant-step (n1 = 2^⌈k/2⌉
// babies, n2 = 2^⌊k/2⌋ giants) that is n1−1 hoistable baby rotations
// plus n2−1 dependent giant rotations per stage. CoeffToSlot runs the
// stages at ascending strides, SlotToCoeff mirrors them back down
// with negated rotation amounts (the inverse transform), and every
// stage's rescale consumes one ciphertext level — so a schedule needs
// 2·stages + 1 levels. BootstrapBTS derives the canonical schedule of
// a paper BTS parameter set at its own geometry (2^16 slots, KL
// levels); Bootstrap scales the same construction onto any smaller
// replay ring.

import (
	"fmt"

	"ciflow/internal/params"
)

// Fanout builds the degenerate dependency-free schedule: steps
// independent bursts, each a hoist group of width rotations (amounts
// 1..width) on its own input at one level. Predicted ModUps = steps,
// coalesced = steps×width: the shape `ciflow serve`'s original load
// generator has always exercised.
func Fanout(steps, width, level int) (*Schedule, error) {
	if steps < 1 || width < 1 {
		return nil, fmt.Errorf("workload: fanout needs steps and width >= 1, got %d, %d", steps, width)
	}
	b := &builder{name: fmt.Sprintf("fanout-%dx%d", steps, width)}
	rots := make([]int, width)
	for i := range rots {
		rots[i] = i + 1
	}
	for s := 0; s < steps; s++ {
		b.group(fmt.Sprintf("burst%d", s), level, nil, rots)
	}
	return b.schedule()
}

// Matvec builds one baby-step/giant-step diagonal matvec at a level:
// a hoist group of n1−1 baby rotations (amounts 1..n1−1) on the input
// vector, then n2−1 giant rotations (amounts j·n1), each a singleton
// depending on all babies — its input is that giant's inner sum, so
// no two giants may share hoisted state. The classic diagonal-method
// linear transform covering an n1·n2-dimensional matrix.
func Matvec(n1, n2, level int) (*Schedule, error) {
	if n1 < 2 || n2 < 1 {
		return nil, fmt.Errorf("workload: matvec needs n1 >= 2 and n2 >= 1, got %d, %d", n1, n2)
	}
	b := &builder{name: fmt.Sprintf("matvec-%dx%d", n1, n2)}
	babies := make([]int, n1-1)
	for i := range babies {
		babies[i] = i + 1
	}
	babyIDs := b.group("baby", level, nil, babies)
	for j := 1; j < n2; j++ {
		b.node("giant", Rotate, j*n1, level, babyIDs)
	}
	return b.schedule()
}

// BootstrapParams configures a bootstrapping-shaped schedule.
type BootstrapParams struct {
	// LogSlots is log2 of the slot count the DFT stages must cover —
	// for a replay ring of degree 2^logN, logN−1.
	LogSlots int
	// Radix is the per-stage DFT radix (a power of two); 0 picks the
	// smallest radix ≥ 16 whose stage count fits the level budget.
	Radix int
	// Top is the level the first CoeffToSlot stage runs at; stages
	// descend one level each, with the relinearization between the
	// halves, so the schedule needs levels Top … Top−2·stages.
	Top int
	// Bottom is the lowest level the schedule may reach (usually 0).
	Bottom int
}

// autoRadix picks the smallest radix (≥ 16, to keep stages wide
// enough to hoist) whose CtS/StC stage count fits the level budget.
func autoRadix(logSlots, budget int) (int, error) {
	for chunk := 4; chunk <= logSlots; chunk++ {
		stages := (logSlots + chunk - 1) / chunk
		if 2*stages+1 <= budget {
			return 1 << chunk, nil
		}
	}
	if budget >= 3 { // a single stage per half always fits 3 levels
		return 1 << logSlots, nil
	}
	return 0, fmt.Errorf("workload: bootstrap needs at least 3 levels, have %d", budget)
}

// splitChunks distributes logSlots over stages near-evenly, widest
// stage first (the real pipelines put the large radix at the top of
// the modulus chain where levels are cheapest).
func splitChunks(logSlots, stages int) []int {
	chunks := make([]int, stages)
	for i := range chunks {
		chunks[i] = logSlots / stages
		if i < logSlots%stages {
			chunks[i]++
		}
	}
	return chunks
}

// bsgsSplit splits a 2^k-diagonal stage into n1 babies and n2 giants
// with n1·n2 = 2^k and n1 ≥ n2.
func bsgsSplit(k int) (n1, n2 int) {
	return 1 << ((k + 1) / 2), 1 << (k / 2)
}

// Bootstrap generates the CoeffToSlot → relinearize → SlotToCoeff
// schedule for the given geometry. Each DFT stage is a BSGS matvec
// (see the file comment); CtS stages ascend in stride, StC stages
// mirror them with negated amounts, and every stage consumes one
// level. The relinearization between the halves stands in for the
// EvalMod polynomial evaluation's dominant key switch.
func Bootstrap(p BootstrapParams) (*Schedule, error) {
	if p.LogSlots < 1 {
		return nil, fmt.Errorf("workload: bootstrap needs logSlots >= 1, got %d", p.LogSlots)
	}
	if p.Bottom < 0 || p.Top < p.Bottom {
		return nil, fmt.Errorf("workload: bootstrap levels top %d / bottom %d invalid", p.Top, p.Bottom)
	}
	budget := p.Top - p.Bottom + 1
	radix := p.Radix
	if radix == 0 {
		var err error
		if radix, err = autoRadix(p.LogSlots, budget); err != nil {
			return nil, err
		}
	}
	chunk := 0
	for 1<<chunk < radix {
		chunk++
	}
	if 1<<chunk != radix || chunk < 1 {
		return nil, fmt.Errorf("workload: bootstrap radix %d must be a power of two >= 2", radix)
	}
	if chunk > p.LogSlots {
		// A radix wider than the slot count degenerates to one
		// full-width stage; radix below records what is actually
		// built, not what was asked for.
		chunk = p.LogSlots
	}
	radix = 1 << chunk
	stages := (p.LogSlots + chunk - 1) / chunk
	if 2*stages+1 > budget {
		return nil, fmt.Errorf("workload: bootstrap at radix %d needs %d levels (2x%d stages + relin), have %d",
			radix, 2*stages+1, stages, budget)
	}
	chunks := splitChunks(p.LogSlots, stages)

	b := &builder{name: fmt.Sprintf("bootstrap-2^%d-r%d", p.LogSlots, radix)}
	level := p.Top

	// stage emits one BSGS DFT stage: a hoisted baby fan-out feeding
	// dependent giant singletons. It returns the stage's output nodes
	// — what the next stage's input is derived from.
	stage := func(label string, k, stride, sign int, deps []int) []int {
		n1, n2 := bsgsSplit(k)
		rots := make([]int, 0, n1-1)
		for j := 1; j < n1; j++ {
			rots = append(rots, sign*j*stride)
		}
		out := b.group(label+" baby", level, deps, rots)
		if n2 > 1 {
			giants := make([]int, 0, n2-1)
			for j := 1; j < n2; j++ {
				giants = append(giants, b.node(label+" giant", Rotate, sign*j*n1*stride, level, out))
			}
			out = giants
		}
		level--
		return out
	}

	// CoeffToSlot: strides ascend with the cumulative radix split.
	var deps []int
	stride := 1
	for s, k := range chunks {
		deps = stage(fmt.Sprintf("CtS%d", s), k, stride, +1, deps)
		stride <<= k
	}

	// EvalMod stand-in: one relinearization on the combined CtS output.
	deps = []int{b.node("EvalMod relin", Relin, 0, level, deps)}
	level--

	// SlotToCoeff: the inverse transform — mirrored stage order,
	// descending strides, negated rotation amounts.
	for s := stages - 1; s >= 0; s-- {
		stride >>= chunks[s]
		deps = stage(fmt.Sprintf("StC%d", s), chunks[s], stride, -1, deps)
	}
	sched, err := b.schedule()
	if err != nil {
		return nil, err
	}
	sched.Radix = radix
	return sched, nil
}

// BTSBenchmark resolves a -bts flag value (1..3) to the paper's BTS
// parameter set.
func BTSBenchmark(n int) (params.Benchmark, error) {
	switch n {
	case 1:
		return params.BTS1, nil
	case 2:
		return params.BTS2, nil
	case 3:
		return params.BTS3, nil
	default:
		return params.Benchmark{}, fmt.Errorf("workload: -bts %d out of range [1,3]", n)
	}
}

// BootstrapBTS generates the canonical bootstrapping schedule of one
// of the paper's BTS parameter sets at its own geometry: 2^(logN−1)
// slots and the full KL-level modulus chain. This is the schedule
// `ciflow schedule -workload bootstrap` prints and prices; the serve
// replay scales the same construction to its (much smaller) ring via
// Bootstrap.
func BootstrapBTS(b params.Benchmark, radix int) (*Schedule, error) {
	s, err := Bootstrap(BootstrapParams{
		LogSlots: b.LogN - 1,
		Radix:    radix,
		Top:      b.KL - 1,
		Bottom:   0,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", b.Name, err)
	}
	s.Name = fmt.Sprintf("bootstrap-%s", b.Name)
	return s, nil
}
