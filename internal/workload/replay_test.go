package workload

import (
	"context"
	"testing"

	"ciflow/internal/ckks"
	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/serve"
)

// testService stands up a one-tenant service over a tiny ring, tuned
// for exact-count replay of s.
func testService(t *testing.T, s *Schedule, towers, dnum int) (*serve.Service, *ckks.Context, serve.KeyChains, func()) {
	t.Helper()
	cctx, err := ckks.NewContext(32, towers, 40, 3, 41, dnum)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(cctx, 1)
	chains := serve.KeyChains{"t0": kc}
	e := engine.New(2)
	cfg := ReplayServiceConfig(s)
	cfg.Engine = e
	svc, err := serve.New(cctx.Switchers(), chains, cfg)
	if err != nil {
		e.Close()
		t.Fatal(err)
	}
	return svc, cctx, chains, func() {
		svc.Close()
		e.Close()
	}
}

func replayOnce(t *testing.T, s *Schedule, df dataflow.Dataflow) *ReplayResult {
	t.Helper()
	svc, cctx, chains, stop := testService(t, s, 4, 2)
	defer stop()
	res, err := Replay(context.Background(), svc, cctx.Switchers(), chains, cctx.R,
		s, ReplayConfig{Tenant: "t0", Dataflow: df, Seed: 7, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertExact(t *testing.T, res *ReplayResult) {
	t.Helper()
	if !res.CountsExact {
		t.Fatalf("measured counters drifted from the schedule: %v", res.Mismatches)
	}
	if !res.Checked || !res.BitExact {
		t.Fatalf("serial reference check failed: checked=%v bitExact=%v %v",
			res.Checked, res.BitExact, res.Mismatches)
	}
	if res.DepViolations != 0 {
		t.Fatalf("%d dependency-order violations", res.DepViolations)
	}
}

func TestReplayBootstrap(t *testing.T) {
	// Ring N=32 (16 slots), 4 towers: one DFT stage per half at
	// levels 3 and 1, relin at 2 — 3 babies + 3 giants per stage.
	s, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 16, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := replayOnce(t, s, dataflow.MP)
	assertExact(t, res)
	p := s.Counts()
	if res.Served != uint64(p.Switches) || res.ModUps != uint64(p.ModUps) {
		t.Fatalf("measured served=%d modUps=%d, predicted %+v", res.Served, res.ModUps, p)
	}
	// The baby fan-outs must actually coalesce: factor inside hoist
	// groups above 1, and with exact counts there were zero coalesces
	// outside them.
	if res.HoistCoalescingFactor <= 1 {
		t.Fatalf("hoist coalescing factor %.2f", res.HoistCoalescingFactor)
	}
}

func TestReplayMatvec(t *testing.T) {
	s, err := Matvec(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := replayOnce(t, s, dataflow.OC)
	assertExact(t, res)
	if res.Coalesced != 3 || res.ModUps != 3 {
		t.Fatalf("matvec measured coalesced=%d modUps=%d", res.Coalesced, res.ModUps)
	}
}

func TestReplayFanout(t *testing.T) {
	s, err := Fanout(3, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := replayOnce(t, s, dataflow.DC)
	assertExact(t, res)
	if res.Coalesced != 12 {
		t.Fatalf("fanout coalesced %d, want 12", res.Coalesced)
	}
}

// A multi-level chain: levels descend along the dependency edges, so
// derived inputs are restricted to sub-bases and each level routes to
// its own switcher.
func TestReplayLevelDescent(t *testing.T) {
	b := &builder{name: "descent"}
	top := b.group("top", 3, nil, []int{1, 2})
	mid := b.node("mid", Rotate, 3, 2, top)
	b.group("bottom", 1, []int{mid}, []int{1, 2, 4})
	s, err := b.schedule()
	if err != nil {
		t.Fatal(err)
	}
	res := replayOnce(t, s, dataflow.MP)
	assertExact(t, res)
	if res.ModUps != 3 {
		t.Fatalf("level-descent ModUps %d, want 3", res.ModUps)
	}
}

// Replays on one schedule are deterministic: same seed, same keys,
// bit-exact across dataflows (the dataflow shapes scheduling, never
// values).
func TestReplayDataflowsAgree(t *testing.T) {
	s, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 16, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, df := range []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC} {
		assertExact(t, replayOnce(t, s, df))
	}
}

func TestReplayRejectsInvalidSchedule(t *testing.T) {
	s, err := Fanout(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Nodes[1].Group = 9
	svc, cctx, chains, stop := testService(t, s, 4, 2)
	defer stop()
	if _, err := Replay(context.Background(), svc, cctx.Switchers(), chains, cctx.R,
		s, ReplayConfig{Tenant: "t0"}); err == nil {
		t.Fatal("invalid schedule replayed")
	}
}

func TestReplayCancelled(t *testing.T) {
	s, err := Fanout(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, cctx, chains, stop := testService(t, s, 4, 2)
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Replay(ctx, svc, cctx.Switchers(), chains, cctx.R,
		s, ReplayConfig{Tenant: "t0"}); err == nil {
		t.Fatal("cancelled replay succeeded")
	}
}
