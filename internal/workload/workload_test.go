package workload

import (
	"reflect"
	"strings"
	"testing"

	"ciflow/internal/params"
)

func TestFanoutCounts(t *testing.T) {
	s, err := Fanout(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c.Switches != 12 || c.Rotations != 12 || c.Relins != 0 {
		t.Fatalf("fanout counts %+v", c)
	}
	if c.ModUps != 3 || c.ModUpsUnhoisted != 12 || c.HoistGroups != 3 || c.Coalesced != 12 {
		t.Fatalf("fanout ModUp counts %+v", c)
	}
	if c.Depth != 1 {
		t.Fatalf("fanout depth %d, want 1 (no dependencies)", c.Depth)
	}
	if c.MaxWidth != 4 {
		t.Fatalf("fanout max width %d", c.MaxWidth)
	}
	// Bursts share rotation amounts 1..4 at one level.
	if c.DistinctKeys != 4 {
		t.Fatalf("fanout distinct keys %d", c.DistinctKeys)
	}
	if got := c.CoalescingFactor(); got != 4 {
		t.Fatalf("fanout coalescing factor %f", got)
	}
}

func TestMatvecCounts(t *testing.T) {
	s, err := Matvec(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	// 3 babies (one group) + 3 giant singletons.
	if c.Switches != 6 || c.ModUps != 4 || c.HoistGroups != 1 || c.Coalesced != 3 {
		t.Fatalf("matvec counts %+v", c)
	}
	// Giants depend on all babies: depth 2.
	if c.Depth != 2 {
		t.Fatalf("matvec depth %d", c.Depth)
	}
	// Keys: rotations 1,2,3 and 4,8,12.
	if c.DistinctKeys != 6 {
		t.Fatalf("matvec distinct keys %d", c.DistinctKeys)
	}
	if got := c.HoistCoalescingFactor(); got != 3 {
		t.Fatalf("matvec hoist coalescing %f", got)
	}
}

func TestBootstrapShape(t *testing.T) {
	// logSlots 4, radix 4 -> 2 stages per half, levels 5..1.
	s, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 4, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	// Each stage: chunk 2 -> r=4, n1=2, n2=2: 1 baby + 1 giant.
	// 4 stages x 2 + 1 relin = 9 switches.
	if c.Switches != 9 || c.Relins != 1 || c.Rotations != 8 {
		t.Fatalf("bootstrap counts %+v", c)
	}
	// Levels 5,4 (CtS), 3 (relin), 2,1 (StC): 2 switches per DFT
	// stage, one for the relin.
	want := map[int]int{5: 2, 4: 2, 3: 1, 2: 2, 1: 2}
	for _, lc := range c.PerLevel {
		if want[lc.Level] != lc.Switches {
			t.Fatalf("level %d has %d switches, want %d", lc.Level, lc.Switches, want[lc.Level])
		}
		delete(want, lc.Level)
	}
	if len(want) != 0 {
		t.Fatalf("levels missing from PerLevel: %v", want)
	}
	// The chain is strictly sequential here (width-1 groups feeding
	// width-1 giants): depth = switches.
	if c.Depth != 9 {
		t.Fatalf("bootstrap depth %d", c.Depth)
	}
	// StC rotation amounts mirror CtS negated.
	var pos, neg int
	for _, n := range s.Nodes {
		if n.Kind != Rotate {
			continue
		}
		if n.Rot > 0 {
			pos++
		} else if n.Rot < 0 {
			neg++
		} else {
			t.Fatalf("rotation node %d with amount 0", n.ID)
		}
	}
	if pos != 4 || neg != 4 {
		t.Fatalf("rotation signs: %d positive, %d negative", pos, neg)
	}
}

func TestBootstrapWideStagesHoist(t *testing.T) {
	// logSlots 8, radix 16 -> 2 stages per half, each chunk 4:
	// n1=4, n2=4 -> 3 babies (hoist group) + 3 giants per stage.
	s, err := Bootstrap(BootstrapParams{LogSlots: 8, Radix: 16, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if c.Switches != 4*6+1 {
		t.Fatalf("switches %d", c.Switches)
	}
	if c.HoistGroups != 4 || c.Coalesced != 12 || c.MaxWidth != 3 {
		t.Fatalf("hoist shape %+v", c)
	}
	// Per stage: 1 baby ModUp + 3 giant ModUps; plus the relin.
	if c.ModUps != 4*4+1 {
		t.Fatalf("ModUps %d", c.ModUps)
	}
	// Rotation indices stay inside the slot range.
	for _, n := range s.Nodes {
		if n.Rot >= 1<<8 || n.Rot <= -(1<<8) {
			t.Fatalf("rotation %d out of slot range", n.Rot)
		}
	}
}

func TestBootstrapAutoRadix(t *testing.T) {
	// 6 levels available: auto must pick a radix whose stage count
	// fits 2*stages+1 <= 6, i.e. 2 stages per half.
	s, err := Bootstrap(BootstrapParams{LogSlots: 13, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	if len(c.PerLevel) != 5 {
		t.Fatalf("auto radix used %d levels, want 5", len(c.PerLevel))
	}
	if c.HoistGroups == 0 {
		t.Fatal("auto radix produced no hoistable fan-out")
	}
	// Tight budget: 3 levels force one stage per half.
	s, err = Bootstrap(BootstrapParams{LogSlots: 6, Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Counts().PerLevel); got != 3 {
		t.Fatalf("single-stage bootstrap used %d levels", got)
	}
}

// The schedule records the radix actually built: auto-fit resolves 0
// and an over-wide request clamps to one full-width stage.
func TestBootstrapEffectiveRadix(t *testing.T) {
	s, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 4, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Radix != 4 {
		t.Fatalf("radix %d, want 4", s.Radix)
	}
	s, err = Bootstrap(BootstrapParams{LogSlots: 4, Radix: 64, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Radix != 16 || !strings.Contains(s.Name, "r16") {
		t.Fatalf("over-wide radix not clamped: radix %d name %q", s.Radix, s.Name)
	}
	s, err = Bootstrap(BootstrapParams{LogSlots: 8, Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Radix != 16 {
		t.Fatalf("auto radix recorded %d, want 16", s.Radix)
	}
	if m, err := Matvec(4, 2, 1); err != nil || m.Radix != 0 {
		t.Fatalf("non-bootstrap schedule carries radix %d", m.Radix)
	}
}

func TestBootstrapBTS(t *testing.T) {
	for n := 1; n <= 3; n++ {
		b, err := BTSBenchmark(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BootstrapBTS(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := s.Counts()
		if c.Relins != 1 || c.HoistGroups == 0 || c.Depth < 9 {
			t.Fatalf("%s canonical schedule implausible: %+v", b.Name, c)
		}
		// The canonical geometry covers all 2^16 slots within the KL
		// levels of the set.
		if top := c.PerLevel[0].Level; top != b.KL-1 {
			t.Fatalf("%s starts at level %d, want %d", b.Name, top, b.KL-1)
		}
		if !strings.Contains(s.Name, b.Name) {
			t.Fatalf("schedule name %q", s.Name)
		}
	}
	if _, err := BTSBenchmark(4); err == nil {
		t.Fatal("BTSBenchmark(4) accepted")
	}
}

func TestGeneratorErrors(t *testing.T) {
	cases := map[string]func() error{
		"fanout-steps":    func() error { _, err := Fanout(0, 4, 1); return err },
		"fanout-width":    func() error { _, err := Fanout(1, 0, 1); return err },
		"matvec-n1":       func() error { _, err := Matvec(1, 2, 1); return err },
		"matvec-n2":       func() error { _, err := Matvec(2, 0, 1); return err },
		"bootstrap-slots": func() error { _, err := Bootstrap(BootstrapParams{LogSlots: 0, Top: 5}); return err },
		"bootstrap-levels": func() error {
			_, err := Bootstrap(BootstrapParams{LogSlots: 4, Top: 1})
			return err
		},
		"bootstrap-radix-odd": func() error {
			_, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 3, Top: 9})
			return err
		},
		"bootstrap-radix-budget": func() error {
			// Radix 2 needs 4 stages per half: 9 levels > 6.
			_, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 2, Top: 5})
			return err
		},
	}
	for name, f := range cases {
		if f() == nil {
			t.Errorf("%s: invalid parameters accepted", name)
		}
	}
}

// TestValidateRejects corrupts a valid schedule one invariant at a
// time and asserts both the rejection and its message — the same
// precise errors an importer of hand-written JSON sees, so they must
// name the offending node and the broken rule, not just fail.
func TestValidateRejects(t *testing.T) {
	ok, err := Matvec(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	mutate := map[string]struct {
		f    func(s *Schedule)
		want string
	}{
		"dup-id":       {func(s *Schedule) { s.Nodes[1].ID = 0 }, "node at index 1 has ID 0"},
		"gapped-id":    {func(s *Schedule) { s.Nodes[1].ID = 7 }, "node at index 1 has ID 7"},
		"fwd-dep":      {func(s *Schedule) { s.Nodes[0].Deps = []int{2} }, "must be an earlier node"},
		"self-dep":     {func(s *Schedule) { s.Nodes[1].Deps = []int{1} }, "must be an earlier node"},
		"dangling-dep": {func(s *Schedule) { s.Nodes[1].Deps = []int{42} }, "depends on 42 (must be an earlier node)"},
		"neg-level":    {func(s *Schedule) { s.Nodes[2].Level = -1 }, "negative level"},
		"level-up":     {func(s *Schedule) { s.Nodes[3].Level = 9 }, "at lower level"},
		"group-split":  {func(s *Schedule) { s.Nodes[1].Group = 1 }, "dense and consecutive"},
		"group-skip":   {func(s *Schedule) { s.Nodes[3].Group = 5 }, "dense and consecutive"},
		"group-mix":    {func(s *Schedule) { s.Nodes[1].Level = 2 }, "level/kind/deps differ"},
		"relin-rot":    {func(s *Schedule) { s.Nodes[3].Kind = Relin }, "carries rotation"},
		"bad-kind":     {func(s *Schedule) { s.Nodes[0].Kind = Kind(9) }, "unknown kind"},
	}
	for name, m := range mutate {
		s := &Schedule{Name: ok.Name, Nodes: append([]Node(nil), ok.Nodes...)}
		for i := range s.Nodes {
			s.Nodes[i].Deps = append([]int(nil), s.Nodes[i].Deps...)
		}
		m.f(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: corrupted schedule validated", name)
		} else if !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, m.want)
		}
	}
	if err := (&Schedule{Name: "empty"}).Validate(); err == nil || !strings.Contains(err.Error(), "has no nodes") {
		t.Errorf("empty schedule: %v", err)
	}
	// A negative group on the first node must error, not panic (the
	// group-continuation case would otherwise index Nodes[-1]).
	neg := &Schedule{Name: "neg", Nodes: []Node{{ID: 0, Group: -1}}}
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "dense and consecutive") {
		t.Errorf("negative first group: %v", err)
	}
}

func TestHoistGroupSizes(t *testing.T) {
	s, err := Matvec(8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sizes := s.HoistGroupSizes()
	if len(sizes) != 1 || sizes[0] != 7 {
		t.Fatalf("hoist group sizes %v", sizes)
	}
}

func TestKindString(t *testing.T) {
	if Rotate.String() != "rotate" || Relin.String() != "relin" {
		t.Fatal("kind names")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Fatal("unknown kind rendering")
	}
}

// The canonical BTS schedules must fit their own parameter sets —
// guard the derivation against params drift.
func TestBootstrapBTSLevels(t *testing.T) {
	for _, b := range []params.Benchmark{params.BTS1, params.BTS2, params.BTS3} {
		s, err := BootstrapBTS(b, 16)
		if err != nil {
			t.Fatalf("%s at radix 16: %v", b.Name, err)
		}
		for _, n := range s.Nodes {
			if n.Level < 0 || n.Level >= b.KL {
				t.Fatalf("%s node %d at level %d outside [0,%d)", b.Name, n.ID, n.Level, b.KL)
			}
		}
	}
}

// TestBootstrapPerLevelModUps pins the per-level ModUp prediction the
// cluster layer cross-validates server-side: with radix 16 the CtS
// and StC halves each run one 4x4 BSGS stage (3 babies sharing one
// hoisted ModUp, 3 giants each their own), and the relin sits alone
// on the middle level.
func TestBootstrapPerLevelModUps(t *testing.T) {
	s, err := Bootstrap(BootstrapParams{LogSlots: 4, Radix: 16, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Counts()
	want := []LevelCount{
		{Level: 3, Switches: 6, ModUps: 4, Coalesced: 3},
		{Level: 2, Switches: 1, ModUps: 1},
		{Level: 1, Switches: 6, ModUps: 4, Coalesced: 3},
	}
	if !reflect.DeepEqual(c.PerLevel, want) {
		t.Fatalf("per-level prediction %+v, want %+v", c.PerLevel, want)
	}
	var sw, mu int
	for _, lc := range c.PerLevel {
		sw += lc.Switches
		mu += lc.ModUps
	}
	if sw != c.Switches || mu != c.ModUps {
		t.Fatalf("per-level sums %d/%d vs totals %d/%d", sw, mu, c.Switches, c.ModUps)
	}
}
