package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ciflow/internal/params"
)

// roundTripSchedules builds one schedule of every generator shape —
// the full surface the serializer must carry losslessly.
func roundTripSchedules(t *testing.T) []*Schedule {
	t.Helper()
	var out []*Schedule
	add := func(s *Schedule, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	add(Fanout(3, 4, 2))
	add(Matvec(6, 3, 4))
	add(BootstrapBTS(params.BTS1, 16))
	add(PIR(2, 5, 3))
	add(PrivateInference(2, 3, 2, 4))
	add(EvalMod(4, 5))
	return out
}

// TestExportImportRoundTrip pins the serializer's core contract:
// Export is canonical (exporting an import yields identical bytes)
// and Import is lossless (the imported schedule predicts the same
// counts, per level included).
func TestExportImportRoundTrip(t *testing.T) {
	for _, s := range roundTripSchedules(t) {
		data, err := s.Export()
		if err != nil {
			t.Fatalf("%s: export: %v", s.Name, err)
		}
		if !bytes.HasSuffix(data, []byte("\n")) {
			t.Errorf("%s: export not newline-terminated", s.Name)
		}
		imp, err := Import(data)
		if err != nil {
			t.Fatalf("%s: import: %v", s.Name, err)
		}
		if imp.Name != s.Name || imp.Radix != s.Radix || len(imp.Nodes) != len(s.Nodes) {
			t.Fatalf("%s: import changed shape: %q radix %d, %d nodes",
				s.Name, imp.Name, imp.Radix, len(imp.Nodes))
		}
		if !reflect.DeepEqual(imp.Counts(), s.Counts()) {
			t.Fatalf("%s: imported counts %+v, want %+v", s.Name, imp.Counts(), s.Counts())
		}
		again, err := imp.Export()
		if err != nil {
			t.Fatalf("%s: re-export: %v", s.Name, err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("%s: export not byte-stable across a round trip", s.Name)
		}
	}
}

// validScheduleJSON is a minimal hand-written valid schedule file.
const validScheduleJSON = `{
  "version": 1,
  "name": "hand",
  "nodes": [
    {"id": 0, "kind": "rotate", "rot": 1, "level": 2, "group": 0},
    {"id": 1, "kind": "relin", "rot": 0, "level": 1, "deps": [0], "group": 1}
  ]
}`

func TestImportAcceptsHandWritten(t *testing.T) {
	s, err := Import([]byte(validScheduleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("accepted schedule fails Validate: %v", err)
	}
	c := s.Counts()
	if c.Switches != 2 || c.Rotations != 1 || c.Relins != 1 || c.ModUps != 2 {
		t.Fatalf("counts %+v", c)
	}
}

// TestImportRejects walks the rejection surface: version errors first
// (missing, unsupported, wrong type), then strict-field and kind
// errors, then the Validate() structural errors — each with the
// message an author of a hand-written schedule needs.
func TestImportRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"not-json", "schedule", "schedule"},
		{"missing-version", `{"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"group":0}]}`,
			"missing the schema version"},
		{"future-version", `{"version":2,"name":"x","nodes":[]}`, "version 2 not supported"},
		{"string-version", `{"version":"one","name":"x","nodes":[]}`, "schedule"},
		{"unknown-field", `{"version":1,"name":"x","surprise":true,"nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"group":0}]}`,
			"unknown field"},
		{"unknown-kind", `{"version":1,"name":"x","nodes":[{"id":0,"kind":"conjugate","rot":1,"level":0,"group":0}]}`,
			`unknown node kind "conjugate"`},
		{"numeric-kind", `{"version":1,"name":"x","nodes":[{"id":0,"kind":0,"rot":1,"level":0,"group":0}]}`,
			"node kind must be a string"},
		{"no-nodes", `{"version":1,"name":"x","nodes":[]}`, "has no nodes"},
		{"forward-dep", `{"version":1,"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"deps":[1],"group":0},{"id":1,"kind":"rotate","rot":2,"level":0,"group":1}]}`,
			"must be an earlier node"},
		{"level-up", `{"version":1,"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":1,"group":0},{"id":1,"kind":"rotate","rot":2,"level":2,"deps":[0],"group":1}]}`,
			"at lower level"},
		{"dup-id", `{"version":1,"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"group":0},{"id":0,"kind":"rotate","rot":2,"level":0,"group":1}]}`,
			"has ID 0"},
		{"split-group", `{"version":1,"name":"x","nodes":[{"id":0,"kind":"rotate","rot":1,"level":0,"group":0},{"id":1,"kind":"rotate","rot":2,"level":0,"group":1},{"id":2,"kind":"rotate","rot":3,"level":0,"group":0}]}`,
			"dense and consecutive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Import([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestKindJSON(t *testing.T) {
	if data, err := Rotate.MarshalJSON(); err != nil || string(data) != `"rotate"` {
		t.Fatalf("rotate marshals to %s, %v", data, err)
	}
	if data, err := Relin.MarshalJSON(); err != nil || string(data) != `"relin"` {
		t.Fatalf("relin marshals to %s, %v", data, err)
	}
	if _, err := Kind(9).MarshalJSON(); err == nil {
		t.Fatal("unknown kind marshaled")
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"relin"`)); err != nil || k != Relin {
		t.Fatalf("relin unmarshals to %v, %v", k, err)
	}
}

// TestExportRejectsInvalid: a hand-assembled broken DAG cannot reach a
// file — Export re-validates.
func TestExportRejectsInvalid(t *testing.T) {
	s := &Schedule{Name: "broken", Nodes: []Node{{ID: 5}}}
	if _, err := s.Export(); err == nil {
		t.Fatal("broken schedule exported")
	}
}

func TestImportExportFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.schedule.json")
	s, err := Matvec(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExportFile(path); err != nil {
		t.Fatal(err)
	}
	imp, err := ImportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(imp.Counts(), s.Counts()) {
		t.Fatalf("file round trip changed counts")
	}

	if _, err := ImportFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file imported")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ImportFile(bad)
	if err == nil {
		t.Fatal("bad file imported")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error %q does not name the file", err)
	}
}
