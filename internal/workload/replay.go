package workload

// The dependency-aware replay client: drive internal/serve with a
// schedule, respecting the DAG. A hoist group is submitted only after
// every predecessor's result has landed — and then all of its members
// together, in one tight loop, so the service's coalescer sees the
// whole fan-out in one micro-batch. A node's input polynomial is
// *derived from its predecessors' outputs* (the sum of their c1
// results, restricted to the node's level basis), so the replay
// cannot cheat the dependencies: submitting a node early would use an
// input that does not exist yet, and the serial reference check would
// catch any service that reordered the work.
//
// Because derived inputs are fresh polynomials with fresh values,
// logically sequential chain steps can never alias a coalescing
// group: the measured serve counters must match the schedule's
// Counts() exactly — one ModUp per group, zero coalesces outside
// hoist groups — which Replay asserts and reports.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

// ReplayConfig tunes one schedule replay.
type ReplayConfig struct {
	// Tenant is the keyspace every request is addressed to.
	Tenant string
	// Dataflow schedules the hoist graphs (zero value: MP).
	Dataflow dataflow.Dataflow
	// Seed feeds the sampler for root-group inputs; the serial
	// reference check re-derives the identical inputs from it.
	Seed int64
	// Check re-executes the schedule serially (direct hks.KeySwitch
	// per node, same derived inputs, same keys) and compares every
	// output bit for bit.
	Check bool
}

// ReplayResult reports one replay: the schedule's predictions, the
// measured serve.Stats deltas, and the exactness verdicts.
type ReplayResult struct {
	Predicted Counts        `json:"predicted"`
	Wall      time.Duration `json:"wall_ns"`

	// Measured deltas of the service counters across the replay.
	Served    uint64 `json:"served"`
	ModUps    uint64 `json:"mod_ups"`
	Groups    uint64 `json:"groups"`
	Coalesced uint64 `json:"coalesced"`
	Batches   uint64 `json:"batches"`

	// CountsExact is true when every measured counter equals its
	// prediction; Mismatches lists the offenders otherwise.
	CountsExact bool     `json:"counts_exact"`
	Mismatches  []string `json:"mismatches,omitempty"`

	// HoistCoalescingFactor is the coalescing factor inside hoist
	// groups (coalesced requests per hoist-group ModUp); with exact
	// counts it equals the predicted Counts.HoistCoalescingFactor.
	HoistCoalescingFactor float64 `json:"hoist_coalescing_factor"`

	// DepViolations counts results that landed before one of their
	// predecessors' results — always 0 for a dependency-respecting
	// replay (the client gates submission on predecessors, so a
	// violation would mean the bookkeeping itself is broken).
	DepViolations int `json:"dep_violations"`

	// Checked/BitExact report the serial reference comparison
	// (BitExact is vacuously true when Check was off).
	Checked  bool `json:"checked"`
	BitExact bool `json:"bit_exact"`
}

// ReplayServiceConfig returns a serve.Config tuned for exact-count
// replay of s: MaxBatch large enough that no submission wave is ever
// split across micro-batches (a split hoist group would execute two
// ModUps where the schedule predicts one), a gather window generous
// enough that a tight submission loop always lands in one batch, and
// DefaultLevel 0 so schedule levels are taken literally (serve routes
// a zero Request.Level to the default). Callers set Engine (and may
// raise KeyBudget for key-hungry bootstrap schedules).
//
// The window choice is a flake-vs-latency trade: the dispatcher's
// gather window opens at a wave's first request, so a group only
// splits if the submitting goroutine stalls longer than the window
// *between two sends of one tight loop* — but since the replay waits
// for each wave's results, every wave also pays the full window in
// latency. 20ms keeps a loaded CI runner's scheduling hiccups from
// failing the exact-count gate while costing well under a second per
// replay on realistic schedule depths.
func ReplayServiceConfig(s *Schedule) serve.Config {
	maxBatch := len(s.Nodes)
	if maxBatch < 64 {
		maxBatch = 64
	}
	return serve.Config{
		MaxBatch:     maxBatch,
		Window:       20 * time.Millisecond,
		DefaultLevel: 0,
	}
}

// replayer carries one replay's bookkeeping.
type replayer struct {
	s       *Schedule
	svc     *serve.Service
	cfg     ReplayConfig
	r       *ring.Ring
	sampler *ring.Sampler
	basis   map[int]ring.Basis // level -> B_level

	groups  [][]int
	results []serve.Result

	depViolations int
}

// Replay executes s against svc, which must be otherwise idle (the
// measured counters are deltas of svc.Stats() around the replay) and
// configured per ReplayServiceConfig. switchers resolves the levels'
// bases (and, with cfg.Check, runs the serial reference); keys is
// only used by the reference and must be the same source the service
// loads from (ckks key-chain memoization makes the comparison
// meaningful). r is the service's ring; cfg.Seed makes the run
// reproducible.
func Replay(ctx context.Context, svc *serve.Service, switchers serve.SwitcherSource, keys serve.KeySource, r *ring.Ring, s *Schedule, cfg ReplayConfig) (*ReplayResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rp := &replayer{
		s: s, svc: svc, cfg: cfg, r: r,
		sampler: ring.NewSampler(r, cfg.Seed),
		basis:   map[int]ring.Basis{},
		groups:  s.Groups(),
		results: make([]serve.Result, len(s.Nodes)),
	}
	for _, n := range s.Nodes {
		if _, ok := rp.basis[n.Level]; ok {
			continue
		}
		sw, err := switchers.Switcher(n.Level)
		if err != nil {
			return nil, fmt.Errorf("workload: no switcher at level %d: %w", n.Level, err)
		}
		rp.basis[n.Level] = sw.QBasis()
	}

	before := svc.Stats()
	start := time.Now()
	if err := rp.run(ctx); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	after := svc.Stats()

	res := &ReplayResult{
		Predicted:   s.Counts(),
		Wall:        wall,
		Served:      after.Served - before.Served,
		ModUps:      after.ModUps - before.ModUps,
		Groups:      after.Groups - before.Groups,
		Coalesced:   after.Coalesced - before.Coalesced,
		Batches:     after.Batches - before.Batches,
		CountsExact: true,
		BitExact:    true,
	}
	res.DepViolations = rp.depViolations
	exact := func(name string, measured uint64, predicted int) {
		if measured != uint64(predicted) {
			res.CountsExact = false
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: measured %d, schedule predicts %d", name, measured, predicted))
		}
	}
	exact("served switches", res.Served, res.Predicted.Switches)
	exact("mod_ups", res.ModUps, res.Predicted.ModUps)
	exact("groups", res.Groups, res.Predicted.ModUps)
	exact("coalesced", res.Coalesced, res.Predicted.Coalesced)
	if res.Predicted.HoistGroups > 0 {
		res.HoistCoalescingFactor = float64(res.Coalesced) / float64(res.Predicted.HoistGroups)
	}

	if cfg.Check {
		res.Checked = true
		if err := rp.checkSerial(switchers, keys); err != nil {
			res.BitExact = false
			res.Mismatches = append(res.Mismatches, err.Error())
		}
	}
	return res, nil
}

// deriveInput computes one group's shared input polynomial: root
// groups draw from sample, derived groups sum the predecessors' c1
// outputs (via the c1 accessor, restricted to this node's possibly
// lower level) and scale by a per-group constant. The scaling
// matters: sibling groups sharing one predecessor set (a BSGS stage's
// giants, whose inner sums differ only by plaintext diagonals the
// replay does not model) must carry *distinct values*, not merely
// distinct storage, so the zero-coalescing-outside-hoist-groups
// invariant holds against any bit-exact executor, not just one that
// groups by pointer identity. The live replay and the serial
// reference both go through this one function, so the two sides
// cannot drift.
func (rp *replayer) deriveInput(gi int, c1 func(id int) *ring.Poly, sample func(ring.Basis) *ring.Poly) *ring.Poly {
	n0 := rp.s.Nodes[rp.groups[gi][0]]
	qb := rp.basis[n0.Level]
	if len(n0.Deps) == 0 {
		p := sample(qb)
		p.IsNTT = true
		return p
	}
	acc := rp.r.NewPoly(qb)
	acc.IsNTT = true
	for _, d := range n0.Deps {
		rp.r.Add(acc, c1(d).SubPoly(qb), acc)
	}
	rp.r.MulScalar(acc, groupSalt(gi), acc)
	return acc
}

// groupInput is deriveInput over the live replay's served results.
func (rp *replayer) groupInput(gi int) *ring.Poly {
	return rp.deriveInput(gi,
		func(id int) *ring.Poly { return rp.results[id].C1 },
		rp.sampler.Uniform)
}

// groupSalt is the per-group input scaling constant; ≥ 2 so even the
// first derived group differs from the raw predecessor sum.
func groupSalt(gi int) uint64 { return uint64(gi) + 2 }

type nodeDone struct {
	id  int
	res serve.Result
}

func (rp *replayer) submitGroup(ctx context.Context, gi int, ch chan<- nodeDone) error {
	in := rp.groupInput(gi)
	for _, id := range rp.groups[gi] {
		n := rp.s.Nodes[id]
		rc, err := rp.svc.Submit(ctx, serve.Request{
			Input: in, Rot: n.Rot, Dataflow: rp.cfg.Dataflow,
			Tenant: rp.cfg.Tenant, Level: n.Level,
		})
		if err != nil {
			return fmt.Errorf("workload: submit node %d (%s): %w", id, n.Stage, err)
		}
		go func(id int, rc <-chan serve.Result) {
			ch <- nodeDone{id: id, res: <-rc}
		}(id, rc)
	}
	return nil
}

// run drives the event loop: root groups first, then each group the
// moment its last predecessor completes.
func (rp *replayer) run(ctx context.Context) error {
	remaining := make([]int, len(rp.groups))
	waiters := map[int][]int{} // node ID -> dependent group indices
	for gi, g := range rp.groups {
		deps := rp.s.Nodes[g[0]].Deps
		remaining[gi] = len(deps)
		for _, d := range deps {
			waiters[d] = append(waiters[d], gi)
		}
	}
	// Buffered for every node so in-flight completion forwarders can
	// never leak, even on an early error return.
	ch := make(chan nodeDone, len(rp.s.Nodes))
	for gi := range rp.groups {
		if remaining[gi] == 0 {
			if err := rp.submitGroup(ctx, gi, ch); err != nil {
				return err
			}
		}
	}
	completed := make([]bool, len(rp.s.Nodes))
	for n := len(rp.s.Nodes); n > 0; n-- {
		var d nodeDone
		select {
		case <-ctx.Done():
			return ctx.Err()
		case d = <-ch:
		}
		if d.res.Err != nil {
			return fmt.Errorf("workload: node %d (%s): %w", d.id, rp.s.Nodes[d.id].Stage, d.res.Err)
		}
		for _, dep := range rp.s.Nodes[d.id].Deps {
			if !completed[dep] {
				rp.depViolations++
			}
		}
		completed[d.id] = true
		rp.results[d.id] = d.res
		for _, gi := range waiters[d.id] {
			remaining[gi]--
			if remaining[gi] == 0 {
				if err := rp.submitGroup(ctx, gi, ch); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkSerial re-executes the schedule with direct per-node
// hks.KeySwitch calls — same seed, same input derivation, same keys —
// and compares every served output bit for bit. Passing proves both
// value correctness and dependency order: a service that served a
// node before its predecessors existed could not have produced the
// derived input's switch result.
func (rp *replayer) checkSerial(switchers serve.SwitcherSource, keys serve.KeySource) error {
	ref := ring.NewSampler(rp.r, rp.cfg.Seed)
	c1s := make([]*ring.Poly, len(rp.s.Nodes))
	var bad []string
	for gi, g := range rp.groups {
		n0 := rp.s.Nodes[g[0]]
		in := rp.deriveInput(gi,
			func(id int) *ring.Poly { return c1s[id] },
			ref.Uniform)
		sw, err := switchers.Switcher(n0.Level)
		if err != nil {
			return err
		}
		for _, id := range g {
			n := rp.s.Nodes[id]
			evk, err := keys.Key(serve.KeyID{Tenant: rp.cfg.Tenant, Rot: n.Rot, Level: n.Level})
			if err != nil {
				return fmt.Errorf("workload: reference key for node %d: %w", id, err)
			}
			c0, c1 := sw.KeySwitch(in, evk)
			c1s[id] = c1
			if !c0.Equal(rp.results[id].C0) || !c1.Equal(rp.results[id].C1) {
				bad = append(bad, fmt.Sprint(id))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("workload: served outputs differ from serial replay at node(s) %s",
			strings.Join(bad, ", "))
	}
	return nil
}
