package workload

// The dependency-aware replay client: drive internal/serve with a
// schedule, respecting the DAG. A hoist group is submitted only after
// every predecessor's result has landed — and then all of its members
// together, in one tight loop, so the service's coalescer sees the
// whole fan-out in one micro-batch. A node's input polynomial is
// *derived from its predecessors' outputs* (the sum of their c1
// results, restricted to the node's level basis), so the replay
// cannot cheat the dependencies: submitting a node early would use an
// input that does not exist yet, and the serial reference check would
// catch any service that reordered the work.
//
// Because derived inputs are fresh polynomials with fresh values,
// logically sequential chain steps can never alias a coalescing
// group: the measured serve counters must match the schedule's
// Counts() exactly — one ModUp per group, zero coalesces outside
// hoist groups — which Replay asserts and reports.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

// Server is the serving surface Replay drives: request submission and
// the measured counters. *serve.Service implements it directly; the
// cluster router's per-tenant views implement it over the wire, which
// is how one replay client asserts the identical exact-count
// invariants against one process or a sharded fabric.
type Server interface {
	Submit(ctx context.Context, req serve.Request) (<-chan serve.Result, error)
	Stats() serve.Stats
}

// GroupSubmitter is an optional Server extension: submit one whole
// hoist group in a single call. All requests of the group share one
// Input, and the transport may exploit that — the cluster wire
// protocol ships the input polynomial once per group frame, the
// network-level counterpart of the paper's hoisting argument (one
// ModUp shared by a rotation fan-out). Implementations must deliver
// one result channel per request, in order, and must hand the whole
// group to a single executor so its coalescing behaviour matches a
// tight Submit loop.
type GroupSubmitter interface {
	SubmitGroup(ctx context.Context, reqs []serve.Request) ([]<-chan serve.Result, error)
}

// ReplayConfig tunes one schedule replay.
type ReplayConfig struct {
	// Tenant is the keyspace every request is addressed to.
	Tenant string
	// Dataflow schedules the hoist graphs (zero value: MP).
	Dataflow dataflow.Dataflow
	// Seed feeds the sampler for root-group inputs; the serial
	// reference check re-derives the identical inputs from it.
	Seed int64
	// Check re-executes the schedule serially (direct hks.KeySwitch
	// per node, same derived inputs, same keys) and compares every
	// output bit for bit.
	Check bool
}

// ReplayResult reports one replay: the schedule's predictions, the
// measured serve.Stats deltas, and the exactness verdicts.
type ReplayResult struct {
	Predicted Counts        `json:"predicted"`
	Wall      time.Duration `json:"wall_ns"`

	// Measured deltas of the service counters across the replay.
	Served    uint64 `json:"served"`
	ModUps    uint64 `json:"mod_ups"`
	Groups    uint64 `json:"groups"`
	Coalesced uint64 `json:"coalesced"`
	Batches   uint64 `json:"batches"`

	// PerLevel is the measured per-level switch/ModUp delta, validated
	// level by level against Predicted.PerLevel (the server-side
	// cross-check of the schedule's level mix).
	PerLevel []LevelCount `json:"per_level,omitempty"`

	// CountsExact is true when every measured counter equals its
	// prediction; Mismatches lists the offenders otherwise.
	CountsExact bool     `json:"counts_exact"`
	Mismatches  []string `json:"mismatches,omitempty"`

	// HoistCoalescingFactor is the coalescing factor inside hoist
	// groups (coalesced requests per hoist-group ModUp); with exact
	// counts it equals the predicted Counts.HoistCoalescingFactor.
	HoistCoalescingFactor float64 `json:"hoist_coalescing_factor"`

	// DepViolations counts results that landed before one of their
	// predecessors' results — always 0 for a dependency-respecting
	// replay (the client gates submission on predecessors, so a
	// violation would mean the bookkeeping itself is broken).
	DepViolations int `json:"dep_violations"`

	// Checked/BitExact report the serial reference comparison
	// (BitExact is vacuously true when Check was off).
	Checked  bool `json:"checked"`
	BitExact bool `json:"bit_exact"`
}

// ReplayServiceConfig returns a serve.Config tuned for exact-count
// replay of s: MaxBatch large enough that no submission wave is ever
// split across micro-batches (a split hoist group would execute two
// ModUps where the schedule predicts one), a gather window generous
// enough that a tight submission loop always lands in one batch, and
// DefaultLevel 0 so schedule levels are taken literally (serve routes
// a zero Request.Level to the default). Callers set Engine (and may
// raise KeyBudget for key-hungry bootstrap schedules).
//
// The window choice is a flake-vs-latency trade: the dispatcher's
// gather window opens at a wave's first request, so a group only
// splits if the submitting goroutine stalls longer than the window
// *between two sends of one tight loop* — but since the replay waits
// for each wave's results, every wave also pays the full window in
// latency. 20ms keeps a loaded CI runner's scheduling hiccups from
// failing the exact-count gate while costing well under a second per
// replay on realistic schedule depths.
func ReplayServiceConfig(s *Schedule) serve.Config {
	maxBatch := len(s.Nodes)
	if maxBatch < 64 {
		maxBatch = 64
	}
	return serve.Config{
		MaxBatch:     maxBatch,
		Window:       20 * time.Millisecond,
		DefaultLevel: 0,
	}
}

// replayer carries one replay's bookkeeping.
type replayer struct {
	s       *Schedule
	svc     Server
	cfg     ReplayConfig
	r       *ring.Ring
	sampler *ring.Sampler
	basis   map[int]ring.Basis // level -> B_level

	groups  [][]int
	results []serve.Result

	depViolations int
}

// Replay executes s against svc, which must be otherwise idle (the
// measured counters are deltas of svc.Stats() around the replay) and
// configured per ReplayServiceConfig. switchers resolves the levels'
// bases (and, with cfg.Check, runs the serial reference); keys is
// only used by the reference and must resolve the same key material
// the server loads (ckks key-chain memoization — or, across a wire,
// deterministic seed-derived chains — makes the comparison
// meaningful). r is the server's ring; cfg.Seed makes the run
// reproducible. When svc also implements GroupSubmitter, hoist groups
// are handed over whole instead of request by request.
func Replay(ctx context.Context, svc Server, switchers serve.SwitcherSource, keys serve.KeySource, r *ring.Ring, s *Schedule, cfg ReplayConfig) (*ReplayResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rp := &replayer{
		s: s, svc: svc, cfg: cfg, r: r,
		sampler: ring.NewSampler(r, cfg.Seed),
		basis:   map[int]ring.Basis{},
		groups:  s.Groups(),
		results: make([]serve.Result, len(s.Nodes)),
	}
	for _, n := range s.Nodes {
		if _, ok := rp.basis[n.Level]; ok {
			continue
		}
		sw, err := switchers.Switcher(n.Level)
		if err != nil {
			return nil, fmt.Errorf("workload: no switcher at level %d: %w", n.Level, err)
		}
		rp.basis[n.Level] = sw.QBasis()
	}

	before := svc.Stats()
	start := time.Now()
	if err := rp.run(ctx); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	after := svc.Stats()

	res := &ReplayResult{
		Predicted:   s.Counts(),
		Wall:        wall,
		Served:      after.Served - before.Served,
		ModUps:      after.ModUps - before.ModUps,
		Groups:      after.Groups - before.Groups,
		Coalesced:   after.Coalesced - before.Coalesced,
		Batches:     after.Batches - before.Batches,
		CountsExact: true,
		BitExact:    true,
	}
	res.DepViolations = rp.depViolations
	exact := func(name string, measured uint64, predicted int) {
		if measured != uint64(predicted) {
			res.CountsExact = false
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s: measured %d, schedule predicts %d", name, measured, predicted))
		}
	}
	exact("served switches", res.Served, res.Predicted.Switches)
	exact("mod_ups", res.ModUps, res.Predicted.ModUps)
	exact("groups", res.Groups, res.Predicted.ModUps)
	exact("coalesced", res.Coalesced, res.Predicted.Coalesced)
	res.PerLevel = perLevelDelta(before.PerLevel, after.PerLevel)
	measured := map[int]LevelCount{}
	for _, lc := range res.PerLevel {
		measured[lc.Level] = lc
	}
	// Per-level mismatches name the schedule nodes running at the
	// diverging level, so a -check failure points at the stage that
	// was split or merged instead of one aggregate number.
	exactLevel := func(level int, what string, m, p int) {
		if m == p {
			return
		}
		res.CountsExact = false
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("level %d %s: measured %d, schedule predicts %d (nodes at this level: %s)",
				level, what, m, p, s.describeLevel(level)))
	}
	for _, p := range res.Predicted.PerLevel {
		m := measured[p.Level]
		exactLevel(p.Level, "switches", m.Switches, p.Switches)
		exactLevel(p.Level, "mod_ups", m.ModUps, p.ModUps)
		exactLevel(p.Level, "coalesced", m.Coalesced, p.Coalesced)
		delete(measured, p.Level)
	}
	for l, m := range measured {
		if m.Switches != 0 || m.ModUps != 0 || m.Coalesced != 0 {
			res.CountsExact = false
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("level %d: measured %d switches / %d mod_ups / %d coalesced, schedule predicts none",
					l, m.Switches, m.ModUps, m.Coalesced))
		}
	}
	if res.Predicted.HoistGroups > 0 {
		res.HoistCoalescingFactor = float64(res.Coalesced) / float64(res.Predicted.HoistGroups)
	}

	if cfg.Check {
		res.Checked = true
		if err := rp.checkSerial(switchers, keys); err != nil {
			res.BitExact = false
			res.Mismatches = append(res.Mismatches, err.Error())
		}
	}
	return res, nil
}

// deriveInput computes one group's shared input polynomial: root
// groups draw from sample, derived groups sum the predecessors' c1
// outputs (via the c1 accessor, restricted to this node's possibly
// lower level) and scale by a per-group constant. The scaling
// matters: sibling groups sharing one predecessor set (a BSGS stage's
// giants, whose inner sums differ only by plaintext diagonals the
// replay does not model) must carry *distinct values*, not merely
// distinct storage, so the zero-coalescing-outside-hoist-groups
// invariant holds against any bit-exact executor, not just one that
// groups by pointer identity. The live replay and the serial
// reference both go through this one function, so the two sides
// cannot drift.
func (rp *replayer) deriveInput(gi int, c1 func(id int) *ring.Poly, sample func(ring.Basis) *ring.Poly) *ring.Poly {
	n0 := rp.s.Nodes[rp.groups[gi][0]]
	qb := rp.basis[n0.Level]
	if len(n0.Deps) == 0 {
		p := sample(qb)
		p.IsNTT = true
		return p
	}
	acc := rp.r.NewPoly(qb)
	acc.IsNTT = true
	for _, d := range n0.Deps {
		rp.r.Add(acc, c1(d).SubPoly(qb), acc)
	}
	rp.r.MulScalar(acc, groupSalt(gi), acc)
	return acc
}

// groupInput is deriveInput over the live replay's served results.
func (rp *replayer) groupInput(gi int) *ring.Poly {
	return rp.deriveInput(gi,
		func(id int) *ring.Poly { return rp.results[id].C1 },
		rp.sampler.Uniform)
}

// groupSalt is the per-group input scaling constant; ≥ 2 so even the
// first derived group differs from the raw predecessor sum.
func groupSalt(gi int) uint64 { return uint64(gi) + 2 }

// perLevelDelta subtracts two serve per-level snapshots, keeping the
// descending level order of the after snapshot.
func perLevelDelta(before, after []serve.LevelStats) []LevelCount {
	prev := map[int]serve.LevelStats{}
	for _, ls := range before {
		prev[ls.Level] = ls
	}
	var out []LevelCount
	for _, ls := range after {
		d := LevelCount{
			Level:     ls.Level,
			Switches:  int(ls.Switches - prev[ls.Level].Switches),
			ModUps:    int(ls.ModUps - prev[ls.Level].ModUps),
			Coalesced: int(ls.Coalesced - prev[ls.Level].Coalesced),
		}
		if d.Switches != 0 || d.ModUps != 0 || d.Coalesced != 0 {
			out = append(out, d)
		}
	}
	return out
}

// describeLevel summarizes the schedule nodes running at one level as
// compact "first-last (stage)" runs — the context a per-level count
// mismatch message carries so the offending stage is named, not just
// the level number.
func (s *Schedule) describeLevel(level int) string {
	var parts []string
	runStart, runEnd := -1, -1
	label := ""
	flush := func() {
		if runStart < 0 {
			return
		}
		if runStart == runEnd {
			parts = append(parts, fmt.Sprintf("%d (%s)", runStart, label))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d (%s)", runStart, runEnd, label))
		}
	}
	for _, n := range s.Nodes {
		if n.Level != level {
			continue
		}
		l := n.Stage
		if l == "" {
			l = n.Kind.String()
		}
		if runStart >= 0 && n.ID == runEnd+1 && l == label {
			runEnd = n.ID
			continue
		}
		flush()
		runStart, runEnd, label = n.ID, n.ID, l
	}
	flush()
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

type nodeDone struct {
	id  int
	res serve.Result
}

func (rp *replayer) submitGroup(ctx context.Context, gi int, ch chan<- nodeDone) error {
	in := rp.groupInput(gi)
	ids := rp.groups[gi]
	forward := func(id int, rc <-chan serve.Result) {
		go func() { ch <- nodeDone{id: id, res: <-rc} }()
	}
	if gs, ok := rp.svc.(GroupSubmitter); ok {
		reqs := make([]serve.Request, len(ids))
		for i, id := range ids {
			n := rp.s.Nodes[id]
			reqs[i] = serve.Request{
				Input: in, Rot: n.Rot, Dataflow: rp.cfg.Dataflow,
				Tenant: rp.cfg.Tenant, Level: n.Level,
			}
		}
		rcs, err := gs.SubmitGroup(ctx, reqs)
		if err != nil {
			return fmt.Errorf("workload: submit group %d (%s): %w", gi, rp.s.Nodes[ids[0]].Stage, err)
		}
		for i, id := range ids {
			forward(id, rcs[i])
		}
		return nil
	}
	for _, id := range ids {
		n := rp.s.Nodes[id]
		rc, err := rp.svc.Submit(ctx, serve.Request{
			Input: in, Rot: n.Rot, Dataflow: rp.cfg.Dataflow,
			Tenant: rp.cfg.Tenant, Level: n.Level,
		})
		if err != nil {
			return fmt.Errorf("workload: submit node %d (%s): %w", id, n.Stage, err)
		}
		forward(id, rc)
	}
	return nil
}

// run drives the event loop: root groups first, then each group the
// moment its last predecessor completes.
func (rp *replayer) run(ctx context.Context) error {
	remaining := make([]int, len(rp.groups))
	waiters := map[int][]int{} // node ID -> dependent group indices
	for gi, g := range rp.groups {
		deps := rp.s.Nodes[g[0]].Deps
		remaining[gi] = len(deps)
		for _, d := range deps {
			waiters[d] = append(waiters[d], gi)
		}
	}
	// Buffered for every node so in-flight completion forwarders can
	// never leak, even on an early error return.
	ch := make(chan nodeDone, len(rp.s.Nodes))
	for gi := range rp.groups {
		if remaining[gi] == 0 {
			if err := rp.submitGroup(ctx, gi, ch); err != nil {
				return err
			}
		}
	}
	completed := make([]bool, len(rp.s.Nodes))
	for n := len(rp.s.Nodes); n > 0; n-- {
		var d nodeDone
		select {
		case <-ctx.Done():
			return ctx.Err()
		case d = <-ch:
		}
		if d.res.Err != nil {
			return fmt.Errorf("workload: node %d (%s): %w", d.id, rp.s.Nodes[d.id].Stage, d.res.Err)
		}
		for _, dep := range rp.s.Nodes[d.id].Deps {
			if !completed[dep] {
				rp.depViolations++
			}
		}
		completed[d.id] = true
		rp.results[d.id] = d.res
		for _, gi := range waiters[d.id] {
			remaining[gi]--
			if remaining[gi] == 0 {
				if err := rp.submitGroup(ctx, gi, ch); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkSerial re-executes the schedule with direct per-node
// hks.KeySwitch calls — same seed, same input derivation, same keys —
// and compares every served output bit for bit. Passing proves both
// value correctness and dependency order: a service that served a
// node before its predecessors existed could not have produced the
// derived input's switch result.
func (rp *replayer) checkSerial(switchers serve.SwitcherSource, keys serve.KeySource) error {
	ref := ring.NewSampler(rp.r, rp.cfg.Seed)
	c1s := make([]*ring.Poly, len(rp.s.Nodes))
	var bad []string
	for gi, g := range rp.groups {
		n0 := rp.s.Nodes[g[0]]
		in := rp.deriveInput(gi,
			func(id int) *ring.Poly { return c1s[id] },
			ref.Uniform)
		sw, err := switchers.Switcher(n0.Level)
		if err != nil {
			return err
		}
		for _, id := range g {
			n := rp.s.Nodes[id]
			mat, err := keys.Key(serve.KeyID{Tenant: rp.cfg.Tenant, Rot: n.Rot, Level: n.Level})
			if err != nil {
				return fmt.Errorf("workload: reference key for node %d: %w", id, err)
			}
			c0, c1 := sw.KeySwitch(in, mat.Dense(sw.R))
			c1s[id] = c1
			if !c0.Equal(rp.results[id].C0) || !c1.Equal(rp.results[id].C1) {
				// Name the node fully — stage, kind, rotation, level — so
				// a bit-exactness failure localizes to a schedule position
				// without cross-referencing the DAG by hand.
				bad = append(bad, fmt.Sprintf("%d (%s: %s rot %d at level %d)",
					id, n.Stage, n.Kind, n.Rot, n.Level))
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("workload: served outputs differ from serial replay at node(s) %s",
			strings.Join(bad, "; "))
	}
	return nil
}
