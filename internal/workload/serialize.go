package workload

// Versioned JSON import/export for schedules. A schedule file is the
// exchange format between the generators and any external tooling:
// `ciflow schedule -export` writes one, `ciflow schedule -import` and
// `ciflow serve/cluster -workload file:<path>` read one, and the
// committed testdata/*.schedule.json goldens pin the canonical library
// scenarios byte for byte.
//
// The format is deliberately strict in both directions:
//
//   - Export is canonical: two-space indented, fields in declaration
//     order, newline-terminated. Exporting the same schedule twice —
//     or exporting an imported schedule — yields identical bytes, so
//     golden files diff cleanly and the fuzz round-trip property
//     (Import∘Export = id) is exact.
//   - Import rejects anything it cannot replay with exact-count
//     predictions: an unknown schema version, unknown fields, an
//     unknown node kind, and any DAG breaking the Validate()
//     invariants (positional IDs, backwards deps, non-increasing
//     levels, dense consecutive hoist groups) — each with the precise
//     error naming the offending node, so a hand-written schedule
//     fails loudly instead of drifting from its Counts().
//
// Version history: 1 — initial format (name, optional radix, nodes
// with string kinds).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// ScheduleVersion is the schema version Export writes and the only
// version Import accepts.
const ScheduleVersion = 1

// MarshalJSON encodes the kind as its string name ("rotate",
// "relin"), so schedule files are self-describing instead of leaking
// the Go iota values.
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k {
	case Rotate, Relin:
		return json.Marshal(k.String())
	default:
		return nil, fmt.Errorf("workload: cannot marshal unknown kind %d", int(k))
	}
}

// UnmarshalJSON decodes a string kind name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("workload: node kind must be a string: %w", err)
	}
	switch s {
	case "rotate":
		*k = Rotate
	case "relin":
		*k = Relin
	default:
		return fmt.Errorf("workload: unknown node kind %q (want \"rotate\" or \"relin\")", s)
	}
	return nil
}

// scheduleJSON is the wire form of a schedule: the schema version
// first, then the Schedule fields. Node marshals through its struct
// tags (with Kind as a string).
type scheduleJSON struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Radix   int    `json:"radix,omitempty"`
	Nodes   []Node `json:"nodes"`
}

// MarshalJSON writes the versioned wire form.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(scheduleJSON{
		Version: ScheduleVersion,
		Name:    s.Name,
		Radix:   s.Radix,
		Nodes:   s.Nodes,
	})
}

// UnmarshalJSON reads the versioned wire form and re-validates the
// full DAG structure: any accepted schedule passes Validate() and is
// replayable with exact Counts() predictions. Unknown schema versions
// and unknown fields are rejected, so a file from a future format
// fails with a version error instead of silently dropping structure.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	// Peek at the version with a lenient decode first: a strict decode
	// of a future version would report an unknown *field* instead of
	// the version mismatch, which is the error that actually matters.
	var ver struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &ver); err != nil {
		return fmt.Errorf("workload: schedule: %w", err)
	}
	if ver.Version == nil {
		return fmt.Errorf("workload: schedule is missing the schema version (want \"version\": %d)", ScheduleVersion)
	}
	if *ver.Version != ScheduleVersion {
		return fmt.Errorf("workload: schedule version %d not supported (want %d)", *ver.Version, ScheduleVersion)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var aux scheduleJSON
	if err := dec.Decode(&aux); err != nil {
		return fmt.Errorf("workload: schedule: %w", err)
	}
	tmp := Schedule{Name: aux.Name, Nodes: aux.Nodes, Radix: aux.Radix}
	if err := tmp.Validate(); err != nil {
		return err
	}
	*s = tmp
	return nil
}

// Export returns the canonical byte form of the schedule: indented,
// newline-terminated, stable across export→import→export round trips.
// The schedule must be valid (Export re-checks, so a hand-assembled
// broken DAG cannot reach a golden file).
func (s *Schedule) Export() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Import parses and fully validates a schedule file's bytes. The
// returned schedule passes Validate() — import either succeeds with
// exact-count replayability or fails with a precise structural error.
func Import(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		// Malformed JSON never reaches UnmarshalJSON (the decoder
		// checks syntax first), so it is the one error class still
		// missing the package prefix here.
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("workload: schedule: %w", err)
		}
		return nil, err
	}
	return &s, nil
}

// ImportFile reads and imports one schedule file.
func ImportFile(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	s, err := Import(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ExportFile writes the canonical byte form to path.
func (s *Schedule) ExportFile(path string) error {
	data, err := s.Export()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
