// Package params defines the five HKS benchmark parameter sets the
// paper evaluates (Table III: BTS1–3 from BTS, ARK, and DPRIVE, all
// providing 128-bit security) together with the derived quantities the
// dataflow analysis needs: digit partitions, data sizes, and exact
// per-stage operation counts.
package params

import "fmt"

// WordBytes is the storage size of one RNS residue. The paper's sizes
// (Table III) are exactly reproduced by 8-byte machine words.
const WordBytes = 8

// Benchmark is one HKS parameterization (paper Table III).
type Benchmark struct {
	Name string
	LogN int // log2 of the polynomial ring degree
	KL   int // number of Q towers at the evaluated level (ℓ)
	KP   int // number of P towers (K)
	Dnum int // digits in the hybrid decomposition
}

// Five benchmarks of Table III.
var (
	BTS1   = Benchmark{Name: "BTS1", LogN: 17, KL: 28, KP: 28, Dnum: 1}
	BTS2   = Benchmark{Name: "BTS2", LogN: 17, KL: 40, KP: 20, Dnum: 2}
	BTS3   = Benchmark{Name: "BTS3", LogN: 17, KL: 45, KP: 15, Dnum: 3}
	ARK    = Benchmark{Name: "ARK", LogN: 16, KL: 24, KP: 6, Dnum: 4}
	DPRIVE = Benchmark{Name: "DPRIVE", LogN: 16, KL: 26, KP: 7, Dnum: 3}
)

// All returns the benchmarks in the paper's table order.
func All() []Benchmark { return []Benchmark{BTS1, BTS2, BTS3, ARK, DPRIVE} }

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("params: unknown benchmark %q", name)
}

// N returns the ring degree.
func (b Benchmark) N() int { return 1 << uint(b.LogN) }

// Alpha returns the digit width ⌈KL/Dnum⌉ (paper Table I).
func (b Benchmark) Alpha() int { return (b.KL + b.Dnum - 1) / b.Dnum }

// DigitWidths returns the tower count of each digit: Alpha for all but
// possibly the last, which takes the remainder (DPRIVE: 9,9,8).
func (b Benchmark) DigitWidths() []int {
	w := make([]int, b.Dnum)
	rem := b.KL
	for j := range w {
		if rem < b.Alpha() {
			w[j] = rem
		} else {
			w[j] = b.Alpha()
		}
		rem -= w[j]
	}
	return w
}

// Beta returns the extension width for digit j: KL+KP−α_j (paper §III-B).
func (b Benchmark) Beta(j int) int { return b.KL + b.KP - b.DigitWidths()[j] }

// TowerBytes returns the size of one tower (N residues).
func (b Benchmark) TowerBytes() int64 { return int64(b.N()) * WordBytes }

// EvkBytes returns the evaluation-key size Dnum×2×N×(KL+KP) words
// (paper Table III: 99–360 MB).
func (b Benchmark) EvkBytes() int64 {
	return int64(b.Dnum) * 2 * int64(b.KL+b.KP) * b.TowerBytes()
}

// TempBytes returns the intermediate working set of a straightforward
// (Max-Parallel) execution: the INTT outputs (N×KL), the ModUp outputs
// (Dnum×N×(KL+KP)) and the ApplyKey partial products
// (2×Dnum×N×(KL+KP)). This reproduces Table III's "Temp data" column
// (196–585 MB; DPRIVE is ~1% off the published rounding).
func (b Benchmark) TempBytes() int64 {
	towers := int64(b.KL) + 3*int64(b.Dnum)*int64(b.KL+b.KP)
	return towers * b.TowerBytes()
}

// InputBytes returns the size of the key-switching input polynomial
// (KL towers).
func (b Benchmark) InputBytes() int64 { return int64(b.KL) * b.TowerBytes() }

// OutputBytes returns the size of the two output polynomials
// (2×KL towers).
func (b Benchmark) OutputBytes() int64 { return 2 * int64(b.KL) * b.TowerBytes() }

// Validate checks internal consistency.
func (b Benchmark) Validate() error {
	if b.LogN < 1 || b.LogN > 20 {
		return fmt.Errorf("params: logN %d out of range", b.LogN)
	}
	if b.KL < 1 || b.KP < 0 || b.Dnum < 1 || b.Dnum > b.KL {
		return fmt.Errorf("params: inconsistent towers kl=%d kp=%d dnum=%d", b.KL, b.KP, b.Dnum)
	}
	sum := 0
	for _, w := range b.DigitWidths() {
		if w <= 0 {
			return fmt.Errorf("params: empty digit in %s", b.Name)
		}
		sum += w
	}
	if sum != b.KL {
		return fmt.Errorf("params: digits cover %d of %d towers", sum, b.KL)
	}
	return nil
}
