package params

// Operation-count model. The total modular-operation count of one HKS
// execution is independent of dataflow (paper §IV-D), so arithmetic
// intensity differences come purely from DRAM traffic.
//
// Weights convert kernel-level counts into the "modular operations"
// (MODOPS) currency of the paper's throughput metric:
//   - a butterfly is one modular multiplication plus an add and a sub;
//   - a multiply-accumulate is a multiplication plus an addition;
//   - the ModDown P4 step does a subtraction and a scaling
//     multiplication per residue.
const (
	ButterflyWeight = 3
	MulAccWeight    = 2
	AddWeight       = 1
	ScaleWeight     = 2
)

// OpCounts breaks one HKS execution into the stages of paper Figure 1.
// All counts are raw kernel-element counts (before weighting).
type OpCounts struct {
	ModUpINTTButterflies   int64 // P1: KL transforms
	ModUpBConvMulAcc       int64 // P2: Σ_j N·α_j·β_j + N·α_j
	ModUpNTTButterflies    int64 // P3: Σ_j β_j transforms
	ApplyKeyMulAcc         int64 // P4: 2·Dnum·N·(KL+KP)
	ReduceAdds             int64 // P5: (Dnum−1)·2·N·(KL+KP)
	ModDownINTTButterflies int64 // P1: 2·KP transforms
	ModDownBConvMulAcc     int64 // P2: 2·(N·KP·KL + N·KP)
	ModDownNTTButterflies  int64 // P3: 2·KL transforms
	ModDownScaleElems      int64 // P4: 2·N·KL residues (sub+mul each)
}

// butterfliesPerTransform returns (N/2)·logN.
func butterfliesPerTransform(logN int) int64 {
	n := int64(1) << uint(logN)
	return n / 2 * int64(logN)
}

// Ops computes the exact per-stage operation counts for b.
func (b Benchmark) Ops() OpCounts {
	n := int64(b.N())
	bf := butterfliesPerTransform(b.LogN)
	lk := int64(b.KL + b.KP)

	var oc OpCounts
	oc.ModUpINTTButterflies = int64(b.KL) * bf
	for j, w := range b.DigitWidths() {
		alpha := int64(w)
		beta := int64(b.Beta(j))
		oc.ModUpBConvMulAcc += n*alpha*beta + n*alpha
		oc.ModUpNTTButterflies += beta * bf
	}
	oc.ApplyKeyMulAcc = 2 * int64(b.Dnum) * n * lk
	oc.ReduceAdds = int64(b.Dnum-1) * 2 * n * lk
	oc.ModDownINTTButterflies = 2 * int64(b.KP) * bf
	oc.ModDownBConvMulAcc = 2 * (n*int64(b.KP)*int64(b.KL) + n*int64(b.KP))
	oc.ModDownNTTButterflies = 2 * int64(b.KL) * bf
	oc.ModDownScaleElems = 2 * n * int64(b.KL)
	return oc
}

// WeightedTotal converts the stage counts into total modular
// operations, the unit the RPU's MODOPS throughput consumes.
func (oc OpCounts) WeightedTotal() int64 {
	return ButterflyWeight*(oc.ModUpINTTButterflies+oc.ModUpNTTButterflies+
		oc.ModDownINTTButterflies+oc.ModDownNTTButterflies) +
		MulAccWeight*(oc.ModUpBConvMulAcc+oc.ApplyKeyMulAcc+oc.ModDownBConvMulAcc) +
		AddWeight*oc.ReduceAdds +
		ScaleWeight*oc.ModDownScaleElems
}

// ModularMultiplications counts only the multiplications — the
// quantity hardware papers usually report.
func (oc OpCounts) ModularMultiplications() int64 {
	return oc.ModUpINTTButterflies + oc.ModUpNTTButterflies +
		oc.ModDownINTTButterflies + oc.ModDownNTTButterflies +
		oc.ModUpBConvMulAcc + oc.ApplyKeyMulAcc + oc.ModDownBConvMulAcc +
		oc.ModDownScaleElems
}
