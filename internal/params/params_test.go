package params

import (
	"math"
	"testing"
)

const mib = 1 << 20

func TestTableIIIEvkSizes(t *testing.T) {
	// Paper Table III evk column, exactly (MB = MiB, 8-byte words).
	want := map[string]int64{
		"BTS1": 112 * mib, "BTS2": 240 * mib, "BTS3": 360 * mib,
		"ARK": 120 * mib, "DPRIVE": 99 * mib,
	}
	for _, b := range All() {
		if got := b.EvkBytes(); got != want[b.Name] {
			t.Errorf("%s evk = %d bytes, want %d", b.Name, got, want[b.Name])
		}
	}
}

func TestTableIIITempSizes(t *testing.T) {
	// Paper Table III temp-data column; allow 2% for the paper's
	// rounding (DPRIVE prints 163 MB vs the exact 161.5 MB).
	want := map[string]float64{
		"BTS1": 196, "BTS2": 400, "BTS3": 585, "ARK": 192, "DPRIVE": 163,
	}
	for _, b := range All() {
		got := float64(b.TempBytes()) / mib
		if math.Abs(got-want[b.Name])/want[b.Name] > 0.02 {
			t.Errorf("%s temp = %.1f MiB, want %.0f", b.Name, got, want[b.Name])
		}
	}
}

func TestTableIIIAlpha(t *testing.T) {
	want := map[string]int{"BTS1": 28, "BTS2": 20, "BTS3": 15, "ARK": 6, "DPRIVE": 9}
	for _, b := range All() {
		if got := b.Alpha(); got != want[b.Name] {
			t.Errorf("%s alpha = %d, want %d", b.Name, got, want[b.Name])
		}
	}
}

func TestDigitWidths(t *testing.T) {
	for _, b := range All() {
		ws := b.DigitWidths()
		if len(ws) != b.Dnum {
			t.Fatalf("%s: %d digits, want %d", b.Name, len(ws), b.Dnum)
		}
		sum := 0
		for _, w := range ws {
			sum += w
		}
		if sum != b.KL {
			t.Fatalf("%s: digits cover %d towers, want %d", b.Name, sum, b.KL)
		}
	}
	// DPRIVE has the uneven split 9,9,8.
	ws := DPRIVE.DigitWidths()
	if ws[0] != 9 || ws[1] != 9 || ws[2] != 8 {
		t.Fatalf("DPRIVE digits = %v, want [9 9 8]", ws)
	}
}

func TestBeta(t *testing.T) {
	// β = KL + KP − α_j.
	if got := BTS3.Beta(0); got != 45 {
		t.Errorf("BTS3 beta(0) = %d, want 45", got)
	}
	if got := DPRIVE.Beta(2); got != 25 {
		t.Errorf("DPRIVE beta(2) = %d, want 25", got)
	}
	if got := BTS1.Beta(0); got != 28 {
		t.Errorf("BTS1 beta(0) = %d, want 28", got)
	}
}

func TestValidateAll(t *testing.T) {
	for _, b := range All() {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	bad := Benchmark{Name: "bad", LogN: 17, KL: 4, KP: 2, Dnum: 5}
	if err := bad.Validate(); err == nil {
		t.Error("dnum > KL accepted")
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("ARK")
	if err != nil || b.Name != "ARK" {
		t.Fatalf("ByName(ARK) = %v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestOpsArithmeticIntensityShape(t *testing.T) {
	// Sanity targets from Table II: with the published MP traffic the
	// weighted op counts must land near the published AI (±20%,
	// absorbing the paper's unpublished op weighting).
	mpTraffic := map[string]float64{
		"BTS1": 600, "BTS2": 1352, "BTS3": 1850, "ARK": 432, "DPRIVE": 365,
	}
	paperAI := map[string]float64{
		"BTS1": 1.81, "BTS2": 1.14, "BTS3": 1.00, "ARK": 1.05, "DPRIVE": 1.26,
	}
	for _, b := range All() {
		ops := float64(b.Ops().WeightedTotal())
		ai := ops / (mpTraffic[b.Name] * mib)
		rel := math.Abs(ai-paperAI[b.Name]) / paperAI[b.Name]
		if rel > 0.20 {
			t.Errorf("%s: modeled AI %.2f vs paper %.2f (%.0f%% off)", b.Name, ai, paperAI[b.Name], rel*100)
		}
	}
}

func TestOpsStageFormulas(t *testing.T) {
	// Spot-check ARK against hand computation.
	oc := ARK.Ops()
	n := int64(1 << 16)
	bf := n / 2 * 16
	if oc.ModUpINTTButterflies != 24*bf {
		t.Errorf("ModUp INTT = %d, want %d", oc.ModUpINTTButterflies, 24*bf)
	}
	if oc.ModUpBConvMulAcc != 4*(n*6*24+n*6) {
		t.Errorf("ModUp BConv = %d", oc.ModUpBConvMulAcc)
	}
	if oc.ModUpNTTButterflies != 4*24*bf {
		t.Errorf("ModUp NTT = %d", oc.ModUpNTTButterflies)
	}
	if oc.ApplyKeyMulAcc != 2*4*n*30 {
		t.Errorf("ApplyKey = %d", oc.ApplyKeyMulAcc)
	}
	if oc.ReduceAdds != 3*2*n*30 {
		t.Errorf("Reduce = %d", oc.ReduceAdds)
	}
	if oc.ModDownINTTButterflies != 12*bf {
		t.Errorf("ModDown INTT = %d", oc.ModDownINTTButterflies)
	}
	if oc.ModDownBConvMulAcc != 2*(n*6*24+n*6) {
		t.Errorf("ModDown BConv = %d", oc.ModDownBConvMulAcc)
	}
	if oc.ModDownNTTButterflies != 2*24*bf {
		t.Errorf("ModDown NTT = %d", oc.ModDownNTTButterflies)
	}
	if oc.ModDownScaleElems != 2*n*24 {
		t.Errorf("ModDown scale = %d", oc.ModDownScaleElems)
	}
}

func TestReduceVanishesForSingleDigit(t *testing.T) {
	// BTS1 has one digit and therefore no ModUp Reduce stage
	// (paper §VI-A-2).
	if BTS1.Ops().ReduceAdds != 0 {
		t.Error("BTS1 should have zero reduce adds")
	}
}

func TestWeightedTotalConsistency(t *testing.T) {
	oc := BTS2.Ops()
	manual := ButterflyWeight*(oc.ModUpINTTButterflies+oc.ModUpNTTButterflies+oc.ModDownINTTButterflies+oc.ModDownNTTButterflies) +
		MulAccWeight*(oc.ModUpBConvMulAcc+oc.ApplyKeyMulAcc+oc.ModDownBConvMulAcc) +
		AddWeight*oc.ReduceAdds + ScaleWeight*oc.ModDownScaleElems
	if oc.WeightedTotal() != manual {
		t.Error("WeightedTotal does not match its definition")
	}
	if oc.ModularMultiplications() >= oc.WeightedTotal() {
		t.Error("multiplications alone should weigh less than the weighted total")
	}
}
