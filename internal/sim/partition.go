package sim

import (
	"fmt"
	"math"
	"strings"

	"ciflow/internal/trace"
)

// PartitionedMachine reserves a fraction of the off-chip bandwidth
// exclusively for evaluation-key streaming, the arrangement the paper
// describes for its streamed-evk experiments: "we reserve a fraction
// of off-chip bandwidth and dedicate it to loading the evks" (§VI-B).
// Evk tasks (names prefixed "evk:") use the reserved channel; all
// other memory tasks share the remainder. Both channels drain the
// single in-order memory queue, so ordering is preserved while
// transfers on different channels overlap.
type PartitionedMachine struct {
	BandwidthBytesPerSec float64
	ModopsPerSec         float64
	// EvkFrac in (0,1): fraction of bandwidth reserved for keys.
	EvkFrac float64
}

// RunPartitioned simulates with the split memory system.
func RunPartitioned(p *trace.Program, m PartitionedMachine) (Result, error) {
	if m.BandwidthBytesPerSec <= 0 || m.ModopsPerSec <= 0 {
		return Result{}, fmt.Errorf("sim: non-positive machine rates %+v", m)
	}
	if m.EvkFrac <= 0 || m.EvkFrac >= 1 {
		return Result{}, fmt.Errorf("sim: evk fraction %g outside (0,1)", m.EvkFrac)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	dataBW := m.BandwidthBytesPerSec * (1 - m.EvkFrac)
	evkBW := m.BandwidthBytesPerSec * m.EvkFrac

	done := make([]float64, len(p.Tasks))
	for i := range done {
		done[i] = math.Inf(1)
	}
	var res Result
	dataFree, evkFree, cmpFree := 0.0, 0.0, 0.0
	mi, ci := 0, 0

	ready := func(t *trace.Task) (float64, bool) {
		start := 0.0
		for _, d := range t.Deps {
			if math.IsInf(done[d], 1) {
				return 0, false
			}
			if done[d] > start {
				start = done[d]
			}
		}
		return start, true
	}

	for mi < len(p.MemQueue) || ci < len(p.CmpQueue) {
		progressed := false
		for mi < len(p.MemQueue) {
			t := &p.Tasks[p.MemQueue[mi]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			var chFree *float64
			var bw float64
			if strings.HasPrefix(t.Name, "evk:") {
				chFree, bw = &evkFree, evkBW
			} else {
				chFree, bw = &dataFree, dataBW
			}
			start := math.Max(*chFree, depTime)
			dur := float64(t.Bytes) / bw
			*chFree = start + dur
			done[t.ID] = *chFree
			res.MemBusySec += dur
			res.BytesMoved += t.Bytes
			mi++
			progressed = true
		}
		for ci < len(p.CmpQueue) {
			t := &p.Tasks[p.CmpQueue[ci]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			start := math.Max(cmpFree, depTime)
			dur := float64(t.Ops) / m.ModopsPerSec
			cmpFree = start + dur
			done[t.ID] = cmpFree
			res.CmpBusySec += dur
			res.OpsExecuted += t.Ops
			ci++
			progressed = true
		}
		if !progressed {
			return Result{}, fmt.Errorf("sim: deadlock at mem=%d cmp=%d", mi, ci)
		}
	}
	res.RuntimeSec = math.Max(math.Max(dataFree, evkFree), cmpFree)
	if res.RuntimeSec > 0 {
		res.CmpIdleFrac = 1 - res.CmpBusySec/res.RuntimeSec
		res.MemIdleFrac = 1 - res.MemBusySec/res.RuntimeSec
	}
	return res, nil
}
