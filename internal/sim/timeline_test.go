package sim

import (
	"strings"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/trace"
)

func TestTimelineMatchesRun(t *testing.T) {
	s, err := dataflow.Generate(dataflow.OC, dataflow.Config{
		Bench: params.DPRIVE, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{BandwidthBytesPerSec: 16e9, ModopsPerSec: 54.4e9}
	plain, err := Run(s.Prog, m)
	if err != nil {
		t.Fatal(err)
	}
	timed, spans, err := RunWithTimeline(s.Prog, m)
	if err != nil {
		t.Fatal(err)
	}
	if plain != timed {
		t.Fatalf("timeline run diverged: %+v vs %+v", plain, timed)
	}
	if len(spans) != len(s.Prog.Tasks) {
		t.Fatalf("%d spans for %d tasks", len(spans), len(s.Prog.Tasks))
	}
}

func TestTimelineRespectsDependenciesAndEngines(t *testing.T) {
	s, err := dataflow.Generate(dataflow.MP, dataflow.Config{
		Bench: params.ARK, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{BandwidthBytesPerSec: 32e9, ModopsPerSec: 54.4e9}
	res, spans, err := RunWithTimeline(s.Prog, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range s.Prog.Tasks {
		sp := spans[task.ID]
		if sp.End < sp.Start {
			t.Fatalf("task %d: negative span", task.ID)
		}
		if sp.End > res.RuntimeSec+1e-12 {
			t.Fatalf("task %d ends after the makespan", task.ID)
		}
		for _, d := range task.Deps {
			if spans[d].End > sp.Start+1e-12 {
				t.Fatalf("task %d starts at %g before dep %d ends at %g",
					task.ID, sp.Start, d, spans[d].End)
			}
		}
	}
	// Engine exclusivity: spans within one queue must not overlap.
	check := func(queue []int) {
		prevEnd := 0.0
		for _, id := range queue {
			sp := spans[id]
			if sp.Start < prevEnd-1e-12 {
				t.Fatalf("task %d overlaps its engine predecessor", id)
			}
			prevEnd = sp.End
		}
	}
	check(s.Prog.MemQueue)
	check(s.Prog.CmpQueue)
}

func TestWriteTimelineCSV(t *testing.T) {
	b := trace.NewBuilder()
	l := b.Load("in", 64)
	b.Compute("k", 128, l)
	_, spans, err := RunWithTimeline(b.Program(), Machine{BandwidthBytesPerSec: 64, ModopsPerSec: 128})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimelineCSV(&sb, spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "task,kind,name,start_us,end_us") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "load,ld:in") && !strings.Contains(out, "load,in") {
		t.Errorf("missing load row:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("want header + 2 rows:\n%s", out)
	}
}
