package sim

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ciflow/internal/trace"
)

// Span is one task's occupancy of its engine in a simulated run.
type Span struct {
	Task  int
	Name  string
	Kind  trace.Kind
	Start float64
	End   float64
}

// RunWithTimeline simulates like Run but also returns the per-task
// spans (in task-ID order), for schedule debugging and Gantt-style
// visualization of the memory/compute overlap.
func RunWithTimeline(p *trace.Program, m Machine) (Result, []Span, error) {
	if m.BandwidthBytesPerSec <= 0 || m.ModopsPerSec <= 0 {
		return Result{}, nil, fmt.Errorf("sim: non-positive machine rates %+v", m)
	}
	if err := p.Validate(); err != nil {
		return Result{}, nil, fmt.Errorf("sim: %w", err)
	}

	done := make([]float64, len(p.Tasks))
	spans := make([]Span, len(p.Tasks))
	for i := range done {
		done[i] = math.Inf(1)
	}
	var res Result
	memFree, cmpFree := 0.0, 0.0
	mi, ci := 0, 0

	ready := func(t *trace.Task) (float64, bool) {
		start := 0.0
		for _, d := range t.Deps {
			if math.IsInf(done[d], 1) {
				return 0, false
			}
			if done[d] > start {
				start = done[d]
			}
		}
		return start, true
	}
	record := func(t *trace.Task, start, dur float64) {
		spans[t.ID] = Span{Task: t.ID, Name: t.Name, Kind: t.Kind, Start: start, End: start + dur}
	}

	for mi < len(p.MemQueue) || ci < len(p.CmpQueue) {
		progressed := false
		for mi < len(p.MemQueue) {
			t := &p.Tasks[p.MemQueue[mi]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			start := math.Max(memFree, depTime)
			dur := float64(t.Bytes) / m.BandwidthBytesPerSec
			record(t, start, dur)
			memFree = start + dur
			done[t.ID] = memFree
			res.MemBusySec += dur
			res.BytesMoved += t.Bytes
			mi++
			progressed = true
		}
		for ci < len(p.CmpQueue) {
			t := &p.Tasks[p.CmpQueue[ci]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			start := math.Max(cmpFree, depTime)
			dur := float64(t.Ops) / m.ModopsPerSec
			record(t, start, dur)
			cmpFree = start + dur
			done[t.ID] = cmpFree
			res.CmpBusySec += dur
			res.OpsExecuted += t.Ops
			ci++
			progressed = true
		}
		if !progressed {
			return Result{}, nil, fmt.Errorf("sim: deadlock at mem=%d cmp=%d", mi, ci)
		}
	}
	res.RuntimeSec = math.Max(memFree, cmpFree)
	if res.RuntimeSec > 0 {
		res.CmpIdleFrac = 1 - res.CmpBusySec/res.RuntimeSec
		res.MemIdleFrac = 1 - res.MemBusySec/res.RuntimeSec
	}
	return res, spans, nil
}

// WriteTimelineCSV dumps spans sorted by start time, one row per task,
// for plotting.
func WriteTimelineCSV(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	if _, err := fmt.Fprintln(w, "task,kind,name,start_us,end_us"); err != nil {
		return err
	}
	for _, s := range sorted {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%.3f,%.3f\n",
			s.Task, s.Kind, s.Name, s.Start*1e6, s.End*1e6); err != nil {
			return err
		}
	}
	return nil
}
