package sim

import (
	"math"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/trace"
)

func TestRunValidation(t *testing.T) {
	p := trace.NewBuilder().Program()
	if _, err := Run(p, Machine{BandwidthBytesPerSec: 0, ModopsPerSec: 1}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := Run(p, Machine{BandwidthBytesPerSec: 1, ModopsPerSec: -1}); err == nil {
		t.Fatal("negative throughput accepted")
	}
}

func TestEmptyProgram(t *testing.T) {
	res, err := Run(trace.NewBuilder().Program(), Machine{BandwidthBytesPerSec: 1, ModopsPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeSec != 0 {
		t.Fatalf("empty program runtime %g", res.RuntimeSec)
	}
}

func TestSerialChain(t *testing.T) {
	// load(100B) -> compute(50 ops) -> store(100B), at 100 B/s and
	// 50 ops/s: no overlap possible, runtime = 1 + 1 + 1.
	b := trace.NewBuilder()
	l := b.Load("in", 100)
	c := b.Compute("k", 50, l)
	b.Store("out", 100, c)
	res, err := Run(b.Program(), Machine{BandwidthBytesPerSec: 100, ModopsPerSec: 50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RuntimeSec-3) > 1e-12 {
		t.Fatalf("runtime %g, want 3", res.RuntimeSec)
	}
	if math.Abs(res.CmpIdleFrac-2.0/3) > 1e-12 {
		t.Fatalf("compute idle %g, want 2/3", res.CmpIdleFrac)
	}
}

func TestPerfectOverlap(t *testing.T) {
	// Two independent chains: memory stream and compute stream with
	// no cross dependencies overlap fully.
	b := trace.NewBuilder()
	for i := 0; i < 10; i++ {
		b.Load("x", 100)
		b.Compute("k", 100)
	}
	res, err := Run(b.Program(), Machine{BandwidthBytesPerSec: 1000, ModopsPerSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RuntimeSec-1.0) > 1e-12 {
		t.Fatalf("runtime %g, want 1.0 (full overlap)", res.RuntimeSec)
	}
}

func TestDependencyStall(t *testing.T) {
	// compute depends on a late load: the compute engine idles.
	b := trace.NewBuilder()
	l1 := b.Load("a", 1000) // 1s
	b.Compute("k", 10, l1)  // cannot start before t=1
	res, err := Run(b.Program(), Machine{BandwidthBytesPerSec: 1000, ModopsPerSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RuntimeSec-1.01) > 1e-12 {
		t.Fatalf("runtime %g, want 1.01", res.RuntimeSec)
	}
}

func TestInOrderQueueBlocksYoungerTasks(t *testing.T) {
	// Memory queue is in-order: a blocked head delays later,
	// dependency-free memory tasks.
	b := trace.NewBuilder()
	c := b.Compute("slow", 1000) // 1s of compute
	b.Load("blocked", 10, c)     // head of mem queue waits for compute
	b.Load("free", 10)           // behind the blocked head
	res, err := Run(b.Program(), Machine{BandwidthBytesPerSec: 1000, ModopsPerSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// free load finishes only after blocked: 1 + 0.01 + 0.01.
	if math.Abs(res.RuntimeSec-1.02) > 1e-12 {
		t.Fatalf("runtime %g, want 1.02", res.RuntimeSec)
	}
}

func TestRuntimeLowerBounds(t *testing.T) {
	// Makespan is at least max(total mem time, total compute time)
	// on a real HKS schedule.
	s, err := dataflow.Generate(dataflow.OC, dataflow.Config{
		Bench: params.ARK, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{BandwidthBytesPerSec: 16e9, ModopsPerSec: 54.4e9}
	res, err := Run(s.Prog, m)
	if err != nil {
		t.Fatal(err)
	}
	memT := float64(s.Traffic.TotalBytes()) / m.BandwidthBytesPerSec
	cmpT := float64(params.ARK.Ops().WeightedTotal()) / m.ModopsPerSec
	if res.RuntimeSec < math.Max(memT, cmpT)-1e-12 {
		t.Fatalf("runtime %g below lower bound %g", res.RuntimeSec, math.Max(memT, cmpT))
	}
	if res.CmpIdleFrac < 0 || res.CmpIdleFrac >= 1 {
		t.Fatalf("idle fraction %g out of range", res.CmpIdleFrac)
	}
	if res.BytesMoved != s.Traffic.TotalBytes() {
		t.Fatalf("bytes moved %d != schedule traffic %d", res.BytesMoved, s.Traffic.TotalBytes())
	}
}

func TestMoreBandwidthNeverHurts(t *testing.T) {
	s, err := dataflow.Generate(dataflow.MP, dataflow.Config{
		Bench: params.DPRIVE, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, bw := range []float64{8e9, 16e9, 32e9, 64e9, 128e9} {
		res, err := Run(s.Prog, Machine{BandwidthBytesPerSec: bw, ModopsPerSec: 54.4e9})
		if err != nil {
			t.Fatal(err)
		}
		if res.RuntimeSec > prev+1e-12 {
			t.Fatalf("runtime increased with bandwidth at %g GB/s", bw/1e9)
		}
		prev = res.RuntimeSec
	}
}

func TestComputeBoundSaturation(t *testing.T) {
	// At extreme bandwidth every dataflow converges to the compute
	// bound (paper §VI-C: "the design is no longer limited by
	// bandwidth").
	cmp := 54.4e9
	want := float64(params.ARK.Ops().WeightedTotal()) / cmp
	for _, df := range dataflow.AllDataflows() {
		s, err := dataflow.Generate(df, dataflow.Config{Bench: params.ARK, DataMemBytes: 32 << 20})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s.Prog, Machine{BandwidthBytesPerSec: 100e12, ModopsPerSec: cmp})
		if err != nil {
			t.Fatal(err)
		}
		if res.RuntimeSec > want*1.02 {
			t.Fatalf("%s: runtime %g ms not within 2%% of compute bound %g ms",
				df, res.RuntimeSec*1e3, want*1e3)
		}
	}
}
