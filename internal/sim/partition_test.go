package sim

import (
	"math"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/trace"
)

func TestRunPartitionedValidation(t *testing.T) {
	p := trace.NewBuilder().Program()
	bad := []PartitionedMachine{
		{BandwidthBytesPerSec: 0, ModopsPerSec: 1, EvkFrac: 0.5},
		{BandwidthBytesPerSec: 1, ModopsPerSec: 1, EvkFrac: 0},
		{BandwidthBytesPerSec: 1, ModopsPerSec: 1, EvkFrac: 1},
	}
	for _, m := range bad {
		if _, err := RunPartitioned(p, m); err == nil {
			t.Errorf("machine %+v accepted", m)
		}
	}
}

func TestPartitionedChannelsOverlap(t *testing.T) {
	// One evk stream and one data load of equal size: with a 50/50
	// split they run concurrently, each at half bandwidth.
	b := trace.NewBuilder()
	b.Load("evk:0.0", 1000)
	b.Load("ld:in.0", 1000)
	res, err := RunPartitioned(b.Program(), PartitionedMachine{
		BandwidthBytesPerSec: 1000, ModopsPerSec: 1, EvkFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RuntimeSec-2.0) > 1e-12 {
		t.Fatalf("runtime %g, want 2.0 (parallel at half rate)", res.RuntimeSec)
	}
	// Shared channel: same bytes serialized at full rate — also 2.0s;
	// but 3 equal data tasks vs 1 evk task shows the difference.
	b2 := trace.NewBuilder()
	b2.Load("evk:0.0", 1000)
	for i := 0; i < 3; i++ {
		b2.Load("ld:x", 1000)
	}
	shared, err := Run(b2.Program(), Machine{BandwidthBytesPerSec: 1000, ModopsPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunPartitioned(b2.Program(), PartitionedMachine{
		BandwidthBytesPerSec: 1000, ModopsPerSec: 1, EvkFrac: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 s shared; split: evk 1000/250=4 s, data 3000/750=4 s in
	// parallel -> same 4 s. Balanced reservation never loses.
	if split.RuntimeSec > shared.RuntimeSec+1e-9 {
		t.Fatalf("balanced partition slower: %g vs %g", split.RuntimeSec, shared.RuntimeSec)
	}
}

func TestPartitionedBalancedFractionNearShared(t *testing.T) {
	// On a real OC streamed schedule, reserving the evk's byte share
	// of the bandwidth must land within a few percent of the shared
	// channel (same aggregate bandwidth, ordering effects only).
	s, err := dataflow.Generate(dataflow.OC, dataflow.Config{
		Bench: params.ARK, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(s.Traffic.EvkBytes) / float64(s.Traffic.TotalBytes())
	bw := 16e9
	shared, err := Run(s.Prog, Machine{BandwidthBytesPerSec: bw, ModopsPerSec: 54.4e9})
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunPartitioned(s.Prog, PartitionedMachine{
		BandwidthBytesPerSec: bw, ModopsPerSec: 54.4e9, EvkFrac: frac,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := split.RuntimeSec / shared.RuntimeSec
	// Observation this test documents: OC interleaves key and data
	// transfers per output tower, so even a byte-balanced static
	// partition leaves each channel idle while the other works —
	// measured ~1.5x vs the shared channel. A static reservation is
	// simple (the paper's arrangement) but not free; it must stay
	// within 2x of shared and never beat it by more than rounding.
	if ratio > 2.0 || ratio < 0.99 {
		t.Fatalf("balanced partition ratio %.2f outside [0.99, 2.0]", ratio)
	}
}

func TestPartitionedExtremeFractionHurts(t *testing.T) {
	// Starving the data channel (95% reserved for keys) must slow a
	// data-heavy schedule down.
	s, err := dataflow.Generate(dataflow.MP, dataflow.Config{
		Bench: params.ARK, DataMemBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	bw := 16e9
	shared, err := Run(s.Prog, Machine{BandwidthBytesPerSec: bw, ModopsPerSec: 54.4e9})
	if err != nil {
		t.Fatal(err)
	}
	starved, err := RunPartitioned(s.Prog, PartitionedMachine{
		BandwidthBytesPerSec: bw, ModopsPerSec: 54.4e9, EvkFrac: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if starved.RuntimeSec < shared.RuntimeSec*2 {
		t.Fatalf("starving data channel should hurt: %g vs %g", starved.RuntimeSec, shared.RuntimeSec)
	}
}
