package sim

import (
	"math"
	"math/rand"
	"testing"

	"ciflow/internal/trace"
)

// randomProgram builds a structurally valid random program: tasks in
// creation order with backward dependencies only.
func randomProgram(rng *rand.Rand, n int) *trace.Program {
	b := trace.NewBuilder()
	for i := 0; i < n; i++ {
		var deps []int
		for d := 0; d < i && len(deps) < 3; d++ {
			if rng.Intn(8) == 0 {
				deps = append(deps, rng.Intn(i))
			}
		}
		switch rng.Intn(3) {
		case 0:
			b.Load("l", int64(1+rng.Intn(4096)), deps...)
		case 1:
			b.Store("s", int64(1+rng.Intn(4096)), deps...)
		default:
			b.Compute("c", int64(1+rng.Intn(10000)), deps...)
		}
	}
	return b.Program()
}

// TestRandomProgramsInvariants fuzzes the simulator: every random DAG
// must simulate without deadlock, and the results must satisfy the
// conservation properties.
func TestRandomProgramsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	m := Machine{BandwidthBytesPerSec: 1e6, ModopsPerSec: 1e6}
	for trial := 0; trial < 200; trial++ {
		p := randomProgram(rng, 1+rng.Intn(120))
		res, spans, err := RunWithTimeline(p, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.RuntimeSec < math.Max(res.MemBusySec, res.CmpBusySec)-1e-12 {
			t.Fatalf("trial %d: makespan below busy time", trial)
		}
		if res.CmpIdleFrac < -1e-12 || res.CmpIdleFrac > 1 {
			t.Fatalf("trial %d: idle fraction %g", trial, res.CmpIdleFrac)
		}
		st := p.Stats()
		if res.BytesMoved != st.LoadBytes+st.StoreBytes {
			t.Fatalf("trial %d: bytes %d != %d", trial, res.BytesMoved, st.LoadBytes+st.StoreBytes)
		}
		if res.OpsExecuted != st.ComputeOps {
			t.Fatalf("trial %d: ops mismatch", trial)
		}
		// Dependency causality on the timeline.
		for _, task := range p.Tasks {
			for _, d := range task.Deps {
				if spans[d].End > spans[task.ID].Start+1e-12 {
					t.Fatalf("trial %d: task %d starts before dep %d completes", trial, task.ID, d)
				}
			}
		}
	}
}

// TestFasterMachinesNeverSlower fuzzes monotonicity: raising either
// rate must never increase the makespan.
func TestFasterMachinesNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		p := randomProgram(rng, 80)
		base, err := Run(p, Machine{BandwidthBytesPerSec: 1e6, ModopsPerSec: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		fasterMem, err := Run(p, Machine{BandwidthBytesPerSec: 2e6, ModopsPerSec: 1e6})
		if err != nil {
			t.Fatal(err)
		}
		fasterCmp, err := Run(p, Machine{BandwidthBytesPerSec: 1e6, ModopsPerSec: 2e6})
		if err != nil {
			t.Fatal(err)
		}
		if fasterMem.RuntimeSec > base.RuntimeSec+1e-12 {
			t.Fatalf("trial %d: more bandwidth slowed the run", trial)
		}
		if fasterCmp.RuntimeSec > base.RuntimeSec+1e-12 {
			t.Fatalf("trial %d: more compute slowed the run", trial)
		}
	}
}

// TestZeroByteAndZeroOpTasks covers degenerate payloads.
func TestZeroByteAndZeroOpTasks(t *testing.T) {
	b := trace.NewBuilder()
	l := b.Load("empty", 0)
	c := b.Compute("noop", 0, l)
	b.Store("empty2", 0, c)
	res, err := Run(b.Program(), Machine{BandwidthBytesPerSec: 1, ModopsPerSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeSec != 0 {
		t.Fatalf("zero-payload program took %g s", res.RuntimeSec)
	}
}
