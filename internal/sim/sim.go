// Package sim executes a dataflow schedule on the RPU performance
// model: a discrete-event simulation of two in-order issue queues —
// memory tasks against a bandwidth-limited DRAM channel and compute
// tasks against a MODOPS-limited vector backend — with cross-queue
// dependency stalls. This mirrors the paper's simulation framework
// (§V-C): "the tasks at the front of each queue are fetched and
// executed in parallel once all the task's dependencies are resolved",
// so independent data movement is masked by computation.
package sim

import (
	"fmt"
	"math"

	"ciflow/internal/trace"
)

// Machine describes the hardware configuration of one run.
type Machine struct {
	// BandwidthBytesPerSec is the off-chip DRAM bandwidth.
	BandwidthBytesPerSec float64
	// ModopsPerSec is the compute throughput in weighted modular
	// operations per second (see internal/rpu for the RPU's value).
	ModopsPerSec float64
}

// Result summarizes one simulated HKS execution.
type Result struct {
	// RuntimeSec is the end-to-end makespan.
	RuntimeSec float64
	// MemBusySec and CmpBusySec are per-engine busy times.
	MemBusySec float64
	CmpBusySec float64
	// CmpIdleFrac is the fraction of the makespan the vector backend
	// spent waiting (the paper's "idle time" metric, §VI-A-1).
	CmpIdleFrac float64
	// MemIdleFrac is the DRAM channel's idle fraction.
	MemIdleFrac float64
	// BytesMoved is total DRAM traffic.
	BytesMoved int64
	// OpsExecuted is total weighted modular operations.
	OpsExecuted int64
}

// Run simulates the program to completion.
func Run(p *trace.Program, m Machine) (Result, error) {
	if m.BandwidthBytesPerSec <= 0 || m.ModopsPerSec <= 0 {
		return Result{}, fmt.Errorf("sim: non-positive machine rates %+v", m)
	}
	if err := p.Validate(); err != nil {
		return Result{}, fmt.Errorf("sim: %w", err)
	}

	done := make([]float64, len(p.Tasks)) // completion time per task
	for i := range done {
		done[i] = math.Inf(1)
	}

	var res Result
	// Each queue is in-order: a task issues at
	// max(queue engine free time, all dependency completion times) and
	// occupies its engine for its service time.
	memFree, cmpFree := 0.0, 0.0
	mi, ci := 0, 0

	ready := func(t *trace.Task) (float64, bool) {
		start := 0.0
		for _, d := range t.Deps {
			if math.IsInf(done[d], 1) {
				return 0, false
			}
			if done[d] > start {
				start = done[d]
			}
		}
		return start, true
	}

	for mi < len(p.MemQueue) || ci < len(p.CmpQueue) {
		progressed := false
		// Advance the memory queue as far as dependencies allow.
		for mi < len(p.MemQueue) {
			t := &p.Tasks[p.MemQueue[mi]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			start := math.Max(memFree, depTime)
			dur := float64(t.Bytes) / m.BandwidthBytesPerSec
			memFree = start + dur
			done[t.ID] = memFree
			res.MemBusySec += dur
			res.BytesMoved += t.Bytes
			mi++
			progressed = true
		}
		// Advance the compute queue.
		for ci < len(p.CmpQueue) {
			t := &p.Tasks[p.CmpQueue[ci]]
			depTime, ok := ready(t)
			if !ok {
				break
			}
			start := math.Max(cmpFree, depTime)
			dur := float64(t.Ops) / m.ModopsPerSec
			cmpFree = start + dur
			done[t.ID] = cmpFree
			res.CmpBusySec += dur
			res.OpsExecuted += t.Ops
			ci++
			progressed = true
		}
		if !progressed {
			// Both queue heads wait on tasks that can never finish:
			// a cross-queue deadlock, which Validate's acyclicity
			// check should have ruled out.
			return Result{}, fmt.Errorf("sim: deadlock at mem=%d cmp=%d", mi, ci)
		}
	}

	res.RuntimeSec = math.Max(memFree, cmpFree)
	if res.RuntimeSec > 0 {
		res.CmpIdleFrac = 1 - res.CmpBusySec/res.RuntimeSec
		res.MemIdleFrac = 1 - res.MemBusySec/res.RuntimeSec
	}
	return res, nil
}
