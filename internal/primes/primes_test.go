package primes

import (
	"testing"

	"ciflow/internal/mod"
)

func TestGenerate(t *testing.T) {
	for _, tc := range []struct {
		bits, n, count int
	}{
		{20, 1 << 10, 3},
		{30, 1 << 12, 5},
		{40, 1 << 13, 4},
		{55, 1 << 14, 6},
		{60, 1 << 12, 8},
	} {
		ps, err := Generate(tc.bits, tc.n, tc.count)
		if err != nil {
			t.Fatalf("Generate(%d,%d,%d): %v", tc.bits, tc.n, tc.count, err)
		}
		if len(ps) != tc.count {
			t.Fatalf("got %d primes, want %d", len(ps), tc.count)
		}
		seen := map[uint64]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate prime %d", p)
			}
			seen[p] = true
			if !mod.IsPrime(p) {
				t.Fatalf("%d is not prime", p)
			}
			if (p-1)%uint64(2*tc.n) != 0 {
				t.Fatalf("%d is not NTT-friendly for N=%d", p, tc.n)
			}
			if p>>uint(tc.bits-1) != 1 {
				t.Fatalf("%d is not %d bits", p, tc.bits)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(3, 1024, 1); err == nil {
		t.Error("bit size 3 should fail")
	}
	if _, err := Generate(63, 1024, 1); err == nil {
		t.Error("bit size 63 should fail")
	}
	if _, err := Generate(30, 1000, 1); err == nil {
		t.Error("non-power-of-two N should fail")
	}
	// 2N exceeds the number of candidates in [2^4, 2^5): must error,
	// not loop.
	if _, err := Generate(5, 1<<20, 1); err == nil {
		t.Error("impossible request should fail")
	}
}

func TestPrimitiveRoot(t *testing.T) {
	for _, q := range []uint64{17, 97, 65537, 786433} {
		g, err := PrimitiveRoot(q)
		if err != nil {
			t.Fatal(err)
		}
		m := mod.New(q)
		// Order of g must be exactly q-1: g^(q-1)=1 and g^((q-1)/f) != 1
		// for each prime factor f.
		if m.Pow(g, q-1) != 1 {
			t.Fatalf("q=%d: g=%d not in group", q, g)
		}
		for _, f := range factorize(q - 1) {
			if m.Pow(g, (q-1)/f) == 1 {
				t.Fatalf("q=%d: g=%d has order dividing (q-1)/%d", q, g, f)
			}
		}
	}
	if _, err := PrimitiveRoot(15); err == nil {
		t.Error("PrimitiveRoot of composite should fail")
	}
}

func TestRootOfUnity(t *testing.T) {
	n := 1 << 10
	ps, err := Generate(30, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ps {
		psi, err := RootOfUnity(q, n)
		if err != nil {
			t.Fatal(err)
		}
		m := mod.New(q)
		if m.Pow(psi, uint64(n)) != q-1 {
			t.Fatalf("psi^N != -1 for q=%d", q)
		}
		if m.Pow(psi, uint64(2*n)) != 1 {
			t.Fatalf("psi^2N != 1 for q=%d", q)
		}
	}
	if _, err := RootOfUnity(97, 1<<10); err == nil {
		t.Error("q=97 cannot host a 2048th root of unity")
	}
}

func TestFactorize(t *testing.T) {
	cases := map[uint64][]uint64{
		2:      {2},
		12:     {2, 3},
		97:     {97},
		360:    {2, 3, 5},
		786432: {2, 3},
	}
	for n, want := range cases {
		got := factorize(n)
		if len(got) != len(want) {
			t.Fatalf("factorize(%d) = %v, want %v", n, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("factorize(%d) = %v, want %v", n, got, want)
			}
		}
	}
}
