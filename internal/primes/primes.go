// Package primes generates NTT-friendly prime moduli and primitive
// roots of unity for negacyclic number-theoretic transforms.
//
// A prime q supports the negacyclic NTT of length N (a power of two)
// iff q ≡ 1 (mod 2N), which guarantees a primitive 2N-th root of
// unity ψ in Z_q. The RNS moduli chains of CKKS (paper Table I: q_i,
// p_i) are built from such primes.
package primes

import (
	"fmt"

	"ciflow/internal/mod"
)

// Generate returns count distinct NTT-friendly primes of the given bit
// size for ring degree N (power of two). Primes are found by scanning
// candidates ≡ 1 (mod 2N) downward from 2^bits, the conventional
// strategy of HE libraries, so the chain stays close to the target
// word size.
func Generate(bits, n, count int) ([]uint64, error) {
	if bits < 4 || bits > mod.MaxModulusBits {
		return nil, fmt.Errorf("primes: bit size %d out of range [4, %d]", bits, mod.MaxModulusBits)
	}
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("primes: ring degree %d is not a power of two >= 2", n)
	}
	step := uint64(2 * n)
	upper := uint64(1) << uint(bits)
	// Largest candidate < 2^bits congruent to 1 mod 2N.
	c := upper - (upper-1)%step
	if c >= upper {
		c -= step
	}
	out := make([]uint64, 0, count)
	lower := uint64(1) << uint(bits-1)
	for c > lower {
		if mod.IsPrime(c) {
			out = append(out, c)
			if len(out) == count {
				return out, nil
			}
		}
		c -= step
	}
	return nil, fmt.Errorf("primes: only %d of %d primes of %d bits exist for N=%d", len(out), count, bits, n)
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^*.
// q must be prime.
func PrimitiveRoot(q uint64) (uint64, error) {
	if !mod.IsPrime(q) {
		return 0, fmt.Errorf("primes: %d is not prime", q)
	}
	m := mod.New(q)
	factors := factorize(q - 1)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, f := range factors {
			if m.Pow(g, (q-1)/f) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("primes: no primitive root found for %d", q)
}

// RootOfUnity returns a primitive 2N-th root of unity ψ modulo q,
// i.e. ψ^(2N) = 1 and ψ^N = -1. q must satisfy q ≡ 1 (mod 2N).
func RootOfUnity(q uint64, n int) (uint64, error) {
	order := uint64(2 * n)
	if (q-1)%order != 0 {
		return 0, fmt.Errorf("primes: %d is not congruent to 1 mod %d", q, order)
	}
	g, err := PrimitiveRoot(q)
	if err != nil {
		return 0, err
	}
	m := mod.New(q)
	psi := m.Pow(g, (q-1)/order)
	// ψ generated from a primitive root always has exact order 2N;
	// verify the defining property ψ^N = -1 as a cheap self-check.
	if m.Pow(psi, uint64(n)) != q-1 {
		return 0, fmt.Errorf("primes: root candidate %d has wrong order", psi)
	}
	return psi, nil
}

// factorize returns the distinct prime factors of n by trial division.
// n-1 for our 62-bit moduli always factors quickly because it is
// divisible by a large power of two.
func factorize(n uint64) []uint64 {
	var fs []uint64
	appendOnce := func(f uint64) {
		if len(fs) == 0 || fs[len(fs)-1] != f {
			fs = append(fs, f)
		}
	}
	for n%2 == 0 {
		appendOnce(2)
		n /= 2
	}
	for f := uint64(3); f*f <= n; f += 2 {
		for n%f == 0 {
			appendOnce(f)
			n /= f
		}
	}
	if n > 1 {
		appendOnce(n)
	}
	return fs
}
