package hks

import (
	"sync"
	"testing"

	"ciflow/internal/ring"
)

func TestSwitcherPool(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSwitcherPool(r, 2)
	if p.Ring() != r {
		t.Fatal("pool does not expose its ring")
	}

	sw3, err := p.Switcher(3)
	if err != nil {
		t.Fatal(err)
	}
	if sw3.Level != 3 || sw3.Dnum != 2 {
		t.Fatalf("level 3 switcher: level %d dnum %d, want 3/2", sw3.Level, sw3.Dnum)
	}
	if again, _ := p.Switcher(3); again != sw3 {
		t.Fatal("switcher not memoized")
	}

	// dnum clamps to level+1 at low levels.
	sw0, err := p.Switcher(0)
	if err != nil {
		t.Fatal(err)
	}
	if sw0.Dnum != 1 {
		t.Fatalf("level 0 dnum %d, want clamp to 1", sw0.Dnum)
	}

	for _, bad := range []int{-1, r.NumQ} {
		if _, err := p.Switcher(bad); err == nil {
			t.Errorf("level %d accepted", bad)
		}
	}
}

// TestSwitcherPoolConcurrentColdLevels hammers the memoization path
// the serving layer leans on: many goroutines resolving many distinct
// levels, every level cold, each goroutine touching the levels in a
// different order. This exercises the entry-creation race (several
// goroutines installing the slot for one level), construction outside
// the map lock (a cold level's NewSwitcher running while other levels
// are being installed and read), and the read-mostly fast path — all
// under -race. Every goroutine must observe the identical instance
// per level, with the low-level dnum clamp applied.
func TestSwitcherPoolConcurrentColdLevels(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 8, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSwitcherPool(r, 3)
	const (
		workers = 16
		levels  = 8
		rounds  = 4
	)
	// Level 3 (four towers over three digits) leaves an empty digit:
	// construction fails there, and the pool memoizes the error —
	// every goroutine must observe it, consistently, without poisoning
	// the neighbouring levels.
	const badLevel = 3
	got := make([][]*Switcher, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		got[w] = make([]*Switcher, levels)
		go func(w int) {
			defer wg.Done()
			// Revisit every level a few times, starting at a
			// different offset per goroutine so first-use
			// construction is contended on every level by several
			// goroutines at once.
			for i := 0; i < rounds*levels; i++ {
				l := (w + i) % levels
				sw, err := p.Switcher(l)
				if l == badLevel {
					if err == nil {
						t.Errorf("level %d: empty digit accepted", l)
						return
					}
					continue
				}
				if err != nil {
					t.Errorf("level %d: %v", l, err)
					return
				}
				if got[w][l] == nil {
					got[w][l] = sw
				} else if got[w][l] != sw {
					t.Errorf("level %d: instance changed between calls", l)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for l := 0; l < levels; l++ {
		if l == badLevel {
			continue
		}
		sw := got[0][l]
		if sw == nil {
			t.Fatalf("level %d never resolved", l)
		}
		if sw.Level != l {
			t.Fatalf("level %d switcher reports level %d", l, sw.Level)
		}
		wantDnum := 3
		if l+1 < wantDnum {
			wantDnum = l + 1 // clamp: no more digits than active towers
		}
		if sw.Dnum != wantDnum {
			t.Fatalf("level %d dnum %d, want %d", l, sw.Dnum, wantDnum)
		}
		for w := 1; w < workers; w++ {
			if got[w][l] != sw {
				t.Fatalf("level %d: goroutines observed distinct instances", l)
			}
		}
	}
}

// TestSwitcherPoolConcurrent races many goroutines on one level: all
// must observe the identical switcher (one construction).
func TestSwitcherPoolConcurrent(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSwitcherPool(r, 2)
	const n = 8
	got := make([]*Switcher, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw, err := p.Switcher(2)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = sw
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Switcher calls built distinct instances")
		}
	}
}
