package hks

import (
	"sync"
	"testing"

	"ciflow/internal/ring"
)

func TestSwitcherPool(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSwitcherPool(r, 2)
	if p.Ring() != r {
		t.Fatal("pool does not expose its ring")
	}

	sw3, err := p.Switcher(3)
	if err != nil {
		t.Fatal(err)
	}
	if sw3.Level != 3 || sw3.Dnum != 2 {
		t.Fatalf("level 3 switcher: level %d dnum %d, want 3/2", sw3.Level, sw3.Dnum)
	}
	if again, _ := p.Switcher(3); again != sw3 {
		t.Fatal("switcher not memoized")
	}

	// dnum clamps to level+1 at low levels.
	sw0, err := p.Switcher(0)
	if err != nil {
		t.Fatal(err)
	}
	if sw0.Dnum != 1 {
		t.Fatalf("level 0 dnum %d, want clamp to 1", sw0.Dnum)
	}

	for _, bad := range []int{-1, r.NumQ} {
		if _, err := p.Switcher(bad); err == nil {
			t.Errorf("level %d accepted", bad)
		}
	}
}

// TestSwitcherPoolConcurrent races many goroutines on one level: all
// must observe the identical switcher (one construction).
func TestSwitcherPoolConcurrent(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	p := NewSwitcherPool(r, 2)
	const n = 8
	got := make([]*Switcher, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sw, err := p.Switcher(2)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = sw
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Switcher calls built distinct instances")
		}
	}
}
