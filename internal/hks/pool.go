package hks

// SwitcherPool is the level-parameterized construction helper behind
// level-aware serving: one Switcher per active ciphertext level, built
// lazily over a shared ring and memoized, so a layer routing a
// multi-level request stream (internal/serve, ckks.KeyChain) pays the
// NewSwitcher precomputation once per level instead of owning one
// instance per (caller, level).
//
// A Switcher holds no secret material — digit partitions, converters,
// and gadget factors derive from the public ring parameters alone — so
// one pool (and each switcher in it) is safely shared by any number of
// tenants/keyspaces; only evaluation keys are per-tenant.

import (
	"sync"

	"ciflow/internal/ring"
)

// SwitcherPool lazily builds and memoizes one Switcher per level over
// a shared ring. Safe for concurrent use; the zero value is not usable,
// construct with NewSwitcherPool.
type SwitcherPool struct {
	r    *ring.Ring
	dnum int

	mu      sync.RWMutex
	byLevel map[int]*poolEntry
}

// poolEntry is one level's slot: construction runs once, outside the
// pool's map lock, so a cold level's (expensive) NewSwitcher never
// stalls concurrent lookups of warm levels — the pool sits on the
// submit path of every tenant of a serving layer.
type poolEntry struct {
	once sync.Once
	sw   *Switcher
	err  error
}

// NewSwitcherPool prepares a pool over r with the given digit count.
// Parameter validation happens per level inside Switcher (a dnum too
// large for a low level is clamped, an invalid level errors there).
func NewSwitcherPool(r *ring.Ring, dnum int) *SwitcherPool {
	return &SwitcherPool{r: r, dnum: dnum, byLevel: map[int]*poolEntry{}}
}

// Ring returns the shared ring every pooled switcher operates over.
func (p *SwitcherPool) Ring() *ring.Ring { return p.r }

// Switcher returns (building and memoizing on first use) the switcher
// for a level. The digit count is clamped to level+1 — fewer active
// towers than digits would leave empty digits — so rescale-heavy
// workloads can descend to any level without re-tuning dnum.
// Construction errors are memoized too: level and dnum are the only
// inputs, so a level that failed once fails always.
func (p *SwitcherPool) Switcher(level int) (*Switcher, error) {
	p.mu.RLock()
	e := p.byLevel[level]
	p.mu.RUnlock()
	if e == nil {
		p.mu.Lock()
		if e = p.byLevel[level]; e == nil {
			e = &poolEntry{}
			p.byLevel[level] = e
		}
		p.mu.Unlock()
	}
	e.once.Do(func() {
		dnum := p.dnum
		if dnum > level+1 {
			dnum = level + 1
		}
		e.sw, e.err = NewSwitcher(p.r, level, dnum)
	})
	return e.sw, e.err
}
