package hks

// Hoisted hybrid key switching: when one input polynomial feeds k
// different evaluation keys (the rotation fan-out of the diagonal
// method, paper §I's private-inference workload), Decompose+ModUp —
// the left half of paper Figure 1 and the bulk of its INTT/BConv/NTT
// work — does not depend on the key. Hoisting runs it once and
// replays only ApplyKey+Reduce+ModDown per key, saving
// (k−1)·ModUpOps weighted modular operations (HoistedOpsSaved).
//
// The Hoisted state materializes the ModUp output (dnum polynomials
// over D_ℓ, bypass towers copied out of the input so the state
// outlives it) together with all replay scratch and two prebuilt
// task graphs:
//
//	hoist graph   — ModUp P1–P3 shaped by the chosen dataflow
//	                (MP/OC: per-tower tiles, DC: per-digit pipelines)
//	replay graph  — per-extended-tower ApplyKey accumulation followed
//	                by the shared ModDown stages, identical for every
//	                dataflow (the key-dependent half has no digit
//	                pipeline left to reshape)
//
// Both the serial and engine-backed paths execute exactly the
// operations of KeySwitch in the same per-coefficient order, so every
// hoisted output is bit-exact with the corresponding per-rotation
// switch — the property the equivalence tests assert.
//
// States are pooled on the Switcher (one pool per dataflow shape):
// Hoist/HoistParallel draw from the pool and Release returns the
// state, so steady-state hoisted switching allocates nothing beyond
// the engine's per-run completion channel.

import (
	"fmt"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
)

// Hoisted is the shared-ModUp state of one input polynomial, ready to
// be replayed against any number of evaluation keys. Obtain it with
// Hoist or HoistParallel, replay with Switch/SwitchInto/
// SwitchParallelInto, and return it to the switcher's pool with
// Release. A Hoisted must not be used concurrently or after Release;
// concurrent hoisting of different inputs on one Switcher is safe.
type Hoisted struct {
	downState
	df dataflow.Dataflow

	ups []*ring.Poly // dnum ModUp outputs over D_ℓ (NTT domain)
	y   [][]uint64   // ℓ rows: INTT'd + ŷ-scaled digit towers

	hoistG  *engine.Graph
	replayG *engine.Graph

	d   *ring.Poly // bound during the hoist phase only
	evk *Evk       // bound during each replay
}

func newHoisted(sw *Switcher, df dataflow.Dataflow) *Hoisted {
	ell, n := sw.ell(), sw.R.N
	h := &Hoisted{df: df}
	h.initDown(sw)

	h.ups = make([]*ring.Poly, sw.Dnum)
	for j := range h.ups {
		h.ups[j] = sw.R.NewPoly(sw.dBasis)
		h.ups[j].IsNTT = true
	}
	h.y = make([][]uint64, ell)
	for i := range h.y {
		h.y[i] = make([]uint64, n)
	}

	// Hoist graph: ModUp P1–P3 shaped by the dataflow.
	h.hoistG = engine.NewGraph()
	if dfKey(df) == 1 { // DC: one node per digit pipeline
		for j := 0; j < sw.Dnum; j++ {
			h.hoistG.NodeNamed("hoist.digit", func() { h.hoistDigit(j) })
		}
	} else { // MP and OC: per-tower prep, per-tile convert
		prep := make([]int, ell)
		for i := 0; i < ell; i++ {
			prep[i] = h.hoistG.NodeNamed("hoist.prep", func() { h.hoistPrep(i) })
		}
		for j := 0; j < sw.Dnum; j++ {
			deps := prep[sw.digitLo(j):sw.digitHi(j)]
			for di := range sw.convDstIdx[j] {
				h.hoistG.NodeNamed("hoist.conv", func() { h.hoistConvert(j, di) }, deps...)
			}
		}
	}

	// Replay graph: per-tower ApplyKey, then the shared ModDown.
	h.replayG = engine.NewGraph()
	acc := make([]int, len(sw.dBasis))
	for t := range acc {
		acc[t] = h.replayG.NodeNamed("apply", func() { h.applyTower(t) })
	}
	h.buildModDown(h.replayG, acc)
	return h
}

// ---- Hoist-phase tiles ----

// hoistPrep is ModUp P1 for Q tower i plus the digit's ŷ scaling, and
// copies the bypass row into the owning digit's ModUp output (paper
// Figure 1, red towers) so the state outlives the input.
func (h *Hoisted) hoistPrep(i int) {
	sw, rec := h.sw, h.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	j := i / sw.Alpha
	copy(h.ups[j].Coeffs[i], h.d.Coeffs[i])
	row := h.y[i]
	copy(row, h.d.Coeffs[i])
	sw.R.INTTTower(sw.qBasis[i], row)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelNTT, h.dfIdx, t1.Sub(t0))
	}
	sw.upConv[j].YScaleRow(i-sw.digitLo(j), row, row)
	if rec != nil {
		now := time.Now()
		rec.Kernel(obs.KernelBConv, h.dfIdx, now.Sub(t1))
		rec.Stage(obs.StageModUp, h.dfIdx, h.level, now.Sub(t0))
	}
}

// hoistConvert is ModUp P2+P3 for one (digit, destination tower)
// tile, writing straight into the digit's ModUp output.
func (h *Hoisted) hoistConvert(j, di int) {
	sw, rec := h.sw, h.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	t := sw.convDstIdx[j][di]
	row := h.ups[j].Coeffs[t]
	sw.upConv[j].ConvertTowerFromY(h.y[sw.digitLo(j):sw.digitHi(j)], di, row)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelBConv, h.dfIdx, t1.Sub(t0))
	}
	sw.R.NTTTower(sw.dBasis[t], row)
	if rec != nil {
		now := time.Now()
		rec.Kernel(obs.KernelNTT, h.dfIdx, now.Sub(t1))
		rec.Stage(obs.StageModUp, h.dfIdx, h.level, now.Sub(t0))
	}
}

// hoistDigit is the DC tile: one digit's entire ModUp run serially.
func (h *Hoisted) hoistDigit(j int) {
	for i := h.sw.digitLo(j); i < h.sw.digitHi(j); i++ {
		h.hoistPrep(i)
	}
	for di := range h.sw.convDstIdx[j] {
		h.hoistConvert(j, di)
	}
}

// applyTower is the replay tile for one extended tower: accumulate
// every hoisted digit's partial product against the evaluation key
// (same per-coefficient order as switchState.applyTower, hence
// bit-exact with ApplyEvk).
func (h *Hoisted) applyTower(t int) {
	sw, rec := h.sw, h.rec
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	m := sw.R.Mods[sw.dBasis[t]]
	b0, b1 := h.acc0.Coeffs[t], h.acc1.Coeffs[t]
	for k := range b0 {
		b0[k], b1[k] = 0, 0
	}
	for j := 0; j < sw.Dnum; j++ {
		up := h.ups[j].Coeffs[t]
		eb := h.evk.B[j].Coeffs[t]
		ea := h.evk.A[j].Coeffs[t]
		for k := range b0 {
			b0[k] = m.Add(b0[k], m.Mul(up[k], eb[k]))
			b1[k] = m.Add(b1[k], m.Mul(up[k], ea[k]))
		}
	}
	if rec != nil {
		rec.Stage(obs.StageApply, h.dfIdx, h.level, time.Since(t0))
	}
}

// ---- Public API ----

// Hoist runs Decompose+ModUp once over d (NTT domain over B_ℓ) on the
// calling goroutine and returns the reusable hoisted state. Call
// Release when done with it.
func (sw *Switcher) Hoist(d *ring.Poly) *Hoisted {
	return sw.hoist(nil, dataflow.MP, d)
}

// HoistParallel is Hoist with the ModUp tiles executed as a task
// graph on e, shaped by the given dataflow (a nil engine uses
// engine.Default()). Bit-exact with Hoist.
func (sw *Switcher) HoistParallel(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly) *Hoisted {
	if e == nil {
		e = engine.Default()
	}
	return sw.hoist(e, df, d)
}

func (sw *Switcher) hoist(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly) *Hoisted {
	if !d.Basis.Equal(sw.qBasis) || !d.IsNTT {
		panic(fmt.Sprintf("hks: Hoist input must be NTT-domain over %v, got %v (ntt=%v)",
			sw.qBasis, d.Basis, d.IsNTT))
	}
	k := dfKey(df)
	var h *Hoisted
	if v := sw.hoistedPools[k].Get(); v != nil {
		h = v.(*Hoisted)
	} else {
		h = newHoisted(sw, df)
	}
	h.rec = obs.Active()
	h.dfIdx = obs.DataflowSerial
	if e != nil {
		h.dfIdx = obs.Dataflow(dfKey(df))
	}
	h.d = d
	if e == nil {
		for i := 0; i < sw.ell(); i++ {
			h.hoistPrep(i)
		}
		for j := 0; j < sw.Dnum; j++ {
			for di := range sw.convDstIdx[j] {
				h.hoistConvert(j, di)
			}
		}
	} else {
		e.RunGraph(h.hoistG)
	}
	h.d = nil
	return h
}

// Release returns the state to its switcher's pool. The Hoisted must
// not be used afterwards.
func (h *Hoisted) Release() {
	h.rec = nil
	h.sw.hoistedPools[dfKey(h.df)].Put(h)
}

func (h *Hoisted) checkReplay(evk *Evk, c0, c1 *ring.Poly) {
	sw := h.sw
	if len(evk.B) != sw.Dnum || len(evk.A) != sw.Dnum {
		panic(fmt.Sprintf("hks: evk has %d digits, switcher expects %d", len(evk.B), sw.Dnum))
	}
	if !c0.Basis.Equal(sw.qBasis) || !c1.Basis.Equal(sw.qBasis) {
		panic("hks: hoisted switch output basis mismatch")
	}
	// The two outputs' tiles run concurrently with no cross dependency,
	// so aliased storage would race silently.
	if c0 == c1 || sameStorage(c0, c1) {
		panic("hks: hoisted switch outputs must not alias each other")
	}
}

func (h *Hoisted) bind(evk *Evk, c0, c1 *ring.Poly) {
	h.evk, h.out0, h.out1 = evk, c0, c1
}

func (h *Hoisted) unbind(c0, c1 *ring.Poly) {
	h.evk, h.out0, h.out1 = nil, nil, nil
	c0.IsNTT, c1.IsNTT = true, true
}

// Switch replays the hoisted ModUp against one evaluation key,
// running ApplyKey+Reduce+ModDown serially into freshly allocated
// (c0, c1) over B_ℓ. Bit-exact with KeySwitch(d, evk).
func (h *Hoisted) Switch(evk *Evk) (c0, c1 *ring.Poly) {
	c0 = h.sw.R.NewPoly(h.sw.qBasis)
	c1 = h.sw.R.NewPoly(h.sw.qBasis)
	h.SwitchInto(evk, c0, c1)
	return c0, c1
}

// SwitchInto is Switch writing into caller-provided outputs; the
// serial replay performs zero allocations.
func (h *Hoisted) SwitchInto(evk *Evk, c0, c1 *ring.Poly) {
	h.checkReplay(evk, c0, c1)
	h.bind(evk, c0, c1)
	for t := range h.sw.dBasis {
		h.applyTower(t)
	}
	h.runModDownSerial()
	h.unbind(c0, c1)
}

// SwitchParallelInto is SwitchInto with the replay executed as a task
// graph on e (nil uses engine.Default()). Bit-exact with SwitchInto.
func (h *Hoisted) SwitchParallelInto(e *engine.Engine, evk *Evk, c0, c1 *ring.Poly) {
	h.checkReplay(evk, c0, c1)
	if e == nil {
		e = engine.Default()
	}
	h.bind(evk, c0, c1)
	e.RunGraph(h.replayG)
	h.unbind(c0, c1)
}

// checkStreamed is checkReplay for the streamed path, where the evk
// arrives digit by digit instead of as one dense value.
func (h *Hoisted) checkStreamed(st *ExpandStream, c0, c1 *ring.Poly) {
	sw := h.sw
	if st.Digits() != sw.Dnum {
		panic(fmt.Sprintf("hks: streamed evk has %d digits, switcher expects %d", st.Digits(), sw.Dnum))
	}
	if !c0.Basis.Equal(sw.qBasis) || !c1.Basis.Equal(sw.qBasis) {
		panic("hks: hoisted switch output basis mismatch")
	}
	if c0 == c1 || sameStorage(c0, c1) {
		panic("hks: hoisted switch outputs must not alias each other")
	}
}

// accumulateDigit folds one streamed evk digit into the replay
// accumulators. For any fixed (tower, coefficient) the digit-ascending
// calls perform exactly applyTower's operation sequence — zero, then
// add digit 0, 1, … — and modular adds are exact, so the streamed
// replay is bit-identical to the tower-major dense one.
func (h *Hoisted) accumulateDigit(j int, eb, ea *ring.Poly) {
	sw, rec := h.sw, h.rec
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	for t := range sw.dBasis {
		m := sw.R.Mods[sw.dBasis[t]]
		up := h.ups[j].Coeffs[t]
		b0, b1 := h.acc0.Coeffs[t], h.acc1.Coeffs[t]
		ebr, ear := eb.Coeffs[t], ea.Coeffs[t]
		for k := range b0 {
			b0[k] = m.Add(b0[k], m.Mul(up[k], ebr[k]))
			b1[k] = m.Add(b1[k], m.Mul(up[k], ear[k]))
		}
	}
	if rec != nil {
		rec.Stage(obs.StageApply, h.dfIdx, h.level, time.Since(t0))
	}
}

// SwitchStreamedInto replays the hoisted ModUp against a compressed
// key's expansion stream, consuming digits in ascending order as they
// become ready, then runs ModDown into (c0, c1). Because the stream's
// producer goroutine runs ahead of the consumer, per-digit seed
// expansion overlaps both the preceding hoist phase (when the stream
// was started before Hoist/HoistParallel) and this apply loop itself.
// Bit-exact with SwitchInto of the expanded dense key.
func (h *Hoisted) SwitchStreamedInto(st *ExpandStream, c0, c1 *ring.Poly) {
	h.checkStreamed(st, c0, c1)
	h.bind(nil, c0, c1)
	for t := range h.sw.dBasis {
		b0, b1 := h.acc0.Coeffs[t], h.acc1.Coeffs[t]
		for k := range b0 {
			b0[k], b1[k] = 0, 0
		}
	}
	rec := h.rec
	var t0 time.Time
	for j := 0; j < h.sw.Dnum; j++ {
		if rec != nil {
			t0 = time.Now()
		}
		eb, ea := st.Digit(j)
		if rec != nil {
			// Time blocked on the expander: when the stream runs ahead
			// this is ~0; when the consumer outpaces it, this is the
			// expansion stall the overlap is meant to hide.
			rec.Stage(obs.StageExpand, h.dfIdx, h.level, time.Since(t0))
		}
		h.accumulateDigit(j, eb, ea)
	}
	h.runModDownSerial()
	h.unbind(c0, c1)
}

// SwitchStreamed is the full overlapped miss path for one compressed
// key: start the expansion stream, hoist d on the engine under df
// (expansion running concurrently with Decompose+ModUp), then apply
// the key digit by digit. Returns freshly allocated (c0, c1) over
// B_ℓ, bit-exact with KeySwitch(d, cevk.Expand(sw.R)).
func (sw *Switcher) SwitchStreamed(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly, cevk *CompressedEvk) (c0, c1 *ring.Poly) {
	st := cevk.StartExpand(sw.R)
	h := sw.HoistParallel(e, df, d)
	defer h.Release()
	c0 = sw.R.NewPoly(sw.qBasis)
	c1 = sw.R.NewPoly(sw.qBasis)
	h.SwitchStreamedInto(st, c0, c1)
	return c0, c1
}

// SwitchHoisted switches d (NTT domain over B_ℓ) with every key in
// evks while running Decompose+ModUp only once, serially, returning
// one freshly allocated (c0, c1) pair per key in input order. Each
// pair is bit-exact with KeySwitch(d, evks[i]).
func (sw *Switcher) SwitchHoisted(d *ring.Poly, evks []*Evk) (c0s, c1s []*ring.Poly) {
	h := sw.Hoist(d)
	defer h.Release()
	c0s = make([]*ring.Poly, len(evks))
	c1s = make([]*ring.Poly, len(evks))
	for i, evk := range evks {
		c0s[i], c1s[i] = h.Switch(evk)
	}
	return c0s, c1s
}

// SwitchHoistedParallelInto is SwitchHoisted on the engine: the shared
// ModUp runs as a df-shaped task graph, then each key's replay graph
// writes into the caller-provided c0s[i], c1s[i]. With reused outputs
// a steady-state caller performs no per-op limb allocations. Outputs
// must be pairwise non-aliased. Bit-exact with per-key KeySwitch for
// every dataflow.
func (sw *Switcher) SwitchHoistedParallelInto(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly, evks []*Evk, c0s, c1s []*ring.Poly) {
	if len(c0s) != len(evks) || len(c1s) != len(evks) {
		panic(fmt.Sprintf("hks: SwitchHoistedParallelInto got %d keys but %d/%d outputs",
			len(evks), len(c0s), len(c1s)))
	}
	if e == nil {
		e = engine.Default()
	}
	h := sw.hoist(e, df, d)
	defer h.Release()
	for i, evk := range evks {
		h.SwitchParallelInto(e, evk, c0s[i], c1s[i])
	}
}
