// Package hks implements the hybrid key-switching (HKS) algorithm of
// Han–Ki in its full-RNS form — the computation whose dataflow CiFlow
// analyzes (paper §III) — in three execution styles that are bit-exact
// with one another: the serial pipeline (KeySwitch), engine-backed
// task graphs shaped by the MP/DC/OC dataflows (SwitchParallel), and
// hoisted switching (Hoisted, SwitchHoisted), which runs the
// key-independent Decompose+ModUp half once per input and replays only
// ApplyKey+ModDown per evaluation key.
//
// Key switching converts a ciphertext component d that is decryptable
// under a secret s′ into a pair (c0, c1) decryptable under s, using a
// pre-computed evaluation key. The RNS pipeline follows paper Figure 1:
//
//	ModUp   P1 INTT      — all ℓ towers to the coefficient domain
//	        P2 BConv     — each digit extended from α to β towers
//	        P3 NTT       — extended towers back to evaluation domain
//	        P4 Apply Key — point-wise multiply with evk digits
//	        P5 Reduce    — sum the dnum partial products
//	ModDown P1 INTT      — the K P-towers of both output polys
//	        P2 BConv     — basis conversion from P to Q_ℓ
//	        P3 NTT       — converted towers back to evaluation domain
//	        P4 Sum&Scale — subtract and multiply by P⁻¹
//
// Every stage is exposed separately so that the dataflow generators in
// internal/dataflow can be validated against the real computation.
//
// A Switcher is immutable after construction and safe for concurrent
// use; execution scratch lives in pooled per-call states, so
// steady-state switching allocates nothing on the hot path. Hoisting
// is how the layers above amortize fan-out: ckks.Evaluator's diagonal
// method rotates one ciphertext many ways over a single hoisted state,
// and internal/serve coalesces concurrent *requests* on one ciphertext
// onto a shared Hoisted the same way. SwitchOps/ModUpOps count
// weighted modular operations from the live structures, backing the
// HoistedOpsSaved reuse model the throughput experiment reconciles
// against measurement.
package hks

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"ciflow/internal/bconv"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
)

// Switcher holds the precomputed state for hybrid key switching at a
// fixed level with a fixed digit count. Immutable after construction;
// safe for concurrent use.
type Switcher struct {
	R     *ring.Ring
	Level int // ℓ: towers q_0..q_ℓ are active
	Dnum  int // number of digits Q_ℓ is decomposed into
	Alpha int // towers per digit, ⌈(ℓ+1)/dnum⌉

	qBasis ring.Basis // B_ℓ
	pBasis ring.Basis // C
	dBasis ring.Basis // D_ℓ = B_ℓ ∪ C

	digits   []ring.Basis       // tower indices per digit
	upConv   []*bconv.Converter // digit towers -> complement in D_ℓ
	downConv *bconv.Converter   // P -> Q_ℓ
	gadget   [][]uint64         // gadget factor per digit per D_ℓ tower
	pInvModQ []uint64           // P^-1 mod q_i, aligned with qBasis

	// Index maps between each digit's converter destinations and the
	// extended basis, shared by every execution state.
	convDstIdx [][]int // [digit][converter dst idx] -> dBasis idx
	dstIdxOf   [][]int // [digit][dBasis idx] -> converter dst idx or -1

	// Pooled engine-execution states, one pool per dataflow shape
	// (see parallel.go), plus the pooled hoisted states of hoisted.go.
	// Internally synchronized.
	states       [3]sync.Pool
	hoistedPools [3]sync.Pool
}

// NewSwitcher prepares hybrid key switching over r at the given level
// (0-based: level+1 Q towers are active) with dnum digits. The ring
// must carry at least one P tower and P must exceed every digit
// product for the noise analysis to hold.
func NewSwitcher(r *ring.Ring, level, dnum int) (*Switcher, error) {
	if level < 0 || level >= r.NumQ {
		return nil, fmt.Errorf("hks: level %d out of range [0,%d)", level, r.NumQ)
	}
	if r.NumP == 0 {
		return nil, fmt.Errorf("hks: ring has no P towers")
	}
	ell := level + 1
	if dnum < 1 || dnum > ell {
		return nil, fmt.Errorf("hks: dnum %d out of range [1,%d]", dnum, ell)
	}
	sw := &Switcher{
		R:      r,
		Level:  level,
		Dnum:   dnum,
		Alpha:  (ell + dnum - 1) / dnum,
		qBasis: r.QBasis(level),
		pBasis: r.PBasis(),
		dBasis: r.DBasis(level),
	}

	// Digit partition: digit j covers towers [j·α, min((j+1)·α, ℓ+1)).
	for j := 0; j < dnum; j++ {
		lo := j * sw.Alpha
		hi := lo + sw.Alpha
		if hi > ell {
			hi = ell
		}
		if lo >= hi {
			return nil, fmt.Errorf("hks: dnum %d leaves digit %d empty at level %d", dnum, j, level)
		}
		sw.digits = append(sw.digits, sw.qBasis.Sub(lo, hi))
	}

	// P must dominate the largest digit product (Han–Ki condition).
	P := r.BasisProduct(sw.pBasis)
	for j, dg := range sw.digits {
		D := r.BasisProduct(dg)
		if P.Cmp(D) < 0 {
			return nil, fmt.Errorf("hks: P < digit %d product; increase K or digit count", j)
		}
	}

	// Converters: each digit to its complement in D_ℓ, and P to Q_ℓ.
	for _, dg := range sw.digits {
		var compl ring.Basis
		for _, t := range sw.dBasis {
			if !dg.Contains(t) {
				compl = append(compl, t)
			}
		}
		c, err := bconv.New(r, dg, compl)
		if err != nil {
			return nil, err
		}
		sw.upConv = append(sw.upConv, c)
	}
	var err error
	sw.downConv, err = bconv.New(r, sw.pBasis, sw.qBasis)
	if err != nil {
		return nil, err
	}

	// Gadget factors: w_j = P · Q̂_j · (Q̂_j^{-1} mod D_j) reduced into
	// every tower of D_ℓ (≡ 0 on the P towers).
	Q := r.BasisProduct(sw.qBasis)
	sw.gadget = make([][]uint64, dnum)
	for j, dg := range sw.digits {
		D := r.BasisProduct(dg)
		qHat := new(big.Int).Div(Q, D)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qHat, D), D)
		if inv == nil {
			return nil, fmt.Errorf("hks: digit %d gadget inverse does not exist", j)
		}
		w := new(big.Int).Mul(qHat, inv)
		w.Mul(w, P)
		sw.gadget[j] = make([]uint64, len(sw.dBasis))
		for i, t := range sw.dBasis {
			qi := new(big.Int).SetUint64(r.Moduli[t])
			sw.gadget[j][i] = new(big.Int).Mod(w, qi).Uint64()
		}
	}

	// P^{-1} mod q_i for the ModDown scaling.
	sw.pInvModQ = make([]uint64, len(sw.qBasis))
	for i, t := range sw.qBasis {
		qi := new(big.Int).SetUint64(r.Moduli[t])
		inv := new(big.Int).ModInverse(new(big.Int).Mod(P, qi), qi)
		if inv == nil {
			return nil, fmt.Errorf("hks: P not invertible modulo q_%d", i)
		}
		sw.pInvModQ[i] = inv.Uint64()
	}

	// dBasis index of each converter destination, per digit.
	towerToD := make(map[int]int, len(sw.dBasis))
	for t, tw := range sw.dBasis {
		towerToD[tw] = t
	}
	sw.convDstIdx = make([][]int, dnum)
	sw.dstIdxOf = make([][]int, dnum)
	for j := 0; j < dnum; j++ {
		dst := sw.upConv[j].Dst()
		sw.convDstIdx[j] = make([]int, len(dst))
		sw.dstIdxOf[j] = make([]int, len(sw.dBasis))
		for t := range sw.dstIdxOf[j] {
			sw.dstIdxOf[j][t] = -1
		}
		for di, tw := range dst {
			t := towerToD[tw]
			sw.convDstIdx[j][di] = t
			sw.dstIdxOf[j][t] = di
		}
	}
	return sw, nil
}

// QBasis returns the active Q basis B_ℓ.
func (sw *Switcher) QBasis() ring.Basis { return sw.qBasis }

// PBasis returns the auxiliary basis C.
func (sw *Switcher) PBasis() ring.Basis { return sw.pBasis }

// DBasis returns the extended basis D_ℓ.
func (sw *Switcher) DBasis() ring.Basis { return sw.dBasis }

// Digits returns the tower partition of the active Q basis.
func (sw *Switcher) Digits() []ring.Basis { return sw.digits }

// CheckInput reports, as an error, whether d is a valid key-switch
// input for this switcher: non-nil, NTT domain, over the active Q
// basis B_ℓ. The switch entry points panic on invalid inputs (a bad
// input is a programming error inside one process); request-accepting
// layers such as internal/serve use CheckInput to reject a bad request
// with an error instead of taking the whole service down.
func (sw *Switcher) CheckInput(d *ring.Poly) error {
	if d == nil {
		return fmt.Errorf("hks: nil key-switch input")
	}
	if !d.Basis.Equal(sw.qBasis) {
		return fmt.Errorf("hks: key-switch input basis %v, want %v", d.Basis, sw.qBasis)
	}
	if !d.IsNTT {
		return fmt.Errorf("hks: key-switch input must be in the NTT domain")
	}
	return nil
}

// CheckEvk reports, as an error, whether evk has the digit structure
// this switcher expects (see CheckInput for why this exists alongside
// the panicking checks).
func (sw *Switcher) CheckEvk(evk *Evk) error {
	if evk == nil {
		return fmt.Errorf("hks: nil evaluation key")
	}
	if len(evk.B) != sw.Dnum || len(evk.A) != sw.Dnum {
		return fmt.Errorf("hks: evk has %d/%d digits, switcher expects %d", len(evk.B), len(evk.A), sw.Dnum)
	}
	return nil
}

// Evk is a dense evaluation key converting ciphertexts under sOld to
// sNew: one RLWE pair (B_j, A_j) over D_ℓ per digit, in the NTT
// domain. Its size is dnum × 2 × N × (ℓ+K) words (paper §III-B P4).
// Keys produced by GenEvk also carry the expansion seed of every
// random A_j, so Compress can drop the A-half down to 32 bytes per
// digit; see CompressedEvk. Evk and CompressedEvk both implement
// KeyMaterial.
type Evk struct {
	B []*ring.Poly
	A []*ring.Poly

	// Seeds, when present (one per digit), regenerate A through
	// ring.UniformFromSeed — the handle Compress trades A for.
	Seeds []ring.Seed
}

// SizeBytes returns the *dense* resident footprint at 8 bytes per
// residue — both polynomial halves of every digit, the quantity
// Table III reports (112–360 MB at paper scale). The seed slice is
// ignored: it is metadata until Compress turns it into the resident
// form, whose (roughly halved) footprint CompressedEvk.SizeBytes
// reports. Budget accounting must use the method of the form actually
// resident, which is what the serve cache's KeyMaterial contract
// guarantees.
func (e *Evk) SizeBytes() int {
	var n int
	for i := range e.B {
		n += (len(e.B[i].Coeffs) + len(e.A[i].Coeffs)) * len(e.B[i].Coeffs[0]) * 8
	}
	return n
}

// GenEvk generates the evaluation key that re-encrypts from sOld to
// sNew. Both secrets must span the full D basis (coefficient domain).
// Each digit's uniform A-half is drawn by expanding a fresh 32-byte
// seed from the sampler's stream (recorded on the key for Compress),
// so the key remains a pure function of the sampler's seed.
func (sw *Switcher) GenEvk(sampler *ring.Sampler, sOld, sNew *ring.Poly) *Evk {
	r := sw.R
	sNewD := sNew.SubPoly(sw.dBasis).Copy()
	sOldD := sOld.SubPoly(sw.dBasis).Copy()
	r.NTT(sNewD)
	r.NTT(sOldD)

	evk := &Evk{}
	for j := 0; j < sw.Dnum; j++ {
		seed := sampler.NewSeed()
		a := r.UniformFromSeed(sw.dBasis, seed)
		a.IsNTT = true // uniform residues are uniform in either domain
		e := sampler.Gaussian(sw.dBasis)
		r.NTT(e)

		// b = -a·sNew + e + w_j ⊙ sOld  over D_ℓ.
		b := r.NewPoly(sw.dBasis)
		b.IsNTT = true
		r.MulCoeffwise(a, sNewD, b)
		r.Sub(e, b, b) // b = e - a·sNew
		ws := r.NewPoly(sw.dBasis)
		r.MulTowerScalars(sOldD, sw.gadget[j], ws)
		r.Add(b, ws, b)

		evk.B = append(evk.B, b)
		evk.A = append(evk.A, a)
		evk.Seeds = append(evk.Seeds, seed)
	}
	return evk
}

// Decompose splits d (NTT domain over B_ℓ) into its digit sub-
// polynomials (views sharing d's storage).
func (sw *Switcher) Decompose(d *ring.Poly) []*ring.Poly {
	if !d.Basis.Equal(sw.qBasis) {
		panic(fmt.Sprintf("hks: Decompose input basis %v, want %v", d.Basis, sw.qBasis))
	}
	rec := obs.Active()
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	out := make([]*ring.Poly, sw.Dnum)
	for j, dg := range sw.digits {
		out[j] = d.SubPoly(dg)
	}
	if rec != nil {
		// Views only — recorded so the serial profile shows Decompose
		// is (nearly) free, which is what makes hoisting's shared
		// Decompose+ModUp worth the state it carries.
		rec.Stage(obs.StageDecompose, obs.DataflowSerial, sw.Level, time.Since(t0))
	}
	return out
}

// ModUp runs P1–P3 for every digit of d (NTT domain over B_ℓ) and
// returns one polynomial per digit over the full D_ℓ basis, in the
// NTT domain. Towers belonging to the digit itself bypass
// INTT→BConv→NTT and reuse the input rows directly (paper Figure 1,
// red towers).
func (sw *Switcher) ModUp(d *ring.Poly) []*ring.Poly {
	r := sw.R
	rec := obs.Active()
	digits := sw.Decompose(d)
	out := make([]*ring.Poly, sw.Dnum)
	var t0, t1, t2 time.Time
	for j, dj := range digits {
		if rec != nil {
			t0 = time.Now()
		}
		// P1: INTT the digit's towers (on a copy; the originals stay
		// in the evaluation domain for the bypass path).
		coeff := dj.Copy()
		r.INTT(coeff)
		if rec != nil {
			t1 = time.Now()
			rec.Kernel(obs.KernelNTT, obs.DataflowSerial, t1.Sub(t0))
		}

		// P2: basis-convert to the complement towers.
		conv := r.NewPoly(sw.upConv[j].Dst())
		sw.upConv[j].Convert(coeff, conv)
		if rec != nil {
			t2 = time.Now()
			rec.Kernel(obs.KernelBConv, obs.DataflowSerial, t2.Sub(t1))
		}

		// P3: NTT the converted towers.
		r.NTT(conv)
		if rec != nil {
			rec.Kernel(obs.KernelNTT, obs.DataflowSerial, time.Since(t2))
		}

		// Assemble the D_ℓ polynomial: bypass towers from the input,
		// converted towers from P2/P3.
		up := r.NewPoly(sw.dBasis)
		up.IsNTT = true
		for i, t := range sw.dBasis {
			var src []uint64
			if dj.Basis.Contains(t) {
				src = dj.Tower(t)
			} else {
				src = conv.Tower(t)
			}
			copy(up.Coeffs[i], src)
		}
		out[j] = up
		if rec != nil {
			rec.Stage(obs.StageModUp, obs.DataflowSerial, sw.Level, time.Since(t0))
		}
	}
	return out
}

// ApplyEvk runs P4+P5: point-wise multiply each ModUp digit with the
// evk pair and accumulate, returning two polynomials over D_ℓ (NTT).
func (sw *Switcher) ApplyEvk(ups []*ring.Poly, evk *Evk) (c0, c1 *ring.Poly) {
	r := sw.R
	rec := obs.Active()
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	c0 = r.NewPoly(sw.dBasis)
	c1 = r.NewPoly(sw.dBasis)
	c0.IsNTT, c1.IsNTT = true, true
	for j, up := range ups {
		r.MulAddCoeffwise(up, evk.B[j], c0)
		r.MulAddCoeffwise(up, evk.A[j], c1)
	}
	if rec != nil {
		rec.Stage(obs.StageApply, obs.DataflowSerial, sw.Level, time.Since(t0))
	}
	return c0, c1
}

// ModDown reduces c (NTT domain over D_ℓ) back to B_ℓ:
// out = (c − Conv_{P→Q}([c]_P)) · P⁻¹. The conversion uses the exact
// (float-corrected) variant so the P-part rounds to the nearest
// multiple rather than adding a P-sized overshoot.
func (sw *Switcher) ModDown(c *ring.Poly) *ring.Poly {
	r := sw.R
	if !c.Basis.Equal(sw.dBasis) {
		panic(fmt.Sprintf("hks: ModDown input basis %v, want %v", c.Basis, sw.dBasis))
	}
	rec := obs.Active()
	var t0, t1, t2, t3 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	// P1: INTT the K P-towers.
	pPart := c.SubPoly(sw.pBasis).Copy()
	r.INTT(pPart)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelNTT, obs.DataflowSerial, t1.Sub(t0))
	}

	// P2: convert P -> Q_ℓ.
	conv := r.NewPoly(sw.qBasis)
	sw.downConv.ConvertExact(pPart, conv)
	if rec != nil {
		t2 = time.Now()
		rec.Kernel(obs.KernelBConv, obs.DataflowSerial, t2.Sub(t1))
	}

	// P3: back to the evaluation domain.
	r.NTT(conv)
	if rec != nil {
		t3 = time.Now()
		rec.Kernel(obs.KernelNTT, obs.DataflowSerial, t3.Sub(t2))
	}

	// P4: out = (c_Q - conv) · P^{-1} per tower.
	out := r.NewPoly(sw.qBasis)
	out.IsNTT = true
	for i, t := range sw.qBasis {
		m := r.Mods[t]
		cRow := c.Tower(t)
		vRow := conv.Coeffs[i]
		oRow := out.Coeffs[i]
		pInv := sw.pInvModQ[i]
		for k := range oRow {
			oRow[k] = m.Mul(m.Sub(cRow[k], vRow[k]), pInv)
		}
	}
	if rec != nil {
		rec.Stage(obs.StageModDown, obs.DataflowSerial, sw.Level, time.Since(t0))
	}
	return out
}

// KeySwitch runs the complete HKS pipeline on d (NTT domain over B_ℓ),
// returning (c0, c1) over B_ℓ such that c0 + c1·s ≈ d·s′.
func (sw *Switcher) KeySwitch(d *ring.Poly, evk *Evk) (c0, c1 *ring.Poly) {
	ups := sw.ModUp(d)
	d0, d1 := sw.ApplyEvk(ups, evk)
	return sw.ModDown(d0), sw.ModDown(d1)
}
