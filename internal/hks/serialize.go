package hks

import (
	"encoding/binary"
	"fmt"
	"io"

	"ciflow/internal/ring"
)

// Evaluation-key serialization: a digit count header followed by the
// (B, A) polynomial pairs in digit order (see ring.WritePoly for the
// polynomial wire format). At paper scale an evk is 99–360 MB
// (Table III), so keys are produced once and shipped, exactly what
// this format supports.

// WriteEvk serializes evk.
func (sw *Switcher) WriteEvk(w io.Writer, evk *Evk) error {
	if len(evk.B) != len(evk.A) {
		return fmt.Errorf("hks: malformed evk: %d B vs %d A digits", len(evk.B), len(evk.A))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(evk.B))); err != nil {
		return err
	}
	for j := range evk.B {
		if err := sw.R.WritePoly(w, evk.B[j]); err != nil {
			return err
		}
		if err := sw.R.WritePoly(w, evk.A[j]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvk deserializes an evk written by WriteEvk, validating that the
// digit count and bases match this switcher.
func (sw *Switcher) ReadEvk(r io.Reader) (*Evk, error) {
	var dnum uint32
	if err := binary.Read(r, binary.LittleEndian, &dnum); err != nil {
		return nil, fmt.Errorf("hks: short evk header: %w", err)
	}
	if int(dnum) != sw.Dnum {
		return nil, fmt.Errorf("hks: evk has %d digits, switcher expects %d", dnum, sw.Dnum)
	}
	evk := &Evk{}
	for j := 0; j < int(dnum); j++ {
		b, err := sw.R.ReadPoly(r)
		if err != nil {
			return nil, err
		}
		a, err := sw.R.ReadPoly(r)
		if err != nil {
			return nil, err
		}
		for _, p := range []*ring.Poly{b, a} {
			if !p.Basis.Equal(sw.dBasis) {
				return nil, fmt.Errorf("hks: evk digit %d basis %v, want %v", j, p.Basis, sw.dBasis)
			}
			if !p.IsNTT {
				return nil, fmt.Errorf("hks: evk digit %d not in NTT domain", j)
			}
		}
		evk.B = append(evk.B, b)
		evk.A = append(evk.A, a)
	}
	return evk, nil
}
