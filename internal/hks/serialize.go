package hks

import (
	"encoding/binary"
	"fmt"
	"io"

	"ciflow/internal/ring"
)

// Evaluation-key serialization: a digit count header followed by the
// (B, A) polynomial pairs in digit order (see ring.WritePoly for the
// polynomial wire format). At paper scale an evk is 99–360 MB
// (Table III), so keys are produced once and shipped, exactly what
// this format supports. The compressed frame
// (WriteCompressedEvk/ReadCompressedEvk) ships each digit as its
// 32-byte expansion seed plus the dense B polynomial — on the wire,
// exactly the halving that CompressedEvk buys in memory.

// WriteEvk serializes evk.
func (sw *Switcher) WriteEvk(w io.Writer, evk *Evk) error {
	if len(evk.B) != len(evk.A) {
		return fmt.Errorf("hks: malformed evk: %d B vs %d A digits", len(evk.B), len(evk.A))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(evk.B))); err != nil {
		return err
	}
	for j := range evk.B {
		if err := sw.R.WritePoly(w, evk.B[j]); err != nil {
			return err
		}
		if err := sw.R.WritePoly(w, evk.A[j]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEvk deserializes an evk written by WriteEvk, validating that the
// digit count and bases match this switcher.
func (sw *Switcher) ReadEvk(r io.Reader) (*Evk, error) {
	var dnum uint32
	if err := binary.Read(r, binary.LittleEndian, &dnum); err != nil {
		return nil, fmt.Errorf("hks: short evk header: %w", err)
	}
	if int(dnum) != sw.Dnum {
		return nil, fmt.Errorf("hks: evk has %d digits, switcher expects %d", dnum, sw.Dnum)
	}
	evk := &Evk{}
	for j := 0; j < int(dnum); j++ {
		b, err := sw.R.ReadPoly(r)
		if err != nil {
			return nil, err
		}
		a, err := sw.R.ReadPoly(r)
		if err != nil {
			return nil, err
		}
		for _, p := range []*ring.Poly{b, a} {
			if !p.Basis.Equal(sw.dBasis) {
				return nil, fmt.Errorf("hks: evk digit %d basis %v, want %v", j, p.Basis, sw.dBasis)
			}
			if !p.IsNTT {
				return nil, fmt.Errorf("hks: evk digit %d not in NTT domain", j)
			}
		}
		evk.B = append(evk.B, b)
		evk.A = append(evk.A, a)
	}
	return evk, nil
}

// WriteCompressedEvk serializes c: the digit count, then per digit the
// 32-byte expansion seed followed by the dense B polynomial.
func (sw *Switcher) WriteCompressedEvk(w io.Writer, c *CompressedEvk) error {
	if len(c.B) != len(c.Seeds) {
		return fmt.Errorf("hks: malformed compressed evk: %d B vs %d seed digits", len(c.B), len(c.Seeds))
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(c.B))); err != nil {
		return err
	}
	for j := range c.B {
		if _, err := w.Write(c.Seeds[j][:]); err != nil {
			return err
		}
		if err := sw.R.WritePoly(w, c.B[j]); err != nil {
			return err
		}
	}
	return nil
}

// ReadCompressedEvk deserializes a compressed evk written by
// WriteCompressedEvk, validating the digit count and bases exactly as
// ReadEvk does. The key is returned still compressed; the caller
// chooses when (and how — Expand or StartExpand) to pay for the
// A-half.
func (sw *Switcher) ReadCompressedEvk(r io.Reader) (*CompressedEvk, error) {
	var dnum uint32
	if err := binary.Read(r, binary.LittleEndian, &dnum); err != nil {
		return nil, fmt.Errorf("hks: short compressed evk header: %w", err)
	}
	if int(dnum) != sw.Dnum {
		return nil, fmt.Errorf("hks: compressed evk has %d digits, switcher expects %d", dnum, sw.Dnum)
	}
	c := &CompressedEvk{}
	for j := 0; j < int(dnum); j++ {
		var seed ring.Seed
		if _, err := io.ReadFull(r, seed[:]); err != nil {
			return nil, fmt.Errorf("hks: short compressed evk digit %d seed: %w", j, err)
		}
		b, err := sw.R.ReadPoly(r)
		if err != nil {
			return nil, err
		}
		if !b.Basis.Equal(sw.dBasis) {
			return nil, fmt.Errorf("hks: compressed evk digit %d basis %v, want %v", j, b.Basis, sw.dBasis)
		}
		if !b.IsNTT {
			return nil, fmt.Errorf("hks: compressed evk digit %d not in NTT domain", j)
		}
		c.Seeds = append(c.Seeds, seed)
		c.B = append(c.B, b)
	}
	return c, nil
}
