package hks

import (
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/ring"
)

func benchSetup(b *testing.B, n, numQ, dnum int) (*ring.Ring, *Switcher, *Evk, *ring.Poly) {
	b.Helper()
	r, err := ring.NewRingGenerated(n, numQ, 40, 3, 41)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := NewSwitcher(r, numQ-1, dnum)
	if err != nil {
		b.Fatal(err)
	}
	s := ring.NewSampler(r, 1)
	full := r.DBasis(r.NumQ - 1)
	sOld := s.Ternary(full)
	sNew := s.Ternary(full)
	evk := sw.GenEvk(s, sOld, sNew)
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	return r, sw, evk, d
}

func BenchmarkKeySwitchN4096(b *testing.B) {
	_, sw, evk, d := benchSetup(b, 4096, 6, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.KeySwitch(d, evk)
	}
}

func BenchmarkModUpN4096(b *testing.B) {
	_, sw, _, d := benchSetup(b, 4096, 6, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ModUp(d)
	}
}

func BenchmarkModDownN4096(b *testing.B) {
	_, sw, evk, d := benchSetup(b, 4096, 6, 3)
	ups := sw.ModUp(d)
	c0, _ := sw.ApplyEvk(ups, evk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ModDown(c0)
	}
}

func BenchmarkKeySwitchManyHoisted8(b *testing.B) {
	r, sw, _, d := benchSetup(b, 2048, 6, 3)
	s := ring.NewSampler(r, 2)
	full := r.DBasis(r.NumQ - 1)
	sk := s.Ternary(full)
	evks := make([]*Evk, 8)
	for i := range evks {
		evks[i] = sw.GenEvk(s, s.Ternary(full), sk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.KeySwitchMany(d, evks)
	}
}

func BenchmarkKeySwitch8Individual(b *testing.B) {
	r, sw, _, d := benchSetup(b, 2048, 6, 3)
	s := ring.NewSampler(r, 2)
	full := r.DBasis(r.NumQ - 1)
	sk := s.Ternary(full)
	evks := make([]*Evk, 8)
	for i := range evks {
		evks[i] = sw.GenEvk(s, s.Ternary(full), sk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, evk := range evks {
			sw.KeySwitch(d, evk)
		}
	}
}

// Engine-backed benchmarks: the same switch executed as MP/DC/OC task
// graphs on a GOMAXPROCS-sized worker pool. Compare against
// BenchmarkKeySwitchN4096 for the dataflow's wall-clock effect.

func benchSwitchParallel(b *testing.B, df dataflow.Dataflow) {
	r, sw, evk, d := benchSetup(b, 4096, 6, 3)
	e := engine.New(0)
	defer e.Close()
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SwitchParallelInto(e, df, d, evk, c0, c1)
	}
}

func BenchmarkSwitchParallelMPN4096(b *testing.B) { benchSwitchParallel(b, dataflow.MP) }
func BenchmarkSwitchParallelDCN4096(b *testing.B) { benchSwitchParallel(b, dataflow.DC) }
func BenchmarkSwitchParallelOCN4096(b *testing.B) { benchSwitchParallel(b, dataflow.OC) }

// Hoisted benchmarks: 8 switches of one input with shared ModUp,
// engine-backed. Compare BenchmarkSwitchHoistedParallel8 against
// BenchmarkSwitchParallel8Individual for the measured amortization
// (the model predicts HoistedSpeedupModel(8)).

func benchHoistedSetup(b *testing.B) (*ring.Ring, *Switcher, []*Evk, *ring.Poly) {
	b.Helper()
	r, sw, _, d := benchSetup(b, 4096, 6, 3)
	s := ring.NewSampler(r, 2)
	full := r.DBasis(r.NumQ - 1)
	sk := s.Ternary(full)
	evks := make([]*Evk, 8)
	for i := range evks {
		evks[i] = sw.GenEvk(s, s.Ternary(full), sk)
	}
	return r, sw, evks, d
}

func BenchmarkSwitchHoistedParallel8(b *testing.B) {
	r, sw, evks, d := benchHoistedSetup(b)
	e := engine.New(0)
	defer e.Close()
	c0s := make([]*ring.Poly, len(evks))
	c1s := make([]*ring.Poly, len(evks))
	for i := range c0s {
		c0s[i] = r.NewPoly(sw.QBasis())
		c1s[i] = r.NewPoly(sw.QBasis())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.SwitchHoistedParallelInto(e, dataflow.MP, d, evks, c0s, c1s)
	}
}

func BenchmarkSwitchParallel8Individual(b *testing.B) {
	r, sw, evks, d := benchHoistedSetup(b)
	e := engine.New(0)
	defer e.Close()
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, evk := range evks {
			sw.SwitchParallelInto(e, dataflow.MP, d, evk, c0, c1)
		}
	}
}
