package hks

// Engine-backed hybrid key switching: the same P1–P5 + ModDown
// pipeline as KeySwitch, decomposed into per-tower / per-digit tiles
// and executed as a dependency graph on the internal/engine worker
// pool. The graph shape follows the dataflow the caller selects —
// the execution-time counterpart of the schedules internal/dataflow
// generates for the RPU model:
//
//   - MP (Max-Parallel): every stage fans out over all ℓ·dnum
//     extended towers; stages meet at per-tower dependency edges.
//   - DC (Digit-Centric): one task per digit runs the digit's whole
//     ModUp pipeline (INTT → BConv → NTT); parallelism is across the
//     dnum digits.
//   - OC (Output-Centric): after the shared per-tower INTT pass, one
//     task per extended tower produces that tower's finished ApplyKey
//     accumulation, converting each digit's contribution on the fly.
//     OCF schedules identically (its ModDown fusion is a memory-
//     traffic concept; the engine's ModDown is already fused in).
//
// All three graphs execute exactly the operations of the serial path
// in the same per-coefficient order, so their outputs are bit-exact
// with KeySwitch — the property the equivalence tests assert.
//
// Per-switch scratch (limb rows, accumulators, the graph itself) lives
// in a pooled switchState, so steady-state switching does no per-op
// allocation on the hot path.

import (
	"fmt"
	"time"

	"ciflow/internal/bconv"
	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
)

// sameStorage reports whether two polynomials over the same basis
// share their first residue row (the cheap aliasing check for polys
// whose bases were already validated equal).
func sameStorage(a, b *ring.Poly) bool {
	return len(a.Coeffs) > 0 && len(a.Coeffs[0]) > 0 &&
		len(b.Coeffs) > 0 && len(b.Coeffs[0]) > 0 &&
		&a.Coeffs[0][0] == &b.Coeffs[0][0]
}

// dfKey maps a dataflow to its state-pool slot. OCF executes as OC.
func dfKey(df dataflow.Dataflow) int {
	switch df {
	case dataflow.MP:
		return 0
	case dataflow.DC:
		return 1
	case dataflow.OC, dataflow.OCF:
		return 2
	}
	panic(fmt.Sprintf("hks: unknown dataflow %v", df))
}

// downState holds the ApplyKey accumulators, ModDown scratch, and the
// bound output polynomials shared by every engine-execution state
// (the per-rotation switchState and the hoisted replay of hoisted.go).
type downState struct {
	sw *Switcher

	// Rebound per run.
	out0, out1 *ring.Poly

	// Observability binding: rec is obs.Active() captured at the entry
	// point (nil when profiling is off — the tiles then skip all clock
	// reads), dfIdx the dataflow label, level the switcher's level.
	rec   *obs.Recorder
	dfIdx obs.Dataflow
	level int

	// Scratch, allocated once per state.
	acc0 *ring.Poly // ApplyKey accumulators over D
	acc1 *ring.Poly
	yP   [2][][]uint64 // per output poly: K scaled ModDown rows
	u    [2][]uint64   // per output poly: overshoot estimates
}

// initDown allocates the accumulator and ModDown scratch.
func (ds *downState) initDown(sw *Switcher) {
	ds.sw = sw
	ds.level = sw.Level
	n, kp := sw.R.N, len(sw.pBasis)
	ds.acc0 = sw.R.NewPoly(sw.dBasis)
	ds.acc1 = sw.R.NewPoly(sw.dBasis)
	ds.acc0.IsNTT, ds.acc1.IsNTT = true, true
	for p := 0; p < 2; p++ {
		ds.yP[p] = make([][]uint64, kp)
		for i := range ds.yP[p] {
			ds.yP[p][i] = make([]uint64, n)
		}
		ds.u[p] = make([]uint64, n)
	}
}

// switchState is one in-flight parallel key switch: the task graph
// for one dataflow plus all scratch it touches. States are pooled on
// the Switcher; the graph is built once and rebound to fresh inputs
// each run.
type switchState struct {
	downState
	g *engine.Graph

	// Rebound per run.
	d   *ring.Poly
	evk *Evk

	// Scratch, allocated once per state.
	y        [][]uint64   // ℓ rows: INTT'd + ŷ-scaled digit towers
	convRows [][][]uint64 // [dnum][|D|] converted-tower rows (nil at bypass; MP/DC)
	ocTmp    [][]uint64   // [|D|] per-output-tower conversion scratch (OC)
}

// overshootChunk tiles the ModDown overshoot estimate with the same
// granularity as the bconv-internal parallel path.
const overshootChunk = bconv.OvershootChunk

func (sw *Switcher) ell() int { return len(sw.qBasis) }

// digitLo returns the first Q-tower index of digit j; digits are
// contiguous alpha-sized blocks (the last may be shorter).
func (sw *Switcher) digitLo(j int) int { return j * sw.Alpha }

func (sw *Switcher) digitHi(j int) int {
	hi := (j + 1) * sw.Alpha
	if hi > sw.ell() {
		hi = sw.ell()
	}
	return hi
}

// bypass reports whether extended tower t (a dBasis index) is digit
// j's own tower, which skips INTT→BConv→NTT and reuses the input row
// (paper Figure 1, red towers).
func (sw *Switcher) bypass(j, t int) bool {
	return t < sw.ell() && t/sw.Alpha == j
}

func newSwitchState(sw *Switcher, df dataflow.Dataflow) *switchState {
	ell, dB := sw.ell(), len(sw.dBasis)
	n := sw.R.N
	st := &switchState{g: engine.NewGraph()}
	st.initDown(sw)

	st.y = make([][]uint64, ell)
	for i := range st.y {
		st.y[i] = make([]uint64, n)
	}

	switch dfKey(df) {
	case 0, 1: // MP, DC share the converted-row layout
		st.convRows = make([][][]uint64, sw.Dnum)
		for j := range st.convRows {
			st.convRows[j] = make([][]uint64, dB)
			for _, t := range sw.convDstIdx[j] {
				st.convRows[j][t] = make([]uint64, n)
			}
		}
	case 2: // OC converts in place of the consuming output tower
		st.ocTmp = make([][]uint64, dB)
		for t := range st.ocTmp {
			st.ocTmp[t] = make([]uint64, n)
		}
	}

	switch dfKey(df) {
	case 0:
		st.buildMP()
	case 1:
		st.buildDC()
	case 2:
		st.buildOC()
	}
	return st
}

// ---- Tile bodies (run inside graph nodes) ----

// digitY returns the ŷ rows of digit j, aligned with the converter's
// source indices.
func (st *switchState) digitY(j int) [][]uint64 {
	return st.y[st.sw.digitLo(j):st.sw.digitHi(j)]
}

// upRow returns digit j's ModUp row for extended tower t: the input
// row itself on the bypass path, the converted row otherwise.
func (st *switchState) upRow(j, t int) []uint64 {
	if st.sw.bypass(j, t) {
		return st.d.Coeffs[t]
	}
	return st.convRows[j][t]
}

// prepTower is ModUp P1 for Q tower i plus the digit's ŷ scaling
// (folded here so it runs exactly once per tower, as the dataflow
// model's inttWithPreOps charges it).
func (st *switchState) prepTower(i int) {
	sw, rec := st.sw, st.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	row := st.y[i]
	copy(row, st.d.Coeffs[i])
	sw.R.INTTTower(sw.qBasis[i], row)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelNTT, st.dfIdx, t1.Sub(t0))
	}
	j := i / sw.Alpha
	sw.upConv[j].YScaleRow(i-sw.digitLo(j), row, row)
	if rec != nil {
		now := time.Now()
		rec.Kernel(obs.KernelBConv, st.dfIdx, now.Sub(t1))
		rec.Stage(obs.StageModUp, st.dfIdx, st.level, now.Sub(t0))
	}
}

// convertTower is ModUp P2+P3 for one (digit, destination tower) tile.
func (st *switchState) convertTower(j, di int) {
	sw, rec := st.sw, st.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	t := sw.convDstIdx[j][di]
	row := st.convRows[j][t]
	sw.upConv[j].ConvertTowerFromY(st.digitY(j), di, row)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelBConv, st.dfIdx, t1.Sub(t0))
	}
	sw.R.NTTTower(sw.dBasis[t], row)
	if rec != nil {
		now := time.Now()
		rec.Kernel(obs.KernelNTT, st.dfIdx, now.Sub(t1))
		rec.Stage(obs.StageModUp, st.dfIdx, st.level, now.Sub(t0))
	}
}

// applyTower is ModUp P4+P5 for one extended tower: accumulate every
// digit's partial product against the evaluation key.
func (st *switchState) applyTower(t int) {
	sw, rec := st.sw, st.rec
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	m := sw.R.Mods[sw.dBasis[t]]
	b0, b1 := st.acc0.Coeffs[t], st.acc1.Coeffs[t]
	for k := range b0 {
		b0[k], b1[k] = 0, 0
	}
	for j := 0; j < sw.Dnum; j++ {
		up := st.upRow(j, t)
		eb := st.evk.B[j].Coeffs[t]
		ea := st.evk.A[j].Coeffs[t]
		for k := range b0 {
			b0[k] = m.Add(b0[k], m.Mul(up[k], eb[k]))
			b1[k] = m.Add(b1[k], m.Mul(up[k], ea[k]))
		}
	}
	if rec != nil {
		rec.Stage(obs.StageApply, st.dfIdx, st.level, time.Since(t0))
	}
}

// digitPipeline is the DC tile: one digit's entire ModUp (P1–P3) run
// serially, so parallelism is across digits only. Its prep and
// convert tiles self-record, so the pipeline itself adds no timing.
func (st *switchState) digitPipeline(j int) {
	for i := st.sw.digitLo(j); i < st.sw.digitHi(j); i++ {
		st.prepTower(i)
	}
	for di := range st.sw.convDstIdx[j] {
		st.convertTower(j, di)
	}
}

// ocTower is the OC tile: produce extended tower t's finished ApplyKey
// accumulation, converting each digit's contribution on the fly. The
// tile interleaves two logical stages, so its timing splits: the
// on-the-fly conversions count as ModUp, the accumulation as Apply.
func (st *switchState) ocTower(t int) {
	sw, rec := st.sw, st.rec
	m := sw.R.Mods[sw.dBasis[t]]
	b0, b1 := st.acc0.Coeffs[t], st.acc1.Coeffs[t]
	for k := range b0 {
		b0[k], b1[k] = 0, 0
	}
	var convDur, applyDur time.Duration
	for j := 0; j < sw.Dnum; j++ {
		var row []uint64
		if sw.bypass(j, t) {
			row = st.d.Coeffs[t]
		} else {
			var t0, t1 time.Time
			if rec != nil {
				t0 = time.Now()
			}
			row = st.ocTmp[t]
			sw.upConv[j].ConvertTowerFromY(st.digitY(j), sw.dstIdxOf[j][t], row)
			if rec != nil {
				t1 = time.Now()
				rec.Kernel(obs.KernelBConv, st.dfIdx, t1.Sub(t0))
			}
			sw.R.NTTTower(sw.dBasis[t], row)
			if rec != nil {
				now := time.Now()
				rec.Kernel(obs.KernelNTT, st.dfIdx, now.Sub(t1))
				convDur += now.Sub(t0)
			}
		}
		var a0 time.Time
		if rec != nil {
			a0 = time.Now()
		}
		eb := st.evk.B[j].Coeffs[t]
		ea := st.evk.A[j].Coeffs[t]
		for k := range b0 {
			b0[k] = m.Add(b0[k], m.Mul(row[k], eb[k]))
			b1[k] = m.Add(b1[k], m.Mul(row[k], ea[k]))
		}
		if rec != nil {
			applyDur += time.Since(a0)
		}
	}
	if rec != nil {
		rec.Stage(obs.StageModUp, st.dfIdx, st.level, convDur)
		rec.Stage(obs.StageApply, st.dfIdx, st.level, applyDur)
	}
}

func (ds *downState) accPoly(p int) *ring.Poly {
	if p == 0 {
		return ds.acc0
	}
	return ds.acc1
}

func (ds *downState) outPoly(p int) *ring.Poly {
	if p == 0 {
		return ds.out0
	}
	return ds.out1
}

// downPrepTower is ModDown P1 for P tower i of output poly p, plus the
// ŷ scaling of the P→Q conversion.
func (ds *downState) downPrepTower(p, i int) {
	sw, rec := ds.sw, ds.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	row := ds.yP[p][i]
	copy(row, ds.accPoly(p).Coeffs[sw.ell()+i])
	sw.R.INTTTower(sw.pBasis[i], row)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelNTT, ds.dfIdx, t1.Sub(t0))
	}
	sw.downConv.YScaleRow(i, row, row)
	if rec != nil {
		now := time.Now()
		rec.Kernel(obs.KernelBConv, ds.dfIdx, now.Sub(t1))
		rec.Stage(obs.StageModDown, ds.dfIdx, ds.level, now.Sub(t0))
	}
}

// downOvershoot estimates the exact-conversion overshoot for one
// coefficient chunk of output poly p.
func (ds *downState) downOvershoot(p, from, to int) {
	rec := ds.rec
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	ds.sw.downConv.Overshoot(ds.yP[p], ds.u[p], from, to)
	if rec != nil {
		d := time.Since(t0)
		rec.Kernel(obs.KernelBConv, ds.dfIdx, d)
		rec.Stage(obs.StageModDown, ds.dfIdx, ds.level, d)
	}
}

// downOutTower is ModDown P2–P4 for Q tower i of output poly p:
// exact-convert the P part into tower i, NTT it, and fold the
// subtract-and-scale by P⁻¹ in place.
func (ds *downState) downOutTower(p, i int) {
	sw, rec := ds.sw, ds.rec
	var t0, t1 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	dst := ds.outPoly(p).Coeffs[i]
	sw.downConv.ConvertExactTowerFromY(ds.yP[p], ds.u[p], i, dst)
	if rec != nil {
		t1 = time.Now()
		rec.Kernel(obs.KernelBConv, ds.dfIdx, t1.Sub(t0))
	}
	sw.R.NTTTower(sw.qBasis[i], dst)
	if rec != nil {
		rec.Kernel(obs.KernelNTT, ds.dfIdx, time.Since(t1))
	}
	m := sw.R.Mods[sw.qBasis[i]]
	cRow := ds.accPoly(p).Coeffs[i]
	pInv := sw.pInvModQ[i]
	for k := range dst {
		dst[k] = m.Mul(m.Sub(cRow[k], dst[k]), pInv)
	}
	if rec != nil {
		rec.Stage(obs.StageModDown, ds.dfIdx, ds.level, time.Since(t0))
	}
}

// runModDownSerial executes the same ModDown tiles as buildModDown on
// the calling goroutine, in ascending tile order — bit-exact with the
// graph execution (the chunked overshoot estimate runs in the same
// ascending order either way).
func (ds *downState) runModDownSerial() {
	sw := ds.sw
	ell, kp, n := sw.ell(), len(sw.pBasis), sw.R.N
	for p := 0; p < 2; p++ {
		for i := 0; i < kp; i++ {
			ds.downPrepTower(p, i)
		}
		for from := 0; from < n; from += overshootChunk {
			to := from + overshootChunk
			if to > n {
				to = n
			}
			ds.downOvershoot(p, from, to)
		}
		for i := 0; i < ell; i++ {
			ds.downOutTower(p, i)
		}
	}
}

// ---- Graph builders ----

// buildModDown appends the ModDown stages for both output polys to g.
// accNode[t] is the graph node that finished extended tower t of the
// accumulators.
func (ds *downState) buildModDown(g *engine.Graph, accNode []int) {
	sw := ds.sw
	ell, kp, n := sw.ell(), len(sw.pBasis), sw.R.N
	chunks := (n + overshootChunk - 1) / overshootChunk
	for p := 0; p < 2; p++ {
		prep := make([]int, kp)
		for i := 0; i < kp; i++ {
			prep[i] = g.NodeNamed("down.prep", func() { ds.downPrepTower(p, i) }, accNode[ell+i])
		}
		over := make([]int, chunks)
		for ci := 0; ci < chunks; ci++ {
			from := ci * overshootChunk
			to := from + overshootChunk
			if to > n {
				to = n
			}
			over[ci] = g.NodeNamed("down.over", func() { ds.downOvershoot(p, from, to) }, prep...)
		}
		for i := 0; i < ell; i++ {
			g.NodeNamed("down.out", func() { ds.downOutTower(p, i) }, append([]int{accNode[i]}, over...)...)
		}
	}
}

// buildMP wires the Max-Parallel graph: per-tower tiles at every
// stage, synchronized only by true data dependencies.
func (st *switchState) buildMP() {
	sw := st.sw
	ell, dB := sw.ell(), len(sw.dBasis)

	prep := make([]int, ell)
	for i := 0; i < ell; i++ {
		prep[i] = st.g.NodeNamed("modup.prep", func() { st.prepTower(i) })
	}
	conv := make([][]int, sw.Dnum) // [digit][dBasis idx] -> node or -1
	for j := 0; j < sw.Dnum; j++ {
		conv[j] = make([]int, dB)
		for t := range conv[j] {
			conv[j][t] = -1
		}
		deps := prep[sw.digitLo(j):sw.digitHi(j)]
		for di, t := range sw.convDstIdx[j] {
			conv[j][t] = st.g.NodeNamed("modup.conv", func() { st.convertTower(j, di) }, deps...)
		}
	}
	acc := make([]int, dB)
	var deps []int
	for t := 0; t < dB; t++ {
		deps = deps[:0]
		for j := 0; j < sw.Dnum; j++ {
			if conv[j][t] >= 0 {
				deps = append(deps, conv[j][t])
			}
		}
		acc[t] = st.g.NodeNamed("apply", func() { st.applyTower(t) }, deps...)
	}
	st.buildModDown(st.g, acc)
}

// buildDC wires the Digit-Centric graph: one node per digit runs that
// digit's whole ModUp pipeline.
func (st *switchState) buildDC() {
	sw := st.sw
	dB := len(sw.dBasis)
	dig := make([]int, sw.Dnum)
	for j := 0; j < sw.Dnum; j++ {
		dig[j] = st.g.NodeNamed("modup.digit", func() { st.digitPipeline(j) })
	}
	acc := make([]int, dB)
	var deps []int
	for t := 0; t < dB; t++ {
		deps = deps[:0]
		for j := 0; j < sw.Dnum; j++ {
			if !sw.bypass(j, t) {
				deps = append(deps, dig[j])
			}
		}
		acc[t] = st.g.NodeNamed("apply", func() { st.applyTower(t) }, deps...)
	}
	st.buildModDown(st.g, acc)
}

// buildOC wires the Output-Centric graph: after the shared INTT pass,
// one node per extended tower finishes that output tower end to end.
func (st *switchState) buildOC() {
	sw := st.sw
	ell, dB := sw.ell(), len(sw.dBasis)
	prep := make([]int, ell)
	for i := 0; i < ell; i++ {
		prep[i] = st.g.NodeNamed("modup.prep", func() { st.prepTower(i) })
	}
	acc := make([]int, dB)
	var deps []int
	for t := 0; t < dB; t++ {
		deps = deps[:0]
		for i := 0; i < ell; i++ {
			// Tower t consumes every digit's ŷ rows except its own
			// digit's (bypass); P towers consume them all.
			if t >= ell || i/sw.Alpha != t/sw.Alpha {
				deps = append(deps, prep[i])
			}
		}
		acc[t] = st.g.NodeNamed("oc", func() { st.ocTower(t) }, deps...)
	}
	st.buildModDown(st.g, acc)
}

// ---- Public API ----

func (sw *Switcher) stateFor(df dataflow.Dataflow) *switchState {
	k := dfKey(df)
	if v := sw.states[k].Get(); v != nil {
		return v.(*switchState)
	}
	return newSwitchState(sw, df)
}

// SwitchParallel runs the complete HKS pipeline on d (NTT domain over
// B_ℓ) as a task graph on e, shaped by the given dataflow, returning
// freshly allocated (c0, c1) over B_ℓ. The result is bit-exact with
// KeySwitch for every dataflow. A nil engine uses engine.Default().
// Safe for concurrent use on one Switcher.
func (sw *Switcher) SwitchParallel(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly, evk *Evk) (c0, c1 *ring.Poly) {
	c0 = sw.R.NewPoly(sw.qBasis)
	c1 = sw.R.NewPoly(sw.qBasis)
	sw.SwitchParallelInto(e, df, d, evk, c0, c1)
	return c0, c1
}

// SwitchParallelInto is SwitchParallel writing into caller-provided
// output polynomials over B_ℓ, so a steady-state caller reusing its
// outputs performs zero per-op allocations. c0/c1 must not alias d.
func (sw *Switcher) SwitchParallelInto(e *engine.Engine, df dataflow.Dataflow, d *ring.Poly, evk *Evk, c0, c1 *ring.Poly) {
	if !d.Basis.Equal(sw.qBasis) || !d.IsNTT {
		panic(fmt.Sprintf("hks: SwitchParallel input must be NTT-domain over %v, got %v (ntt=%v)",
			sw.qBasis, d.Basis, d.IsNTT))
	}
	if !c0.Basis.Equal(sw.qBasis) || !c1.Basis.Equal(sw.qBasis) {
		panic("hks: SwitchParallel output basis mismatch")
	}
	// The two outputs' graph nodes run concurrently with no cross
	// dependency, so aliased storage would race silently.
	if c0 == c1 || sameStorage(c0, c1) || sameStorage(c0, d) || sameStorage(c1, d) {
		panic("hks: SwitchParallel outputs must not alias each other or the input")
	}
	if len(evk.B) != sw.Dnum || len(evk.A) != sw.Dnum {
		panic(fmt.Sprintf("hks: evk has %d digits, switcher expects %d", len(evk.B), sw.Dnum))
	}
	if e == nil {
		e = engine.Default()
	}
	st := sw.stateFor(df)
	st.rec, st.dfIdx = obs.Active(), obs.Dataflow(dfKey(df))
	st.d, st.evk, st.out0, st.out1 = d, evk, c0, c1
	e.RunGraph(st.g)
	st.d, st.evk, st.out0, st.out1 = nil, nil, nil, nil
	st.rec = nil
	sw.states[dfKey(df)].Put(st)
	c0.IsNTT, c1.IsNTT = true, true
}
