package hks

import (
	"bytes"
	"math/big"
	"strings"
	"testing"
)

func TestEvkRoundTrip(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	var buf bytes.Buffer
	if err := sw.WriteEvk(&buf, evk); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	got, err := sw.ReadEvk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := range evk.B {
		if !got.B[j].Equal(evk.B[j]) || !got.A[j].Equal(evk.A[j]) {
			t.Fatalf("digit %d differs after roundtrip", j)
		}
	}
	// The deserialized key must still switch correctly.
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	c0, c1 := sw.KeySwitch(d, got)
	if e := keySwitchError(r, sw, d, c0, c1, sOld, sNew); e.Cmp(new(big.Int).Lsh(big.NewInt(1), 20)) > 0 {
		t.Fatalf("key-switch error %v after roundtrip", e)
	}
	// Wire size is close to the raw evk payload.
	if size < evk.SizeBytes() {
		t.Fatalf("serialized %d bytes below payload %d", size, evk.SizeBytes())
	}
}

func TestReadEvkRejectsMismatch(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw2, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sw4, err := NewSwitcher(r, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw2.GenEvk(s, sOld, sNew)
	var buf bytes.Buffer
	if err := sw2.WriteEvk(&buf, evk); err != nil {
		t.Fatal(err)
	}
	if _, err := sw4.ReadEvk(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("digit-count mismatch accepted")
	}
	if _, err := sw2.ReadEvk(strings.NewReader("xx")); err == nil {
		t.Error("garbage accepted")
	}
	// Lower-level switcher expects a different basis.
	swLow, err := NewSwitcher(r, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := swLow.ReadEvk(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("basis mismatch accepted")
	}
}

// Every strict prefix of a serialized evk must error — never panic —
// and a lying digit count is rejected on the header check before any
// digit is read or allocated.
func TestReadEvkTruncationRobust(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	var buf bytes.Buffer
	if err := sw.WriteEvk(&buf, evk); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("truncation at %d/%d panicked: %v", i, len(good), rec)
				}
			}()
			if _, err := sw.ReadEvk(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("truncation at %d/%d read successfully", i, len(good))
			}
		}()
	}
	bad := append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := sw.ReadEvk(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "digits") {
		t.Errorf("oversized digit count: got %v", err)
	}
	// A malformed evk (uneven digit lists) is refused on write.
	if err := sw.WriteEvk(&bytes.Buffer{}, &Evk{B: evk.B}); err == nil {
		t.Error("WriteEvk accepted an evk with mismatched digit lists")
	}
}
