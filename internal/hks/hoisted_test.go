package hks

import (
	"fmt"
	"sync"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/params"
	"ciflow/internal/ring"
)

func hoistedKeys(s *ring.Sampler, sw *Switcher, k int) []*Evk {
	full := sw.R.DBasis(sw.R.NumQ - 1)
	sNew := s.Ternary(full)
	evks := make([]*Evk, k)
	for i := range evks {
		evks[i] = sw.GenEvk(s, s.Ternary(full), sNew)
	}
	return evks
}

// TestSwitchHoistedBitExact asserts that hoisting — shared ModUp, per-
// key replay — produces outputs bit-exact with the per-rotation path
// (both serial KeySwitch and the engine-backed SwitchParallel), for
// every dataflow shape, across two parameter sets including an uneven
// digit partition.
func TestSwitchHoistedBitExact(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	for _, tc := range []struct {
		name                        string
		n, numQ, qBits, numP, pBits int
		level, dnum, k              int
	}{
		{"n64_dnum2", 64, 4, 30, 2, 31, 3, 2, 4},
		{"n32_uneven_digits", 32, 5, 30, 3, 31, 4, 2, 3},
		{"n64_dnum4_alpha1", 64, 4, 30, 1, 31, 3, 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, s, _, _ := testSetup(t, tc.n, tc.numQ, tc.qBits, tc.numP, tc.pBits)
			sw, err := NewSwitcher(r, tc.level, tc.dnum)
			if err != nil {
				t.Fatal(err)
			}
			evks := hoistedKeys(s, sw, tc.k)
			d := s.Uniform(sw.QBasis())
			d.IsNTT = true

			want0 := make([]*ring.Poly, tc.k)
			want1 := make([]*ring.Poly, tc.k)
			for i, evk := range evks {
				want0[i], want1[i] = sw.KeySwitch(d, evk)
			}

			// Serial hoisted path.
			c0s, c1s := sw.SwitchHoisted(d, evks)
			for i := range evks {
				if !c0s[i].Equal(want0[i]) || !c1s[i].Equal(want1[i]) {
					t.Fatalf("serial hoisted output %d differs from KeySwitch", i)
				}
			}

			// Engine-backed hoisted path, every dataflow shape.
			for _, df := range engineDataflows {
				t.Run(df.String(), func(t *testing.T) {
					g0 := make([]*ring.Poly, tc.k)
					g1 := make([]*ring.Poly, tc.k)
					for i := range g0 {
						g0[i] = r.NewPoly(sw.QBasis())
						g1[i] = r.NewPoly(sw.QBasis())
					}
					sw.SwitchHoistedParallelInto(e, df, d, evks, g0, g1)
					for i := range evks {
						if !g0[i].Equal(want0[i]) || !g1[i].Equal(want1[i]) {
							t.Fatalf("%s hoisted output %d differs from KeySwitch", df, i)
						}
					}
				})
			}
		})
	}
}

// TestHoistedStateReuse replays one Hoisted across keys repeatedly and
// re-hoists fresh inputs on pooled states, interleaving dataflows to
// catch cross-pool contamination.
func TestHoistedStateReuse(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	r, s, _, _ := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evks := hoistedKeys(s, sw, 3)
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	for rep := 0; rep < 3; rep++ {
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		for _, df := range engineDataflows {
			h := sw.HoistParallel(e, df, d)
			for round := 0; round < 2; round++ { // replay the same state twice per key
				for i, evk := range evks {
					want0, want1 := sw.KeySwitch(d, evk)
					h.SwitchParallelInto(e, evk, c0, c1)
					if !c0.Equal(want0) || !c1.Equal(want1) {
						t.Fatalf("rep %d %s round %d key %d: pooled replay differs", rep, df, round, i)
					}
				}
			}
			h.Release()
		}
	}
}

// TestHoistedSerialReplayZeroAlloc asserts the serial replay is
// allocation-free once the state is warm — the zero-alloc property a
// steady-state rotation fan-out relies on.
func TestHoistedSerialReplayZeroAlloc(t *testing.T) {
	r, s, _, _ := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := hoistedKeys(s, sw, 1)[0]
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	h := sw.Hoist(d)
	defer h.Release()
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	h.SwitchInto(evk, c0, c1) // warm converter scratch pools
	if allocs := testing.AllocsPerRun(10, func() {
		h.SwitchInto(evk, c0, c1)
	}); allocs > 0 {
		t.Fatalf("serial hoisted replay allocates %v times per run, want 0", allocs)
	}
}

// TestHoistedConcurrent hammers one Switcher with concurrent hoisted
// switches over different inputs and dataflows; with -race this proves
// the hoisted state pools are data-race free.
func TestHoistedConcurrent(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	r, s, _, _ := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evks := hoistedKeys(s, sw, 2)

	const goroutines = 8
	type job struct {
		d            *ring.Poly
		want0, want1 []*ring.Poly
	}
	jobs := make([]job, goroutines)
	for i := range jobs {
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		j := job{d: d}
		for _, evk := range evks {
			w0, w1 := sw.KeySwitch(d, evk)
			j.want0 = append(j.want0, w0)
			j.want1 = append(j.want1, w1)
		}
		jobs[i] = j
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			df := engineDataflows[i%len(engineDataflows)]
			c0 := r.NewPoly(sw.QBasis())
			c1 := r.NewPoly(sw.QBasis())
			for rep := 0; rep < 3; rep++ {
				h := sw.HoistParallel(e, df, jobs[i].d)
				for ki := range evks {
					h.SwitchParallelInto(e, evks[ki], c0, c1)
					if !c0.Equal(jobs[i].want0[ki]) || !c1.Equal(jobs[i].want1[ki]) {
						errs <- fmt.Errorf("goroutine %d rep %d key %d (%s): result differs", i, rep, ki, df)
						h.Release()
						return
					}
				}
				h.Release()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHoistedValidation covers the input checks of the hoisted path.
func TestHoistedValidation(t *testing.T) {
	r, s, _, _ := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := hoistedKeys(s, sw, 1)[0]
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}

	coeff := s.Uniform(sw.QBasis())
	mustPanic("coefficient-domain input", func() { sw.Hoist(coeff) })

	wrong := s.Uniform(sw.DBasis())
	wrong.IsNTT = true
	mustPanic("wrong basis", func() { sw.Hoist(wrong) })

	h := sw.Hoist(d)
	defer h.Release()
	short := &Evk{B: evk.B[:1], A: evk.A[:1]}
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	mustPanic("short evk", func() { h.SwitchInto(short, c0, c1) })
	mustPanic("aliased outputs", func() { h.SwitchInto(evk, c0, c0) })
	bad := r.NewPoly(sw.DBasis())
	mustPanic("wrong output basis", func() { h.SwitchInto(evk, bad, c1) })
	mustPanic("mismatched batch outputs", func() {
		sw.SwitchHoistedParallelInto(nil, dataflow.MP, d, []*Evk{evk}, nil, nil)
	})
}

// TestOpCountsMatchParamsModel cross-validates the live-structure op
// counters against the paper's closed-form model in internal/params:
// a switcher and a Benchmark with the same shape must charge exactly
// the same weighted modular operations, so HoistedOpsSaved is (k−1)
// times the model's ModUp cost.
func TestOpCountsMatchParamsModel(t *testing.T) {
	for _, tc := range []struct {
		n, numQ, numP, level, dnum int
	}{
		{64, 4, 2, 3, 2},
		{32, 5, 3, 4, 2}, // uneven digit partition
		{64, 6, 2, 5, 3},
	} {
		r, err := ring.NewRingGenerated(tc.n, tc.numQ, 30, tc.numP, 31)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := NewSwitcher(r, tc.level, tc.dnum)
		if err != nil {
			t.Fatal(err)
		}
		logN := 0
		for m := tc.n; m > 1; m >>= 1 {
			logN++
		}
		b := params.Benchmark{Name: "live", LogN: logN, KL: tc.level + 1, KP: tc.numP, Dnum: tc.dnum}
		oc := b.Ops()
		modelModUp := params.ButterflyWeight*(oc.ModUpINTTButterflies+oc.ModUpNTTButterflies) +
			params.MulAccWeight*oc.ModUpBConvMulAcc
		if got := sw.ModUpOps(); got != modelModUp {
			t.Errorf("%+v: ModUpOps %d, params model %d", tc, got, modelModUp)
		}
		if got, want := sw.SwitchOps(), oc.WeightedTotal(); got != want {
			t.Errorf("%+v: SwitchOps %d, params WeightedTotal %d", tc, got, want)
		}
		if got, want := sw.HoistedOpsSaved(5), 4*modelModUp; got != want {
			t.Errorf("%+v: HoistedOpsSaved(5) %d, want %d", tc, got, want)
		}
		if s := sw.HoistedSpeedupModel(8); s <= 1 || s >= 8 {
			t.Errorf("%+v: implausible model speedup %g", tc, s)
		}
		if sw.HoistedSpeedupModel(1) != 1 {
			t.Errorf("%+v: k=1 model speedup must be 1", tc)
		}
	}
}
