package hks

import (
	"math/big"
	"testing"

	"ciflow/internal/ring"
)

// TestModUpGadgetIdentity verifies the exact algebraic core of hybrid
// key switching: Σ_j ModUp_j(d) · w_j ≡ P·d (mod PQ_ℓ), where w_j is
// the gadget factor baked into each evk digit. The identity must hold
// exactly in every tower — including the BConv overshoot terms, which
// are multiples of Q and vanish modulo PQ after the P scaling.
func TestModUpGadgetIdentity(t *testing.T) {
	for _, tc := range []struct {
		name                        string
		n, numQ, qBits, numP, pBits int
		level, dnum                 int
	}{
		{"dnum2", 32, 4, 30, 2, 31, 3, 2},
		{"dnum4", 32, 4, 30, 1, 31, 3, 4},
		{"dnum1", 32, 2, 30, 3, 31, 1, 1},
		{"uneven", 32, 5, 30, 3, 31, 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := ring.NewRingGenerated(tc.n, tc.numQ, tc.qBits, tc.numP, tc.pBits)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := NewSwitcher(r, tc.level, tc.dnum)
			if err != nil {
				t.Fatal(err)
			}
			s := ring.NewSampler(r, 9)
			d := s.Uniform(sw.QBasis())
			d.IsNTT = true

			ups := sw.ModUp(d)

			// Accumulate Σ_j up_j ⊙ w_j tower-wise (NTT domain is fine:
			// the identity is element-wise in the evaluation domain).
			acc := r.NewPoly(sw.DBasis())
			acc.IsNTT = true
			tmp := r.NewPoly(sw.DBasis())
			for j, up := range ups {
				r.MulTowerScalars(up, sw.gadget[j], tmp)
				r.Add(acc, tmp, acc)
			}

			// Expected: (P mod q_i)·d on the Q towers, 0 on the P towers.
			P := r.BasisProduct(sw.PBasis())
			for i, tw := range sw.DBasis() {
				m := r.Mods[tw]
				pMod := new(big.Int).Mod(P, new(big.Int).SetUint64(r.Moduli[tw])).Uint64()
				var want []uint64
				if row := d.Tower(tw); row != nil {
					want = make([]uint64, r.N)
					for k := range want {
						want[k] = m.Mul(pMod, row[k])
					}
				} else {
					want = make([]uint64, r.N) // P towers: P·d ≡ 0
				}
				for k := 0; k < r.N; k++ {
					if acc.Coeffs[i][k] != want[k] {
						t.Fatalf("tower %d coeff %d: got %d want %d", tw, k, acc.Coeffs[i][k], want[k])
					}
				}
			}
		})
	}
}

// TestKeySwitchManyMatchesIndividual checks that hoisting (shared
// ModUp) produces bit-identical results to independent key switches.
func TestKeySwitchManyMatchesIndividual(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evks := []*Evk{
		sw.GenEvk(s, sOld, sNew),
		sw.GenEvk(s, sNew, sOld),
		sw.GenEvk(s, sOld, sOld),
	}
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true

	c0s, c1s := sw.KeySwitchMany(d, evks)
	if len(c0s) != len(evks) || len(c1s) != len(evks) {
		t.Fatalf("got %d/%d outputs", len(c0s), len(c1s))
	}
	for i, evk := range evks {
		w0, w1 := sw.KeySwitch(d, evk)
		if !c0s[i].Equal(w0) || !c1s[i].Equal(w1) {
			t.Fatalf("key %d: hoisted result differs from individual switch", i)
		}
	}
}

func TestHoistedOpsSaved(t *testing.T) {
	r, _, _, _ := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.HoistedOpsSaved(1); got != 0 {
		t.Fatalf("k=1 should save nothing, got %d", got)
	}
	one := sw.HoistedOpsSaved(2)
	if one <= 0 {
		t.Fatal("k=2 should save the cost of one ModUp")
	}
	if got := sw.HoistedOpsSaved(5); got != 4*one {
		t.Fatalf("savings should scale linearly: %d vs 4*%d", got, one)
	}
}
