package hks

import "ciflow/internal/ring"

// KeySwitchMany switches the same input polynomial with several
// evaluation keys while running the expensive ModUp phase only once —
// the "hoisting" optimization used when one ciphertext feeds many
// rotations (e.g. the diagonal method's rotation fan-out, or ARK's
// inter-operation key reuse). ModUp is independent of the key, so its
// INTT/BConv/NTT work (the bulk of paper Figure 1's left half)
// amortizes across all |evks| switches; only ApplyKey, Reduce and
// ModDown repeat.
//
// Returns one (c0, c1) pair per key, in input order.
func (sw *Switcher) KeySwitchMany(d *ring.Poly, evks []*Evk) (c0s, c1s []*ring.Poly) {
	ups := sw.ModUp(d)
	c0s = make([]*ring.Poly, len(evks))
	c1s = make([]*ring.Poly, len(evks))
	for i, evk := range evks {
		d0, d1 := sw.ApplyEvk(ups, evk)
		c0s[i] = sw.ModDown(d0)
		c1s[i] = sw.ModDown(d1)
	}
	return c0s, c1s
}

// HoistedOpsSaved reports the weighted modular operations a
// KeySwitchMany over k keys saves versus k independent KeySwitch
// calls: (k−1) executions of the ModUp P1–P3 pipeline.
func (sw *Switcher) HoistedOpsSaved(k int) int64 {
	if k <= 1 {
		return 0
	}
	n := int64(sw.R.N)
	logN := int64(0)
	for m := sw.R.N; m > 1; m >>= 1 {
		logN++
	}
	butterfly := int64(3) * (n / 2) * logN
	var ops int64
	ell := int64(sw.Level + 1)
	ops += ell * (butterfly + 2*n) // P1 INTT + BConv premultiply
	for j, dg := range sw.digits {
		alpha := int64(len(dg))
		beta := int64(len(sw.upConv[j].Dst()))
		ops += beta * 2 * n * alpha // P2 BConv towers
		ops += beta * butterfly     // P3 NTT
	}
	return int64(k-1) * ops
}
