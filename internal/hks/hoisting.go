package hks

import "ciflow/internal/ring"

// KeySwitchMany switches the same input polynomial with several
// evaluation keys while running the expensive ModUp phase only once —
// the "hoisting" optimization used when one ciphertext feeds many
// rotations (e.g. the diagonal method's rotation fan-out, or ARK's
// inter-operation key reuse). ModUp is independent of the key, so its
// INTT/BConv/NTT work (the bulk of paper Figure 1's left half)
// amortizes across all |evks| switches; only ApplyKey, Reduce and
// ModDown repeat.
//
// It is a thin serial wrapper over the pooled Hoisted state of
// hoisted.go; use Hoist/HoistParallel directly (or the ckks
// evaluator's RotateHoisted) to control scheduling and reuse outputs.
//
// Returns one (c0, c1) pair per key, in input order; each pair is
// bit-exact with the corresponding KeySwitch call.
func (sw *Switcher) KeySwitchMany(d *ring.Poly, evks []*Evk) (c0s, c1s []*ring.Poly) {
	return sw.SwitchHoisted(d, evks)
}

// weightedButterflies returns the weighted modular-op cost of one NTT
// or INTT over this ring: (N/2)·logN butterflies, each one multiply
// plus an add and a sub (params.ButterflyWeight).
func (sw *Switcher) weightedButterflies() int64 {
	n := int64(sw.R.N)
	logN := int64(0)
	for m := sw.R.N; m > 1; m >>= 1 {
		logN++
	}
	return 3 * (n / 2) * logN
}

// ModUpOps reports the weighted modular operations of this switcher's
// ModUp phase (P1–P3) as actually executed: the counts are assembled
// from the live digit partition and converter shapes — including the
// shorter last digit and the bypass towers — rather than from closed-
// form parameters, using the same op weights as internal/params
// (butterfly 3, multiply-accumulate 2).
func (sw *Switcher) ModUpOps() int64 {
	n := int64(sw.R.N)
	bf := sw.weightedButterflies()
	var ops int64
	ops += int64(sw.ell()) * (bf + 2*n) // P1 INTT + ŷ premultiply per Q tower
	for j, dg := range sw.digits {
		alpha := int64(len(dg))
		beta := int64(len(sw.upConv[j].Dst()))
		ops += beta * 2 * n * alpha // P2 BConv accumulation
		ops += beta * bf            // P3 NTT of the converted towers
	}
	return ops
}

// SwitchOps reports the weighted modular operations of one complete
// key switch (ModUp + ApplyKey + Reduce + ModDown) as executed by
// this switcher, with the same stage conventions as
// params.OpCounts.WeightedTotal — the live-structure counterpart the
// throughput experiment reconciles the model against.
func (sw *Switcher) SwitchOps() int64 {
	n := int64(sw.R.N)
	bf := sw.weightedButterflies()
	ell := int64(sw.ell())
	kp := int64(len(sw.pBasis))
	lk := int64(len(sw.dBasis))
	dnum := int64(sw.Dnum)

	ops := sw.ModUpOps()
	ops += 2 * (2 * dnum * n * lk)     // P4 ApplyKey (both output polys)
	ops += (dnum - 1) * 2 * n * lk     // P5 Reduce
	ops += 2 * kp * bf                 // ModDown P1 INTT
	ops += 2 * (2 * (n*kp*ell + n*kp)) // ModDown P2 BConv (+ ŷ premultiply)
	ops += 2 * ell * bf                // ModDown P3 NTT
	ops += 2 * (2 * n * ell)           // ModDown P4 subtract-and-scale
	return ops
}

// HoistedOpsSaved reports the weighted modular operations a hoisted
// switch over k keys saves versus k independent KeySwitch calls:
// (k−1) executions of the ModUp P1–P3 pipeline.
func (sw *Switcher) HoistedOpsSaved(k int) int64 {
	if k <= 1 {
		return 0
	}
	return int64(k-1) * sw.ModUpOps()
}

// HoistedSpeedupModel predicts the throughput gain of one hoisted
// switch over k keys versus k independent switches, assuming runtime
// proportional to weighted modular ops: k·SwitchOps over
// k·SwitchOps − HoistedOpsSaved(k).
func (sw *Switcher) HoistedSpeedupModel(k int) float64 {
	if k <= 1 {
		return 1
	}
	total := float64(int64(k) * sw.SwitchOps())
	return total / (total - float64(sw.HoistedOpsSaved(k)))
}
