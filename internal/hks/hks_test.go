package hks

import (
	"math/big"
	"testing"

	"ciflow/internal/ring"
)

// testSetup returns a ring plus secrets sampled over the full D basis.
func testSetup(t *testing.T, n, numQ, qBits, numP, pBits int) (*ring.Ring, *ring.Sampler, *ring.Poly, *ring.Poly) {
	t.Helper()
	r, err := ring.NewRingGenerated(n, numQ, qBits, numP, pBits)
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(r, 1)
	full := r.DBasis(r.NumQ - 1)
	sOld := s.Ternary(full)
	sNew := s.Ternary(full)
	return r, s, sOld, sNew
}

// keySwitchError returns ‖c0 + c1·sNew − d·sOld‖∞ over B_ℓ.
func keySwitchError(r *ring.Ring, sw *Switcher, d, c0, c1, sOld, sNew *ring.Poly) *big.Int {
	b := sw.QBasis()
	sN := sOld.SubPoly(b).Copy()
	sW := sNew.SubPoly(b).Copy()
	r.NTT(sN)
	r.NTT(sW)

	want := r.NewPoly(b)
	r.MulCoeffwise(d, sN, want) // d·sOld

	got := r.NewPoly(b)
	r.MulCoeffwise(c1, sW, got) // c1·sNew
	r.Add(got, c0, got)

	diff := r.NewPoly(b)
	r.Sub(got, want, diff)
	r.INTT(diff)
	return r.InfNorm(diff)
}

func TestNewSwitcherValidation(t *testing.T) {
	r, _, _, _ := testSetup(t, 32, 4, 30, 2, 31)
	if _, err := NewSwitcher(r, -1, 1); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := NewSwitcher(r, 4, 1); err == nil {
		t.Error("level beyond chain accepted")
	}
	if _, err := NewSwitcher(r, 3, 0); err == nil {
		t.Error("dnum 0 accepted")
	}
	if _, err := NewSwitcher(r, 3, 5); err == nil {
		t.Error("dnum > towers accepted")
	}
	// dnum=1 makes the single digit product Q ≈ 2^120 > P ≈ 2^62.
	if _, err := NewSwitcher(r, 3, 1); err == nil {
		t.Error("P < digit product accepted")
	}
	rNoP, err := ring.NewRingGenerated(32, 4, 30, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSwitcher(rNoP, 3, 2); err == nil {
		t.Error("ring without P towers accepted")
	}
}

func TestDigitPartition(t *testing.T) {
	r, _, _, _ := testSetup(t, 32, 5, 30, 3, 31)
	sw, err := NewSwitcher(r, 4, 2) // 5 towers, dnum=2 -> alpha=3: digits {0,1,2},{3,4}
	if err != nil {
		t.Fatal(err)
	}
	if sw.Alpha != 3 {
		t.Fatalf("alpha = %d, want 3", sw.Alpha)
	}
	dg := sw.Digits()
	if len(dg) != 2 || len(dg[0]) != 3 || len(dg[1]) != 2 {
		t.Fatalf("digit partition %v", dg)
	}
	// Digits must tile B_ℓ exactly.
	seen := map[int]bool{}
	for _, d := range dg {
		for _, tw := range d {
			if seen[tw] {
				t.Fatalf("tower %d in two digits", tw)
			}
			seen[tw] = true
		}
	}
	for _, tw := range sw.QBasis() {
		if !seen[tw] {
			t.Fatalf("tower %d not covered by digits", tw)
		}
	}
}

func TestModUpBypass(t *testing.T) {
	r, s, _, _ := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	ups := sw.ModUp(d)
	if len(ups) != 2 {
		t.Fatalf("got %d ModUp outputs, want 2", len(ups))
	}
	for j, up := range ups {
		if !up.Basis.Equal(sw.DBasis()) {
			t.Fatalf("digit %d output basis %v", j, up.Basis)
		}
		if !up.IsNTT {
			t.Fatalf("digit %d output not in NTT domain", j)
		}
		// Bypass: towers inside the digit are copied verbatim.
		for _, tw := range sw.Digits()[j] {
			src := d.Tower(tw)
			dst := up.Tower(tw)
			for k := range src {
				if src[k] != dst[k] {
					t.Fatalf("digit %d tower %d not bypassed", j, tw)
				}
			}
		}
	}
}

func TestKeySwitchCorrectness(t *testing.T) {
	for _, tc := range []struct {
		name                        string
		n, numQ, qBits, numP, pBits int
		level, dnum                 int
	}{
		{"dnum2", 64, 4, 30, 2, 31, 3, 2},
		{"dnum4_alpha1", 64, 4, 30, 1, 31, 3, 4},
		{"dnum1_single_digit", 64, 2, 30, 3, 31, 1, 1}, // BTS1-style: no Reduce stage
		{"lower_level", 64, 6, 30, 2, 31, 3, 2},
		{"uneven_digits", 64, 5, 30, 3, 31, 4, 2}, // alpha=3: digits of 3 and 2 towers
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, s, sOld, sNew := testSetup(t, tc.n, tc.numQ, tc.qBits, tc.numP, tc.pBits)
			sw, err := NewSwitcher(r, tc.level, tc.dnum)
			if err != nil {
				t.Fatal(err)
			}
			evk := sw.GenEvk(s, sOld, sNew)
			d := s.Uniform(sw.QBasis())
			d.IsNTT = true
			c0, c1 := sw.KeySwitch(d, evk)
			errNorm := keySwitchError(r, sw, d, c0, c1, sOld, sNew)
			if errNorm.Cmp(new(big.Int).Lsh(big.NewInt(1), 20)) > 0 {
				t.Fatalf("key-switch error too large: %v", errNorm)
			}
			if errNorm.Sign() == 0 {
				t.Fatal("key-switch error exactly zero: suspicious (noise missing)")
			}
		})
	}
}

func TestKeySwitchSameKeyIsNearIdentity(t *testing.T) {
	// Switching from s to s itself must approximately preserve d·s.
	r, s, sOld, _ := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sOld)
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	c0, c1 := sw.KeySwitch(d, evk)
	errNorm := keySwitchError(r, sw, d, c0, c1, sOld, sOld)
	if errNorm.Cmp(new(big.Int).Lsh(big.NewInt(1), 20)) > 0 {
		t.Fatalf("identity switch error too large: %v", errNorm)
	}
}

func TestEvkSize(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	// dnum × 2 × N × (ℓ+K) residues × 8 bytes.
	want := 2 * 2 * 64 * (4 + 2) * 8
	if got := evk.SizeBytes(); got != want {
		t.Fatalf("evk size %d, want %d", got, want)
	}
}

func TestApplyEvkLinearity(t *testing.T) {
	// ApplyEvk over the sum of two ModUp digit sets equals the sum of
	// the individual applications (P4/P5 is bilinear).
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	mkUps := func(seed int64) []*ring.Poly {
		sp := ring.NewSampler(r, seed)
		ups := make([]*ring.Poly, sw.Dnum)
		for j := range ups {
			ups[j] = sp.Uniform(sw.DBasis())
			ups[j].IsNTT = true
		}
		return ups
	}
	u1 := mkUps(10)
	u2 := mkUps(11)
	sum := make([]*ring.Poly, sw.Dnum)
	for j := range sum {
		sum[j] = r.NewPoly(sw.DBasis())
		r.Add(u1[j], u2[j], sum[j])
	}
	a0, a1 := sw.ApplyEvk(u1, evk)
	b0, b1 := sw.ApplyEvk(u2, evk)
	s0, s1 := sw.ApplyEvk(sum, evk)
	w0 := r.NewPoly(sw.DBasis())
	w1 := r.NewPoly(sw.DBasis())
	r.Add(a0, b0, w0)
	r.Add(a1, b1, w1)
	if !s0.Equal(w0) || !s1.Equal(w1) {
		t.Fatal("ApplyEvk is not linear")
	}
}

func TestModDownDomainChecks(t *testing.T) {
	r, s, _, _ := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := s.Uniform(sw.QBasis()) // wrong basis
	bad.IsNTT = true
	defer func() {
		if recover() == nil {
			t.Fatal("ModDown accepted wrong basis")
		}
	}()
	sw.ModDown(bad)
}

func TestKeySwitchErrorScalesWithDnum(t *testing.T) {
	// More digits means smaller digit products and (for fixed P) less
	// ModUp noise per digit but more accumulation terms; in all
	// configurations the error stays far below q_0. This guards the
	// noise model rather than an exact value.
	r, s, sOld, sNew := testSetup(t, 64, 6, 30, 3, 31)
	for _, dnum := range []int{2, 3, 6} {
		sw, err := NewSwitcher(r, 5, dnum)
		if err != nil {
			t.Fatalf("dnum=%d: %v", dnum, err)
		}
		evk := sw.GenEvk(s, sOld, sNew)
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		c0, c1 := sw.KeySwitch(d, evk)
		errNorm := keySwitchError(r, sw, d, c0, c1, sOld, sNew)
		if errNorm.Cmp(new(big.Int).Lsh(big.NewInt(1), 22)) > 0 {
			t.Fatalf("dnum=%d error %v exceeds bound", dnum, errNorm)
		}
	}
}
