package hks

import (
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/obs"
)

// snapshotHas reports whether the snapshot recorded the named
// stage/kernel under the named dataflow with a nonzero count.
func snapshotHas(entries []obs.HistogramSnapshot, name, df string) bool {
	for _, hs := range entries {
		if hs.Name == name && hs.Dataflow == df && hs.Count > 0 {
			return true
		}
	}
	return false
}

// TestKeySwitchProfiled asserts that a profiled serial switch records
// every pipeline stage and both kernel families — if an
// instrumentation site is dropped, the stage vanishes from the
// snapshot and the wall-time accounting silently under-counts.
func TestKeySwitchProfiled(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	r, s, sOld, sNew := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	sw.KeySwitch(d, evk)

	snap := obs.Active().Snapshot()
	for _, stage := range []string{"decompose", "mod_up", "apply", "mod_down"} {
		if !snapshotHas(snap.Stages, stage, "serial") {
			t.Errorf("serial KeySwitch recorded no %q stage", stage)
		}
	}
	for _, kernel := range []string{"ntt", "bconv"} {
		if !snapshotHas(snap.Kernels, kernel, "serial") {
			t.Errorf("serial KeySwitch recorded no %q kernel samples", kernel)
		}
	}
	if len(snap.Levels) == 0 {
		t.Error("serial KeySwitch recorded no per-level counters")
	}

	// The profiled switch must stay bit-exact: recording is additive
	// instrumentation, never a fork in the arithmetic.
	c0, c1 := sw.KeySwitch(d, evk)
	obs.Disable()
	u0, u1 := sw.KeySwitch(d, evk)
	if !c0.Equal(u0) || !c1.Equal(u1) {
		t.Fatal("profiled switch differs from unprofiled")
	}

	// Engine rows record under the dataflow's own name.
	obs.Enable()
	e := engine.New(2)
	defer e.Close()
	sw.SwitchParallel(e, dataflow.MP, d, evk)
	snap = obs.Active().Snapshot()
	if !snapshotHas(snap.Stages, "mod_up", "mp") {
		t.Error("MP parallel switch recorded no mod_up under the mp dataflow")
	}
}
