package hks

import (
	"fmt"
	"sync"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/ring"
)

// engineDataflows are the dataflow shapes SwitchParallel executes.
var engineDataflows = []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC, dataflow.OCF}

// TestSwitchParallelBitExact asserts the engine-backed switch equals
// the serial pipeline bit for bit, for every dataflow, across levels,
// digit counts, and uneven digit partitions.
func TestSwitchParallelBitExact(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	for _, tc := range []struct {
		name                        string
		n, numQ, qBits, numP, pBits int
		level, dnum                 int
	}{
		{"dnum2", 64, 4, 30, 2, 31, 3, 2},
		{"dnum4_alpha1", 64, 4, 30, 1, 31, 3, 4},
		{"dnum1_single_digit", 64, 2, 30, 3, 31, 1, 1},
		{"lower_level", 64, 6, 30, 2, 31, 3, 2},
		{"uneven_digits", 64, 5, 30, 3, 31, 4, 2},
		{"top_level_many_digits", 32, 6, 30, 2, 31, 5, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, s, sOld, sNew := testSetup(t, tc.n, tc.numQ, tc.qBits, tc.numP, tc.pBits)
			sw, err := NewSwitcher(r, tc.level, tc.dnum)
			if err != nil {
				t.Fatal(err)
			}
			evk := sw.GenEvk(s, sOld, sNew)
			d := s.Uniform(sw.QBasis())
			d.IsNTT = true
			want0, want1 := sw.KeySwitch(d, evk)
			for _, df := range engineDataflows {
				t.Run(df.String(), func(t *testing.T) {
					got0, got1 := sw.SwitchParallel(e, df, d, evk)
					if !got0.Equal(want0) || !got1.Equal(want1) {
						t.Fatalf("%s parallel switch differs from serial", df)
					}
				})
			}
		})
	}
}

// TestSwitchParallelStateReuse runs the same switcher repeatedly so
// every call after the first draws a pooled state, and interleaves
// dataflows to catch cross-pool contamination.
func TestSwitchParallelStateReuse(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	r, s, sOld, sNew := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	for rep := 0; rep < 3; rep++ {
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		want0, want1 := sw.KeySwitch(d, evk)
		for _, df := range engineDataflows {
			got0, got1 := sw.SwitchParallel(e, df, d, evk)
			if !got0.Equal(want0) || !got1.Equal(want1) {
				t.Fatalf("rep %d %s: pooled state produced a different result", rep, df)
			}
		}
	}
}

// TestSwitchParallelIntoReuse asserts the zero-allocation entry point
// works with reused output polynomials.
func TestSwitchParallelIntoReuse(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	r, s, sOld, sNew := testSetup(t, 64, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	for rep := 0; rep < 3; rep++ {
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		want0, want1 := sw.KeySwitch(d, evk)
		sw.SwitchParallelInto(e, dataflow.OC, d, evk, c0, c1)
		if !c0.Equal(want0) || !c1.Equal(want1) {
			t.Fatalf("rep %d: SwitchParallelInto differs from serial", rep)
		}
	}
}

// TestSwitchParallelConcurrent hammers one immutable Switcher from
// many goroutines mixing dataflows — the pattern a serving layer
// produces — and checks every result against the serial reference.
// Run with -race this also proves the state pools are data-race free.
func TestSwitchParallelConcurrent(t *testing.T) {
	e := engine.New(4)
	defer e.Close()
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)

	const goroutines = 8
	type job struct {
		d            *ring.Poly
		want0, want1 *ring.Poly
	}
	jobs := make([]job, goroutines)
	for i := range jobs {
		d := s.Uniform(sw.QBasis())
		d.IsNTT = true
		w0, w1 := sw.KeySwitch(d, evk)
		jobs[i] = job{d, w0, w1}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			df := engineDataflows[i%len(engineDataflows)]
			for rep := 0; rep < 4; rep++ {
				g0, g1 := sw.SwitchParallel(e, df, jobs[i].d, evk)
				if !g0.Equal(jobs[i].want0) || !g1.Equal(jobs[i].want1) {
					errs <- fmt.Errorf("goroutine %d rep %d (%s): result differs", i, rep, df)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSwitchParallelNilEngine exercises the engine.Default() fallback.
func TestSwitchParallelNilEngine(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	want0, want1 := sw.KeySwitch(d, evk)
	got0, got1 := sw.SwitchParallel(nil, dataflow.MP, d, evk)
	if !got0.Equal(want0) || !got1.Equal(want1) {
		t.Fatal("nil-engine SwitchParallel differs from serial")
	}
}

// TestSwitchParallelValidation covers the input checks.
func TestSwitchParallelValidation(t *testing.T) {
	e := engine.New(2)
	defer e.Close()
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}

	coeff := s.Uniform(sw.QBasis()) // not NTT domain
	mustPanic("coefficient-domain input", func() { sw.SwitchParallel(e, dataflow.MP, coeff, evk) })

	wrong := s.Uniform(sw.DBasis())
	wrong.IsNTT = true
	mustPanic("wrong basis", func() { sw.SwitchParallel(e, dataflow.MP, wrong, evk) })

	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	short := &Evk{B: evk.B[:1], A: evk.A[:1]}
	mustPanic("short evk", func() { sw.SwitchParallel(e, dataflow.MP, d, short) })

	mustPanic("unknown dataflow", func() { sw.SwitchParallel(e, dataflow.Dataflow(99), d, evk) })

	out := r.NewPoly(sw.QBasis())
	mustPanic("aliased outputs", func() { sw.SwitchParallelInto(e, dataflow.MP, d, evk, out, out) })
	mustPanic("output aliasing input", func() { sw.SwitchParallelInto(e, dataflow.MP, d, evk, d, out) })
}
