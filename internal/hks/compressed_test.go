package hks

import (
	"bytes"
	"strings"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
)

// Expand(Compress(evk)) must reproduce the generated key bit for bit,
// and the two forms' footprints must satisfy the pinned relation:
// compressed = B-half + 32 bytes of seed per digit.
func TestCompressRoundTrip(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	c, ok := evk.Compress()
	if !ok {
		t.Fatal("generated evk did not compress")
	}
	got := c.Expand(r)
	for j := range evk.B {
		if !got.B[j].Equal(evk.B[j]) {
			t.Fatalf("digit %d B differs after compress/expand", j)
		}
		if !got.A[j].Equal(evk.A[j]) {
			t.Fatalf("digit %d A differs after compress/expand", j)
		}
	}
	if _, ok := got.Compress(); !ok {
		t.Fatal("expanded key lost its seeds")
	}

	towers := len(sw.DBasis())
	wantDense := sw.Dnum * 2 * towers * r.N * 8
	wantComp := sw.Dnum * (towers*r.N*8 + 32)
	if evk.SizeBytes() != wantDense || c.DenseSizeBytes() != wantDense {
		t.Fatalf("dense footprint %d/%d, want %d", evk.SizeBytes(), c.DenseSizeBytes(), wantDense)
	}
	if c.SizeBytes() != wantComp {
		t.Fatalf("compressed footprint %d, want %d", c.SizeBytes(), wantComp)
	}
	if c.SizeBytes() >= evk.SizeBytes() {
		t.Fatal("compression did not shrink the key")
	}

	// A key without seeds (legacy/hand-built) must refuse to compress.
	if _, ok := (&Evk{B: evk.B, A: evk.A}).Compress(); ok {
		t.Fatal("seedless evk compressed")
	}

	// CheckMaterial accepts both forms and rejects digit mismatches.
	if err := sw.CheckMaterial(evk); err != nil {
		t.Fatal(err)
	}
	if err := sw.CheckMaterial(c); err != nil {
		t.Fatal(err)
	}
	sw4, err := NewSwitcher(r, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw4.CheckMaterial(c); err == nil {
		t.Fatal("digit-count mismatch accepted")
	}
	if err := sw.CheckMaterial(nil); err == nil {
		t.Fatal("nil material accepted")
	}
}

// Streamed application must be bit-exact with the dense paths —
// KeySwitch, SwitchInto on a hoisted state, and SwitchParallelInto —
// for every dataflow shape. Run under -race this also exercises the
// expansion goroutine handoff.
func TestSwitchStreamedBitExact(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 6, 30, 3, 31)
	sw, err := NewSwitcher(r, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	c, ok := evk.Compress()
	if !ok {
		t.Fatal("evk did not compress")
	}
	d := s.Uniform(sw.QBasis())
	d.IsNTT = true
	want0, want1 := sw.KeySwitch(d, evk)

	e := engine.New(4)
	defer e.Close()
	for _, df := range []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC} {
		c0, c1 := sw.SwitchStreamed(e, df, d, c)
		if !c0.Equal(want0) || !c1.Equal(want1) {
			t.Fatalf("%v: SwitchStreamed differs from KeySwitch", df)
		}
		// The Into variant on an explicitly hoisted state, replayed
		// twice off one fresh stream each to prove state reuse stays
		// clean.
		h := sw.HoistParallel(e, df, d)
		for i := 0; i < 2; i++ {
			st := c.StartExpand(r)
			g0 := r.NewPoly(sw.QBasis())
			g1 := r.NewPoly(sw.QBasis())
			h.SwitchStreamedInto(st, g0, g1)
			if !g0.Equal(want0) || !g1.Equal(want1) {
				t.Fatalf("%v replay %d: SwitchStreamedInto differs from KeySwitch", df, i)
			}
		}
		h.Release()
	}
}

// Streamed apply must panic (not corrupt) on digit-structure and
// aliasing misuse, matching the dense replay's checks.
func TestSwitchStreamedChecks(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw2, _ := NewSwitcher(r, 3, 2)
	sw4, _ := NewSwitcher(r, 3, 4)
	evk := sw4.GenEvk(s, sOld, sNew)
	c, _ := evk.Compress()
	d := s.Uniform(sw2.QBasis())
	d.IsNTT = true
	h := sw2.Hoist(d)
	defer h.Release()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	c0 := r.NewPoly(sw2.QBasis())
	c1 := r.NewPoly(sw2.QBasis())
	mustPanic("digit mismatch", func() {
		h.SwitchStreamedInto(c.StartExpand(r), c0, c1)
	})
	c2, _ := sw2.GenEvk(s, sOld, sNew).Compress()
	mustPanic("aliased outputs", func() {
		h.SwitchStreamedInto(c2.StartExpand(r), c0, c0)
	})
}

func TestCompressedEvkSerializeRoundTrip(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	c, _ := evk.Compress()
	var buf bytes.Buffer
	if err := sw.WriteCompressedEvk(&buf, c); err != nil {
		t.Fatal(err)
	}
	wire := buf.Len()
	got, err := sw.ReadCompressedEvk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dense := got.Expand(r)
	for j := range evk.B {
		if !dense.B[j].Equal(evk.B[j]) || !dense.A[j].Equal(evk.A[j]) {
			t.Fatalf("digit %d differs after compressed roundtrip", j)
		}
	}
	// The compressed frame must actually be smaller than the dense one.
	var denseBuf bytes.Buffer
	if err := sw.WriteEvk(&denseBuf, evk); err != nil {
		t.Fatal(err)
	}
	if wire >= denseBuf.Len() {
		t.Fatalf("compressed frame %d bytes, dense %d", wire, denseBuf.Len())
	}
	// Mismatched switchers reject the frame.
	sw4, _ := NewSwitcher(r, 3, 4)
	if _, err := sw4.ReadCompressedEvk(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("digit-count mismatch accepted")
	}
	swLow, _ := NewSwitcher(r, 1, 2)
	var buf2 bytes.Buffer
	if err := sw.WriteCompressedEvk(&buf2, c); err != nil {
		t.Fatal(err)
	}
	if _, err := swLow.ReadCompressedEvk(&buf2); err == nil {
		t.Error("basis mismatch accepted")
	}
}

// Every strict prefix of a serialized compressed evk must error —
// never panic — a lying digit count is rejected on the header check,
// and a malformed key is refused on write (the dense frame's
// robustness contract, applied to the compressed frame).
func TestReadCompressedEvkTruncationRobust(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := sw.GenEvk(s, sOld, sNew).Compress()
	var buf bytes.Buffer
	if err := sw.WriteCompressedEvk(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("truncation at %d/%d panicked: %v", i, len(good), rec)
				}
			}()
			if _, err := sw.ReadCompressedEvk(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("truncation at %d/%d read successfully", i, len(good))
			}
		}()
	}
	bad := append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := sw.ReadCompressedEvk(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "digits") {
		t.Errorf("oversized digit count: got %v", err)
	}
	if err := sw.WriteCompressedEvk(&bytes.Buffer{}, &CompressedEvk{B: c.B}); err == nil {
		t.Error("WriteCompressedEvk accepted mismatched digit lists")
	}
}

// The dense wire frame drops seeds (it predates them), so a
// deserialized dense key reports itself as non-compressible instead of
// inventing wrong seeds.
func TestDenseFrameDropsSeeds(t *testing.T) {
	r, s, sOld, sNew := testSetup(t, 32, 4, 30, 2, 31)
	sw, err := NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	evk := sw.GenEvk(s, sOld, sNew)
	var buf bytes.Buffer
	if err := sw.WriteEvk(&buf, evk); err != nil {
		t.Fatal(err)
	}
	got, err := sw.ReadEvk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Compress(); ok {
		t.Fatal("dense-frame key claims to be compressible")
	}
}
