// Package analysis drives the paper's experiments: it combines the
// dataflow schedule generators with the RPU performance model and
// reproduces every table and figure of the evaluation (§VI). Each
// experiment returns a typed result plus an ASCII rendering, and is
// wired to a CLI verb in cmd/ciflow and a benchmark in bench_test.go
// (see DESIGN.md's per-experiment index).
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/rpu"
	"ciflow/internal/sim"
)

// GB is the decimal gigabyte used for bandwidth figures.
const GB = 1e9

// StdBandwidthsGBs is the paper's 8–64 GB/s sweep (DDR4 through DDR5).
var StdBandwidthsGBs = []float64{8, 12.8, 16, 25.6, 32, 51.2, 64}

// ExtBandwidthsGBs extends to 1 TB/s (HBM2/HBM3) as in Figure 4(d,e).
var ExtBandwidthsGBs = []float64{8, 12.8, 16, 25.6, 32, 51.2, 64, 128, 256, 512, 1024}

// BaselineBandwidthGBs anchors Table IV: MP at peak DDR5 bandwidth
// with evks pre-loaded on-chip.
const BaselineBandwidthGBs = 64

// Runner evaluates HKS runtimes with schedule caching (schedules
// depend only on the dataflow, benchmark and memory configuration, not
// on bandwidth or compute throughput).
type Runner struct {
	DataMemBytes int64
	RPU          rpu.Config

	mu    sync.Mutex
	cache map[schedKey]*dataflow.Schedule
}

type schedKey struct {
	df      dataflow.Dataflow
	bench   string
	evk     bool
	keyComp bool
	mem     int64
}

// NewRunner returns a runner with the paper's configuration: 32 MB
// data memory on the default RPU.
func NewRunner() *Runner {
	return &Runner{
		DataMemBytes: rpu.DataMemBytes,
		RPU:          rpu.Default(),
		cache:        map[schedKey]*dataflow.Schedule{},
	}
}

// Schedule returns (generating on first use) the schedule for one
// configuration.
func (r *Runner) Schedule(df dataflow.Dataflow, b params.Benchmark, evkOnChip, keyComp bool) (*dataflow.Schedule, error) {
	key := schedKey{df, b.Name, evkOnChip, keyComp, r.DataMemBytes}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.cache[key]; ok {
		return s, nil
	}
	s, err := dataflow.Generate(df, dataflow.Config{
		Bench:          b,
		DataMemBytes:   r.DataMemBytes,
		EvkOnChip:      evkOnChip,
		KeyCompression: keyComp,
	})
	if err != nil {
		return nil, err
	}
	r.cache[key] = s
	return s, nil
}

// Runtime simulates one configuration and returns the result.
func (r *Runner) Runtime(df dataflow.Dataflow, b params.Benchmark, evkOnChip bool, bwGBs, modopsScale float64) (sim.Result, error) {
	s, err := r.Schedule(df, b, evkOnChip, false)
	if err != nil {
		return sim.Result{}, err
	}
	m := sim.Machine{
		BandwidthBytesPerSec: bwGBs * GB,
		ModopsPerSec:         r.RPU.WithModops(modopsScale).ModopsPerSec(),
	}
	return sim.Run(s.Prog, m)
}

// RuntimeMS is Runtime in milliseconds, for the common case.
func (r *Runner) RuntimeMS(df dataflow.Dataflow, b params.Benchmark, evkOnChip bool, bwGBs, modopsScale float64) (float64, error) {
	res, err := r.Runtime(df, b, evkOnChip, bwGBs, modopsScale)
	return res.RuntimeSec * 1e3, err
}

// Baseline returns the Table IV reference runtime: MP at 64 GB/s with
// evks on-chip.
func (r *Runner) Baseline(b params.Benchmark) (float64, error) {
	return r.RuntimeMS(dataflow.MP, b, true, BaselineBandwidthGBs, 1)
}

// FindBandwidthToMatch bisects for the smallest bandwidth (GB/s) at
// which the given configuration meets or beats targetMS. Runtime is
// non-increasing in bandwidth, so bisection is sound. Returns an error
// if even maxGBs cannot reach the target.
func (r *Runner) FindBandwidthToMatch(df dataflow.Dataflow, b params.Benchmark, evkOnChip bool, modopsScale, targetMS, maxGBs float64) (float64, error) {
	lo, hi := 0.5, maxGBs
	ms, err := r.RuntimeMS(df, b, evkOnChip, hi, modopsScale)
	if err != nil {
		return 0, err
	}
	if ms > targetMS {
		return 0, fmt.Errorf("analysis: %s/%s cannot reach %.2f ms below %.0f GB/s (best %.2f ms)",
			df, b.Name, targetMS, maxGBs, ms)
	}
	for i := 0; i < 60 && hi-lo > 1e-3; i++ {
		mid := (lo + hi) / 2
		ms, err := r.RuntimeMS(df, b, evkOnChip, mid, modopsScale)
		if err != nil {
			return 0, err
		}
		if ms <= targetMS {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// OCBaseGridGBs snaps a continuous bandwidth requirement up to the
// paper's sweep grid, which is how Table IV reports OCbase.
func OCBaseGridGBs(contGBs float64) float64 {
	grid := append([]float64(nil), ExtBandwidthsGBs...)
	sort.Float64s(grid)
	for _, g := range grid {
		if g >= contGBs-1e-9 {
			return g
		}
	}
	return grid[len(grid)-1]
}
