package analysis

import (
	"strings"
	"testing"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

func TestTableIIShape(t *testing.T) {
	r := NewRunner()
	rows, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		// Paper Table II ordering: OC moves the least data and has the
		// highest arithmetic intensity.
		if !(row.MB[2] < row.MB[1] && row.MB[1] <= row.MB[0]) {
			t.Errorf("%s: traffic ordering violated: %v", row.Bench, row.MB)
		}
		if !(row.AI[2] > row.AI[1] && row.AI[1] >= row.AI[0]) {
			t.Errorf("%s: AI ordering violated: %v", row.Bench, row.AI)
		}
	}
	out := FormatTableII(rows)
	if !strings.Contains(out, "BTS3") || !strings.Contains(out, "DPRIVE") {
		t.Error("formatted table missing benchmarks")
	}
}

func TestTableIVHeadlineClaims(t *testing.T) {
	r := NewRunner()
	rows, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	var maxSpeedup, maxSaved float64
	for _, row := range rows {
		if row.OCBaseGBs > BaselineBandwidthGBs {
			t.Errorf("%s: OCbase %f exceeds the baseline bandwidth", row.Bench, row.OCBaseGBs)
		}
		if row.Speedup < 1 {
			t.Errorf("%s: OC slower than MP at OCbase (%.2fx)", row.Bench, row.Speedup)
		}
		// OC at OCbase must indeed match or beat the baseline.
		if row.OCms > row.BaselineMS*1.001 {
			t.Errorf("%s: OC at OCbase (%.2f ms) misses baseline (%.2f ms)", row.Bench, row.OCms, row.BaselineMS)
		}
		if row.Speedup > maxSpeedup {
			maxSpeedup = row.Speedup
		}
		if row.SavedBW > maxSaved {
			maxSaved = row.SavedBW
		}
	}
	// Paper headline: up to 4.16x speedup and up to 8x bandwidth
	// saving; our model must land in the same regime (>=2x, <=8x).
	if maxSpeedup < 2 {
		t.Errorf("max OC speedup %.2fx below the paper's 1.3-4.16x band", maxSpeedup)
	}
	if maxSaved < 4 || maxSaved > 16 {
		t.Errorf("max bandwidth saving %.2fx outside the paper's 2-8x regime", maxSaved)
	}
	t.Log("\n" + FormatTableIV(rows))
}

func TestTableIVARKIsBestCase(t *testing.T) {
	// The paper's biggest win is ARK: 8x bandwidth saving, 4.16x
	// speedup. ARK must be our best case too.
	r := NewRunner()
	rows, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	var ark TableIVRow
	for _, row := range rows {
		if row.Bench == "ARK" {
			ark = row
		}
	}
	for _, row := range rows {
		if row.Speedup > ark.Speedup+1e-9 {
			t.Errorf("%s speedup %.2fx exceeds ARK's %.2fx", row.Bench, row.Speedup, ark.Speedup)
		}
	}
	if ark.SavedBW < 4 {
		t.Errorf("ARK bandwidth saving %.2fx, paper reports 8x", ark.SavedBW)
	}
}

func TestFigure4Monotone(t *testing.T) {
	r := NewRunner()
	pts, err := r.Figure4(params.DPRIVE, StdBandwidthsGBs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		for d := 0; d < 3; d++ {
			if pts[i].MS[d] > pts[i-1].MS[d]+1e-9 {
				t.Errorf("dataflow %d: runtime increased from %.1f to %.1f GB/s",
					d, pts[i-1].BWGBs, pts[i].BWGBs)
			}
		}
	}
	// OC dominates at low bandwidth.
	if !(pts[0].MS[2] < pts[0].MS[1] && pts[0].MS[1] < pts[0].MS[0]) {
		t.Errorf("at 8 GB/s expected OC < DC < MP, got %v", pts[0].MS)
	}
}

func TestFigure4GapClosesAtHighBandwidth(t *testing.T) {
	// Paper §VI-C-1: beyond ~256 GB/s the OC benefit diminishes as
	// the RPU becomes compute bound.
	r := NewRunner()
	pts, err := r.Figure4(params.ARK, ExtBandwidthsGBs)
	if err != nil {
		t.Fatal(err)
	}
	low := pts[0]
	high := pts[len(pts)-1]
	lowGap := low.MS[0] / low.MS[2]
	highGap := high.MS[0] / high.MS[2]
	if lowGap < 2 {
		t.Errorf("low-bandwidth MP/OC gap %.2fx too small", lowGap)
	}
	if highGap > 1.2 {
		t.Errorf("high-bandwidth MP/OC gap %.2fx should have closed", highGap)
	}
}

func TestFigureStreamShift(t *testing.T) {
	// Streaming evks shifts curves up but converges with bandwidth
	// (Figures 5-6).
	r := NewRunner()
	pts, err := r.FigureStream(params.ARK, ExtBandwidthsGBs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		for d := 0; d < 3; d++ {
			if p.StreamMS[d] < p.OnChipMS[d]-1e-9 {
				t.Errorf("streaming faster than on-chip at %.1f GB/s", p.BWGBs)
			}
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.StreamMS[2]/first.OnChipMS[2] < last.StreamMS[2]/last.OnChipMS[2] {
		t.Error("streaming penalty should shrink with bandwidth")
	}
}

func TestFigure7SlowdownBounded(t *testing.T) {
	r := NewRunner()
	rows, err := r.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.Slowdown < 1 {
			t.Errorf("%s: streaming speedup?! %.2fx", row.Bench, row.Slowdown)
		}
		// Paper: 1.3x-2.9x more bandwidth buys back the on-chip
		// performance; allow a wider 1-5x band for the model.
		if row.ExtraBWFactor < 1 || row.ExtraBWFactor > 5 {
			t.Errorf("%s: equivalent-bandwidth factor %.2fx outside [1,5]", row.Bench, row.ExtraBWFactor)
		}
	}
	t.Log("\n" + FormatFigure7(rows))
}

func TestFigure8ModopsScaling(t *testing.T) {
	r := NewRunner()
	pts, err := r.Figure8(params.ARK, ExtBandwidthsGBs)
	if err != nil {
		t.Fatal(err)
	}
	low := pts[0]
	high := pts[len(pts)-1]
	// Paper §VI-C-2: at low bandwidth the MODOPS multiplier barely
	// matters; at high bandwidth it scales runtime down.
	if low.MS[1]/low.MS[16] > 1.5 {
		t.Errorf("at 8 GB/s MODOPS should not matter: 1x=%.2f 16x=%.2f", low.MS[1], low.MS[16])
	}
	if high.MS[1]/high.MS[16] < 4 {
		t.Errorf("at 1 TB/s MODOPS should scale: 1x=%.2f 16x=%.2f", high.MS[1], high.MS[16])
	}
}

func TestTableVOrdering(t *testing.T) {
	r := NewRunner()
	rows, err := r.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// At 2x MODOPS, OC needs the least bandwidth, MP the most.
	oc, dc, mp := rows[1].BWGBs, rows[2].BWGBs, rows[3].BWGBs
	if !(oc < dc && dc <= mp) {
		t.Errorf("bandwidth ordering violated: OC=%.1f DC=%.1f MP=%.1f", oc, dc, mp)
	}
	t.Log("\n" + FormatTableV(rows))
}

func TestFigure9MoreModopsLessBandwidth(t *testing.T) {
	r := NewRunner()
	sat, base, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, rows []Figure9Row) {
		if len(rows) < 2 {
			t.Fatalf("%s: only %d configurations found", name, len(rows))
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].BWGBs > rows[i-1].BWGBs+1e-6 {
				t.Errorf("%s: more MODOPS should need no more bandwidth", name)
			}
		}
	}
	check("saturation", sat)
	check("baseline", base)
	t.Log("\n" + FormatFigure9(sat, base))
}

func TestAblationKeyCompression(t *testing.T) {
	r := NewRunner()
	rows, err := r.AblationKeyCompression()
	if err != nil {
		t.Fatal(err)
	}
	var maxAI float64
	for _, row := range rows {
		if row.AIComp <= row.AI {
			t.Errorf("%s: compression did not improve AI", row.Bench)
		}
		if row.AIComp > maxAI {
			maxAI = row.AIComp
		}
	}
	// Paper §IV-D: compression boosts OC AI to ~3.82 ops/byte.
	if maxAI < 2.5 {
		t.Errorf("best compressed AI %.2f too low vs paper's 3.82", maxAI)
	}
	t.Log("\n" + FormatKeyCompression(rows))
}

func TestAreaSummary(t *testing.T) {
	out := AreaSummary()
	if !strings.Contains(out, "12.25x") {
		t.Errorf("area summary missing the 12.25x claim:\n%s", out)
	}
}

func TestOCBaseGrid(t *testing.T) {
	if got := OCBaseGridGBs(9.0); got != 12.8 {
		t.Errorf("OCBaseGridGBs(9) = %g, want 12.8", got)
	}
	if got := OCBaseGridGBs(8.0); got != 8 {
		t.Errorf("OCBaseGridGBs(8) = %g, want 8", got)
	}
	if got := OCBaseGridGBs(5000); got != 1024 {
		t.Errorf("OCBaseGridGBs(5000) = %g, want 1024 (cap)", got)
	}
}

func TestFindBandwidthToMatchErrors(t *testing.T) {
	r := NewRunner()
	// Target of 0 ms is unreachable.
	if _, err := r.FindBandwidthToMatch(dataflow.OC, params.ARK, true, 1, 0, 1024); err == nil {
		t.Fatal("unreachable target accepted")
	}
}
