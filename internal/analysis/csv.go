package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers so experiment outputs can feed external plotting
// (matching the paper's figures). Each writer emits a header row
// followed by one record per data point.

// WriteSweepCSV emits a Figure 4-style sweep.
func WriteSweepCSV(w io.Writer, pts []SweepPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bw_gbs", "mp_ms", "dc_ms", "oc_ms", "mp_idle", "dc_idle", "oc_idle"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{
			f(p.BWGBs), f(p.MS[0]), f(p.MS[1]), f(p.MS[2]),
			f(p.Idle[0]), f(p.Idle[1]), f(p.Idle[2]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStreamCSV emits a Figure 5/6-style streamed-vs-on-chip sweep.
func WriteStreamCSV(w io.Writer, pts []StreamPoint) error {
	cw := csv.NewWriter(w)
	header := []string{"bw_gbs",
		"mp_stream_ms", "dc_stream_ms", "oc_stream_ms",
		"mp_onchip_ms", "dc_onchip_ms", "oc_onchip_ms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{f(p.BWGBs),
			f(p.StreamMS[0]), f(p.StreamMS[1]), f(p.StreamMS[2]),
			f(p.OnChipMS[0]), f(p.OnChipMS[1]), f(p.OnChipMS[2])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableIICSV emits the traffic/AI table.
func WriteTableIICSV(w io.Writer, rows []TableIIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bench", "mp_mb", "mp_ai", "dc_mb", "dc_ai", "oc_mb", "oc_ai"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Bench, f(r.MB[0]), f(r.AI[0]), f(r.MB[1]), f(r.AI[1]), f(r.MB[2]), f(r.AI[2])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableIVCSV emits the OCbase/speedup table.
func WriteTableIVCSV(w io.Writer, rows []TableIVRow) error {
	cw := csv.NewWriter(w)
	header := []string{"bench", "ocbase_gbs", "saved_bw_x", "oc_ms", "mp_ms", "speedup_x", "baseline_ms"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Bench, f(r.OCBaseGBs), f(r.SavedBW), f(r.OCms), f(r.MPms), f(r.Speedup), f(r.BaselineMS)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMemoryCSV emits a memory sweep.
func WriteMemoryCSV(w io.Writer, pts []MemoryPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mem_mib", "mp_mb", "dc_mb", "oc_mb", "mp_ovh", "dc_ovh", "oc_ovh"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{strconv.FormatInt(p.MemMiB, 10),
			f(p.TotalMB[0]), f(p.TotalMB[1]), f(p.TotalMB[2]),
			f(p.Overhead[0]), f(p.Overhead[1]), f(p.Overhead[2])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
