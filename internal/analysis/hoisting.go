package analysis

// Hoisting model: how much of a key switch's weighted modular work is
// the key-independent ModUp pipeline, and what speedup sharing it
// across k rotations of one ciphertext buys. This is the paper-model
// counterpart of hks.HoistedOpsSaved — the throughput experiment
// (ciflow throughput -hoisted) reconciles these predictions against
// measured ops/sec and reports the delta.

import (
	"fmt"
	"strings"

	"ciflow/internal/params"
)

// HoistedModUpFraction returns the fraction of one key switch's
// weighted modular operations spent in the ModUp P1–P3 pipeline — the
// part hoisting runs once instead of k times.
func HoistedModUpFraction(b params.Benchmark) float64 {
	oc := b.Ops()
	modUp := params.ButterflyWeight*(oc.ModUpINTTButterflies+oc.ModUpNTTButterflies) +
		params.MulAccWeight*oc.ModUpBConvMulAcc
	return float64(modUp) / float64(oc.WeightedTotal())
}

// HoistedSpeedup predicts the throughput gain of one hoisted switch
// over k keys versus k independent switches, assuming runtime
// proportional to weighted modular operations.
func HoistedSpeedup(b params.Benchmark, k int) float64 {
	if k <= 1 {
		return 1
	}
	f := HoistedModUpFraction(b)
	return float64(k) / (float64(k) - float64(k-1)*f)
}

// HoistingDelta returns the relative deviation, in percent, of a
// measured hoisted speedup from the modeled one: positive when the
// measurement beats the model.
func HoistingDelta(measured, model float64) float64 {
	if model == 0 {
		return 0
	}
	return 100 * (measured - model) / model
}

// FormatHoisting renders the modeled hoisting savings of a benchmark
// for a list of fan-out widths k.
func FormatHoisting(b params.Benchmark, ks []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hoisting model (%s): ModUp is %.0f%% of one key switch's weighted mod ops\n",
		b.Name, 100*HoistedModUpFraction(b))
	fmt.Fprintf(&sb, "%6s %16s %14s\n", "k", "ops saved", "speedup")
	total := b.Ops().WeightedTotal()
	for _, k := range ks {
		saved := float64(k-1) * HoistedModUpFraction(b) * float64(total)
		fmt.Fprintf(&sb, "%6d %15.2fG %13.2fx\n", k, saved/1e9, HoistedSpeedup(b, k))
	}
	return sb.String()
}
