package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// Workload models the key-switch volume of a composite HE computation.
// The paper motivates the dataflow work with exactly such workloads: a
// single ResNet-20 inference performs 3,306 rotations (§I), each one a
// hybrid key switch, plus one key switch per ciphertext multiplication.
type Workload struct {
	Name      string
	Rotations int // each costs one HKS
	Mults     int // each relinearization costs one HKS
}

// KeySwitches returns the total HKS invocations.
func (w Workload) KeySwitches() int { return w.Rotations + w.Mults }

// ResNet20 is the paper's motivating workload (§I, Lee et al.).
var ResNet20 = Workload{Name: "ResNet-20", Rotations: 3306, Mults: 1226}

// WorkloadEstimate is the projected cost of running a workload's key
// switches back to back on one configuration.
type WorkloadEstimate struct {
	Workload string
	Dataflow string
	PerKSms  float64
	TotalSec float64
	DRAMGB   float64 // total DRAM traffic including streamed keys
}

// EstimateWorkload projects the HKS cost of w at the given benchmark
// parameters, bandwidth and evk placement, for every dataflow.
// Per-operation state (inputs/outputs) is assumed to flow through DRAM
// between operations, which the per-schedule traffic already counts.
func (r *Runner) EstimateWorkload(w Workload, b params.Benchmark, evkOnChip bool, bwGBs float64) ([]WorkloadEstimate, error) {
	var out []WorkloadEstimate
	for _, df := range dataflow.AllDataflows() {
		ms, err := r.RuntimeMS(df, b, evkOnChip, bwGBs, 1)
		if err != nil {
			return nil, err
		}
		s, err := r.Schedule(df, b, evkOnChip, false)
		if err != nil {
			return nil, err
		}
		ks := float64(w.KeySwitches())
		out = append(out, WorkloadEstimate{
			Workload: w.Name,
			Dataflow: df.String(),
			PerKSms:  ms,
			TotalSec: ms * ks / 1e3,
			DRAMGB:   float64(s.Traffic.TotalBytes()) * ks / 1e9,
		})
	}
	return out, nil
}

// FormatWorkload renders the estimates.
func FormatWorkload(bwGBs float64, rows []WorkloadEstimate) string {
	var sb strings.Builder
	if len(rows) == 0 {
		return "(no estimates)\n"
	}
	fmt.Fprintf(&sb, "Workload %s at %.1f GB/s (key-switch time only)\n", rows[0].Workload, bwGBs)
	fmt.Fprintf(&sb, "%-4s %12s %12s %14s\n", "DF", "per-KS ms", "total s", "DRAM GB")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-4s %12.2f %12.1f %14.0f\n", r.Dataflow, r.PerKSms, r.TotalSec, r.DRAMGB)
	}
	return sb.String()
}
