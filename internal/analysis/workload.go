package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// Workload models the key-switch volume of a composite HE computation.
// The paper motivates the dataflow work with exactly such workloads: a
// single ResNet-20 inference performs 3,306 rotations (§I), each one a
// hybrid key switch, plus one key switch per ciphertext multiplication.
//
// Rotations that arrive as hoistable fan-outs — the diagonal method's
// baby steps, a bootstrapping stage's radix group — share one
// Decompose+ModUp, so a workload additionally carries its hoist-group
// structure: HoistGroups lists the sizes of those fan-outs (each ≥ 2;
// the member rotations are *included* in Rotations). A group of size
// k runs ModUp once instead of k times, which EstimateWorkload prices
// with the same op-share model as the hoisting analysis
// (HoistedModUpFraction).
type Workload struct {
	Name      string
	Rotations int // each costs one HKS
	Mults     int // each relinearization costs one HKS
	// HoistGroups are the sizes of the hoisted rotation fan-out
	// groups (each entry ≥ 2, counted inside Rotations). The schedule
	// DAGs of internal/workload export exactly this shape through
	// Schedule.HoistGroupSizes.
	HoistGroups []int
}

// KeySwitches returns the total HKS invocations.
func (w Workload) KeySwitches() int { return w.Rotations + w.Mults }

// SharedModUpsSaved returns the ModUp executions hoisting removes: a
// group of size k shares one ModUp across k switches, saving k−1.
func (w Workload) SharedModUpsSaved() int {
	saved := 0
	for _, k := range w.HoistGroups {
		if k >= 2 {
			saved += k - 1
		}
	}
	return saved
}

// ResNet20 is the paper's motivating workload (§I, Lee et al.).
var ResNet20 = Workload{Name: "ResNet-20", Rotations: 3306, Mults: 1226}

// WorkloadEstimate is the projected cost of running a workload's key
// switches back to back on one configuration.
type WorkloadEstimate struct {
	Workload string
	Dataflow string
	PerKSms  float64
	TotalSec float64
	DRAMGB   float64 // total DRAM traffic including streamed keys
	// HoistSavedModUps is the number of ModUp executions the
	// workload's hoist groups remove; HoistedTotalSec prices the
	// schedule with that sharing, using the benchmark's ModUp op
	// share (HoistedModUpFraction). Equal to TotalSec when the
	// workload declares no hoist groups.
	HoistSavedModUps int
	HoistedTotalSec  float64
}

// EstimateWorkload projects the HKS cost of w at the given benchmark
// parameters, bandwidth and evk placement, for every dataflow.
// Per-operation state (inputs/outputs) is assumed to flow through DRAM
// between operations, which the per-schedule traffic already counts.
// When w carries hoist groups, HoistedTotalSec additionally prices the
// shared-ModUp savings: each saved ModUp removes the ModUp share of
// one key switch's cost (the op-share model the measured hoisting
// experiment reconciles against).
func (r *Runner) EstimateWorkload(w Workload, b params.Benchmark, evkOnChip bool, bwGBs float64) ([]WorkloadEstimate, error) {
	var out []WorkloadEstimate
	saved := w.SharedModUpsSaved()
	f := HoistedModUpFraction(b)
	for _, df := range dataflow.AllDataflows() {
		ms, err := r.RuntimeMS(df, b, evkOnChip, bwGBs, 1)
		if err != nil {
			return nil, err
		}
		s, err := r.Schedule(df, b, evkOnChip, false)
		if err != nil {
			return nil, err
		}
		ks := float64(w.KeySwitches())
		total := ms * ks / 1e3
		out = append(out, WorkloadEstimate{
			Workload:         w.Name,
			Dataflow:         df.String(),
			PerKSms:          ms,
			TotalSec:         total,
			DRAMGB:           float64(s.Traffic.TotalBytes()) * ks / 1e9,
			HoistSavedModUps: saved,
			HoistedTotalSec:  total - ms*f*float64(saved)/1e3,
		})
	}
	return out, nil
}

// FormatWorkload renders the estimates; workloads with hoist groups
// get the hoisted-total column.
func FormatWorkload(bwGBs float64, rows []WorkloadEstimate) string {
	var sb strings.Builder
	if len(rows) == 0 {
		return "(no estimates)\n"
	}
	hoisted := rows[0].HoistSavedModUps > 0
	fmt.Fprintf(&sb, "Workload %s at %.1f GB/s (key-switch time only)\n", rows[0].Workload, bwGBs)
	if hoisted {
		fmt.Fprintf(&sb, "%-4s %12s %12s %12s %14s\n", "DF", "per-KS ms", "total s", "hoisted s", "DRAM GB")
	} else {
		fmt.Fprintf(&sb, "%-4s %12s %12s %14s\n", "DF", "per-KS ms", "total s", "DRAM GB")
	}
	for _, r := range rows {
		if hoisted {
			fmt.Fprintf(&sb, "%-4s %12.2f %12.1f %12.1f %14.0f\n",
				r.Dataflow, r.PerKSms, r.TotalSec, r.HoistedTotalSec, r.DRAMGB)
		} else {
			fmt.Fprintf(&sb, "%-4s %12.2f %12.1f %14.0f\n", r.Dataflow, r.PerKSms, r.TotalSec, r.DRAMGB)
		}
	}
	if hoisted {
		fmt.Fprintf(&sb, "hoisting shares ModUps across the declared fan-out groups: %d ModUp executions saved\n",
			rows[0].HoistSavedModUps)
	}
	return sb.String()
}
