package analysis

import (
	"strings"
	"testing"

	"ciflow/internal/params"
)

func TestWriteSweepCSV(t *testing.T) {
	r := NewRunner()
	pts, err := r.Figure4(params.ARK, []float64{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteSweepCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bw_gbs,mp_ms") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "8.0000,") {
		t.Fatalf("bad first row %q", lines[1])
	}
}

func TestWriteStreamCSV(t *testing.T) {
	r := NewRunner()
	pts, err := r.FigureStream(params.ARK, []float64{16})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteStreamCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "oc_onchip_ms") {
		t.Fatal("missing column")
	}
}

func TestWriteTableCSVs(t *testing.T) {
	r := NewRunner()
	t2, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTableIICSV(&sb, t2); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(sb.String()), "\n")); got != 6 {
		t.Fatalf("table II: want 6 lines, got %d", got)
	}

	t4, err := r.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTableIVCSV(&sb, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ARK") {
		t.Fatal("table IV missing ARK row")
	}
}

func TestWriteMemoryCSV(t *testing.T) {
	pts, err := MemorySweep(params.ARK, []int64{16, 32})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteMemoryCSV(&sb, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "16,") {
		t.Fatalf("bad row %q", lines[1])
	}
}
