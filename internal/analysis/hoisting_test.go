package analysis

import (
	"strings"
	"testing"

	"ciflow/internal/params"
)

func TestHoistedModUpFractionRange(t *testing.T) {
	for _, b := range params.All() {
		f := HoistedModUpFraction(b)
		if f <= 0 || f >= 1 {
			t.Errorf("%s: ModUp fraction %g out of (0,1)", b.Name, f)
		}
	}
}

func TestHoistedSpeedupMonotone(t *testing.T) {
	b := params.ARK
	prev := HoistedSpeedup(b, 1)
	if prev != 1 {
		t.Fatalf("k=1 speedup %g, want 1", prev)
	}
	for _, k := range []int{2, 4, 8, 16} {
		s := HoistedSpeedup(b, k)
		if s <= prev {
			t.Fatalf("speedup not increasing at k=%d: %g <= %g", k, s, prev)
		}
		prev = s
	}
	// The speedup is bounded by 1/(1−f), the Amdahl limit of hoisting.
	limit := 1 / (1 - HoistedModUpFraction(b))
	if prev >= limit {
		t.Fatalf("k=16 speedup %g exceeds Amdahl limit %g", prev, limit)
	}
}

func TestHoistingDelta(t *testing.T) {
	if d := HoistingDelta(1.5, 1.5); d != 0 {
		t.Fatalf("equal measured/model should give 0%%, got %g", d)
	}
	if d := HoistingDelta(3, 2); d != 50 {
		t.Fatalf("want +50%%, got %g", d)
	}
	if d := HoistingDelta(1, 2); d != -50 {
		t.Fatalf("want -50%%, got %g", d)
	}
	if d := HoistingDelta(1, 0); d != 0 {
		t.Fatalf("zero model must not divide, got %g", d)
	}
}

func TestFormatHoisting(t *testing.T) {
	out := FormatHoisting(params.BTS3, []int{2, 8})
	for _, want := range []string{"BTS3", "speedup", "ops saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Errorf("unexpected row count:\n%s", out)
	}
}
