package analysis

import (
	"strings"
	"testing"

	"ciflow/internal/params"
)

func TestEstimateWorkload(t *testing.T) {
	r := NewRunner()
	rows, err := r.EstimateWorkload(ResNet20, params.ARK, false, 25.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// OC total must be the lowest; totals must equal per-KS x count.
	ks := float64(ResNet20.KeySwitches())
	for _, row := range rows {
		want := row.PerKSms * ks / 1e3
		if diff := row.TotalSec - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: total %.3f != per-KS x count %.3f", row.Dataflow, row.TotalSec, want)
		}
	}
	if !(rows[2].TotalSec < rows[1].TotalSec && rows[1].TotalSec < rows[0].TotalSec) {
		t.Errorf("expected OC < DC < MP totals, got %+v", rows)
	}
	out := FormatWorkload(25.6, rows)
	if !strings.Contains(out, "ResNet-20") {
		t.Error("missing workload name")
	}
}

func TestWorkloadKeySwitches(t *testing.T) {
	if got := ResNet20.KeySwitches(); got != 3306+1226 {
		t.Fatalf("ResNet20 key switches = %d", got)
	}
	w := Workload{Rotations: 2, Mults: 3}
	if w.KeySwitches() != 5 {
		t.Fatal("key switch count wrong")
	}
}

func TestFormatWorkloadEmpty(t *testing.T) {
	if out := FormatWorkload(8, nil); !strings.Contains(out, "no estimates") {
		t.Fatalf("unexpected %q", out)
	}
}
