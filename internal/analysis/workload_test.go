package analysis

import (
	"strings"
	"testing"

	"ciflow/internal/params"
)

func TestEstimateWorkload(t *testing.T) {
	r := NewRunner()
	rows, err := r.EstimateWorkload(ResNet20, params.ARK, false, 25.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// OC total must be the lowest; totals must equal per-KS x count.
	ks := float64(ResNet20.KeySwitches())
	for _, row := range rows {
		want := row.PerKSms * ks / 1e3
		if diff := row.TotalSec - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: total %.3f != per-KS x count %.3f", row.Dataflow, row.TotalSec, want)
		}
	}
	if !(rows[2].TotalSec < rows[1].TotalSec && rows[1].TotalSec < rows[0].TotalSec) {
		t.Errorf("expected OC < DC < MP totals, got %+v", rows)
	}
	out := FormatWorkload(25.6, rows)
	if !strings.Contains(out, "ResNet-20") {
		t.Error("missing workload name")
	}
}

func TestWorkloadKeySwitches(t *testing.T) {
	if got := ResNet20.KeySwitches(); got != 3306+1226 {
		t.Fatalf("ResNet20 key switches = %d", got)
	}
	w := Workload{Rotations: 2, Mults: 3}
	if w.KeySwitches() != 5 {
		t.Fatal("key switch count wrong")
	}
}

func TestWorkloadSharedModUps(t *testing.T) {
	w := Workload{Rotations: 20, HoistGroups: []int{8, 4, 1}}
	// Size-1 "groups" save nothing; 8 and 4 save 7 and 3.
	if got := w.SharedModUpsSaved(); got != 10 {
		t.Fatalf("saved ModUps = %d, want 10", got)
	}
	if ResNet20.SharedModUpsSaved() != 0 {
		t.Fatal("ResNet20 declares no hoist groups")
	}
}

func TestEstimateWorkloadHoisted(t *testing.T) {
	r := NewRunner()
	w := Workload{Name: "bsgs", Rotations: 16, Mults: 1, HoistGroups: []int{8, 4}}
	rows, err := r.EstimateWorkload(w, params.BTS3, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := HoistedModUpFraction(params.BTS3)
	for _, row := range rows {
		if row.HoistSavedModUps != 10 {
			t.Fatalf("%s: saved %d ModUps, want 10", row.Dataflow, row.HoistSavedModUps)
		}
		// Hoisting removes exactly saved x ModUp-share switches.
		want := row.TotalSec - row.PerKSms*f*10/1e3
		if diff := row.HoistedTotalSec - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: hoisted total %.6f, want %.6f", row.Dataflow, row.HoistedTotalSec, want)
		}
		if !(row.HoistedTotalSec < row.TotalSec) {
			t.Fatalf("%s: hoisting did not reduce the estimate", row.Dataflow)
		}
	}
	out := FormatWorkload(64, rows)
	if !strings.Contains(out, "hoisted s") || !strings.Contains(out, "10 ModUp executions saved") {
		t.Fatalf("hoisted rendering missing: %q", out)
	}
	// Workloads without groups keep the original table shape.
	plain := FormatWorkload(64, []WorkloadEstimate{{Workload: "w", Dataflow: "MP"}})
	if strings.Contains(plain, "hoisted s") {
		t.Fatal("plain workload rendered a hoisted column")
	}
}

func TestFormatWorkloadEmpty(t *testing.T) {
	if out := FormatWorkload(8, nil); !strings.Contains(out, "no estimates") {
		t.Fatalf("unexpected %q", out)
	}
}
