package analysis

import (
	"strings"
	"testing"
)

func TestAblationOCF(t *testing.T) {
	r := NewRunner()
	rows, err := r.AblationOCF()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	fusedAny := false
	for _, row := range rows {
		if row.OCFMB > row.OCMB+1e-9 {
			t.Errorf("%s: OCF moved more data than OC", row.Bench)
		}
		if row.OCFms > row.OCms*1.001 {
			t.Errorf("%s: OCF slower than OC (%.2f vs %.2f ms)", row.Bench, row.OCFms, row.OCms)
		}
		if row.Fused {
			fusedAny = true
			if row.SavedPct <= 0 {
				t.Errorf("%s: fused but saved nothing", row.Bench)
			}
		}
	}
	if !fusedAny {
		t.Error("fusion never engaged; expected it for ARK/DPRIVE at 32MB")
	}
	t.Log("\n" + FormatOCF(rows))
}

func TestRoofline(t *testing.T) {
	r := NewRunner()
	rows, err := r.Roofline(64)
	if err != nil {
		t.Fatal(err)
	}
	// At DDR5 bandwidth the machine balance is 54.4e9/64e9 = 0.85
	// ops/byte; every MP configuration has AI above that in our model,
	// so check internal consistency rather than a fixed claim.
	for _, row := range rows {
		if (row.AI < row.BalanceAI) != row.MemoryBound {
			t.Errorf("%s/%s: classification inconsistent", row.Bench, row.Dataflow)
		}
	}
	// At DDR4-low bandwidth everything is memory bound (the paper's
	// "HE is memory bound" framing).
	low, err := r.Roofline(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range low {
		if !row.MemoryBound {
			t.Errorf("%s/%s compute-bound at 8 GB/s?", row.Bench, row.Dataflow)
		}
	}
	out := FormatRoofline(8, low)
	if !strings.Contains(out, "memory") {
		t.Error("formatting broken")
	}
}
