package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
	"ciflow/internal/rpu"
)

const mib = 1 << 20

// ---- Table II: DRAM transfers and arithmetic intensity ----

// TableIIRow is one benchmark's traffic and AI per dataflow.
type TableIIRow struct {
	Bench string
	MB    [3]float64 // MP, DC, OC total DRAM traffic (MiB, evk streamed)
	AI    [3]float64 // weighted modular ops per DRAM byte
}

// TableII reproduces paper Table II: total DRAM transfers including
// streamed evks with a 32 MB data memory, and the resulting
// arithmetic intensity, for all benchmarks and dataflows.
func (r *Runner) TableII() ([]TableIIRow, error) {
	var rows []TableIIRow
	for _, b := range params.All() {
		row := TableIIRow{Bench: b.Name}
		for i, df := range dataflow.AllDataflows() {
			s, err := r.Schedule(df, b, false, false)
			if err != nil {
				return nil, err
			}
			row.MB[i] = float64(s.Traffic.TotalBytes()) / mib
			row.AI[i] = s.ArithmeticIntensity()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableII renders the rows like the paper's table.
func FormatTableII(rows []TableIIRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: DRAM transfers (MB) incl. streamed evk, 32MB on-chip, and AI (ops/byte)\n")
	fmt.Fprintf(&sb, "%-10s %9s %6s %9s %6s %9s %6s\n", "Benchmark", "MP MB", "AI", "DC MB", "AI", "OC MB", "AI")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %9.0f %6.2f %9.0f %6.2f %9.0f %6.2f\n",
			r.Bench, r.MB[0], r.AI[0], r.MB[1], r.AI[1], r.MB[2], r.AI[2])
	}
	return sb.String()
}

// ---- Table III: benchmark parameters ----

// FormatTableIII renders the parameter sets with derived sizes.
func FormatTableIII() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: 128-bit-secure HKS parameter sets\n")
	fmt.Fprintf(&sb, "%-10s %5s %4s %4s %5s %6s %10s %10s\n",
		"Benchmark", "logN", "kl", "kp", "dnum", "alpha", "evk MiB", "temp MiB")
	for _, b := range params.All() {
		fmt.Fprintf(&sb, "%-10s %5d %4d %4d %5d %6d %10.0f %10.1f\n",
			b.Name, b.LogN, b.KL, b.KP, b.Dnum, b.Alpha(),
			float64(b.EvkBytes())/mib, float64(b.TempBytes())/mib)
	}
	return sb.String()
}

// ---- Table IV: OCbase bandwidth and speedups ----

// TableIVRow summarizes the OC-vs-MP comparison for one benchmark.
type TableIVRow struct {
	Bench      string
	OCBaseGBs  float64 // grid bandwidth where OC matches the baseline
	SavedBW    float64 // 64 / OCbase
	OCms, MPms float64 // runtimes at OCbase
	Speedup    float64 // MP/OC at OCbase
	BaselineMS float64 // MP at 64 GB/s (reference)
	OCIdle     float64 // compute idle fraction of OC at OCbase
	MPIdle     float64
}

// TableIV reproduces paper Table IV: the bandwidth at which OC (evk
// on-chip) matches the MP baseline running at 64 GB/s, the bandwidth
// saving, and the OC speedup over MP at that bandwidth.
func (r *Runner) TableIV() ([]TableIVRow, error) {
	var rows []TableIVRow
	for _, b := range params.All() {
		base, err := r.Baseline(b)
		if err != nil {
			return nil, err
		}
		cont, err := r.FindBandwidthToMatch(dataflow.OC, b, true, 1, base, 2048)
		if err != nil {
			return nil, err
		}
		bw := OCBaseGridGBs(cont)
		ocRes, err := r.Runtime(dataflow.OC, b, true, bw, 1)
		if err != nil {
			return nil, err
		}
		mpRes, err := r.Runtime(dataflow.MP, b, true, bw, 1)
		if err != nil {
			return nil, err
		}
		oc := ocRes.RuntimeSec * 1e3
		mp := mpRes.RuntimeSec * 1e3
		rows = append(rows, TableIVRow{
			Bench: b.Name, OCBaseGBs: bw, SavedBW: BaselineBandwidthGBs / bw,
			OCms: oc, MPms: mp, Speedup: mp / oc, BaselineMS: base,
			OCIdle: ocRes.CmpIdleFrac, MPIdle: mpRes.CmpIdleFrac,
		})
	}
	return rows, nil
}

// FormatTableIV renders the rows like the paper's table.
func FormatTableIV(rows []TableIVRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table IV: OC bandwidth matching MP@64GB/s baseline (evk on-chip)\n")
	fmt.Fprintf(&sb, "%-10s %10s %9s %9s %9s %9s %10s\n",
		"Benchmark", "OCbase", "SavedBW", "OC ms", "MP ms", "Speedup", "Base ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.1fG %8.2fx %9.2f %9.2f %8.2fx %10.2f\n",
			r.Bench, r.OCBaseGBs, r.SavedBW, r.OCms, r.MPms, r.Speedup, r.BaselineMS)
	}
	return sb.String()
}

// ---- Table V: matching ARK's saturation point ----

// SaturationGBs is where ARK's OC becomes fully compute bound
// (paper §VI-C-1: 128 GB/s).
const SaturationGBs = 128

// TableVRow is the configuration one dataflow needs to match ARK's
// saturation-point performance.
type TableVRow struct {
	Dataflow  string
	BWGBs     float64
	Modops    float64 // MODOPS multiplier
	RelBW     float64 // vs the saturation point's 128 GB/s
	RelModops float64
}

// TableV reproduces paper Table V: the (bandwidth, MODOPS) each
// dataflow needs to match ARK's saturation point, holding MODOPS at
// 2x as the paper does.
func (r *Runner) TableV() ([]TableVRow, error) {
	b := params.ARK
	sat, err := r.RuntimeMS(dataflow.OC, b, true, SaturationGBs, 1)
	if err != nil {
		return nil, err
	}
	rows := []TableVRow{{Dataflow: "Sat. Point", BWGBs: SaturationGBs, Modops: 1, RelBW: 1, RelModops: 1}}
	for _, df := range []dataflow.Dataflow{dataflow.OC, dataflow.DC, dataflow.MP} {
		bw, err := r.FindBandwidthToMatch(df, b, true, 2, sat, 4096)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TableVRow{
			Dataflow: df.String(), BWGBs: bw, Modops: 2,
			RelBW: bw / SaturationGBs, RelModops: 2,
		})
	}
	return rows, nil
}

// FormatTableV renders the rows like the paper's table.
func FormatTableV(rows []TableVRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table V: configurations matching ARK's saturation point (OC@128GB/s, 1x MODOPS)\n")
	fmt.Fprintf(&sb, "%-11s %9s %8s %8s %11s\n", "Dataflow", "BW GB/s", "MODOPS", "Rel.BW", "Rel.MODOPS")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %9.2f %7.2fx %7.2fx %10.2fx\n",
			r.Dataflow, r.BWGBs, r.Modops, r.RelBW, r.RelModops)
	}
	return sb.String()
}

// ---- §VI-B area claim ----

// AreaSummary returns the paper's SRAM-saving numbers: the 392 MB
// (evk-resident) RPU versus the 32 MB (evk-streamed) RPU.
func AreaSummary() string {
	big := int64(32*mib) + params.BTS3.EvkBytes() // 392 MB configuration
	small := int64(32 * mib)
	return fmt.Sprintf(
		"On-chip SRAM: %.0f MiB -> %.0f MiB (%.2fx saving)\nRPU area:     %.2f mm^2 -> %.2f mm^2\n",
		float64(big)/mib, float64(small)/mib, float64(big)/float64(small),
		rpu.AreaMM2(big), rpu.AreaMM2(small))
}
