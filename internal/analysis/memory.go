package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// ---- On-chip memory requirements (paper §IV-A/B/C) ----
//
// The paper quantifies each dataflow by the memory it needs to avoid
// excessive off-chip traffic: MP wants the full intermediate working
// set on-chip (≥675 MB for BTS3), DC needs 255 MB, and OC delivers
// near-compulsory traffic from 32 MB. These drivers regenerate that
// analysis.

// MemoryPoint is one (memory size, traffic) sample.
type MemoryPoint struct {
	MemMiB   int64
	TotalMB  [3]float64 // MP, DC, OC non-evk traffic (MiB)
	Overhead [3]float64 // traffic / compulsory (1.0 = perfect reuse)
}

// MemorySweep evaluates non-evk DRAM traffic across on-chip memory
// sizes. Sizes too small for a dataflow's pinned working set are
// reported as +Inf overhead.
func MemorySweep(b params.Benchmark, memMiBs []int64) ([]MemoryPoint, error) {
	compulsory := float64(b.InputBytes()+b.OutputBytes()) / mib
	var pts []MemoryPoint
	for _, m := range memMiBs {
		p := MemoryPoint{MemMiB: m}
		for i, df := range dataflow.AllDataflows() {
			s, err := dataflow.Generate(df, dataflow.Config{
				Bench:        b,
				DataMemBytes: m * mib,
				EvkOnChip:    true, // isolate data traffic
			})
			if err != nil {
				p.TotalMB[i] = -1
				p.Overhead[i] = -1
				continue
			}
			tot := float64(s.Traffic.LoadBytes+s.Traffic.StoreBytes) / mib
			p.TotalMB[i] = tot
			p.Overhead[i] = tot / compulsory
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// SpillFreeMemoryMiB binary-searches the smallest on-chip memory (in
// tower granularity) at which the dataflow achieves compulsory
// traffic: every input byte loaded once, every output byte stored
// once, nothing else.
func SpillFreeMemoryMiB(df dataflow.Dataflow, b params.Benchmark) (int64, error) {
	compulsory := b.InputBytes() + b.OutputBytes()
	tb := b.TowerBytes()
	isFree := func(towers int64) (bool, error) {
		s, err := dataflow.Generate(df, dataflow.Config{
			Bench:        b,
			DataMemBytes: towers * tb,
			EvkOnChip:    true,
		})
		if err != nil {
			return false, nil // too small to schedule at all
		}
		return s.Traffic.LoadBytes+s.Traffic.StoreBytes == compulsory, nil
	}
	lo, hi := int64(1), int64(4096)
	if ok, err := isFree(hi); err != nil {
		return 0, err
	} else if !ok {
		return 0, fmt.Errorf("analysis: %s/%s not spill-free even at %d towers", df, b.Name, hi)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := isFree(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi * tb / mib, nil
}

// MemoryRequirements summarizes the spill-free memory per dataflow for
// one benchmark (the §IV working-set comparison).
type MemoryRequirements struct {
	Bench     string
	SpillFree [3]int64   // MiB per dataflow
	At32Over  [3]float64 // traffic overhead factor at 32 MiB
}

// MemoryRequirementsFor computes the summary.
func MemoryRequirementsFor(b params.Benchmark) (MemoryRequirements, error) {
	out := MemoryRequirements{Bench: b.Name}
	for i, df := range dataflow.AllDataflows() {
		m, err := SpillFreeMemoryMiB(df, b)
		if err != nil {
			return out, err
		}
		out.SpillFree[i] = m
	}
	pts, err := MemorySweep(b, []int64{32})
	if err != nil {
		return out, err
	}
	out.At32Over = pts[0].Overhead
	return out, nil
}

// FormatMemory renders a memory sweep.
func FormatMemory(b params.Benchmark, pts []MemoryPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Data traffic vs on-chip memory (%s, evk on-chip, non-evk bytes)\n", b.Name)
	fmt.Fprintf(&sb, "%9s %10s %10s %10s %9s %9s %9s\n",
		"MiB", "MP MiB", "DC MiB", "OC MiB", "MP ovh", "DC ovh", "OC ovh")
	for _, p := range pts {
		row := fmt.Sprintf("%9d", p.MemMiB)
		for i := 0; i < 3; i++ {
			if p.TotalMB[i] < 0 {
				row += fmt.Sprintf(" %10s", "n/a")
			} else {
				row += fmt.Sprintf(" %10.0f", p.TotalMB[i])
			}
		}
		for i := 0; i < 3; i++ {
			if p.Overhead[i] < 0 {
				row += fmt.Sprintf(" %9s", "n/a")
			} else {
				row += fmt.Sprintf(" %8.1fx", p.Overhead[i])
			}
		}
		sb.WriteString(row + "\n")
	}
	return sb.String()
}
