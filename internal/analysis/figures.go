package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// ---- Figure 4: runtime vs bandwidth for the three dataflows ----

// SweepPoint is one bandwidth point of a Figure 4 curve set.
type SweepPoint struct {
	BWGBs float64
	MS    [3]float64 // MP, DC, OC runtimes (ms)
	Idle  [3]float64 // compute idle fractions
}

// Figure4 sweeps off-chip bandwidth with evks pre-loaded on-chip
// (392 MB SRAM configuration) for one benchmark. The paper extends
// the sweep to 1 TB/s for ARK and BTS3.
func (r *Runner) Figure4(b params.Benchmark, bws []float64) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, bw := range bws {
		p := SweepPoint{BWGBs: bw}
		for i, df := range dataflow.AllDataflows() {
			res, err := r.Runtime(df, b, true, bw, 1)
			if err != nil {
				return nil, err
			}
			p.MS[i] = res.RuntimeSec * 1e3
			p.Idle[i] = res.CmpIdleFrac
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// FormatSweep renders a bandwidth sweep as an ASCII table.
func FormatSweep(title string, pts []SweepPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%10s %10s %10s %10s %8s %8s %8s\n",
		"BW GB/s", "MP ms", "DC ms", "OC ms", "MPidle", "DCidle", "OCidle")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%10.1f %10.2f %10.2f %10.2f %7.0f%% %7.0f%% %7.0f%%\n",
			p.BWGBs, p.MS[0], p.MS[1], p.MS[2], p.Idle[0]*100, p.Idle[1]*100, p.Idle[2]*100)
	}
	return sb.String()
}

// ---- Figures 5 & 6: evk streamed vs on-chip ----

// StreamPoint compares the streamed-evk and on-chip-evk runtimes of
// the three dataflows at one bandwidth.
type StreamPoint struct {
	BWGBs    float64
	OnChipMS [3]float64
	StreamMS [3]float64
}

// FigureStream sweeps bandwidth with evks streamed versus on-chip for
// one benchmark (Figure 5 uses BTS3, Figure 6 ARK).
func (r *Runner) FigureStream(b params.Benchmark, bws []float64) ([]StreamPoint, error) {
	var pts []StreamPoint
	for _, bw := range bws {
		p := StreamPoint{BWGBs: bw}
		for i, df := range dataflow.AllDataflows() {
			on, err := r.Runtime(df, b, true, bw, 1)
			if err != nil {
				return nil, err
			}
			st, err := r.Runtime(df, b, false, bw, 1)
			if err != nil {
				return nil, err
			}
			p.OnChipMS[i] = on.RuntimeSec * 1e3
			p.StreamMS[i] = st.RuntimeSec * 1e3
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// FormatStream renders a streamed-vs-on-chip sweep.
func FormatStream(title string, pts []StreamPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (solid: evk streamed, dotted: evk on-chip)\n", title)
	fmt.Fprintf(&sb, "%10s %28s %28s\n", "", "streamed  MP/DC/OC (ms)", "on-chip  MP/DC/OC (ms)")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%10.1f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			p.BWGBs, p.StreamMS[0], p.StreamMS[1], p.StreamMS[2],
			p.OnChipMS[0], p.OnChipMS[1], p.OnChipMS[2])
	}
	return sb.String()
}

// ---- Figure 7: OC streaming slowdown and equivalent bandwidth ----

// Figure7Row reports, per benchmark, OC at its OCbase bandwidth with
// evks on-chip versus streamed, and the (higher) bandwidth at which
// streaming matches the on-chip runtime.
type Figure7Row struct {
	Bench         string
	OCBaseGBs     float64
	OnChipMS      float64 // OC, evk on-chip, at OCbase
	StreamMS      float64 // OC, evk streamed, at OCbase
	Slowdown      float64
	EquivGBs      float64 // streamed bandwidth matching the on-chip runtime
	ExtraBWFactor float64 // EquivGBs / OCbase
}

// Figure7 reproduces the paper's streaming-slowdown study (§VI-B).
func (r *Runner) Figure7() ([]Figure7Row, error) {
	ivRows, err := r.TableIV()
	if err != nil {
		return nil, err
	}
	var rows []Figure7Row
	for i, b := range params.All() {
		bw := ivRows[i].OCBaseGBs
		on, err := r.RuntimeMS(dataflow.OC, b, true, bw, 1)
		if err != nil {
			return nil, err
		}
		st, err := r.RuntimeMS(dataflow.OC, b, false, bw, 1)
		if err != nil {
			return nil, err
		}
		equiv, err := r.FindBandwidthToMatch(dataflow.OC, b, false, 1, on, 4096)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure7Row{
			Bench: b.Name, OCBaseGBs: bw,
			OnChipMS: on, StreamMS: st, Slowdown: st / on,
			EquivGBs: equiv, ExtraBWFactor: equiv / bw,
		})
	}
	return rows, nil
}

// FormatFigure7 renders the study.
func FormatFigure7(rows []Figure7Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: OC with evks streamed vs on-chip (12.25x SRAM saving)\n")
	fmt.Fprintf(&sb, "%-10s %9s %12s %12s %9s %10s %8s\n",
		"Benchmark", "OCbase", "on-chip ms", "stream ms", "slowdown", "equiv BW", "xBW")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %8.1fG %12.2f %12.2f %8.2fx %9.2fG %7.2fx\n",
			r.Bench, r.OCBaseGBs, r.OnChipMS, r.StreamMS, r.Slowdown, r.EquivGBs, r.ExtraBWFactor)
	}
	return sb.String()
}

// ---- Figure 8: MODOPS scaling ----

// ModopsPoint is one bandwidth point of the ARK MODOPS study.
type ModopsPoint struct {
	BWGBs float64
	MS    map[int]float64 // MODOPS multiplier -> runtime ms
}

// ModopsScales are the paper's multipliers.
var ModopsScales = []int{1, 2, 4, 8, 16}

// Figure8 reproduces the ARK OC runtime across bandwidths at 1–16x
// MODOPS with evks on-chip (§VI-C-2).
func (r *Runner) Figure8(b params.Benchmark, bws []float64) ([]ModopsPoint, error) {
	var pts []ModopsPoint
	for _, bw := range bws {
		p := ModopsPoint{BWGBs: bw, MS: map[int]float64{}}
		for _, sc := range ModopsScales {
			ms, err := r.RuntimeMS(dataflow.OC, b, true, bw, float64(sc))
			if err != nil {
				return nil, err
			}
			p.MS[sc] = ms
		}
		pts = append(pts, p)
	}
	return pts, nil
}

// FormatFigure8 renders the MODOPS sweep.
func FormatFigure8(title string, pts []ModopsPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%10s", "BW GB/s")
	for _, sc := range ModopsScales {
		fmt.Fprintf(&sb, " %9s", fmt.Sprintf("%dx ms", sc))
	}
	sb.WriteString("\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%10.1f", p.BWGBs)
		for _, sc := range ModopsScales {
			fmt.Fprintf(&sb, " %9.2f", p.MS[sc])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ---- Figure 9: equivalent configurations with streamed evks ----

// Figure9Row is one (bandwidth, MODOPS) configuration that matches a
// target runtime with evks streamed and 32 MB on-chip memory.
type Figure9Row struct {
	Modops   float64
	BWGBs    float64
	TargetMS float64
}

// Figure9 finds, for each MODOPS multiplier, the bandwidth at which
// ARK's OC with streamed evks matches (a) the saturation-point
// runtime and (b) the baseline runtime (§VI-C-2, Figure 9).
func (r *Runner) Figure9() (sat, base []Figure9Row, err error) {
	b := params.ARK
	satMS, err := r.RuntimeMS(dataflow.OC, b, true, SaturationGBs, 1)
	if err != nil {
		return nil, nil, err
	}
	baseMS, err := r.Baseline(b)
	if err != nil {
		return nil, nil, err
	}
	for _, sc := range []float64{1, 2, 4} {
		if bw, err := r.FindBandwidthToMatch(dataflow.OC, b, false, sc, satMS, 8192); err == nil {
			sat = append(sat, Figure9Row{Modops: sc, BWGBs: bw, TargetMS: satMS})
		}
		if bw, err := r.FindBandwidthToMatch(dataflow.OC, b, false, sc, baseMS, 8192); err == nil {
			base = append(base, Figure9Row{Modops: sc, BWGBs: bw, TargetMS: baseMS})
		}
	}
	return sat, base, nil
}

// FormatFigure9 renders both equivalence sets.
func FormatFigure9(sat, base []Figure9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: ARK OC with streamed evks, configs matching reference performance\n")
	write := func(name string, rows []Figure9Row) {
		fmt.Fprintf(&sb, "(%s)\n%10s %10s %12s\n", name, "MODOPS", "BW GB/s", "target ms")
		for _, r := range rows {
			fmt.Fprintf(&sb, "%9.0fx %10.2f %12.2f\n", r.Modops, r.BWGBs, r.TargetMS)
		}
	}
	write("a: saturation point", sat)
	write("b: baseline", base)
	return sb.String()
}

// ---- §IV-D key-compression ablation ----

// KeyCompressionRow compares streamed-evk AI with and without the
// 2x key compression of MAD.
type KeyCompressionRow struct {
	Bench      string
	AI, AIComp float64
	MB, MBComp float64
}

// AblationKeyCompression reproduces the paper's claim that key
// compression boosts OC's arithmetic intensity (up to 3.82 ops/byte).
func (r *Runner) AblationKeyCompression() ([]KeyCompressionRow, error) {
	var rows []KeyCompressionRow
	for _, b := range params.All() {
		plain, err := r.Schedule(dataflow.OC, b, false, false)
		if err != nil {
			return nil, err
		}
		comp, err := r.Schedule(dataflow.OC, b, false, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KeyCompressionRow{
			Bench:  b.Name,
			AI:     plain.ArithmeticIntensity(),
			AIComp: comp.ArithmeticIntensity(),
			MB:     float64(plain.Traffic.TotalBytes()) / mib,
			MBComp: float64(comp.Traffic.TotalBytes()) / mib,
		})
	}
	return rows, nil
}

// FormatKeyCompression renders the ablation.
func FormatKeyCompression(rows []KeyCompressionRow) string {
	var sb strings.Builder
	sb.WriteString("Key-compression ablation (OC, evk streamed, 32MB on-chip)\n")
	fmt.Fprintf(&sb, "%-10s %10s %8s %12s %10s\n", "Benchmark", "MB", "AI", "MB (comp)", "AI (comp)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %10.0f %8.2f %12.0f %10.2f\n", r.Bench, r.MB, r.AI, r.MBComp, r.AIComp)
	}
	return sb.String()
}
