package analysis

import (
	"fmt"
	"strings"

	"ciflow/internal/dataflow"
	"ciflow/internal/params"
)

// ---- OCF ablation (this repository's extension, not in the paper) ----

// OCFRow compares plain OC with the fused-ModDown OCF variant.
type OCFRow struct {
	Bench      string
	OCMB       float64 // total traffic, evk streamed (MiB)
	OCFMB      float64
	SavedPct   float64
	OCms       float64 // runtime at the benchmark's OCbase bandwidth
	OCFms      float64
	SpeedupPct float64
	Fused      bool // false when OCF fell back to OC
}

// AblationOCF quantifies the fused-ModDown extension: traffic saved
// and the runtime effect at each benchmark's OCbase bandwidth with
// streamed keys.
func (r *Runner) AblationOCF() ([]OCFRow, error) {
	iv, err := r.TableIV()
	if err != nil {
		return nil, err
	}
	var rows []OCFRow
	for i, b := range params.All() {
		oc, err := r.Schedule(dataflow.OC, b, false, false)
		if err != nil {
			return nil, err
		}
		ocf, err := r.Schedule(dataflow.OCF, b, false, false)
		if err != nil {
			return nil, err
		}
		bw := iv[i].OCBaseGBs
		ocMS, err := r.RuntimeMS(dataflow.OC, b, false, bw, 1)
		if err != nil {
			return nil, err
		}
		ocfMS, err := r.RuntimeMS(dataflow.OCF, b, false, bw, 1)
		if err != nil {
			return nil, err
		}
		ocB := float64(oc.Traffic.TotalBytes())
		ocfB := float64(ocf.Traffic.TotalBytes())
		rows = append(rows, OCFRow{
			Bench: b.Name,
			OCMB:  ocB / mib, OCFMB: ocfB / mib,
			SavedPct: 100 * (ocB - ocfB) / ocB,
			OCms:     ocMS, OCFms: ocfMS,
			SpeedupPct: 100 * (ocMS - ocfMS) / ocMS,
			Fused:      ocf.Traffic != oc.Traffic,
		})
	}
	return rows, nil
}

// FormatOCF renders the ablation.
func FormatOCF(rows []OCFRow) string {
	var sb strings.Builder
	sb.WriteString("OCF ablation: Output-Centric with fused ModDown (extension; evk streamed)\n")
	fmt.Fprintf(&sb, "%-10s %9s %9s %8s %9s %9s %9s %7s\n",
		"Benchmark", "OC MB", "OCF MB", "saved", "OC ms", "OCF ms", "faster", "fused")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %9.0f %9.0f %7.1f%% %9.2f %9.2f %8.1f%% %7v\n",
			r.Bench, r.OCMB, r.OCFMB, r.SavedPct, r.OCms, r.OCFms, r.SpeedupPct, r.Fused)
	}
	return sb.String()
}

// ---- Roofline classification ----

// RooflineRow classifies one configuration as memory- or compute-
// bound under the roofline model: a kernel with arithmetic intensity
// AI on a machine with balance point MODOPS/BW is memory-bound iff
// AI < balance.
type RooflineRow struct {
	Bench       string
	Dataflow    string
	AI          float64 // ops per DRAM byte
	BalanceAI   float64 // machine balance at the given bandwidth
	MemoryBound bool
}

// Roofline classifies all benchmark × dataflow pairs at one bandwidth
// (evk streamed). This regenerates the paper's framing that "HE is
// memory bound" on conventional memory systems — and shows where OC
// escapes it.
func (r *Runner) Roofline(bwGBs float64) ([]RooflineRow, error) {
	balance := r.RPU.ModopsPerSec() / (bwGBs * GB)
	var rows []RooflineRow
	for _, b := range params.All() {
		for _, df := range dataflow.AllDataflows() {
			s, err := r.Schedule(df, b, false, false)
			if err != nil {
				return nil, err
			}
			ai := s.ArithmeticIntensity()
			rows = append(rows, RooflineRow{
				Bench: b.Name, Dataflow: df.String(),
				AI: ai, BalanceAI: balance, MemoryBound: ai < balance,
			})
		}
	}
	return rows, nil
}

// FormatRoofline renders the classification.
func FormatRoofline(bwGBs float64, rows []RooflineRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Roofline at %.1f GB/s (machine balance %.2f ops/byte)\n", bwGBs, rows[0].BalanceAI)
	fmt.Fprintf(&sb, "%-10s %-4s %8s %14s\n", "Benchmark", "DF", "AI", "bound")
	for _, r := range rows {
		bound := "compute"
		if r.MemoryBound {
			bound = "memory"
		}
		fmt.Fprintf(&sb, "%-10s %-4s %8.2f %14s\n", r.Bench, r.Dataflow, r.AI, bound)
	}
	return sb.String()
}
