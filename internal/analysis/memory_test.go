package analysis

import (
	"testing"

	"ciflow/internal/params"
)

func TestMemorySweepMonotone(t *testing.T) {
	pts, err := MemorySweep(params.ARK, []int64{8, 16, 32, 64, 128, 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		for d := 0; d < 3; d++ {
			if pts[i].TotalMB[d] < 0 || pts[i-1].TotalMB[d] < 0 {
				continue
			}
			// Traffic must not grow with more memory. Allow a tower of
			// slack for policy-threshold effects.
			if pts[i].TotalMB[d] > pts[i-1].TotalMB[d]+1 {
				t.Errorf("dataflow %d: traffic grew from %d to %d MiB memory (%.0f -> %.0f)",
					d, pts[i-1].MemMiB, pts[i].MemMiB, pts[i-1].TotalMB[d], pts[i].TotalMB[d])
			}
		}
	}
	// At 512 MiB everything is compulsory for ARK.
	last := pts[len(pts)-1]
	for d := 0; d < 3; d++ {
		if last.Overhead[d] > 1.01 {
			t.Errorf("dataflow %d: overhead %.2fx at 512 MiB", d, last.Overhead[d])
		}
	}
}

func TestSpillFreeMemoryOrdering(t *testing.T) {
	// Paper §IV: MP needs the most on-chip memory to avoid spills
	// (675 MB for BTS3), DC less (255 MB), OC the least.
	for _, b := range []params.Benchmark{params.BTS3, params.ARK} {
		req, err := MemoryRequirementsFor(b)
		if err != nil {
			t.Fatal(err)
		}
		mp, dc, oc := req.SpillFree[0], req.SpillFree[1], req.SpillFree[2]
		// OC may need a couple of extra towers at the exact knee (it
		// reads the input twice: once for INTT, once for the bypass),
		// so allow tower-level slack on the OC<=DC leg; the magnitude
		// ordering against MP must be strict.
		slack := 4 * b.TowerBytes() / (1 << 20)
		if !(oc <= dc+slack && dc <= mp) {
			t.Errorf("%s: spill-free MiB MP=%d DC=%d OC=%d violates OC <= DC <= MP", b.Name, mp, dc, oc)
		}
		if req.At32Over[2] >= req.At32Over[1] || req.At32Over[1] >= req.At32Over[0] {
			t.Errorf("%s: 32MiB overhead ordering violated: %v", b.Name, req.At32Over)
		}
		t.Logf("%s spill-free MiB: MP=%d DC=%d OC=%d; overhead at 32MiB: MP=%.1fx DC=%.1fx OC=%.1fx",
			b.Name, mp, dc, oc, req.At32Over[0], req.At32Over[1], req.At32Over[2])
	}
}

func TestBTS3WorkingSetMagnitudes(t *testing.T) {
	// The paper's §IV-A/B numbers: MP needs at least 675 MB, DC
	// 255 MB. Our policies must land in those regimes (hundreds of MB
	// for MP, strictly less for DC) while OC runs close to compulsory
	// traffic from 32 MB (overhead well below MP's).
	req, err := MemoryRequirementsFor(params.BTS3)
	if err != nil {
		t.Fatal(err)
	}
	if req.SpillFree[0] < 300 {
		t.Errorf("MP spill-free %d MiB; paper says ~675 MB (hundreds)", req.SpillFree[0])
	}
	if req.SpillFree[1] >= req.SpillFree[0] {
		t.Errorf("DC (%d MiB) should need less than MP (%d MiB)", req.SpillFree[1], req.SpillFree[0])
	}
	if req.At32Over[2] >= req.At32Over[0] {
		t.Errorf("OC overhead at 32 MiB (%.1fx) should beat MP (%.1fx)", req.At32Over[2], req.At32Over[0])
	}
}
