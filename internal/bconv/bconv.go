// Package bconv implements fast RNS basis conversion (the BConv
// kernel, paper ModUp P2 / ModDown P2), following the approximate
// conversion of Halevi–Polyakov–Shoup used by full-RNS CKKS.
//
// For a source basis B = {b_0..b_{k-1}} with product B* and a target
// basis C, the conversion of x given by residues x_i is
//
//	Conv(x) ≡ Σ_i [x_i · (B*/b_i)^{-1} mod b_i] · (B*/b_i)   (mod c_j)
//
// which equals x̂ + u·B* for the representative x̂ ∈ [0, B*) and some
// integer overshoot 0 ≤ u < k. The overshoot adds a small multiple of
// B* that hybrid key switching absorbs into its noise budget.
//
// The kernel costs N·|B|·|C| modular multiply-accumulates plus N·|B|
// multiplications — exactly the count the paper charges BConv with
// (§III-B: "roughly N×α×β modular multiplications").
//
// The conversion decomposes into per-tower tiles (YScaleRow for the ŷ
// pre-multiplication, ConvertTowerFromY for one destination tower),
// which are exposed so internal/hks can schedule them as independent
// tasks on the internal/engine worker pool under any of the paper's
// dataflows. Convert and ConvertExact run the same tiles serially over
// pooled scratch, so repeated conversions allocate nothing.
package bconv

import (
	"fmt"
	"math/big"
	"sync"

	"ciflow/internal/ring"
)

// Converter performs basis conversion from a fixed source basis to a
// fixed destination basis over one ring. Immutable after construction
// (the scratch pool is internally synchronized); safe for concurrent
// use.
type Converter struct {
	r   *ring.Ring
	src ring.Basis
	dst ring.Basis

	// bHatInv[i] = (B*/b_i)^(-1) mod b_i
	bHatInv []uint64
	// bHatMod[i][j] = (B*/b_i) mod c_j
	bHatMod [][]uint64
	// srcProdMod[j] = B* mod c_j, the overshoot correction factor.
	srcProdMod []uint64
	// srcInv[i] = 1/b_i as a float, for the overshoot estimate.
	srcInv []float64

	scratch sync.Pool // *convScratch
}

type convScratch struct {
	y [][]uint64 // |src| rows of N: the ŷ_i vectors
	u []uint64   // overshoot per coefficient
}

// New builds a Converter from basis src to basis dst. The bases must
// be disjoint (a tower cannot be converted onto itself).
func New(r *ring.Ring, src, dst ring.Basis) (*Converter, error) {
	if len(src) == 0 || len(dst) == 0 {
		return nil, fmt.Errorf("bconv: empty basis (src=%v dst=%v)", src, dst)
	}
	for _, t := range dst {
		if src.Contains(t) {
			return nil, fmt.Errorf("bconv: tower %d in both source and destination", t)
		}
	}
	c := &Converter{
		r:          r,
		src:        append(ring.Basis(nil), src...),
		dst:        append(ring.Basis(nil), dst...),
		bHatInv:    make([]uint64, len(src)),
		bHatMod:    make([][]uint64, len(src)),
		srcProdMod: make([]uint64, len(dst)),
		srcInv:     make([]float64, len(src)),
	}
	B := r.BasisProduct(src)
	for i, ti := range src {
		bi := new(big.Int).SetUint64(r.Moduli[ti])
		bHat := new(big.Int).Div(B, bi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(bHat, bi), bi)
		if inv == nil {
			return nil, fmt.Errorf("bconv: moduli not coprime at tower %d", ti)
		}
		c.bHatInv[i] = inv.Uint64()
		c.srcInv[i] = 1 / float64(r.Moduli[ti])
		c.bHatMod[i] = make([]uint64, len(dst))
		for j, tj := range dst {
			cj := new(big.Int).SetUint64(r.Moduli[tj])
			c.bHatMod[i][j] = new(big.Int).Mod(bHat, cj).Uint64()
		}
	}
	for j, tj := range dst {
		c.srcProdMod[j] = bigModUint64(B, r.Moduli[tj])
	}
	c.scratch.New = func() any {
		s := &convScratch{
			y: make([][]uint64, len(c.src)),
			u: make([]uint64, r.N),
		}
		for i := range s.y {
			s.y[i] = make([]uint64, r.N)
		}
		return s
	}
	return c, nil
}

// Src returns the converter's source basis.
func (c *Converter) Src() ring.Basis { return c.src }

// Dst returns the converter's destination basis.
func (c *Converter) Dst() ring.Basis { return c.dst }

func (c *Converter) checkConvert(in, out *ring.Poly) {
	if !in.Basis.Equal(c.src) {
		panic(fmt.Sprintf("bconv: input basis %v, converter source %v", in.Basis, c.src))
	}
	if !out.Basis.Equal(c.dst) {
		panic(fmt.Sprintf("bconv: output basis %v, converter destination %v", out.Basis, c.dst))
	}
	if in.IsNTT {
		panic("bconv: conversion requires coefficient domain")
	}
}

// serialFor runs fn(0..n-1) on the caller, the fallback for a nil
// Runner.
func serialFor(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func loop(e ring.Runner) func(int, func(int)) {
	if e == nil {
		return serialFor
	}
	return e.ParallelFor
}

// ---- Per-tower tiles ----
//
// These are the building blocks the dataflow schedules tile over
// towers; each is safe to run concurrently with tiles touching other
// rows.

// YScaleRow computes ŷ_i = x_i · (B*/b_i)^{-1} mod b_i for source
// tower index i. in is the tower's coefficient-domain row; out
// receives the scaled row and may alias in.
func (c *Converter) YScaleRow(i int, in, out []uint64) {
	m := c.r.Mods[c.src[i]]
	w := c.bHatInv[i]
	for k := range in {
		out[k] = m.Mul(in[k], w)
	}
}

// ConvertTowerFromY accumulates destination tower dstIdx (an index
// into Dst) from the pre-scaled ŷ rows, overwriting dst. Combined
// with YScaleRow it is bit-exact with Convert's per-tower result.
func (c *Converter) ConvertTowerFromY(y [][]uint64, dstIdx int, dst []uint64) {
	m := c.r.Mods[c.dst[dstIdx]]
	for k := range dst {
		dst[k] = 0
	}
	for i := range c.src {
		w := c.bHatMod[i][dstIdx]
		yi := y[i]
		for k := range dst {
			dst[k] = m.Add(dst[k], m.Mul(yi[k], w))
		}
	}
}

// Overshoot estimates u_k = round(Σ_i ŷ_i[k] / b_i) for coefficients
// k in [from, to), writing into u[from:to]. The float sum runs in
// ascending source order so chunked and serial evaluation agree
// bit-exactly.
func (c *Converter) Overshoot(y [][]uint64, u []uint64, from, to int) {
	for k := from; k < to; k++ {
		var v float64
		for i := range c.src {
			v += float64(y[i][k]) * c.srcInv[i]
		}
		u[k] = uint64(v + 0.5)
	}
}

// ConvertExactTowerFromY is ConvertTowerFromY with the overshoot u
// removed: dst_k = Σ_i ŷ_i[k]·(B*/b_i) − u_k·B* (mod c_j). Combined
// with YScaleRow and Overshoot it is bit-exact with ConvertExact's
// per-tower result.
func (c *Converter) ConvertExactTowerFromY(y [][]uint64, u []uint64, dstIdx int, dst []uint64) {
	m := c.r.Mods[c.dst[dstIdx]]
	bMod := c.srcProdMod[dstIdx]
	for k := range dst {
		var acc uint64
		for i := range c.src {
			acc = m.Add(acc, m.Mul(y[i][k], c.bHatMod[i][dstIdx]))
		}
		dst[k] = m.Sub(acc, m.Mul(m.Reduce(u[k]), bMod))
	}
}

// ---- Full conversions ----

// Convert converts in (coefficient domain, basis = Src) into out
// (basis = Dst), overwriting out. in is not modified. Scratch comes
// from an internal pool, so steady-state conversion does not allocate.
func (c *Converter) Convert(in, out *ring.Poly) { c.convert(nil, in, out) }

// ConvertWith is Convert with the per-tower tiles fanned out on e
// (nil e runs serially). Bit-exact with Convert.
func (c *Converter) ConvertWith(e ring.Runner, in, out *ring.Poly) { c.convert(e, in, out) }

func (c *Converter) convert(e ring.Runner, in, out *ring.Poly) {
	c.checkConvert(in, out)
	pf := loop(e)
	s := c.scratch.Get().(*convScratch)
	pf(len(c.src), func(i int) {
		c.YScaleRow(i, in.Coeffs[i], s.y[i])
	})
	pf(len(c.dst), func(j int) {
		c.ConvertTowerFromY(s.y, j, out.Coeffs[j])
	})
	c.scratch.Put(s)
	out.IsNTT = false
}

// ConvertExact converts in into out like Convert, but removes the
// overshoot with the Halevi–Polyakov–Shoup floating-point correction:
// u = round(Σ_i y_i / b_i) is subtracted, so the result is the
// *centered* representative x̃ ∈ [-B*/2, B*/2) reduced into each
// destination tower. Used by ModDown, where the overshoot would
// otherwise add P-scaled noise.
func (c *Converter) ConvertExact(in, out *ring.Poly) { c.convertExact(nil, in, out) }

// ConvertExactWith is ConvertExact with the per-tower tiles fanned
// out on e (nil e runs serially). Bit-exact with ConvertExact.
func (c *Converter) ConvertExactWith(e ring.Runner, in, out *ring.Poly) {
	c.convertExact(e, in, out)
}

// OvershootChunk bounds the coefficients one Overshoot tile covers
// when the estimate is parallelized; internal/hks tiles its ModDown
// overshoot nodes with the same granularity.
const OvershootChunk = 2048

func (c *Converter) convertExact(e ring.Runner, in, out *ring.Poly) {
	c.checkConvert(in, out)
	pf := loop(e)
	n := c.r.N
	s := c.scratch.Get().(*convScratch)
	pf(len(c.src), func(i int) {
		c.YScaleRow(i, in.Coeffs[i], s.y[i])
	})
	chunks := (n + OvershootChunk - 1) / OvershootChunk
	pf(chunks, func(ci int) {
		from := ci * OvershootChunk
		to := from + OvershootChunk
		if to > n {
			to = n
		}
		c.Overshoot(s.y, s.u, from, to)
	})
	pf(len(c.dst), func(j int) {
		c.ConvertExactTowerFromY(s.y, s.u, j, out.Coeffs[j])
	})
	c.scratch.Put(s)
	out.IsNTT = false
}

func bigModUint64(x *big.Int, q uint64) uint64 {
	return new(big.Int).Mod(x, new(big.Int).SetUint64(q)).Uint64()
}

// ConvertTower computes only destination tower dstIdx (an index into
// Dst) of the conversion, writing the length-N result into dst. This
// is the tile the Output-Centric dataflow schedules: one output tower
// at a time from the resident source towers (paper §IV-C).
func (c *Converter) ConvertTower(in *ring.Poly, dstIdx int, dst []uint64) {
	if !in.Basis.Equal(c.src) {
		panic("bconv: input basis mismatch")
	}
	if in.IsNTT {
		panic("bconv: conversion requires coefficient domain")
	}
	n := c.r.N
	tj := c.dst[dstIdx]
	m := c.r.Mods[tj]
	for k := 0; k < n; k++ {
		dst[k] = 0
	}
	for i, ti := range c.src {
		mi := c.r.Mods[ti]
		w := c.bHatMod[i][dstIdx]
		row := in.Coeffs[i]
		for k := 0; k < n; k++ {
			yi := mi.Mul(row[k], c.bHatInv[i])
			dst[k] = m.Add(dst[k], m.Mul(m.Reduce(yi), w))
		}
	}
}

// Ops returns the modular-multiplication count of one full conversion:
// N·|src| for the ŷ scaling plus N·|src|·|dst| for the accumulation.
func (c *Converter) Ops() int {
	return c.r.N*len(c.src) + c.r.N*len(c.src)*len(c.dst)
}
