// Package bconv implements fast RNS basis conversion (the BConv
// kernel, paper ModUp P2 / ModDown P2), following the approximate
// conversion of Halevi–Polyakov–Shoup used by full-RNS CKKS.
//
// For a source basis B = {b_0..b_{k-1}} with product B* and a target
// basis C, the conversion of x given by residues x_i is
//
//	Conv(x) ≡ Σ_i [x_i · (B*/b_i)^{-1} mod b_i] · (B*/b_i)   (mod c_j)
//
// which equals x̂ + u·B* for the representative x̂ ∈ [0, B*) and some
// integer overshoot 0 ≤ u < k. The overshoot adds a small multiple of
// B* that hybrid key switching absorbs into its noise budget.
//
// The kernel costs N·|B|·|C| modular multiply-accumulates plus N·|B|
// multiplications — exactly the count the paper charges BConv with
// (§III-B: "roughly N×α×β modular multiplications").
package bconv

import (
	"fmt"
	"math/big"

	"ciflow/internal/ring"
)

// Converter performs basis conversion from a fixed source basis to a
// fixed destination basis over one ring. Immutable after construction;
// safe for concurrent use.
type Converter struct {
	r   *ring.Ring
	src ring.Basis
	dst ring.Basis

	// bHatInv[i] = (B*/b_i)^(-1) mod b_i
	bHatInv []uint64
	// bHatMod[i][j] = (B*/b_i) mod c_j
	bHatMod [][]uint64
}

// New builds a Converter from basis src to basis dst. The bases must
// be disjoint (a tower cannot be converted onto itself).
func New(r *ring.Ring, src, dst ring.Basis) (*Converter, error) {
	if len(src) == 0 || len(dst) == 0 {
		return nil, fmt.Errorf("bconv: empty basis (src=%v dst=%v)", src, dst)
	}
	for _, t := range dst {
		if src.Contains(t) {
			return nil, fmt.Errorf("bconv: tower %d in both source and destination", t)
		}
	}
	c := &Converter{
		r:       r,
		src:     append(ring.Basis(nil), src...),
		dst:     append(ring.Basis(nil), dst...),
		bHatInv: make([]uint64, len(src)),
		bHatMod: make([][]uint64, len(src)),
	}
	B := r.BasisProduct(src)
	for i, ti := range src {
		bi := new(big.Int).SetUint64(r.Moduli[ti])
		bHat := new(big.Int).Div(B, bi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(bHat, bi), bi)
		if inv == nil {
			return nil, fmt.Errorf("bconv: moduli not coprime at tower %d", ti)
		}
		c.bHatInv[i] = inv.Uint64()
		c.bHatMod[i] = make([]uint64, len(dst))
		for j, tj := range dst {
			cj := new(big.Int).SetUint64(r.Moduli[tj])
			c.bHatMod[i][j] = new(big.Int).Mod(bHat, cj).Uint64()
		}
	}
	return c, nil
}

// Src returns the converter's source basis.
func (c *Converter) Src() ring.Basis { return c.src }

// Dst returns the converter's destination basis.
func (c *Converter) Dst() ring.Basis { return c.dst }

// Convert converts in (coefficient domain, basis = Src) into out
// (basis = Dst), overwriting out. in is not modified.
func (c *Converter) Convert(in, out *ring.Poly) {
	if !in.Basis.Equal(c.src) {
		panic(fmt.Sprintf("bconv: input basis %v, converter source %v", in.Basis, c.src))
	}
	if !out.Basis.Equal(c.dst) {
		panic(fmt.Sprintf("bconv: output basis %v, converter destination %v", out.Basis, c.dst))
	}
	if in.IsNTT {
		panic("bconv: conversion requires coefficient domain")
	}
	n := c.r.N
	// y_i = x_i · (B*/b_i)^{-1} mod b_i, computed per source tower.
	y := make([][]uint64, len(c.src))
	for i, ti := range c.src {
		m := c.r.Mods[ti]
		y[i] = make([]uint64, n)
		row := in.Coeffs[i]
		for k := 0; k < n; k++ {
			y[i][k] = m.Mul(row[k], c.bHatInv[i])
		}
	}
	for j, tj := range c.dst {
		m := c.r.Mods[tj]
		dst := out.Coeffs[j]
		for k := 0; k < n; k++ {
			dst[k] = 0
		}
		for i := range c.src {
			w := c.bHatMod[i][j]
			yi := y[i]
			for k := 0; k < n; k++ {
				dst[k] = m.Add(dst[k], m.Mul(yi[k], w))
			}
		}
	}
	out.IsNTT = false
}

// ConvertExact converts in into out like Convert, but removes the
// overshoot with the Halevi–Polyakov–Shoup floating-point correction:
// u = round(Σ_i y_i / b_i) is subtracted, so the result is the
// *centered* representative x̃ ∈ [-B*/2, B*/2) reduced into each
// destination tower. Used by ModDown, where the overshoot would
// otherwise add P-scaled noise.
func (c *Converter) ConvertExact(in, out *ring.Poly) {
	if !in.Basis.Equal(c.src) {
		panic(fmt.Sprintf("bconv: input basis %v, converter source %v", in.Basis, c.src))
	}
	if !out.Basis.Equal(c.dst) {
		panic(fmt.Sprintf("bconv: output basis %v, converter destination %v", out.Basis, c.dst))
	}
	if in.IsNTT {
		panic("bconv: conversion requires coefficient domain")
	}
	n := c.r.N
	y := make([][]uint64, len(c.src))
	for i, ti := range c.src {
		m := c.r.Mods[ti]
		y[i] = make([]uint64, n)
		row := in.Coeffs[i]
		for k := 0; k < n; k++ {
			y[i][k] = m.Mul(row[k], c.bHatInv[i])
		}
	}
	// Overshoot per coefficient: u_k = round(Σ_i y_i[k] / b_i).
	u := make([]uint64, n)
	for k := 0; k < n; k++ {
		var v float64
		for i, ti := range c.src {
			v += float64(y[i][k]) / float64(c.r.Moduli[ti])
		}
		u[k] = uint64(v + 0.5)
	}
	for j, tj := range c.dst {
		m := c.r.Mods[tj]
		bMod := bigModUint64(c.r.BasisProduct(c.src), c.r.Moduli[tj])
		dst := out.Coeffs[j]
		for k := 0; k < n; k++ {
			var acc uint64
			for i := range c.src {
				acc = m.Add(acc, m.Mul(y[i][k], c.bHatMod[i][j]))
			}
			dst[k] = m.Sub(acc, m.Mul(m.Reduce(u[k]), bMod))
		}
	}
	out.IsNTT = false
}

func bigModUint64(x *big.Int, q uint64) uint64 {
	return new(big.Int).Mod(x, new(big.Int).SetUint64(q)).Uint64()
}

// ConvertTower computes only destination tower dstIdx (an index into
// Dst) of the conversion, writing the length-N result into dst. This
// is the tile the Output-Centric dataflow schedules: one output tower
// at a time from the resident source towers (paper §IV-C).
func (c *Converter) ConvertTower(in *ring.Poly, dstIdx int, dst []uint64) {
	if !in.Basis.Equal(c.src) {
		panic("bconv: input basis mismatch")
	}
	if in.IsNTT {
		panic("bconv: conversion requires coefficient domain")
	}
	n := c.r.N
	tj := c.dst[dstIdx]
	m := c.r.Mods[tj]
	for k := 0; k < n; k++ {
		dst[k] = 0
	}
	for i, ti := range c.src {
		mi := c.r.Mods[ti]
		w := c.bHatMod[i][dstIdx]
		row := in.Coeffs[i]
		for k := 0; k < n; k++ {
			yi := mi.Mul(row[k], c.bHatInv[i])
			dst[k] = m.Add(dst[k], m.Mul(m.Reduce(yi), w))
		}
	}
}

// Ops returns the modular-multiplication count of one full conversion:
// N·|src| for the ŷ scaling plus N·|src|·|dst| for the accumulation.
func (c *Converter) Ops() int {
	return c.r.N*len(c.src) + c.r.N*len(c.src)*len(c.dst)
}
