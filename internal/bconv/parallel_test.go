package bconv

import (
	"testing"

	"ciflow/internal/engine"
	"ciflow/internal/ring"
)

func parallelSetup(t *testing.T) (*ring.Ring, *Converter, *ring.Poly) {
	t.Helper()
	r, err := ring.NewRingGenerated(64, 4, 30, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(r, r.QBasis(3), r.PBasis())
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(r, 5)
	in := s.Uniform(c.Src())
	return r, c, in
}

func TestConvertWithMatchesSerial(t *testing.T) {
	r, c, in := parallelSetup(t)
	e := engine.New(4)
	defer e.Close()

	serial := r.NewPoly(c.Dst())
	par := r.NewPoly(c.Dst())
	c.Convert(in, serial)
	c.ConvertWith(e, in, par)
	if !serial.Equal(par) {
		t.Fatal("ConvertWith differs from Convert")
	}
	c.ConvertWith(nil, in, par)
	if !serial.Equal(par) {
		t.Fatal("nil-runner ConvertWith differs from Convert")
	}
}

func TestConvertExactWithMatchesSerial(t *testing.T) {
	r, c, in := parallelSetup(t)
	e := engine.New(4)
	defer e.Close()

	serial := r.NewPoly(c.Dst())
	par := r.NewPoly(c.Dst())
	c.ConvertExact(in, serial)
	c.ConvertExactWith(e, in, par)
	if !serial.Equal(par) {
		t.Fatal("ConvertExactWith differs from ConvertExact")
	}
	c.ConvertExactWith(nil, in, par)
	if !serial.Equal(par) {
		t.Fatal("nil-runner ConvertExactWith differs from ConvertExact")
	}
}

func TestTilesComposeToConvert(t *testing.T) {
	// YScaleRow + ConvertTowerFromY, the tiles internal/hks schedules
	// on the engine, must reproduce Convert column by column; adding
	// Overshoot + ConvertExactTowerFromY must reproduce ConvertExact.
	r, c, in := parallelSetup(t)
	n := r.N

	y := make([][]uint64, len(c.Src()))
	for i := range y {
		y[i] = make([]uint64, n)
		c.YScaleRow(i, in.Coeffs[i], y[i])
	}

	want := r.NewPoly(c.Dst())
	c.Convert(in, want)
	got := make([]uint64, n)
	for j := range c.Dst() {
		c.ConvertTowerFromY(y, j, got)
		for k := 0; k < n; k++ {
			if got[k] != want.Coeffs[j][k] {
				t.Fatalf("tile dst %d coeff %d: %d != %d", j, k, got[k], want.Coeffs[j][k])
			}
		}
	}

	u := make([]uint64, n)
	// Chunked overshoot must agree with a single pass.
	c.Overshoot(y, u, 0, n/2)
	c.Overshoot(y, u, n/2, n)
	uWhole := make([]uint64, n)
	c.Overshoot(y, uWhole, 0, n)
	for k := range u {
		if u[k] != uWhole[k] {
			t.Fatalf("chunked overshoot differs at %d", k)
		}
	}

	wantEx := r.NewPoly(c.Dst())
	c.ConvertExact(in, wantEx)
	for j := range c.Dst() {
		c.ConvertExactTowerFromY(y, u, j, got)
		for k := 0; k < n; k++ {
			if got[k] != wantEx.Coeffs[j][k] {
				t.Fatalf("exact tile dst %d coeff %d: %d != %d", j, k, got[k], wantEx.Coeffs[j][k])
			}
		}
	}
}

func TestConvertScratchReuseIsClean(t *testing.T) {
	// Back-to-back conversions through the pooled scratch must not
	// leak state between calls.
	r, c, in := parallelSetup(t)
	s := ring.NewSampler(r, 9)
	in2 := s.Uniform(c.Src())

	a := r.NewPoly(c.Dst())
	b := r.NewPoly(c.Dst())
	c.Convert(in, a)
	c.Convert(in2, b)
	fresh := r.NewPoly(c.Dst())
	c.Convert(in2, fresh)
	if !b.Equal(fresh) {
		t.Fatal("scratch reuse changed conversion result")
	}
}
