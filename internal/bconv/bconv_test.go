package bconv

import (
	"math/big"
	"testing"

	"ciflow/internal/ring"
)

func testRing(t *testing.T) *ring.Ring {
	t.Helper()
	r, err := ring.NewRingGenerated(32, 4, 30, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := testRing(t)
	if _, err := New(r, nil, r.PBasis()); err == nil {
		t.Error("empty source accepted")
	}
	if _, err := New(r, r.QBasis(1), nil); err == nil {
		t.Error("empty destination accepted")
	}
	if _, err := New(r, r.QBasis(2), r.QBasis(1)); err == nil {
		t.Error("overlapping bases accepted")
	}
}

// exactConversion computes the RNS conversion formula with big.Int:
// Σ_i [x_i·(B/b_i)^{-1} mod b_i]·(B/b_i) mod c_j.
func exactConversion(t *testing.T, r *ring.Ring, in *ring.Poly, dst ring.Basis, j, coeff int) uint64 {
	t.Helper()
	B := r.BasisProduct(in.Basis)
	acc := new(big.Int)
	for i, ti := range in.Basis {
		bi := new(big.Int).SetUint64(r.Moduli[ti])
		bHat := new(big.Int).Div(B, bi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(bHat, bi), bi)
		y := new(big.Int).SetUint64(in.Coeffs[i][coeff])
		y.Mul(y, inv).Mod(y, bi)
		y.Mul(y, bHat)
		acc.Add(acc, y)
	}
	cj := new(big.Int).SetUint64(r.Moduli[dst[j]])
	return new(big.Int).Mod(acc, cj).Uint64()
}

func TestConvertMatchesExactFormula(t *testing.T) {
	r := testRing(t)
	s := ring.NewSampler(r, 1)
	src := r.QBasis(3)
	dst := r.PBasis()
	c, err := New(r, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := s.Uniform(src)
	out := r.NewPoly(dst)
	c.Convert(in, out)
	for j := range dst {
		for k := 0; k < r.N; k++ {
			want := exactConversion(t, r, in, dst, j, k)
			if out.Coeffs[j][k] != want {
				t.Fatalf("tower %d coeff %d: got %d want %d", j, k, out.Coeffs[j][k], want)
			}
		}
	}
}

func TestConvertExactSmallValues(t *testing.T) {
	// The exact (float-corrected) conversion maps any centered value
	// in (-B/2, B/2) to the same centered value in the destination,
	// including negatives.
	r := testRing(t)
	src := r.QBasis(2)
	dst := r.PBasis()
	c, err := New(r, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := r.NewPoly(src)
	vals := []int64{0, 1, 2, -1, -12345, 1 << 20, -(1 << 40), 1 << 40}
	for k, v := range vals {
		r.SetBig(in, k, big.NewInt(v))
	}
	out := r.NewPoly(dst)
	c.ConvertExact(in, out)
	for j, tj := range dst {
		m := r.Mods[tj]
		for k, v := range vals {
			var want uint64
			if v >= 0 {
				want = m.Reduce(uint64(v))
			} else {
				want = m.Sub(0, m.Reduce(uint64(-v)))
			}
			if out.Coeffs[j][k] != want {
				t.Fatalf("tower %d coeff %d: got %d want %d", j, k, out.Coeffs[j][k], want)
			}
		}
	}
}

func TestConvertExactMatchesBigCRT(t *testing.T) {
	// On uniform random inputs the exact conversion must equal the
	// centered big.Int reconstruction in every destination tower.
	r := testRing(t)
	s := ring.NewSampler(r, 11)
	src := r.QBasis(3)
	dst := r.PBasis()
	c, err := New(r, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := s.Uniform(src)
	out := r.NewPoly(dst)
	c.ConvertExact(in, out)
	for k := 0; k < r.N; k++ {
		x := r.ToBigCentered(in, k)
		for j, tj := range dst {
			cj := new(big.Int).SetUint64(r.Moduli[tj])
			want := new(big.Int).Mod(x, cj).Uint64()
			if out.Coeffs[j][k] != want {
				t.Fatalf("tower %d coeff %d: got %d want %d", j, k, out.Coeffs[j][k], want)
			}
		}
	}
}

func TestConvertOvershootBounded(t *testing.T) {
	// Conv(x) = x̂ + u·B with 0 ≤ u < |src|. Verify on random inputs
	// by reconstructing the converted value exactly.
	r := testRing(t)
	s := ring.NewSampler(r, 7)
	src := r.QBasis(3)
	dst := r.PBasis()
	c, err := New(r, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := s.Uniform(src)
	out := r.NewPoly(dst)
	c.Convert(in, out)

	B := r.BasisProduct(src)
	for k := 0; k < r.N; k++ {
		// x̂ ∈ [0, B): the non-centered representative.
		xHat := new(big.Int)
		for i, ti := range src {
			bi := new(big.Int).SetUint64(r.Moduli[ti])
			bHat := new(big.Int).Div(B, bi)
			inv := new(big.Int).ModInverse(new(big.Int).Mod(bHat, bi), bi)
			y := new(big.Int).SetUint64(in.Coeffs[i][k])
			y.Mul(y, inv).Mod(y, bi).Mul(y, bHat)
			xHat.Add(xHat, y)
		}
		u := new(big.Int).Div(xHat, B) // the exact overshoot
		if u.Cmp(big.NewInt(int64(len(src)))) >= 0 || u.Sign() < 0 {
			t.Fatalf("coeff %d: overshoot u=%v out of [0,%d)", k, u, len(src))
		}
		// And every destination tower must carry x̂ mod c_j (with the
		// same u folded in).
		for j, tj := range dst {
			cj := new(big.Int).SetUint64(r.Moduli[tj])
			want := new(big.Int).Mod(xHat, cj).Uint64()
			if out.Coeffs[j][k] != want {
				t.Fatalf("tower %d coeff %d mismatch", j, k)
			}
		}
	}
}

func TestConvertTowerMatchesConvert(t *testing.T) {
	r := testRing(t)
	s := ring.NewSampler(r, 3)
	src := r.QBasis(3)
	dst := r.PBasis()
	c, err := New(r, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	in := s.Uniform(src)
	full := r.NewPoly(dst)
	c.Convert(in, full)
	row := make([]uint64, r.N)
	for j := range dst {
		c.ConvertTower(in, j, row)
		for k := 0; k < r.N; k++ {
			if row[k] != full.Coeffs[j][k] {
				t.Fatalf("ConvertTower(%d) differs from Convert at coeff %d", j, k)
			}
		}
	}
}

func TestConvertDomainChecks(t *testing.T) {
	r := testRing(t)
	s := ring.NewSampler(r, 4)
	c, err := New(r, r.QBasis(1), r.PBasis())
	if err != nil {
		t.Fatal(err)
	}
	in := s.Uniform(r.QBasis(1))
	in.IsNTT = true
	out := r.NewPoly(r.PBasis())
	defer func() {
		if recover() == nil {
			t.Fatal("NTT-domain input did not panic")
		}
	}()
	c.Convert(in, out)
}

func TestOpsCount(t *testing.T) {
	r := testRing(t)
	c, err := New(r, r.QBasis(3), r.PBasis()) // |src|=4, |dst|=2
	if err != nil {
		t.Fatal(err)
	}
	want := r.N*4 + r.N*4*2
	if got := c.Ops(); got != want {
		t.Fatalf("Ops() = %d, want %d", got, want)
	}
}
