package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one recorded interval on a named track. Times are
// nanosecond offsets from the tracer's creation, taken from the
// monotonic clock, so spans recorded by different goroutines share
// one timeline.
type Span struct {
	Name    string
	Track   string
	StartNs int64
	DurNs   int64
}

// maxSpans bounds the tracer's buffer; beyond it spans are counted as
// dropped instead of recorded, so a long run cannot grow without
// bound. 1<<20 spans cover several seconds of bench-scale tracing.
const maxSpans = 1 << 20

// Tracer collects spans for a Chrome trace-event export. It
// implements the engine's Tracer hook (Span) for graph-node tiles and
// offers SpanTrack for higher layers (serve batches, request phases)
// to record on their own tracks. Recording is mutex-guarded — the
// tracer is meant for explicitly requested -trace runs, not the
// always-on profiling path.
type Tracer struct {
	base    time.Time
	mu      sync.Mutex
	spans   []Span
	dropped atomic.Uint64
}

// NewTracer returns a tracer whose timeline starts now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Span records an interval on the "worker" track — the engine calls
// this for every named graph node it executes. Safe on a nil
// receiver.
func (t *Tracer) Span(name string, start, end time.Time) {
	t.SpanTrack("worker", name, start, end)
}

// SpanTrack records an interval on an arbitrary track. Safe on a nil
// receiver and from concurrent goroutines.
func (t *Tracer) SpanTrack(track, name string, start, end time.Time) {
	if t == nil {
		return
	}
	s := Span{
		Name:    name,
		Track:   track,
		StartNs: start.Sub(t.base).Nanoseconds(),
		DurNs:   end.Sub(start).Nanoseconds(),
	}
	if s.DurNs < 0 {
		s.DurNs = 0
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, s)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded after the buffer
// filled.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// traceEvent is one Chrome trace-event (catapult) record. "X" events
// are complete spans; "M" events carry thread-name metadata.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// lane is one packed timeline row: spans assigned to it never
// overlap.
type lane struct {
	track string
	endNs int64 // end of the last span assigned
}

// PackLanes assigns spans to non-overlapping lanes per track with a
// greedy interval scan: spans sort by start time, and each goes to
// the first lane of its track whose previous span has already ended.
// The result maps each span (in sorted order) to a lane index; lanes
// are numbered contiguously across tracks in first-use order. The
// packing guarantees by construction that within a lane spans are
// start-ordered and non-overlapping — the invariant the CI trace
// validator checks.
func PackLanes(spans []Span) (sorted []Span, laneOf []int, lanes []string) {
	sorted = append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].StartNs != sorted[b].StartNs {
			return sorted[a].StartNs < sorted[b].StartNs
		}
		return sorted[a].DurNs > sorted[b].DurNs
	})
	laneOf = make([]int, len(sorted))
	var open []lane
	trackCount := map[string]int{}
	for i := range sorted {
		s := &sorted[i]
		assigned := -1
		for li := range open {
			if open[li].track == s.Track && open[li].endNs <= s.StartNs {
				assigned = li
				break
			}
		}
		if assigned < 0 {
			n := trackCount[s.Track]
			trackCount[s.Track] = n + 1
			open = append(open, lane{track: s.Track})
			lanes = append(lanes, fmt.Sprintf("%s-%d", s.Track, n))
			assigned = len(open) - 1
		}
		open[assigned].endNs = s.StartNs + s.DurNs
		laneOf[i] = assigned
	}
	return sorted, laneOf, lanes
}

// WriteTrace drains the tracer into Chrome trace-event JSON: one
// process, one thread per packed lane (engine worker tiles land on
// worker-N lanes, serve batches on their own tracks), "X" complete
// events with microsecond timestamps. The output loads directly in
// chrome://tracing and Perfetto.
func (t *Tracer) WriteTrace(w io.Writer) error {
	sorted, laneOf, lanes := PackLanes(t.Spans())
	events := make([]traceEvent, 0, len(sorted)+len(lanes))
	for i, name := range lanes {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": name},
		})
	}
	for i := range sorted {
		s := &sorted[i]
		events = append(events, traceEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.StartNs) / 1e3,
			Dur: float64(s.DurNs) / 1e3,
			Pid: 1, Tid: laneOf[i],
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events})
}

// activeTracer is the process-wide tracer; nil means tracing is off.
var activeTracer atomic.Pointer[Tracer]

// EnableTracer installs a fresh process-wide tracer and returns it.
func EnableTracer() *Tracer {
	t := NewTracer()
	activeTracer.Store(t)
	return t
}

// DisableTracer turns tracing off; ActiveTracer returns nil
// afterwards.
func DisableTracer() { activeTracer.Store(nil) }

// ActiveTracer returns the process-wide tracer, or nil when tracing
// is disabled. A nil *Tracer is safe to record on (no-op).
func ActiveTracer() *Tracer { return activeTracer.Load() }
