package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecording hammers one recorder from many goroutines
// (run under -race in CI) and checks no count is lost: the atomics
// must sum exactly.
func TestConcurrentRecording(t *testing.T) {
	r := &Recorder{}
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				st := Stage(rng.Intn(int(numStages)))
				df := Dataflow(rng.Intn(int(numDataflows)))
				r.Stage(st, df, rng.Intn(8), time.Duration(rng.Intn(1<<20)))
				r.Kernel(Kernel(rng.Intn(int(numKernels))), df, time.Duration(rng.Intn(1<<16)))
			}
		}(int64(g))
	}
	wg.Wait()

	snap := r.Snapshot()
	var stageCount, kernelCount, levelCount uint64
	for _, hs := range snap.Stages {
		stageCount += hs.Count
		var b uint64
		for _, v := range hs.Buckets {
			b += v
		}
		if b != hs.Count {
			t.Fatalf("%s/%s: bucket sum %d != count %d", hs.Name, hs.Dataflow, b, hs.Count)
		}
	}
	for _, hs := range snap.Kernels {
		kernelCount += hs.Count
	}
	for _, ls := range snap.Levels {
		levelCount += ls.Count
	}
	want := uint64(goroutines * perG)
	if stageCount != want || kernelCount != want || levelCount != want {
		t.Fatalf("counts (stages %d, kernels %d, levels %d), want %d each",
			stageCount, kernelCount, levelCount, want)
	}
}

// TestMergeExact is the histogram-merge property test: splitting a
// stream of observations across k recorders and merging their
// snapshots must reproduce the single-recorder snapshot exactly —
// same entries, same counts, same buckets, byte-identical JSON.
func TestMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	whole := &Recorder{}
	parts := []*Recorder{{}, {}, {}}
	for i := 0; i < 5000; i++ {
		st := Stage(rng.Intn(int(numStages)))
		df := Dataflow(rng.Intn(int(numDataflows)))
		level := rng.Intn(12)
		d := time.Duration(rng.Int63n(1 << uint(rng.Intn(40))))
		whole.Stage(st, df, level, d)
		parts[rng.Intn(len(parts))].Stage(st, df, level, d)
		k := Kernel(rng.Intn(int(numKernels)))
		whole.Kernel(k, df, d)
		parts[rng.Intn(len(parts))].Kernel(k, df, d)
	}
	var snaps []*Snapshot
	for _, p := range parts {
		snaps = append(snaps, p.Snapshot())
	}
	merged := Merge(snaps...)
	want, err := json.Marshal(whole.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("merged snapshot differs from whole:\nwant %s\ngot  %s", want, got)
	}
}

func TestMergeNil(t *testing.T) {
	if Merge(nil, nil) != nil {
		t.Fatal("merge of nil snapshots must be nil")
	}
	r := &Recorder{}
	r.Stage(StageModUp, DataflowMP, 3, time.Millisecond)
	snap := r.Snapshot()
	m := Merge(nil, snap, nil)
	if m == nil || len(m.Stages) != 1 || m.Stages[0].Count != 1 {
		t.Fatalf("merge with nils lost data: %+v", m)
	}
}

// TestZeroAlloc pins the hot path: recording on an enabled recorder
// and on the disabled nil recorder must both allocate nothing.
func TestZeroAlloc(t *testing.T) {
	r := &Recorder{}
	if n := testing.AllocsPerRun(1000, func() {
		r.Stage(StageModUp, DataflowMP, 5, 123*time.Microsecond)
		r.Kernel(KernelNTT, DataflowMP, 45*time.Microsecond)
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %.1f times per record", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Stage(StageModUp, DataflowMP, 5, 123*time.Microsecond)
		nilRec.Kernel(KernelNTT, DataflowMP, 45*time.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled nil path allocates %.1f times per record", n)
	}
}

func TestSnapshotNilAndClamps(t *testing.T) {
	var r *Recorder
	if r.Snapshot() != nil {
		t.Fatal("nil recorder must snapshot to nil")
	}
	r.Stage(StageModUp, DataflowMP, 0, time.Second) // no-op, no panic

	rec := &Recorder{}
	rec.Stage(StageApply, Dataflow(200), -5, -time.Second)
	rec.Stage(StageApply, DataflowOC, maxLevels+10, time.Second)
	snap := rec.Snapshot()
	if len(snap.Stages) != 2 {
		t.Fatalf("clamped records lost: %+v", snap.Stages)
	}
	for _, ls := range snap.Levels {
		if ls.Level < 0 || ls.Level >= maxLevels {
			t.Fatalf("unclamped level %d", ls.Level)
		}
	}
}

func TestShares(t *testing.T) {
	r := &Recorder{}
	r.Stage(StageModUp, DataflowMP, 3, 600*time.Millisecond)
	r.Stage(StageModUp, DataflowDC, 3, 100*time.Millisecond)
	r.Stage(StageApply, DataflowMP, 3, 300*time.Millisecond)
	r.Kernel(KernelNTT, DataflowMP, 500*time.Millisecond) // nested: must not count
	shares := Shares(r.Snapshot(), 1.0)
	if len(shares) != 2 {
		t.Fatalf("got %d shares, want 2: %+v", len(shares), shares)
	}
	if shares[0].Stage != "mod_up" || shares[1].Stage != "apply" {
		t.Fatalf("share order wrong: %+v", shares)
	}
	if s := SumShares(shares); s < 0.999 || s > 1.001 {
		t.Fatalf("shares sum %.4f, want 1.0", s)
	}
	if Shares(nil, 1.0) != nil || Shares(r.Snapshot(), 0) != nil {
		t.Fatal("nil snapshot or zero wall must yield nil shares")
	}
}

func TestEnableActive(t *testing.T) {
	defer Disable()
	Disable()
	if Active() != nil {
		t.Fatal("Active after Disable")
	}
	r := Enable()
	if Active() != r {
		t.Fatal("Active does not return the enabled recorder")
	}
	r.Stage(StageModUp, DataflowMP, 1, time.Millisecond)
	r2 := Enable()
	if r2 == r {
		t.Fatal("Enable must return a fresh recorder")
	}
	if snap := r2.Snapshot(); len(snap.Stages) != 0 {
		t.Fatal("re-Enable must reset counts")
	}
}

// TestPackLanesNonOverlap checks the export-time invariant the CI
// trace validator relies on: within each packed lane, spans are
// start-ordered and never overlap, and every span keeps its track.
func TestPackLanesNonOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var spans []Span
	tracks := []string{"worker", "serve"}
	for i := 0; i < 500; i++ {
		start := rng.Int63n(1 << 20)
		spans = append(spans, Span{
			Name:    "s",
			Track:   tracks[rng.Intn(len(tracks))],
			StartNs: start,
			DurNs:   rng.Int63n(1 << 12),
		})
	}
	sorted, laneOf, lanes := PackLanes(spans)
	if len(sorted) != len(spans) {
		t.Fatalf("packing lost spans: %d != %d", len(sorted), len(spans))
	}
	lastEnd := make([]int64, len(lanes))
	laneTrack := make([]string, len(lanes))
	for i := range sorted {
		li := laneOf[i]
		s := &sorted[i]
		if laneTrack[li] == "" {
			laneTrack[li] = s.Track
		} else if laneTrack[li] != s.Track {
			t.Fatalf("lane %d mixes tracks %q and %q", li, laneTrack[li], s.Track)
		}
		if s.StartNs < lastEnd[li] {
			t.Fatalf("lane %d overlap: span starts at %d before previous end %d",
				li, s.StartNs, lastEnd[li])
		}
		lastEnd[li] = s.StartNs + s.DurNs
	}
}

func TestWriteTrace(t *testing.T) {
	tr := NewTracer()
	base := tr.base
	tr.Span("ntt", base, base.Add(time.Millisecond))
	tr.Span("bconv", base.Add(500*time.Microsecond), base.Add(2*time.Millisecond))
	tr.SpanTrack("serve", "batch", base, base.Add(3*time.Millisecond))
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var meta, spans int
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			spans++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	// The two overlapping worker spans must land on separate lanes,
	// the serve span on its own track lane: 3 lanes, 3 spans.
	if meta != 3 || spans != 3 {
		t.Fatalf("got %d lanes and %d spans, want 3 and 3", meta, spans)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d spans unexpectedly", tr.Dropped())
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Span("x", time.Now(), time.Now())
	tr.SpanTrack("t", "x", time.Now(), time.Now())
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
}
