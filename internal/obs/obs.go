// Package obs is the runtime observability layer: low-overhead,
// mergeable measurement of where key-switching time actually goes.
//
// Every optimization in this repository so far (hoisting, request
// coalescing, seed compression) was justified by op-count models; the
// only runtime signal the stack emitted was end-to-end p50/p99. obs
// closes that gap with three primitives, all designed so that the
// disabled state costs one atomic pointer load and the enabled state
// allocates nothing on the hot path:
//
//   - Recorder: log-bucketed nanosecond histograms plus atomic
//     counters over the HKS stages (Decompose, ModUp, ApplyKey,
//     streamed Expand, ModDown) and the kernel tiles beneath them
//     (NTT, BConv), broken down per dataflow (MP/DC/OC/serial) and
//     per ciphertext level. All state is fixed-size arrays of
//     atomics — recording is wait-free and safe from every engine
//     worker at once, and a nil *Recorder is the disabled fast path
//     (every method nil-checks its receiver).
//   - Snapshot / Merge / Shares: a Recorder drains into a Snapshot of
//     plain counts with stable JSON. Histogram merge is exact —
//     bucket counts sum — which is what lets the cluster router add
//     per-shard snapshots into one fabric-wide profile with no loss,
//     and Shares turns a snapshot into the per-stage wall-time
//     fractions the throughput/serve/cluster reports surface as
//     stage_shares.
//   - Tracer: a bounded in-memory span buffer drained to a Chrome
//     trace-event (catapult) JSON timeline, loadable in
//     chrome://tracing or Perfetto. Spans are packed into
//     non-overlapping lanes at export time (trace.go), so the
//     recording side never needs to know which worker it runs on.
//
// The package deliberately has no dependencies beyond the standard
// library, so every layer (engine, hks, serve, cluster, cmd) can
// import it without cycles.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of a hybrid key switch.
type Stage uint8

const (
	// StageDecompose is the gadget decomposition of the input
	// polynomial into digits. On the engine paths this is a zero-copy
	// view and records no time; the serial path times it.
	StageDecompose Stage = iota
	// StageModUp is the digit raise: per digit, INTT out of the
	// evaluation domain, exact base conversion into the extended
	// basis, NTT back.
	StageModUp
	// StageApply is the evaluation-key inner product: per-tower
	// multiply-accumulate of every raised digit against the key.
	StageApply
	// StageExpand is the streamed seed-expansion wait: time the
	// replay spends blocked on a compressed key digit that the
	// expander has not produced yet.
	StageExpand
	// StageModDown is the scale back down to the ciphertext basis.
	StageModDown

	numStages
)

var stageNames = [numStages]string{
	StageDecompose: "decompose",
	StageModUp:     "mod_up",
	StageApply:     "apply",
	StageExpand:    "expand",
	StageModDown:   "mod_down",
}

// String returns the stable snake_case name used in JSON reports.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Kernel identifies one compute kernel tile under the stages.
type Kernel uint8

const (
	// KernelNTT covers forward and inverse number-theoretic
	// transforms of one tower.
	KernelNTT Kernel = iota
	// KernelBConv covers exact base-conversion tiles (the paper's
	// BConv), including the Y-scale precompute.
	KernelBConv

	numKernels
)

var kernelNames = [numKernels]string{
	KernelNTT:   "ntt",
	KernelBConv: "bconv",
}

// String returns the stable name used in JSON reports.
func (k Kernel) String() string {
	if int(k) < len(kernelNames) {
		return kernelNames[k]
	}
	return "unknown"
}

// Dataflow indexes the per-dataflow breakdown. The first three match
// the paper's engine dataflows; Serial is the reference path.
type Dataflow uint8

const (
	DataflowMP Dataflow = iota
	DataflowDC
	DataflowOC
	DataflowSerial

	numDataflows
)

var dataflowNames = [numDataflows]string{
	DataflowMP:     "mp",
	DataflowDC:     "dc",
	DataflowOC:     "oc",
	DataflowSerial: "serial",
}

// String returns the stable name used in JSON reports.
func (d Dataflow) String() string {
	if int(d) < len(dataflowNames) {
		return dataflowNames[d]
	}
	return "unknown"
}

// numBuckets is the histogram resolution: bucket i counts durations
// whose nanosecond value has bit length i (so bucket boundaries are
// powers of two), clamped into the last bucket above ~146 hours.
const numBuckets = 64

// maxLevels bounds the per-level breakdown; levels outside [0,
// maxLevels) clamp to the edges.
const maxLevels = 64

// Histogram is a log-bucketed nanosecond histogram. All fields are
// atomics: recording is wait-free and concurrent recorders never
// lose counts. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func (h *Histogram) observe(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
}

// levelCounter is the cheaper per-(stage, level) breakdown: count and
// total only, no buckets.
type levelCounter struct {
	count atomic.Uint64
	ns    atomic.Uint64
}

// Recorder accumulates stage and kernel timings. All storage is
// fixed-size arrays of atomics, so recording from any number of
// goroutines is safe and allocation-free. A nil *Recorder is the
// disabled state: every method returns immediately, which lets call
// sites hold the pattern
//
//	rec := obs.Active()   // nil when profiling is off
//	...
//	if rec != nil { t0 = time.Now() }
//	work()
//	rec.Stage(obs.StageModUp, df, level, time.Since(t0))
//
// without branching on an enable flag at every site.
type Recorder struct {
	stages  [numStages][numDataflows]Histogram
	kernels [numKernels][numDataflows]Histogram
	levels  [numStages][maxLevels]levelCounter
}

func clampDataflow(df Dataflow) Dataflow {
	if df >= numDataflows {
		return DataflowSerial
	}
	return df
}

func clampLevel(level int) int {
	if level < 0 {
		return 0
	}
	if level >= maxLevels {
		return maxLevels - 1
	}
	return level
}

// Stage records one stage execution of duration d at the given
// dataflow and ciphertext level. Safe on a nil receiver (no-op) and
// from concurrent goroutines.
func (r *Recorder) Stage(st Stage, df Dataflow, level int, d time.Duration) {
	if r == nil || st >= numStages {
		return
	}
	df = clampDataflow(df)
	r.stages[st][df].observe(d)
	lc := &r.levels[st][clampLevel(level)]
	lc.count.Add(1)
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	lc.ns.Add(ns)
}

// Kernel records one kernel tile of duration d at the given dataflow.
// Safe on a nil receiver (no-op) and from concurrent goroutines.
func (r *Recorder) Kernel(k Kernel, df Dataflow, d time.Duration) {
	if r == nil || k >= numKernels {
		return
	}
	r.kernels[k][clampDataflow(df)].observe(d)
}

// active is the process-wide recorder; nil means profiling is off.
var active atomic.Pointer[Recorder]

// Enable installs a fresh process-wide Recorder and returns it.
// Calling Enable again discards the previous recorder's counts, so it
// doubles as a reset at the start of a timed section.
func Enable() *Recorder {
	r := &Recorder{}
	active.Store(r)
	return r
}

// Disable turns profiling off; Active returns nil afterwards.
func Disable() { active.Store(nil) }

// Active returns the process-wide recorder, or nil when profiling is
// disabled. The nil result is safe to use directly: recording methods
// on a nil *Recorder are no-ops.
func Active() *Recorder { return active.Load() }
