package obs

import (
	"sort"
	"time"
)

// HistogramSnapshot is one (stage|kernel, dataflow) histogram drained
// to plain counts. Buckets holds the log-bucket counts with trailing
// zero buckets trimmed; bucket i counts durations whose nanosecond
// value has bit length i.
type HistogramSnapshot struct {
	Name     string   `json:"name"`
	Dataflow string   `json:"dataflow"`
	Count    uint64   `json:"count"`
	SumNs    uint64   `json:"sum_ns"`
	Buckets  []uint64 `json:"buckets"`
}

// LevelSnapshot is one (stage, level) slice of the per-level
// breakdown.
type LevelSnapshot struct {
	Stage string `json:"stage"`
	Level int    `json:"level"`
	Count uint64 `json:"count"`
	SumNs uint64 `json:"sum_ns"`
}

// Snapshot is a point-in-time drain of a Recorder: only entries with
// a nonzero count appear, in deterministic (stage, dataflow) order,
// so equal profiles serialize identically. Snapshots are plain data —
// safe to hold, merge, and ship over the wire (the cluster stats
// frame carries one per shard as JSON).
type Snapshot struct {
	Stages  []HistogramSnapshot `json:"stages,omitempty"`
	Kernels []HistogramSnapshot `json:"kernels,omitempty"`
	Levels  []LevelSnapshot     `json:"levels,omitempty"`
}

func drainHistogram(h *Histogram, name, df string) (HistogramSnapshot, bool) {
	count := h.count.Load()
	if count == 0 {
		return HistogramSnapshot{}, false
	}
	hs := HistogramSnapshot{Name: name, Dataflow: df, Count: count, SumNs: h.sumNs.Load()}
	last := -1
	var buckets [numBuckets]uint64
	for i := range buckets {
		if v := h.buckets[i].Load(); v != 0 {
			buckets[i] = v
			last = i
		}
	}
	hs.Buckets = append([]uint64(nil), buckets[:last+1]...)
	return hs, true
}

// Snapshot drains the recorder into plain counts. Safe on a nil
// receiver, which yields a nil snapshot. Recording may continue
// concurrently; the snapshot is a consistent-enough point-in-time
// view for reporting (each counter is read once, atomically).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	snap := &Snapshot{}
	for st := Stage(0); st < numStages; st++ {
		for df := Dataflow(0); df < numDataflows; df++ {
			if hs, ok := drainHistogram(&r.stages[st][df], st.String(), df.String()); ok {
				snap.Stages = append(snap.Stages, hs)
			}
		}
		for level := maxLevels - 1; level >= 0; level-- {
			lc := &r.levels[st][level]
			if count := lc.count.Load(); count != 0 {
				snap.Levels = append(snap.Levels, LevelSnapshot{
					Stage: st.String(), Level: level,
					Count: count, SumNs: lc.ns.Load(),
				})
			}
		}
	}
	for k := Kernel(0); k < numKernels; k++ {
		for df := Dataflow(0); df < numDataflows; df++ {
			if hs, ok := drainHistogram(&r.kernels[k][df], k.String(), df.String()); ok {
				snap.Kernels = append(snap.Kernels, hs)
			}
		}
	}
	if len(snap.Stages) == 0 && len(snap.Kernels) == 0 && len(snap.Levels) == 0 {
		return &Snapshot{}
	}
	return snap
}

// rank orders snapshot entries deterministically: known stage/kernel
// names in enum order, then unknown names alphabetically after them.
func rankOf(name string, names []string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return len(names)
}

func stageRank(name string) int  { return rankOf(name, stageNames[:]) }
func kernelRank(name string) int { return rankOf(name, kernelNames[:]) }
func dataflowRank(name string) int {
	return rankOf(name, dataflowNames[:])
}

func mergeHistograms(dst []HistogramSnapshot, rank func(string) int, srcs ...[]HistogramSnapshot) []HistogramSnapshot {
	type key struct{ name, df string }
	m := map[key]*HistogramSnapshot{}
	for _, src := range srcs {
		for i := range src {
			hs := &src[i]
			k := key{hs.Name, hs.Dataflow}
			e := m[k]
			if e == nil {
				e = &HistogramSnapshot{Name: hs.Name, Dataflow: hs.Dataflow}
				m[k] = e
			}
			e.Count += hs.Count
			e.SumNs += hs.SumNs
			if len(hs.Buckets) > len(e.Buckets) {
				e.Buckets = append(e.Buckets, make([]uint64, len(hs.Buckets)-len(e.Buckets))...)
			}
			for b, v := range hs.Buckets {
				e.Buckets[b] += v
			}
		}
	}
	for _, e := range m {
		dst = append(dst, *e)
	}
	sort.Slice(dst, func(a, b int) bool {
		ra, rb := rank(dst[a].Name), rank(dst[b].Name)
		if ra != rb {
			return ra < rb
		}
		if dst[a].Name != dst[b].Name {
			return dst[a].Name < dst[b].Name
		}
		da, db := dataflowRank(dst[a].Dataflow), dataflowRank(dst[b].Dataflow)
		if da != db {
			return da < db
		}
		return dst[a].Dataflow < dst[b].Dataflow
	})
	return dst
}

// Merge sums snapshots into one: histogram bucket counts, totals, and
// per-level counters add exactly, so merging per-shard snapshots
// loses nothing — the fabric-wide bucket counts equal the sum of the
// shards', which is the invariant the cluster report verifies. Nil
// snapshots are skipped; merging zero non-nil snapshots returns nil.
func Merge(snaps ...*Snapshot) *Snapshot {
	var stages, kernels [][]HistogramSnapshot
	type lkey struct {
		stage string
		level int
	}
	lv := map[lkey]*LevelSnapshot{}
	any := false
	for _, s := range snaps {
		if s == nil {
			continue
		}
		any = true
		stages = append(stages, s.Stages)
		kernels = append(kernels, s.Kernels)
		for i := range s.Levels {
			ls := &s.Levels[i]
			k := lkey{ls.Stage, ls.Level}
			e := lv[k]
			if e == nil {
				e = &LevelSnapshot{Stage: ls.Stage, Level: ls.Level}
				lv[k] = e
			}
			e.Count += ls.Count
			e.SumNs += ls.SumNs
		}
	}
	if !any {
		return nil
	}
	out := &Snapshot{
		Stages:  mergeHistograms(nil, stageRank, stages...),
		Kernels: mergeHistograms(nil, kernelRank, kernels...),
	}
	for _, e := range lv {
		out.Levels = append(out.Levels, *e)
	}
	sort.Slice(out.Levels, func(a, b int) bool {
		ra, rb := stageRank(out.Levels[a].Stage), stageRank(out.Levels[b].Stage)
		if ra != rb {
			return ra < rb
		}
		return out.Levels[a].Level > out.Levels[b].Level
	})
	return out
}

// StageShare is one stage's slice of a measured wall-clock interval.
type StageShare struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
	// Share is Seconds over the wall time handed to Shares. At one
	// worker the stages execute back to back, so the shares sum to
	// ~1 minus the unprofiled remainder (orchestration, decompose
	// views); with w workers the sum approaches w.
	Share float64 `json:"share"`
}

// Shares reduces a snapshot to per-stage totals against a measured
// wall time. Only the stage histograms contribute — the kernel tiles
// execute *inside* stage timings and the per-level counters repeat
// them, so summing either would double-count. Stages with zero count
// are omitted; a nil snapshot or non-positive wall yields nil.
func Shares(s *Snapshot, wallSec float64) []StageShare {
	if s == nil || wallSec <= 0 {
		return nil
	}
	totals := map[string]*StageShare{}
	for i := range s.Stages {
		hs := &s.Stages[i]
		e := totals[hs.Name]
		if e == nil {
			e = &StageShare{Stage: hs.Name}
			totals[hs.Name] = e
		}
		e.Count += hs.Count
		e.Seconds += time.Duration(hs.SumNs).Seconds()
	}
	out := make([]StageShare, 0, len(totals))
	for _, e := range totals {
		e.Share = e.Seconds / wallSec
		out = append(out, *e)
	}
	sort.Slice(out, func(a, b int) bool {
		ra, rb := stageRank(out[a].Stage), stageRank(out[b].Stage)
		if ra != rb {
			return ra < rb
		}
		return out[a].Stage < out[b].Stage
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// SumShares returns the total fraction of wall time the stage shares
// account for — the number the perfgate pins against 1.0 at one
// worker.
func SumShares(shares []StageShare) float64 {
	var sum float64
	for _, s := range shares {
		sum += s.Share
	}
	return sum
}
