package cluster

// Consistent hashing of tenants onto shards, with virtual nodes. The
// router keys routing on KeyID.Tenant — the unit of key residency —
// so one tenant's evaluation keys concentrate on the shard(s) that
// own its arc of the ring, and removing a shard (drain, death) moves
// only the tenants on its arcs instead of reshuffling everyone. The
// replica walk gives hot tenants up to R distinct shards; key
// determinism (KeySeed) makes serving from any replica bit-exact.

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// hashRing is a consistent-hash ring over shard indices.
type hashRing struct {
	points []ringPoint // sorted ascending by hash
	live   map[int]bool
}

type ringPoint struct {
	hash  uint64
	shard int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// newHashRing places vnodes virtual points per shard on the ring.
func newHashRing(shards, vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = 64
	}
	h := &hashRing{live: make(map[int]bool, shards)}
	for s := 0; s < shards; s++ {
		h.live[s] = true
		for v := 0; v < vnodes; v++ {
			h.points = append(h.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(h.points, func(a, b int) bool { return h.points[a].hash < h.points[b].hash })
	return h
}

// remove marks a shard dead; its arcs fall to the next live shard
// clockwise, and owners never returns it again.
func (h *hashRing) remove(shard int) { delete(h.live, shard) }

// liveCount reports the remaining live shards.
func (h *hashRing) liveCount() int { return len(h.live) }

// owners walks clockwise from the tenant's hash collecting up to n
// distinct live shards: the tenant's primary and its replicas.
// Returns nil when no shard is live.
func (h *hashRing) owners(tenant string, n int) []int {
	if n <= 0 {
		n = 1
	}
	if n > len(h.live) {
		n = len(h.live)
	}
	if n == 0 || len(h.points) == 0 {
		return nil
	}
	start := sort.Search(len(h.points), func(i int) bool {
		return h.points[i].hash >= hash64(tenant)
	})
	seen := make(map[int]bool, n)
	var out []int
	for i := 0; len(out) < n && i < len(h.points); i++ {
		p := h.points[(start+i)%len(h.points)]
		if !h.live[p.shard] || seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}
