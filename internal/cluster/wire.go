package cluster

// The wire protocol: length-prefixed, versioned binary frames over
// one byte stream per (router, shard) connection. Every frame is
//
//	magic "CFCL" (u32 LE) | version (u8) | type (u8) | length (u32 LE) | payload
//
// with the payload length hard-capped (maxFramePayload), so a
// malicious or half-dead peer can at worst cost one bounded
// allocation, never an OOM-sized one. Polynomials and evaluation keys
// inside payloads reuse the existing ring/hks serializers — the wire
// format composes the repository's on-disk formats rather than
// inventing a second encoding — and stats snapshots travel as the
// stable JSON marshalling of serve.Stats.
//
// The load-bearing design choice is the request frame: it carries a
// whole *hoist group* — the shared input polynomial once, plus one
// (request ID, rotation) entry per member — not individual requests.
// The serve coalescer keys on input *pointer identity*, which no wire
// can preserve per-request; shipping the group whole lets the shard
// decode the input once and re-materialize the pointer sharing, so
// coalescing (and the exact-count invariants built on it) survives
// the process boundary. It is also the paper's hoisting argument
// restated at the network layer: one fan-out, one shipment of the
// expensive shared operand.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"ciflow/internal/dataflow"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

const (
	frameMagic  = uint32(0x4346434c) // "CFCL"
	wireVersion = byte(1)

	// maxFramePayload bounds one frame's payload: generous enough for
	// a replay-scale evaluation key (dnum × 2 polys), far below
	// anything that could OOM a peer on a lying length field.
	maxFramePayload = 64 << 20

	// maxTenantLen bounds tenant-name strings inside payloads.
	maxTenantLen = 256
	// maxGroupLen bounds one group frame's member count.
	maxGroupLen = 1 << 16
	// maxErrLen bounds error strings inside result frames.
	maxErrLen = 1 << 12
)

// FrameType tags one wire frame.
type FrameType byte

const (
	// FrameGroup carries one hoist group of requests: the shared input
	// polynomial once, plus per-member request IDs and rotations.
	FrameGroup FrameType = iota + 1
	// FrameResult carries one member's outcome: the switched pair, an
	// error, or a requeue (the shard is draining and did not execute).
	FrameResult
	// FrameStatsReq asks the shard for a serve.Stats snapshot;
	// FrameStats is the reply (JSON payload).
	FrameStatsReq
	FrameStats
	// FrameEvkReq asks the shard for one evaluation key; FrameEvk is
	// the reply. Replication warm-up and the replica-consistency check
	// use it (key material is public evk, never a secret).
	FrameEvkReq
	FrameEvk
	// FramePing/FramePong are the health check.
	FramePing
	FramePong
	// FrameDrain tells the shard to stop executing new groups (requeue
	// them instead), finish in-flight work, and reply FrameDrainDone
	// carrying its final serve.Stats snapshot (JSON payload).
	FrameDrain
	FrameDrainDone
	// FrameShutdown tells the shard process to exit.
	FrameShutdown
	// FrameEvkComp is the compressed reply to FrameEvkReq: each digit
	// ships as its 32-byte expansion seed plus the dense B half
	// (hks.WriteCompressedEvk), halving evk traffic. Shards answer with
	// it whenever their key material compresses; the router expands
	// locally. Appended after FrameShutdown so every pre-existing frame
	// value is unchanged — no wire-version bump.
	FrameEvkComp

	frameTypeMax = FrameEvkComp
)

// String names the frame type for errors and traces.
func (t FrameType) String() string {
	names := [...]string{"group", "result", "stats-req", "stats", "evk-req",
		"evk", "ping", "pong", "drain", "drain-done", "shutdown", "evk-comp"}
	if t >= 1 && t <= frameTypeMax {
		return names[t-1]
	}
	return fmt.Sprintf("FrameType(%d)", byte(t))
}

// WriteFrame writes one frame. Callers serialize writes per
// connection themselves (see shard.go/router.go frame writers).
func WriteFrame(w io.Writer, typ FrameType, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("cluster: %v frame payload %d exceeds cap %d", typ, len(payload), maxFramePayload)
	}
	var hdr [10]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = wireVersion
	hdr[5] = byte(typ)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, validating magic, version, type, and the
// payload-length cap before allocating anything payload-sized.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != frameMagic {
		return 0, nil, fmt.Errorf("cluster: bad frame magic %#x", m)
	}
	if hdr[4] != wireVersion {
		return 0, nil, fmt.Errorf("cluster: wire version %d, want %d", hdr[4], wireVersion)
	}
	typ := FrameType(hdr[5])
	if typ < 1 || typ > frameTypeMax {
		return 0, nil, fmt.Errorf("cluster: unknown frame type %d", hdr[5])
	}
	n := binary.LittleEndian.Uint32(hdr[6:10])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("cluster: %v frame declares %d payload bytes, cap %d", typ, n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: short %v frame payload: %w", typ, err)
	}
	return typ, payload, nil
}

// ---- payload primitives ----

func writeString(w *bytes.Buffer, s string) {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	w.Write(l[:])
	w.WriteString(s)
}

func readString(r *bytes.Reader, max int, what string) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return "", fmt.Errorf("cluster: short %s length: %w", what, err)
	}
	n := int(binary.LittleEndian.Uint16(l[:]))
	if n > max {
		return "", fmt.Errorf("cluster: %s length %d exceeds cap %d", what, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("cluster: short %s: %w", what, err)
	}
	return string(buf), nil
}

func trailing(r *bytes.Reader, typ FrameType) error {
	if r.Len() != 0 {
		return fmt.Errorf("cluster: %d trailing bytes after %v payload", r.Len(), typ)
	}
	return nil
}

// ---- group request ----

// Group is one hoist group on the wire: Rots[i] is served under
// request ID BaseID+i, every member switching the one Input at Level
// for Tenant under Dataflow. A singleton request is a group of one.
type Group struct {
	BaseID   uint64
	Tenant   string
	Level    int
	Dataflow dataflow.Dataflow
	Rots     []int
	Input    *ring.Poly
}

// EncodeGroup encodes g into a FrameGroup payload; r is the ring the
// input polynomial lives in.
func EncodeGroup(r *ring.Ring, g *Group) ([]byte, error) {
	if len(g.Rots) == 0 || len(g.Rots) > maxGroupLen {
		return nil, fmt.Errorf("cluster: group of %d members (cap %d)", len(g.Rots), maxGroupLen)
	}
	if len(g.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("cluster: tenant name %d bytes (cap %d)", len(g.Tenant), maxTenantLen)
	}
	var buf bytes.Buffer
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], g.BaseID)
	buf.Write(u64[:])
	writeString(&buf, g.Tenant)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(g.Level))
	buf.Write(u32[:])
	buf.WriteByte(byte(g.Dataflow))
	binary.LittleEndian.PutUint32(u32[:], uint32(len(g.Rots)))
	buf.Write(u32[:])
	for _, rot := range g.Rots {
		binary.LittleEndian.PutUint64(u64[:], uint64(int64(rot)))
		buf.Write(u64[:])
	}
	if err := r.WritePoly(&buf, g.Input); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGroup decodes a FrameGroup payload, validating the member
// count, tenant length, dataflow, and the input polynomial against r.
func DecodeGroup(r *ring.Ring, payload []byte) (*Group, error) {
	br := bytes.NewReader(payload)
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("cluster: short group header: %w", err)
	}
	g := &Group{BaseID: binary.LittleEndian.Uint64(u64[:])}
	var err error
	if g.Tenant, err = readString(br, maxTenantLen, "tenant"); err != nil {
		return nil, err
	}
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("cluster: short group level: %w", err)
	}
	g.Level = int(int32(binary.LittleEndian.Uint32(u32[:])))
	if g.Level < 0 {
		return nil, fmt.Errorf("cluster: negative group level %d", g.Level)
	}
	df, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cluster: short group dataflow: %w", err)
	}
	g.Dataflow = dataflow.Dataflow(df)
	switch g.Dataflow {
	case dataflow.MP, dataflow.DC, dataflow.OC, dataflow.OCF:
	default:
		return nil, fmt.Errorf("cluster: unknown dataflow %d in group frame", df)
	}
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, fmt.Errorf("cluster: short group member count: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(u32[:]))
	if n == 0 || n > maxGroupLen {
		return nil, fmt.Errorf("cluster: group member count %d out of range [1,%d]", n, maxGroupLen)
	}
	if br.Len() < 8*n {
		return nil, fmt.Errorf("cluster: group declares %d members but carries %d bytes", n, br.Len())
	}
	g.Rots = make([]int, n)
	for i := range g.Rots {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, fmt.Errorf("cluster: short group rotations: %w", err)
		}
		g.Rots[i] = int(int64(binary.LittleEndian.Uint64(u64[:])))
	}
	if g.Input, err = r.ReadPoly(br); err != nil {
		return nil, fmt.Errorf("cluster: group input: %w", err)
	}
	return g, trailing(br, FrameGroup)
}

// ---- results ----

// ResultCode is one result frame's outcome tag.
type ResultCode byte

const (
	// ResultOK: the switched pair follows.
	ResultOK ResultCode = iota
	// ResultErr: the request failed terminally on the shard; the error
	// string follows.
	ResultErr
	// ResultRequeue: the shard is draining and did not execute the
	// request; the router must resubmit it elsewhere. Requeue is
	// decided before execution and per whole group (a group is one
	// frame), so a drained shard's stats never include requeued work.
	ResultRequeue
)

// WireResult is one member's outcome on the wire.
type WireResult struct {
	ReqID  uint64
	Code   ResultCode
	C0, C1 *ring.Poly // ResultOK only
	ErrMsg string     // ResultErr only
}

// EncodeResult encodes wr into a FrameResult payload.
func EncodeResult(r *ring.Ring, wr *WireResult) ([]byte, error) {
	var buf bytes.Buffer
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], wr.ReqID)
	buf.Write(u64[:])
	buf.WriteByte(byte(wr.Code))
	switch wr.Code {
	case ResultOK:
		if err := r.WritePoly(&buf, wr.C0); err != nil {
			return nil, err
		}
		if err := r.WritePoly(&buf, wr.C1); err != nil {
			return nil, err
		}
	case ResultErr:
		msg := wr.ErrMsg
		if len(msg) > maxErrLen {
			msg = msg[:maxErrLen]
		}
		writeString(&buf, msg)
	case ResultRequeue:
	default:
		return nil, fmt.Errorf("cluster: unknown result code %d", wr.Code)
	}
	return buf.Bytes(), nil
}

// DecodeResult decodes a FrameResult payload.
func DecodeResult(r *ring.Ring, payload []byte) (*WireResult, error) {
	br := bytes.NewReader(payload)
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, fmt.Errorf("cluster: short result header: %w", err)
	}
	wr := &WireResult{ReqID: binary.LittleEndian.Uint64(u64[:])}
	code, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("cluster: short result code: %w", err)
	}
	wr.Code = ResultCode(code)
	switch wr.Code {
	case ResultOK:
		if wr.C0, err = r.ReadPoly(br); err != nil {
			return nil, fmt.Errorf("cluster: result c0: %w", err)
		}
		if wr.C1, err = r.ReadPoly(br); err != nil {
			return nil, fmt.Errorf("cluster: result c1: %w", err)
		}
	case ResultErr:
		if wr.ErrMsg, err = readString(br, maxErrLen, "error string"); err != nil {
			return nil, err
		}
	case ResultRequeue:
	default:
		return nil, fmt.Errorf("cluster: unknown result code %d", code)
	}
	return wr, trailing(br, FrameResult)
}

// ---- stats ----

// EncodeStats encodes a serve.Stats snapshot as a FrameStats (or
// FrameDrainDone) payload. The stable JSON field tags on serve.Stats
// are the wire contract; Snapshot() guarantees the value is safe to
// marshal while the service keeps running.
func EncodeStats(st serve.Stats) ([]byte, error) {
	return json.Marshal(st.Snapshot())
}

// DecodeStats decodes a FrameStats/FrameDrainDone payload.
func DecodeStats(payload []byte) (serve.Stats, error) {
	var st serve.Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return serve.Stats{}, fmt.Errorf("cluster: stats frame: %w", err)
	}
	return st, nil
}

// ---- evaluation-key transfer ----

// EvkID names one evaluation key on the wire, mirroring serve.KeyID.
type EvkID struct {
	Tenant string
	Rot    int
	Level  int
}

func encodeEvkID(buf *bytes.Buffer, id EvkID) {
	writeString(buf, id.Tenant)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(int64(id.Rot)))
	buf.Write(u64[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(id.Level))
	buf.Write(u32[:])
}

func decodeEvkID(br *bytes.Reader) (EvkID, error) {
	var id EvkID
	var err error
	if id.Tenant, err = readString(br, maxTenantLen, "tenant"); err != nil {
		return id, err
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return id, fmt.Errorf("cluster: short evk rotation: %w", err)
	}
	id.Rot = int(int64(binary.LittleEndian.Uint64(u64[:])))
	var u32 [4]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return id, fmt.Errorf("cluster: short evk level: %w", err)
	}
	id.Level = int(int32(binary.LittleEndian.Uint32(u32[:])))
	if id.Level < 0 {
		return id, fmt.Errorf("cluster: negative evk level %d", id.Level)
	}
	return id, nil
}

// EncodeEvkReq encodes a FrameEvkReq payload.
func EncodeEvkReq(id EvkID) ([]byte, error) {
	if len(id.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("cluster: tenant name %d bytes (cap %d)", len(id.Tenant), maxTenantLen)
	}
	var buf bytes.Buffer
	encodeEvkID(&buf, id)
	return buf.Bytes(), nil
}

// DecodeEvkReq decodes a FrameEvkReq payload.
func DecodeEvkReq(payload []byte) (EvkID, error) {
	br := bytes.NewReader(payload)
	id, err := decodeEvkID(br)
	if err != nil {
		return id, err
	}
	return id, trailing(br, FrameEvkReq)
}

// EncodeEvk encodes a FrameEvk payload: the key's identity followed by
// the hks evk serialization under sw (the switcher at id.Level).
func EncodeEvk(id EvkID, sw *hks.Switcher, evk *hks.Evk) ([]byte, error) {
	if len(id.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("cluster: tenant name %d bytes (cap %d)", len(id.Tenant), maxTenantLen)
	}
	var buf bytes.Buffer
	encodeEvkID(&buf, id)
	if err := sw.WriteEvk(&buf, evk); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEvk decodes a FrameEvk payload, resolving the switcher for
// the key's level through switchers to validate digit structure and
// bases exactly as hks.ReadEvk does.
func DecodeEvk(payload []byte, switchers serve.SwitcherSource) (EvkID, *hks.Evk, error) {
	br := bytes.NewReader(payload)
	id, err := decodeEvkID(br)
	if err != nil {
		return id, nil, err
	}
	sw, err := switchers.Switcher(id.Level)
	if err != nil {
		return id, nil, fmt.Errorf("cluster: no switcher at evk level %d: %w", id.Level, err)
	}
	evk, err := sw.ReadEvk(br)
	if err != nil {
		return id, nil, err
	}
	return id, evk, trailing(br, FrameEvk)
}

// EncodeEvkComp encodes a FrameEvkComp payload: the key's identity
// followed by the hks compressed-evk serialization under sw.
func EncodeEvkComp(id EvkID, sw *hks.Switcher, c *hks.CompressedEvk) ([]byte, error) {
	if len(id.Tenant) > maxTenantLen {
		return nil, fmt.Errorf("cluster: tenant name %d bytes (cap %d)", len(id.Tenant), maxTenantLen)
	}
	var buf bytes.Buffer
	encodeEvkID(&buf, id)
	if err := sw.WriteCompressedEvk(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEvkComp decodes a FrameEvkComp payload. The key comes back
// still compressed; the caller chooses when to expand (FetchEvk does
// so immediately, since its contract is a dense key).
func DecodeEvkComp(payload []byte, switchers serve.SwitcherSource) (EvkID, *hks.CompressedEvk, error) {
	br := bytes.NewReader(payload)
	id, err := decodeEvkID(br)
	if err != nil {
		return id, nil, err
	}
	sw, err := switchers.Switcher(id.Level)
	if err != nil {
		return id, nil, fmt.Errorf("cluster: no switcher at evk level %d: %w", id.Level, err)
	}
	c, err := sw.ReadCompressedEvk(br)
	if err != nil {
		return id, nil, err
	}
	return id, c, trailing(br, FrameEvkComp)
}
