package cluster

import (
	"reflect"
	"testing"
)

func TestHashRingDeterministic(t *testing.T) {
	a := newHashRing(4, 0)
	b := newHashRing(4, 0)
	for _, tenant := range []string{"t0", "t1", "alpha", "beta"} {
		if !reflect.DeepEqual(a.owners(tenant, 2), b.owners(tenant, 2)) {
			t.Fatalf("owner walk for %q differs between identical rings", tenant)
		}
	}
}

func TestHashRingOwners(t *testing.T) {
	h := newHashRing(4, 64)
	owners := h.owners("tenant", 3)
	if len(owners) != 3 {
		t.Fatalf("owners returned %v, want 3 shards", owners)
	}
	seen := map[int]bool{}
	for _, s := range owners {
		if s < 0 || s >= 4 || seen[s] {
			t.Fatalf("owners returned invalid or duplicate shard: %v", owners)
		}
		seen[s] = true
	}
	// n beyond the live count clamps; n ≤ 0 means one owner.
	if got := h.owners("tenant", 99); len(got) != 4 {
		t.Fatalf("over-asking returned %v, want all 4", got)
	}
	if got := h.owners("tenant", 0); len(got) != 1 {
		t.Fatalf("n=0 returned %v, want one owner", got)
	}
}

func TestHashRingRemove(t *testing.T) {
	h := newHashRing(3, 64)
	tenants := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	before := map[string]int{}
	for _, tn := range tenants {
		before[tn] = h.owners(tn, 1)[0]
	}
	h.remove(1)
	if h.liveCount() != 2 {
		t.Fatalf("liveCount %d after removal, want 2", h.liveCount())
	}
	for _, tn := range tenants {
		owners := h.owners(tn, 1)
		if len(owners) != 1 || owners[0] == 1 {
			t.Fatalf("tenant %q routed to removed shard: %v", tn, owners)
		}
		// Consistent hashing: tenants not owned by the removed shard
		// keep their placement.
		if before[tn] != 1 && owners[0] != before[tn] {
			t.Fatalf("tenant %q moved from %d to %d though shard 1 was removed",
				tn, before[tn], owners[0])
		}
	}
	h.remove(0)
	h.remove(2)
	if got := h.owners("a", 1); got != nil {
		t.Fatalf("empty ring returned owners %v", got)
	}
}

func TestKeySeed(t *testing.T) {
	if KeySeed("t0") != KeySeed("t0") {
		t.Fatal("KeySeed not deterministic")
	}
	if KeySeed("t0") == KeySeed("t1") {
		t.Fatal("KeySeed collides on distinct tenants")
	}
	for _, tn := range []string{"", "t0", "t1", "a-long-tenant-name"} {
		if KeySeed(tn) <= 0 {
			t.Fatalf("KeySeed(%q) = %d, want positive", tn, KeySeed(tn))
		}
	}
}
