// Package cluster turns the one-process internal/serve service into
// an N-process serving fabric: shard backends wrapping serve.Service
// behind TCP listeners, a router front-end that consistent-hashes
// tenants onto shards, and a compact length-prefixed wire protocol
// connecting the two.
//
// The paper's argument — key switching is dominated by data movement,
// above all evaluation-key traffic — scales past one process: a
// global key cache shared by every tenant thrashes exactly the way a
// too-small on-chip memory does in the paper's Figure 5. The cluster
// layer extends the keyspace reasoning one level up: route each
// tenant's requests to the shard that owns its slice of the hash
// ring, so that tenant's evaluation keys stay resident where its
// traffic lands, instead of competing for one global budget
// (hash.go). Hot tenants can be spread over several replica shards —
// safe because key material is deterministic (KeySeed) and every
// hoist group stays whole on one shard.
//
// Three pieces:
//
//   - wire.go: versioned, length-prefixed binary frames for group
//     requests, results, stats snapshots, evaluation-key transfer,
//     health checks, drain, and shutdown, composed from the existing
//     ring/hks serializers. The request frame carries a whole hoist
//     group — the shared input polynomial once, plus one rotation per
//     member — the network-level counterpart of hoisting itself (ship
//     the expensive shared operand once per fan-out, not per request).
//   - shard.go: the backend. It decodes group frames, re-materializes
//     the pointer-shared input the serve coalescer keys on, submits
//     the members in one tight loop, and streams results back. Drain
//     makes its counters final: a draining shard requeues group
//     frames *before executing them*, so its last stats snapshot is
//     exact and the requeued work is counted only where it actually
//     runs.
//   - router.go: the front-end. Consistent hashing with virtual nodes
//     and per-tenant replication, retry-on-requeue, health checks,
//     per-request deduplication (a result is accepted once, from one
//     shard), and router-side per-shard completion counters that
//     attribute every delivered switch to exactly the shard that
//     served it.
//
// The invariant discipline is PR 5's, now distributed: replaying a
// schedule across N shards, the per-shard serve.Stats deltas must sum
// to the schedule's Counts() predictions exactly — switches, ModUps,
// hoist-group coalesces, per level — and every result must be
// bit-exact with a serial replay in the router's process, end-to-end
// over the wire. `ciflow cluster` spawns the shards, runs the replay,
// and enforces both; `ciflow shard` and `ciflow router` expose the
// halves for multi-machine use.
package cluster

import (
	"sort"

	"ciflow/internal/obs"
	"ciflow/internal/serve"
)

// KeySeed maps a tenant name to the deterministic key-generation seed
// every member of the cluster uses for that tenant's keyspace. It is
// serve.TenantSeed — the single-process service and the shards build
// key material through the one serve.SeedKeySource code path, so any
// shard and the router-side serial reference derive bit-identical key
// material from the tenant name alone, without secret material ever
// crossing the wire. That determinism is what makes hot-key
// replication exactness-safe (any replica computes the same bits) and
// the end-to-end bit-exactness check meaningful.
func KeySeed(tenant string) int64 {
	return serve.TenantSeed(tenant)
}

// AggregateStats sums per-shard serve.Stats snapshots into one
// cluster-wide view: counters add, the per-tenant and per-level
// breakdowns merge by name and level, ratios (coalescing factor, hit
// rate) are recomputed from the summed counters, and the latency
// percentiles take the worst shard (summing percentiles would mean
// nothing). The shard-sum invariant the cluster experiment gates is
// exactly this function's output against the schedule predictions.
func AggregateStats(shards []serve.Stats) serve.Stats {
	var agg serve.Stats
	tenants := map[string]*serve.TenantStats{}
	keyTenants := map[string]*serve.TenantCacheStats{}
	levels := map[int]*serve.LevelStats{}

	addLevels := func(dst map[int]*serve.LevelStats, per []serve.LevelStats) {
		for _, ls := range per {
			e := dst[ls.Level]
			if e == nil {
				e = &serve.LevelStats{Level: ls.Level}
				dst[ls.Level] = e
			}
			e.Switches += ls.Switches
			e.ModUps += ls.ModUps
			e.Coalesced += ls.Coalesced
		}
	}
	maxDur := func(a, b *serve.Stats) {
		if b.P50 > a.P50 {
			a.P50 = b.P50
		}
		if b.P99 > a.P99 {
			a.P99 = b.P99
		}
	}

	tenantLevels := map[string]map[int]*serve.LevelStats{}
	for i := range shards {
		st := &shards[i]
		agg.Submitted += st.Submitted
		agg.Served += st.Served
		agg.Failed += st.Failed
		agg.Batches += st.Batches
		agg.Groups += st.Groups
		agg.ModUps += st.ModUps
		agg.Coalesced += st.Coalesced
		agg.KeyExpansions += st.KeyExpansions
		maxDur(&agg, st)
		addLevels(levels, st.PerLevel)
		agg.Phases = serve.MergePhases(agg.Phases, st.Phases)
		// Histogram merge is exact: per-bucket counts sum, so the
		// fabric-wide profile is bit-identical to what one recorder
		// observing every shard's events would have produced.
		agg.Profile = obs.Merge(agg.Profile, st.Profile)

		agg.Keys.BudgetBytes += st.Keys.BudgetBytes
		agg.Keys.Bytes += st.Keys.Bytes
		agg.Keys.DenseBytes += st.Keys.DenseBytes
		agg.Keys.Size += st.Keys.Size
		agg.Keys.Hits += st.Keys.Hits
		agg.Keys.Misses += st.Keys.Misses
		agg.Keys.Evictions += st.Keys.Evictions
		for _, tc := range st.Keys.Tenants {
			e := keyTenants[tc.Tenant]
			if e == nil {
				e = &serve.TenantCacheStats{Tenant: tc.Tenant}
				keyTenants[tc.Tenant] = e
			}
			e.Size += tc.Size
			e.Bytes += tc.Bytes
			e.DenseBytes += tc.DenseBytes
			e.Hits += tc.Hits
			e.Misses += tc.Misses
			e.Evictions += tc.Evictions
		}

		for _, ts := range st.Tenants {
			e := tenants[ts.Tenant]
			if e == nil {
				e = &serve.TenantStats{Tenant: ts.Tenant}
				tenants[ts.Tenant] = e
				tenantLevels[ts.Tenant] = map[int]*serve.LevelStats{}
			}
			e.Submitted += ts.Submitted
			e.Served += ts.Served
			e.Failed += ts.Failed
			e.Batches += ts.Batches
			e.Groups += ts.Groups
			e.ModUps += ts.ModUps
			e.Coalesced += ts.Coalesced
			e.KeyExpansions += ts.KeyExpansions
			if ts.P50 > e.P50 {
				e.P50 = ts.P50
			}
			if ts.P99 > e.P99 {
				e.P99 = ts.P99
			}
			addLevels(tenantLevels[ts.Tenant], ts.PerLevel)
			e.Phases = serve.MergePhases(e.Phases, ts.Phases)
		}
	}

	flattenLevels := func(m map[int]*serve.LevelStats) []serve.LevelStats {
		if len(m) == 0 {
			return nil
		}
		out := make([]serve.LevelStats, 0, len(m))
		for _, e := range m {
			out = append(out, *e)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Level > out[b].Level })
		return out
	}
	agg.PerLevel = flattenLevels(levels)
	if agg.ModUps > 0 {
		agg.CoalescingFactor = float64(agg.Served) / float64(agg.ModUps)
	}
	if total := agg.Keys.Hits + agg.Keys.Misses; total > 0 {
		agg.Keys.HitRate = float64(agg.Keys.Hits) / float64(total)
	}

	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := *tenants[name]
		ts.PerLevel = flattenLevels(tenantLevels[name])
		if ts.ModUps > 0 {
			ts.CoalescingFactor = float64(ts.Served) / float64(ts.ModUps)
		}
		if kc := keyTenants[name]; kc != nil {
			ts.Keys = *kc
			if total := ts.Keys.Hits + ts.Keys.Misses; total > 0 {
				ts.Keys.HitRate = float64(ts.Keys.Hits) / float64(total)
			}
		}
		agg.Tenants = append(agg.Tenants, ts)
	}
	kNames := make([]string, 0, len(keyTenants))
	for name := range keyTenants {
		kNames = append(kNames, name)
	}
	sort.Strings(kNames)
	for _, name := range kNames {
		tc := *keyTenants[name]
		if total := tc.Hits + tc.Misses; total > 0 {
			tc.HitRate = float64(tc.Hits) / float64(total)
		}
		agg.Keys.Tenants = append(agg.Keys.Tenants, tc)
	}
	return agg
}
