package cluster

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/dataflow"
	"ciflow/internal/serve"
)

func testCtx(t *testing.T) *ckks.Context {
	t.Helper()
	cctx, err := ckks.NewContext(32, 4, 40, 3, 41, 2)
	if err != nil {
		t.Fatal(err)
	}
	return cctx
}

// decodeRobust feeds decode every strict prefix of payload plus a
// trailing-byte extension; each must return an error — never panic,
// never succeed. This is the decoder-robustness contract: a truncated
// or padded frame from a half-dead peer is an error, not a crash.
func decodeRobust(t *testing.T, name string, payload []byte, decode func([]byte) error) {
	t.Helper()
	for i := 0; i < len(payload); i++ {
		trunc := payload[:i]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: truncation at %d/%d panicked: %v", name, i, len(payload), r)
				}
			}()
			if err := decode(trunc); err == nil {
				t.Errorf("%s: truncation at %d/%d decoded successfully", name, i, len(payload))
			}
		}()
	}
	padded := append(append([]byte(nil), payload...), 0xEE)
	if err := decode(padded); err == nil {
		t.Errorf("%s: trailing byte accepted", name)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, typ := range []FrameType{FrameGroup, FrameResult, FrameStatsReq, FrameStats,
		FrameEvkReq, FrameEvk, FramePing, FramePong, FrameDrain, FrameDrainDone, FrameShutdown} {
		payload := []byte("payload-" + typ.String())
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatal(err)
		}
		gotTyp, gotPayload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame %v round-tripped as %v / %q", typ, gotTyp, gotPayload)
		}
	}
}

func TestFrameHeaderValidation(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, FramePing, []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string]func([]byte){
		"bad magic":     func(b []byte) { b[0] ^= 0xFF },
		"bad version":   func(b []byte) { b[4] = 99 },
		"zero type":     func(b []byte) { b[5] = 0 },
		"unknown type":  func(b []byte) { b[5] = byte(frameTypeMax) + 1 },
		"oversize decl": func(b []byte) { binary.LittleEndian.PutUint32(b[6:10], maxFramePayload+1) },
	}
	for name, corrupt := range cases {
		b := valid()
		corrupt(b)
		if _, _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadFrame accepted the frame", name)
		}
	}
	// Truncations of the header and of the payload must both error.
	b := valid()
	for i := 0; i < len(b); i++ {
		if _, _, err := ReadFrame(bytes.NewReader(b[:i])); err == nil {
			t.Errorf("truncation at %d/%d read successfully", i, len(b))
		}
	}
	// An oversized write must be refused before hitting the wire.
	if err := WriteFrame(&bytes.Buffer{}, FramePing, make([]byte, maxFramePayload+1)); err == nil {
		t.Error("WriteFrame accepted an oversized payload")
	}
}

func TestGroupRoundTrip(t *testing.T) {
	cctx := testCtx(t)
	r := cctx.R
	sw, err := cctx.Switchers().Switcher(3)
	if err != nil {
		t.Fatal(err)
	}
	in := r.NewPoly(sw.QBasis())
	in.IsNTT = true
	in.Coeffs[0][0] = 42
	g := &Group{
		BaseID: 7, Tenant: "tenant-a", Level: 3, Dataflow: dataflow.OC,
		Rots: []int{1, 2, -4, 8}, Input: in,
	}
	payload, err := EncodeGroup(r, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGroup(r, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseID != g.BaseID || got.Tenant != g.Tenant || got.Level != g.Level ||
		got.Dataflow != g.Dataflow || !reflect.DeepEqual(got.Rots, g.Rots) {
		t.Fatalf("group round-tripped as %+v", got)
	}
	if !got.Input.Equal(in) {
		t.Fatal("group input polynomial not bit-exact after round trip")
	}
	decodeRobust(t, "group", payload, func(p []byte) error {
		_, err := DecodeGroup(r, p)
		return err
	})
}

func TestGroupDecodeRejects(t *testing.T) {
	cctx := testCtx(t)
	r := cctx.R
	sw, _ := cctx.Switchers().Switcher(3)
	in := r.NewPoly(sw.QBasis())
	in.IsNTT = true
	base := func() []byte {
		p, err := EncodeGroup(r, &Group{BaseID: 1, Tenant: "t", Level: 3,
			Dataflow: dataflow.MP, Rots: []int{1}, Input: in})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Offsets into the group payload: 8 baseID, 2+len(tenant) string,
	// 4 level, 1 dataflow, 4 member count.
	dfOff := 8 + 2 + 1 + 4
	cntOff := dfOff + 1

	b := base()
	b[dfOff] = 99
	if _, err := DecodeGroup(r, b); err == nil || !strings.Contains(err.Error(), "dataflow") {
		t.Errorf("unknown dataflow: got %v", err)
	}
	b = base()
	binary.LittleEndian.PutUint32(b[8+2+1:], uint32(0x80000000))
	if _, err := DecodeGroup(r, b); err == nil || !strings.Contains(err.Error(), "level") {
		t.Errorf("negative level: got %v", err)
	}
	b = base()
	binary.LittleEndian.PutUint32(b[cntOff:], 0)
	if _, err := DecodeGroup(r, b); err == nil {
		t.Error("zero member count accepted")
	}
	// A lying member count far beyond the payload must error on the
	// pre-check, before any count-sized allocation.
	b = base()
	binary.LittleEndian.PutUint32(b[cntOff:], maxGroupLen)
	if _, err := DecodeGroup(r, b); err == nil || !strings.Contains(err.Error(), "carries") {
		t.Errorf("lying member count: got %v", err)
	}
	b = base()
	binary.LittleEndian.PutUint32(b[cntOff:], maxGroupLen+1)
	if _, err := DecodeGroup(r, b); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("member count over cap: got %v", err)
	}
	// Oversized encode requests are refused symmetrically.
	if _, err := EncodeGroup(r, &Group{Tenant: "t", Rots: nil, Input: in}); err == nil {
		t.Error("EncodeGroup accepted an empty group")
	}
	if _, err := EncodeGroup(r, &Group{Tenant: strings.Repeat("x", maxTenantLen+1),
		Rots: []int{1}, Input: in}); err == nil {
		t.Error("EncodeGroup accepted an oversized tenant name")
	}
}

func TestResultRoundTrip(t *testing.T) {
	cctx := testCtx(t)
	r := cctx.R
	sw, _ := cctx.Switchers().Switcher(2)
	c0 := r.NewPoly(sw.QBasis())
	c0.IsNTT = true
	c0.Coeffs[0][1] = 9
	c1 := r.NewPoly(sw.QBasis())
	c1.IsNTT = true
	c1.Coeffs[1][2] = 11

	cases := []*WireResult{
		{ReqID: 3, Code: ResultOK, C0: c0, C1: c1},
		{ReqID: 4, Code: ResultErr, ErrMsg: "no such key"},
		{ReqID: 5, Code: ResultRequeue},
	}
	for _, wr := range cases {
		payload, err := EncodeResult(r, wr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResult(r, payload)
		if err != nil {
			t.Fatalf("result code %d: %v", wr.Code, err)
		}
		if got.ReqID != wr.ReqID || got.Code != wr.Code || got.ErrMsg != wr.ErrMsg {
			t.Fatalf("result round-tripped as %+v", got)
		}
		if wr.Code == ResultOK && (!got.C0.Equal(c0) || !got.C1.Equal(c1)) {
			t.Fatal("result polynomials not bit-exact after round trip")
		}
		decodeRobust(t, "result", payload, func(p []byte) error {
			_, err := DecodeResult(r, p)
			return err
		})
	}
	// Unknown result codes are rejected on both sides.
	if _, err := EncodeResult(r, &WireResult{Code: 99}); err == nil {
		t.Error("EncodeResult accepted an unknown code")
	}
	bad, _ := EncodeResult(r, &WireResult{ReqID: 1, Code: ResultRequeue})
	bad[8] = 99
	if _, err := DecodeResult(r, bad); err == nil {
		t.Error("DecodeResult accepted an unknown code")
	}
	// Oversized error strings are truncated to the cap, not refused.
	long, err := EncodeResult(r, &WireResult{Code: ResultErr, ErrMsg: strings.Repeat("e", maxErrLen+100)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(r, long)
	if err != nil || len(got.ErrMsg) != maxErrLen {
		t.Fatalf("oversized error string: len %d, err %v", len(got.ErrMsg), err)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := serve.Stats{
		Submitted: 10, Served: 9, Failed: 1, Batches: 3, Groups: 4,
		ModUps: 4, Coalesced: 5, CoalescingFactor: 2.25,
		P50: 3 * time.Millisecond, P99: 9 * time.Millisecond,
		PerLevel: []serve.LevelStats{{Level: 3, Switches: 6, ModUps: 2}, {Level: 1, Switches: 3, ModUps: 2}},
		Tenants: []serve.TenantStats{{
			Tenant: "t0", Submitted: 10, Served: 9,
			PerLevel: []serve.LevelStats{{Level: 3, Switches: 6, ModUps: 2}},
		}},
	}
	st.Keys.Hits = 7
	st.Keys.Misses = 2
	payload, err := EncodeStats(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStats(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("stats round-tripped as %+v, want %+v", got, st)
	}
	if _, err := DecodeStats([]byte("{not json")); err == nil {
		t.Error("DecodeStats accepted invalid JSON")
	}
}

func TestEvkRoundTrip(t *testing.T) {
	cctx := testCtx(t)
	kc, _ := ckks.GenKeys(cctx, KeySeed("t0"))
	chains := serve.KeyChains{"t0": kc}
	id := EvkID{Tenant: "t0", Rot: 3, Level: 3}
	mat, err := chains.Key(serve.KeyID{Tenant: id.Tenant, Rot: id.Rot, Level: id.Level})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := cctx.Switchers().Switcher(id.Level)
	if err != nil {
		t.Fatal(err)
	}
	evk := mat.Dense(sw.R)

	reqPayload, err := EncodeEvkReq(id)
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := DecodeEvkReq(reqPayload)
	if err != nil || gotID != id {
		t.Fatalf("evk request round-tripped as %+v (%v)", gotID, err)
	}
	decodeRobust(t, "evk-req", reqPayload, func(p []byte) error {
		_, err := DecodeEvkReq(p)
		return err
	})

	payload, err := EncodeEvk(id, sw, evk)
	if err != nil {
		t.Fatal(err)
	}
	gotID, gotEvk, err := DecodeEvk(payload, cctx.Switchers())
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id {
		t.Fatalf("evk round-tripped under id %+v", gotID)
	}
	var want, got bytes.Buffer
	if err := sw.WriteEvk(&want, evk); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteEvk(&got, gotEvk); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("evaluation key not bit-exact after round trip")
	}
	decodeRobust(t, "evk", payload, func(p []byte) error {
		_, _, err := DecodeEvk(p, cctx.Switchers())
		return err
	})
}
