package cluster

// The router front-end: one connection per shard, consistent-hash
// placement by tenant, and the bookkeeping that keeps the cluster's
// counters exact under replication, drain, and shard death.
//
// Every group is owned by exactly one shard at a time (pendingGroup
// tracks which); hot tenants round-robin their groups over up to R
// replica owners, never splitting a group. Requeues (a draining shard
// refusing work) and deaths reassign a group to the next live owner
// with fresh request IDs — the old IDs leave the pending table first,
// so a late result from the old shard cannot be delivered twice. The
// per-shard Completed counters therefore attribute every request to
// exactly the shard whose result was accepted, which is the
// delivery-exactness invariant the kill tests gate: even when a dead
// shard half-executed a group that later re-ran elsewhere, the
// router's books sum to the schedule prediction.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ciflow/internal/dataflow"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

// RouterConfig tunes the router.
type RouterConfig struct {
	// Replicas is how many distinct shards may serve one tenant
	// (groups round-robin across them); ≤ 0 means 1.
	Replicas int
	// Vnodes is the virtual nodes per shard on the hash ring; ≤ 0
	// means 64.
	Vnodes int
}

// shardClient is the router's view of one shard connection.
type shardClient struct {
	idx  int
	name string
	conn net.Conn
	fw   *frameWriter

	down   atomic.Bool
	closed chan struct{}

	// completed counts results this shard delivered that the router
	// accepted (first delivery wins) — the router-side attribution
	// that must sum to the schedule prediction even across kills.
	completed atomic.Uint64

	// ctl serializes control round-trips (stats, ping, evk) on this
	// connection, so concurrent tenant views can poll stats without
	// colliding on the one-outstanding-reply-per-type rule. Drain does
	// not hold it: its reply can take as long as the shard's in-flight
	// work, and it happens at most once per shard.
	ctl sync.Mutex

	// waiters holds at most one outstanding reply channel per control
	// frame type (stats, pong, drain-done, evk).
	waitMu  sync.Mutex
	waiters map[FrameType]chan []byte

	drained atomic.Bool
	finalMu sync.Mutex
	final   serve.Stats
}

func (sc *shardClient) write(typ FrameType, payload []byte) error {
	return sc.fw.write(typ, payload)
}

// expect registers the single outstanding waiter for one reply type.
func (sc *shardClient) expect(typ FrameType) (chan []byte, error) {
	sc.waitMu.Lock()
	defer sc.waitMu.Unlock()
	if sc.waiters[typ] != nil {
		return nil, fmt.Errorf("cluster: %s already awaiting a %v reply", sc.name, typ)
	}
	ch := make(chan []byte, 1)
	sc.waiters[typ] = ch
	return ch, nil
}

func (sc *shardClient) deliverReply(typ FrameType, payload []byte) {
	sc.waitMu.Lock()
	ch := sc.waiters[typ]
	delete(sc.waiters, typ)
	sc.waitMu.Unlock()
	if ch != nil {
		ch <- payload
	}
}

// cancel unregisters an outstanding waiter that will never see a reply
// — FetchEvk registers for both the dense and compressed reply frames
// and the shard answers on exactly one of them.
func (sc *shardClient) cancel(typ FrameType) {
	sc.waitMu.Lock()
	delete(sc.waiters, typ)
	sc.waitMu.Unlock()
}

func (sc *shardClient) setFinal(st serve.Stats) {
	sc.finalMu.Lock()
	sc.final = st
	sc.finalMu.Unlock()
	sc.drained.Store(true)
}

func (sc *shardClient) finalStats() serve.Stats {
	sc.finalMu.Lock()
	defer sc.finalMu.Unlock()
	return sc.final.Snapshot()
}

// pendingMember is one request of an in-flight group.
type pendingMember struct {
	pg       *pendingGroup
	rot      int
	ch       chan serve.Result
	done     bool
	requeued bool // requeue seen in the current epoch
}

// pendingGroup is one in-flight hoist group and its current
// assignment. epoch increments on every (re)assignment; a goroutine
// holding a stale epoch observes the bump and stands down, so exactly
// one reassignment wins any race between a failed sender and the
// death scan.
type pendingGroup struct {
	tenant string
	level  int
	df     dataflow.Dataflow
	input  *ring.Poly

	members []*pendingMember
	undone  int

	shard    int
	epoch    int
	curIDs   []uint64
	curCount int // members in the current wire frame
	requeues int // requeues received in the current epoch
}

// Router fronts a set of shard backends. Construct with NewRouter;
// submit through per-tenant views (TenantView) or SubmitGroup.
type Router struct {
	r      *ring.Ring
	cfg    RouterConfig
	shards []*shardClient

	mu      sync.Mutex
	hring   *hashRing
	nextID  uint64
	pending map[uint64]*pendingMember
	groups  map[*pendingGroup]struct{}
	rr      map[string]int

	delivered atomic.Uint64
}

// NewRouter dials one connection per shard address and starts the
// read loops. r must be the ring every shard serves on.
func NewRouter(r *ring.Ring, addrs []string, cfg RouterConfig) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: router needs at least one shard address")
	}
	rt := &Router{
		r:       r,
		cfg:     cfg,
		hring:   newHashRing(len(addrs), cfg.Vnodes),
		pending: make(map[uint64]*pendingMember),
		groups:  make(map[*pendingGroup]struct{}),
		rr:      make(map[string]int),
	}
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, sc := range rt.shards {
				sc.conn.Close()
			}
			return nil, fmt.Errorf("cluster: dial shard %d (%s): %w", i, addr, err)
		}
		rt.shards = append(rt.shards, &shardClient{
			idx:     i,
			name:    fmt.Sprintf("shard-%d(%s)", i, addr),
			conn:    conn,
			fw:      &frameWriter{w: conn},
			closed:  make(chan struct{}),
			waiters: make(map[FrameType]chan []byte),
		})
	}
	for _, sc := range rt.shards {
		go rt.readLoop(sc)
	}
	return rt, nil
}

// NumShards reports the configured shard count; Live the shards still
// routable (not drained, not down).
func (rt *Router) NumShards() int { return len(rt.shards) }

func (rt *Router) Live() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.hring.liveCount()
}

// Delivered reports the total results the router has accepted.
func (rt *Router) Delivered() uint64 { return rt.delivered.Load() }

// Completed reports how many accepted results shard i served.
func (rt *Router) Completed(i int) uint64 { return rt.shards[i].completed.Load() }

// Close drops every shard connection (without shutting the shards
// down; see ShutdownShards).
func (rt *Router) Close() {
	for _, sc := range rt.shards {
		sc.conn.Close()
	}
}

// ShutdownShards tells every reachable shard process to exit.
func (rt *Router) ShutdownShards() {
	for _, sc := range rt.shards {
		if !sc.down.Load() {
			sc.write(FrameShutdown, nil)
		}
	}
}

// Kill abruptly severs shard i's connection — the test hook for the
// death path (the cluster experiment kills the whole process).
func (rt *Router) Kill(i int) { rt.markDown(rt.shards[i]) }

// readLoop consumes one shard's frames until the connection dies.
func (rt *Router) readLoop(sc *shardClient) {
	for {
		typ, payload, err := ReadFrame(sc.conn)
		if err != nil {
			rt.markDown(sc)
			return
		}
		switch typ {
		case FrameResult:
			wr, err := DecodeResult(rt.r, payload)
			if err != nil {
				rt.markDown(sc)
				return
			}
			rt.handleResult(sc, wr)
		case FrameStats, FramePong, FrameDrainDone, FrameEvk, FrameEvkComp:
			sc.deliverReply(typ, payload)
		default:
			rt.markDown(sc)
			return
		}
	}
}

// handleResult routes one result frame: terminal results deliver at
// most once (the pending table is the dedup), requeues trigger a
// whole-group reassignment once every current member has been
// requeued (a draining shard requeues groups atomically).
func (rt *Router) handleResult(sc *shardClient, wr *WireResult) {
	rt.mu.Lock()
	m := rt.pending[wr.ReqID]
	if m == nil || m.pg.shard != sc.idx {
		// Unknown, already delivered, or reassigned: a late result
		// from a shard that lost the group. Drop it — first delivery
		// won, and counting it would double-attribute the request.
		rt.mu.Unlock()
		return
	}
	pg := m.pg
	if wr.Code == ResultRequeue {
		if !m.requeued {
			m.requeued = true
			pg.requeues++
		}
		if pg.requeues == pg.curCount {
			epoch := pg.epoch
			rt.mu.Unlock()
			rt.dispatch(pg, epoch)
			return
		}
		rt.mu.Unlock()
		return
	}
	delete(rt.pending, wr.ReqID)
	m.done = true
	pg.undone--
	if pg.undone == 0 {
		delete(rt.groups, pg)
	}
	rt.mu.Unlock()

	sc.completed.Add(1)
	rt.delivered.Add(1)
	var res serve.Result
	switch wr.Code {
	case ResultOK:
		res = serve.Result{C0: wr.C0, C1: wr.C1}
	default:
		res = serve.Result{Err: fmt.Errorf("cluster: %s: %s", sc.name, wr.ErrMsg)}
	}
	m.ch <- res
}

// markDown records a shard death: off the ring, connection closed,
// and every group it owned reassigned to a live shard.
func (rt *Router) markDown(sc *shardClient) {
	if sc.down.Swap(true) {
		return
	}
	sc.conn.Close()
	close(sc.closed)
	rt.mu.Lock()
	rt.hring.remove(sc.idx)
	type redo struct {
		pg    *pendingGroup
		epoch int
	}
	var redos []redo
	for pg := range rt.groups {
		if pg.shard == sc.idx {
			redos = append(redos, redo{pg, pg.epoch})
		}
	}
	rt.mu.Unlock()
	for _, rd := range redos {
		go rt.dispatch(rd.pg, rd.epoch)
	}
}

// rrNextLocked round-robins a tenant's groups over its replica set.
func (rt *Router) rrNextLocked(tenant string, n int) int {
	i := rt.rr[tenant] % n
	rt.rr[tenant]++
	return i
}

// dispatch (re)assigns pg's undone members to a live owner and sends
// the group frame. Only the caller whose epoch still matches proceeds
// — a failed sender and the death scan can both call dispatch for the
// same group, and the epoch bump lets exactly one win. Terminal
// failures (no live shards, encode errors) fail the remaining members
// through their result channels.
func (rt *Router) dispatch(pg *pendingGroup, wantEpoch int) {
	for {
		rt.mu.Lock()
		if pg.epoch != wantEpoch {
			rt.mu.Unlock()
			return
		}
		var ms []*pendingMember
		var rots []int
		for _, m := range pg.members {
			if !m.done {
				ms = append(ms, m)
				rots = append(rots, m.rot)
			}
		}
		if len(ms) == 0 {
			delete(rt.groups, pg)
			rt.mu.Unlock()
			return
		}
		owners := rt.hring.owners(pg.tenant, rt.cfg.Replicas)
		if len(owners) == 0 {
			rt.failLocked(pg, ms, errors.New("cluster: no live shards"))
			rt.mu.Unlock()
			return
		}
		sc := rt.shards[owners[rt.rrNextLocked(pg.tenant, len(owners))]]
		for _, id := range pg.curIDs {
			delete(rt.pending, id)
		}
		base := rt.nextID
		rt.nextID += uint64(len(ms))
		pg.curIDs = pg.curIDs[:0]
		for i, m := range ms {
			id := base + uint64(i)
			pg.curIDs = append(pg.curIDs, id)
			rt.pending[id] = m
			m.requeued = false
		}
		pg.curCount = len(ms)
		pg.requeues = 0
		pg.shard = sc.idx
		pg.epoch++
		wantEpoch = pg.epoch
		rt.groups[pg] = struct{}{}
		g := &Group{
			BaseID: base, Tenant: pg.tenant, Level: pg.level,
			Dataflow: pg.df, Rots: rots, Input: pg.input,
		}
		rt.mu.Unlock()

		payload, err := EncodeGroup(rt.r, g)
		if err != nil {
			rt.mu.Lock()
			if pg.epoch == wantEpoch {
				rt.failLocked(pg, ms, err)
			}
			rt.mu.Unlock()
			return
		}
		if err := sc.write(FrameGroup, payload); err == nil {
			return
		}
		// The write failed: the shard is dead. markDown may race us to
		// reassign pg; the epoch check at the top of the loop settles it.
		rt.markDown(sc)
	}
}

// failLocked terminally fails ms (members of pg) with err. Caller
// holds rt.mu.
func (rt *Router) failLocked(pg *pendingGroup, ms []*pendingMember, err error) {
	for _, id := range pg.curIDs {
		delete(rt.pending, id)
	}
	pg.curIDs = pg.curIDs[:0]
	for _, m := range ms {
		if !m.done {
			m.done = true
			pg.undone--
			m.ch <- serve.Result{Err: err}
		}
	}
	if pg.undone == 0 {
		delete(rt.groups, pg)
	}
}

// SubmitGroup routes one whole hoist group — every request must share
// one tenant, level, dataflow, and input polynomial — to a single
// owner shard, and returns one result channel per request, in order.
// It implements the contract of workload.GroupSubmitter (via
// TenantView): the group reaches one executor whole, so coalescing
// and the exact-count invariants survive the wire.
func (rt *Router) SubmitGroup(ctx context.Context, reqs []serve.Request) ([]<-chan serve.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, errors.New("cluster: empty group")
	}
	r0 := reqs[0]
	pg := &pendingGroup{
		tenant: r0.Tenant, level: r0.Level, df: r0.Dataflow,
		input: r0.Input, shard: -1, undone: len(reqs),
	}
	out := make([]<-chan serve.Result, len(reqs))
	for i, req := range reqs {
		if req.Tenant != r0.Tenant || req.Level != r0.Level ||
			req.Dataflow != r0.Dataflow || req.Input != r0.Input {
			return nil, errors.New("cluster: group members must share tenant, level, dataflow, and input")
		}
		m := &pendingMember{pg: pg, rot: req.Rot, ch: make(chan serve.Result, 1)}
		pg.members = append(pg.members, m)
		out[i] = m.ch
	}
	rt.mu.Lock()
	rt.groups[pg] = struct{}{}
	rt.mu.Unlock()
	rt.dispatch(pg, 0)
	return out, nil
}

// Submit routes one request (a group of one).
func (rt *Router) Submit(ctx context.Context, req serve.Request) (<-chan serve.Result, error) {
	rcs, err := rt.SubmitGroup(ctx, []serve.Request{req})
	if err != nil {
		return nil, err
	}
	return rcs[0], nil
}

// Ping health-checks shard i.
func (rt *Router) Ping(i int) error {
	sc := rt.shards[i]
	if sc.down.Load() {
		return fmt.Errorf("cluster: %s is down", sc.name)
	}
	sc.ctl.Lock()
	defer sc.ctl.Unlock()
	ch, err := sc.expect(FramePong)
	if err != nil {
		return err
	}
	if err := sc.write(FramePing, nil); err != nil {
		rt.markDown(sc)
		return err
	}
	select {
	case <-ch:
		return nil
	case <-sc.closed:
		return fmt.Errorf("cluster: %s died awaiting pong", sc.name)
	}
}

// ShardStats fetches shard i's serve.Stats snapshot: over the wire
// while it lives, from the cached drain-final snapshot afterwards.
func (rt *Router) ShardStats(i int) (serve.Stats, error) {
	sc := rt.shards[i]
	if sc.drained.Load() {
		return sc.finalStats(), nil
	}
	if sc.down.Load() {
		return serve.Stats{}, fmt.Errorf("cluster: %s is down", sc.name)
	}
	sc.ctl.Lock()
	defer sc.ctl.Unlock()
	ch, err := sc.expect(FrameStats)
	if err != nil {
		return serve.Stats{}, err
	}
	if err := sc.write(FrameStatsReq, nil); err != nil {
		rt.markDown(sc)
		return serve.Stats{}, err
	}
	select {
	case p := <-ch:
		return DecodeStats(p)
	case <-sc.closed:
		if sc.drained.Load() {
			return sc.finalStats(), nil
		}
		return serve.Stats{}, fmt.Errorf("cluster: %s died awaiting stats", sc.name)
	}
}

// Drain removes shard i from the ring (so no new group lands on it),
// tells it to requeue instead of execute, waits for its in-flight
// groups to finish, and returns its final — now immutable — stats
// snapshot. Drained finals plus live deltas sum to the schedule
// prediction exactly, because requeued work is counted only by the
// shard that completed it.
func (rt *Router) Drain(i int) (serve.Stats, error) {
	sc := rt.shards[i]
	if sc.down.Load() {
		return serve.Stats{}, fmt.Errorf("cluster: %s is down", sc.name)
	}
	rt.mu.Lock()
	rt.hring.remove(sc.idx)
	rt.mu.Unlock()
	ch, err := sc.expect(FrameDrainDone)
	if err != nil {
		return serve.Stats{}, err
	}
	if err := sc.write(FrameDrain, nil); err != nil {
		rt.markDown(sc)
		return serve.Stats{}, err
	}
	select {
	case p := <-ch:
		st, err := DecodeStats(p)
		if err != nil {
			return serve.Stats{}, err
		}
		sc.setFinal(st)
		return st, nil
	case <-sc.closed:
		return serve.Stats{}, fmt.Errorf("cluster: %s died mid-drain", sc.name)
	}
}

// FetchEvk pulls one evaluation key from shard i, validating it
// against switchers — the replica-consistency probe (deterministic
// keygen means every shard must return bit-identical key material).
// The shard may answer dense (FrameEvk) or compressed (FrameEvkComp);
// a compressed reply is expanded locally, so the caller always gets a
// dense key and seed expansion stays bit-exact with shard-side keygen.
func (rt *Router) FetchEvk(i int, id EvkID, switchers serve.SwitcherSource) (*hks.Evk, error) {
	sc := rt.shards[i]
	if sc.down.Load() {
		return nil, fmt.Errorf("cluster: %s is down", sc.name)
	}
	sc.ctl.Lock()
	defer sc.ctl.Unlock()
	ch, err := sc.expect(FrameEvk)
	if err != nil {
		return nil, err
	}
	chComp, err := sc.expect(FrameEvkComp)
	if err != nil {
		sc.cancel(FrameEvk)
		return nil, err
	}
	req, err := EncodeEvkReq(id)
	if err != nil {
		sc.cancel(FrameEvk)
		sc.cancel(FrameEvkComp)
		return nil, err
	}
	if err := sc.write(FrameEvkReq, req); err != nil {
		rt.markDown(sc)
		return nil, err
	}
	check := func(got EvkID) error {
		if got != id {
			return fmt.Errorf("cluster: %s returned evk %+v, want %+v", sc.name, got, id)
		}
		return nil
	}
	select {
	case p := <-ch:
		sc.cancel(FrameEvkComp)
		got, evk, err := DecodeEvk(p, switchers)
		if err != nil {
			return nil, err
		}
		if err := check(got); err != nil {
			return nil, err
		}
		return evk, nil
	case p := <-chComp:
		sc.cancel(FrameEvk)
		got, c, err := DecodeEvkComp(p, switchers)
		if err != nil {
			return nil, err
		}
		if err := check(got); err != nil {
			return nil, err
		}
		sw, err := switchers.Switcher(id.Level)
		if err != nil {
			return nil, err
		}
		return c.Expand(sw.R), nil
	case <-sc.closed:
		return nil, fmt.Errorf("cluster: %s died awaiting evk", sc.name)
	}
}

// ShardState names one shard's lifecycle state in Status reports.
type ShardState string

const (
	ShardLive    ShardState = "live"
	ShardDrained ShardState = "drained"
	ShardDown    ShardState = "down"
)

// ShardStatus is one shard's entry in a cluster status report.
type ShardStatus struct {
	Shard     int         `json:"shard"`
	Name      string      `json:"name"`
	State     ShardState  `json:"state"`
	Completed uint64      `json:"completed"`
	Stats     serve.Stats `json:"stats"`
}

// Status reports every shard: state, router-side completion count,
// and the freshest stats snapshot available (zero for a shard that
// died without draining).
func (rt *Router) Status() []ShardStatus {
	out := make([]ShardStatus, len(rt.shards))
	for i, sc := range rt.shards {
		s := ShardStatus{Shard: i, Name: sc.name, Completed: sc.completed.Load()}
		switch {
		case sc.drained.Load():
			s.State = ShardDrained
			s.Stats = sc.finalStats()
		case sc.down.Load():
			s.State = ShardDown
		default:
			s.State = ShardLive
			if st, err := rt.ShardStats(i); err == nil {
				s.Stats = st
			}
		}
		out[i] = s
	}
	return out
}

// AllStats returns the freshest per-shard stats snapshots (live
// fetches plus drained finals; shards that died undrained are
// omitted). AggregateStats over this slice is the cluster-wide view
// the shard-sum invariant gates.
func (rt *Router) AllStats() []serve.Stats {
	var out []serve.Stats
	for i, sc := range rt.shards {
		if sc.down.Load() && !sc.drained.Load() {
			continue
		}
		if st, err := rt.ShardStats(i); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// TenantView is one tenant's window onto the cluster: it implements
// workload.Server (and GroupSubmitter), so the PR 5 replay client can
// drive a sharded fabric exactly as it drives one process — same
// exact-count assertions, same bit-exact serial reference.
type TenantView struct {
	Router *Router
	Tenant string
}

// Submit routes one request for the view's tenant.
func (tv *TenantView) Submit(ctx context.Context, req serve.Request) (<-chan serve.Result, error) {
	if req.Tenant != tv.Tenant {
		return nil, fmt.Errorf("cluster: tenant view %q got request for %q", tv.Tenant, req.Tenant)
	}
	return tv.Router.Submit(ctx, req)
}

// SubmitGroup routes one whole hoist group for the view's tenant.
func (tv *TenantView) SubmitGroup(ctx context.Context, reqs []serve.Request) ([]<-chan serve.Result, error) {
	for i := range reqs {
		if reqs[i].Tenant != tv.Tenant {
			return nil, fmt.Errorf("cluster: tenant view %q got request for %q", tv.Tenant, reqs[i].Tenant)
		}
	}
	return tv.Router.SubmitGroup(ctx, reqs)
}

// Stats projects the cluster-wide aggregate onto this tenant as a
// serve.Stats value, so replay deltas measure exactly this tenant's
// slice of the fabric no matter how many shards served it.
func (tv *TenantView) Stats() serve.Stats {
	agg := AggregateStats(tv.Router.AllStats())
	for _, ts := range agg.Tenants {
		if ts.Tenant != tv.Tenant {
			continue
		}
		return serve.Stats{
			Submitted: ts.Submitted, Served: ts.Served, Failed: ts.Failed,
			Batches: ts.Batches, Groups: ts.Groups, ModUps: ts.ModUps,
			Coalesced: ts.Coalesced, KeyExpansions: ts.KeyExpansions,
			CoalescingFactor: ts.CoalescingFactor,
			P50:              ts.P50, P99: ts.P99,
			PerLevel: append([]serve.LevelStats(nil), ts.PerLevel...),
			Tenants:  []serve.TenantStats{ts},
		}
	}
	return serve.Stats{}
}
