package cluster

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/engine"
	"ciflow/internal/serve"
	"ciflow/internal/workload"
)

// testCluster is an in-process fabric: n shards on loopback TCP, one
// router, all sharing one ckks context (the processes of the `ciflow
// cluster` experiment, minus the process boundary — the wire between
// them is the real one).
type testCluster struct {
	cctx   *ckks.Context
	rt     *Router
	shards []*Shard
}

func startCluster(t *testing.T, n int, tenants []string, s *workload.Schedule, rcfg RouterConfig) *testCluster {
	t.Helper()
	cctx := testCtx(t)
	tc := &testCluster{cctx: cctx}
	var addrs []string
	for i := 0; i < n; i++ {
		e := engine.New(2)
		t.Cleanup(e.Close)
		cfg := workload.ReplayServiceConfig(s)
		cfg.Engine = e
		sh, err := NewShard(cctx, tenants, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go sh.Serve(ln)
		t.Cleanup(sh.Close)
		tc.shards = append(tc.shards, sh)
		addrs = append(addrs, ln.Addr().String())
	}
	rt, err := NewRouter(cctx.R, addrs, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tc.rt = rt
	return tc
}

// replayTenant drives one tenant's schedule through the router with
// the serial bit-exactness reference enabled; the reference keys are
// re-derived locally from the tenant's deterministic seed, never
// fetched from a shard.
func (tc *testCluster) replayTenant(s *workload.Schedule, tenant string) (*workload.ReplayResult, error) {
	kc, _ := ckks.GenKeys(tc.cctx, KeySeed(tenant))
	chains := serve.KeyChains{tenant: kc}
	tv := &TenantView{Router: tc.rt, Tenant: tenant}
	return workload.Replay(context.Background(), tv, tc.cctx.Switchers(), chains, tc.cctx.R,
		s, workload.ReplayConfig{Tenant: tenant, Seed: 7, Check: true})
}

func testSchedule(t *testing.T) *workload.Schedule {
	t.Helper()
	s, err := workload.Bootstrap(workload.BootstrapParams{LogSlots: 4, Radix: 16, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func assertReplayExact(t *testing.T, res *workload.ReplayResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CountsExact {
		t.Fatalf("cluster counters drifted from the schedule: %v", res.Mismatches)
	}
	if !res.Checked || !res.BitExact {
		t.Fatalf("serial reference check failed over the wire: %v", res.Mismatches)
	}
	if res.DepViolations != 0 {
		t.Fatalf("%d dependency-order violations", res.DepViolations)
	}
}

// assertShardSum checks the cluster's cardinal invariant: per-shard
// stats summed across the fabric equal tenants× the schedule
// prediction, including the per-level breakdown.
func assertShardSum(t *testing.T, rt *Router, s *workload.Schedule, tenants int) {
	t.Helper()
	p := s.Counts()
	agg := AggregateStats(rt.AllStats())
	n := uint64(tenants)
	if agg.Served != n*uint64(p.Switches) || agg.ModUps != n*uint64(p.ModUps) ||
		agg.Groups != n*uint64(p.ModUps) || agg.Coalesced != n*uint64(p.Coalesced) {
		t.Fatalf("shard-sum: served=%d modUps=%d groups=%d coalesced=%d, schedule×%d predicts %+v",
			agg.Served, agg.ModUps, agg.Groups, agg.Coalesced, n, p)
	}
	measured := map[int]serve.LevelStats{}
	for _, ls := range agg.PerLevel {
		measured[ls.Level] = ls
	}
	for _, pl := range p.PerLevel {
		m := measured[pl.Level]
		if m.Switches != n*uint64(pl.Switches) || m.ModUps != n*uint64(pl.ModUps) {
			t.Fatalf("shard-sum level %d: measured %+v, schedule×%d predicts %+v", pl.Level, m, n, pl)
		}
		delete(measured, pl.Level)
	}
	for l, m := range measured {
		if m.Switches != 0 || m.ModUps != 0 {
			t.Fatalf("shard-sum: level %d has %+v but the schedule predicts nothing there", l, m)
		}
	}
}

func TestClusterReplayExactMultiTenant(t *testing.T) {
	s := testSchedule(t)
	tenants := []string{"t0", "t1"}
	tc := startCluster(t, 2, tenants, s, RouterConfig{})

	type out struct {
		res *workload.ReplayResult
		err error
	}
	results := make(chan out, len(tenants))
	for _, tn := range tenants {
		go func(tn string) {
			res, err := tc.replayTenant(s, tn)
			results <- out{res, err}
		}(tn)
	}
	for range tenants {
		o := <-results
		assertReplayExact(t, o.res, o.err)
	}
	assertShardSum(t, tc.rt, s, len(tenants))
	if got := tc.rt.Delivered(); got != uint64(2*s.Counts().Switches) {
		t.Fatalf("router delivered %d results, want %d", got, 2*s.Counts().Switches)
	}
	for i := range tc.shards {
		if err := tc.rt.Ping(i); err != nil {
			t.Fatalf("ping shard %d: %v", i, err)
		}
	}
}

// With replication, one tenant's groups round-robin over two owners —
// and the shard-sum invariant must still hold exactly, because groups
// never split across replicas and key material is deterministic.
func TestClusterReplicationExact(t *testing.T) {
	s := testSchedule(t)
	tc := startCluster(t, 2, []string{"t0"}, s, RouterConfig{Replicas: 2})
	res, err := tc.replayTenant(s, "t0")
	assertReplayExact(t, res, err)
	assertShardSum(t, tc.rt, s, 1)
	for i := range tc.shards {
		if tc.rt.Completed(i) == 0 {
			t.Fatalf("replica shard %d served nothing; replication did not spread the load", i)
		}
	}
}

// Draining a shard mid-replay must keep the books exact: the drained
// shard's final snapshot plus the survivors' counters still sum to
// the prediction, because a draining shard requeues groups before
// executing them — requeued work lands in exactly one shard's stats.
func TestClusterDrainMidReplayExact(t *testing.T) {
	s := testSchedule(t)
	tc := startCluster(t, 3, []string{"t0"}, s, RouterConfig{})

	type out struct {
		res *workload.ReplayResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := tc.replayTenant(s, "t0")
		done <- out{res, err}
	}()
	waitFor(t, "first delivery", func() bool { return tc.rt.Delivered() >= 1 })
	victim := 0
	for i := range tc.shards {
		if tc.rt.Completed(i) > tc.rt.Completed(victim) {
			victim = i
		}
	}
	final, err := tc.rt.Drain(victim)
	if err != nil {
		t.Fatalf("drain shard %d: %v", victim, err)
	}
	if final.Served == 0 {
		t.Fatalf("drained the owner shard %d but its final snapshot served nothing", victim)
	}
	o := <-done
	assertReplayExact(t, o.res, o.err)
	assertShardSum(t, tc.rt, s, 1)

	st := tc.rt.Status()
	if st[victim].State != ShardDrained {
		t.Fatalf("victim state %q, want drained", st[victim].State)
	}
	// The drained final is immutable: requeued groups may not have
	// leaked into it after DrainDone.
	after, err := tc.rt.ShardStats(victim)
	if err != nil || after.Served != final.Served || after.ModUps != final.ModUps {
		t.Fatalf("drained shard stats moved after DrainDone: %+v -> %+v (%v)", final, after, err)
	}
}

// Killing a shard abruptly mid-replay (severed connection, no drain)
// must preserve delivery exactness: every request completes, results
// stay bit-exact (deterministic keys make the re-execution identical),
// no result is delivered or attributed twice — the router's per-shard
// completion counters still sum exactly to the schedule prediction.
func TestClusterKillMidReplayDelivery(t *testing.T) {
	s := testSchedule(t)
	tenants := []string{"t0", "t1"}
	tc := startCluster(t, 3, tenants, s, RouterConfig{})

	type out struct {
		res *workload.ReplayResult
		err error
	}
	results := make(chan out, len(tenants))
	for _, tn := range tenants {
		go func(tn string) {
			res, err := tc.replayTenant(s, tn)
			results <- out{res, err}
		}(tn)
	}
	waitFor(t, "first delivery", func() bool { return tc.rt.Delivered() >= 1 })
	victim := 0
	for i := range tc.shards {
		if tc.rt.Completed(i) > tc.rt.Completed(victim) {
			victim = i
		}
	}
	tc.rt.Kill(victim)

	for range tenants {
		o := <-results
		if o.err != nil {
			t.Fatalf("replay failed after shard kill: %v", o.err)
		}
		// Counters measured through serve.Stats may legitimately be
		// inexact here — the killed shard took its books down with it,
		// and half-executed groups re-ran elsewhere. Delivery must
		// still be perfect: bit-exact results, dependency order intact.
		if !o.res.Checked || !o.res.BitExact {
			t.Fatalf("results not bit-exact after shard kill: %v", o.res.Mismatches)
		}
		if o.res.DepViolations != 0 {
			t.Fatalf("%d dependency violations after shard kill", o.res.DepViolations)
		}
	}
	want := uint64(len(tenants) * s.Counts().Switches)
	if got := tc.rt.Delivered(); got != want {
		t.Fatalf("router delivered %d results, want exactly %d (no loss, no double delivery)", got, want)
	}
	var completed uint64
	for i := range tc.shards {
		completed += tc.rt.Completed(i)
	}
	if completed != want {
		t.Fatalf("per-shard completions sum to %d, want exactly %d: a request was attributed to two shards", completed, want)
	}
	if st := tc.rt.Status(); st[victim].State != ShardDown {
		t.Fatalf("victim state %q, want down", st[victim].State)
	}
}

// Every shard must hand back bit-identical evaluation keys for the
// same (tenant, rot, level): key material is derived from KeySeed, so
// replication never has to ship keys between shards to stay exact.
func TestClusterEvkFetchBitIdentical(t *testing.T) {
	s := testSchedule(t)
	tc := startCluster(t, 2, []string{"t0"}, s, RouterConfig{})
	sw, err := tc.cctx.Switchers().Switcher(3)
	if err != nil {
		t.Fatal(err)
	}
	id := EvkID{Tenant: "t0", Rot: 1, Level: 3}
	var enc [2][]byte
	for i := 0; i < 2; i++ {
		evk, err := tc.rt.FetchEvk(i, id, tc.cctx.Switchers())
		if err != nil {
			t.Fatalf("fetch evk from shard %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := sw.WriteEvk(&buf, evk); err != nil {
			t.Fatal(err)
		}
		enc[i] = buf.Bytes()
	}
	if !bytes.Equal(enc[0], enc[1]) {
		t.Fatal("two shards returned different key material for the same EvkID")
	}
}

func TestAggregateStats(t *testing.T) {
	a := serve.Stats{
		Submitted: 4, Served: 4, Batches: 2, Groups: 2, ModUps: 2, Coalesced: 2,
		P50: 2 * time.Millisecond, P99: 5 * time.Millisecond,
		PerLevel: []serve.LevelStats{{Level: 3, Switches: 4, ModUps: 2}},
		Tenants: []serve.TenantStats{
			{Tenant: "t0", Served: 4, ModUps: 2, PerLevel: []serve.LevelStats{{Level: 3, Switches: 4, ModUps: 2}}},
		},
	}
	a.Keys.Hits = 3
	a.Keys.Misses = 1
	b := serve.Stats{
		Submitted: 6, Served: 6, Batches: 3, Groups: 4, ModUps: 4, Coalesced: 2,
		P50: 3 * time.Millisecond, P99: 4 * time.Millisecond,
		PerLevel: []serve.LevelStats{{Level: 3, Switches: 2, ModUps: 2}, {Level: 1, Switches: 4, ModUps: 2}},
		Tenants: []serve.TenantStats{
			{Tenant: "t0", Served: 2, ModUps: 2, PerLevel: []serve.LevelStats{{Level: 3, Switches: 2, ModUps: 2}}},
			{Tenant: "t1", Served: 4, ModUps: 2, PerLevel: []serve.LevelStats{{Level: 1, Switches: 4, ModUps: 2}}},
		},
	}
	b.Keys.Hits = 1
	b.Keys.Misses = 3

	agg := AggregateStats([]serve.Stats{a, b})
	if agg.Submitted != 10 || agg.Served != 10 || agg.Batches != 5 ||
		agg.Groups != 6 || agg.ModUps != 6 || agg.Coalesced != 4 {
		t.Fatalf("aggregate counters wrong: %+v", agg)
	}
	if agg.P50 != 3*time.Millisecond || agg.P99 != 5*time.Millisecond {
		t.Fatalf("aggregate percentiles should take the worst shard: p50=%v p99=%v", agg.P50, agg.P99)
	}
	if agg.CoalescingFactor != float64(10)/6 {
		t.Fatalf("coalescing factor %v not recomputed from summed counters", agg.CoalescingFactor)
	}
	if agg.Keys.Hits != 4 || agg.Keys.Misses != 4 || agg.Keys.HitRate != 0.5 {
		t.Fatalf("aggregate key-cache stats wrong: %+v", agg.Keys)
	}
	wantLevels := []serve.LevelStats{{Level: 3, Switches: 6, ModUps: 4}, {Level: 1, Switches: 4, ModUps: 2}}
	if len(agg.PerLevel) != 2 || agg.PerLevel[0] != wantLevels[0] || agg.PerLevel[1] != wantLevels[1] {
		t.Fatalf("aggregate per-level merge wrong: %+v", agg.PerLevel)
	}
	if len(agg.Tenants) != 2 || agg.Tenants[0].Tenant != "t0" || agg.Tenants[1].Tenant != "t1" {
		t.Fatalf("aggregate tenants wrong: %+v", agg.Tenants)
	}
	if agg.Tenants[0].Served != 6 || agg.Tenants[0].ModUps != 4 {
		t.Fatalf("tenant t0 merge wrong: %+v", agg.Tenants[0])
	}
	if len(agg.Tenants[0].PerLevel) != 1 || agg.Tenants[0].PerLevel[0] != (serve.LevelStats{Level: 3, Switches: 6, ModUps: 4}) {
		t.Fatalf("tenant t0 per-level merge wrong: %+v", agg.Tenants[0].PerLevel)
	}
}
