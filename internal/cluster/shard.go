package cluster

// The shard backend: one serve.Service behind a TCP listener. A shard
// decodes group frames, re-materializes the pointer-shared input the
// serve coalescer keys on, submits the members in one tight loop
// (exactly like the in-process replay client), and streams result
// frames back as they complete. Its evaluation keys are derived
// deterministically from tenant names (KeySeed), so every shard of a
// cluster serves bit-identical results for the same request — the
// property replication and the router-side serial reference rely on.
//
// Drain is the stats-exactness mechanism: once draining, a shard
// requeues incoming group frames *before executing anything* (a group
// is one frame, so the decision is atomic per group), finishes its
// in-flight groups, and replies with a final stats snapshot. After
// DrainDone its counters can never move again, so the router can add
// them to the live shards' deltas and still land exactly on the
// schedule prediction: requeued work is counted only by the shard
// that eventually runs it.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ciflow/internal/ckks"
	"ciflow/internal/hks"
	"ciflow/internal/serve"
)

// frameWriter serializes frame writes on one connection, which result
// streaming (many goroutines) and control replies share.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) write(typ FrameType, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return WriteFrame(fw.w, typ, payload)
}

// Shard wraps one serve.Service behind the wire protocol. Construct
// with NewShard, serve with Serve, and stop with Close (or a
// FrameShutdown from the router; Done unblocks either way).
type Shard struct {
	cctx *ckks.Context
	svc  *serve.Service
	src  *serve.SeedKeySource

	// drainMu orders group acceptance against drain: a group either
	// lands in inflight before draining flips, or observes draining
	// and is requeued — never half of each.
	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	done     chan struct{}
	doneOnce sync.Once
}

// NewShard builds a shard serving the given tenants on cctx: one
// seed-derived key source (serve.SeedKeySource with compression on, so
// every shard and the router's verifier agree on key material while
// each shard's cache holds keys at their compressed footprint) behind
// a serve.Service configured by scfg.
func NewShard(cctx *ckks.Context, tenants []string, scfg serve.Config) (*Shard, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: shard needs at least one tenant")
	}
	src, err := serve.NewSeedKeySource(cctx, tenants, true)
	if err != nil {
		return nil, err
	}
	svc, err := serve.New(cctx.Switchers(), src, scfg)
	if err != nil {
		return nil, err
	}
	return &Shard{
		cctx:  cctx,
		svc:   svc,
		src:   src,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}, nil
}

// Done is closed when the shard has been told to shut down (Close or
// a FrameShutdown).
func (s *Shard) Done() <-chan struct{} { return s.done }

// Stats exposes the underlying service's snapshot (tests and the
// in-process cluster experiment use it; remote routers go through
// FrameStatsReq).
func (s *Shard) Stats() serve.Stats { return s.svc.Stats() }

// Serve accepts router connections on ln until Close. It owns ln.
func (s *Shard) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cluster: shard closed")
	}
	s.ln = ln
	s.mu.Unlock()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops the listener, drops connections, and drains the
// service. Safe to call more than once.
func (s *Shard) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if already {
		return
	}
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.inflight.Wait()
	s.svc.Close()
	s.doneOnce.Do(func() { close(s.done) })
}

// acceptGroup claims an inflight slot unless the shard is draining.
func (s *Shard) acceptGroup() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// handle runs one connection's read loop. A protocol error (bad
// frame) drops the connection; the router treats that like a death.
func (s *Shard) handle(conn net.Conn) {
	fw := &frameWriter{w: conn}
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case FramePing:
			fw.write(FramePong, nil)
		case FrameStatsReq:
			p, err := EncodeStats(s.svc.Stats())
			if err != nil {
				return
			}
			fw.write(FrameStats, p)
		case FrameGroup:
			g, err := DecodeGroup(s.cctx.R, payload)
			if err != nil {
				return
			}
			if !s.acceptGroup() {
				for i := range g.Rots {
					s.writeResult(fw, &WireResult{ReqID: g.BaseID + uint64(i), Code: ResultRequeue})
				}
				continue
			}
			go s.runGroup(fw, g)
		case FrameEvkReq:
			id, err := DecodeEvkReq(payload)
			if err != nil {
				return
			}
			s.sendEvk(fw, id)
		case FrameDrain:
			s.drainMu.Lock()
			s.draining = true
			s.drainMu.Unlock()
			go func() {
				s.inflight.Wait()
				p, err := EncodeStats(s.svc.Stats())
				if err != nil {
					return
				}
				fw.write(FrameDrainDone, p)
			}()
		case FrameShutdown:
			s.doneOnce.Do(func() { close(s.done) })
			return
		default:
			// Reply frames are never valid from a router; drop the
			// connection rather than guess.
			return
		}
	}
}

// runGroup executes one accepted group: submit every member in a
// tight loop sharing the decoded input pointer (the coalescer groups
// them exactly as an in-process fan-out), then stream results back.
func (s *Shard) runGroup(fw *frameWriter, g *Group) {
	defer s.inflight.Done()
	chans := make([]<-chan serve.Result, len(g.Rots))
	for i, rot := range g.Rots {
		rc, err := s.svc.Submit(context.Background(), serve.Request{
			Input: g.Input, Rot: rot, Dataflow: g.Dataflow,
			Tenant: g.Tenant, Level: g.Level,
		})
		if err != nil {
			s.writeResult(fw, &WireResult{ReqID: g.BaseID + uint64(i), Code: ResultErr, ErrMsg: err.Error()})
			continue
		}
		chans[i] = rc
	}
	for i, rc := range chans {
		if rc == nil {
			continue
		}
		res := <-rc
		wr := &WireResult{ReqID: g.BaseID + uint64(i)}
		if res.Err != nil {
			wr.Code = ResultErr
			wr.ErrMsg = res.Err.Error()
		} else {
			wr.C0, wr.C1 = res.C0, res.C1
		}
		s.writeResult(fw, wr)
	}
}

// writeResult encodes and sends one result; a dead connection is the
// router's problem (it requeues undelivered requests), so write
// errors are dropped here.
func (s *Shard) writeResult(fw *frameWriter, wr *WireResult) {
	p, err := EncodeResult(s.cctx.R, wr)
	if err != nil {
		return
	}
	fw.write(FrameResult, p)
}

// sendEvk answers one evaluation-key fetch from the shard's
// seed-derived source. Compressed material ships as a FrameEvkComp
// (seeds + B halves — half the traffic); material that does not
// compress falls back to the dense FrameEvk.
func (s *Shard) sendEvk(fw *frameWriter, id EvkID) {
	mat, err := s.src.Key(serve.KeyID{Tenant: id.Tenant, Rot: id.Rot, Level: id.Level})
	if err != nil {
		return
	}
	sw, err := s.cctx.Switchers().Switcher(id.Level)
	if err != nil {
		return
	}
	switch m := mat.(type) {
	case *hks.CompressedEvk:
		p, err := EncodeEvkComp(id, sw, m)
		if err != nil {
			return
		}
		fw.write(FrameEvkComp, p)
	case *hks.Evk:
		p, err := EncodeEvk(id, sw, m)
		if err != nil {
			return
		}
		fw.write(FrameEvk, p)
	}
}
