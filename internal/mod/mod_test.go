package mod

import (
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// testModuli spans the magnitudes used in practice: small toy primes,
// 36-bit SHARP-style primes, and near-62-bit primes.
var testModuli = []uint64{
	3, 17, 257, 65537,
	(1 << 36) - 5*(1<<20) + 1, // not necessarily prime; New does not require primality
	68719403009,               // 36-bit NTT prime (q ≡ 1 mod 2^17)
	1152921504606830593,       // 60-bit NTT prime
	4611686018427322369,       // 62-bit prime candidate
}

func TestNewRejectsOutOfRange(t *testing.T) {
	for _, q := range []uint64{0, 1, 1 << 62, 1<<62 + 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", q)
				}
			}()
			New(q)
		}()
	}
}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 200; i++ {
			x := rng.Uint64() % q
			y := rng.Uint64() % q
			if got, want := m.Add(x, y), (x+y)%q; got != want {
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, x, y, got, want)
			}
			if got, want := m.Sub(x, y), (x+q-y)%q; got != want {
				t.Fatalf("q=%d Sub(%d,%d)=%d want %d", q, x, y, got, want)
			}
			if got := m.Add(x, m.Neg(x)); got != 0 {
				t.Fatalf("q=%d x + (-x) = %d", q, got)
			}
		}
	}
}

func TestMulMatchesBig(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		bq := new(big.Int).SetUint64(q)
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 500; i++ {
			x := rng.Uint64() % q
			y := rng.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			want.Mod(want, bq)
			if got := m.Mul(x, y); got != want.Uint64() {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, x, y, got, want.Uint64())
			}
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		cases := [][2]uint64{{0, 0}, {0, q - 1}, {q - 1, q - 1}, {1, q - 1}, {q / 2, 2}}
		for _, c := range cases {
			hi, lo := bits.Mul64(c[0], c[1])
			want := new(big.Int).SetUint64(hi)
			want.Lsh(want, 64).Add(want, new(big.Int).SetUint64(lo))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got := m.Mul(c[0], c[1]); got != want.Uint64() {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, c[0], c[1], got, want.Uint64())
			}
		}
	}
}

func TestReduce128MatchesBig(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			hi := rng.Uint64() % q // contract: hi < q
			lo := rng.Uint64()
			want := new(big.Int).SetUint64(hi)
			want.Lsh(want, 64).Add(want, new(big.Int).SetUint64(lo))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got := m.Reduce128(hi, lo); got != want.Uint64() {
				t.Fatalf("q=%d Reduce128(%d,%d)=%d want %d", q, hi, lo, got, want.Uint64())
			}
		}
	}
}

func TestMulShoup(t *testing.T) {
	for _, q := range testModuli {
		m := New(q)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			x := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := m.ShoupPrecomp(w)
			if got, want := m.MulShoup(x, w, ws), m.Mul(x, w); got != want {
				t.Fatalf("q=%d MulShoup(%d,%d)=%d want %d", q, x, w, got, want)
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	primes := []uint64{17, 65537, 68719403009, 1152921504606830593}
	for _, q := range primes {
		if !IsPrime(q) {
			t.Fatalf("test modulus %d is not prime", q)
		}
		m := New(q)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 100; i++ {
			x := 1 + rng.Uint64()%(q-1)
			inv := m.Inv(x)
			if m.Mul(x, inv) != 1 {
				t.Fatalf("q=%d Inv(%d)=%d not an inverse", q, x, inv)
			}
			// Fermat: x^(q-1) == 1.
			if m.Pow(x, q-1) != 1 {
				t.Fatalf("q=%d Pow(%d, q-1) != 1", q, x)
			}
		}
		if got := m.Pow(0, 0); got != 1 {
			t.Fatalf("Pow(0,0) = %d, want 1 (empty product)", got)
		}
	}
}

func TestIsPrimeSmall(t *testing.T) {
	known := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		25: false, 91: false, 97: true, 561: false /* Carmichael */, 65537: true,
		1<<61 - 1: true /* Mersenne prime M61 */, 1 << 40: false,
	}
	for n, want := range known {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

// Property: Mul distributes over Add, and Barrett agrees with the
// naive big.Int route for arbitrary inputs.
func TestQuickMulDistributes(t *testing.T) {
	q := uint64(1152921504606830593)
	m := New(q)
	f := func(a, b, c uint64) bool {
		a, b, c = a%q, b%q, c%q
		left := m.Mul(a, m.Add(b, c))
		right := m.Add(m.Mul(a, b), m.Mul(a, c))
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubAddRoundTrip(t *testing.T) {
	q := uint64(68719403009)
	m := New(q)
	f := func(a, b uint64) bool {
		a, b = a%q, b%q
		return m.Add(m.Sub(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	m := New(1152921504606830593)
	x, y := uint64(123456789123456), uint64(987654321987654)
	var s uint64
	for i := 0; i < b.N; i++ {
		s = m.Mul(s^x, y)
	}
	_ = s
}

func BenchmarkMulShoup(b *testing.B) {
	m := New(1152921504606830593)
	w := uint64(987654321987654)
	ws := m.ShoupPrecomp(w)
	var s uint64
	for i := 0; i < b.N; i++ {
		s = m.MulShoup(s|1, w, ws)
	}
	_ = s
}
