// Package mod implements 64-bit modular arithmetic for RNS-based
// homomorphic encryption: Barrett reduction, Shoup multiplication,
// modular exponentiation and inversion, and primality testing.
//
// All moduli are odd primes below 2^62 so that lazy (unreduced) sums of
// two residues never overflow a uint64. This matches the machine-word
// RNS moduli used by CKKS implementations (36–60 bits, paper §II).
package mod

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Keeping two
// bits of headroom lets Add work on unreduced operands.
const MaxModulusBits = 62

// Modulus bundles a prime q with the precomputed constants needed for
// fast reduction. The zero value is not usable; construct with New.
type Modulus struct {
	Q uint64 // the modulus itself

	// brHi:brLo = floor(2^128 / Q), the 128-bit Barrett constant.
	brHi, brLo uint64
}

// New prepares a Modulus for q. It panics if q < 2 or q >= 2^62,
// because such moduli are never valid in this library and indicate a
// programming error rather than a runtime condition.
func New(q uint64) Modulus {
	if q < 2 || q >= 1<<MaxModulusBits {
		panic(fmt.Sprintf("mod: modulus %d out of range [2, 2^62)", q))
	}
	// floor(2^128 / q) computed as a two-word division.
	hi, r := bits.Div64(1, 0, q) // 2^64 = hi*q + r
	lo, _ := bits.Div64(r, 0, q)
	return Modulus{Q: q, brHi: hi, brLo: lo}
}

// Add returns x + y mod q for x, y < q.
func (m Modulus) Add(x, y uint64) uint64 {
	s := x + y
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns x - y mod q for x, y < q.
func (m Modulus) Sub(x, y uint64) uint64 {
	d := x - y
	if d > x { // borrow
		d += m.Q
	}
	return d
}

// Neg returns -x mod q for x < q.
func (m Modulus) Neg(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return m.Q - x
}

// Reduce returns x mod q for any x.
func (m Modulus) Reduce(x uint64) uint64 {
	if x < m.Q {
		return x
	}
	return x % m.Q
}

// Reduce128 returns (hi·2^64 + lo) mod q using Barrett reduction.
// It requires hi < q (always true for products of reduced operands).
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	// qhat = floor(x·mu / 2^128) where mu = brHi·2^64 + brLo and
	// x = hi·2^64 + lo. Expanding the 256-bit product and keeping the
	// top 128 bits exactly (only the lowest word of lo·brLo is
	// dropped, costing at most 1 in the estimate):
	hlHi, hlLo := bits.Mul64(hi, m.brLo)
	lhHi, lhLo := bits.Mul64(lo, m.brHi)
	llHi, _ := bits.Mul64(lo, m.brLo)

	s, c1 := bits.Add64(hlLo, lhLo, 0)
	_, c2 := bits.Add64(s, llHi, 0)
	// hi < q and brHi = floor(2^64/q) imply hi·brHi < 2^64.
	qhat := hi*m.brHi + hlHi + lhHi + c1 + c2

	// qhat undershoots the true quotient by at most 2, so the
	// remainder fits in a word and needs at most two corrections.
	r := lo - qhat*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Mul returns x·y mod q via Barrett reduction, for x, y < q.
func (m Modulus) Mul(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return m.Reduce128(hi, lo)
}

// MulAdd returns x·y + z mod q for x, y, z < q.
func (m Modulus) MulAdd(x, y, z uint64) uint64 {
	return m.Add(m.Mul(x, y), z)
}

// ShoupPrecomp returns w' = floor(w·2^64 / q), the Shoup constant that
// accelerates repeated multiplication by the fixed operand w < q.
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	lo, _ := bits.Div64(w, 0, m.Q)
	return lo
}

// MulShoup returns x·w mod q where wShoup = ShoupPrecomp(w).
// The result is exact for x < q. This is the hot path inside NTT
// butterflies, where each twiddle factor is reused N/2 times.
func (m Modulus) MulShoup(x, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(x, wShoup)
	r := x*w - qhat*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// Pow returns x^e mod q by square-and-multiply.
func (m Modulus) Pow(x, e uint64) uint64 {
	x = m.Reduce(x)
	r := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, x)
		}
		x = m.Mul(x, x)
		e >>= 1
	}
	return r
}

// Inv returns x^-1 mod q. It panics if x and q are not coprime, which
// for prime q means x ≡ 0 — a programming error in this library.
func (m Modulus) Inv(x uint64) uint64 {
	x = m.Reduce(x)
	if x == 0 {
		panic("mod: inverse of zero")
	}
	// Extended binary GCD is unnecessary: all moduli are prime, so
	// Fermat's little theorem applies.
	inv := m.Pow(x, m.Q-2)
	if m.Mul(inv, x) != 1 {
		panic(fmt.Sprintf("mod: %d has no inverse modulo %d (modulus not prime?)", x, m.Q))
	}
	return inv
}

// deterministic Miller-Rabin witnesses covering all n < 3.3·10^24,
// far beyond the 62-bit range used here.
var mrWitnesses = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for n < 2^62.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	if n >= 1<<MaxModulusBits {
		panic(fmt.Sprintf("mod: IsPrime argument %d out of range", n))
	}
	m := New(n)
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range mrWitnesses {
		x := m.Pow(a, d)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = m.Mul(x, x)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}
