package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// compressedSource is the testBench backing store handing back
// seed-compressed material: the same keys as keySource, in the form a
// SeedKeySource with compression on would serve them.
func (b *testBench) compressedSource(t *testing.T) KeySource {
	t.Helper()
	return KeyMaterialFunc(func(id KeyID) (hks.KeyMaterial, error) {
		b.loads.Add(1)
		if id.Level != benchLevel {
			return nil, fmt.Errorf("no keys at level %d", id.Level)
		}
		evk, ok := b.evks[id.Tenant][id.Rot]
		if !ok {
			return nil, fmt.Errorf("no key for tenant %q rotation %d", id.Tenant, id.Rot)
		}
		c, ok := evk.Compress()
		if !ok {
			return nil, fmt.Errorf("key for rotation %d did not compress", id.Rot)
		}
		return c, nil
	})
}

// TestCompressedServingBitExact serves a coalesced group and a
// singleton from a compressed key source and checks every result
// against the dense direct switch: the streamed expand-and-apply path
// must change residency and scheduling, never values. It also pins the
// expansion accounting — one expansion per served request (hits expand
// too; that is the compression trade) — and the cache's two-footprint
// books (DenseBytes > Bytes when compressed material is resident).
func TestCompressedServingBitExact(t *testing.T) {
	const K = 4
	b := newTestBench(t, K)
	e := engine.New(4)
	defer e.Close()
	svc, err := New(b.pool, b.compressedSource(t), b.config(Config{
		Engine: e, MaxBatch: K, Window: 20 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Coalesced group: K rotations of one input.
	in := b.input()
	chans := make([]<-chan Result, K)
	for rot := 0; rot < K; rot++ {
		ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: rot})
		if err != nil {
			t.Fatal(err)
		}
		chans[rot] = ch
	}
	for rot := 0; rot < K; rot++ {
		want0, want1 := b.wantSwitch("", in, rot)
		checkResult(t, <-chans[rot], want0, want1, fmt.Sprintf("coalesced rotation %d", rot))
	}
	// Singleton on a fresh input: the non-hoisted streamed path.
	lone := b.input()
	want0, want1 := b.wantSwitch("", lone, 1)
	checkResult(t, svc.Do(context.Background(), Request{Input: lone, Rot: 1}), want0, want1, "singleton")

	st := svc.Stats()
	if st.Served != K+1 {
		t.Fatalf("served %d, want %d", st.Served, K+1)
	}
	if st.KeyExpansions != K+1 {
		t.Fatalf("%d key expansions for %d served requests, want one each", st.KeyExpansions, K+1)
	}
	if ts := tenantStats(t, st, ""); ts.KeyExpansions != K+1 {
		t.Fatalf("tenant expansions %d, want %d", ts.KeyExpansions, K+1)
	}
	if st.Keys.DenseBytes <= st.Keys.Bytes {
		t.Fatalf("dense footprint %d not above compressed resident %d", st.Keys.DenseBytes, st.Keys.Bytes)
	}
	wantComp := int64(K) * int64(b.sw.Dnum*(len(b.sw.DBasis())*b.r.N*8+32))
	if st.Keys.Bytes != wantComp {
		t.Fatalf("compressed resident %d bytes, want %d", st.Keys.Bytes, wantComp)
	}
}

// TestCompressedHalvedBudget runs the identical request sequence
// through a dense service with budget B and a compressed service with
// budget B/2: the halved budget must hold the same working set — same
// hits, misses, evictions — and serve bit-identical results. This is
// the tentpole claim at unit scale; the perf gate checks it on the
// full `ciflow serve` benchmark.
func TestCompressedHalvedBudget(t *testing.T) {
	const K = 4
	b := newTestBench(t, K)
	e := engine.New(4)
	defer e.Close()

	denseKey := int64(b.evks[""][0].SizeBytes())
	budget := K*denseKey + 4096 // all K dense keys fit, with slack

	run := func(keys KeySource, budget int64) (Stats, []Result) {
		svc, err := New(b.pool, keys, b.config(Config{
			Engine: e, KeyBudget: budget, MaxBatch: K, Window: 20 * time.Millisecond,
		}))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		var out []Result
		// Two passes over every rotation: pass one misses, pass two hits.
		for pass := 0; pass < 2; pass++ {
			in := b.input()
			chans := make([]<-chan Result, K)
			for rot := 0; rot < K; rot++ {
				ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: rot})
				if err != nil {
					t.Fatal(err)
				}
				chans[rot] = ch
			}
			for rot := 0; rot < K; rot++ {
				res := <-chans[rot]
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				want0, want1 := b.wantSwitch("", in, rot)
				checkResult(t, res, want0, want1, fmt.Sprintf("pass %d rotation %d", pass, rot))
				out = append(out, res)
			}
		}
		return svc.Stats(), out
	}

	dense, _ := run(b.keySource(), budget)
	comp, _ := run(b.compressedSource(t), budget/2)

	dk, ck := dense.Keys, comp.Keys
	if ck.Hits != dk.Hits || ck.Misses != dk.Misses || ck.Evictions != dk.Evictions {
		t.Fatalf("halved-budget compressed cache (h/m/e %d/%d/%d) differs from full-budget dense (%d/%d/%d)",
			ck.Hits, ck.Misses, ck.Evictions, dk.Hits, dk.Misses, dk.Evictions)
	}
	if dk.Evictions != 0 {
		t.Fatalf("dense run evicted %d keys; budget was sized to fit", dk.Evictions)
	}
	if ck.Bytes > budget/2 {
		t.Fatalf("compressed resident %d exceeds halved budget %d", ck.Bytes, budget/2)
	}
	if dense.KeyExpansions != 0 {
		t.Fatalf("dense run counted %d expansions", dense.KeyExpansions)
	}
	if comp.KeyExpansions == 0 {
		t.Fatal("compressed run counted no expansions")
	}
}

// TestSeedKeySourceUnified pins the satellite contract: the
// single-process service and the cluster shards construct keys through
// one code path. A SeedKeySource's material — compressed or dense —
// must be bit-identical to an independently built chain seeded with
// TenantSeed (what a shard does), and serving through it must match
// that chain's direct switch.
func TestSeedKeySourceUnified(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	tenants := []string{"alpha", "beta"}
	src, err := NewSeedKeySource(ctx, tenants, true)
	if err != nil {
		t.Fatal(err)
	}
	srcDense, err := NewSeedKeySource(ctx, tenants, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSeedKeySource(nil, tenants, false); err == nil {
		t.Fatal("nil context accepted")
	}
	if _, err := NewSeedKeySource(ctx, []string{"a", "a"}, false); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	if !src.HasTenant("alpha") || src.HasTenant("gamma") {
		t.Fatal("HasTenant does not match the fixed tenant set")
	}
	if _, err := src.Key(KeyID{Tenant: "gamma"}); err == nil {
		t.Fatal("unknown tenant served a key")
	}

	level := ctx.MaxLevel
	sw, err := ctx.Switchers().Switcher(level)
	if err != nil {
		t.Fatal(err)
	}
	const rot = 3
	for _, tenant := range tenants {
		// The shard-side reference: an independent chain from the seed.
		refChain, _ := ckks.GenKeys(ctx, TenantSeed(tenant))
		ref, err := refChain.HoistKey(rot, level)
		if err != nil {
			t.Fatal(err)
		}
		id := KeyID{Tenant: tenant, Rot: rot, Level: level}
		mat, err := src.Key(id)
		if err != nil {
			t.Fatal(err)
		}
		c, ok := mat.(*hks.CompressedEvk)
		if !ok {
			t.Fatalf("compressing source returned %T", mat)
		}
		got := c.Expand(ctx.R)
		matDense, err := srcDense.Key(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := matDense.(*hks.Evk); !ok {
			t.Fatalf("dense source returned %T", matDense)
		}
		for _, evk := range []*hks.Evk{got, matDense.Dense(ctx.R)} {
			for j := range ref.B {
				if !evk.B[j].Equal(ref.B[j]) || !evk.A[j].Equal(ref.A[j]) {
					t.Fatalf("tenant %q digit %d differs from the seed-chain reference", tenant, j)
				}
			}
		}
	}

	// Serving through the compressing source is bit-exact with the
	// chain's direct switch.
	e := engine.New(2)
	defer e.Close()
	svc, err := New(ctx.Switchers(), src, Config{
		Engine: e, MaxBatch: 2, Window: 20 * time.Millisecond, DefaultLevel: level,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	s := ring.NewSampler(ctx.R, 9)
	in := s.Uniform(sw.QBasis())
	in.IsNTT = true
	kc, err := src.Chain("alpha")
	if err != nil {
		t.Fatal(err)
	}
	evk, err := kc.HoistKey(rot, level)
	if err != nil {
		t.Fatal(err)
	}
	want0, want1 := sw.KeySwitch(in, evk)
	res := svc.Do(context.Background(), Request{Input: in, Rot: rot, Tenant: "alpha"})
	checkResult(t, res, want0, want1, "seed-source serve")
	if st := svc.Stats(); st.KeyExpansions == 0 {
		t.Fatal("compressed serve counted no expansions")
	}
}
