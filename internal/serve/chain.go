package serve

import (
	"fmt"

	"ciflow/internal/ckks"
	"ciflow/internal/hks"
)

// KeyChains is the multi-tenant ckks adapter: it maps tenant names to
// their key chains and implements KeySource by resolving
// KeyID{Tenant, Rot, Level} to the hoisting-form rotation key
// kc.HoistKey(Rot, Level) — s → σ_g⁻¹(s), the form under which every
// rotation of one ciphertext can replay the same hoisted ModUp (see
// ckks.KeyChain.HoistKey). Each chain owns a distinct secret, so the
// tenants are genuinely separate keyspaces; the chains must share one
// ckks.Context (one ring), because the service routes every tenant
// through one per-level switcher pool.
//
// KeyChain memoizes generated keys, so re-loading an evicted KeyID
// returns the identical key material: served results stay bit-exact
// across evictions.
type KeyChains map[string]*ckks.KeyChain

// Key implements KeySource. Unknown tenants fail the one request.
func (m KeyChains) Key(id KeyID) (*hks.Evk, error) {
	kc, ok := m[id.Tenant]
	if !ok {
		return nil, fmt.Errorf("serve: no key chain for tenant %q", id.Tenant)
	}
	return kc.HoistKey(id.Rot, id.Level)
}

// HasTenant implements TenantChecker, so Submit rejects requests for
// tenants with no key chain before allocating them a dispatcher.
func (m KeyChains) HasTenant(tenant string) bool {
	_, ok := m[tenant]
	return ok
}

// NewFromKeyChain is the one-tenant convenience constructor: a thin
// shim over New that serves the single keyspace of kc (tenant "") with
// DefaultLevel set to level, so requests that leave Tenant and Level
// at their zero values behave exactly like the pre-keyspace API. The
// chain doubles as the SwitcherSource, so requests may still address
// other levels explicitly. The request Input is the ciphertext's
// un-rotated c1, and the caller finishes the rotation by applying the
// Galois automorphism to the switched pair (as
// ckks.Evaluator.RotateHoisted does).
func NewFromKeyChain(kc *ckks.KeyChain, level int, cfg Config) (*Service, error) {
	if kc == nil {
		return nil, fmt.Errorf("serve: nil key chain")
	}
	if _, err := kc.Switcher(level); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cfg.DefaultLevel = level
	return New(kc, KeyChains{"": kc}, cfg)
}
