package serve

import (
	"fmt"
	"hash/fnv"
	"sync"

	"ciflow/internal/ckks"
	"ciflow/internal/hks"
)

// KeyChains is the multi-tenant ckks adapter: it maps tenant names to
// their key chains and implements KeySource by resolving
// KeyID{Tenant, Rot, Level} to the hoisting-form rotation key
// kc.HoistKey(Rot, Level) — s → σ_g⁻¹(s), the form under which every
// rotation of one ciphertext can replay the same hoisted ModUp (see
// ckks.KeyChain.HoistKey). Each chain owns a distinct secret, so the
// tenants are genuinely separate keyspaces; the chains must share one
// ckks.Context (one ring), because the service routes every tenant
// through one per-level switcher pool.
//
// KeyChain memoizes generated keys, so re-loading an evicted KeyID
// returns the identical key material: served results stay bit-exact
// across evictions.
type KeyChains map[string]*ckks.KeyChain

// Key implements KeySource. Unknown tenants fail the one request. The
// material is handed back dense; use SeedKeySource for compressed
// residency.
func (m KeyChains) Key(id KeyID) (hks.KeyMaterial, error) {
	kc, ok := m[id.Tenant]
	if !ok {
		return nil, fmt.Errorf("serve: no key chain for tenant %q", id.Tenant)
	}
	evk, err := kc.HoistKey(id.Rot, id.Level)
	if err != nil {
		return nil, err
	}
	return evk, nil
}

// HasTenant implements TenantChecker, so Submit rejects requests for
// tenants with no key chain before allocating them a dispatcher.
func (m KeyChains) HasTenant(tenant string) bool {
	_, ok := m[tenant]
	return ok
}

// TenantSeed maps a tenant name to the deterministic key-generation
// seed every process serving that tenant uses for its keyspace.
// ckks.GenKeys is deterministic in (context, seed), so any process —
// a single-process service, a cluster shard, or a serial verifier —
// derives bit-identical key material from the tenant name alone,
// without secret material ever crossing process boundaries. Seeds are
// positive and never zero, so they stay distinguishable from "unset".
func TenantSeed(tenant string) int64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	s := int64(h.Sum64() &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// SeedKeySource is the seed-derived KeySource: it serves a fixed set
// of tenants, building each tenant's ckks.KeyChain lazily from
// TenantSeed(tenant), and hands the cache either dense or
// seed-compressed material depending on how it was constructed. It is
// the one code path through which both the single-process service
// (`ciflow serve`) and the cluster shards construct key material, so
// the two deployments agree on every bit by construction.
//
// Safe for concurrent use; chains are memoized, so re-loading an
// evicted key returns identical material.
type SeedKeySource struct {
	ctx      *ckks.Context
	compress bool

	mu     sync.Mutex
	chains map[string]*ckks.KeyChain
}

// NewSeedKeySource builds a source serving exactly the given tenants
// from their TenantSeed-derived chains. With compress set, Key hands
// the cache seed-compressed material (hks.CompressedEvk), halving the
// resident footprint per key; the service expands at replay time.
func NewSeedKeySource(ctx *ckks.Context, tenants []string, compress bool) (*SeedKeySource, error) {
	if ctx == nil {
		return nil, fmt.Errorf("serve: nil ckks context")
	}
	src := &SeedKeySource{
		ctx:      ctx,
		compress: compress,
		chains:   make(map[string]*ckks.KeyChain, len(tenants)),
	}
	for _, t := range tenants {
		if _, dup := src.chains[t]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", t)
		}
		src.chains[t] = nil // allowed, chain not yet built
	}
	return src, nil
}

// Chain returns (building if needed) the tenant's key chain, for
// callers that need the dense keys or the secret — the serial
// bit-exactness verifiers. Unknown tenants return an error.
func (src *SeedKeySource) Chain(tenant string) (*ckks.KeyChain, error) {
	src.mu.Lock()
	defer src.mu.Unlock()
	kc, ok := src.chains[tenant]
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q", tenant)
	}
	if kc == nil {
		kc, _ = ckks.GenKeys(src.ctx, TenantSeed(tenant))
		src.chains[tenant] = kc
	}
	return kc, nil
}

// Key implements KeySource: the tenant's hoisting-form rotation key,
// compressed when the source was built with compression on. A key
// that refuses to compress (no seeds) is handed back dense rather
// than failing the request.
func (src *SeedKeySource) Key(id KeyID) (hks.KeyMaterial, error) {
	kc, err := src.Chain(id.Tenant)
	if err != nil {
		return nil, err
	}
	evk, err := kc.HoistKey(id.Rot, id.Level)
	if err != nil {
		return nil, err
	}
	if src.compress {
		if c, ok := evk.Compress(); ok {
			return c, nil
		}
	}
	return evk, nil
}

// HasTenant implements TenantChecker against the fixed tenant set.
func (src *SeedKeySource) HasTenant(tenant string) bool {
	src.mu.Lock()
	defer src.mu.Unlock()
	_, ok := src.chains[tenant]
	return ok
}

// NewFromKeyChain is the one-tenant convenience constructor: a thin
// shim over New that serves the single keyspace of kc (tenant "") with
// DefaultLevel set to level, so requests that leave Tenant and Level
// at their zero values behave exactly like the pre-keyspace API. The
// chain doubles as the SwitcherSource, so requests may still address
// other levels explicitly. The request Input is the ciphertext's
// un-rotated c1, and the caller finishes the rotation by applying the
// Galois automorphism to the switched pair (as
// ckks.Evaluator.RotateHoisted does).
func NewFromKeyChain(kc *ckks.KeyChain, level int, cfg Config) (*Service, error) {
	if kc == nil {
		return nil, fmt.Errorf("serve: nil key chain")
	}
	if _, err := kc.Switcher(level); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	cfg.DefaultLevel = level
	return New(kc, KeyChains{"": kc}, cfg)
}
