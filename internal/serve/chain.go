package serve

import (
	"fmt"

	"ciflow/internal/ckks"
	"ciflow/internal/hks"
)

// NewFromKeyChain starts a service at the given ciphertext level whose
// rotation-key cache is backed by kc: a cache miss on rotation amount
// r loads the hoisting-form key kc.HoistKey(r, level) — s → σ_g⁻¹(s),
// the form under which every rotation of one ciphertext can replay the
// same hoisted ModUp (see ckks.KeyChain.HoistKey). The request Input
// is then the ciphertext's un-rotated c1, and the caller finishes the
// rotation by applying the Galois automorphism to the switched pair
// (as ckks.Evaluator.RotateHoisted does).
//
// KeyChain memoizes generated keys, so re-loading an evicted rotation
// returns the identical key material: served results stay bit-exact
// across evictions.
func NewFromKeyChain(kc *ckks.KeyChain, level int, cfg Config) (*Service, error) {
	sw, err := kc.Switcher(level)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return New(sw, func(rot int) (*hks.Evk, error) { return kc.HoistKey(rot, level) }, cfg)
}
