package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ciflow/internal/obs"
)

// serviceCounters are the hot-path counters (atomics: the group
// executor updates them from engine workers). One instance counts the
// whole service, one more counts each tenant's worker.
type serviceCounters struct {
	submitted atomic.Uint64
	served    atomic.Uint64
	failed    atomic.Uint64
	batches   atomic.Uint64
	groups    atomic.Uint64
	modUps    atomic.Uint64
	coalesced atomic.Uint64
	expanded  atomic.Uint64 // compressed keys expanded at replay time
}

// Request-lifecycle phases. Every served request passes through them
// in order; each phase's wall time is accumulated into always-on
// atomic counters (one set per tenant worker, one for the service),
// so the lifecycle breakdown costs a few time.Now() calls per request
// and needs no sampling or opt-in.
const (
	phaseEnqueue  = iota // Submit accepted → popped from the tenant queue
	phaseDispatch        // queue pop → the request's group starts executing
	phaseKeys            // key-cache fetch (and CheckMaterial) for the group
	phaseHoist           // shared Decompose+ModUp (HoistParallel)
	phaseReplay          // per-key replay (Switch*Into), expansion included
	phaseReply           // result bookkeeping and delivery to the waiter
	numPhases
)

var phaseNames = [numPhases]string{
	"enqueue", "dispatch", "keys", "hoist", "replay", "reply",
}

// phaseCounters accumulate request-lifecycle phase durations.
type phaseCounters struct {
	c [numPhases]struct{ count, ns atomic.Uint64 }
}

func (pc *phaseCounters) add(phase int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	pc.c[phase].count.Add(1)
	pc.c[phase].ns.Add(uint64(d))
}

func (pc *phaseCounters) snapshot() []PhaseStats {
	var out []PhaseStats
	for i := 0; i < numPhases; i++ {
		n := pc.c[i].count.Load()
		if n == 0 {
			continue
		}
		out = append(out, PhaseStats{
			Phase:   phaseNames[i],
			Count:   n,
			TotalNs: pc.c[i].ns.Load(),
		})
	}
	return out
}

// PhaseStats is one request-lifecycle phase's accumulated wall time.
// Counts differ between phases by design: enqueue/dispatch/reply are
// per request, while keys/hoist/replay are per key-cache fetch, per
// hoisted group, and per replayed output respectively — dividing
// TotalNs by Count therefore yields the natural per-unit mean for
// each phase. Totals are exactly mergeable by summation (the cluster
// router relies on this, see MergePhases).
type PhaseStats struct {
	Phase   string `json:"phase"`
	Count   uint64 `json:"count"`
	TotalNs uint64 `json:"total_ns"`
}

// MergePhases sums two phase breakdowns entry-wise by phase name,
// preserving canonical phase order. Summation is exact (counts and
// nanoseconds are integers), so merging per-shard breakdowns
// reproduces the fabric-wide breakdown a single service would have
// recorded.
func MergePhases(a, b []PhaseStats) []PhaseStats {
	if len(a) == 0 {
		return append([]PhaseStats(nil), b...)
	}
	if len(b) == 0 {
		return append([]PhaseStats(nil), a...)
	}
	byName := make(map[string]PhaseStats, len(a)+len(b))
	for _, ps := range a {
		byName[ps.Phase] = ps
	}
	for _, ps := range b {
		e := byName[ps.Phase]
		e.Phase = ps.Phase
		e.Count += ps.Count
		e.TotalNs += ps.TotalNs
		byName[ps.Phase] = e
	}
	out := make([]PhaseStats, 0, len(byName))
	for _, name := range phaseNames {
		if e, ok := byName[name]; ok {
			out = append(out, e)
			delete(byName, name)
		}
	}
	// Unknown names (a newer peer's phases) go last, sorted.
	if len(byName) > 0 {
		rest := make([]PhaseStats, 0, len(byName))
		for _, e := range byName {
			rest = append(rest, e)
		}
		sort.Slice(rest, func(i, j int) bool { return rest[i].Phase < rest[j].Phase })
		out = append(out, rest...)
	}
	return out
}

// LevelStats is one ciphertext level's slice of the switch counters:
// requests served, hoisted Decompose+ModUp executions, and requests
// served out of shared hoisted state (coalesced) at that level. The
// per-level breakdown is what lets internal/workload cross-validate
// its per-level schedule predictions *server-side* — the serving
// layer's own books must show the schedule's level mix (hoist-group
// placement included), not just the right totals.
type LevelStats struct {
	Level     int    `json:"level"`
	Switches  uint64 `json:"switches"`
	ModUps    uint64 `json:"mod_ups"`
	Coalesced uint64 `json:"coalesced,omitempty"`
}

// levelCounters aggregates the per-level counters. Unlike the hot
// per-request atomics it is mutex-guarded: it is touched once per
// *group* (runGroup), where a map update is noise next to the hoist
// graph it accounts for.
type levelCounters struct {
	mu sync.Mutex
	m  map[int]*LevelStats
}

func (lc *levelCounters) add(level int, switches, modUps, coalesced uint64) {
	lc.mu.Lock()
	if lc.m == nil {
		lc.m = make(map[int]*LevelStats)
	}
	e := lc.m[level]
	if e == nil {
		e = &LevelStats{Level: level}
		lc.m[level] = e
	}
	e.Switches += switches
	e.ModUps += modUps
	e.Coalesced += coalesced
	lc.mu.Unlock()
}

// snapshot returns the levels sorted descending from the top level,
// matching workload.Counts.PerLevel order.
func (lc *levelCounters) snapshot() []LevelStats {
	lc.mu.Lock()
	out := make([]LevelStats, 0, len(lc.m))
	for _, e := range lc.m {
		out = append(out, *e)
	}
	lc.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Level > out[b].Level })
	return out
}

// TenantStats is one tenant's slice of the service: its request
// counters, latency percentiles, and key-cache shard. Because batches
// and coalesced groups never span tenants, the per-tenant ModUps sum
// to the service total — an invariant the perf gate checks as "zero
// cross-tenant coalesces".
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Submitted uint64 `json:"submitted"`
	Served    uint64 `json:"served"`
	Failed    uint64 `json:"failed"`
	Batches   uint64 `json:"batches"`
	Groups    uint64 `json:"groups"`
	ModUps    uint64 `json:"mod_ups"`
	Coalesced uint64 `json:"coalesced"`

	// KeyExpansions counts this tenant's streamed seed expansions of
	// compressed key material at replay time (0 for a dense source).
	KeyExpansions uint64 `json:"key_expansions"`

	// CoalescingFactor is this tenant's served requests per ModUp.
	CoalescingFactor float64 `json:"coalescing_factor"`

	// P50/P99 are submit-to-completion latencies over (up to) the last
	// 16384 requests this tenant had served — the numbers the tenant-
	// isolation test pins: a hot neighbour must not move them.
	P50 time.Duration `json:"p50"`
	P99 time.Duration `json:"p99"`

	// PerLevel is this tenant's switch/ModUp breakdown by ciphertext
	// level, descending from the top level.
	PerLevel []LevelStats `json:"per_level,omitempty"`

	// Phases is this tenant's request-lifecycle breakdown
	// (enqueue→dispatch→keys→hoist→replay→reply).
	Phases []PhaseStats `json:"phases,omitempty"`

	Keys TenantCacheStats `json:"keys"`
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	Submitted uint64 `json:"submitted"` // requests accepted by Submit
	Served    uint64 `json:"served"`    // requests completed with outputs
	Failed    uint64 `json:"failed"`    // requests completed with an error
	Batches   uint64 `json:"batches"`   // gather windows executed (all tenants)
	Groups    uint64 `json:"groups"`    // (tenant, level, input, dataflow) groups formed
	ModUps    uint64 `json:"mod_ups"`   // Decompose+ModUp executions
	Coalesced uint64 `json:"coalesced"` // requests served from a shared hoisted state

	// KeyExpansions counts streamed seed expansions of compressed key
	// material at replay time: every use of a compressed cache entry
	// expands it once, overlapped with the hoist phase. 0 means the
	// key source hands the cache dense keys.
	KeyExpansions uint64 `json:"key_expansions"`

	// CoalescingFactor is served requests per ModUp execution: 1.0
	// means no sharing, k means every request amortized its ModUp
	// across k requests — the cross-request counterpart of the paper's
	// hoisting model (hks.HoistedOpsSaved).
	CoalescingFactor float64 `json:"coalescing_factor"`

	Keys CacheStats `json:"keys"`

	// P50/P99 are submit-to-completion latencies over (up to) the last
	// 16384 served requests, across all tenants.
	P50 time.Duration `json:"p50"`
	P99 time.Duration `json:"p99"`

	// PerLevel is the switch/ModUp breakdown by ciphertext level,
	// descending from the top level. Per level, Switches sum the served
	// requests and ModUps the hoisted Decompose+ModUp executions, so
	// summing the slice reproduces the Served and ModUps totals.
	PerLevel []LevelStats `json:"per_level,omitempty"`

	// Phases is the request-lifecycle breakdown across all tenants:
	// accumulated wall time per phase from Submit to result delivery.
	Phases []PhaseStats `json:"phases,omitempty"`

	// Profile is the process-wide stage/kernel histogram snapshot,
	// present only while profiling is enabled (obs.Enable). It rides
	// the stats frame so the cluster router can merge per-shard
	// profiles exactly (bucket counts sum) into a fabric-wide one.
	Profile *obs.Snapshot `json:"profile,omitempty"`

	// Tenants is the per-tenant breakdown, sorted by tenant name.
	Tenants []TenantStats `json:"tenants"`
}

// Snapshot returns a deep copy of st: the slices (per-tenant,
// per-level, cache breakdowns) share no storage with the original, so
// the copy is safe to hold, mutate, or serialize while the service
// keeps running and later Stats() calls produce new snapshots.
// Service.Stats() already builds fresh slices on every call; Snapshot
// is for callers that aggregate or forward Stats values (the cluster
// wire protocol ships them as JSON frames) and must not alias them.
func (st Stats) Snapshot() Stats {
	st.Keys = st.Keys.Snapshot()
	st.PerLevel = append([]LevelStats(nil), st.PerLevel...)
	st.Phases = append([]PhaseStats(nil), st.Phases...)
	// Merge of a single snapshot rebuilds every slice, so the copy
	// shares no storage with the original.
	st.Profile = obs.Merge(st.Profile)
	if st.Tenants != nil {
		tenants := make([]TenantStats, len(st.Tenants))
		for i, ts := range st.Tenants {
			ts.PerLevel = append([]LevelStats(nil), ts.PerLevel...)
			ts.Phases = append([]PhaseStats(nil), ts.Phases...)
			tenants[i] = ts
		}
		st.Tenants = tenants
	}
	return st
}

// Snapshot returns a deep copy of cs whose Tenants slice shares no
// storage with the original.
func (cs CacheStats) Snapshot() CacheStats {
	cs.Tenants = append([]TenantCacheStats(nil), cs.Tenants...)
	return cs
}

// Stats snapshots the service counters, cache counters, latency
// percentiles, and the per-tenant breakdown.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted:     s.stats.submitted.Load(),
		Served:        s.stats.served.Load(),
		Failed:        s.stats.failed.Load(),
		Batches:       s.stats.batches.Load(),
		Groups:        s.stats.groups.Load(),
		ModUps:        s.stats.modUps.Load(),
		Coalesced:     s.stats.coalesced.Load(),
		KeyExpansions: s.stats.expanded.Load(),
		Keys:          s.keys.Stats(),
	}
	if st.ModUps > 0 {
		st.CoalescingFactor = float64(st.Served) / float64(st.ModUps)
	}
	st.P50, st.P99 = s.lats.percentiles()
	st.PerLevel = s.levels.snapshot()
	st.Phases = s.phases.snapshot()
	st.Profile = obs.Active().Snapshot()

	keyShards := make(map[string]TenantCacheStats, len(st.Keys.Tenants))
	for _, ts := range st.Keys.Tenants {
		keyShards[ts.Tenant] = ts
	}
	s.mu.RLock()
	st.Tenants = s.tenantStatsLocked(keyShards)
	s.mu.RUnlock()
	return st
}

// latCap bounds the latency reservoir; beyond it the recorder keeps a
// sliding window of the most recent samples.
const latCap = 1 << 14

// latencyRecorder is a fixed-size ring of recent request latencies.
type latencyRecorder struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // total recorded
}

func (l *latencyRecorder) record(d time.Duration) {
	l.mu.Lock()
	if len(l.buf) < latCap {
		l.buf = append(l.buf, d)
	} else {
		l.buf[l.n%latCap] = d
	}
	l.n++
	l.mu.Unlock()
}

func (l *latencyRecorder) percentiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	sorted := append([]time.Duration(nil), l.buf...)
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	at := func(p int) time.Duration {
		idx := len(sorted) * p / 100
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return at(50), at(99)
}
