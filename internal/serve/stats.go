package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// serviceCounters are the service's hot-path counters (atomics: the
// group executor updates them from engine workers).
type serviceCounters struct {
	submitted atomic.Uint64
	served    atomic.Uint64
	failed    atomic.Uint64
	batches   atomic.Uint64
	groups    atomic.Uint64
	modUps    atomic.Uint64
	coalesced atomic.Uint64
}

// Stats is a point-in-time snapshot of the service.
type Stats struct {
	Submitted uint64 `json:"submitted"` // requests accepted by Submit
	Served    uint64 `json:"served"`    // requests completed with outputs
	Failed    uint64 `json:"failed"`    // requests completed with an error
	Batches   uint64 `json:"batches"`   // gather windows executed
	Groups    uint64 `json:"groups"`    // (input, dataflow) groups formed
	ModUps    uint64 `json:"mod_ups"`   // Decompose+ModUp executions
	Coalesced uint64 `json:"coalesced"` // requests served from a shared hoisted state

	// CoalescingFactor is served requests per ModUp execution: 1.0
	// means no sharing, k means every request amortized its ModUp
	// across k requests — the cross-request counterpart of the paper's
	// hoisting model (hks.HoistedOpsSaved).
	CoalescingFactor float64 `json:"coalescing_factor"`

	Keys CacheStats `json:"keys"`

	// P50/P99 are submit-to-completion latencies over (up to) the last
	// 16384 served requests.
	P50 time.Duration `json:"p50"`
	P99 time.Duration `json:"p99"`
}

// Stats snapshots the service counters, cache counters, and latency
// percentiles.
func (s *Service) Stats() Stats {
	st := Stats{
		Submitted: s.stats.submitted.Load(),
		Served:    s.stats.served.Load(),
		Failed:    s.stats.failed.Load(),
		Batches:   s.stats.batches.Load(),
		Groups:    s.stats.groups.Load(),
		ModUps:    s.stats.modUps.Load(),
		Coalesced: s.stats.coalesced.Load(),
		Keys:      s.keys.Stats(),
	}
	if st.ModUps > 0 {
		st.CoalescingFactor = float64(st.Served) / float64(st.ModUps)
	}
	st.P50, st.P99 = s.lats.percentiles()
	return st
}

// latCap bounds the latency reservoir; beyond it the recorder keeps a
// sliding window of the most recent samples.
const latCap = 1 << 14

// latencyRecorder is a fixed-size ring of recent request latencies.
type latencyRecorder struct {
	mu  sync.Mutex
	buf []time.Duration
	n   int // total recorded
}

func (l *latencyRecorder) record(d time.Duration) {
	l.mu.Lock()
	if len(l.buf) < latCap {
		l.buf = append(l.buf, d)
	} else {
		l.buf[l.n%latCap] = d
	}
	l.n++
	l.mu.Unlock()
}

func (l *latencyRecorder) percentiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	sorted := append([]time.Duration(nil), l.buf...)
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	at := func(p int) time.Duration {
		idx := len(sorted) * p / 100
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return at(50), at(99)
}
