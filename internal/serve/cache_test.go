package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// fakeEvk hand-crafts an evaluation key whose SizeBytes is exactly
// 2×words×8 — the cache never looks inside an Evk, only at identity
// and size.
func fakeEvk(words int) *hks.Evk {
	p := func() *ring.Poly { return &ring.Poly{Coeffs: [][]uint64{make([]uint64, words)}} }
	return &hks.Evk{B: []*ring.Poly{p()}, A: []*ring.Poly{p()}}
}

// fakeSource returns a memoized backing store of fakeEvks (distinct
// per KeyID, identical across reloads, sized keyBytes each).
func fakeSource(calls *atomic.Uint64, words int) KeySource {
	keys := sync.Map{}
	return KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		calls.Add(1)
		if id.Rot < 0 {
			return nil, fmt.Errorf("no key for %v", id)
		}
		evk, _ := keys.LoadOrStore(id, fakeEvk(words))
		return evk.(*hks.Evk), nil
	})
}

// keyBytes is the size of every fakeSource key: 2 polys × 64 words × 8.
const keyBytes = 2 * 64 * 8

func rotID(rot int) KeyID { return KeyID{Rot: rot, Level: 3} }

func TestCacheHitsAndMisses(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeSource(&calls, 64), 4*keyBytes, 1)

	a1, err := c.Get(rotID(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(rotID(1))
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("repeated Get returned different keys")
	}
	if calls.Load() != 1 {
		t.Fatalf("loader called %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Size != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %.2f, want 0.50", st.HitRate)
	}
	if st.Bytes != keyBytes || st.BudgetBytes != 4*keyBytes {
		t.Fatalf("bytes %d / budget %d, want %d / %d", st.Bytes, st.BudgetBytes, keyBytes, 4*keyBytes)
	}
	// Distinct levels are distinct keys, even for one rotation.
	if _, err := c.Get(KeyID{Rot: 1, Level: 2}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("level ignored in cache key: %d loads", calls.Load())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeSource(&calls, 64), 2*keyBytes, 1)

	mustGet := func(rot int) hks.KeyMaterial {
		t.Helper()
		evk, err := c.Get(rotID(rot))
		if err != nil {
			t.Fatal(err)
		}
		return evk
	}
	k1 := mustGet(1)
	mustGet(2)
	mustGet(1) // touch 1: now 2 is the LRU entry
	mustGet(3) // over budget: evicts 2, not 1

	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Bytes != 2*keyBytes {
		t.Fatalf("resident %d bytes, want %d", st.Bytes, 2*keyBytes)
	}
	if got := mustGet(1); got != k1 { // still resident
		t.Fatal("recently used key was evicted")
	}
	if calls.Load() != 3 {
		t.Fatalf("loader called %d times, want 3 (key 1 stayed hot)", calls.Load())
	}
	mustGet(2) // reload after eviction
	if calls.Load() != 4 {
		t.Fatalf("loader called %d times, want 4 (key 2 reloaded)", calls.Load())
	}
}

// TestCacheTenantFloor drives one hot tenant through many keys against
// a light tenant holding a single old key: weighted eviction must
// churn the hot tenant's shard and leave the light tenant at its floor
// — while the global byte budget holds at every step.
func TestCacheTenantFloor(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeSource(&calls, 64), 2*keyBytes+keyBytes/2, 1)

	light, err := c.Get(KeyID{Tenant: "light", Rot: 0, Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	for rot := 0; rot < 6; rot++ {
		if _, err := c.Get(KeyID{Tenant: "hot", Rot: rot, Level: 3}); err != nil {
			t.Fatal(err)
		}
		if st := c.Stats(); st.Bytes > st.BudgetBytes {
			t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, st.BudgetBytes)
		}
	}

	st := c.Stats()
	byTenant := map[string]TenantCacheStats{}
	for _, ts := range st.Tenants {
		byTenant[ts.Tenant] = ts
	}
	if got := byTenant["light"]; got.Evictions != 0 || got.Size != 1 || got.Bytes != keyBytes {
		t.Fatalf("light tenant shard %+v, want its one key untouched", got)
	}
	if got := byTenant["hot"]; got.Evictions != 5 || got.Size != 1 {
		t.Fatalf("hot tenant shard %+v, want 5 self-evictions", got)
	}
	// The light tenant's oldest key is still a hit.
	again, err := c.Get(KeyID{Tenant: "light", Rot: 0, Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	if again != light {
		t.Fatal("light tenant's key was reloaded")
	}
}

// TestCacheBudgetBeatsFloor: the budget is hard — when every tenant is
// at its floor and the bytes still do not fit, plain LRU applies.
func TestCacheBudgetBeatsFloor(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeSource(&calls, 64), keyBytes, 1)
	if _, err := c.Get(KeyID{Tenant: "a", Rot: 0, Level: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(KeyID{Tenant: "b", Rot: 0, Level: 3}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Bytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, st.BudgetBytes)
	}
	if st.Size != 1 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want one resident key and one eviction", st)
	}
}

// TestCacheSingleflight lets many goroutines miss the same absent key
// at once: the loader must run once, everyone gets the same key, and
// the joiners count as (shared-load) hits.
func TestCacheSingleflight(t *testing.T) {
	const waiters = 8
	var calls atomic.Uint64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	evk := fakeEvk(8)
	c := newKeyCache(KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		calls.Add(1)
		once.Do(func() { close(entered) })
		<-gate
		return evk, nil
	}), 1<<20, 1)

	results := make(chan hks.KeyMaterial, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			got, err := c.Get(rotID(7))
			if err != nil {
				errs <- err
				return
			}
			results <- got
		}()
	}
	<-entered // at least one goroutine is inside the loader
	close(gate)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case got := <-results:
			if got != evk {
				t.Fatal("waiter got a different key")
			}
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times for one key, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats %+v, want 1 miss and %d shared-load hits", st, waiters-1)
	}
}

// TestCacheLoadError: failed loads propagate and are not cached, so a
// later Get retries the backing store.
func TestCacheLoadError(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeSource(&calls, 64), 1<<20, 1)
	if _, err := c.Get(rotID(-1)); err == nil {
		t.Fatal("load error swallowed")
	}
	if _, err := c.Get(rotID(-1)); err == nil {
		t.Fatal("load error cached as success")
	}
	if calls.Load() != 2 {
		t.Fatalf("loader called %d times, want 2 (errors are not cached)", calls.Load())
	}
	if st := c.Stats(); st.Size != 0 || st.Bytes != 0 {
		t.Fatalf("failed load left a cache entry: %+v", st)
	}
}

// TestEvkSizeBytesPinned pins the footprints the byte budget evicts by
// — one formula per residency form. Dense (Evk.SizeBytes):
// dnum × 2 polys × (ℓ+K) towers × N coefficients × 8 bytes. Compressed
// (CompressedEvk.SizeBytes): dnum × (towers × N × 8 + 32) — the B half
// plus one 32-byte seed per digit, the A half gone. If either drifts
// from the allocation, the budget silently stops meaning bytes; this
// test and the cache's accounting fail instead.
func TestEvkSizeBytesPinned(t *testing.T) {
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := hks.NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(r, 1)
	full := r.DBasis(r.NumQ - 1)
	evk := sw.GenEvk(s, s.Ternary(full), s.Ternary(full))

	wantDense := sw.Dnum * 2 * len(sw.DBasis()) * r.N * 8
	if got := evk.SizeBytes(); got != wantDense {
		t.Fatalf("SizeBytes %d, want dnum×2×towers×N×8 = %d", got, wantDense)
	}
	comp, ok := evk.Compress()
	if !ok {
		t.Fatal("generated evk did not compress")
	}
	wantComp := sw.Dnum * (len(sw.DBasis())*r.N*8 + 32)
	if got := comp.SizeBytes(); got != wantComp {
		t.Fatalf("compressed SizeBytes %d, want dnum×(towers×N×8+32) = %d", got, wantComp)
	}
	if got := comp.DenseSizeBytes(); got != wantDense {
		t.Fatalf("compressed DenseSizeBytes %d, want %d", got, wantDense)
	}

	// The cache accounts each form with exactly its own weight: dense
	// entries at the dense footprint (DenseBytes == Bytes), compressed
	// entries at the compressed footprint with the what-if dense
	// footprint alongside.
	c := newKeyCache(KeySourceFunc(func(KeyID) (*hks.Evk, error) { return evk, nil }), 1<<30, 1)
	if _, err := c.Get(rotID(0)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Bytes != int64(wantDense) || st.DenseBytes != int64(wantDense) {
		t.Fatalf("dense cache bytes %d/%d, want %d/%d", st.Bytes, st.DenseBytes, wantDense, wantDense)
	}
	cc := newKeyCache(KeyMaterialFunc(func(KeyID) (hks.KeyMaterial, error) { return comp, nil }), 1<<30, 1)
	if _, err := cc.Get(rotID(0)); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.Bytes != int64(wantComp) || st.DenseBytes != int64(wantDense) {
		t.Fatalf("compressed cache bytes %d/%d, want %d/%d", st.Bytes, st.DenseBytes, wantComp, wantDense)
	}
}
