package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ciflow/internal/hks"
)

// fakeEvk returns a distinct (empty) key per rotation — the cache
// never looks inside an Evk, only at identity.
func fakeLoader(calls *atomic.Uint64) KeyFunc {
	keys := sync.Map{}
	return func(rot int) (*hks.Evk, error) {
		calls.Add(1)
		if rot < 0 {
			return nil, fmt.Errorf("no key for %d", rot)
		}
		evk, _ := keys.LoadOrStore(rot, &hks.Evk{})
		return evk.(*hks.Evk), nil
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeLoader(&calls), 4)

	a1, err := c.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("repeated Get returned different keys")
	}
	if calls.Load() != 1 {
		t.Fatalf("loader called %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Size != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate %.2f, want 0.50", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeLoader(&calls), 2)

	mustGet := func(rot int) *hks.Evk {
		t.Helper()
		evk, err := c.Get(rot)
		if err != nil {
			t.Fatal(err)
		}
		return evk
	}
	k1 := mustGet(1)
	mustGet(2)
	mustGet(1) // touch 1: now 2 is the LRU entry
	mustGet(3) // evicts 2, not 1

	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats %+v", st)
	}
	if got := mustGet(1); got != k1 { // still resident
		t.Fatal("recently used key was evicted")
	}
	if calls.Load() != 3 {
		t.Fatalf("loader called %d times, want 3 (key 1 stayed hot)", calls.Load())
	}
	mustGet(2) // reload after eviction
	if calls.Load() != 4 {
		t.Fatalf("loader called %d times, want 4 (key 2 reloaded)", calls.Load())
	}
}

// TestCacheSingleflight lets many goroutines miss the same absent key
// at once: the loader must run once, everyone gets the same key, and
// the joiners count as (shared-load) hits.
func TestCacheSingleflight(t *testing.T) {
	const waiters = 8
	var calls atomic.Uint64
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	evk := &hks.Evk{}
	c := newKeyCache(func(rot int) (*hks.Evk, error) {
		calls.Add(1)
		once.Do(func() { close(entered) })
		<-gate
		return evk, nil
	}, 4)

	results := make(chan *hks.Evk, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			got, err := c.Get(7)
			if err != nil {
				errs <- err
				return
			}
			results <- got
		}()
	}
	<-entered // at least one goroutine is inside the loader
	close(gate)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case got := <-results:
			if got != evk {
				t.Fatal("waiter got a different key")
			}
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times for one key, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats %+v, want 1 miss and %d shared-load hits", st, waiters-1)
	}
}

// TestCacheLoadError: failed loads propagate and are not cached, so a
// later Get retries the backing store.
func TestCacheLoadError(t *testing.T) {
	var calls atomic.Uint64
	c := newKeyCache(fakeLoader(&calls), 2)
	if _, err := c.Get(-1); err == nil {
		t.Fatal("load error swallowed")
	}
	if _, err := c.Get(-1); err == nil {
		t.Fatal("load error cached as success")
	}
	if calls.Load() != 2 {
		t.Fatalf("loader called %d times, want 2 (errors are not cached)", calls.Load())
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("failed load left a cache entry: %+v", st)
	}
}
