package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// testBench is a tiny switcher plus pregenerated keys: big enough to
// exercise every pipeline stage, small enough for -race.
type testBench struct {
	r    *ring.Ring
	sw   *hks.Switcher
	s    *ring.Sampler
	evks map[int]*hks.Evk
	// loads counts backing-store loads per rotation.
	loads atomic.Uint64
}

func newTestBench(t *testing.T, rots int) *testBench {
	t.Helper()
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := hks.NewSwitcher(r, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := &testBench{r: r, sw: sw, s: ring.NewSampler(r, 1), evks: map[int]*hks.Evk{}}
	full := r.DBasis(r.NumQ - 1)
	for i := 0; i < rots; i++ {
		b.evks[i] = sw.GenEvk(b.s, b.s.Ternary(full), b.s.Ternary(full))
	}
	return b
}

// keyFunc is a memoized backing store, like ckks.KeyChain: every load
// of one rotation returns identical key material.
func (b *testBench) keyFunc(rot int) (*hks.Evk, error) {
	b.loads.Add(1)
	evk, ok := b.evks[rot]
	if !ok {
		return nil, fmt.Errorf("no key for rotation %d", rot)
	}
	return evk, nil
}

func (b *testBench) input() *ring.Poly {
	d := b.s.Uniform(b.sw.QBasis())
	d.IsNTT = true
	return d
}

// wantSwitch is the reference result: the direct serial pipeline.
func (b *testBench) wantSwitch(d *ring.Poly, rot int) (c0, c1 *ring.Poly) {
	return b.sw.KeySwitch(d, b.evks[rot])
}

func checkResult(t *testing.T, res Result, want0, want1 *ring.Poly, what string) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("%s: %v", what, res.Err)
	}
	if !res.C0.Equal(want0) || !res.C1.Equal(want1) {
		t.Fatalf("%s: served result differs from direct key switch", what)
	}
}

// TestCoalescedBitExact floods one batch with G inputs × K rotations
// and asserts (a) every result is bit-exact with an independent
// SwitchHoisted, (b) the coalescer ran exactly one ModUp per input,
// (c) the key cache loaded each rotation exactly once.
func TestCoalescedBitExact(t *testing.T) {
	const G, K = 3, 4
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()

	svc, err := New(b.sw, b.keyFunc, Config{
		Engine:   e,
		MaxBatch: G * K, // the batch closes exactly when every request is in
		Window:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	inputs := make([]*ring.Poly, G)
	want0 := make([][]*ring.Poly, G)
	want1 := make([][]*ring.Poly, G)
	for g := range inputs {
		inputs[g] = b.input()
		evks := make([]*hks.Evk, K)
		for k := range evks {
			evks[k] = b.evks[k]
		}
		want0[g], want1[g] = b.sw.SwitchHoisted(inputs[g], evks)
	}

	chs := make([][]<-chan Result, G)
	for g := 0; g < G; g++ {
		chs[g] = make([]<-chan Result, K)
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: inputs[g], Rot: k})
			if err != nil {
				t.Fatal(err)
			}
			chs[g][k] = ch
		}
	}
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			checkResult(t, <-chs[g][k], want0[g][k], want1[g][k],
				fmt.Sprintf("input %d rot %d", g, k))
		}
	}

	st := svc.Stats()
	if st.Served != G*K || st.Failed != 0 {
		t.Fatalf("served %d / failed %d, want %d / 0", st.Served, st.Failed, G*K)
	}
	if st.ModUps != G {
		t.Fatalf("ran %d ModUps for %d coalesced inputs", st.ModUps, G)
	}
	if st.CoalescingFactor != K {
		t.Fatalf("coalescing factor %.2f, want %d", st.CoalescingFactor, K)
	}
	if st.Keys.Misses != K || b.loads.Load() != K {
		t.Fatalf("cache loaded %d times with %d misses, want %d distinct keys",
			b.loads.Load(), st.Keys.Misses, K)
	}
	if st.Keys.HitRate <= 0.5 {
		t.Fatalf("hit rate %.2f, want > 0.5", st.Keys.HitRate)
	}
	if st.P99 < st.P50 || st.P50 <= 0 {
		t.Fatalf("implausible latencies p50=%v p99=%v", st.P50, st.P99)
	}
}

// TestPerDataflowRouting submits the same input under two dataflows:
// the groups must not merge (differently shaped hoist graphs), and
// both must produce bit-exact results.
func TestPerDataflowRouting(t *testing.T) {
	const K = 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{Engine: e, MaxBatch: 2 * K, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	in := b.input()
	var chans []<-chan Result
	var wants [][2]*ring.Poly
	for _, df := range []dataflow.Dataflow{dataflow.DC, dataflow.OC} {
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k, Dataflow: df})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
			w0, w1 := b.wantSwitch(in, k)
			wants = append(wants, [2]*ring.Poly{w0, w1})
		}
	}
	for i, ch := range chans {
		checkResult(t, <-ch, wants[i][0], wants[i][1], fmt.Sprintf("request %d", i))
	}
	if st := svc.Stats(); st.ModUps != 2 {
		t.Fatalf("%d ModUps, want 2 (one per dataflow group)", st.ModUps)
	}
}

// TestSingletonDirectPath serves one lone request through the
// per-rotation path and checks it against the serial pipeline.
func TestSingletonDirectPath(t *testing.T) {
	b := newTestBench(t, 1)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{Engine: e, Window: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	in := b.input()
	want0, want1 := b.wantSwitch(in, 0)
	res := svc.Do(context.Background(), Request{Input: in, Rot: 0})
	checkResult(t, res, want0, want1, "singleton")
	st := svc.Stats()
	if st.ModUps != 1 || st.Coalesced != 0 || st.CoalescingFactor != 1 {
		t.Fatalf("singleton stats: %+v", st)
	}
}

// TestEvictionMidFlight runs two concurrent coalesced groups through a
// capacity-1 key cache: every Get evicts the other group's key while
// that key is still feeding an in-flight replay. Results must stay
// bit-exact and the cache must report reload churn.
func TestEvictionMidFlight(t *testing.T) {
	const G, K = 2, 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{
		Engine:      e,
		KeyCapacity: 1,
		MaxBatch:    G * K,
		Window:      time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	inputs := [G]*ring.Poly{b.input(), b.input()}
	var chs [G][K]<-chan Result
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: inputs[g], Rot: k})
			if err != nil {
				t.Fatal(err)
			}
			chs[g][k] = ch
		}
	}
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			want0, want1 := b.wantSwitch(inputs[g], k)
			checkResult(t, <-chs[g][k], want0, want1, fmt.Sprintf("input %d rot %d", g, k))
		}
	}
	st := svc.Stats()
	if st.Keys.Evictions == 0 {
		t.Fatal("capacity-1 cache under 3 rotations evicted nothing")
	}
	if st.Keys.Size > 1 {
		t.Fatalf("cache size %d exceeds capacity 1", st.Keys.Size)
	}
	if b.loads.Load() < K {
		t.Fatalf("only %d loads for %d distinct keys", b.loads.Load(), K)
	}
}

// TestConcurrentClients hammers the service from client goroutines
// with interleaved inputs and rotations — the -race workhorse for the
// dispatcher, coalescer, and cache together.
func TestConcurrentClients(t *testing.T) {
	const clients, ops, K = 4, 3, 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{Engine: e, MaxBatch: 8, Window: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Sample inputs and reference outputs up front: the sampler is not
	// safe for concurrent use (the switcher is).
	inputs := make([]*ring.Poly, clients)
	for c := range inputs {
		inputs[c] = b.input()
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(in *ring.Poly) {
			defer wg.Done()
			var want0, want1 [K]*ring.Poly
			for k := 0; k < K; k++ {
				want0[k], want1[k] = b.wantSwitch(in, k)
			}
			for op := 0; op < ops; op++ {
				var chans [K]<-chan Result
				for k := 0; k < K; k++ {
					ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k})
					if err != nil {
						errc <- err
						return
					}
					chans[k] = ch
				}
				for k := 0; k < K; k++ {
					res := <-chans[k]
					if res.Err != nil {
						errc <- res.Err
						return
					}
					if !res.C0.Equal(want0[k]) || !res.C1.Equal(want1[k]) {
						errc <- fmt.Errorf("client result differs from direct switch")
						return
					}
				}
			}
		}(inputs[c])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Served != clients*ops*K {
		t.Fatalf("served %d, want %d", st.Served, clients*ops*K)
	}
	if st.Keys.Misses != K {
		t.Fatalf("memoized backing store missed %d times, want %d", st.Keys.Misses, K)
	}
}

// TestBackpressure stalls the dispatcher inside a key load, fills the
// bounded queue, and asserts a further Submit blocks until its context
// dies rather than buffering without limit.
func TestBackpressure(t *testing.T) {
	b := newTestBench(t, 2)
	e := engine.New(1)
	defer e.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blockingLoad := func(rot int) (*hks.Evk, error) {
		if rot == 0 {
			once.Do(func() { close(entered) })
			<-gate
		}
		return b.evks[rot], nil
	}
	svc, err := New(b.sw, blockingLoad, Config{
		Engine:     e,
		MaxBatch:   1,
		Window:     time.Microsecond,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { svc.Close() }()

	in := b.input()
	first, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // dispatcher is stuck loading key 0

	second, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1})
	if err != nil {
		t.Fatal(err) // fits in the queue
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.Submit(ctx, Request{Input: in, Rot: 1}); err != context.DeadlineExceeded {
		t.Fatalf("over-queue Submit returned %v, want context.DeadlineExceeded", err)
	}

	close(gate) // release the dispatcher; everything drains
	if res := <-first; res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := <-second; res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestCloseDrains closes the service with requests still queued: all
// of them must complete, and later Submits must fail fast.
func TestCloseDrains(t *testing.T) {
	const K = 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{Engine: e, MaxBatch: 2, Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	in := b.input()
	var chans [K]<-chan Result
	for k := 0; k < K; k++ {
		ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k})
		if err != nil {
			t.Fatal(err)
		}
		chans[k] = ch
	}
	svc.Close()
	for k := 0; k < K; k++ {
		want0, want1 := b.wantSwitch(in, k)
		checkResult(t, <-chans[k], want0, want1, fmt.Sprintf("drained rot %d", k))
	}
	if _, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0}); err != ErrClosed {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestRequestErrors covers the request-level failure paths: invalid
// inputs rejected at Submit, key-load failures delivered per request
// (and not poisoning the cache or the rest of the group).
func TestRequestErrors(t *testing.T) {
	b := newTestBench(t, 2)
	e := engine.New(1)
	defer e.Close()
	svc, err := New(b.sw, b.keyFunc, Config{Engine: e, MaxBatch: 2, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.Submit(context.Background(), Request{Input: nil}); err == nil {
		t.Fatal("nil input accepted")
	}
	coeff := b.s.Uniform(b.sw.QBasis()) // coefficient domain: invalid
	if _, err := svc.Submit(context.Background(), Request{Input: coeff}); err == nil {
		t.Fatal("non-NTT input accepted")
	}
	bogus := Request{Input: b.input(), Rot: 0, Dataflow: dataflow.Dataflow(99)}
	if _, err := svc.Submit(context.Background(), bogus); err == nil {
		t.Fatal("unknown dataflow accepted (would panic the dispatcher)")
	}

	// One good and one unknown rotation in the same coalesced group.
	in := b.input()
	good, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.Submit(context.Background(), Request{Input: in, Rot: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-bad; res.Err == nil {
		t.Fatal("unknown rotation served without error")
	}
	want0, want1 := b.wantSwitch(in, 0)
	checkResult(t, <-good, want0, want1, "good request in mixed group")
	st := svc.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("failed %d / served %d, want 1 / 1", st.Failed, st.Served)
	}
}

// TestNewConfigErrors checks constructor validation.
func TestNewConfigErrors(t *testing.T) {
	b := newTestBench(t, 1)
	if _, err := New(nil, b.keyFunc, Config{}); err == nil {
		t.Fatal("nil switcher accepted")
	}
	if _, err := New(b.sw, nil, Config{}); err == nil {
		t.Fatal("nil key loader accepted")
	}
}

// TestNewFromKeyChain serves hoisting-form rotations straight off a
// ckks.KeyChain and checks them against the direct switch with the
// same (memoized) keys.
func TestNewFromKeyChain(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(ctx, 7)
	level := ctx.MaxLevel
	e := engine.New(2)
	defer e.Close()

	svc, err := NewFromKeyChain(kc, level, Config{Engine: e, MaxBatch: 3, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := NewFromKeyChain(kc, 99, Config{}); err == nil {
		t.Fatal("invalid level accepted")
	}

	sw, err := kc.Switcher(level)
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(ctx.R, 3)
	in := s.Uniform(sw.QBasis())
	in.IsNTT = true

	rots := []int{1, 2, 5}
	chans := make([]<-chan Result, len(rots))
	for i, rot := range rots {
		ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: rot})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, rot := range rots {
		evk, err := kc.HoistKey(rot, level)
		if err != nil {
			t.Fatal(err)
		}
		want0, want1 := sw.KeySwitch(in, evk)
		checkResult(t, <-chans[i], want0, want1, fmt.Sprintf("rotation %d", rot))
	}
	if st := svc.Stats(); st.ModUps != 1 {
		t.Fatalf("%d ModUps for one coalesced ciphertext, want 1", st.ModUps)
	}
}
