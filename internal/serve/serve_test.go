package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// benchLevel is the level every testBench request targets (the pool
// serves others, but keys are pregenerated here only).
const benchLevel = 3

// testBench is a tiny switcher pool plus pregenerated per-tenant keys:
// big enough to exercise every pipeline stage, small enough for -race.
type testBench struct {
	r    *ring.Ring
	pool *hks.SwitcherPool
	sw   *hks.Switcher // the benchLevel switcher
	s    *ring.Sampler
	evks map[string]map[int]*hks.Evk // tenant -> rot -> key
	// loads counts backing-store loads across all KeyIDs.
	loads atomic.Uint64
}

// newTestBench pregenerates rots keys for each named tenant (none
// means the anonymous tenant ""). Tenants get independently sampled
// key material — genuinely distinct keyspaces.
func newTestBench(t *testing.T, rots int, tenants ...string) *testBench {
	t.Helper()
	if len(tenants) == 0 {
		tenants = []string{""}
	}
	r, err := ring.NewRingGenerated(32, 4, 40, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	pool := hks.NewSwitcherPool(r, 2)
	sw, err := pool.Switcher(benchLevel)
	if err != nil {
		t.Fatal(err)
	}
	b := &testBench{r: r, pool: pool, sw: sw, s: ring.NewSampler(r, 1), evks: map[string]map[int]*hks.Evk{}}
	full := r.DBasis(r.NumQ - 1)
	for _, tenant := range tenants {
		b.evks[tenant] = map[int]*hks.Evk{}
		for i := 0; i < rots; i++ {
			b.evks[tenant][i] = sw.GenEvk(b.s, b.s.Ternary(full), b.s.Ternary(full))
		}
	}
	return b
}

// keySource is a memoized backing store, like ckks.KeyChains: every
// load of one KeyID returns identical key material.
func (b *testBench) keySource() KeySource {
	return KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		b.loads.Add(1)
		if id.Level != benchLevel {
			return nil, fmt.Errorf("no keys at level %d", id.Level)
		}
		evk, ok := b.evks[id.Tenant][id.Rot]
		if !ok {
			return nil, fmt.Errorf("no key for tenant %q rotation %d", id.Tenant, id.Rot)
		}
		return evk, nil
	})
}

// config routes zero-Level requests to benchLevel.
func (b *testBench) config(cfg Config) Config {
	cfg.DefaultLevel = benchLevel
	return cfg
}

func (b *testBench) newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(b.pool, b.keySource(), b.config(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func (b *testBench) input() *ring.Poly {
	d := b.s.Uniform(b.sw.QBasis())
	d.IsNTT = true
	return d
}

// wantSwitch is the reference result: the direct serial pipeline with
// the tenant's own key.
func (b *testBench) wantSwitch(tenant string, d *ring.Poly, rot int) (c0, c1 *ring.Poly) {
	return b.sw.KeySwitch(d, b.evks[tenant][rot])
}

// tenantStats picks one tenant's breakdown out of a snapshot.
func tenantStats(t *testing.T, st Stats, tenant string) TenantStats {
	t.Helper()
	for _, ts := range st.Tenants {
		if ts.Tenant == tenant {
			return ts
		}
	}
	t.Fatalf("no stats for tenant %q in %+v", tenant, st.Tenants)
	return TenantStats{}
}

func checkResult(t *testing.T, res Result, want0, want1 *ring.Poly, what string) {
	t.Helper()
	if res.Err != nil {
		t.Fatalf("%s: %v", what, res.Err)
	}
	if !res.C0.Equal(want0) || !res.C1.Equal(want1) {
		t.Fatalf("%s: served result differs from direct key switch", what)
	}
}

// TestCoalescedBitExact floods one batch with G inputs × K rotations
// and asserts (a) every result is bit-exact with an independent
// SwitchHoisted, (b) the coalescer ran exactly one ModUp per input,
// (c) the key cache loaded each rotation exactly once.
func TestCoalescedBitExact(t *testing.T) {
	const G, K = 3, 4
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()

	svc := b.newService(t, Config{
		Engine:   e,
		MaxBatch: G * K, // the batch closes exactly when every request is in
		Window:   time.Minute,
	})
	defer svc.Close()

	inputs := make([]*ring.Poly, G)
	want0 := make([][]*ring.Poly, G)
	want1 := make([][]*ring.Poly, G)
	for g := range inputs {
		inputs[g] = b.input()
		evks := make([]*hks.Evk, K)
		for k := range evks {
			evks[k] = b.evks[""][k]
		}
		want0[g], want1[g] = b.sw.SwitchHoisted(inputs[g], evks)
	}

	chs := make([][]<-chan Result, G)
	for g := 0; g < G; g++ {
		chs[g] = make([]<-chan Result, K)
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: inputs[g], Rot: k})
			if err != nil {
				t.Fatal(err)
			}
			chs[g][k] = ch
		}
	}
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			checkResult(t, <-chs[g][k], want0[g][k], want1[g][k],
				fmt.Sprintf("input %d rot %d", g, k))
		}
	}

	st := svc.Stats()
	if st.Served != G*K || st.Failed != 0 {
		t.Fatalf("served %d / failed %d, want %d / 0", st.Served, st.Failed, G*K)
	}
	if st.ModUps != G {
		t.Fatalf("ran %d ModUps for %d coalesced inputs", st.ModUps, G)
	}
	if st.CoalescingFactor != K {
		t.Fatalf("coalescing factor %.2f, want %d", st.CoalescingFactor, K)
	}
	if st.Keys.Misses != K || b.loads.Load() != K {
		t.Fatalf("cache loaded %d times with %d misses, want %d distinct keys",
			b.loads.Load(), st.Keys.Misses, K)
	}
	if st.Keys.HitRate <= 0.5 {
		t.Fatalf("hit rate %.2f, want > 0.5", st.Keys.HitRate)
	}
	if st.P99 < st.P50 || st.P50 <= 0 {
		t.Fatalf("implausible latencies p50=%v p99=%v", st.P50, st.P99)
	}
	// The anonymous tenant's breakdown carries the whole load.
	ts := tenantStats(t, st, "")
	if ts.Served != G*K || ts.ModUps != G || ts.Keys.Misses != K {
		t.Fatalf("tenant breakdown %+v disagrees with global stats", ts)
	}
}

// TestPerDataflowRouting submits the same input under two dataflows:
// the groups must not merge (differently shaped hoist graphs), and
// both must produce bit-exact results.
func TestPerDataflowRouting(t *testing.T) {
	const K = 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc := b.newService(t, Config{Engine: e, MaxBatch: 2 * K, Window: time.Minute})
	defer svc.Close()

	in := b.input()
	var chans []<-chan Result
	var wants [][2]*ring.Poly
	for _, df := range []dataflow.Dataflow{dataflow.DC, dataflow.OC} {
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k, Dataflow: df})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
			w0, w1 := b.wantSwitch("", in, k)
			wants = append(wants, [2]*ring.Poly{w0, w1})
		}
	}
	for i, ch := range chans {
		checkResult(t, <-ch, wants[i][0], wants[i][1], fmt.Sprintf("request %d", i))
	}
	if st := svc.Stats(); st.ModUps != 2 {
		t.Fatalf("%d ModUps, want 2 (one per dataflow group)", st.ModUps)
	}
}

// TestSingletonDirectPath serves one lone request through the
// per-rotation path and checks it against the serial pipeline.
func TestSingletonDirectPath(t *testing.T) {
	b := newTestBench(t, 1)
	e := engine.New(2)
	defer e.Close()
	svc := b.newService(t, Config{Engine: e, Window: time.Microsecond})
	defer svc.Close()

	in := b.input()
	want0, want1 := b.wantSwitch("", in, 0)
	res := svc.Do(context.Background(), Request{Input: in, Rot: 0})
	checkResult(t, res, want0, want1, "singleton")
	st := svc.Stats()
	if st.ModUps != 1 || st.Coalesced != 0 || st.CoalescingFactor != 1 {
		t.Fatalf("singleton stats: %+v", st)
	}
}

// TestEvictionMidFlight runs two concurrent coalesced groups through a
// one-key byte budget: every load evicts the other group's key while
// that key is still feeding an in-flight replay. Results must stay
// bit-exact and the cache must report reload churn.
func TestEvictionMidFlight(t *testing.T) {
	const G, K = 2, 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	oneKey := int64(b.evks[""][0].SizeBytes())
	svc := b.newService(t, Config{
		Engine:    e,
		KeyBudget: oneKey, // capacity-one cache, in bytes
		MaxBatch:  G * K,
		Window:    time.Minute,
	})
	defer svc.Close()

	inputs := [G]*ring.Poly{b.input(), b.input()}
	var chs [G][K]<-chan Result
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: inputs[g], Rot: k})
			if err != nil {
				t.Fatal(err)
			}
			chs[g][k] = ch
		}
	}
	for g := 0; g < G; g++ {
		for k := 0; k < K; k++ {
			want0, want1 := b.wantSwitch("", inputs[g], k)
			checkResult(t, <-chs[g][k], want0, want1, fmt.Sprintf("input %d rot %d", g, k))
		}
	}
	st := svc.Stats()
	if st.Keys.Evictions == 0 {
		t.Fatal("one-key budget under 3 rotations evicted nothing")
	}
	if st.Keys.Bytes > oneKey {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Keys.Bytes, oneKey)
	}
	if b.loads.Load() < K {
		t.Fatalf("only %d loads for %d distinct keys", b.loads.Load(), K)
	}
}

// TestConcurrentClients hammers the service from client goroutines
// with interleaved inputs and rotations — the -race workhorse for the
// dispatcher, coalescer, and cache together.
func TestConcurrentClients(t *testing.T) {
	const clients, ops, K = 4, 3, 3
	b := newTestBench(t, K)
	e := engine.New(2)
	defer e.Close()
	svc := b.newService(t, Config{Engine: e, MaxBatch: 8, Window: 100 * time.Microsecond})
	defer svc.Close()

	// Sample inputs and reference outputs up front: the sampler is not
	// safe for concurrent use (the switcher is).
	inputs := make([]*ring.Poly, clients)
	for c := range inputs {
		inputs[c] = b.input()
	}

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(in *ring.Poly) {
			defer wg.Done()
			var want0, want1 [K]*ring.Poly
			for k := 0; k < K; k++ {
				want0[k], want1[k] = b.wantSwitch("", in, k)
			}
			for op := 0; op < ops; op++ {
				var chans [K]<-chan Result
				for k := 0; k < K; k++ {
					ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k})
					if err != nil {
						errc <- err
						return
					}
					chans[k] = ch
				}
				for k := 0; k < K; k++ {
					res := <-chans[k]
					if res.Err != nil {
						errc <- res.Err
						return
					}
					if !res.C0.Equal(want0[k]) || !res.C1.Equal(want1[k]) {
						errc <- fmt.Errorf("client result differs from direct switch")
						return
					}
				}
			}
		}(inputs[c])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Served != clients*ops*K {
		t.Fatalf("served %d, want %d", st.Served, clients*ops*K)
	}
	if st.Keys.Misses != K {
		t.Fatalf("memoized backing store missed %d times, want %d", st.Keys.Misses, K)
	}
}

// TestCrossTenantNoCoalesce submits the same input polynomial
// concurrently from two tenants: the requests must never share a
// hoisted ModUp — each tenant's results come from its own keyspace —
// and the per-tenant ModUps must sum to the service total (the
// zero-cross-tenant-coalesces invariant the perf gate checks). Run
// under -race this also exercises two dispatchers racing on the
// shared engine and cache.
func TestCrossTenantNoCoalesce(t *testing.T) {
	const K = 3
	b := newTestBench(t, K, "a", "b")
	e := engine.New(2)
	defer e.Close()
	svc := b.newService(t, Config{Engine: e, MaxBatch: K, Window: time.Minute})
	defer svc.Close()

	in := b.input() // the *same* polynomial for both tenants
	var chans [2][K]<-chan Result
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for ti, tenant := range []string{"a", "b"} {
		wg.Add(1)
		go func(ti int, tenant string) {
			defer wg.Done()
			for k := 0; k < K; k++ {
				ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k, Tenant: tenant})
				if err != nil {
					errc <- err
					return
				}
				chans[ti][k] = ch
			}
		}(ti, tenant)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	results := make([][2]*ring.Poly, 0, 2*K)
	for ti, tenant := range []string{"a", "b"} {
		for k := 0; k < K; k++ {
			want0, want1 := b.wantSwitch(tenant, in, k)
			res := <-chans[ti][k]
			checkResult(t, res, want0, want1, fmt.Sprintf("tenant %s rot %d", tenant, k))
			results = append(results, [2]*ring.Poly{res.C0, res.C1})
		}
	}
	// Distinct keyspaces must produce distinct outputs for the same
	// (input, rotation) — shared hoisted state across tenants would
	// have served one tenant's replay with the other's key.
	for k := 0; k < K; k++ {
		if results[k][0].Equal(results[K+k][0]) {
			t.Fatalf("rot %d: tenants produced identical outputs from distinct keys", k)
		}
	}

	st := svc.Stats()
	if st.ModUps != 2 {
		t.Fatalf("%d ModUps, want 2 (one per tenant, never shared)", st.ModUps)
	}
	var sum uint64
	for _, ts := range st.Tenants {
		if ts.ModUps != 1 {
			t.Fatalf("tenant %q ran %d ModUps, want 1 (its own coalesced group)", ts.Tenant, ts.ModUps)
		}
		sum += ts.ModUps
	}
	if sum != st.ModUps {
		t.Fatalf("per-tenant ModUps sum %d != global %d: a group crossed tenants", sum, st.ModUps)
	}
}

// TestTenantIsolationBackpressure wedges one tenant's dispatcher
// inside an indefinitely blocked key load with its queue saturated,
// then serves another tenant: the light tenant must complete — its
// queue, dispatcher, and latency are untouched by the hot tenant's
// backpressure, which is the whole point of per-tenant queues. (With
// the hot tenant blocked *indefinitely*, any light-tenant completion
// proves its p99 does not depend on the hot tenant.)
func TestTenantIsolationBackpressure(t *testing.T) {
	b := newTestBench(t, 2, "hot", "light")
	e := engine.New(2)
	defer e.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	src := KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		if id.Tenant == "hot" {
			once.Do(func() { close(entered) })
			<-gate
		}
		return b.evks[id.Tenant][id.Rot], nil
	})
	svc, err := New(b.pool, src, b.config(Config{
		Engine:     e,
		MaxBatch:   1,
		Window:     time.Microsecond,
		QueueDepth: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { svc.Close() }()

	in := b.input()
	hotFirst, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0, Tenant: "hot"})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the hot dispatcher is stuck loading its key

	hotSecond, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1, Tenant: "hot"})
	if err != nil {
		t.Fatal(err) // fits in the hot queue
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.Submit(ctx, Request{Input: in, Rot: 1, Tenant: "hot"}); err != context.DeadlineExceeded {
		t.Fatalf("over-queue hot Submit returned %v, want context.DeadlineExceeded", err)
	}

	// The hot tenant is saturated and wedged; the light tenant must be
	// completely unaffected.
	for k := 0; k < 2; k++ {
		want0, want1 := b.wantSwitch("light", in, k)
		res := svc.Do(context.Background(), Request{Input: in, Rot: k, Tenant: "light"})
		checkResult(t, res, want0, want1, fmt.Sprintf("light rot %d under hot backpressure", k))
	}
	select {
	case res := <-hotFirst:
		t.Fatalf("hot request completed while its load was gated: %+v", res.Err)
	default:
	}
	st := svc.Stats()
	light := tenantStats(t, st, "light")
	if light.Served != 2 || light.Failed != 0 {
		t.Fatalf("light tenant stats %+v, want 2 served", light)
	}
	if light.P99 <= 0 {
		t.Fatal("light tenant recorded no latencies")
	}
	if hot := tenantStats(t, st, "hot"); hot.Served != 0 {
		t.Fatalf("hot tenant served %d while gated", hot.Served)
	}

	close(gate) // release the hot dispatcher; everything drains
	if res := <-hotFirst; res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := <-hotSecond; res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestSubmitBlockedDoesNotStallNewTenant pins the locking granularity
// of Submit: while one producer is *blocked inside Submit* on a wedged
// tenant's full queue, a first-ever request from a brand-new tenant
// (which must create its worker — a map write) has to get through. A
// service-wide lock spanning the queue send would deadlock here via
// writer priority.
func TestSubmitBlockedDoesNotStallNewTenant(t *testing.T) {
	b := newTestBench(t, 2, "hot", "fresh")
	e := engine.New(2)
	defer e.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	src := KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		if id.Tenant == "hot" {
			once.Do(func() { close(entered) })
			<-gate
		}
		return b.evks[id.Tenant][id.Rot], nil
	})
	svc, err := New(b.pool, src, b.config(Config{
		Engine:     e,
		MaxBatch:   1,
		Window:     time.Microsecond,
		QueueDepth: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { svc.Close() }()

	in := b.input()
	hotFirst, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0, Tenant: "hot"})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // hot dispatcher wedged in its key load
	hotSecond, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1, Tenant: "hot"})
	if err != nil {
		t.Fatal(err) // fills the hot queue
	}
	// This producer blocks *inside Submit* (nil-cancel send on a full
	// queue) until the gate opens.
	hotBlocked := make(chan Result, 1)
	go func() {
		hotBlocked <- svc.Do(context.Background(), Request{Input: in, Rot: 1, Tenant: "hot"})
	}()
	// Give the blocked Submit time to park in the send.
	time.Sleep(10 * time.Millisecond)

	want0, want1 := b.wantSwitch("fresh", in, 0)
	done := make(chan Result, 1)
	go func() {
		done <- svc.Do(context.Background(), Request{Input: in, Rot: 0, Tenant: "fresh"})
	}()
	select {
	case res := <-done:
		checkResult(t, res, want0, want1, "new tenant under a blocked Submit")
	case <-time.After(10 * time.Second):
		t.Fatal("new tenant's first Submit stalled behind another tenant's blocked send")
	}

	close(gate)
	for _, ch := range []<-chan Result{hotFirst, hotSecond} {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if res := <-hotBlocked; res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestUnknownTenantRejectedEarly: a KeySource implementing
// TenantChecker (like KeyChains) makes Submit reject unknown tenants
// before a dispatcher, queue, or cache shard is allocated for them.
func TestUnknownTenantRejectedEarly(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(ctx, 7)
	e := engine.New(1)
	defer e.Close()
	svc, err := NewFromKeyChain(kc, ctx.MaxLevel, Config{Engine: e, Window: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	sw, err := kc.Switcher(ctx.MaxLevel)
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(ctx.R, 3)
	in := s.Uniform(sw.QBasis())
	in.IsNTT = true
	if _, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1, Tenant: "nobody"}); err == nil {
		t.Fatal("unknown tenant accepted by a TenantChecker-backed service")
	}
	if st := svc.Stats(); len(st.Tenants) != 0 {
		t.Fatalf("rejected tenant left a worker behind: %+v", st.Tenants)
	}
}

// TestBackpressure stalls the dispatcher inside a key load, fills the
// bounded queue, and asserts a further Submit blocks until its context
// dies rather than buffering without limit.
func TestBackpressure(t *testing.T) {
	b := newTestBench(t, 2)
	e := engine.New(1)
	defer e.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	blockingSrc := KeySourceFunc(func(id KeyID) (*hks.Evk, error) {
		if id.Rot == 0 {
			once.Do(func() { close(entered) })
			<-gate
		}
		return b.evks[""][id.Rot], nil
	})
	svc, err := New(b.pool, blockingSrc, b.config(Config{
		Engine:     e,
		MaxBatch:   1,
		Window:     time.Microsecond,
		QueueDepth: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { svc.Close() }()

	in := b.input()
	first, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // dispatcher is stuck loading key 0

	second, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1})
	if err != nil {
		t.Fatal(err) // fits in the queue
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.Submit(ctx, Request{Input: in, Rot: 1}); err != context.DeadlineExceeded {
		t.Fatalf("over-queue Submit returned %v, want context.DeadlineExceeded", err)
	}

	close(gate) // release the dispatcher; everything drains
	if res := <-first; res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := <-second; res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestCloseDrains closes the service with requests still queued for
// two tenants: all of them must complete, and later Submits must fail
// fast.
func TestCloseDrains(t *testing.T) {
	const K = 3
	b := newTestBench(t, K, "", "other")
	e := engine.New(2)
	defer e.Close()
	svc := b.newService(t, Config{Engine: e, MaxBatch: 2, Window: time.Millisecond})

	in := b.input()
	var chans [2 * K]<-chan Result
	for k := 0; k < K; k++ {
		for ti, tenant := range []string{"", "other"} {
			ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k, Tenant: tenant})
			if err != nil {
				t.Fatal(err)
			}
			chans[2*k+ti] = ch
		}
	}
	svc.Close()
	for k := 0; k < K; k++ {
		for ti, tenant := range []string{"", "other"} {
			want0, want1 := b.wantSwitch(tenant, in, k)
			checkResult(t, <-chans[2*k+ti], want0, want1,
				fmt.Sprintf("drained tenant %q rot %d", tenant, k))
		}
	}
	if _, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0}); err != ErrClosed {
		t.Fatalf("Submit after Close returned %v, want ErrClosed", err)
	}
	if _, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0, Tenant: "new"}); err != ErrClosed {
		t.Fatalf("Submit for a fresh tenant after Close returned %v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestRequestErrors covers the request-level failure paths: invalid
// inputs and levels rejected at Submit, key-load failures delivered
// per request (and not poisoning the cache or the rest of the group).
func TestRequestErrors(t *testing.T) {
	b := newTestBench(t, 2)
	e := engine.New(1)
	defer e.Close()
	// The window is short because the stray-tenant request below rides
	// alone on its own dispatcher and must not wait out a long gather.
	svc := b.newService(t, Config{Engine: e, MaxBatch: 2, Window: 5 * time.Millisecond})
	defer svc.Close()

	if _, err := svc.Submit(context.Background(), Request{Input: nil}); err == nil {
		t.Fatal("nil input accepted")
	}
	coeff := b.s.Uniform(b.sw.QBasis()) // coefficient domain: invalid
	if _, err := svc.Submit(context.Background(), Request{Input: coeff}); err == nil {
		t.Fatal("non-NTT input accepted")
	}
	bogus := Request{Input: b.input(), Rot: 0, Dataflow: dataflow.Dataflow(99)}
	if _, err := svc.Submit(context.Background(), bogus); err == nil {
		t.Fatal("unknown dataflow accepted (would panic the dispatcher)")
	}
	if _, err := svc.Submit(context.Background(), Request{Input: b.input(), Level: 99}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	// A valid level whose basis does not match the input fails the
	// input check, not the whole service.
	if _, err := svc.Submit(context.Background(), Request{Input: b.input(), Level: 1}); err == nil {
		t.Fatal("level/basis mismatch accepted")
	}

	// One good and one unknown rotation in the same coalesced group.
	in := b.input()
	good, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := svc.Submit(context.Background(), Request{Input: in, Rot: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-bad; res.Err == nil {
		t.Fatal("unknown rotation served without error")
	}
	want0, want1 := b.wantSwitch("", in, 0)
	checkResult(t, <-good, want0, want1, "good request in mixed group")

	// An unknown tenant fails its own request only.
	stray, err := svc.Submit(context.Background(), Request{Input: in, Rot: 0, Tenant: "nobody"})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-stray; res.Err == nil {
		t.Fatal("unknown tenant served without error")
	}

	st := svc.Stats()
	if st.Failed != 2 || st.Served != 1 {
		t.Fatalf("failed %d / served %d, want 2 / 1", st.Failed, st.Served)
	}
}

// TestNewConfigErrors checks constructor validation.
func TestNewConfigErrors(t *testing.T) {
	b := newTestBench(t, 1)
	if _, err := New(nil, b.keySource(), Config{}); err == nil {
		t.Fatal("nil switcher source accepted")
	}
	if _, err := New(b.pool, nil, Config{}); err == nil {
		t.Fatal("nil key source accepted")
	}
}

// TestNewFromKeyChain serves hoisting-form rotations straight off a
// ckks.KeyChain through the one-tenant shim and checks them against
// the direct switch with the same (memoized) keys.
func TestNewFromKeyChain(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(ctx, 7)
	level := ctx.MaxLevel
	e := engine.New(2)
	defer e.Close()

	svc, err := NewFromKeyChain(kc, level, Config{Engine: e, MaxBatch: 3, Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := NewFromKeyChain(kc, 99, Config{}); err == nil {
		t.Fatal("invalid level accepted")
	}
	if _, err := NewFromKeyChain(nil, level, Config{}); err == nil {
		t.Fatal("nil key chain accepted")
	}

	sw, err := kc.Switcher(level)
	if err != nil {
		t.Fatal(err)
	}
	s := ring.NewSampler(ctx.R, 3)
	in := s.Uniform(sw.QBasis())
	in.IsNTT = true

	rots := []int{1, 2, 5}
	chans := make([]<-chan Result, len(rots))
	for i, rot := range rots {
		ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: rot})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, rot := range rots {
		evk, err := kc.HoistKey(rot, level)
		if err != nil {
			t.Fatal(err)
		}
		want0, want1 := sw.KeySwitch(in, evk)
		checkResult(t, <-chans[i], want0, want1, fmt.Sprintf("rotation %d", rot))
	}
	if st := svc.Stats(); st.ModUps != 1 {
		t.Fatalf("%d ModUps for one coalesced ciphertext, want 1", st.ModUps)
	}
}

// TestLevelRouting drives one service at two ciphertext levels: each
// request must run on its level's switcher with its level's key and
// come back bit-exact with the direct switch at that level.
func TestLevelRouting(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(ctx, 11)
	e := engine.New(2)
	defer e.Close()

	top := ctx.MaxLevel
	levels := []int{top, top - 1}
	svc, err := New(kc, KeyChains{"": kc}, Config{
		Engine: e, MaxBatch: 4, Window: time.Minute, DefaultLevel: top,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s := ring.NewSampler(ctx.R, 4)
	const rot = 2
	type want struct {
		ch     <-chan Result
		c0, c1 *ring.Poly
		level  int
	}
	var wants []want
	for _, level := range levels {
		sw, err := kc.Switcher(level)
		if err != nil {
			t.Fatal(err)
		}
		in := s.Uniform(sw.QBasis())
		in.IsNTT = true
		for k := 0; k < 2; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: rot + k, Level: level})
			if err != nil {
				t.Fatal(err)
			}
			evk, err := kc.HoistKey(rot+k, level)
			if err != nil {
				t.Fatal(err)
			}
			w0, w1 := sw.KeySwitch(in, evk)
			wants = append(wants, want{ch: ch, c0: w0, c1: w1, level: level})
		}
	}
	for i, w := range wants {
		res := <-w.ch
		checkResult(t, res, w.c0, w.c1, fmt.Sprintf("request %d at level %d", i, w.level))
		if got := len(res.C0.Basis); got != w.level+1 {
			t.Fatalf("level %d result spans %d towers", w.level, got)
		}
	}
	st := svc.Stats()
	if st.Served != 4 || st.ModUps != 2 {
		t.Fatalf("stats %+v: want 4 served over 2 level-scoped ModUps", st)
	}
}

// TestPerLevelCounters drives two levels through one service and
// checks the per-level switch/ModUp breakdown — globally and in the
// tenant slice — matches what was submitted: at each level, two
// rotations sharing one input are 2 switches over 1 hoisted ModUp.
func TestPerLevelCounters(t *testing.T) {
	ctx, err := ckks.NewContext(32, 4, 30, 2, 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := ckks.GenKeys(ctx, 11)
	e := engine.New(2)
	defer e.Close()
	svc, err := New(kc, KeyChains{"": kc}, Config{
		Engine: e, MaxBatch: 4, Window: time.Minute, DefaultLevel: ctx.MaxLevel,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	s := ring.NewSampler(ctx.R, 4)
	levels := []int{ctx.MaxLevel, ctx.MaxLevel - 1}
	var chans []<-chan Result
	for _, level := range levels {
		sw, err := kc.Switcher(level)
		if err != nil {
			t.Fatal(err)
		}
		in := s.Uniform(sw.QBasis())
		in.IsNTT = true
		for k := 0; k < 2; k++ {
			ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: 1 + k, Level: level})
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	st := svc.Stats()
	if len(st.PerLevel) != 2 {
		t.Fatalf("PerLevel %+v, want both levels", st.PerLevel)
	}
	var sumSw, sumMu uint64
	for i, lc := range st.PerLevel {
		if lc.Level != levels[i] {
			t.Fatalf("PerLevel not descending: %+v", st.PerLevel)
		}
		if lc.Switches != 2 || lc.ModUps != 1 {
			t.Fatalf("level %d counters %+v, want 2 switches / 1 ModUp", lc.Level, lc)
		}
		sumSw += lc.Switches
		sumMu += lc.ModUps
	}
	// The slice must reproduce the totals.
	if sumSw != st.Served || sumMu != st.ModUps {
		t.Fatalf("per-level sums %d/%d vs totals %d/%d", sumSw, sumMu, st.Served, st.ModUps)
	}
	// The single tenant's breakdown is the whole breakdown.
	ts := tenantStats(t, st, "")
	if len(ts.PerLevel) != 2 || ts.PerLevel[0] != st.PerLevel[0] || ts.PerLevel[1] != st.PerLevel[1] {
		t.Fatalf("tenant PerLevel %+v differs from global %+v", ts.PerLevel, st.PerLevel)
	}
}

// TestStatsSnapshotIsolated pins the two serialization properties the
// cluster wire format relies on: Snapshot() shares no storage with
// later snapshots (mutating one cannot corrupt another), and the JSON
// field names are the stable wire contract.
func TestStatsSnapshotIsolated(t *testing.T) {
	b := newTestBench(t, 2)
	svc := b.newService(t, Config{MaxBatch: 2, Window: time.Minute})
	defer svc.Close()
	in := b.input()
	for k := 0; k < 2; k++ {
		ch, err := svc.Submit(context.Background(), Request{Input: in, Rot: k})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { <-ch }()
	}
	var st Stats
	waitUntil := time.Now().Add(5 * time.Second)
	for st = svc.Stats().Snapshot(); st.Served < 2 && time.Now().Before(waitUntil); st = svc.Stats().Snapshot() {
		time.Sleep(time.Millisecond)
	}
	if st.Served != 2 || len(st.PerLevel) == 0 || len(st.Tenants) == 0 {
		t.Fatalf("snapshot incomplete: %+v", st)
	}

	// Mutating the snapshot's slices must not leak into fresh ones.
	st.PerLevel[0].Switches = 999
	st.Tenants[0].PerLevel[0].ModUps = 999
	st.Keys.Tenants[0].Hits = 999
	fresh := svc.Stats().Snapshot()
	if fresh.PerLevel[0].Switches == 999 || fresh.Tenants[0].PerLevel[0].ModUps == 999 ||
		fresh.Keys.Tenants[0].Hits == 999 {
		t.Fatal("snapshot mutation visible in a fresh snapshot")
	}

	// The JSON wire names are a compatibility contract: a stats frame
	// written by one shard build must parse on another.
	raw, err := json.Marshal(fresh)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"submitted", "served", "failed", "batches", "groups", "mod_ups",
		"coalesced", "coalescing_factor", "keys", "p50", "p99", "per_level", "tenants",
	} {
		if _, ok := m[key]; !ok {
			t.Fatalf("stats JSON missing %q: %s", key, raw)
		}
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, fresh) {
		t.Fatalf("stats JSON round trip differs:\n%+v\n%+v", back, fresh)
	}
}
