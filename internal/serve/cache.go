package serve

// The rotation-key cache is the first of the service's three reuse
// layers (see the package comment): evaluation keys are the largest
// operands of hybrid key switching (dnum × 2 × N × (ℓ+K) words,
// 112–360 MB at paper scale — Table III), so a server cannot keep one
// resident per (tenant, rotation) forever. The cache bounds residency
// with LRU eviction, shares concurrent loads of the same key
// (singleflight), and exposes the hit/miss/eviction counters the load
// generator reports.
//
// Eviction is safe mid-flight by construction: Get hands out the
// *hks.Evk pointer, and an in-flight replay keeps it alive after the
// cache drops its reference — exactly like a DMA'd key staying pinned
// until the last consumer finishes. The eviction-mid-flight test in
// serve_test.go exercises this.

import (
	"container/list"
	"sync"

	"ciflow/internal/hks"
)

// KeyFunc loads (or generates) the evaluation key for one rotation
// amount — the cache's backing store. NewFromKeyChain adapts a
// ckks.KeyChain; tests inject counting loaders.
type KeyFunc func(rot int) (*hks.Evk, error)

// CacheStats is a point-in-time snapshot of the key cache counters.
// A Get that joins another caller's in-flight load counts as a hit
// (the load was shared); HitRate is hits over all Gets.
type CacheStats struct {
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

type keyEntry struct {
	rot int
	evk *hks.Evk
}

// keyLoad is one in-flight backing-store load, joined by every
// concurrent Get of the same rotation.
type keyLoad struct {
	done chan struct{}
	evk  *hks.Evk
	err  error
}

// keyCache is an LRU map rot → *hks.Evk with singleflight loading.
// Safe for concurrent use. The loader runs outside the cache lock, so
// slow key generation never blocks hits on other rotations.
type keyCache struct {
	load KeyFunc
	cap  int

	mu      sync.Mutex
	entries map[int]*list.Element // rot -> element in order
	order   *list.List            // front = most recently used *keyEntry
	loading map[int]*keyLoad

	hits, misses, evictions uint64
}

func newKeyCache(load KeyFunc, capacity int) *keyCache {
	return &keyCache{
		load:    load,
		cap:     capacity,
		entries: make(map[int]*list.Element),
		order:   list.New(),
		loading: make(map[int]*keyLoad),
	}
}

// Get returns the evaluation key for a rotation amount, loading it
// through the backing KeyFunc on a miss. Concurrent Gets of the same
// absent key share one load. The returned key remains valid after
// eviction; failed loads are not cached.
func (c *keyCache) Get(rot int) (*hks.Evk, error) {
	c.mu.Lock()
	if el, ok := c.entries[rot]; ok {
		c.order.MoveToFront(el)
		c.hits++
		evk := el.Value.(*keyEntry).evk
		c.mu.Unlock()
		return evk, nil
	}
	if l, ok := c.loading[rot]; ok {
		c.hits++ // shared someone else's load
		c.mu.Unlock()
		<-l.done
		return l.evk, l.err
	}
	c.misses++
	l := &keyLoad{done: make(chan struct{})}
	c.loading[rot] = l
	c.mu.Unlock()

	l.evk, l.err = c.load(rot)
	close(l.done)

	c.mu.Lock()
	delete(c.loading, rot)
	if l.err == nil {
		c.entries[rot] = c.order.PushFront(&keyEntry{rot: rot, evk: l.evk})
		for c.order.Len() > c.cap {
			back := c.order.Back()
			c.order.Remove(back)
			delete(c.entries, back.Value.(*keyEntry).rot)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return l.evk, l.err
}

// Stats snapshots the counters.
func (c *keyCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Capacity:  c.cap,
		Size:      c.order.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
