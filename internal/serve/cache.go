package serve

// The evaluation-key cache is the first of the service's reuse layers
// (see the package comment): evaluation keys are the largest operands
// of hybrid key switching (dnum × 2 × N × (ℓ+K) words, 112–360 MB at
// paper scale — Table III), so a server cannot keep one resident per
// (tenant, rotation, level) forever. The cache bounds residency by
// *bytes*, not key count — eviction is weighted by the material's
// SizeBytes under one global budget — because a level-5 key is an
// order of magnitude heavier than a level-0 key and a count cap would
// let the budget drift with the level mix.
//
// The cache stores hks.KeyMaterial, not dense keys: a KeySource that
// hands back seed-compressed material (SeedKeySource with compression
// on) is charged the *compressed* footprint, so the same byte budget
// holds roughly twice the keys, and the service expands on demand at
// replay time — streamed, overlapping the hoist phase. DenseBytes in
// the stats is the what-if dense footprint of the resident set; its
// ratio to Bytes is the measured compression the `ciflow serve` report
// and `ablate-keycomp` print.
//
// Residency is tenant-sharded: entries carry their KeyID's tenant,
// recency is tracked globally, and eviction takes the globally
// least-recently-used entry among tenants holding more than the
// per-tenant floor — so one hot tenant thrashing the cache cannot
// evict a light tenant's last keys (the budget stays hard: if every
// tenant is at its floor, plain LRU applies). Per-tenant hit, miss,
// eviction, and resident-byte counters feed the `ciflow serve` report.
//
// Eviction is safe mid-flight by construction: Get hands out the
// material reference, and an in-flight replay keeps it alive after the
// cache drops its own — exactly like a DMA'd key staying pinned until
// the last consumer finishes. The eviction-mid-flight test in
// serve_test.go exercises this.

import (
	"container/list"
	"sort"
	"sync"

	"ciflow/internal/hks"
)

// KeyID names one evaluation key in the keyspace: the tenant whose
// secret the key belongs to, the rotation amount, and the ciphertext
// level. Keys never cross tenants — KeyID is the cache key, the
// singleflight key, and the unit the KeySource resolves.
type KeyID struct {
	Tenant string
	Rot    int
	Level  int
}

// KeySource resolves KeyIDs to evaluation-key material — the cache's
// backing store. The result is hks.KeyMaterial, the sealed union over
// dense (*hks.Evk) and seed-compressed (*hks.CompressedEvk) keys, so a
// source chooses the residency form it hands the cache: compressed
// material is cached at its compressed footprint and expanded only at
// replay time. Implementations must be safe for concurrent use and
// should memoize (like ckks.KeyChain), so re-loading an evicted key
// returns identical material and served results stay bit-exact across
// evictions. SeedKeySource and KeyChains adapt ckks key chains; tests
// inject counting sources via KeyMaterialFunc (or the legacy
// KeySourceFunc).
type KeySource interface {
	Key(id KeyID) (hks.KeyMaterial, error)
}

// KeyMaterialFunc adapts a function to the KeySource interface.
type KeyMaterialFunc func(id KeyID) (hks.KeyMaterial, error)

// Key implements KeySource.
func (f KeyMaterialFunc) Key(id KeyID) (hks.KeyMaterial, error) { return f(id) }

// KeySourceFunc adapts a dense-key function to the KeySource
// interface — the pre-KeyMaterial contract, kept as a one-line
// compatibility shim so sources written against it keep compiling.
//
// Deprecated: implement KeySource directly (or use KeyMaterialFunc),
// which can also return compressed material.
type KeySourceFunc func(id KeyID) (*hks.Evk, error)

// Key implements KeySource.
func (f KeySourceFunc) Key(id KeyID) (hks.KeyMaterial, error) {
	evk, err := f(id)
	if err != nil || evk == nil {
		return nil, err
	}
	return evk, nil
}

// TenantCacheStats is one tenant's slice of the key cache: resident
// keys and bytes (with the dense-equivalent footprint alongside), and
// the hit/miss/eviction counters.
type TenantCacheStats struct {
	Tenant     string  `json:"tenant"`
	Size       int     `json:"size"`
	Bytes      int64   `json:"bytes"`
	DenseBytes int64   `json:"dense_bytes"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Evictions  uint64  `json:"evictions"`
	HitRate    float64 `json:"hit_rate"`
}

// CacheStats is a point-in-time snapshot of the key cache: the global
// byte budget and resident bytes, aggregate counters, and the
// per-tenant breakdown (sorted by tenant). A Get that joins another
// caller's in-flight load counts as a hit (the load was shared);
// HitRate is hits over all Gets.
type CacheStats struct {
	BudgetBytes int64 `json:"budget_bytes"`
	Bytes       int64 `json:"bytes"`
	// DenseBytes is what the resident set would occupy fully expanded;
	// DenseBytes/Bytes is the measured compression ratio (1.0 when
	// every resident key is dense).
	DenseBytes int64              `json:"dense_bytes"`
	Size       int                `json:"size"`
	Hits       uint64             `json:"hits"`
	Misses     uint64             `json:"misses"`
	Evictions  uint64             `json:"evictions"`
	HitRate    float64            `json:"hit_rate"`
	Tenants    []TenantCacheStats `json:"tenants"`
}

type cacheEntry struct {
	id         KeyID
	mat        hks.KeyMaterial
	bytes      int64 // resident footprint of the cached form
	denseBytes int64 // footprint once expanded (== bytes when dense)
}

// tenantShard carries one tenant's residency and counters. Recency
// lives in the cache-global list, not here: eviction weighs tenants
// against each other, so it needs one global order.
type tenantShard struct {
	size       int
	bytes      int64
	denseBytes int64

	hits, misses, evictions uint64
}

// keyLoad is one in-flight backing-store load, joined by every
// concurrent Get of the same KeyID.
type keyLoad struct {
	done chan struct{}
	mat  hks.KeyMaterial
	err  error
}

// keyCache is the tenant-sharded LRU map KeyID → hks.KeyMaterial under
// one global byte budget, with singleflight loading. Safe for
// concurrent use. The source runs outside the cache lock, so slow key
// generation never blocks hits on other keys.
type keyCache struct {
	src    KeySource
	budget int64
	floor  int // per-tenant resident keys protected from budget eviction

	mu         sync.Mutex
	entries    map[KeyID]*list.Element // id -> element in order
	order      *list.List              // front = most recently used *cacheEntry
	shards     map[string]*tenantShard
	loading    map[KeyID]*keyLoad
	bytes      int64
	denseBytes int64
}

func newKeyCache(src KeySource, budget int64, floor int) *keyCache {
	return &keyCache{
		src:     src,
		budget:  budget,
		floor:   floor,
		entries: make(map[KeyID]*list.Element),
		order:   list.New(),
		shards:  make(map[string]*tenantShard),
		loading: make(map[KeyID]*keyLoad),
	}
}

func (c *keyCache) shard(tenant string) *tenantShard {
	s, ok := c.shards[tenant]
	if !ok {
		s = &tenantShard{}
		c.shards[tenant] = s
	}
	return s
}

// Get returns the key material for id, loading it through the backing
// KeySource on a miss. Concurrent Gets of the same absent key share
// one load. The returned material remains valid after eviction; failed
// loads are not cached.
func (c *keyCache) Get(id KeyID) (hks.KeyMaterial, error) {
	c.mu.Lock()
	sh := c.shard(id.Tenant)
	if el, ok := c.entries[id]; ok {
		c.order.MoveToFront(el)
		sh.hits++
		mat := el.Value.(*cacheEntry).mat
		c.mu.Unlock()
		return mat, nil
	}
	if l, ok := c.loading[id]; ok {
		sh.hits++ // shared someone else's load
		c.mu.Unlock()
		<-l.done
		return l.mat, l.err
	}
	sh.misses++
	l := &keyLoad{done: make(chan struct{})}
	c.loading[id] = l
	c.mu.Unlock()

	l.mat, l.err = c.src.Key(id)
	close(l.done)

	c.mu.Lock()
	delete(c.loading, id)
	if l.err == nil && l.mat != nil {
		e := &cacheEntry{
			id:         id,
			mat:        l.mat,
			bytes:      int64(l.mat.SizeBytes()),
			denseBytes: int64(l.mat.DenseSizeBytes()),
		}
		c.entries[id] = c.order.PushFront(e)
		sh := c.shard(id.Tenant)
		sh.size++
		sh.bytes += e.bytes
		sh.denseBytes += e.denseBytes
		c.bytes += e.bytes
		c.denseBytes += e.denseBytes
		c.evictLocked()
	}
	c.mu.Unlock()
	return l.mat, l.err
}

// evictLocked drops least-recently-used entries until resident bytes
// fit the budget. Victims are preferentially taken from tenants above
// the per-tenant floor; if every tenant is at its floor the budget
// still wins and plain LRU applies. Terminates because each pass
// removes one entry.
func (c *keyCache) evictLocked() {
	for c.bytes > c.budget && c.order.Len() > 0 {
		var victim *list.Element
		for el := c.order.Back(); el != nil; el = el.Prev() {
			if c.shards[el.Value.(*cacheEntry).id.Tenant].size > c.floor {
				victim = el
				break
			}
		}
		if victim == nil {
			victim = c.order.Back()
		}
		e := victim.Value.(*cacheEntry)
		c.order.Remove(victim)
		delete(c.entries, e.id)
		sh := c.shards[e.id.Tenant]
		sh.size--
		sh.bytes -= e.bytes
		sh.denseBytes -= e.denseBytes
		sh.evictions++
		c.bytes -= e.bytes
		c.denseBytes -= e.denseBytes
	}
}

// Stats snapshots the counters, globally and per tenant.
func (c *keyCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		BudgetBytes: c.budget,
		Bytes:       c.bytes,
		DenseBytes:  c.denseBytes,
		Size:        c.order.Len(),
	}
	names := make([]string, 0, len(c.shards))
	for name := range c.shards {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sh := c.shards[name]
		ts := TenantCacheStats{
			Tenant:     name,
			Size:       sh.size,
			Bytes:      sh.bytes,
			DenseBytes: sh.denseBytes,
			Hits:       sh.hits,
			Misses:     sh.misses,
			Evictions:  sh.evictions,
		}
		if total := ts.Hits + ts.Misses; total > 0 {
			ts.HitRate = float64(ts.Hits) / float64(total)
		}
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Tenants = append(st.Tenants, ts)
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
