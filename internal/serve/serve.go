// Package serve is an in-process, multi-tenant key-switching service:
// it accepts a stream of rotation/key-switch requests — each addressed
// to an explicit keyspace (tenant) and ciphertext level — and
// schedules them onto the internal/engine worker pool with the same
// reuse logic CiFlow applies inside one switch, lifted one level up —
// across requests.
//
// The paper's argument is that key switching is dominated by data
// movement, above all by evaluation-key traffic, so a serving layer
// lives or dies by how it manages key residency across the request
// stream. A server handling many rotations for many tenants at many
// levels has redundancy between requests, and serve removes it with
// three layers while keeping keyspaces strictly apart:
//
//  1. An evaluation-key cache (cache.go): a tenant-sharded LRU over
//     KeyID{Tenant, Rot, Level}, bounded by one global *byte* budget
//     with eviction weighted by the resident material's SizeBytes, a
//     per-tenant residency floor, singleflight loading, and per-tenant
//     hit/miss/eviction/byte accounting. The cache stores
//     hks.KeyMaterial: a source handing back seed-compressed keys
//     (hks.CompressedEvk) is charged roughly half the dense footprint,
//     so one budget holds twice the working set, and the service
//     expands at replay time — streamed digit-by-digit, overlapped
//     with the group's hoist phase, bit-exact with the dense path.
//  2. A hoisted-state coalescer: concurrent requests of one tenant on
//     the same input polynomial at the same level are grouped into one
//     shared hks.Hoisted Decompose+ModUp, replaying only
//     ApplyKey+ModDown per key. Coalescing is scoped to the
//     (tenant, level, input, dataflow) group, so keyspaces never share
//     hoisted state.
//  3. Per-tenant micro-batching with isolation: every tenant gets its
//     own dispatcher goroutine and its own bounded submit queue
//     (capacity Config.QueueDepth each), gathered for at most Window
//     and closed early at MaxBatch. Backpressure is per tenant — a hot
//     tenant saturating its queue blocks only its own producers, and a
//     tenant's slow key loads stall only its own dispatcher — while
//     all tenants share one engine and one switcher pool.
//
// Requests carry a Level, and the service lazily resolves one
// hks.Switcher per level through its SwitcherSource (hks.SwitcherPool
// or ckks.KeyChain), so a rescale-heavy multi-level stream is served
// by one Service instance instead of one per (tenant, level).
//
// Every served result is bit-exact with a direct hks.KeySwitch or
// hks.SwitchHoisted of the same input and key — coalescing and
// batching change scheduling, never values — which is what the
// equivalence tests in this package assert under -race.
//
// The service operates at the hks layer: a request carries the
// key-switch input polynomial (for a rotation, the ciphertext's c1 in
// hoisting form) and a rotation amount that the key cache resolves —
// through the request's KeyID — to an evaluation key. KeyChains (and
// the one-tenant NewFromKeyChain shim) wire the cache to
// ckks.KeyChain.HoistKey; finishing a rotation (Galois automorphism of
// the switched pair plus c0 addition) is cheap and stays with the
// caller. The `ciflow serve` load generator drives this package and
// reports ops/sec, tail latency, cache hit rate, coalescing factor,
// and the per-tenant breakdown of all four.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: service closed")

// SwitcherSource resolves ciphertext levels to switchers — the
// service's routing table for multi-level streams. Implementations
// must be safe for concurrent use, memoize (Submit resolves the level
// of every request through this), and return the same switcher for
// repeated calls at one level (*hks.SwitcherPool and *ckks.KeyChain
// both qualify). Switchers hold no secret material, so one source
// serves every tenant.
type SwitcherSource interface {
	Switcher(level int) (*hks.Switcher, error)
}

// SwitcherSourceFunc adapts a function to the SwitcherSource interface.
type SwitcherSourceFunc func(level int) (*hks.Switcher, error)

// Switcher implements SwitcherSource.
func (f SwitcherSourceFunc) Switcher(level int) (*hks.Switcher, error) { return f(level) }

// TenantChecker is an optional KeySource extension: a source that can
// tell cheaply whether a tenant exists lets Submit reject requests for
// unknown tenants *before* allocating that tenant's dispatcher, queue,
// and cache shard — which otherwise live until Close. Services fed
// untrusted tenant names should use a KeySource that implements it
// (KeyChains does); without it an unknown tenant still fails, but only
// at key-load time, after its worker exists.
type TenantChecker interface {
	HasTenant(tenant string) bool
}

// Request is one key-switch to perform: switch Input (NTT domain over
// B_Level) with tenant Tenant's evaluation key for rotation amount
// Rot, scheduling the work under Dataflow (the zero value is
// dataflow.MP). Tenant names the keyspace — the zero value "" is the
// single keyspace of a one-tenant service. Level selects the
// ciphertext level; the zero value routes to Config.DefaultLevel, so
// a stream at literal level 0 needs DefaultLevel left at 0. Requests
// submitted concurrently by one tenant with the same Input pointer,
// Level, and Dataflow coalesce onto one shared hoisted ModUp;
// requests of different tenants never coalesce.
type Request struct {
	Input    *ring.Poly
	Rot      int
	Dataflow dataflow.Dataflow
	Tenant   string
	Level    int
}

// Result is the switched pair (c0, c1) over B_Level, or the error that
// prevented serving the request (key-load failure or a context
// cancelled while the request was still queued).
type Result struct {
	C0, C1 *ring.Poly
	Err    error
}

// Config tunes the service; zero values select the documented
// defaults.
type Config struct {
	// Engine executes the hoist/replay graphs and the per-batch group
	// fan-out, shared by every tenant and level. Nil selects
	// engine.Default(). The service does not close it.
	Engine *engine.Engine
	// KeyBudget bounds the bytes of evaluation keys resident in the
	// cache, across all tenants (default 256 MiB). Eviction is LRU
	// weighted by the resident material's SizeBytes — compressed keys
	// are charged their compressed footprint; see cache.go.
	KeyBudget int64
	// TenantKeyFloor is the number of resident keys per tenant that
	// budget eviction prefers to spare (default 1): victims are taken
	// from tenants above their floor while any exist, so a hot tenant
	// cannot strip a light tenant bare. The budget stays hard.
	TenantKeyFloor int
	// MaxBatch closes a tenant's gather window early once this many
	// requests are pending (default 64).
	MaxBatch int
	// Window is how long a tenant's dispatcher waits for more requests
	// after the first one of a batch arrives (default 200µs). Under
	// load the queue is never empty and the window is irrelevant;
	// idle, it is the latency cost of batching.
	Window time.Duration
	// QueueDepth bounds each tenant's submit queue (default
	// 4×MaxBatch). A full queue blocks that tenant's Submit —
	// backpressure — until its dispatcher drains or the submitter's
	// context is cancelled; other tenants' queues are unaffected.
	QueueDepth int
	// DefaultLevel is the ciphertext level served when a request
	// leaves Level at its zero value (default 0). The one-tenant
	// NewFromKeyChain constructor sets it to the chain level.
	DefaultLevel int
}

func (cfg Config) withDefaults() Config {
	if cfg.Engine == nil {
		cfg.Engine = engine.Default()
	}
	if cfg.KeyBudget <= 0 {
		cfg.KeyBudget = 256 << 20
	}
	if cfg.TenantKeyFloor <= 0 {
		cfg.TenantKeyFloor = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 200 * time.Microsecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	return cfg
}

// pending is one queued request with its completion channel. The
// request's Level is already normalized (DefaultLevel applied) and its
// switcher resolved, so the dispatcher never re-routes.
type pending struct {
	req  Request
	sw   *hks.Switcher
	ctx  context.Context // nil = no cancellation
	enq  time.Time
	deq  time.Time // set at queue pop; enq→deq is the enqueue phase
	done chan Result
}

// tenantWorker is one tenant's dispatcher: a bounded queue, the
// goroutine micro-batching it, and the tenant's service counters.
// Workers are created lazily at a tenant's first Submit and live until
// Close.
type tenantWorker struct {
	tenant string
	queue  chan *pending
	done   chan struct{} // dispatcher exit

	// mu guards closed against the queue send in Submit. The lock is
	// *per worker* so that a Submit blocked on this tenant's full
	// queue (it holds the read lock across the send) can only hold up
	// this tenant's Close step and this tenant's other producers —
	// never another tenant's Submit. Close's write lock still makes
	// progress because the dispatcher keeps draining the queue.
	mu     sync.RWMutex
	closed bool

	stats  serviceCounters
	levels levelCounters
	lats   latencyRecorder
	phases phaseCounters
}

// send enqueues under the worker's read lock so Close cannot close the
// queue beneath an in-flight sender.
func (w *tenantWorker) send(p *pending, cancel <-chan struct{}) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	select {
	case w.queue <- p:
		w.stats.submitted.Add(1)
		return nil
	case <-cancel:
		return p.ctx.Err()
	}
}

// Service is the multi-tenant batching key-switch service. Construct
// with New (or the one-tenant NewFromKeyChain), submit with Submit/Do,
// observe with Stats, and Close to drain. Safe for concurrent use.
type Service struct {
	src  SwitcherSource
	keys *keyCache
	cfg  Config

	// mu guards closed and the workers map. Critical sections under it
	// are short and never block on queue space (sends synchronize on
	// the per-worker lock instead), so one tenant's backpressure can
	// not stall another tenant's Submit here.
	mu      sync.RWMutex
	closed  bool
	workers map[string]*tenantWorker

	stats  serviceCounters
	levels levelCounters
	lats   latencyRecorder
	phases phaseCounters
}

// phase records one lifecycle phase duration on both the tenant's and
// the service's books.
func (s *Service) phase(w *tenantWorker, ph int, d time.Duration) {
	w.phases.add(ph, d)
	s.phases.add(ph, d)
}

// New starts a service routing levels through switchers and loading
// evaluation keys through keys. Callers own the engine; Close only
// stops the service's dispatchers.
func New(switchers SwitcherSource, keys KeySource, cfg Config) (*Service, error) {
	if switchers == nil {
		return nil, fmt.Errorf("serve: nil switcher source")
	}
	if keys == nil {
		return nil, fmt.Errorf("serve: nil key source")
	}
	cfg = cfg.withDefaults()
	s := &Service{
		src:     switchers,
		keys:    newKeyCache(keys, cfg.KeyBudget, cfg.TenantKeyFloor),
		cfg:     cfg,
		workers: make(map[string]*tenantWorker),
	}
	return s, nil
}

// worker returns (creating and starting if needed) the dispatcher for
// a tenant.
func (s *Service) worker(tenant string) (*tenantWorker, error) {
	s.mu.RLock()
	w, ok := s.workers[tenant]
	s.mu.RUnlock()
	if ok {
		return w, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if w, ok := s.workers[tenant]; ok {
		return w, nil
	}
	w = &tenantWorker{
		tenant: tenant,
		queue:  make(chan *pending, s.cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	s.workers[tenant] = w
	go s.dispatch(w)
	return w, nil
}

// isClosed is the fail-fast check; the authoritative one happens under
// the worker's lock at send time.
func (s *Service) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Submit enqueues a request on its tenant's queue and returns its
// completion channel, which receives exactly one Result. It blocks
// only when that tenant's queue is full (per-tenant backpressure); ctx
// cancels the wait for queue space and, if the request is still queued
// when ctx is cancelled, the Result carries the context error instead
// of outputs. A nil ctx never cancels.
func (s *Service) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	// Reject unknown tenants before the level resolution and worker
	// creation below allocate anything on their behalf — when the key
	// source can tell (see TenantChecker).
	if tc, ok := s.keys.src.(TenantChecker); ok && !tc.HasTenant(req.Tenant) {
		return nil, fmt.Errorf("serve: unknown tenant %q", req.Tenant)
	}
	if req.Level == 0 {
		req.Level = s.cfg.DefaultLevel
	}
	sw, err := s.src.Switcher(req.Level)
	if err != nil {
		return nil, err
	}
	if sw == nil {
		return nil, fmt.Errorf("serve: switcher source returned nil for level %d", req.Level)
	}
	if err := sw.CheckInput(req.Input); err != nil {
		return nil, err
	}
	// Reject unknown dataflows here: past this point the request runs
	// on the tenant's dispatcher goroutine, where a panic would take
	// down that tenant's stream rather than one request.
	switch req.Dataflow {
	case dataflow.MP, dataflow.DC, dataflow.OC, dataflow.OCF:
	default:
		return nil, fmt.Errorf("serve: unknown dataflow %v", req.Dataflow)
	}
	w, err := s.worker(req.Tenant)
	if err != nil {
		return nil, err
	}
	p := &pending{req: req, sw: sw, ctx: ctx, enq: time.Now(), done: make(chan Result, 1)}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	if err := w.send(p, cancel); err != nil {
		return nil, err
	}
	s.stats.submitted.Add(1)
	return p.done, nil
}

// Do is Submit plus waiting for the result. Queue-level failures are
// folded into Result.Err.
func (s *Service) Do(ctx context.Context, req Request) Result {
	ch, err := s.Submit(ctx, req)
	if err != nil {
		return Result{Err: err}
	}
	return <-ch
}

// Close stops accepting requests, waits for every queued request of
// every tenant to be served, and stops the dispatchers. Safe to call
// more than once. Close drains by contract, so a tenant whose
// dispatcher is wedged in a key load holds it up.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	workers := make([]*tenantWorker, 0, len(s.workers))
	for _, w := range s.workers {
		workers = append(workers, w)
	}
	s.mu.Unlock()
	if !already {
		for _, w := range workers {
			// The write lock waits out in-flight senders (their read
			// lock spans the send), so nothing can send on the closed
			// queue.
			w.mu.Lock()
			w.closed = true
			w.mu.Unlock()
			close(w.queue)
		}
	}
	for _, w := range workers {
		<-w.done
	}
}

// ---- Per-tenant dispatchers: adaptive micro-batching ----

func (s *Service) dispatch(w *tenantWorker) {
	defer close(w.done)
	for {
		p, ok := <-w.queue
		if !ok {
			return
		}
		p.deq = time.Now()
		s.phase(w, phaseEnqueue, p.deq.Sub(p.enq))
		s.runBatch(w, s.gather(w, []*pending{p}))
	}
}

// gather fills the batch from the tenant's queue until MaxBatch
// requests are pending or Window has elapsed since the batch opened. A
// backlogged queue fills the batch without ever touching the timer.
func (s *Service) gather(w *tenantWorker, batch []*pending) []*pending {
	if len(batch) >= s.cfg.MaxBatch {
		return batch
	}
	timer := time.NewTimer(s.cfg.Window)
	defer timer.Stop()
	for {
		select {
		case p, ok := <-w.queue:
			if !ok {
				return batch
			}
			p.deq = time.Now()
			s.phase(w, phaseEnqueue, p.deq.Sub(p.enq))
			batch = append(batch, p)
			if len(batch) >= s.cfg.MaxBatch {
				return batch
			}
		case <-timer.C:
			return batch
		}
	}
}

// groupKey routes a request within one tenant's batch: the same input
// at the same level under the same dataflow shares one hoisted ModUp.
// Distinct dataflows on one input stay separate — they need
// differently shaped hoist graphs — and distinct levels run on
// different switchers. The tenant is fixed per batch (batches never
// span tenants), so keyspaces cannot share a group by construction.
type groupKey struct {
	in    *ring.Poly
	df    dataflow.Dataflow
	level int
}

// runBatch groups one tenant's batch by (level, input, dataflow) and
// executes the groups concurrently on the shared engine. Group
// execution nests engine parallel sections (the hoist and replay
// graphs), which the engine supports by construction.
func (s *Service) runBatch(w *tenantWorker, batch []*pending) {
	w.stats.batches.Add(1)
	s.stats.batches.Add(1)
	var order []groupKey
	groups := make(map[groupKey][]*pending, len(batch))
	for _, p := range batch {
		k := groupKey{in: p.req.Input, df: p.req.Dataflow, level: p.req.Level}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	w.stats.groups.Add(uint64(len(order)))
	s.stats.groups.Add(uint64(len(order)))
	tr := obs.ActiveTracer()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	s.cfg.Engine.ParallelFor(len(order), func(i int) {
		s.runGroup(w, order[i], groups[order[i]])
	})
	if tr != nil {
		tr.SpanTrack("serve", "batch/"+w.tenant, t0, time.Now())
	}
}

// runGroup serves one coalesced group: requests whose context died in
// the queue are failed, a singleton takes the direct per-rotation
// path, and two or more requests share one hoisted Decompose+ModUp
// with a per-key replay — the exact hks.SwitchHoisted structure, so
// results are bit-exact with independent switches. All requests of a
// group share one pending's switcher (the group key pins the level).
func (s *Service) runGroup(w *tenantWorker, g groupKey, ps []*pending) {
	now := time.Now()
	for _, p := range ps {
		s.phase(w, phaseDispatch, now.Sub(p.deq))
	}
	live := ps[:0]
	for _, p := range ps {
		if p.ctx != nil && p.ctx.Err() != nil {
			s.finish(w, p, Result{Err: p.ctx.Err()})
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	sw := live[0].sw

	if len(live) == 1 {
		p := live[0]
		mat, st, err := s.getKey(w, sw, KeyID{Tenant: w.tenant, Rot: p.req.Rot, Level: g.level})
		if err != nil {
			s.finish(w, p, Result{Err: err})
			return
		}
		w.stats.modUps.Add(1)
		s.stats.modUps.Add(1)
		c0 := sw.R.NewPoly(sw.QBasis())
		c1 := sw.R.NewPoly(sw.QBasis())
		if st != nil {
			// Compressed key: the seed expansion started in getKey runs
			// while HoistParallel executes Decompose+ModUp, and the
			// streamed replay consumes digits as both become ready.
			t0 := time.Now()
			h := sw.HoistParallel(s.cfg.Engine, g.df, p.req.Input)
			t1 := time.Now()
			h.SwitchStreamedInto(st, c0, c1)
			h.Release()
			s.phase(w, phaseHoist, t1.Sub(t0))
			s.phase(w, phaseReplay, time.Since(t1))
		} else {
			// The dense singleton runs as one fused switch; there is no
			// separate hoist to split out, so it all books as replay.
			t0 := time.Now()
			sw.SwitchParallelInto(s.cfg.Engine, g.df, p.req.Input, mat.(*hks.Evk), c0, c1)
			s.phase(w, phaseReplay, time.Since(t0))
		}
		// Level counters land before the result delivers, so a caller
		// that snapshots Stats after receiving its last result sees a
		// per-level breakdown consistent with the totals.
		w.levels.add(g.level, 1, 1, 0)
		s.levels.add(g.level, 1, 1, 0)
		s.finish(w, p, Result{C0: c0, C1: c1})
		return
	}

	w.stats.coalesced.Add(uint64(len(live)))
	s.stats.coalesced.Add(uint64(len(live)))
	w.stats.modUps.Add(1)
	s.stats.modUps.Add(1)
	// One hoisted ModUp for the group regardless of per-key failures
	// (it runs either way), and the whole group's coalesce credit with
	// it; each request's switch is counted just before its result
	// delivers, so the level slices always sum to the Served/ModUps/
	// Coalesced totals a concurrent snapshot observes.
	w.levels.add(g.level, 0, 1, uint64(len(live)))
	s.levels.add(g.level, 0, 1, uint64(len(live)))
	// Resolve every member's key material *before* hoisting: compressed
	// entries start their seed expansions here, so all of them overlap
	// the one Decompose+ModUp below instead of serializing after it.
	type member struct {
		p   *pending
		mat hks.KeyMaterial
		st  *hks.ExpandStream
	}
	members := make([]member, 0, len(live))
	for _, p := range live {
		mat, st, err := s.getKey(w, sw, KeyID{Tenant: w.tenant, Rot: p.req.Rot, Level: g.level})
		if err != nil {
			s.finish(w, p, Result{Err: err})
			continue
		}
		members = append(members, member{p: p, mat: mat, st: st})
	}
	t0 := time.Now()
	h := sw.HoistParallel(s.cfg.Engine, g.df, g.in)
	s.phase(w, phaseHoist, time.Since(t0))
	defer h.Release()
	for _, m := range members {
		c0 := sw.R.NewPoly(sw.QBasis())
		c1 := sw.R.NewPoly(sw.QBasis())
		t1 := time.Now()
		if m.st != nil {
			h.SwitchStreamedInto(m.st, c0, c1)
		} else {
			h.SwitchParallelInto(s.cfg.Engine, m.mat.(*hks.Evk), c0, c1)
		}
		s.phase(w, phaseReplay, time.Since(t1))
		w.levels.add(g.level, 1, 0, 0)
		s.levels.add(g.level, 1, 0, 0)
		s.finish(w, m.p, Result{C0: c0, C1: c1})
	}
}

// getKey loads evaluation-key material through the cache and validates
// its digit structure, so a misbehaving KeySource fails the one request
// instead of panicking an engine worker. For compressed material it
// also starts the streamed seed expansion (counted per use: expansion
// happens on hits too — that is the compression trade) and returns the
// stream; dense material returns a nil stream and is applied directly.
func (s *Service) getKey(w *tenantWorker, sw *hks.Switcher, id KeyID) (hks.KeyMaterial, *hks.ExpandStream, error) {
	t0 := time.Now()
	defer func() { s.phase(w, phaseKeys, time.Since(t0)) }()
	mat, err := s.keys.Get(id)
	if err != nil {
		return nil, nil, err
	}
	if err := sw.CheckMaterial(mat); err != nil {
		return nil, nil, err
	}
	if c, ok := mat.(*hks.CompressedEvk); ok {
		w.stats.expanded.Add(1)
		s.stats.expanded.Add(1)
		return mat, c.StartExpand(sw.R), nil
	}
	return mat, nil, nil
}

func (s *Service) finish(w *tenantWorker, p *pending, res Result) {
	t0 := time.Now()
	if res.Err != nil {
		w.stats.failed.Add(1)
		s.stats.failed.Add(1)
	} else {
		w.stats.served.Add(1)
		s.stats.served.Add(1)
		lat := t0.Sub(p.enq)
		w.lats.record(lat)
		s.lats.record(lat)
	}
	p.done <- res // buffered; never blocks
	s.phase(w, phaseReply, time.Since(t0))
}

// tenantStatsLocked assembles the per-tenant service stats; the caller
// holds s.mu (read) and supplies the cache's per-tenant snapshot.
func (s *Service) tenantStatsLocked(keys map[string]TenantCacheStats) []TenantStats {
	names := make([]string, 0, len(s.workers))
	for name := range s.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		w := s.workers[name]
		ts := TenantStats{
			Tenant:        name,
			Submitted:     w.stats.submitted.Load(),
			Served:        w.stats.served.Load(),
			Failed:        w.stats.failed.Load(),
			Batches:       w.stats.batches.Load(),
			Groups:        w.stats.groups.Load(),
			ModUps:        w.stats.modUps.Load(),
			Coalesced:     w.stats.coalesced.Load(),
			KeyExpansions: w.stats.expanded.Load(),
			Keys:          keys[name],
		}
		if ts.ModUps > 0 {
			ts.CoalescingFactor = float64(ts.Served) / float64(ts.ModUps)
		}
		ts.P50, ts.P99 = w.lats.percentiles()
		ts.PerLevel = w.levels.snapshot()
		ts.Phases = w.phases.snapshot()
		out = append(out, ts)
	}
	return out
}
