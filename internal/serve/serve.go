// Package serve is an in-process key-switching service: it accepts a
// stream of rotation/key-switch requests and schedules them onto the
// internal/engine worker pool with the same reuse logic CiFlow applies
// inside one switch, lifted one level up — across requests.
//
// The paper's argument is that key switching is dominated by data
// movement and that reorganizing the dataflow turns redundant loads
// into shared state. A server handling many rotations for many clients
// has the same redundancy between requests, and serve removes it with
// three layers:
//
//  1. A rotation-key cache (cache.go): an LRU over evaluation keys —
//     the largest operands in the pipeline — with singleflight
//     loading, bounded residency, and hit/miss/eviction accounting.
//  2. A hoisted-state coalescer: concurrent requests on the same input
//     polynomial are grouped into one shared hks.Hoisted
//     Decompose+ModUp, replaying only ApplyKey+ModDown per key — the
//     rotation fan-out of the diagonal method, amortized even when the
//     requests arrive independently.
//  3. Adaptive micro-batching with per-dataflow routing and
//     backpressure: requests gather for at most Window (the window
//     closes early at MaxBatch, so a loaded service batches at full
//     speed and an idle one adds at most Window of latency), each
//     batch is grouped by (input, dataflow) and the groups execute
//     concurrently on the engine, each under its requested MP/DC/OC
//     graph shape. The bounded submit queue pushes back on producers
//     instead of buffering unboundedly.
//
// Every served result is bit-exact with a direct hks.KeySwitch or
// hks.SwitchHoisted of the same input and key — coalescing and
// batching change scheduling, never values — which is what the
// equivalence tests in this package assert under -race.
//
// The service operates at the hks layer: a request carries the
// key-switch input polynomial (for a rotation, the ciphertext's c1 in
// hoisting form) and a rotation amount that the key cache resolves to
// an evaluation key. NewFromKeyChain wires the cache to
// ckks.KeyChain.HoistKey; finishing a rotation (Galois automorphism of
// the switched pair plus c0 addition) is cheap and stays with the
// caller. The `ciflow serve` load generator drives this package and
// reports ops/sec, tail latency, cache hit rate, and coalescing
// factor.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: service closed")

// Request is one key-switch to perform: switch Input (NTT domain over
// the switcher's B_ℓ) with the evaluation key for rotation amount Rot,
// scheduling the work under Dataflow (the zero value is dataflow.MP).
// Requests submitted concurrently with the same Input pointer and
// Dataflow coalesce onto one shared hoisted ModUp.
type Request struct {
	Input    *ring.Poly
	Rot      int
	Dataflow dataflow.Dataflow
}

// Result is the switched pair (c0, c1) over B_ℓ, or the error that
// prevented serving the request (key-load failure or a context
// cancelled while the request was still queued).
type Result struct {
	C0, C1 *ring.Poly
	Err    error
}

// Config tunes the service; zero values select the documented
// defaults.
type Config struct {
	// Engine executes the hoist/replay graphs and the per-batch group
	// fan-out. Nil selects engine.Default(). The service does not
	// close it.
	Engine *engine.Engine
	// KeyCapacity bounds the rotation-key LRU (default 64 keys).
	KeyCapacity int
	// MaxBatch closes the gather window early once this many requests
	// are pending (default 64).
	MaxBatch int
	// Window is how long the dispatcher waits for more requests after
	// the first one of a batch arrives (default 200µs). Under load the
	// queue is never empty and the window is irrelevant; idle, it is
	// the latency cost of batching.
	Window time.Duration
	// QueueDepth bounds the submit queue (default 4×MaxBatch). A full
	// queue blocks Submit — backpressure — until the dispatcher drains
	// or the submitter's context is cancelled.
	QueueDepth int
}

func (cfg Config) withDefaults() Config {
	if cfg.Engine == nil {
		cfg.Engine = engine.Default()
	}
	if cfg.KeyCapacity <= 0 {
		cfg.KeyCapacity = 64
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 200 * time.Microsecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	return cfg
}

// pending is one queued request with its completion channel.
type pending struct {
	req  Request
	ctx  context.Context // nil = no cancellation
	enq  time.Time
	done chan Result
}

// Service is the batching key-switch service. Construct with New or
// NewFromKeyChain, submit with Submit/Do, observe with Stats, and
// Close to drain. Safe for concurrent use.
type Service struct {
	sw   *hks.Switcher
	keys *keyCache
	cfg  Config

	queue chan *pending

	subMu  sync.RWMutex // guards closed against the queue send in Submit
	closed bool
	done   chan struct{} // dispatcher exit

	stats serviceCounters
	lats  latencyRecorder
}

// New starts a service switching with sw, loading rotation keys
// through keys. Callers own sw and the engine; Close only stops the
// service's dispatcher.
func New(sw *hks.Switcher, keys KeyFunc, cfg Config) (*Service, error) {
	if sw == nil {
		return nil, fmt.Errorf("serve: nil switcher")
	}
	if keys == nil {
		return nil, fmt.Errorf("serve: nil key loader")
	}
	cfg = cfg.withDefaults()
	s := &Service{
		sw:    sw,
		keys:  newKeyCache(keys, cfg.KeyCapacity),
		cfg:   cfg,
		queue: make(chan *pending, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	go s.dispatch()
	return s, nil
}

// Submit enqueues a request and returns its completion channel, which
// receives exactly one Result. It blocks only when the queue is full
// (backpressure); ctx cancels the wait for queue space and, if the
// request is still queued when ctx is cancelled, the Result carries
// the context error instead of outputs. A nil ctx never cancels.
func (s *Service) Submit(ctx context.Context, req Request) (<-chan Result, error) {
	if err := s.sw.CheckInput(req.Input); err != nil {
		return nil, err
	}
	// Reject unknown dataflows here: past this point the request runs
	// on the dispatcher goroutine, where a panic would take down the
	// whole service rather than one request.
	switch req.Dataflow {
	case dataflow.MP, dataflow.DC, dataflow.OC, dataflow.OCF:
	default:
		return nil, fmt.Errorf("serve: unknown dataflow %v", req.Dataflow)
	}
	p := &pending{req: req, ctx: ctx, enq: time.Now(), done: make(chan Result, 1)}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	// The read lock spans the send so Close cannot close the queue
	// under an in-flight sender; the dispatcher keeps draining, so the
	// send (and therefore Close's write lock) always makes progress.
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	select {
	case s.queue <- p:
		s.stats.submitted.Add(1)
		return p.done, nil
	case <-cancel:
		return nil, ctx.Err()
	}
}

// Do is Submit plus waiting for the result. Queue-level failures are
// folded into Result.Err.
func (s *Service) Do(ctx context.Context, req Request) Result {
	ch, err := s.Submit(ctx, req)
	if err != nil {
		return Result{Err: err}
	}
	return <-ch
}

// Close stops accepting requests, waits for every queued request to
// be served, and stops the dispatcher. Safe to call more than once.
func (s *Service) Close() {
	s.subMu.Lock()
	already := s.closed
	s.closed = true
	s.subMu.Unlock()
	if !already {
		// No sender can be in flight: senders hold the read lock and
		// check closed first.
		close(s.queue)
	}
	<-s.done
}

// ---- Dispatcher: adaptive micro-batching ----

func (s *Service) dispatch() {
	defer close(s.done)
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		s.runBatch(s.gather([]*pending{p}))
	}
}

// gather fills the batch from the queue until MaxBatch requests are
// pending or Window has elapsed since the batch opened. A backlogged
// queue fills the batch without ever touching the timer.
func (s *Service) gather(batch []*pending) []*pending {
	if len(batch) >= s.cfg.MaxBatch {
		return batch
	}
	timer := time.NewTimer(s.cfg.Window)
	defer timer.Stop()
	for {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return batch
			}
			batch = append(batch, p)
			if len(batch) >= s.cfg.MaxBatch {
				return batch
			}
		case <-timer.C:
			return batch
		}
	}
}

// groupKey routes a request: same input and same dataflow share one
// hoisted ModUp. Distinct dataflows on one input stay separate — they
// need differently shaped hoist graphs.
type groupKey struct {
	in *ring.Poly
	df dataflow.Dataflow
}

// runBatch groups the batch by (input, dataflow) and executes the
// groups concurrently on the engine. Group execution nests engine
// parallel sections (the hoist and replay graphs), which the engine
// supports by construction.
func (s *Service) runBatch(batch []*pending) {
	s.stats.batches.Add(1)
	var order []groupKey
	groups := make(map[groupKey][]*pending, len(batch))
	for _, p := range batch {
		k := groupKey{in: p.req.Input, df: p.req.Dataflow}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	s.stats.groups.Add(uint64(len(order)))
	s.cfg.Engine.ParallelFor(len(order), func(i int) {
		s.runGroup(order[i].df, order[i].in, groups[order[i]])
	})
}

// runGroup serves one coalesced group: requests whose context died in
// the queue are failed, a singleton takes the direct per-rotation
// path, and two or more requests share one hoisted Decompose+ModUp
// with a per-key replay — the exact hks.SwitchHoisted structure, so
// results are bit-exact with independent switches.
func (s *Service) runGroup(df dataflow.Dataflow, in *ring.Poly, ps []*pending) {
	live := ps[:0]
	for _, p := range ps {
		if p.ctx != nil && p.ctx.Err() != nil {
			s.finish(p, Result{Err: p.ctx.Err()})
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	if len(live) == 1 {
		p := live[0]
		evk, err := s.getKey(p.req.Rot)
		if err != nil {
			s.finish(p, Result{Err: err})
			return
		}
		s.stats.modUps.Add(1)
		c0 := s.sw.R.NewPoly(s.sw.QBasis())
		c1 := s.sw.R.NewPoly(s.sw.QBasis())
		s.sw.SwitchParallelInto(s.cfg.Engine, df, in, evk, c0, c1)
		s.finish(p, Result{C0: c0, C1: c1})
		return
	}

	s.stats.coalesced.Add(uint64(len(live)))
	s.stats.modUps.Add(1)
	h := s.sw.HoistParallel(s.cfg.Engine, df, in)
	defer h.Release()
	for _, p := range live {
		evk, err := s.getKey(p.req.Rot)
		if err != nil {
			s.finish(p, Result{Err: err})
			continue
		}
		c0 := s.sw.R.NewPoly(s.sw.QBasis())
		c1 := s.sw.R.NewPoly(s.sw.QBasis())
		h.SwitchParallelInto(s.cfg.Engine, evk, c0, c1)
		s.finish(p, Result{C0: c0, C1: c1})
	}
}

// getKey loads a rotation key through the cache and validates its
// digit structure, so a misbehaving KeyFunc fails the one request
// instead of panicking an engine worker.
func (s *Service) getKey(rot int) (*hks.Evk, error) {
	evk, err := s.keys.Get(rot)
	if err != nil {
		return nil, err
	}
	if err := s.sw.CheckEvk(evk); err != nil {
		return nil, err
	}
	return evk, nil
}

func (s *Service) finish(p *pending, res Result) {
	if res.Err != nil {
		s.stats.failed.Add(1)
	} else {
		s.stats.served.Add(1)
		s.lats.record(time.Since(p.enq))
	}
	p.done <- res // buffered; never blocks
}
