package rpu

import (
	"math"
	"testing"
)

func TestDefaultConfig(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 128 lanes x 1.7 GHz / 4 cycles = 54.4 G weighted modops/s.
	if got := c.ModopsPerSec(); math.Abs(got-54.4e9) > 1 {
		t.Fatalf("baseline MODOPS = %g, want 54.4e9", got)
	}
}

func TestModopsScaling(t *testing.T) {
	base := Default().ModopsPerSec()
	for _, s := range []float64{2, 4, 8, 16} {
		if got := Default().WithModops(s).ModopsPerSec(); math.Abs(got-base*s) > 1 {
			t.Fatalf("scale %gx: got %g", s, got)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{HPLEs: 0, Clock: 1, ModopsScale: 1},
		{HPLEs: 1, Clock: 0, ModopsScale: 1},
		{HPLEs: 1, Clock: 1, ModopsScale: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestAreaModelMatchesPaperPoints(t *testing.T) {
	// The two published anchor points: 392 MB -> 401.85 mm^2 and
	// 32 MB -> 41.85 mm^2 (paper §VI-B).
	if got := AreaMM2(392 << 20); math.Abs(got-401.85) > 0.01 {
		t.Errorf("392MB area = %.2f, want 401.85", got)
	}
	if got := AreaMM2(32 << 20); math.Abs(got-41.85) > 0.01 {
		t.Errorf("32MB area = %.2f, want 41.85", got)
	}
}

func TestISAHas28Instructions(t *testing.T) {
	// Paper §V-A: "B1K consists of 28 instructions".
	if len(ISA) != 28 {
		t.Fatalf("ISA has %d instructions, want 28", len(ISA))
	}
	seen := map[string]bool{}
	classes := map[InstrClass]int{}
	for _, ins := range ISA {
		if seen[ins.Name] {
			t.Errorf("duplicate instruction %q", ins.Name)
		}
		seen[ins.Name] = true
		if ins.Desc == "" {
			t.Errorf("instruction %q lacks a description", ins.Name)
		}
		classes[ins.Class]++
	}
	for _, cls := range []InstrClass{ClassCompute, ClassShuffle, ClassMemory, ClassControl} {
		if classes[cls] == 0 {
			t.Errorf("instruction class %d empty", cls)
		}
	}
}

func TestInstructionsPerTransform(t *testing.T) {
	// N=2^17, logN=17: 128 vectors of 1K per stage, 2 instructions
	// each.
	if got := InstructionsPerTransform(1<<17, 17); got != 17*128*2 {
		t.Fatalf("got %d", got)
	}
	// Sub-vector-length transforms still need one vector per stage.
	if got := InstructionsPerTransform(512, 9); got != 9*2 {
		t.Fatalf("small transform: got %d", got)
	}
}
