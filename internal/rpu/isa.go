package rpu

// B1K ISA catalogue. The paper (§V-A) states that B1K consists of 28
// instructions "ranging from general purpose point-wise arithmetic
// operations to HE-specific shuffle instructions for (i)NTT kernels",
// executed through three decoupled queues (compute, shuffle, memory).
// The exact opcode list is not published; this reconstruction follows
// the RPU paper's description of the B512 ISA it extends, and is used
// for documentation and for estimating front-end instruction counts.

// InstrClass groups instructions by the issue queue they occupy.
type InstrClass int

const (
	// ClassCompute issues to the HPLE arithmetic pipelines.
	ClassCompute InstrClass = iota
	// ClassShuffle issues to the shuffle crossbar pipeline.
	ClassShuffle
	// ClassMemory issues to the load/store unit.
	ClassMemory
	// ClassControl executes in the scalar front-end.
	ClassControl
)

// Instruction is one B1K opcode.
type Instruction struct {
	Name  string
	Class InstrClass
	Desc  string
}

// ISA lists the 28 B1K instructions.
var ISA = []Instruction{
	// Point-wise modular vector arithmetic (HPLE pipelines).
	{"vadd", ClassCompute, "element-wise modular addition"},
	{"vsub", ClassCompute, "element-wise modular subtraction"},
	{"vneg", ClassCompute, "element-wise modular negation"},
	{"vmul", ClassCompute, "element-wise modular multiplication (Barrett)"},
	{"vmac", ClassCompute, "element-wise modular multiply-accumulate"},
	{"vmuls", ClassCompute, "vector-scalar modular multiplication"},
	{"vmacs", ClassCompute, "vector-scalar modular multiply-accumulate"},
	{"vbfly", ClassCompute, "radix-2 butterfly (CT) with twiddle operand"},
	{"vibfly", ClassCompute, "radix-2 inverse butterfly (GS)"},
	{"vmodsw", ClassCompute, "switch active RNS modulus register"},
	{"vred", ClassCompute, "lazy-to-canonical reduction"},
	{"vcopy", ClassCompute, "vector register move"},
	// Shuffle crossbar (NTT data exchange, rotations).
	{"vshfl", ClassShuffle, "generic crossbar shuffle by pattern register"},
	{"vntt8", ClassShuffle, "NTT stage-local exchange (stride 2^k)"},
	{"vrot", ClassShuffle, "cyclic slot rotation"},
	{"vrev", ClassShuffle, "bit-reversal permutation"},
	{"vpack", ClassShuffle, "pack/unpack tower interleave"},
	// Memory (vector data memory and DRAM interface).
	{"vld", ClassMemory, "vector load from data memory"},
	{"vst", ClassMemory, "vector store to data memory"},
	{"vldk", ClassMemory, "vector load from key memory"},
	{"dma.ld", ClassMemory, "DRAM-to-SRAM block transfer"},
	{"dma.st", ClassMemory, "SRAM-to-DRAM block transfer"},
	// Scalar / control front-end.
	{"sadd", ClassControl, "scalar add (address arithmetic)"},
	{"smul", ClassControl, "scalar multiply"},
	{"sld", ClassControl, "scalar load"},
	{"sst", ClassControl, "scalar store"},
	{"bnz", ClassControl, "branch on non-zero"},
	{"fence", ClassControl, "queue synchronization barrier"},
}

// InstructionsPerTransform estimates the B1K instruction count of one
// length-N (i)NTT: each of the log2(N) stages touches N elements with
// vector length VectorLength, issuing one butterfly and one shuffle
// instruction per vector.
func InstructionsPerTransform(n, logN int) int {
	vectorsPerStage := (n + VectorLength - 1) / VectorLength
	return logN * vectorsPerStage * 2
}
