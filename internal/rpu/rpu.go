// Package rpu models the Ring Processing Unit (Soni et al., ISPASS'23)
// as configured by the CiFlow paper (§V-A): 128 high-performance large
// arithmetic word engines (HPLEs) at 1.7 GHz, a 32 MB vector data
// memory, a 1 MB scalar memory, and the B1K ISA (the B512 ISA widened
// to 1K-element vectors to keep the 128 lanes busy).
//
// The compute-throughput calibration (CyclesPerModOp) converts the
// weighted modular-operation counts of internal/params into time. The
// paper does not publish per-kernel cycle counts; 4 cycles per
// weighted op reproduces the published runtime anchor points
// (Table IV) within a few percent — see EXPERIMENTS.md.
package rpu

import "fmt"

// Architectural constants of the evaluated RPU configuration.
const (
	// DefaultHPLEs is the lane count (128 modular multipliers).
	DefaultHPLEs = 128
	// ClockHz is the RPU's operating frequency.
	ClockHz = 1.7e9
	// VectorLength is the B1K ISA vector length.
	VectorLength = 1024
	// VectorRegisters and ScalarRegisters are the register-file sizes.
	VectorRegisters = 64
	ScalarRegisters = 64
	// DataMemBytes is the on-chip vector data memory (32 MB).
	DataMemBytes int64 = 32 << 20
	// ScalarMemBytes is the scalar data memory (1 MB).
	ScalarMemBytes int64 = 1 << 20
	// CyclesPerModOp is the calibrated effective cost of one weighted
	// modular operation per lane (pipeline, front-end and shuffle
	// overheads folded in).
	CyclesPerModOp = 4.0
)

// Config is an RPU instance for the simulator. The zero value is not
// useful; start from Default.
type Config struct {
	HPLEs int
	Clock float64
	// ModopsScale is the paper's MODOPS knob (§VI-C-2): 2×, 4×, 8×,
	// 16× compute throughput.
	ModopsScale float64
}

// Default returns the paper's baseline RPU.
func Default() Config {
	return Config{HPLEs: DefaultHPLEs, Clock: ClockHz, ModopsScale: 1}
}

// WithModops returns the configuration with the MODOPS multiplier set.
func (c Config) WithModops(scale float64) Config {
	c.ModopsScale = scale
	return c
}

// ModopsPerSec is the weighted modular-operation throughput.
func (c Config) ModopsPerSec() float64 {
	return float64(c.HPLEs) * c.Clock / CyclesPerModOp * c.ModopsScale
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.HPLEs <= 0 || c.Clock <= 0 || c.ModopsScale <= 0 {
		return fmt.Errorf("rpu: invalid config %+v", c)
	}
	return nil
}

// ---- Area model (paper §VI-B) ----
//
// The paper reports the RPU at 401.85 mm² with 392 MB of on-chip SRAM
// (32 MB data + 360 MB evk) and 41.85 mm² with only the 32 MB data
// memory. A linear SRAM model fitted to those two points gives
// 1 mm²/MB of SRAM plus 9.85 mm² of logic.

// LogicAreaMM2 is the SRAM-independent area.
const LogicAreaMM2 = 9.85

// SRAMMM2PerMB is the fitted SRAM density.
const SRAMMM2PerMB = 1.0

// AreaMM2 returns the modeled die area for a configuration with the
// given total on-chip SRAM.
func AreaMM2(sramBytes int64) float64 {
	return LogicAreaMM2 + SRAMMM2PerMB*float64(sramBytes)/float64(1<<20)
}
