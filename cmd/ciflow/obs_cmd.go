package main

// Observability wiring shared by the measuring verbs: -profile turns
// the internal/obs stage/kernel recorder on for the run, -trace
// installs the span tracer on the engine (worker tiles) and the serve
// batch track and writes the Chrome trace-event timeline at the end,
// -pprof brackets the run with runtime/pprof CPU and heap profiles.

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"ciflow/internal/engine"
	"ciflow/internal/obs"
)

// setupObs flips the global profiling/tracing switches for one verb
// run and returns the teardown, which disables them again and writes
// the trace file. Call the teardown exactly once, after the run.
func setupObs(profile bool, tracePath string) func() error {
	var tr *obs.Tracer
	if profile {
		obs.Enable()
	}
	if tracePath != "" {
		tr = obs.EnableTracer()
		engine.SetTracer(tr)
	}
	return func() error {
		if profile {
			obs.Disable()
		}
		if tr == nil {
			return nil
		}
		engine.SetTracer(nil)
		obs.DisableTracer()
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Printf("wrote %s (%d spans, %d dropped at the buffer cap)\n", tracePath, len(tr.Spans()), d)
		} else {
			fmt.Printf("wrote %s (%d spans)\n", tracePath, len(tr.Spans()))
		}
		return nil
	}
}

// startPprof begins CPU profiling into dir/cpu.prof and returns the
// stop function, which also writes dir/mem.prof. An empty dir is a
// no-op.
func startPprof(dir string) (func() error, error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuPath := filepath.Join(dir, "cpu.prof")
	cpu, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		memPath := filepath.Join(dir, "mem.prof")
		mem, err := os.Create(memPath)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live data
		if err := pprof.WriteHeapProfile(mem); err != nil {
			mem.Close()
			return err
		}
		if err := mem.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n", cpuPath, memPath)
		return nil
	}, nil
}

// printStageShares renders one stage-share breakdown as the standard
// table the throughput/serve/cluster verbs print under -profile.
func printStageShares(shares []obs.StageShare) {
	if len(shares) == 0 {
		return
	}
	fmt.Printf("%-10s %10s %12s %8s\n", "stage", "count", "seconds", "share")
	for _, s := range shares {
		fmt.Printf("%-10s %10d %12.4f %7.1f%%\n", s.Stage, s.Count, s.Seconds, 100*s.Share)
	}
	fmt.Printf("%-10s %10s %12.4f %7.1f%%\n", "total", "",
		sumShareSeconds(shares), 100*obs.SumShares(shares))
}

func sumShareSeconds(shares []obs.StageShare) float64 {
	var t float64
	for _, s := range shares {
		t += s.Seconds
	}
	return t
}
