package main

// The sharded serving experiment: `ciflow cluster` spawns -shards
// shard subprocesses (each a `ciflow shard` wrapping one
// serve.Service behind the internal/cluster wire protocol), routes
// -tenants keyspaces onto them with the consistent-hashing router,
// and replays the schedule DAG of -workload concurrently for every
// tenant with the serial bit-exactness reference enabled. The
// acceptance bar is the single-process one, distributed: per-shard
// serve.Stats deltas must SUM to tenants x the schedule's predicted
// counts exactly — per level included — and every result must be
// bit-exact over the wire. With -kill the run drains one shard
// mid-replay and the same sums must still hold: the drained shard's
// final snapshot plus the survivors' books. `ciflow shard` and
// `ciflow router` expose the two halves standalone.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/cluster"
	"ciflow/internal/engine"
	"ciflow/internal/obs"
	"ciflow/internal/serve"
	"ciflow/internal/workload"
)

// tenantNames is the canonical tenant naming every cluster process
// agrees on: t0..t{n-1}. Key material follows from the name alone
// (cluster.KeySeed), so shards and verifiers never exchange keys.
func tenantNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%d", i)
	}
	return out
}

// shardConfig is the parsed flag set of one shard backend. The
// cluster parent passes every field explicitly — a shard does no
// schedule-dependent tuning of its own, so the parent controls the
// exact-replay batch geometry.
type shardConfig struct {
	addr      string
	tenants   int
	logN      int
	towers    int
	dnum      int
	workers   int
	keyBudget int64
	maxBatch  int
	window    time.Duration
	profile   bool // record stage/kernel histograms, shipped in stats frames
}

// shardCmd runs one shard backend: serve.Service + wire listener. It
// prints "listening <addr>" once the socket is bound (the line the
// cluster parent parses) and exits when its stdin reaches EOF (the
// parent went away) or a Shutdown frame arrives.
func shardCmd(cfg shardConfig) error {
	if cfg.tenants < 1 {
		return fmt.Errorf("shard: -tenants %d, want >= 1", cfg.tenants)
	}
	if cfg.logN < 4 || cfg.logN > 16 {
		return fmt.Errorf("shard: logn %d out of range [4,16]", cfg.logN)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.profile {
		// The recorder snapshot rides every stats frame (serve.Stats
		// .Profile), so the router can merge shard profiles exactly.
		obs.Enable()
		defer obs.Disable()
	}
	cctx, err := ckks.NewContext(1<<cfg.logN, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return err
	}
	e := engine.New(cfg.workers)
	defer e.Close()
	scfg := serve.Config{
		Engine:       e,
		KeyBudget:    cfg.keyBudget,
		MaxBatch:     cfg.maxBatch,
		Window:       cfg.window,
		DefaultLevel: cctx.MaxLevel,
	}
	sh, err := cluster.NewShard(cctx, tenantNames(cfg.tenants), scfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening %s\n", ln.Addr())
	go func() {
		// The parent holds our stdin pipe open for our whole life;
		// EOF means it exited (cleanly or not) and we must not leak.
		io.Copy(io.Discard, os.Stdin)
		sh.Close()
	}()
	go func() {
		<-sh.Done() // Shutdown frame
		sh.Close()
	}()
	return sh.Serve(ln)
}

// routerConfig is the parsed flag set of the standalone router verb.
type routerConfig struct {
	shardAddrs string
	replicas   int
	logN       int
	towers     int
	dnum       int
}

// routerCmd connects to already-running shards, pings each one, and
// prints the status table — the operational "is the fabric up" probe.
func routerCmd(cfg routerConfig) error {
	addrs := splitAddrs(cfg.shardAddrs)
	if len(addrs) == 0 {
		return fmt.Errorf("router: -shardaddrs is required (comma-separated host:port list)")
	}
	cctx, err := ckks.NewContext(1<<cfg.logN, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return err
	}
	rt, err := cluster.NewRouter(cctx.R, addrs, cluster.RouterConfig{Replicas: cfg.replicas})
	if err != nil {
		return err
	}
	defer rt.Close()
	for i := range addrs {
		if err := rt.Ping(i); err != nil {
			return fmt.Errorf("router: shard %d (%s): %w", i, addrs[i], err)
		}
	}
	fmt.Printf("%d shards live\n", rt.Live())
	printShardTable(rt.Status())
	return nil
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func printShardTable(sts []cluster.ShardStatus) {
	fmt.Printf("%-6s %-22s %-8s %10s %10s %8s\n",
		"shard", "addr", "state", "completed", "served", "modups")
	for _, st := range sts {
		fmt.Printf("%-6d %-22s %-8s %10d %10d %8d\n",
			st.Shard, st.Name, st.State, st.Completed, st.Stats.Served, st.Stats.ModUps)
	}
}

// clusterConfig is the parsed flag set of the cluster experiment.
type clusterConfig struct {
	shards   int
	tenants  int
	replicas int
	kill     bool

	workload  string
	bts       int
	radix     int
	dfName    string
	rotations int
	giants    int

	logN      int
	towers    int
	dnum      int // 0 (bootstrap) = inherit the BTS set's digit count
	workers   int
	keyBudget int64
	maxBatch  int
	window    time.Duration
	profile   bool // shards record stage histograms; router merges them
}

// clusterShardReport is one shard's line in the report.
type clusterShardReport struct {
	Shard     int    `json:"shard"`
	Addr      string `json:"addr"`
	State     string `json:"state"`
	Completed uint64 `json:"completed"`
	Served    uint64 `json:"served"`
	ModUps    uint64 `json:"mod_ups"`
}

// clusterReport is the JSON artifact of a cluster run
// (BENCH_cluster.json in the bench/perfgate flow).
type clusterReport struct {
	N       int `json:"n"`
	Towers  int `json:"towers"`
	Dnum    int `json:"dnum"`
	Workers int `json:"workers"`
	NumCPU  int `json:"num_cpu"`

	Shards   int `json:"shards"`
	Tenants  int `json:"tenants"`
	Replicas int `json:"replicas"`
	// Drained is the shard drained mid-replay by -kill, -1 otherwise.
	Drained int `json:"drained_shard"`

	Workload string `json:"workload"`
	BTS      int    `json:"bts,omitempty"`
	Radix    int    `json:"radix"`
	Schedule string `json:"schedule"`

	Predicted workload.Counts `json:"predicted"`

	DurationSec float64 `json:"duration_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`

	// Aggregate serve.Stats across every shard's books (drained
	// finals included).
	Served    uint64 `json:"served"`
	ModUps    uint64 `json:"mod_ups"`
	Groups    uint64 `json:"groups"`
	Coalesced uint64 `json:"coalesced"`

	// Delivered is the router-side count of results handed to
	// clients; CompletedSum the per-shard attribution total. Both
	// must equal tenants x predicted switches — the retry path may
	// never double-deliver or double-count.
	Delivered    uint64 `json:"delivered"`
	CompletedSum uint64 `json:"completed_sum"`

	// ShardSumExact is the tentpole invariant: per-shard stats sum to
	// tenants x the schedule prediction, level by level.
	ShardSumExact bool     `json:"shard_sum_exact"`
	Mismatches    []string `json:"mismatches,omitempty"`

	// CountsExact/BitExact/DepViolations fold every tenant's replay
	// verdicts (all must hold for every tenant).
	CountsExact           bool    `json:"counts_exact"`
	BitExact              bool    `json:"bit_exact"`
	DepViolations         int     `json:"dep_violations"`
	HoistCoalescingFactor float64 `json:"hoist_coalescing_factor"`

	// Profiled says the shards ran with -profile and shipped stage
	// histograms in their stats frames. ProfileSumExact then asserts
	// the router-merged fabric profile equals the per-shard snapshots
	// summed bucket by bucket — verified by an independent summation,
	// not by the merge under test. StageShares prices the merged
	// profile against the replay wall clock.
	Profiled        bool             `json:"profiled"`
	ProfileSumExact bool             `json:"profile_sum_exact"`
	StageShares     []obs.StageShare `json:"stage_shares,omitempty"`

	PerShard []clusterShardReport `json:"per_shard"`
}

// shardProc is one spawned `ciflow shard` subprocess.
type shardProc struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

// spawnShard starts one shard subprocess and waits for its
// "listening" line. The returned proc's stdin must stay open for the
// shard's lifetime — closing it is the kill switch.
func spawnShard(exe string, cfg shardConfig) (*shardProc, error) {
	args := []string{"shard",
		"-addr", cfg.addr,
		"-tenants", strconv.Itoa(cfg.tenants),
		"-logn", strconv.Itoa(cfg.logN),
		"-towers", strconv.Itoa(cfg.towers),
		"-dnum", strconv.Itoa(cfg.dnum),
		"-workers", strconv.Itoa(cfg.workers),
		"-keybudget", strconv.FormatInt(cfg.keyBudget, 10),
		"-batch", strconv.Itoa(cfg.maxBatch),
		"-window", cfg.window.String(),
	}
	if cfg.profile {
		args = append(args, "-profile")
	}
	cmd := exec.Command(exe, args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &shardProc{cmd: cmd, stdin: stdin}

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default: // past the handshake, just drain
			}
		}
		close(lines)
	}()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				p.stop()
				return nil, fmt.Errorf("cluster: shard exited before listening")
			}
			if addr, found := strings.CutPrefix(line, "listening "); found {
				p.addr = addr
				return p, nil
			}
		case <-deadline:
			p.stop()
			return nil, fmt.Errorf("cluster: shard did not report a listening address")
		}
	}
}

// stop closes the shard's stdin (its signal to exit) and reaps it,
// escalating to a kill if it lingers.
func (p *shardProc) stop() {
	p.stdin.Close()
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		<-done
	}
}

// clusterRun stands the fabric up, replays every tenant, and fills
// the report. Split from the printing so tests can call it directly.
func clusterRun(cfg clusterConfig) (*clusterReport, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("cluster: -shards %d, want >= 1", cfg.shards)
	}
	if cfg.tenants < 1 {
		return nil, fmt.Errorf("cluster: -tenants %d, want >= 1", cfg.tenants)
	}
	if cfg.kill && cfg.shards < 2 {
		return nil, fmt.Errorf("cluster: -kill needs -shards >= 2 so survivors can absorb the drain")
	}
	if cfg.logN < 4 || cfg.logN > 16 {
		return nil, fmt.Errorf("cluster: logn %d out of range [4,16]", cfg.logN)
	}
	bts, err := workload.BTSBenchmark(cfg.bts)
	if err != nil {
		return nil, err
	}
	if cfg.dnum == 0 {
		// Same digit-structure inheritance as the one-process replay
		// (workloadRun): the -bts set's dnum, raised to keep every
		// digit coverable by the replay ring's three P moduli.
		cfg.dnum = bts.Dnum
		if min := (cfg.towers + 2) / 3; cfg.dnum < min {
			cfg.dnum = min
		}
	}
	if cfg.dnum > cfg.towers {
		return nil, fmt.Errorf("cluster: dnum %d exceeds %d towers", cfg.dnum, cfg.towers)
	}
	if cfg.workers <= 0 {
		// Split the machine across the shard processes rather than
		// oversubscribing it shards times.
		cfg.workers = runtime.GOMAXPROCS(0) / cfg.shards
		if cfg.workers < 1 {
			cfg.workers = 1
		}
	}
	dfName := cfg.dfName
	if dfName == "all" {
		dfName = "mp"
	}
	dfs, err := parseThroughputDataflows(dfName)
	if err != nil {
		return nil, err
	}
	df := dfs[0]

	n := 1 << cfg.logN
	cctx, err := ckks.NewContext(n, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return nil, err
	}
	if cfg.workload == "fanout" {
		return nil, fmt.Errorf("cluster: -workload fanout has no schedule to replay; use bootstrap, matvec, pir, private-inference, evalmod, or file:<path>")
	}
	sched, err := workloadSchedule(workloadConfig{
		workload: cfg.workload, bts: cfg.bts, radix: cfg.radix,
		logN: cfg.logN, rotations: cfg.rotations, giants: cfg.giants,
	}, cctx.MaxLevel)
	if err != nil {
		return nil, err
	}
	pred := sched.Counts()

	// The shard batch geometry must keep whole submission waves in
	// one micro-batch (the exact-replay requirement), regardless of
	// what -batch/-window ask for.
	scfg := workload.ReplayServiceConfig(sched)
	maxBatch := scfg.MaxBatch
	if cfg.maxBatch > maxBatch {
		maxBatch = cfg.maxBatch
	}
	window := scfg.Window
	if cfg.window > window {
		window = cfg.window
	}

	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	procs := make([]*shardProc, 0, cfg.shards)
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	addrs := make([]string, 0, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		p, err := spawnShard(exe, shardConfig{
			addr: "127.0.0.1:0", tenants: cfg.tenants,
			logN: cfg.logN, towers: cfg.towers, dnum: cfg.dnum,
			workers: cfg.workers, keyBudget: cfg.keyBudget,
			maxBatch: maxBatch, window: window, profile: cfg.profile,
		})
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
		addrs = append(addrs, p.addr)
	}

	rt, err := cluster.NewRouter(cctx.R, addrs, cluster.RouterConfig{Replicas: cfg.replicas})
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	tenants := tenantNames(cfg.tenants)
	total := uint64(cfg.tenants) * uint64(pred.Switches)

	// -kill: once a quarter of the deliveries are in, drain the
	// busiest live shard. Drain requeues its queued groups and folds
	// its final books into AllStats, so the shard-sum invariant must
	// survive the handoff.
	drained := -1
	drainDone := make(chan error, 1)
	if cfg.kill {
		go func() {
			for rt.Delivered() < total/4 {
				time.Sleep(2 * time.Millisecond)
			}
			victim, best := -1, uint64(0)
			for _, st := range rt.Status() {
				if st.State == cluster.ShardLive && st.Completed >= best {
					victim, best = st.Shard, st.Completed
				}
			}
			if victim < 0 {
				drainDone <- fmt.Errorf("cluster: no live shard to drain")
				return
			}
			drained = victim
			_, err := rt.Drain(victim)
			drainDone <- err
		}()
	} else {
		drainDone <- nil
	}

	type tenantOut struct {
		res *workload.ReplayResult
		err error
	}
	outs := make(chan tenantOut, cfg.tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn string) {
			defer wg.Done()
			// The verifier derives the tenant's keys locally from the
			// tenant seed — bit-identical to every shard's copy.
			kc, _ := ckks.GenKeys(cctx, cluster.KeySeed(tn))
			res, err := workload.Replay(context.Background(),
				&cluster.TenantView{Router: rt, Tenant: tn},
				cctx.Switchers(), serve.KeyChains{tn: kc}, cctx.R, sched,
				workload.ReplayConfig{Tenant: tn, Dataflow: df, Seed: cluster.KeySeed(tn), Check: true})
			outs <- tenantOut{res, err}
		}(tn)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := <-drainDone; err != nil {
		return nil, err
	}

	rep := &clusterReport{
		N: n, Towers: cfg.towers, Dnum: cfg.dnum,
		Workers: cfg.workers, NumCPU: runtime.NumCPU(),
		Shards: cfg.shards, Tenants: cfg.tenants,
		Replicas: cfg.replicas, Drained: drained,
		Workload: cfg.workload, Radix: sched.Radix, Schedule: sched.Name,
		Predicted:   pred,
		DurationSec: wall.Seconds(),
		CountsExact: true, BitExact: true,
	}
	if cfg.workload == "bootstrap" {
		rep.BTS = cfg.bts
	}
	for i := 0; i < cfg.tenants; i++ {
		o := <-outs
		if o.err != nil {
			return nil, o.err
		}
		rep.CountsExact = rep.CountsExact && o.res.CountsExact
		rep.BitExact = rep.BitExact && o.res.Checked && o.res.BitExact
		rep.DepViolations += o.res.DepViolations
		rep.Mismatches = append(rep.Mismatches, o.res.Mismatches...)
		rep.HoistCoalescingFactor = o.res.HoistCoalescingFactor
	}
	rep.OpsPerSec = float64(total) / wall.Seconds()

	// Snapshot the shard books once: the aggregate and the per-shard
	// profile exactness check below must see the same frames.
	all := rt.AllStats()
	agg := cluster.AggregateStats(all)
	rep.Served, rep.ModUps = agg.Served, agg.ModUps
	rep.Groups, rep.Coalesced = agg.Groups, agg.Coalesced
	if agg.Profile != nil {
		snaps := make([]*obs.Snapshot, 0, len(all))
		for i := range all {
			if all[i].Profile != nil {
				snaps = append(snaps, all[i].Profile)
			}
		}
		rep.Profiled = true
		rep.ProfileSumExact = profileSumExact(snaps, agg.Profile)
		rep.StageShares = obs.Shares(agg.Profile, wall.Seconds())
	}
	rep.Delivered = rt.Delivered()
	for i := 0; i < rt.NumShards(); i++ {
		rep.CompletedSum += rt.Completed(i)
	}
	rep.ShardSumExact, rep.Mismatches = shardSumCheck(agg, pred, cfg.tenants, rep.Mismatches)

	for _, st := range rt.Status() {
		rep.PerShard = append(rep.PerShard, clusterShardReport{
			Shard: st.Shard, Addr: st.Name, State: string(st.State),
			Completed: st.Completed, Served: st.Stats.Served, ModUps: st.Stats.ModUps,
		})
	}

	rt.ShutdownShards()
	return rep, nil
}

// profileSumExact verifies the merged fabric profile against the
// per-shard snapshots with a summation of its own — a plain
// per-(name,dataflow) tally over counts, nanosecond sums, and every
// bucket — so it would catch a broken obs.Merge rather than agree
// with it. Exact means: every key the shards recorded appears in the
// merge with the summed values, and the merge has nothing extra.
func profileSumExact(shards []*obs.Snapshot, merged *obs.Snapshot) bool {
	if merged == nil {
		return len(shards) == 0
	}
	type key struct{ name, df string }
	sum := func(pick func(*obs.Snapshot) []obs.HistogramSnapshot) map[key]obs.HistogramSnapshot {
		m := map[key]obs.HistogramSnapshot{}
		for _, s := range shards {
			if s == nil {
				continue
			}
			for _, hs := range pick(s) {
				k := key{hs.Name, hs.Dataflow}
				e := m[k]
				e.Name, e.Dataflow = hs.Name, hs.Dataflow
				e.Count += hs.Count
				e.SumNs += hs.SumNs
				if len(hs.Buckets) > len(e.Buckets) {
					e.Buckets = append(e.Buckets, make([]uint64, len(hs.Buckets)-len(e.Buckets))...)
				}
				for b, v := range hs.Buckets {
					e.Buckets[b] += v
				}
				m[k] = e
			}
		}
		return m
	}
	check := func(want map[key]obs.HistogramSnapshot, got []obs.HistogramSnapshot) bool {
		if len(got) != len(want) {
			return false
		}
		for _, hs := range got {
			w, ok := want[key{hs.Name, hs.Dataflow}]
			if !ok || hs.Count != w.Count || hs.SumNs != w.SumNs || len(hs.Buckets) != len(w.Buckets) {
				return false
			}
			for b, v := range hs.Buckets {
				if v != w.Buckets[b] {
					return false
				}
			}
		}
		return true
	}
	if !check(sum(func(s *obs.Snapshot) []obs.HistogramSnapshot { return s.Stages }), merged.Stages) {
		return false
	}
	if !check(sum(func(s *obs.Snapshot) []obs.HistogramSnapshot { return s.Kernels }), merged.Kernels) {
		return false
	}
	type lkey struct {
		stage string
		level int
	}
	want := map[lkey]obs.LevelSnapshot{}
	for _, s := range shards {
		if s == nil {
			continue
		}
		for _, ls := range s.Levels {
			k := lkey{ls.Stage, ls.Level}
			e := want[k]
			e.Stage, e.Level = ls.Stage, ls.Level
			e.Count += ls.Count
			e.SumNs += ls.SumNs
			want[k] = e
		}
	}
	if len(merged.Levels) != len(want) {
		return false
	}
	for _, ls := range merged.Levels {
		w, ok := want[lkey{ls.Stage, ls.Level}]
		if !ok || ls.Count != w.Count || ls.SumNs != w.SumNs {
			return false
		}
	}
	return true
}

// shardSumCheck compares the aggregated shard books against tenants x
// the schedule prediction, per level included.
func shardSumCheck(agg serve.Stats, pred workload.Counts, tenants int, mism []string) (bool, []string) {
	exact := true
	n := uint64(tenants)
	want := func(what string, got, wantV uint64) {
		if got != wantV {
			exact = false
			mism = append(mism, fmt.Sprintf("shard-sum %s: measured %d, predicted %d", what, got, wantV))
		}
	}
	want("served", agg.Served, n*uint64(pred.Switches))
	want("mod_ups", agg.ModUps, n*uint64(pred.ModUps))
	want("groups", agg.Groups, n*uint64(pred.ModUps))
	want("coalesced", agg.Coalesced, n*uint64(pred.Coalesced))
	measured := map[int]serve.LevelStats{}
	for _, ls := range agg.PerLevel {
		measured[ls.Level] = ls
	}
	for _, pl := range pred.PerLevel {
		m := measured[pl.Level]
		want(fmt.Sprintf("level %d switches", pl.Level), m.Switches, n*uint64(pl.Switches))
		want(fmt.Sprintf("level %d mod_ups", pl.Level), m.ModUps, n*uint64(pl.ModUps))
		want(fmt.Sprintf("level %d coalesced", pl.Level), m.Coalesced, n*uint64(pl.Coalesced))
		delete(measured, pl.Level)
	}
	for l, m := range measured {
		if m.Switches != 0 || m.ModUps != 0 || m.Coalesced != 0 {
			exact = false
			mism = append(mism, fmt.Sprintf("shard-sum: level %d has %d/%d/%d but the schedule predicts nothing there",
				l, m.Switches, m.ModUps, m.Coalesced))
		}
	}
	return exact, mism
}

// clusterCheck is the acceptance bar behind `ciflow cluster -check`:
// bit-exact over the wire, counts exact per tenant, shard books
// summing to the prediction, and router delivery/attribution exact —
// including across a -kill drain.
func clusterCheck(rep *clusterReport) error {
	if !rep.BitExact {
		return fmt.Errorf("cluster check: replay not bit-exact with local serial execution")
	}
	if !rep.CountsExact {
		return fmt.Errorf("cluster check: a tenant's measured counters drifted from the schedule prediction: %v",
			rep.Mismatches)
	}
	if rep.DepViolations != 0 {
		return fmt.Errorf("cluster check: %d dependency-order violations", rep.DepViolations)
	}
	if !rep.ShardSumExact {
		return fmt.Errorf("cluster check: per-shard stats do not sum to the global prediction: %v", rep.Mismatches)
	}
	total := uint64(rep.Tenants) * uint64(rep.Predicted.Switches)
	if rep.Delivered != total {
		return fmt.Errorf("cluster check: router delivered %d results, want exactly %d", rep.Delivered, total)
	}
	if rep.CompletedSum != total {
		return fmt.Errorf("cluster check: per-shard completion attribution sums to %d, want exactly %d (a retry was double-counted)",
			rep.CompletedSum, total)
	}
	if rep.Predicted.HoistGroups > 0 && rep.HoistCoalescingFactor <= 1 {
		return fmt.Errorf("cluster check: hoist-group coalescing factor %.2f, want > 1", rep.HoistCoalescingFactor)
	}
	if rep.Profiled && !rep.ProfileSumExact {
		return fmt.Errorf("cluster check: merged stage-histogram buckets do not equal the sum of the per-shard snapshots")
	}
	return nil
}

func clusterCmd(cfg clusterConfig, jsonPath string, check bool) error {
	rep, err := clusterRun(cfg)
	if err != nil {
		return err
	}
	p := rep.Predicted
	fmt.Printf("Cluster replay: %s x %d tenants over %d shards (replicas %d), N=2^%d, %d towers, dnum=%d, %d workers/shard\n",
		rep.Schedule, rep.Tenants, rep.Shards, rep.Replicas, log2(rep.N), rep.Towers, rep.Dnum, rep.Workers)
	fmt.Printf("schedule: %d switches in %d groups, depth %d; predicted total %d switches\n",
		p.Switches, p.ModUps, p.Depth, rep.Tenants*p.Switches)
	fmt.Printf("%-26s %12.2f\n", "served switches/sec", rep.OpsPerSec)
	fmt.Printf("%-26s %12d  (attribution sum %d)\n", "delivered", rep.Delivered, rep.CompletedSum)
	fmt.Printf("%-26s %12v\n", "shard-sum exact", rep.ShardSumExact)
	fmt.Printf("%-26s %12v\n", "counts exact", rep.CountsExact)
	fmt.Printf("%-26s %12v\n", "bit-exact", rep.BitExact)
	if rep.Drained >= 0 {
		fmt.Printf("%-26s %12d  (drained mid-replay)\n", "killed shard", rep.Drained)
	}
	if rep.Profiled {
		fmt.Printf("%-26s %12v\n", "profile-sum exact", rep.ProfileSumExact)
	}
	for _, m := range rep.Mismatches {
		fmt.Printf("  mismatch: %s\n", m)
	}
	fmt.Println()
	fmt.Printf("%-6s %-22s %-8s %10s %10s %8s\n",
		"shard", "addr", "state", "completed", "served", "modups")
	for _, s := range rep.PerShard {
		fmt.Printf("%-6d %-22s %-8s %10d %10d %8d\n",
			s.Shard, s.Addr, s.State, s.Completed, s.Served, s.ModUps)
	}
	if len(rep.StageShares) > 0 {
		fmt.Println("\nStage profile (fabric-wide, merged across shards):")
		printStageShares(rep.StageShares)
	}

	if jsonPath != "" {
		if err := writeJSONReport(jsonPath, rep); err != nil {
			return err
		}
	}
	if check {
		if err := clusterCheck(rep); err != nil {
			return err
		}
		fmt.Println("cluster check passed")
	}
	return nil
}
