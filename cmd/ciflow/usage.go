package main

import (
	"fmt"
	"io"
)

// usage prints the experiment catalog and the flag defaults — the
// `ciflow help` output. It is generated from the same experiments
// slice and flag set that run() dispatches on, and
// TestHelpMatchesREADME diffs it against README.md, so the three
// cannot drift apart silently.
func usage(w io.Writer, fl *cliFlags) {
	fmt.Fprintln(w, "Usage: ciflow <experiment> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Experiments:")
	for _, e := range experiments {
		fmt.Fprintf(w, "  %-14s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Flags:")
	fl.fs.SetOutput(w)
	fl.fs.PrintDefaults()
}
