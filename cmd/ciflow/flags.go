package main

// The flag set and the experiment catalog live here, in one place, so
// that `ciflow help` (usage.go prints from these), the package doc
// comment, and README.md can be checked against each other by
// TestHelpMatchesREADME instead of drifting apart.

import (
	"flag"
	"time"
)

// experiment is one ciflow verb as shown by `ciflow help`.
type experiment struct {
	name, desc string
}

// experiments lists every verb run() dispatches, in display order.
var experiments = []experiment{
	{"table2", "DRAM traffic and arithmetic intensity (Table II)"},
	{"table3", "benchmark parameter sets (Table III)"},
	{"table4", "OCbase bandwidths and speedups (Table IV)"},
	{"table5", "configs matching ARK's saturation point (Table V)"},
	{"fig4", "runtime vs bandwidth sweep (Figure 4; -bench)"},
	{"fig5", "BTS3 evk streamed vs on-chip (Figure 5)"},
	{"fig6", "ARK evk streamed vs on-chip (Figure 6)"},
	{"fig7", "OC streaming slowdown per benchmark (Figure 7)"},
	{"fig8", "ARK MODOPS sensitivity (Figure 8; -bench)"},
	{"fig9", "equivalent configs with streamed evks (Figure 9)"},
	{"ablate-keycomp", "key-compression ablation (§IV-D)"},
	{"ablate-ocf", "fused-ModDown OC extension vs plain OC"},
	{"roofline", "memory/compute-bound classification at 8/64/256 GB/s"},
	{"memory", "data traffic vs on-chip memory size (§IV working sets)"},
	{"area", "SRAM/area saving summary (§VI-B)"},
	{"throughput", "measured HKS ops/sec and latency per dataflow on the engine pool"},
	{"serve", "batching key-switch service load generator (cache + coalescing; -workload replays schedule DAGs)"},
	{"schedule", "print a workload schedule DAG's shape, predicted op counts, and modeled cost (-export/-import versioned JSON)"},
	{"shard", "one cluster shard backend: a serve service behind the wire protocol (-addr)"},
	{"router", "probe running shards (-shardaddrs) and print the cluster status table"},
	{"cluster", "sharded serving experiment: spawn -shards shard processes, replay -tenants schedules through the router, verify exact shard-sum and bit-exactness (-replicas, -kill)"},
	{"perfgate", "CI performance-regression gate vs committed baselines"},
	{"all", "everything above in paper order (except throughput, serve, schedule, shard, router, cluster, perfgate)"},
	{"help", "this usage summary"},
}

// cliFlags carries every parsed flag; newFlags is the single source of
// truth for names, defaults, and usage strings.
type cliFlags struct {
	fs *flag.FlagSet

	benchName *string
	memMiB    *int64
	csvOut    *bool

	// throughput + serve workload shape
	dfName    *string
	workers   *int
	requests  *int
	logN      *int
	towers    *int
	dnum      *int
	hoisted   *bool
	rotations *int
	jsonPath  *string

	// serve load generator
	clients   *int
	rps       *int
	rotPool   *int
	tenants   *int
	levels    *int
	keyBudget *int64
	keyComp   *bool
	maxBatch  *int
	window    *time.Duration
	check     *bool

	// workload schedules (serve -workload, schedule)
	workloadName *string
	bts          *int
	radix        *int
	exportPath   *string
	importPath   *string

	// observability (throughput, serve, cluster, shard, schedule)
	profile   *bool
	tracePath *string
	pprofDir  *string
	dotPath   *string

	// cluster (shard, router, cluster)
	shards     *int
	replicas   *int
	kill       *bool
	addr       *string
	shardAddrs *string

	// perfgate
	baseline         *string
	freshPath        *string
	serveBaseline    *string
	serveFresh       *string
	workloadBaseline *string
	workloadFresh    *string
	scenarioBaseline *string
	scenarioFresh    *string
	clusterBaseline  *string
	clusterFresh     *string
	maxRegression    *float64
}

func newFlags() *cliFlags {
	fs := flag.NewFlagSet("ciflow", flag.ContinueOnError)
	fl := &cliFlags{fs: fs}

	fl.benchName = fs.String("bench", "", "benchmark name (BTS1, BTS2, BTS3, ARK, DPRIVE)")
	fl.memMiB = fs.Int64("mem", 32, "on-chip data memory in MiB")
	fl.csvOut = fs.Bool("csv", false, "emit CSV instead of ASCII tables")

	fl.dfName = fs.String("dataflow", "all", "dataflow: mp, dc, oc, ocf, or all")
	fl.workers = fs.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	fl.requests = fs.Int("requests", 16, "throughput request count / serve operations per client")
	fl.logN = fs.Int("logn", 14, "ring degree exponent (N = 2^logn)")
	fl.towers = fs.Int("towers", 6, "Q-tower count")
	fl.dnum = fs.Int("dnum", 3, "key-switching digit count")
	fl.hoisted = fs.Bool("hoisted", false, "also measure hoisted key switching (shared ModUp)")
	fl.rotations = fs.Int("rotations", 8, "rotation fan-out width per ciphertext")
	fl.jsonPath = fs.String("json", "", "also write the report to this JSON file")

	fl.clients = fs.Int("clients", 4, "serve concurrent client goroutines")
	fl.rps = fs.Int("rps", 0, "serve per-client operations/sec pacing (0 = unpaced)")
	fl.rotPool = fs.Int("rotpool", 0, "serve distinct rotation amounts shared per keyspace (0 = -rotations)")
	fl.tenants = fs.Int("tenants", 1, "serve tenant count (distinct keyspaces, round-robin over clients)")
	fl.levels = fs.Int("levels", 1, "serve distinct ciphertext levels, topmost first")
	fl.keyBudget = fs.Int64("keybudget", 0, "serve global key-cache byte budget (0 = serve default)")
	fl.keyComp = fs.Bool("keycomp", false, "serve: cache seed-compressed evaluation keys, expanded per digit at use")
	fl.maxBatch = fs.Int("batch", 64, "serve micro-batch size cap")
	fl.window = fs.Duration("window", 500*time.Microsecond, "serve micro-batch gather window")
	fl.check = fs.Bool("check", false, "serve: fail unless coalescing > 1, hit rates > 50%, keyspaces isolated, bit-exact")

	fl.workloadName = fs.String("workload", "fanout", "serve/schedule shape: fanout, bootstrap, matvec, pir, private-inference, evalmod, or file:<path>")
	fl.bts = fs.Int("bts", 2, "BTS parameter set (1, 2, or 3) shaping bootstrap schedules")
	fl.radix = fs.Int("radix", 0, "bootstrap DFT radix, a power of two (0 = auto-fit the level budget)")
	fl.exportPath = fs.String("export", "", "schedule: also write the schedule as versioned JSON to this file")
	fl.importPath = fs.String("import", "", "schedule: load and re-validate the schedule from this JSON file instead of generating it")

	fl.profile = fs.Bool("profile", false, "record per-stage/per-kernel runtime histograms; adds stage_shares to throughput/serve/cluster reports")
	fl.tracePath = fs.String("trace", "", "throughput/serve: write a Chrome trace-event timeline (chrome://tracing, Perfetto) to this file")
	fl.pprofDir = fs.String("pprof", "", "throughput/serve: write cpu.prof and mem.prof (runtime/pprof) into this directory")
	fl.dotPath = fs.String("dot", "", "schedule: render the schedule DAG in Graphviz DOT format to this file")

	fl.shards = fs.Int("shards", 2, "cluster shard process count")
	fl.replicas = fs.Int("replicas", 1, "cluster shards eligible to serve one tenant (hot-key replication)")
	fl.kill = fs.Bool("kill", false, "cluster: drain and retire one shard mid-replay")
	fl.addr = fs.String("addr", "127.0.0.1:0", "shard listen address")
	fl.shardAddrs = fs.String("shardaddrs", "", "router: comma-separated shard addresses")

	fl.baseline = fs.String("baseline", "BENCH_engine.json", "perfgate throughput baseline report")
	fl.freshPath = fs.String("fresh", "bench_fresh.json", "perfgate fresh throughput report")
	fl.serveBaseline = fs.String("serve-baseline", "", "perfgate serve baseline report (empty = skip serve gate)")
	fl.serveFresh = fs.String("serve-fresh", "", "perfgate fresh serve report (empty = skip serve gate)")
	fl.workloadBaseline = fs.String("workload-baseline", "", "perfgate workload-replay baseline report (empty = skip workload gate)")
	fl.workloadFresh = fs.String("workload-fresh", "", "perfgate fresh workload-replay report (empty = skip workload gate)")
	fl.scenarioBaseline = fs.String("scenario-baseline", "", "perfgate scenario-replay baseline report (empty = skip scenario gate)")
	fl.scenarioFresh = fs.String("scenario-fresh", "", "perfgate fresh scenario-replay report (empty = skip scenario gate)")
	fl.clusterBaseline = fs.String("cluster-baseline", "", "perfgate cluster baseline report (empty = skip cluster gate)")
	fl.clusterFresh = fs.String("cluster-fresh", "", "perfgate fresh cluster report (empty = skip cluster gate)")
	fl.maxRegression = fs.Float64("max-regression", 2, "perfgate allowed ops/sec drop factor")

	return fl
}

// flagDnum returns the parsed -dnum, or 0 when the flag was left at
// its default — the workload replay then inherits the digit structure
// of the chosen BTS parameter set instead of the generic default.
func flagDnum(fl *cliFlags) int {
	set := false
	fl.fs.Visit(func(f *flag.Flag) {
		if f.Name == "dnum" {
			set = true
		}
	})
	if set {
		return *fl.dnum
	}
	return 0
}
