package main

// The throughput experiment is the repository's first real-hardware
// counterpart to the paper's Figure 4: instead of simulating the
// MP/DC/OC dataflows on the RPU model, it executes them as task
// graphs on the internal/engine worker pool and reports measured
// ops/sec, tail latency, and speedup over the serial pipeline.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
)

// throughputRow is one measured configuration.
type throughputRow struct {
	Dataflow  string  `json:"dataflow"`
	Requests  int     `json:"requests"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Speedup   float64 `json:"speedup_vs_serial"`
}

// throughputReport is the JSON artifact the bench harness tracks
// (BENCH_engine.json).
type throughputReport struct {
	N        int             `json:"n"`
	Towers   int             `json:"towers"`
	Dnum     int             `json:"dnum"`
	Workers  int             `json:"workers"`
	NumCPU   int             `json:"num_cpu"`
	BitExact bool            `json:"bit_exact"`
	Results  []throughputRow `json:"results"`
}

func parseThroughputDataflows(name string) ([]dataflow.Dataflow, error) {
	switch strings.ToLower(name) {
	case "", "all":
		return []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC}, nil
	case "mp":
		return []dataflow.Dataflow{dataflow.MP}, nil
	case "dc":
		return []dataflow.Dataflow{dataflow.DC}, nil
	case "oc":
		return []dataflow.Dataflow{dataflow.OC}, nil
	case "ocf":
		return []dataflow.Dataflow{dataflow.OCF}, nil
	}
	return nil, fmt.Errorf("unknown dataflow %q (want mp, dc, oc, ocf, or all)", name)
}

func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func measure(requests int, op func(i int)) (opsPerSec, p50, p99 float64) {
	lats := make([]time.Duration, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		op(i)
		lats[i] = time.Since(t0)
	}
	total := time.Since(start)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return float64(requests) / total.Seconds(), percentileMs(lats, 50), percentileMs(lats, 99)
}

// throughputRun executes the experiment and returns the report; split
// from the printing so tests can exercise it directly.
func throughputRun(dfName string, workers, requests, logN, towers, dnum int) (*throughputReport, error) {
	dfs, err := parseThroughputDataflows(dfName)
	if err != nil {
		return nil, err
	}
	if requests < 1 {
		return nil, fmt.Errorf("need at least 1 request, got %d", requests)
	}
	if logN < 4 || logN > 16 {
		return nil, fmt.Errorf("logn %d out of range [4,16]", logN)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := 1 << logN
	r, err := ring.NewRingGenerated(n, towers, 40, 3, 41)
	if err != nil {
		return nil, err
	}
	sw, err := hks.NewSwitcher(r, towers-1, dnum)
	if err != nil {
		return nil, err
	}
	s := ring.NewSampler(r, 1)
	full := r.DBasis(r.NumQ - 1)
	evk := sw.GenEvk(s, s.Ternary(full), s.Ternary(full))

	// Pre-generate the request inputs so sampling stays off the clock.
	ds := make([]*ring.Poly, requests)
	for i := range ds {
		ds[i] = s.Uniform(sw.QBasis())
		ds[i].IsNTT = true
	}

	rep := &throughputReport{
		N: n, Towers: towers, Dnum: dnum,
		Workers: workers, NumCPU: runtime.NumCPU(),
		BitExact: true,
	}

	// Reference output for the bit-exactness check; doubling as the
	// serial warm-up so the baseline's converter scratch pools are as
	// warm as the engine path's (the remaining serial/parallel gap at
	// 1 worker is the serial API's per-op polynomial allocation).
	ref0, ref1 := sw.KeySwitch(ds[0], evk)

	// Serial baseline.
	ops, p50, p99 := measure(requests, func(i int) { sw.KeySwitch(ds[i], evk) })
	rep.Results = append(rep.Results, throughputRow{
		Dataflow: "serial", Requests: requests,
		OpsPerSec: ops, P50Ms: p50, P99Ms: p99, Speedup: 1,
	})
	serialOps := ops

	e := engine.New(workers)
	defer e.Close()
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	for _, df := range dfs {
		// One warm-up switch populates the pooled state and verifies
		// the engine path against the serial reference.
		sw.SwitchParallelInto(e, df, ds[0], evk, c0, c1)
		if !c0.Equal(ref0) || !c1.Equal(ref1) {
			rep.BitExact = false
			return rep, fmt.Errorf("%s parallel output differs from serial", df)
		}
		ops, p50, p99 := measure(requests, func(i int) {
			sw.SwitchParallelInto(e, df, ds[i], evk, c0, c1)
		})
		rep.Results = append(rep.Results, throughputRow{
			Dataflow: df.String(), Requests: requests,
			OpsPerSec: ops, P50Ms: p50, P99Ms: p99, Speedup: ops / serialOps,
		})
	}
	return rep, nil
}

func throughput(dfName string, workers, requests, logN, towers, dnum int, jsonPath string) error {
	rep, err := throughputRun(dfName, workers, requests, logN, towers, dnum)
	if err != nil {
		return err
	}

	fmt.Printf("Engine throughput: N=2^%d, %d towers, dnum=%d, %d workers (%d CPUs), %d requests\n",
		logN, rep.Towers, rep.Dnum, rep.Workers, rep.NumCPU, requests)
	fmt.Println("(parallel outputs verified bit-exact against the serial pipeline;")
	fmt.Println(" speedup includes the engine path's zero-alloc pooling, not only parallelism)")
	fmt.Printf("%-8s %12s %10s %10s %9s\n", "dataflow", "ops/sec", "p50 ms", "p99 ms", "speedup")
	for _, row := range rep.Results {
		fmt.Printf("%-8s %12.2f %10.3f %10.3f %8.2fx\n",
			row.Dataflow, row.OpsPerSec, row.P50Ms, row.P99Ms, row.Speedup)
	}
	if rep.NumCPU == 1 {
		fmt.Println("note: only one CPU is available; intra-op parallelism cannot beat serial here")
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}
