package main

// The throughput experiment is the repository's first real-hardware
// counterpart to the paper's Figure 4: instead of simulating the
// MP/DC/OC dataflows on the RPU model, it executes them as task
// graphs on the internal/engine worker pool and reports measured
// ops/sec, tail latency, and speedup over the serial pipeline.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"ciflow/internal/analysis"
	"ciflow/internal/dataflow"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
)

// throughputRow is one measured configuration.
type throughputRow struct {
	Dataflow  string  `json:"dataflow"`
	Requests  int     `json:"requests"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	Speedup   float64 `json:"speedup_vs_serial"`

	// StageShares breaks this row's measured wall time down by HKS
	// stage (-profile only). The recorder is reset per row, so each
	// row's shares cover exactly its own measured section. On the
	// serial row the instrumentation is sequential and covers the whole
	// switch, so the shares sum to ~1.0 of wall — the invariant the
	// perf gate pins; engine rows record per-worker time, so their sums
	// approach the effective parallelism instead.
	StageShares []obs.StageShare `json:"stage_shares,omitempty"`
}

// hoistedRow compares, for one dataflow, k independent switches
// against one hoisted switch over the same k keys. Ops/sec counts
// finished key switches (k per request on both sides).
type hoistedRow struct {
	Dataflow         string  `json:"dataflow"`
	PerRotOpsPerSec  float64 `json:"per_rotation_ops_per_sec"`
	HoistedOpsPerSec float64 `json:"hoisted_ops_per_sec"`
	MeasuredSpeedup  float64 `json:"measured_speedup"`
	ModelDeltaPct    float64 `json:"model_delta_pct"`
}

// hoistedReport reconciles the measured hoisting gain against the
// HoistedOpsSaved model (satellite of the paper's reuse analysis).
type hoistedReport struct {
	Rotations      int          `json:"rotations"`
	SwitchModOps   int64        `json:"switch_mod_ops"`
	ModUpModOps    int64        `json:"modup_mod_ops"`
	ModelOpsSaved  int64        `json:"model_ops_saved"`
	ModelSavedFrac float64      `json:"model_saved_frac"`
	ModelSpeedup   float64      `json:"model_speedup"`
	BitExact       bool         `json:"bit_exact"`
	Results        []hoistedRow `json:"results"`
}

// throughputReport is the JSON artifact the bench harness tracks
// (BENCH_engine.json).
type throughputReport struct {
	N        int             `json:"n"`
	Towers   int             `json:"towers"`
	Dnum     int             `json:"dnum"`
	Workers  int             `json:"workers"`
	NumCPU   int             `json:"num_cpu"`
	BitExact bool            `json:"bit_exact"`
	Results  []throughputRow `json:"results"`
	Hoisted  *hoistedReport  `json:"hoisted,omitempty"`
}

func parseThroughputDataflows(name string) ([]dataflow.Dataflow, error) {
	switch strings.ToLower(name) {
	case "", "all":
		return []dataflow.Dataflow{dataflow.MP, dataflow.DC, dataflow.OC}, nil
	case "mp":
		return []dataflow.Dataflow{dataflow.MP}, nil
	case "dc":
		return []dataflow.Dataflow{dataflow.DC}, nil
	case "oc":
		return []dataflow.Dataflow{dataflow.OC}, nil
	case "ocf":
		return []dataflow.Dataflow{dataflow.OCF}, nil
	}
	return nil, fmt.Errorf("unknown dataflow %q (want mp, dc, oc, ocf, or all)", name)
}

func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func measure(requests int, op func(i int)) (opsPerSec, p50, p99 float64) {
	lats := make([]time.Duration, requests)
	start := time.Now()
	for i := 0; i < requests; i++ {
		t0 := time.Now()
		op(i)
		lats[i] = time.Since(t0)
	}
	total := time.Since(start)
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return float64(requests) / total.Seconds(), percentileMs(lats, 50), percentileMs(lats, 99)
}

// throughputRun executes the experiment and returns the report; split
// from the printing so tests can exercise it directly. rotations > 0
// adds the hoisted experiment: k switches of one input, shared ModUp
// versus per-rotation, reconciled against the HoistedOpsSaved model.
func throughputRun(dfName string, workers, requests, logN, towers, dnum, rotations int) (*throughputReport, error) {
	dfs, err := parseThroughputDataflows(dfName)
	if err != nil {
		return nil, err
	}
	if requests < 1 {
		return nil, fmt.Errorf("need at least 1 request, got %d", requests)
	}
	if logN < 4 || logN > 16 {
		return nil, fmt.Errorf("logn %d out of range [4,16]", logN)
	}
	if rotations < 0 || rotations == 1 {
		return nil, fmt.Errorf("rotations %d must be 0 (disabled) or >= 2", rotations)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := 1 << logN
	r, err := ring.NewRingGenerated(n, towers, 40, 3, 41)
	if err != nil {
		return nil, err
	}
	sw, err := hks.NewSwitcher(r, towers-1, dnum)
	if err != nil {
		return nil, err
	}
	s := ring.NewSampler(r, 1)
	full := r.DBasis(r.NumQ - 1)
	evk := sw.GenEvk(s, s.Ternary(full), s.Ternary(full))

	// Pre-generate the request inputs so sampling stays off the clock.
	ds := make([]*ring.Poly, requests)
	for i := range ds {
		ds[i] = s.Uniform(sw.QBasis())
		ds[i].IsNTT = true
	}

	rep := &throughputReport{
		N: n, Towers: towers, Dnum: dnum,
		Workers: workers, NumCPU: runtime.NumCPU(),
		BitExact: true,
	}

	// Reference output for the bit-exactness check; doubling as the
	// serial warm-up so the baseline's converter scratch pools are as
	// warm as the engine path's (the remaining serial/parallel gap at
	// 1 worker is the serial API's per-op polynomial allocation).
	ref0, ref1 := sw.KeySwitch(ds[0], evk)

	// With -profile active, reset the recorder before each measured
	// section and convert its snapshot into that row's stage shares
	// (share = stage seconds / section wall seconds), so warm-up and
	// verification switches never pollute a row's breakdown.
	profiling := obs.Active() != nil
	resetProfile := func() {
		if profiling {
			obs.Enable()
		}
	}
	rowShares := func(opsPerSec float64) []obs.StageShare {
		if !profiling || opsPerSec <= 0 {
			return nil
		}
		return obs.Shares(obs.Active().Snapshot(), float64(requests)/opsPerSec)
	}

	// Serial baseline.
	resetProfile()
	ops, p50, p99 := measure(requests, func(i int) { sw.KeySwitch(ds[i], evk) })
	rep.Results = append(rep.Results, throughputRow{
		Dataflow: "serial", Requests: requests,
		OpsPerSec: ops, P50Ms: p50, P99Ms: p99, Speedup: 1,
		StageShares: rowShares(ops),
	})
	serialOps := ops

	e := engine.New(workers)
	defer e.Close()
	c0 := r.NewPoly(sw.QBasis())
	c1 := r.NewPoly(sw.QBasis())
	for _, df := range dfs {
		// One warm-up switch populates the pooled state and verifies
		// the engine path against the serial reference.
		sw.SwitchParallelInto(e, df, ds[0], evk, c0, c1)
		if !c0.Equal(ref0) || !c1.Equal(ref1) {
			rep.BitExact = false
			return rep, fmt.Errorf("%s parallel output differs from serial", df)
		}
		resetProfile()
		ops, p50, p99 := measure(requests, func(i int) {
			sw.SwitchParallelInto(e, df, ds[i], evk, c0, c1)
		})
		rep.Results = append(rep.Results, throughputRow{
			Dataflow: df.String(), Requests: requests,
			OpsPerSec: ops, P50Ms: p50, P99Ms: p99, Speedup: ops / serialOps,
			StageShares: rowShares(ops),
		})
	}

	if rotations > 0 {
		rep.Hoisted, err = hoistedRun(e, sw, s, dfs, ds, requests, rotations)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// hoistedRun measures k rotations of one ciphertext as k independent
// switches versus one hoisted switch (shared ModUp), per dataflow plus
// the serial pipeline, and reconciles the gain with the model.
func hoistedRun(e *engine.Engine, sw *hks.Switcher, s *ring.Sampler, dfs []dataflow.Dataflow, ds []*ring.Poly, requests, k int) (*hoistedReport, error) {
	r := sw.R
	full := r.DBasis(r.NumQ - 1)
	sk := s.Ternary(full)
	evks := make([]*hks.Evk, k)
	for i := range evks {
		evks[i] = sw.GenEvk(s, s.Ternary(full), sk)
	}

	hr := &hoistedReport{
		Rotations:      k,
		SwitchModOps:   sw.SwitchOps(),
		ModUpModOps:    sw.ModUpOps(),
		ModelOpsSaved:  sw.HoistedOpsSaved(k),
		ModelSpeedup:   sw.HoistedSpeedupModel(k),
		ModelSavedFrac: float64(sw.HoistedOpsSaved(k)) / float64(int64(k)*sw.SwitchOps()),
		BitExact:       true,
	}

	// Bit-exactness: the hoisted outputs must equal the per-rotation
	// path key for key (serial reference doubles as warm-up).
	want0 := make([]*ring.Poly, k)
	want1 := make([]*ring.Poly, k)
	for i, evk := range evks {
		want0[i], want1[i] = sw.KeySwitch(ds[0], evk)
	}
	c0s := make([]*ring.Poly, k)
	c1s := make([]*ring.Poly, k)
	for i := range c0s {
		c0s[i] = r.NewPoly(sw.QBasis())
		c1s[i] = r.NewPoly(sw.QBasis())
	}

	row := func(name string, perRot, hoisted func(i int)) {
		perOps, _, _ := measure(requests, perRot)
		hoOps, _, _ := measure(requests, hoisted)
		measuredSpeedup := hoOps / perOps
		hr.Results = append(hr.Results, hoistedRow{
			Dataflow:         name,
			PerRotOpsPerSec:  perOps * float64(k),
			HoistedOpsPerSec: hoOps * float64(k),
			MeasuredSpeedup:  measuredSpeedup,
			ModelDeltaPct:    analysis.HoistingDelta(measuredSpeedup, hr.ModelSpeedup),
		})
	}

	// Serial pipeline.
	sc0s, sc1s := sw.SwitchHoisted(ds[0], evks)
	for i := range evks {
		if !sc0s[i].Equal(want0[i]) || !sc1s[i].Equal(want1[i]) {
			hr.BitExact = false
			return hr, fmt.Errorf("serial hoisted output %d differs from per-rotation", i)
		}
	}
	row("serial",
		func(i int) {
			for _, evk := range evks {
				sw.KeySwitch(ds[i%len(ds)], evk)
			}
		},
		func(i int) { sw.SwitchHoisted(ds[i%len(ds)], evks) })

	for _, df := range dfs {
		// Warm the pools and verify against the per-rotation path.
		sw.SwitchHoistedParallelInto(e, df, ds[0], evks, c0s, c1s)
		for i := range evks {
			if !c0s[i].Equal(want0[i]) || !c1s[i].Equal(want1[i]) {
				hr.BitExact = false
				return hr, fmt.Errorf("%s hoisted output %d differs from per-rotation", df, i)
			}
		}
		row(df.String(),
			func(i int) {
				d := ds[i%len(ds)]
				for ki, evk := range evks {
					sw.SwitchParallelInto(e, df, d, evk, c0s[ki], c1s[ki])
				}
			},
			func(i int) { sw.SwitchHoistedParallelInto(e, df, ds[i%len(ds)], evks, c0s, c1s) })
	}
	return hr, nil
}

func throughput(dfName string, workers, requests, logN, towers, dnum, rotations int, jsonPath string, profile bool, tracePath, pprofDir string) error {
	finishObs := setupObs(profile, tracePath)
	stopPprof, err := startPprof(pprofDir)
	if err != nil {
		return err
	}
	rep, err := throughputRun(dfName, workers, requests, logN, towers, dnum, rotations)
	if perr := stopPprof(); err == nil {
		err = perr
	}
	if oerr := finishObs(); err == nil {
		err = oerr
	}
	if err != nil {
		return err
	}

	fmt.Printf("Engine throughput: N=2^%d, %d towers, dnum=%d, %d workers (%d CPUs), %d requests\n",
		logN, rep.Towers, rep.Dnum, rep.Workers, rep.NumCPU, requests)
	fmt.Println("(parallel outputs verified bit-exact against the serial pipeline;")
	fmt.Println(" speedup includes the engine path's zero-alloc pooling, not only parallelism)")
	fmt.Printf("%-8s %12s %10s %10s %9s\n", "dataflow", "ops/sec", "p50 ms", "p99 ms", "speedup")
	for _, row := range rep.Results {
		fmt.Printf("%-8s %12.2f %10.3f %10.3f %8.2fx\n",
			row.Dataflow, row.OpsPerSec, row.P50Ms, row.P99Ms, row.Speedup)
	}
	if rep.NumCPU == 1 {
		fmt.Println("note: only one CPU is available; intra-op parallelism cannot beat serial here")
	}
	for _, row := range rep.Results {
		if len(row.StageShares) == 0 {
			continue
		}
		fmt.Printf("\nStage profile (%s):\n", row.Dataflow)
		printStageShares(row.StageShares)
	}

	if hr := rep.Hoisted; hr != nil {
		fmt.Printf("\nHoisted: %d rotations of one ciphertext, shared ModUp vs per-rotation\n", hr.Rotations)
		fmt.Printf("(model: ModUp is %d of %d weighted mod ops per switch; hoisting saves %.0f%%"+
			" of the batch -> %.2fx predicted)\n",
			hr.ModUpModOps, hr.SwitchModOps, 100*hr.ModelSavedFrac, hr.ModelSpeedup)
		fmt.Printf("%-8s %14s %14s %10s %12s\n", "dataflow", "per-rot op/s", "hoisted op/s", "speedup", "vs model")
		for _, row := range hr.Results {
			fmt.Printf("%-8s %14.2f %14.2f %9.2fx %+11.1f%%\n",
				row.Dataflow, row.PerRotOpsPerSec, row.HoistedOpsPerSec,
				row.MeasuredSpeedup, row.ModelDeltaPct)
		}
	}

	if jsonPath != "" {
		if err := writeJSONReport(jsonPath, rep); err != nil {
			return err
		}
	}
	return nil
}
