package main

// perfgate is the CI performance-regression gate: it compares a fresh
// throughput report (make bench) against the committed baseline
// (BENCH_engine.json) and fails only on gross regressions. The
// tolerance is deliberately generous — the baseline and the CI runner
// are different machines, so the gate catches order-of-magnitude
// breakage (an accidentally serialized hot path, a lost pool), not
// noise.

import (
	"encoding/json"
	"fmt"
	"os"
)

func readReport(path string) (*throughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep throughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no result rows", path)
	}
	return &rep, nil
}

// perfgate compares fresh against baseline; maxRegression is the
// allowed ops/sec ratio (2.0 = fail only when fresh is less than half
// the baseline).
func perfgate(baselinePath, freshPath string, maxRegression float64) error {
	if maxRegression < 1 {
		return fmt.Errorf("max regression %g must be >= 1", maxRegression)
	}
	base, err := readReport(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fresh, err := readReport(freshPath)
	if err != nil {
		return fmt.Errorf("fresh: %w", err)
	}
	if !fresh.BitExact {
		return fmt.Errorf("fresh report is not bit-exact with the serial pipeline")
	}

	baseRows := map[string]throughputRow{}
	for _, row := range base.Results {
		baseRows[row.Dataflow] = row
	}

	var failures []string
	fmt.Printf("Perf gate: fresh %s vs baseline %s (fail below 1/%.1fx)\n",
		freshPath, baselinePath, maxRegression)
	fmt.Printf("%-8s %14s %14s %8s %6s\n", "dataflow", "baseline op/s", "fresh op/s", "ratio", "gate")
	for _, row := range fresh.Results {
		b, ok := baseRows[row.Dataflow]
		if !ok {
			fmt.Printf("%-8s %14s %14.2f %8s %6s\n", row.Dataflow, "-", row.OpsPerSec, "-", "new")
			continue
		}
		ratio := row.OpsPerSec / b.OpsPerSec
		status := "ok"
		if row.OpsPerSec*maxRegression < b.OpsPerSec {
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.2f ops/sec vs baseline %.2f (>%.1fx regression)",
					row.Dataflow, row.OpsPerSec, b.OpsPerSec, maxRegression))
		}
		fmt.Printf("%-8s %14.2f %14.2f %7.2fx %6s\n", row.Dataflow, b.OpsPerSec, row.OpsPerSec, ratio, status)
	}

	// Hoisting must never lose to the per-rotation path: it executes
	// strictly less work, so a speedup below 1 means the shared-ModUp
	// path broke, independent of machine speed. A baseline with a
	// hoisted section pins that section in the fresh report too —
	// otherwise dropping -hoisted from the bench flags would silently
	// make this half of the gate vacuous.
	if base.Hoisted != nil && fresh.Hoisted == nil {
		failures = append(failures, "baseline has a hoisted section but the fresh report does not (bench run without -hoisted?)")
	}
	if fresh.Hoisted != nil {
		if !fresh.Hoisted.BitExact {
			failures = append(failures, "hoisted outputs not bit-exact with per-rotation")
		}
		for _, row := range fresh.Hoisted.Results {
			status := "ok"
			if row.MeasuredSpeedup < 1 {
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("hoisted %s: %.2fx slower than per-rotation", row.Dataflow, row.MeasuredSpeedup))
			}
			fmt.Printf("hoisted %-8s %.2fx vs per-rotation (model %.2fx) %s\n",
				row.Dataflow, row.MeasuredSpeedup, fresh.Hoisted.ModelSpeedup, status)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "perf regression:", f)
		}
		return fmt.Errorf("%d perf gate failure(s)", len(failures))
	}
	fmt.Println("perf gate passed")
	return nil
}
