package main

// perfgate is the CI performance-regression gate: it compares a fresh
// throughput report (make bench) against the committed baseline
// (BENCH_engine.json) and fails only on gross regressions. The
// tolerance is deliberately generous — the baseline and the CI runner
// are different machines, so the gate catches order-of-magnitude
// breakage (an accidentally serialized hot path, a lost pool), not
// noise.

import (
	"encoding/json"
	"fmt"
	"os"

	"ciflow/internal/obs"
)

func readReport(path string) (*throughputReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep throughputReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s: no result rows", path)
	}
	return &rep, nil
}

func readServeReport(path string) (*serveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Requests == 0 {
		return nil, fmt.Errorf("%s: no served requests", path)
	}
	return &rep, nil
}

func readWorkloadReport(path string) (*workloadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep workloadReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Served == 0 {
		return nil, fmt.Errorf("%s: no served switches", path)
	}
	return &rep, nil
}

// perfgateWorkload gates one schedule-DAG replay report pair: the
// generous ops/sec tolerance, plus the machine-independent schedule
// invariants — the replay bit-exact with serial execution, measured
// counters equal to the schedule's predictions (one ModUp per group
// means zero coalesces across dependent chain steps and none missing
// inside hoist groups), dependency order respected, and — when the
// schedule has hoistable fan-outs — a hoist-group coalescing factor
// above 1 — which must hold at any speed. It gates both the generated
// bench schedule (label "workload") and the imported library scenario
// (label "scenario"); the label prefixes every failure so the two
// gates stay distinguishable in CI output.
func perfgateWorkload(label, baselinePath, freshPath string, maxRegression float64, failures *[]string) error {
	base, err := readWorkloadReport(baselinePath)
	if err != nil {
		return fmt.Errorf("%s baseline: %w", label, err)
	}
	fresh, err := readWorkloadReport(freshPath)
	if err != nil {
		return fmt.Errorf("%s fresh: %w", label, err)
	}
	ratio := fresh.OpsPerSec / base.OpsPerSec
	status := "ok"
	if fresh.OpsPerSec*maxRegression < base.OpsPerSec {
		status = "FAIL"
		*failures = append(*failures,
			fmt.Sprintf("%s: %.2f ops/sec vs baseline %.2f (>%.1fx regression)",
				label, fresh.OpsPerSec, base.OpsPerSec, maxRegression))
	}
	fmt.Printf("%-8s %14.2f %14.2f %7.2fx %6s\n", label, base.OpsPerSec, fresh.OpsPerSec, ratio, status)
	if !fresh.BitExact {
		*failures = append(*failures, label+": replay not bit-exact with serial schedule execution")
	}
	if !fresh.CountsExact {
		*failures = append(*failures,
			fmt.Sprintf("%s: measured counters drifted from the schedule's prediction: %v",
				label, fresh.Mismatches))
	}
	if fresh.DepViolations != 0 {
		*failures = append(*failures,
			fmt.Sprintf("%s: %d dependency-order violations", label, fresh.DepViolations))
	}
	if fresh.Predicted.HoistGroups > 0 && fresh.HoistCoalescingFactor <= 1 {
		*failures = append(*failures,
			fmt.Sprintf("%s: hoist-group coalescing factor %.2f, want > 1", label, fresh.HoistCoalescingFactor))
	}
	// The baseline pins the schedule shape, like the serve gate pins
	// the tenant matrix: a bench run against a smaller or
	// dependency-free schedule must not pass just because its own
	// internal invariants hold.
	if fresh.Predicted.Switches < base.Predicted.Switches {
		*failures = append(*failures,
			fmt.Sprintf("%s: fresh schedule has %d switches, baseline %d (bench run with a smaller schedule?)",
				label, fresh.Predicted.Switches, base.Predicted.Switches))
	}
	if fresh.Predicted.HoistGroups < base.Predicted.HoistGroups {
		*failures = append(*failures,
			fmt.Sprintf("%s: fresh schedule has %d hoist groups, baseline %d (bench run with a flatter schedule?)",
				label, fresh.Predicted.HoistGroups, base.Predicted.HoistGroups))
	}
	if fresh.Predicted.Depth < base.Predicted.Depth {
		*failures = append(*failures,
			fmt.Sprintf("%s: fresh schedule has depth %d, baseline %d (bench run with a shallower schedule?)",
				label, fresh.Predicted.Depth, base.Predicted.Depth))
	}
	fmt.Printf("%s %s: %d switches, %d/%d ModUps (predicted/measured), hoist coalescing %.2fx, depth %d\n",
		label, fresh.Schedule, fresh.Served, fresh.Predicted.ModUps, fresh.ModUps,
		fresh.HoistCoalescingFactor, fresh.Predicted.Depth)
	return nil
}

func readClusterReport(path string) (*clusterReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep clusterReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Served == 0 {
		return nil, fmt.Errorf("%s: no served switches", path)
	}
	return &rep, nil
}

// perfgateCluster gates the sharded serving fabric: the generous
// ops/sec tolerance, plus the distribution invariants that must hold
// at any speed — per-shard stats summing exactly to tenants x the
// schedule prediction, bit-exactness end-to-end over the wire, exact
// router delivery and attribution (no result lost or double-counted
// across retries), and dependency order. The baseline pins the fabric
// shape: a bench run with fewer shards or tenants — or without the
// mid-replay drain — must not pass just because its own invariants
// hold.
func perfgateCluster(baselinePath, freshPath string, maxRegression float64, failures *[]string) error {
	base, err := readClusterReport(baselinePath)
	if err != nil {
		return fmt.Errorf("cluster baseline: %w", err)
	}
	fresh, err := readClusterReport(freshPath)
	if err != nil {
		return fmt.Errorf("cluster fresh: %w", err)
	}
	ratio := fresh.OpsPerSec / base.OpsPerSec
	status := "ok"
	if fresh.OpsPerSec*maxRegression < base.OpsPerSec {
		status = "FAIL"
		*failures = append(*failures,
			fmt.Sprintf("cluster: %.2f ops/sec vs baseline %.2f (>%.1fx regression)",
				fresh.OpsPerSec, base.OpsPerSec, maxRegression))
	}
	fmt.Printf("%-8s %14.2f %14.2f %7.2fx %6s\n", "cluster", base.OpsPerSec, fresh.OpsPerSec, ratio, status)
	if err := clusterCheck(fresh); err != nil {
		*failures = append(*failures, err.Error())
	}
	if fresh.Shards < base.Shards {
		*failures = append(*failures,
			fmt.Sprintf("cluster: fresh report covers %d shards, baseline %d (bench run with fewer shards?)",
				fresh.Shards, base.Shards))
	}
	if fresh.Tenants < base.Tenants {
		*failures = append(*failures,
			fmt.Sprintf("cluster: fresh report covers %d tenants, baseline %d (bench run with fewer tenants?)",
				fresh.Tenants, base.Tenants))
	}
	if base.Drained >= 0 && fresh.Drained < 0 {
		*failures = append(*failures,
			"cluster: baseline drained a shard mid-replay but the fresh run did not (bench run without -kill?)")
	}
	// clusterCheck above already fails when a profiled run's merged
	// histograms drift from the per-shard sums; this pin keeps the
	// profile in the fresh report at all (bench run without -profile).
	if base.Profiled && !fresh.Profiled {
		*failures = append(*failures,
			"cluster: baseline shipped shard stage profiles but the fresh run did not (bench run without -profile?)")
	}
	fmt.Printf("cluster %s: %d shards x %d tenants, %d delivered, shard-sum exact %v, bit-exact %v, drained shard %d\n",
		fresh.Schedule, fresh.Shards, fresh.Tenants, fresh.Delivered,
		fresh.ShardSumExact, fresh.BitExact, fresh.Drained)
	return nil
}

// perfgateServe gates the serving layer: same generous ops/sec
// tolerance as the throughput gate, plus the machine-independent
// invariants — bit-exactness, coalescing actually sharing ModUps, the
// key cache actually hitting (globally and per tenant), resident key
// bytes within the budget, and keyspace isolation (every ModUp belongs
// to exactly one tenant; no tenant starved) — which must hold at any
// speed. A baseline with tenant stats pins them in the fresh report
// too, so dropping -tenants from the bench flags cannot silently
// vacate the isolation half of the gate.
func perfgateServe(baselinePath, freshPath string, maxRegression float64, failures *[]string) error {
	base, err := readServeReport(baselinePath)
	if err != nil {
		return fmt.Errorf("serve baseline: %w", err)
	}
	fresh, err := readServeReport(freshPath)
	if err != nil {
		return fmt.Errorf("serve fresh: %w", err)
	}
	ratio := fresh.OpsPerSec / base.OpsPerSec
	status := "ok"
	if fresh.OpsPerSec*maxRegression < base.OpsPerSec {
		status = "FAIL"
		*failures = append(*failures,
			fmt.Sprintf("serve: %.2f ops/sec vs baseline %.2f (>%.1fx regression)",
				fresh.OpsPerSec, base.OpsPerSec, maxRegression))
	}
	fmt.Printf("%-8s %14.2f %14.2f %7.2fx %6s\n", "serve", base.OpsPerSec, fresh.OpsPerSec, ratio, status)
	if !fresh.BitExact {
		*failures = append(*failures, "serve: results not bit-exact with direct SwitchHoisted")
	}
	if fresh.CoalescingFactor <= 1 {
		*failures = append(*failures,
			fmt.Sprintf("serve: coalescing factor %.2f, want > 1", fresh.CoalescingFactor))
	}
	if fresh.KeyHitRate <= 0.5 {
		*failures = append(*failures,
			fmt.Sprintf("serve: key cache hit rate %.2f, want > 0.5", fresh.KeyHitRate))
	}
	if fresh.KeyBudget > 0 && fresh.KeyBytes > fresh.KeyBudget {
		*failures = append(*failures,
			fmt.Sprintf("serve: resident key bytes %d exceed the %d budget", fresh.KeyBytes, fresh.KeyBudget))
	}
	// Compression invariants. The baseline pins both the compressed
	// form and the (halved) budget: a bench run without -keycomp, or
	// with the budget quietly loosened back up, must not pass.
	if base.KeyComp && !fresh.KeyComp {
		*failures = append(*failures,
			"serve: baseline caches compressed keys but the fresh run does not (bench run without -keycomp?)")
	}
	if base.KeyBudget > 0 && fresh.KeyBudget > base.KeyBudget {
		*failures = append(*failures,
			fmt.Sprintf("serve: fresh key budget %d above baseline %d (bench run with a loosened budget?)",
				fresh.KeyBudget, base.KeyBudget))
	}
	if fresh.KeyComp {
		if fresh.KeyExpansions == 0 {
			*failures = append(*failures, "serve: compressed run counted no streamed key expansions")
		}
		if fresh.KeyDenseBytes <= fresh.KeyBytes {
			*failures = append(*failures,
				fmt.Sprintf("serve: dense-equivalent footprint %d not above compressed resident %d",
					fresh.KeyDenseBytes, fresh.KeyBytes))
		}
	}
	if len(fresh.Tenants) < len(base.Tenants) {
		*failures = append(*failures,
			fmt.Sprintf("serve: fresh report covers %d tenants, baseline %d (bench run with a smaller -tenants matrix?)",
				len(fresh.Tenants), len(base.Tenants)))
	}
	var tenantModUps uint64
	for _, ts := range fresh.Tenants {
		if ts.KeyHitRate <= 0.5 {
			*failures = append(*failures,
				fmt.Sprintf("serve: tenant %s key hit rate %.2f, want > 0.5", ts.Tenant, ts.KeyHitRate))
		}
		if ts.Served == 0 {
			*failures = append(*failures,
				fmt.Sprintf("serve: tenant %s served nothing (starved)", ts.Tenant))
		}
		tenantModUps += ts.ModUps
	}
	if len(fresh.Tenants) > 0 && tenantModUps != fresh.ModUps {
		*failures = append(*failures,
			fmt.Sprintf("serve: per-tenant ModUps sum %d != global %d (cross-tenant coalescing)",
				tenantModUps, fresh.ModUps))
	}
	// Observability pins: a baseline with stage shares or phase
	// counters keeps them in the fresh report, so the bench flags
	// cannot silently drop -profile or lose the lifecycle counters.
	if len(base.StageShares) > 0 {
		if len(fresh.StageShares) == 0 {
			*failures = append(*failures,
				"serve: baseline has stage shares but the fresh report does not (bench run without -profile?)")
		} else if sum := obs.SumShares(fresh.StageShares); sum <= 0 {
			*failures = append(*failures,
				fmt.Sprintf("serve: stage shares sum to %.3f, want > 0", sum))
		}
	}
	if len(base.Phases) > 0 && len(fresh.Phases) == 0 {
		*failures = append(*failures,
			"serve: baseline has request-lifecycle phases but the fresh report does not")
	}
	form := "dense keys"
	if fresh.KeyComp {
		form = fmt.Sprintf("compressed keys (%d expansions, dense-equivalent %d bytes)",
			fresh.KeyExpansions, fresh.KeyDenseBytes)
	}
	fmt.Printf("serve coalescing %.2fx, key hit rate %.0f%%, %d tenants, resident %d/%d key bytes, %s\n",
		fresh.CoalescingFactor, 100*fresh.KeyHitRate, len(fresh.Tenants), fresh.KeyBytes, fresh.KeyBudget, form)
	return nil
}

// perfgateConfig names the report pairs the gate compares. Baseline
// is always required; each optional baseline/fresh pair extends the
// gate to another layer — serve (serving layer), workload (generated
// schedule-DAG replay), scenario (imported library scenario replay),
// cluster (sharded serving fabric).
type perfgateConfig struct {
	Baseline, Fresh                 string
	MaxRegression                   float64
	ServeBaseline, ServeFresh       string
	WorkloadBaseline, WorkloadFresh string
	ScenarioBaseline, ScenarioFresh string
	ClusterBaseline, ClusterFresh   string
}

// perfgate compares fresh against baseline; MaxRegression is the
// allowed ops/sec ratio (2.0 = fail only when fresh is less than half
// the baseline). Each optional pair in the config extends the gate to
// another layer's reports.
func perfgate(cfg perfgateConfig) error {
	if cfg.MaxRegression < 1 {
		return fmt.Errorf("max regression %g must be >= 1", cfg.MaxRegression)
	}
	maxRegression := cfg.MaxRegression
	if (cfg.ServeBaseline == "") != (cfg.ServeFresh == "") {
		return fmt.Errorf("-serve-baseline and -serve-fresh must be given together")
	}
	if (cfg.WorkloadBaseline == "") != (cfg.WorkloadFresh == "") {
		return fmt.Errorf("-workload-baseline and -workload-fresh must be given together")
	}
	if (cfg.ScenarioBaseline == "") != (cfg.ScenarioFresh == "") {
		return fmt.Errorf("-scenario-baseline and -scenario-fresh must be given together")
	}
	if (cfg.ClusterBaseline == "") != (cfg.ClusterFresh == "") {
		return fmt.Errorf("-cluster-baseline and -cluster-fresh must be given together")
	}
	base, err := readReport(cfg.Baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fresh, err := readReport(cfg.Fresh)
	if err != nil {
		return fmt.Errorf("fresh: %w", err)
	}
	if !fresh.BitExact {
		return fmt.Errorf("fresh report is not bit-exact with the serial pipeline")
	}

	baseRows := map[string]throughputRow{}
	for _, row := range base.Results {
		baseRows[row.Dataflow] = row
	}

	var failures []string
	fmt.Printf("Perf gate: fresh %s vs baseline %s (fail below 1/%.1fx)\n",
		cfg.Fresh, cfg.Baseline, maxRegression)
	fmt.Printf("%-8s %14s %14s %8s %6s\n", "dataflow", "baseline op/s", "fresh op/s", "ratio", "gate")
	for _, row := range fresh.Results {
		b, ok := baseRows[row.Dataflow]
		if !ok {
			fmt.Printf("%-8s %14s %14.2f %8s %6s\n", row.Dataflow, "-", row.OpsPerSec, "-", "new")
			continue
		}
		ratio := row.OpsPerSec / b.OpsPerSec
		status := "ok"
		if row.OpsPerSec*maxRegression < b.OpsPerSec {
			status = "FAIL"
			failures = append(failures,
				fmt.Sprintf("%s: %.2f ops/sec vs baseline %.2f (>%.1fx regression)",
					row.Dataflow, row.OpsPerSec, b.OpsPerSec, maxRegression))
		}
		fmt.Printf("%-8s %14.2f %14.2f %7.2fx %6s\n", row.Dataflow, b.OpsPerSec, row.OpsPerSec, ratio, status)
	}

	// Stage-share accounting. The serial row runs the switch pipeline
	// on one goroutine with no engine underneath, so its profiled
	// stage times must tile the measured wall time: the share sum is
	// pinned to 1 within 10%. Engine rows overlap stages across
	// workers (plus the caller draining the graph), so they only get a
	// sanity band — nonzero and at most workers+2 times the wall. A
	// baseline with serial shares pins them in the fresh report, so
	// dropping -profile from the bench flags cannot vacate the gate.
	for _, row := range fresh.Results {
		b, pinned := baseRows[row.Dataflow]
		if pinned && len(b.StageShares) > 0 && len(row.StageShares) == 0 {
			failures = append(failures,
				fmt.Sprintf("%s: baseline has stage shares but the fresh report does not (bench run without -profile?)", row.Dataflow))
			continue
		}
		if len(row.StageShares) == 0 {
			continue
		}
		sum := obs.SumShares(row.StageShares)
		if row.Dataflow == "serial" {
			if sum < 0.9 || sum > 1.1 {
				failures = append(failures,
					fmt.Sprintf("serial: stage shares sum to %.3f of wall time, want within 10%% of 1.0", sum))
			}
			fmt.Printf("serial stage shares sum %.3f of wall (gate [0.9, 1.1])\n", sum)
		} else {
			limit := float64(fresh.Workers + 2)
			if sum <= 0 || sum > limit {
				failures = append(failures,
					fmt.Sprintf("%s: stage shares sum to %.3f of wall time, want in (0, %.0f] at %d workers",
						row.Dataflow, sum, limit, fresh.Workers))
			}
		}
	}

	// Hoisting must never lose to the per-rotation path: it executes
	// strictly less work, so a speedup below 1 means the shared-ModUp
	// path broke, independent of machine speed. A baseline with a
	// hoisted section pins that section in the fresh report too —
	// otherwise dropping -hoisted from the bench flags would silently
	// make this half of the gate vacuous.
	if base.Hoisted != nil && fresh.Hoisted == nil {
		failures = append(failures, "baseline has a hoisted section but the fresh report does not (bench run without -hoisted?)")
	}
	if fresh.Hoisted != nil {
		if !fresh.Hoisted.BitExact {
			failures = append(failures, "hoisted outputs not bit-exact with per-rotation")
		}
		for _, row := range fresh.Hoisted.Results {
			status := "ok"
			if row.MeasuredSpeedup < 1 {
				status = "FAIL"
				failures = append(failures,
					fmt.Sprintf("hoisted %s: %.2fx slower than per-rotation", row.Dataflow, row.MeasuredSpeedup))
			}
			fmt.Printf("hoisted %-8s %.2fx vs per-rotation (model %.2fx) %s\n",
				row.Dataflow, row.MeasuredSpeedup, fresh.Hoisted.ModelSpeedup, status)
		}
	}

	if cfg.ServeBaseline != "" {
		if err := perfgateServe(cfg.ServeBaseline, cfg.ServeFresh, maxRegression, &failures); err != nil {
			return err
		}
	}
	if cfg.WorkloadBaseline != "" {
		if err := perfgateWorkload("workload", cfg.WorkloadBaseline, cfg.WorkloadFresh, maxRegression, &failures); err != nil {
			return err
		}
	}
	if cfg.ScenarioBaseline != "" {
		if err := perfgateWorkload("scenario", cfg.ScenarioBaseline, cfg.ScenarioFresh, maxRegression, &failures); err != nil {
			return err
		}
	}
	if cfg.ClusterBaseline != "" {
		if err := perfgateCluster(cfg.ClusterBaseline, cfg.ClusterFresh, maxRegression, &failures); err != nil {
			return err
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "perf regression:", f)
		}
		return fmt.Errorf("%d perf gate failure(s)", len(failures))
	}
	fmt.Println("perf gate passed")
	return nil
}
