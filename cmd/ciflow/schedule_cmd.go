package main

// The schedule experiment prints a workload schedule DAG at the
// paper's canonical geometry — without executing anything. For
// `-workload bootstrap` that is the CoeffToSlot/SlotToCoeff pipeline
// of a BTS parameter set over its own 2^16 slots and KL levels; for
// matvec/fanout, the BSGS and burst shapes at the set's top level;
// for pir/private-inference/evalmod, the library shapes at the same
// geometry. It reports the exact counts the DAG predicts for any
// correct executor (switches per level, ModUps with and without
// hoisting, per-level coalesces) next to the analysis model's cost
// estimate, which prices the same schedule's shared-ModUp savings
// through analysis.EstimateWorkload — the exact-counts / modeled-cost
// pair the dataflow analysis is about.
//
// -export FILE writes the schedule as versioned JSON (the canonical
// byte-stable form the testdata goldens pin); -import FILE loads and
// fully re-validates one instead of generating, so export→import is a
// lossless round trip and a hand-written DAG is either rejected with
// a precise structural error or printed/priced/replayed like any
// generated schedule.

import (
	"fmt"
	"os"

	"ciflow/internal/analysis"
	"ciflow/internal/params"
	"ciflow/internal/trace"
	"ciflow/internal/workload"
)

// scheduleReport is the JSON artifact of `ciflow schedule -json`.
type scheduleReport struct {
	Workload  string                      `json:"workload"`
	Bench     string                      `json:"bench"`
	Radix     int                         `json:"radix"`
	Schedule  string                      `json:"schedule"`
	Counts    workload.Counts             `json:"counts"`
	Estimates []analysis.WorkloadEstimate `json:"estimates"`
}

// scheduleFor builds the canonical schedule of one workload shape at
// a BTS parameter set's geometry, returning the set it priced against.
func scheduleFor(name string, bts int, radix, rotations, requests int) (*workload.Schedule, params.Benchmark, error) {
	b, err := workload.BTSBenchmark(bts)
	if err != nil {
		return nil, params.Benchmark{}, err
	}
	switch name {
	case "bootstrap":
		s, err := workload.BootstrapBTS(b, radix)
		return s, b, err
	case "matvec":
		s, err := workload.Matvec(rotations, requests, b.KL-1)
		return s, b, err
	case "fanout":
		s, err := workload.Fanout(requests, rotations, b.KL-1)
		return s, b, err
	case "pir":
		s, err := workload.PIR(requests, rotations, b.KL-1)
		return s, b, err
	case "private-inference":
		s, err := workload.PrivateInference(b.KL/2, rotations, requests, b.KL-1)
		return s, b, err
	case "evalmod":
		s, err := workload.EvalMod(b.KL, b.KL-1)
		return s, b, err
	default:
		return nil, params.Benchmark{}, fmt.Errorf("unknown workload %q (want fanout, bootstrap, matvec, pir, private-inference, or evalmod)", name)
	}
}

// writeScheduleDOT renders a workload schedule DAG through the
// trace-IR Graphviz writer: every key switch becomes one compute task
// (same IDs, same dependency edges), so the DOT output shows the
// hoist-group and dependency structure the replay executes.
func writeScheduleDOT(sched *workload.Schedule, path string) error {
	b := trace.NewBuilder()
	for _, nd := range sched.Nodes {
		label := nd.Stage
		if label == "" {
			label = nd.Kind.String()
		}
		if nd.Kind == workload.Rotate {
			label = fmt.Sprintf("%s r%d g%d L%d", label, nd.Rot, nd.Group, nd.Level)
		} else {
			label = fmt.Sprintf("%s g%d L%d", label, nd.Group, nd.Level)
		}
		b.Compute(label, 1, nd.Deps...)
	}
	prog := b.Program()
	if err := prog.Validate(); err != nil {
		return fmt.Errorf("schedule DOT: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := prog.WriteDOT(f, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes)\n", path, len(sched.Nodes))
	return nil
}

func scheduleCmd(r *analysis.Runner, name string, bts, radix, rotations, requests int, jsonPath, exportPath, importPath, dotPath string) error {
	var sched *workload.Schedule
	var b params.Benchmark
	var err error
	if importPath != "" {
		// Imported schedules are fully re-validated by ImportFile; the
		// -bts set still anchors the cost-model pricing below.
		if sched, err = workload.ImportFile(importPath); err != nil {
			return err
		}
		if b, err = workload.BTSBenchmark(bts); err != nil {
			return err
		}
		name = "import"
	} else if sched, b, err = scheduleFor(name, bts, radix, rotations, requests); err != nil {
		return err
	}
	if exportPath != "" {
		if err := sched.ExportFile(exportPath); err != nil {
			return err
		}
		fmt.Printf("exported %s to %s\n", sched.Name, exportPath)
	}
	if dotPath != "" {
		if err := writeScheduleDOT(sched, dotPath); err != nil {
			return err
		}
	}
	c := sched.Counts()

	fmt.Printf("Schedule %s (%s geometry)\n", sched.Name, b.Name)
	fmt.Printf("%-28s %8d  (%d rotations, %d relins)\n", "key switches", c.Switches, c.Rotations, c.Relins)
	fmt.Printf("%-28s %8d  (hoisted; %d unhoisted)\n", "ModUp executions", c.ModUps, c.ModUpsUnhoisted)
	fmt.Printf("%-28s %8d  of width up to %d (%d requests coalesced)\n",
		"hoistable fan-out groups", c.HoistGroups, c.MaxWidth, c.Coalesced)
	fmt.Printf("%-28s %8.2fx  overall, %.2fx inside hoist groups\n",
		"predicted coalescing", c.CoalescingFactor(), c.HoistCoalescingFactor())
	fmt.Printf("%-28s %8d  switches\n", "dependency depth", c.Depth)
	fmt.Printf("%-28s %8d\n", "distinct evaluation keys", c.DistinctKeys)
	fmt.Println("per level (top first):")
	fmt.Printf("  %-8s %-10s %-10s %s\n", "level", "switches", "mod_ups", "coalesced")
	for _, lc := range c.PerLevel {
		fmt.Printf("  %-8d %-10d %-10d %d\n", lc.Level, lc.Switches, lc.ModUps, lc.Coalesced)
	}
	fmt.Println()

	// The model half: price the same schedule's key-switch volume —
	// hoist-group structure included — on the RPU cost model at the
	// Table IV baseline bandwidth.
	w := analysis.Workload{
		Name:        sched.Name,
		Rotations:   c.Rotations,
		Mults:       c.Relins,
		HoistGroups: sched.HoistGroupSizes(),
	}
	rows, err := r.EstimateWorkload(w, b, true, analysis.BaselineBandwidthGBs)
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatWorkload(analysis.BaselineBandwidthGBs, rows))

	if jsonPath != "" {
		rep := &scheduleReport{
			Workload: name, Bench: b.Name, Radix: sched.Radix,
			Schedule: sched.Name, Counts: c, Estimates: rows,
		}
		if err := writeJSONReport(jsonPath, rep); err != nil {
			return err
		}
	}
	return nil
}
