package main

// The serve experiment is the load generator for internal/serve: it
// stands up the multi-tenant batching key-switch service — one
// ckks.KeyChain (keyspace) per tenant over a shared context, derived
// through serve.NewSeedKeySource (with -keycomp, serving
// seed-compressed key material), routed through one per-level
// switcher pool — and drives it with concurrent
// clients issuing overlapping rotation fan-outs across a (tenant,
// level) matrix: the request stream of diagonal-method linear-
// transform workloads, served instead of evaluated inline. The report
// is the serving counterpart of the throughput experiment: ops/sec and
// tail latency, plus the serving-specific reuse metrics — key cache
// hit rate, resident bytes vs the global budget, coalescing factor
// (requests per executed Decompose+ModUp) — each broken down per
// tenant, because the keyspace isolation invariants (no cross-tenant
// coalescing, no tenant starved) are what the perf gate pins.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/obs"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

// serveConfig is the parsed flag set of the serve experiment.
type serveConfig struct {
	dfName    string
	clients   int
	rps       int // per-client operations/sec; 0 = unpaced
	rotations int // fan-out width per operation
	ops       int // operations per client
	logN      int
	towers    int
	dnum      int
	workers   int
	rotPool   int   // distinct rotation amounts shared per keyspace
	tenants   int   // distinct keyspaces
	levels    int   // distinct ciphertext levels, topmost first
	keyBudget int64 // global key-cache byte budget; 0 = serve default
	keyComp   bool  // cache seed-compressed keys, expand per digit at use
	maxBatch  int
	window    time.Duration
}

// serveTenantReport is one tenant's slice of the serve report.
type serveTenantReport struct {
	Tenant        string  `json:"tenant"`
	Served        uint64  `json:"served"`
	P99Ms         float64 `json:"p99_ms"`
	ModUps        uint64  `json:"mod_ups"`
	KeyHitRate    float64 `json:"key_hit_rate"`
	KeyMisses     uint64  `json:"key_misses"`
	KeyEvictions  uint64  `json:"key_evictions"`
	KeyBytes      int64   `json:"key_bytes"`
	KeyExpansions uint64  `json:"key_expansions"`
}

// serveReport is the JSON artifact of the serve experiment
// (BENCH_serve.json in the bench/perfgate flow).
type serveReport struct {
	N           int     `json:"n"`
	Towers      int     `json:"towers"`
	Dnum        int     `json:"dnum"`
	Workers     int     `json:"workers"`
	NumCPU      int     `json:"num_cpu"`
	Dataflow    string  `json:"dataflow"`
	Clients     int     `json:"clients"`
	RPS         int     `json:"rps"`
	Rotations   int     `json:"rotations"`
	OpsPerCli   int     `json:"ops_per_client"`
	RotPool     int     `json:"rot_pool"`
	TenantCount int     `json:"tenants"`
	Levels      int     `json:"levels"`
	KeyBudget   int64   `json:"key_budget_bytes"`
	DurationSec float64 `json:"duration_sec"`

	Requests  uint64  `json:"requests"`    // key switches served
	OpsPerSec float64 `json:"ops_per_sec"` // served key switches per second
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`

	CoalescingFactor float64 `json:"coalescing_factor"`
	ModUps           uint64  `json:"mod_ups"`
	Coalesced        uint64  `json:"coalesced"`
	Batches          uint64  `json:"batches"`
	Groups           uint64  `json:"groups"`

	KeyHits      uint64 `json:"key_hits"`
	KeyMisses    uint64 `json:"key_misses"`
	KeyEvictions uint64 `json:"key_evictions"`
	// KeyBytes is the resident evaluation-key footprint at the end of
	// the run; the perf gate asserts it never exceeds KeyBudget.
	KeyBytes   int64   `json:"key_resident_bytes"`
	KeyHitRate float64 `json:"key_hit_rate"`
	// KeyComp records whether the cache held seed-compressed keys;
	// KeyDenseBytes is then the what-if dense footprint of the same
	// resident set, and KeyExpansions counts streamed per-digit
	// expansions (one per served request — hits expand too).
	KeyComp       bool   `json:"keycomp"`
	KeyDenseBytes int64  `json:"key_dense_bytes"`
	KeyExpansions uint64 `json:"key_expansions"`

	Tenants []serveTenantReport `json:"tenant_stats"`

	// Phases is the request-lifecycle breakdown (enqueue → dispatch →
	// keys → hoist → replay → reply) accumulated by the service;
	// always on, so it is present in every report.
	Phases []serve.PhaseStats `json:"phases,omitempty"`

	// StageShares breaks the run's wall time down by HKS stage
	// (-profile only). The service runs groups concurrently, so the
	// shares sum toward the effective parallelism, not 1.0.
	StageShares []obs.StageShare `json:"stage_shares,omitempty"`

	BitExact bool `json:"bit_exact"`
}

// serveRun executes the load generation and returns the report; split
// from the printing so tests can exercise it directly. A single
// -dataflow pins every request; "all" assigns MP/DC/OC to clients
// round-robin, exercising the service's per-dataflow grouping. Clients
// are spread round-robin over the (tenant, level) matrix: client c
// serves tenant c mod T at the (c div T mod L)-th level from the top.
func serveRun(cfg serveConfig) (*serveReport, error) {
	if cfg.clients < 1 {
		return nil, fmt.Errorf("need at least 1 client, got %d", cfg.clients)
	}
	if cfg.ops < 1 {
		return nil, fmt.Errorf("need at least 1 operation per client, got %d", cfg.ops)
	}
	if cfg.rotations < 1 {
		return nil, fmt.Errorf("need at least 1 rotation, got %d", cfg.rotations)
	}
	if cfg.rps < 0 {
		return nil, fmt.Errorf("rps %d must be >= 0", cfg.rps)
	}
	if cfg.logN < 4 || cfg.logN > 16 {
		return nil, fmt.Errorf("logn %d out of range [4,16]", cfg.logN)
	}
	if cfg.tenants < 1 {
		return nil, fmt.Errorf("need at least 1 tenant, got %d", cfg.tenants)
	}
	// Levels stop above 0 so every request can carry its level
	// explicitly (serve routes a zero Level to the default).
	if cfg.levels < 1 || cfg.levels >= cfg.towers {
		return nil, fmt.Errorf("levels %d out of range [1,%d] for %d towers", cfg.levels, cfg.towers-1, cfg.towers)
	}
	if cfg.keyBudget < 0 {
		return nil, fmt.Errorf("keybudget %d must be >= 0", cfg.keyBudget)
	}
	// Every (tenant, level) cell needs at least one client; otherwise
	// unexercised tenants would be absent from the report and the
	// per-tenant -check invariants would pass vacuously.
	if cfg.clients < cfg.tenants*cfg.levels {
		return nil, fmt.Errorf("%d clients cannot cover the %dx%d tenant/level matrix",
			cfg.clients, cfg.tenants, cfg.levels)
	}
	if cfg.rotPool == 0 {
		cfg.rotPool = cfg.rotations
	}
	if cfg.rotPool < cfg.rotations {
		return nil, fmt.Errorf("rotpool %d smaller than the fan-out %d", cfg.rotPool, cfg.rotations)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	dfs, err := parseThroughputDataflows(cfg.dfName)
	if err != nil {
		return nil, err
	}

	n := 1 << cfg.logN
	cctx, err := ckks.NewContext(n, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return nil, err
	}

	// One keyspace (secret + key chain) per tenant over the shared
	// context, built through the same seed-derived source the cluster
	// shards use (keys are pure functions of context + TenantSeed);
	// all of them route through the context's one per-level switcher
	// pool (switchers hold no secret material). With -keycomp the
	// source hands the cache seed-compressed material, so the service
	// expands the a-halves per digit, streamed under the hoist phase.
	tenantName := func(i int) string { return fmt.Sprintf("t%d", i) }
	names := make([]string, cfg.tenants)
	for i := range names {
		names[i] = tenantName(i)
	}
	src, err := serve.NewSeedKeySource(cctx, names, cfg.keyComp)
	if err != nil {
		return nil, err
	}
	levelAt := func(i int) int { return cctx.MaxLevel - i%cfg.levels }

	e := engine.New(cfg.workers)
	defer e.Close()
	svc, err := serve.New(cctx.Switchers(), src, serve.Config{
		Engine:       e,
		KeyBudget:    cfg.keyBudget,
		MaxBatch:     cfg.maxBatch,
		Window:       cfg.window,
		DefaultLevel: cctx.MaxLevel,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	rep := &serveReport{
		N: n, Towers: cfg.towers, Dnum: cfg.dnum,
		Workers: cfg.workers, NumCPU: runtime.NumCPU(),
		Dataflow: cfg.dfName, Clients: cfg.clients, RPS: cfg.rps,
		Rotations: cfg.rotations, OpsPerCli: cfg.ops,
		RotPool: cfg.rotPool, TenantCount: cfg.tenants, Levels: cfg.levels,
	}

	// Rotation amounts 1..rotPool, shared by every client of one
	// keyspace so their key working sets overlap: that overlap is what
	// the per-tenant cache hit rate measures. Operation op issues
	// amounts rot(op), rot(op+1), ... wrapping around the pool.
	rot := func(i int) int { return 1 + i%cfg.rotPool }

	// Pre-sample one seed input per client off the clock (the sampler
	// is not safe for concurrent use). A client's operations form a
	// dependent chain: every subsequent operation derives its input
	// from the previous operation's first switched output, so a chain
	// never re-submits a bit-identical input — re-cycling a fixed
	// input would let the coalescer merge logically sequential
	// requests and inflate the coalescing stats with sharing no real
	// dependent workload could exhibit.
	s := ring.NewSampler(cctx.R, int64(cfg.tenants)+1)
	basisAt := func(level int) ring.Basis { return cctx.R.QBasis(level) }
	seeds := make([]*ring.Poly, cfg.clients)
	for c := range seeds {
		seeds[c] = s.Uniform(basisAt(levelAt(c / cfg.tenants)))
		seeds[c].IsNTT = true
	}

	// Timed run: each client issues ops operations; one operation is a
	// fan-out of `rotations` concurrent requests on one input,
	// optionally paced at -rps.
	var clientErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if clientErr == nil {
			clientErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			df := dfs[c%len(dfs)]
			tenant := tenantName(c % cfg.tenants)
			level := levelAt(c / cfg.tenants)
			var tick *time.Ticker
			if cfg.rps > 0 {
				tick = time.NewTicker(time.Second / time.Duration(cfg.rps))
				defer tick.Stop()
			}
			chans := make([]<-chan serve.Result, cfg.rotations)
			in := seeds[c]
			for op := 0; op < cfg.ops; op++ {
				if tick != nil {
					<-tick.C
				}
				for i := 0; i < cfg.rotations; i++ {
					ch, err := svc.Submit(context.Background(), serve.Request{
						Input: in, Rot: rot(op + i), Dataflow: df,
						Tenant: tenant, Level: level,
					})
					if err != nil {
						fail(err)
						return
					}
					chans[i] = ch
				}
				var next *ring.Poly
				for i, ch := range chans {
					res := <-ch
					if res.Err != nil {
						fail(res.Err)
						return
					}
					if i == 0 {
						next = res.C1
					}
				}
				// The chain mutates its ciphertext between steps: the
				// next operation consumes this one's first output
				// (fresh storage, fresh values), so sequential steps
				// can never coalesce.
				in = next
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if clientErr != nil {
		return nil, clientErr
	}

	// Snapshot right here, before the bit-exactness verification below
	// fans more switches through the service: the profile and phase
	// books must cover exactly the timed run.
	st := svc.Stats()
	rep.Phases = st.Phases
	rep.StageShares = obs.Shares(st.Profile, elapsed.Seconds())
	rep.DurationSec = elapsed.Seconds()
	rep.Requests = st.Served
	rep.OpsPerSec = float64(st.Served) / elapsed.Seconds()
	rep.P50Ms = float64(st.P50) / float64(time.Millisecond)
	rep.P99Ms = float64(st.P99) / float64(time.Millisecond)
	rep.CoalescingFactor = st.CoalescingFactor
	rep.ModUps = st.ModUps
	rep.Coalesced = st.Coalesced
	rep.Batches = st.Batches
	rep.Groups = st.Groups
	rep.KeyHits = st.Keys.Hits
	rep.KeyMisses = st.Keys.Misses
	rep.KeyEvictions = st.Keys.Evictions
	rep.KeyBytes = st.Keys.Bytes
	rep.KeyBudget = st.Keys.BudgetBytes // effective (default applied)
	rep.KeyHitRate = st.Keys.HitRate
	rep.KeyComp = cfg.keyComp
	rep.KeyDenseBytes = st.Keys.DenseBytes
	rep.KeyExpansions = st.KeyExpansions
	for _, ts := range st.Tenants {
		rep.Tenants = append(rep.Tenants, serveTenantReport{
			Tenant:        ts.Tenant,
			Served:        ts.Served,
			P99Ms:         float64(ts.P99) / float64(time.Millisecond),
			ModUps:        ts.ModUps,
			KeyHitRate:    ts.Keys.HitRate,
			KeyMisses:     ts.Keys.Misses,
			KeyEvictions:  ts.Keys.Evictions,
			KeyBytes:      ts.Keys.Bytes,
			KeyExpansions: ts.KeyExpansions,
		})
	}

	// Bit-exactness: replay one fan-out per (tenant, level) pair in
	// use through the (already warm) service and compare against
	// direct hks.SwitchHoisted with the same memoized keys of that
	// keyspace. Off the clock by construction.
	rep.BitExact = true
	pairs := cfg.tenants * cfg.levels // clients >= pairs, checked above
	for c := 0; c < pairs; c++ {
		tenant := tenantName(c % cfg.tenants)
		level := levelAt(c / cfg.tenants)
		kc, err := src.Chain(tenant)
		if err != nil {
			return nil, err
		}
		sw, err := kc.Switcher(level)
		if err != nil {
			return nil, err
		}
		verifyIn := seeds[c]
		evks := make([]*hks.Evk, cfg.rotations)
		for i := range evks {
			if evks[i], err = kc.HoistKey(rot(i), level); err != nil {
				return nil, err
			}
		}
		want0, want1 := sw.SwitchHoisted(verifyIn, evks)
		vchans := make([]<-chan serve.Result, cfg.rotations)
		for i := 0; i < cfg.rotations; i++ {
			ch, err := svc.Submit(context.Background(), serve.Request{
				Input: verifyIn, Rot: rot(i), Dataflow: dfs[0],
				Tenant: tenant, Level: level,
			})
			if err != nil {
				return nil, err
			}
			vchans[i] = ch
		}
		for i, ch := range vchans {
			res := <-ch
			if res.Err != nil {
				return nil, res.Err
			}
			if !res.C0.Equal(want0[i]) || !res.C1.Equal(want1[i]) {
				rep.BitExact = false
				return rep, fmt.Errorf("tenant %s level %d rotation %d differs from direct SwitchHoisted",
					tenant, level, i)
			}
		}
	}
	return rep, nil
}

// serveCheck enforces the acceptance bar behind -check: the service
// must actually be reusing state — per keyspace, without leaking
// across keyspaces — not just passing requests through.
func serveCheck(rep *serveReport) error {
	if !rep.BitExact {
		return fmt.Errorf("serve check: results not bit-exact with direct SwitchHoisted")
	}
	if rep.CoalescingFactor <= 1 {
		return fmt.Errorf("serve check: coalescing factor %.2f, want > 1 (no shared ModUps)", rep.CoalescingFactor)
	}
	if rep.KeyHitRate <= 0.5 {
		return fmt.Errorf("serve check: key cache hit rate %.2f, want > 0.5", rep.KeyHitRate)
	}
	if rep.KeyBytes > rep.KeyBudget {
		return fmt.Errorf("serve check: resident key bytes %d exceed the %d budget", rep.KeyBytes, rep.KeyBudget)
	}
	if rep.KeyComp {
		if rep.KeyExpansions == 0 {
			return fmt.Errorf("serve check: -keycomp set but no streamed expansions counted")
		}
		if rep.KeyDenseBytes <= rep.KeyBytes {
			return fmt.Errorf("serve check: dense-equivalent footprint %d not above compressed resident %d",
				rep.KeyDenseBytes, rep.KeyBytes)
		}
	} else if rep.KeyExpansions != 0 {
		return fmt.Errorf("serve check: dense run counted %d streamed expansions", rep.KeyExpansions)
	}
	var tenantModUps uint64
	for _, ts := range rep.Tenants {
		if ts.KeyHitRate <= 0.5 {
			return fmt.Errorf("serve check: tenant %s hit rate %.2f, want > 0.5", ts.Tenant, ts.KeyHitRate)
		}
		if ts.Served == 0 {
			return fmt.Errorf("serve check: tenant %s served nothing (starved)", ts.Tenant)
		}
		tenantModUps += ts.ModUps
	}
	if tenantModUps != rep.ModUps {
		return fmt.Errorf("serve check: per-tenant ModUps sum %d != global %d (cross-tenant coalescing)",
			tenantModUps, rep.ModUps)
	}
	return nil
}

func serveCmd(cfg serveConfig, jsonPath string, check bool, profile bool, tracePath, pprofDir string) error {
	finishObs := setupObs(profile, tracePath)
	stopPprof, err := startPprof(pprofDir)
	if err != nil {
		return err
	}
	rep, err := serveRun(cfg)
	if perr := stopPprof(); err == nil {
		err = perr
	}
	if oerr := finishObs(); err == nil {
		err = oerr
	}
	if err != nil {
		return err
	}

	fmt.Printf("Serve: N=2^%d, %d towers, dnum=%d, %d workers (%d CPUs)\n",
		cfg.logN, rep.Towers, rep.Dnum, rep.Workers, rep.NumCPU)
	fmt.Printf("%d clients x %d ops x %d rotations (%s, pool %d) over %d tenants x %d levels\n",
		rep.Clients, rep.OpsPerCli, rep.Rotations, rep.Dataflow, rep.RotPool,
		rep.TenantCount, rep.Levels)
	fmt.Printf("%-22s %12.2f\n", "served switches/sec", rep.OpsPerSec)
	fmt.Printf("%-22s %9.3f ms\n", "p50 latency", rep.P50Ms)
	fmt.Printf("%-22s %9.3f ms\n", "p99 latency", rep.P99Ms)
	fmt.Printf("%-22s %11.2fx  (%d requests / %d ModUps)\n",
		"coalescing factor", rep.CoalescingFactor, rep.Requests, rep.ModUps)
	fmt.Printf("%-22s %11.1f%%  (%d hits, %d misses, %d evictions)\n",
		"key cache hit rate", 100*rep.KeyHitRate, rep.KeyHits, rep.KeyMisses, rep.KeyEvictions)
	fmt.Printf("%-22s %8.1f MiB  of %.1f MiB budget\n",
		"resident key bytes", float64(rep.KeyBytes)/(1<<20), float64(rep.KeyBudget)/(1<<20))
	if rep.KeyComp {
		fmt.Printf("%-22s %8.1f MiB  dense-equivalent (%d streamed expansions)\n",
			"compressed keys", float64(rep.KeyDenseBytes)/(1<<20), rep.KeyExpansions)
	}
	fmt.Printf("%-22s %12v\n", "bit-exact", rep.BitExact)
	if len(rep.Phases) > 0 {
		fmt.Printf("%-10s %10s %12s %10s\n", "phase", "count", "total ms", "mean µs")
		for _, ps := range rep.Phases {
			totalMs := float64(ps.TotalNs) / float64(time.Millisecond)
			meanUs := float64(ps.TotalNs) / float64(ps.Count) / float64(time.Microsecond)
			fmt.Printf("%-10s %10d %12.3f %10.1f\n", ps.Phase, ps.Count, totalMs, meanUs)
		}
	}
	if len(rep.StageShares) > 0 {
		fmt.Println("\nStage profile (all dataflows, per-worker time):")
		printStageShares(rep.StageShares)
	}
	if len(rep.Tenants) > 1 {
		fmt.Printf("%-8s %10s %10s %8s %10s %10s %12s\n",
			"tenant", "served", "p99 ms", "mod_ups", "hit rate", "evictions", "key MiB")
		for _, ts := range rep.Tenants {
			fmt.Printf("%-8s %10d %10.3f %8d %9.1f%% %10d %12.1f\n",
				ts.Tenant, ts.Served, ts.P99Ms, ts.ModUps,
				100*ts.KeyHitRate, ts.KeyEvictions, float64(ts.KeyBytes)/(1<<20))
		}
	}

	if jsonPath != "" {
		if err := writeJSONReport(jsonPath, rep); err != nil {
			return err
		}
	}
	if check {
		if err := serveCheck(rep); err != nil {
			return err
		}
		fmt.Println("serve check passed")
	}
	return nil
}
