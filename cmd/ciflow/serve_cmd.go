package main

// The serve experiment is the load generator for internal/serve: it
// stands up the batching key-switch service on a ckks.KeyChain and
// drives it with concurrent clients issuing overlapping rotation
// fan-outs — the request stream of a diagonal-method linear-transform
// workload, served instead of evaluated inline. The report is the
// serving counterpart of the throughput experiment: ops/sec and tail
// latency, plus the two serving-specific reuse metrics — rotation-key
// cache hit rate and coalescing factor (requests per executed
// Decompose+ModUp).

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"ciflow/internal/ckks"
	"ciflow/internal/engine"
	"ciflow/internal/hks"
	"ciflow/internal/ring"
	"ciflow/internal/serve"
)

// serveConfig is the parsed flag set of the serve experiment.
type serveConfig struct {
	dfName    string
	clients   int
	rps       int // per-client operations/sec; 0 = unpaced
	rotations int // fan-out width per operation
	ops       int // operations per client
	logN      int
	towers    int
	dnum      int
	workers   int
	rotPool   int // distinct rotation amounts shared by all clients
	keyCache  int
	maxBatch  int
	window    time.Duration
}

// serveReport is the JSON artifact of the serve experiment
// (BENCH_serve.json in the bench/perfgate flow).
type serveReport struct {
	N           int     `json:"n"`
	Towers      int     `json:"towers"`
	Dnum        int     `json:"dnum"`
	Workers     int     `json:"workers"`
	NumCPU      int     `json:"num_cpu"`
	Dataflow    string  `json:"dataflow"`
	Clients     int     `json:"clients"`
	RPS         int     `json:"rps"`
	Rotations   int     `json:"rotations"`
	OpsPerCli   int     `json:"ops_per_client"`
	RotPool     int     `json:"rot_pool"`
	KeyCapacity int     `json:"key_capacity"`
	DurationSec float64 `json:"duration_sec"`

	Requests  uint64  `json:"requests"`    // key switches served
	OpsPerSec float64 `json:"ops_per_sec"` // served key switches per second
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`

	CoalescingFactor float64 `json:"coalescing_factor"`
	ModUps           uint64  `json:"mod_ups"`
	Coalesced        uint64  `json:"coalesced"`
	Batches          uint64  `json:"batches"`
	Groups           uint64  `json:"groups"`

	KeyHits      uint64  `json:"key_hits"`
	KeyMisses    uint64  `json:"key_misses"`
	KeyEvictions uint64  `json:"key_evictions"`
	KeyHitRate   float64 `json:"key_hit_rate"`

	BitExact bool `json:"bit_exact"`
}

// serveRun executes the load generation and returns the report; split
// from the printing so tests can exercise it directly. A single
// -dataflow pins every request; "all" assigns MP/DC/OC to clients
// round-robin, exercising the service's per-dataflow grouping.
func serveRun(cfg serveConfig) (*serveReport, error) {
	if cfg.clients < 1 {
		return nil, fmt.Errorf("need at least 1 client, got %d", cfg.clients)
	}
	if cfg.ops < 1 {
		return nil, fmt.Errorf("need at least 1 operation per client, got %d", cfg.ops)
	}
	if cfg.rotations < 1 {
		return nil, fmt.Errorf("need at least 1 rotation, got %d", cfg.rotations)
	}
	if cfg.rps < 0 {
		return nil, fmt.Errorf("rps %d must be >= 0", cfg.rps)
	}
	if cfg.logN < 4 || cfg.logN > 16 {
		return nil, fmt.Errorf("logn %d out of range [4,16]", cfg.logN)
	}
	if cfg.rotPool == 0 {
		cfg.rotPool = cfg.rotations
	}
	if cfg.rotPool < cfg.rotations {
		return nil, fmt.Errorf("rotpool %d smaller than the fan-out %d", cfg.rotPool, cfg.rotations)
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	dfs, err := parseThroughputDataflows(cfg.dfName)
	if err != nil {
		return nil, err
	}

	n := 1 << cfg.logN
	cctx, err := ckks.NewContext(n, cfg.towers, 40, 3, 41, cfg.dnum)
	if err != nil {
		return nil, err
	}
	kc, _ := ckks.GenKeys(cctx, 1)
	level := cctx.MaxLevel
	sw, err := kc.Switcher(level)
	if err != nil {
		return nil, err
	}

	e := engine.New(cfg.workers)
	defer e.Close()
	svc, err := serve.NewFromKeyChain(kc, level, serve.Config{
		Engine:      e,
		KeyCapacity: cfg.keyCache,
		MaxBatch:    cfg.maxBatch,
		Window:      cfg.window,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	rep := &serveReport{
		N: n, Towers: cfg.towers, Dnum: cfg.dnum,
		Workers: cfg.workers, NumCPU: runtime.NumCPU(),
		Dataflow: cfg.dfName, Clients: cfg.clients, RPS: cfg.rps,
		Rotations: cfg.rotations, OpsPerCli: cfg.ops,
		RotPool: cfg.rotPool, KeyCapacity: cfg.keyCache,
	}

	// Rotation amounts 1..rotPool, shared by every client so their key
	// working sets overlap: that overlap is what the cache hit rate
	// measures. Operation op issues amounts rot(op), rot(op+1), ...
	// wrapping around the pool.
	rot := func(i int) int { return 1 + i%cfg.rotPool }

	// Pre-sample the client inputs off the clock (the sampler is not
	// safe for concurrent use). Each client cycles a small working set
	// of ciphertext c1 components.
	s := ring.NewSampler(cctx.R, 2)
	perClient := cfg.ops
	if perClient > 4 {
		perClient = 4
	}
	inputs := make([][]*ring.Poly, cfg.clients)
	for c := range inputs {
		inputs[c] = make([]*ring.Poly, perClient)
		for i := range inputs[c] {
			inputs[c][i] = s.Uniform(sw.QBasis())
			inputs[c][i].IsNTT = true
		}
	}

	// Timed run: each client issues ops operations; one operation is a
	// fan-out of `rotations` concurrent requests on one input,
	// optionally paced at -rps.
	var clientErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if clientErr == nil {
			clientErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			df := dfs[c%len(dfs)]
			var tick *time.Ticker
			if cfg.rps > 0 {
				tick = time.NewTicker(time.Second / time.Duration(cfg.rps))
				defer tick.Stop()
			}
			chans := make([]<-chan serve.Result, cfg.rotations)
			for op := 0; op < cfg.ops; op++ {
				if tick != nil {
					<-tick.C
				}
				in := inputs[c][op%perClient]
				for i := 0; i < cfg.rotations; i++ {
					ch, err := svc.Submit(context.Background(),
						serve.Request{Input: in, Rot: rot(op + i), Dataflow: df})
					if err != nil {
						fail(err)
						return
					}
					chans[i] = ch
				}
				for _, ch := range chans {
					if res := <-ch; res.Err != nil {
						fail(res.Err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if clientErr != nil {
		return nil, clientErr
	}

	st := svc.Stats()
	rep.DurationSec = elapsed.Seconds()
	rep.Requests = st.Served
	rep.OpsPerSec = float64(st.Served) / elapsed.Seconds()
	rep.P50Ms = float64(st.P50) / float64(time.Millisecond)
	rep.P99Ms = float64(st.P99) / float64(time.Millisecond)
	rep.CoalescingFactor = st.CoalescingFactor
	rep.ModUps = st.ModUps
	rep.Coalesced = st.Coalesced
	rep.Batches = st.Batches
	rep.Groups = st.Groups
	rep.KeyHits = st.Keys.Hits
	rep.KeyMisses = st.Keys.Misses
	rep.KeyEvictions = st.Keys.Evictions
	rep.KeyHitRate = st.Keys.HitRate

	// Bit-exactness: replay one fan-out through the (already warm)
	// service and compare against direct hks.SwitchHoisted with the
	// same memoized keys. Off the clock by construction.
	rep.BitExact = true
	verifyIn := inputs[0][0]
	evks := make([]*hks.Evk, cfg.rotations)
	for i := range evks {
		if evks[i], err = kc.HoistKey(rot(i), level); err != nil {
			return nil, err
		}
	}
	want0, want1 := sw.SwitchHoisted(verifyIn, evks)
	vchans := make([]<-chan serve.Result, cfg.rotations)
	for i := 0; i < cfg.rotations; i++ {
		ch, err := svc.Submit(context.Background(),
			serve.Request{Input: verifyIn, Rot: rot(i), Dataflow: dfs[0]})
		if err != nil {
			return nil, err
		}
		vchans[i] = ch
	}
	for i, ch := range vchans {
		res := <-ch
		if res.Err != nil {
			return nil, res.Err
		}
		if !res.C0.Equal(want0[i]) || !res.C1.Equal(want1[i]) {
			rep.BitExact = false
			return rep, fmt.Errorf("served rotation %d differs from direct SwitchHoisted", i)
		}
	}
	return rep, nil
}

// serveCheck enforces the acceptance bar behind -check: the service
// must actually be reusing state, not just passing requests through.
func serveCheck(rep *serveReport) error {
	if !rep.BitExact {
		return fmt.Errorf("serve check: results not bit-exact with direct SwitchHoisted")
	}
	if rep.CoalescingFactor <= 1 {
		return fmt.Errorf("serve check: coalescing factor %.2f, want > 1 (no shared ModUps)", rep.CoalescingFactor)
	}
	if rep.KeyHitRate <= 0.5 {
		return fmt.Errorf("serve check: key cache hit rate %.2f, want > 0.5", rep.KeyHitRate)
	}
	return nil
}

func serveCmd(cfg serveConfig, jsonPath string, check bool) error {
	rep, err := serveRun(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("Serve: N=2^%d, %d towers, dnum=%d, %d workers (%d CPUs)\n",
		cfg.logN, rep.Towers, rep.Dnum, rep.Workers, rep.NumCPU)
	fmt.Printf("%d clients x %d ops x %d rotations (%s, pool %d, key cache %d)\n",
		rep.Clients, rep.OpsPerCli, rep.Rotations, rep.Dataflow, rep.RotPool, rep.KeyCapacity)
	fmt.Printf("%-22s %12.2f\n", "served switches/sec", rep.OpsPerSec)
	fmt.Printf("%-22s %9.3f ms\n", "p50 latency", rep.P50Ms)
	fmt.Printf("%-22s %9.3f ms\n", "p99 latency", rep.P99Ms)
	fmt.Printf("%-22s %11.2fx  (%d requests / %d ModUps)\n",
		"coalescing factor", rep.CoalescingFactor, rep.Requests, rep.ModUps)
	fmt.Printf("%-22s %11.1f%%  (%d hits, %d misses, %d evictions)\n",
		"key cache hit rate", 100*rep.KeyHitRate, rep.KeyHits, rep.KeyMisses, rep.KeyEvictions)
	fmt.Printf("%-22s %12v\n", "bit-exact", rep.BitExact)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	if check {
		if err := serveCheck(rep); err != nil {
			return err
		}
		fmt.Println("serve check passed")
	}
	return nil
}
