package main

// Tests for the schedule import/export surface of the CLI: the
// schedule verb's -export/-import round trip, the file:<path> workload
// source, the new library shapes, and the scenario half of the perf
// gate.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ciflow/internal/workload"
)

// pirGolden is the committed pir scenario golden, the same file the CI
// smoke job replays.
const pirGolden = "../../internal/workload/testdata/pir.schedule.json"

func TestScheduleExportImportVerb(t *testing.T) {
	dir := t.TempDir()
	exported := filepath.Join(dir, "pir.schedule.json")
	args := []string{"schedule", "-workload", "pir",
		"-rotations", "4", "-requests", "2", "-export", exported}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}

	// The exported file is a valid canonical schedule in its own right.
	sched, err := workload.ImportFile(exported)
	if err != nil {
		t.Fatalf("exported schedule does not import: %v", err)
	}
	if sched.Name != "pir-2x4" {
		t.Fatalf("exported schedule %q", sched.Name)
	}

	// -import prices the file like any generated schedule and reports
	// the same counts; -export alongside re-emits identical bytes.
	jsonPath := filepath.Join(dir, "report.json")
	reExported := filepath.Join(dir, "again.schedule.json")
	args = []string{"schedule", "-import", exported,
		"-json", jsonPath, "-export", reExported}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scheduleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "import" || rep.Schedule != "pir-2x4" {
		t.Fatalf("imported report names: %+v", rep)
	}
	if want := sched.Counts(); !reflect.DeepEqual(rep.Counts, want) {
		t.Fatalf("imported counts %+v, want %+v", rep.Counts, want)
	}
	a, err := os.ReadFile(exported)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(reExported)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("export→import→export not byte-stable through the CLI")
	}
}

func TestScheduleImportVerbErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.schedule.json")
	if err := os.WriteFile(bad, []byte(`{"version":9,"name":"x","nodes":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"schedule", "-import", filepath.Join(dir, "missing.json")},
		{"schedule", "-import", bad},
		{"schedule", "-workload", "pir", "-rotations", "1"},
		{"schedule", "-workload", "evalmod", "-bts", "7"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	err := run([]string{"schedule", "-import", bad})
	if err == nil || !strings.Contains(err.Error(), "version 9 not supported") {
		t.Fatalf("unsupported version error: %v", err)
	}
}

// TestWorkloadRunLibraryShapes replays the new generator shapes end to
// end on a tiny ring, holding the tentpole invariant for each:
// measured serve counters — per level included — equal the schedule's
// predictions exactly.
func TestWorkloadRunLibraryShapes(t *testing.T) {
	for name, cfg := range map[string]workloadConfig{
		"pir": func() workloadConfig {
			c := testWorkloadConfig()
			c.workload, c.giants, c.rotations, c.dnum = "pir", 2, 4, 2
			return c
		}(),
		"private-inference": func() workloadConfig {
			c := testWorkloadConfig()
			c.workload, c.rotations, c.giants, c.dnum = "private-inference", 3, 2, 2
			return c
		}(),
		"evalmod": func() workloadConfig {
			c := testWorkloadConfig()
			c.workload, c.dnum = "evalmod", 2
			return c
		}(),
	} {
		rep, err := workloadRun(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := rep.Predicted
		if rep.Served != uint64(p.Switches) || rep.ModUps != uint64(p.ModUps) ||
			rep.Coalesced != uint64(p.Coalesced) {
			t.Fatalf("%s: measured (%d, %d, %d) != predicted (%d, %d, %d)",
				name, rep.Served, rep.ModUps, rep.Coalesced, p.Switches, p.ModUps, p.Coalesced)
		}
		if err := workloadCheck(rep); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "evalmod" && (p.HoistGroups != 0 || rep.Coalesced != 0) {
			t.Fatalf("evalmod replay coalesced: %+v", rep)
		}
	}
}

// TestWorkloadRunFile replays the committed pir golden through the
// serving layer — the same path as `ciflow serve -workload file:...`
// and the CI scenario smoke job.
func TestWorkloadRunFile(t *testing.T) {
	cfg := testWorkloadConfig()
	cfg.workload = "file:" + pirGolden
	cfg.towers, cfg.dnum = 6, 2 // the scenario tops out at level 5
	rep, err := workloadRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule != "pir-4x16" {
		t.Fatalf("schedule %q, want the golden's pir-4x16", rep.Schedule)
	}
	p := rep.Predicted
	if rep.Served != uint64(p.Switches) || rep.ModUps != uint64(p.ModUps) ||
		rep.Coalesced != uint64(p.Coalesced) {
		t.Fatalf("measured (%d, %d, %d) != predicted (%d, %d, %d)",
			rep.Served, rep.ModUps, rep.Coalesced, p.Switches, p.ModUps, p.Coalesced)
	}
	if err := workloadCheck(rep); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadRunFileErrors(t *testing.T) {
	// A schedule above the replay ring's top level names the node and
	// the fix.
	cfg := testWorkloadConfig()
	cfg.workload, cfg.dnum = "file:"+pirGolden, 2 // towers 4 → top level 3
	_, err := workloadRun(cfg)
	if err == nil || !strings.Contains(err.Error(), "raise -towers") {
		t.Fatalf("level overflow error: %v", err)
	}
	cfg = testWorkloadConfig()
	cfg.workload = "file:" + filepath.Join(t.TempDir(), "missing.json")
	if _, err := workloadRun(cfg); err == nil {
		t.Fatal("missing schedule file replayed")
	}
}

// TestPerfgateScenario exercises the scenario half of the gate: the
// same workload-replay invariants applied to the imported library
// scenario's report pair, including the evalmod-style case where zero
// hoist groups is the prediction, not a vacated gate.
func TestPerfgateScenario(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/thr_base.json"
	writeReport(t, basePath, &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	})

	healthy := func() *workloadReport {
		rep := &workloadReport{
			Schedule: "pir-4x16", OpsPerSec: 80,
			Served: 68, ModUps: 8, Coalesced: 64,
			CountsExact: true, BitExact: true,
			HoistCoalescingFactor: 16,
		}
		rep.Predicted.Switches = 68
		rep.Predicted.ModUps = 8
		rep.Predicted.HoistGroups = 4
		rep.Predicted.Depth = 2
		return rep
	}
	sBase := dir + "/scenario_base.json"
	writeWorkloadReport(t, sBase, healthy())
	gate := func(fresh string) error {
		return perfgate(perfgateConfig{
			Baseline: basePath, Fresh: basePath, MaxRegression: 2,
			ScenarioBaseline: sBase, ScenarioFresh: fresh,
		})
	}
	if err := gate(sBase); err != nil {
		t.Fatalf("perfgate failed on a healthy scenario report: %v", err)
	}

	for name, mut := range map[string]func(*workloadReport){
		"regression": func(r *workloadReport) { r.OpsPerSec = 10 },
		"inexact":    func(r *workloadReport) { r.BitExact = false },
		"drift":      func(r *workloadReport) { r.CountsExact = false },
		"dep-order":  func(r *workloadReport) { r.DepViolations = 1 },
		"flat":       func(r *workloadReport) { r.Predicted.HoistGroups = 0 },
		"no-coalescing": func(r *workloadReport) {
			r.HoistCoalescingFactor = 1
		},
	} {
		bad := healthy()
		mut(bad)
		p := dir + "/scenario_" + name + ".json"
		writeWorkloadReport(t, p, bad)
		if err := gate(p); err == nil {
			t.Errorf("%s: perfgate passed a degraded scenario report", name)
		}
	}

	// A scenario with no hoistable fan-out (evalmod) passes when the
	// baseline predicts none either: the factor check is conditional
	// on the schedule actually having groups, while the baseline pin
	// still catches a gate vacated by swapping schedules.
	chain := healthy()
	chain.Schedule = "evalmod-6"
	chain.Served, chain.ModUps, chain.Coalesced = 6, 6, 0
	chain.Predicted.Switches, chain.Predicted.ModUps = 6, 6
	chain.Predicted.HoistGroups = 0
	chain.Predicted.Depth = 6
	chain.HoistCoalescingFactor = 0
	cBase := dir + "/scenario_chain.json"
	writeWorkloadReport(t, cBase, chain)
	if err := perfgate(perfgateConfig{
		Baseline: basePath, Fresh: basePath, MaxRegression: 2,
		ScenarioBaseline: cBase, ScenarioFresh: cBase,
	}); err != nil {
		t.Fatalf("perfgate rejected an honest hoist-free scenario: %v", err)
	}

	// Half-specified scenario gate flags error out.
	if err := perfgate(perfgateConfig{
		Baseline: basePath, Fresh: basePath, MaxRegression: 2,
		ScenarioBaseline: sBase,
	}); err == nil || !strings.Contains(err.Error(), "-scenario-baseline and -scenario-fresh") {
		t.Fatalf("half-specified scenario gate: %v", err)
	}
}
