// Command ciflow regenerates the tables and figures of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024) from this repository's from-scratch
// reproduction.
//
// Usage:
//
//	ciflow <experiment> [flags]
//
// Experiments:
//
//	table2         DRAM traffic and arithmetic intensity (Table II)
//	table3         benchmark parameter sets (Table III)
//	table4         OCbase bandwidths and speedups (Table IV)
//	table5         configs matching ARK's saturation point (Table V)
//	fig4           runtime vs bandwidth sweep (Figure 4; -bench)
//	fig5           BTS3 evk streamed vs on-chip (Figure 5)
//	fig6           ARK evk streamed vs on-chip (Figure 6)
//	fig7           OC streaming slowdown per benchmark (Figure 7)
//	fig8           ARK MODOPS sensitivity (Figure 8; -bench)
//	fig9           equivalent configs with streamed evks (Figure 9)
//	ablate-keycomp key-compression ablation (§IV-D)
//	ablate-ocf     fused-ModDown OC extension vs plain OC
//	roofline       memory/compute-bound classification at 8/64/256 GB/s
//	memory         data traffic vs on-chip memory size (§IV working sets)
//	area           SRAM/area saving summary (§VI-B)
//	throughput     measured HKS ops/sec, p50/p99 latency, and speedup
//	               vs serial, executing each dataflow as a task graph
//	               on the internal/engine worker pool (the measured
//	               counterpart to Figure 4); -hoisted adds the shared-
//	               ModUp rotation fan-out vs per-rotation switching,
//	               reconciled against the HoistedOpsSaved model
//	perfgate       CI performance-regression gate: compare a fresh
//	               throughput JSON against the committed baseline and
//	               fail on gross (> -max-regression x) ops/sec drops
//	all            everything above in paper order (except throughput)
//
// Flags:
//
//	-bench NAME    benchmark for fig4/fig8/memory (default BTS3 / ARK)
//	-mem MiB       on-chip data memory (default 32)
//	-csv           emit CSV instead of the ASCII table (table2, table4,
//	               fig4, fig5, fig6, memory)
//	-dataflow D    throughput dataflow: mp, dc, oc, ocf, or all (default)
//	-workers N     throughput worker count (default GOMAXPROCS)
//	-requests B    throughput request count (default 16)
//	-logn L        throughput ring degree 2^L (default 14)
//	-towers L      throughput Q-tower count (default 6)
//	-dnum D        throughput digit count (default 3)
//	-hoisted       also measure hoisted key switching (shared ModUp)
//	-rotations K   hoisted fan-out width (default 8)
//	-json FILE     also write the throughput report as JSON
//	-baseline F    perfgate baseline report (default BENCH_engine.json)
//	-fresh F       perfgate fresh report (default bench_fresh.json)
//	-max-regression X  perfgate allowed ops/sec drop factor (default 2)
package main

import (
	"flag"
	"fmt"
	"os"

	"ciflow/internal/analysis"
	"ciflow/internal/params"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ciflow:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing experiment (try: ciflow all)")
	}
	verb := args[0]
	fs := flag.NewFlagSet("ciflow", flag.ContinueOnError)
	benchName := fs.String("bench", "", "benchmark name (BTS1, BTS2, BTS3, ARK, DPRIVE)")
	memMiB := fs.Int64("mem", 32, "on-chip data memory in MiB")
	csvOut := fs.Bool("csv", false, "emit CSV instead of ASCII tables")
	dfName := fs.String("dataflow", "all", "throughput dataflow: mp, dc, oc, ocf, or all")
	workers := fs.Int("workers", 0, "throughput worker count (0 = GOMAXPROCS)")
	requests := fs.Int("requests", 16, "throughput request count")
	logN := fs.Int("logn", 14, "throughput ring degree exponent")
	towers := fs.Int("towers", 6, "throughput Q-tower count")
	dnum := fs.Int("dnum", 3, "throughput digit count")
	hoisted := fs.Bool("hoisted", false, "also measure hoisted key switching (shared ModUp)")
	rotations := fs.Int("rotations", 8, "hoisted rotation fan-out width")
	jsonPath := fs.String("json", "", "write the throughput report to this JSON file")
	baseline := fs.String("baseline", "BENCH_engine.json", "perfgate baseline report")
	freshPath := fs.String("fresh", "bench_fresh.json", "perfgate fresh report")
	maxRegression := fs.Float64("max-regression", 2, "perfgate allowed ops/sec drop factor")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	r := analysis.NewRunner()
	r.DataMemBytes = *memMiB << 20

	pick := func(def params.Benchmark) (params.Benchmark, error) {
		if *benchName == "" {
			return def, nil
		}
		return params.ByName(*benchName)
	}

	csvMode = *csvOut

	switch verb {
	case "table2":
		return table2(r)
	case "table3":
		fmt.Print(analysis.FormatTableIII())
		return nil
	case "table4":
		return table4(r)
	case "table5":
		return table5(r)
	case "fig4":
		b, err := pick(params.BTS3)
		if err != nil {
			return err
		}
		return fig4(r, b)
	case "fig5":
		return figStream(r, params.BTS3, "Figure 5: BTS3 runtime, evk streamed vs on-chip")
	case "fig6":
		return figStream(r, params.ARK, "Figure 6: ARK runtime, evk streamed vs on-chip")
	case "fig7":
		return fig7(r)
	case "fig8":
		b, err := pick(params.ARK)
		if err != nil {
			return err
		}
		return fig8(r, b)
	case "fig9":
		return fig9(r)
	case "ablate-keycomp":
		return keycomp(r)
	case "memory":
		b, err := pick(params.BTS3)
		if err != nil {
			return err
		}
		return memorySweep(b)
	case "ablate-ocf":
		return ocf(r)
	case "roofline":
		for _, bw := range []float64{8, 64, 256} {
			rows, err := r.Roofline(bw)
			if err != nil {
				return err
			}
			fmt.Print(analysis.FormatRoofline(bw, rows))
			fmt.Println()
		}
		return nil
	case "area":
		fmt.Print(analysis.AreaSummary())
		return nil
	case "throughput":
		rot := 0
		if *hoisted {
			if *rotations < 2 {
				return fmt.Errorf("-hoisted needs -rotations >= 2, got %d", *rotations)
			}
			rot = *rotations
		}
		return throughput(*dfName, *workers, *requests, *logN, *towers, *dnum, rot, *jsonPath)
	case "perfgate":
		return perfgate(*baseline, *freshPath, *maxRegression)
	case "all":
		fmt.Print(analysis.FormatTableIII())
		fmt.Println()
		for _, f := range []func(*analysis.Runner) error{table2, table4, table5, fig7, fig9, keycomp, ocf} {
			if err := f(r); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, b := range params.All() {
			if err := fig4(r, b); err != nil {
				return err
			}
			fmt.Println()
		}
		if err := figStream(r, params.BTS3, "Figure 5: BTS3 runtime, evk streamed vs on-chip"); err != nil {
			return err
		}
		fmt.Println()
		if err := figStream(r, params.ARK, "Figure 6: ARK runtime, evk streamed vs on-chip"); err != nil {
			return err
		}
		fmt.Println()
		if err := fig8(r, params.ARK); err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(analysis.AreaSummary())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", verb)
	}
}

// csvMode switches the output format of the experiments that support
// CSV emission.
var csvMode bool

func table2(r *analysis.Runner) error {
	rows, err := r.TableII()
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteTableIICSV(os.Stdout, rows)
	}
	fmt.Print(analysis.FormatTableII(rows))
	return nil
}

func memorySweep(b params.Benchmark) error {
	sizes := []int64{8, 16, 32, 64, 128, 256, 512, 1024}
	pts, err := analysis.MemorySweep(b, sizes)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteMemoryCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatMemory(b, pts))
	return nil
}

func table4(r *analysis.Runner) error {
	rows, err := r.TableIV()
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteTableIVCSV(os.Stdout, rows)
	}
	fmt.Print(analysis.FormatTableIV(rows))
	return nil
}

func table5(r *analysis.Runner) error {
	rows, err := r.TableV()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatTableV(rows))
	return nil
}

func fig4(r *analysis.Runner, b params.Benchmark) error {
	bws := analysis.StdBandwidthsGBs
	if b.Name == "ARK" || b.Name == "BTS3" {
		bws = analysis.ExtBandwidthsGBs // the paper extends these two to 1 TB/s
	}
	pts, err := r.Figure4(b, bws)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteSweepCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatSweep(
		fmt.Sprintf("Figure 4 (%s): HKS runtime vs off-chip bandwidth, evk on-chip", b.Name), pts))
	return nil
}

func figStream(r *analysis.Runner, b params.Benchmark, title string) error {
	pts, err := r.FigureStream(b, analysis.ExtBandwidthsGBs)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteStreamCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatStream(title, pts))
	return nil
}

func fig7(r *analysis.Runner) error {
	rows, err := r.Figure7()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure7(rows))
	return nil
}

func fig8(r *analysis.Runner, b params.Benchmark) error {
	pts, err := r.Figure8(b, analysis.ExtBandwidthsGBs)
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure8(
		fmt.Sprintf("Figure 8 (%s): OC runtime at 1-16x MODOPS, evk on-chip", b.Name), pts))
	return nil
}

func fig9(r *analysis.Runner) error {
	sat, base, err := r.Figure9()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure9(sat, base))
	return nil
}

func ocf(r *analysis.Runner) error {
	rows, err := r.AblationOCF()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatOCF(rows))
	return nil
}

func keycomp(r *analysis.Runner) error {
	rows, err := r.AblationKeyCompression()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatKeyCompression(rows))
	return nil
}
