// Command ciflow regenerates the tables and figures of "CiFlow:
// Dataflow Analysis and Optimization of Key Switching for Homomorphic
// Encryption" (ISPASS 2024) from this repository's from-scratch
// reproduction.
//
// Usage:
//
//	ciflow <experiment> [flags]
//
// Experiments:
//
//	table2         DRAM traffic and arithmetic intensity (Table II)
//	table3         benchmark parameter sets (Table III)
//	table4         OCbase bandwidths and speedups (Table IV)
//	table5         configs matching ARK's saturation point (Table V)
//	fig4           runtime vs bandwidth sweep (Figure 4; -bench)
//	fig5           BTS3 evk streamed vs on-chip (Figure 5)
//	fig6           ARK evk streamed vs on-chip (Figure 6)
//	fig7           OC streaming slowdown per benchmark (Figure 7)
//	fig8           ARK MODOPS sensitivity (Figure 8; -bench)
//	fig9           equivalent configs with streamed evks (Figure 9)
//	ablate-keycomp key-compression ablation (§IV-D)
//	ablate-ocf     fused-ModDown OC extension vs plain OC
//	roofline       memory/compute-bound classification at 8/64/256 GB/s
//	memory         data traffic vs on-chip memory size (§IV working sets)
//	area           SRAM/area saving summary (§VI-B)
//	throughput     measured HKS ops/sec, p50/p99 latency, and speedup
//	               vs serial, executing each dataflow as a task graph
//	               on the internal/engine worker pool (the measured
//	               counterpart to Figure 4); -hoisted adds the shared-
//	               ModUp rotation fan-out vs per-rotation switching,
//	               reconciled against the HoistedOpsSaved model
//	serve          load generator for the internal/serve multi-tenant
//	               key-switch service: -clients goroutines, spread over
//	               -tenants keyspaces and -levels ciphertext levels,
//	               each issue -requests operations of -rotations
//	               overlapping rotations (each client's operations form
//	               a dependent chain: an operation's input derives from
//	               the previous operation's output); the report shows
//	               ops/sec, p50/p99, key cache hit rate, resident key
//	               bytes vs the -keybudget, and coalescing factor,
//	               globally and per tenant. With a non-fanout -workload
//	               it instead replays a schedule DAG (internal/workload)
//	               with the dependency-aware client: bootstrapping
//	               CoeffToSlot/SlotToCoeff stages shaped by -bts/-radix,
//	               a baby-step/giant-step matvec (-rotations babies,
//	               -requests giants), a PIR fan-out (-requests batches
//	               of -rotations probes), a private-inference matvec/
//	               relin layer stack, an evalmod relin chain, or any
//	               imported schedule (-workload file:PATH), cross-
//	               validating measured serve counters — per level
//	               included — against the schedule's predicted counts
//	               exactly
//	schedule       print a workload schedule DAG at the paper's
//	               canonical BTS geometry (-workload, -bts, -radix):
//	               shape, per-level switch counts, predicted ModUps
//	               with/without hoisting, and the analysis model's
//	               cost estimate including shared-ModUp savings;
//	               -export FILE writes the schedule as versioned JSON,
//	               -import FILE loads and re-validates one instead of
//	               generating it
//	shard          one cluster shard backend: a serve.Service behind
//	               the internal/cluster wire protocol on -addr; prints
//	               "listening <addr>" once bound, exits on stdin EOF
//	               or a Shutdown frame (normally spawned by cluster,
//	               not run by hand)
//	router         probe running shards: dial the -shardaddrs list,
//	               ping every shard, print the status table
//	cluster        sharded serving experiment: spawn -shards shard
//	               subprocesses, consistent-hash -tenants keyspaces
//	               onto them (-replicas replicas per tenant), replay
//	               every tenant's schedule DAG concurrently through
//	               the router with the serial bit-exactness reference,
//	               and verify the per-shard stats sum to tenants x the
//	               schedule's predicted counts exactly — per level
//	               included; with -kill, drain one shard mid-replay
//	               and require the same sums across the handoff
//	perfgate       CI performance-regression gate: compare fresh
//	               throughput (and, with -serve-baseline/-serve-fresh,
//	               serve; with -workload-baseline/-workload-fresh,
//	               workload replay; with -scenario-baseline/
//	               -scenario-fresh, an imported library-scenario
//	               replay; with -cluster-baseline/
//	               -cluster-fresh, sharded cluster) JSON reports
//	               against committed baselines, fail on gross
//	               (> -max-regression x) ops/sec drops or broken
//	               invariants (cross-tenant coalescing, budget
//	               overruns, starved tenants, schedule counters
//	               drifting from predictions, dependency-order
//	               violations, shard books not summing to the global
//	               prediction, lost or double-counted router retries)
//	all            everything above in paper order (except throughput,
//	               serve, schedule, shard, router, cluster, perfgate)
//	help           the same experiment and flag summary on the CLI
//
// Flags:
//
//	-bench NAME    benchmark for fig4/fig8/memory (default BTS3 / ARK)
//	-mem MiB       on-chip data memory (default 32)
//	-csv           emit CSV instead of the ASCII table (table2, table4,
//	               fig4, fig5, fig6, memory)
//	-dataflow D    dataflow: mp, dc, oc, ocf, or all (default)
//	-workers N     engine worker count (default GOMAXPROCS)
//	-requests B    throughput request count / serve operations per
//	               client (default 16)
//	-logn L        ring degree 2^L (default 14)
//	-towers L      Q-tower count (default 6)
//	-dnum D        digit count (default 3)
//	-hoisted       also measure hoisted key switching (shared ModUp)
//	-rotations K   rotation fan-out width per ciphertext (default 8)
//	-json FILE     also write the report as JSON
//	-clients C     serve concurrent client goroutines (default 4)
//	-rps R         serve per-client pacing in ops/sec (default 0 = unpaced)
//	-rotpool P     serve distinct rotation amounts shared per keyspace
//	               (default 0 = -rotations)
//	-tenants T     serve tenant count — distinct keyspaces, clients
//	               assigned round-robin (default 1)
//	-levels L      serve distinct ciphertext levels, topmost first
//	               (default 1)
//	-keybudget B   serve global key-cache byte budget in bytes
//	               (default 0 = the serve package default, 256 MiB)
//	-keycomp       serve: cache seed-compressed evaluation keys (dense
//	               b-halves plus one 32-byte seed per digit for the
//	               a-halves), expanded per digit at use, streamed under
//	               the hoist phase — the same working set fits roughly
//	               half the budget, bit-exactly
//	-batch B       serve micro-batch size cap (default 64)
//	-window D      serve micro-batch gather window (default 500µs)
//	-check         serve: exit non-zero unless coalescing factor > 1,
//	               global and per-tenant cache hit rates > 50%,
//	               resident key bytes within budget, keyspaces
//	               isolated, and results bit-exact; with a schedule
//	               -workload: unless the replay is bit-exact with
//	               serial execution, measured counters equal the
//	               schedule's predictions exactly, dependency order
//	               holds, and hoist groups (when the schedule has any)
//	               coalesce (factor > 1)
//	-workload W    serve/schedule shape: fanout (default; independent
//	               bursts), bootstrap (CoeffToSlot/SlotToCoeff DAG),
//	               matvec (baby-step/giant-step DAG), pir (wide
//	               fan-out batches plus a combine), private-inference
//	               (matvec layers with relins between levels), evalmod
//	               (relin chain), or file:PATH (imported JSON)
//	-bts N         BTS parameter set (1, 2, or 3) shaping bootstrap
//	               schedules (default 2)
//	-radix R       bootstrap DFT radix, a power of two (default 0 =
//	               auto-fit the level budget)
//	-export F      schedule: also write the schedule as versioned JSON
//	-import F      schedule: load and re-validate the schedule from
//	               this JSON file instead of generating it
//	-dot F         schedule: render the schedule DAG in Graphviz DOT
//	               format to this file (one compute node per key
//	               switch, dependency edges preserved)
//	-profile       throughput/serve/cluster: record per-stage and
//	               per-kernel runtime histograms (internal/obs) and add
//	               stage_shares to the report; cluster shards ship
//	               their histograms in stats frames and the router
//	               merges them exactly, bucket by bucket
//	-trace F       throughput/serve: write a Chrome trace-event
//	               timeline of engine node and serve batch spans to
//	               this file (load in chrome://tracing or Perfetto)
//	-pprof DIR     throughput/serve: write cpu.prof and mem.prof
//	               (runtime/pprof) into this directory
//	-shards N      cluster shard process count (default 2)
//	-replicas R    cluster shards eligible to serve one tenant — hot-key
//	               replication via per-tenant round-robin (default 1)
//	-kill          cluster: drain and retire one shard mid-replay; the
//	               drained shard's final books plus the survivors'
//	               must still sum to the prediction exactly
//	-addr A        shard listen address (default 127.0.0.1:0)
//	-shardaddrs L  router: comma-separated shard addresses
//	-baseline F    perfgate baseline report (default BENCH_engine.json)
//	-fresh F       perfgate fresh report (default bench_fresh.json)
//	-serve-baseline F  perfgate serve baseline report (default: skip)
//	-serve-fresh F     perfgate fresh serve report (default: skip)
//	-workload-baseline F  perfgate workload-replay baseline (default: skip)
//	-workload-fresh F     perfgate fresh workload-replay report (default: skip)
//	-scenario-baseline F  perfgate scenario-replay baseline (default: skip)
//	-scenario-fresh F     perfgate fresh scenario-replay report (default: skip)
//	-cluster-baseline F   perfgate cluster baseline (default: skip)
//	-cluster-fresh F      perfgate fresh cluster report (default: skip)
//	-max-regression X  perfgate allowed ops/sec drop factor (default 2)
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"ciflow/internal/analysis"
	"ciflow/internal/hks"
	"ciflow/internal/params"
	"ciflow/internal/ring"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ciflow:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing experiment (try: ciflow help)")
	}
	verb := args[0]
	fl := newFlags()
	switch verb {
	case "help", "-h", "-help", "--help":
		usage(os.Stdout, fl)
		return nil
	}
	if err := fl.fs.Parse(args[1:]); err != nil {
		return err
	}

	r := analysis.NewRunner()
	r.DataMemBytes = *fl.memMiB << 20

	pick := func(def params.Benchmark) (params.Benchmark, error) {
		if *fl.benchName == "" {
			return def, nil
		}
		return params.ByName(*fl.benchName)
	}

	csvMode = *fl.csvOut

	switch verb {
	case "table2":
		return table2(r)
	case "table3":
		fmt.Print(analysis.FormatTableIII())
		return nil
	case "table4":
		return table4(r)
	case "table5":
		return table5(r)
	case "fig4":
		b, err := pick(params.BTS3)
		if err != nil {
			return err
		}
		return fig4(r, b)
	case "fig5":
		return figStream(r, params.BTS3, "Figure 5: BTS3 runtime, evk streamed vs on-chip")
	case "fig6":
		return figStream(r, params.ARK, "Figure 6: ARK runtime, evk streamed vs on-chip")
	case "fig7":
		return fig7(r)
	case "fig8":
		b, err := pick(params.ARK)
		if err != nil {
			return err
		}
		return fig8(r, b)
	case "fig9":
		return fig9(r)
	case "ablate-keycomp":
		return keycomp(r)
	case "memory":
		b, err := pick(params.BTS3)
		if err != nil {
			return err
		}
		return memorySweep(b)
	case "ablate-ocf":
		return ocf(r)
	case "roofline":
		for _, bw := range []float64{8, 64, 256} {
			rows, err := r.Roofline(bw)
			if err != nil {
				return err
			}
			fmt.Print(analysis.FormatRoofline(bw, rows))
			fmt.Println()
		}
		return nil
	case "area":
		fmt.Print(analysis.AreaSummary())
		return nil
	case "throughput":
		rot := 0
		if *fl.hoisted {
			if *fl.rotations < 2 {
				return fmt.Errorf("-hoisted needs -rotations >= 2, got %d", *fl.rotations)
			}
			rot = *fl.rotations
		}
		return throughput(*fl.dfName, *fl.workers, *fl.requests, *fl.logN, *fl.towers, *fl.dnum, rot,
			*fl.jsonPath, *fl.profile, *fl.tracePath, *fl.pprofDir)
	case "serve":
		if *fl.workloadName != "fanout" {
			// Schedule-DAG replay: the dependency-aware client drives
			// the service with a generated bootstrap/matvec schedule
			// instead of independent fan-out bursts.
			// Only bootstrap inherits the BTS set's digit count when
			// -dnum is left unset; other shapes keep the flag default.
			dnum := *fl.dnum
			if *fl.workloadName == "bootstrap" {
				dnum = flagDnum(fl)
			}
			cfg := workloadConfig{
				workload:  *fl.workloadName,
				bts:       *fl.bts,
				radix:     *fl.radix,
				dfName:    *fl.dfName,
				logN:      *fl.logN,
				towers:    *fl.towers,
				dnum:      dnum,
				workers:   *fl.workers,
				rotations: *fl.rotations,
				giants:    *fl.requests,
				keyBudget: *fl.keyBudget,
				maxBatch:  *fl.maxBatch,
				window:    *fl.window,
			}
			return workloadCmd(cfg, *fl.jsonPath, *fl.check)
		}
		cfg := serveConfig{
			dfName:    *fl.dfName,
			clients:   *fl.clients,
			rps:       *fl.rps,
			rotations: *fl.rotations,
			ops:       *fl.requests,
			logN:      *fl.logN,
			towers:    *fl.towers,
			dnum:      *fl.dnum,
			workers:   *fl.workers,
			rotPool:   *fl.rotPool,
			tenants:   *fl.tenants,
			levels:    *fl.levels,
			keyBudget: *fl.keyBudget,
			keyComp:   *fl.keyComp,
			maxBatch:  *fl.maxBatch,
			window:    *fl.window,
		}
		return serveCmd(cfg, *fl.jsonPath, *fl.check, *fl.profile, *fl.tracePath, *fl.pprofDir)
	case "schedule":
		return scheduleCmd(r, *fl.workloadName, *fl.bts, *fl.radix,
			*fl.rotations, *fl.requests, *fl.jsonPath, *fl.exportPath, *fl.importPath, *fl.dotPath)
	case "shard":
		return shardCmd(shardConfig{
			addr:      *fl.addr,
			tenants:   *fl.tenants,
			logN:      *fl.logN,
			towers:    *fl.towers,
			dnum:      *fl.dnum,
			workers:   *fl.workers,
			keyBudget: *fl.keyBudget,
			maxBatch:  *fl.maxBatch,
			window:    *fl.window,
			profile:   *fl.profile,
		})
	case "router":
		return routerCmd(routerConfig{
			shardAddrs: *fl.shardAddrs,
			replicas:   *fl.replicas,
			logN:       *fl.logN,
			towers:     *fl.towers,
			dnum:       *fl.dnum,
		})
	case "cluster":
		wl := *fl.workloadName
		if wl == "fanout" {
			// The cluster experiment always replays a schedule DAG;
			// bootstrap is its canonical shape.
			wl = "bootstrap"
		}
		dnum := *fl.dnum
		if wl == "bootstrap" {
			dnum = flagDnum(fl)
		}
		return clusterCmd(clusterConfig{
			shards:    *fl.shards,
			tenants:   *fl.tenants,
			replicas:  *fl.replicas,
			kill:      *fl.kill,
			workload:  wl,
			bts:       *fl.bts,
			radix:     *fl.radix,
			dfName:    *fl.dfName,
			rotations: *fl.rotations,
			giants:    *fl.requests,
			logN:      *fl.logN,
			towers:    *fl.towers,
			dnum:      dnum,
			workers:   *fl.workers,
			keyBudget: *fl.keyBudget,
			maxBatch:  *fl.maxBatch,
			window:    *fl.window,
			profile:   *fl.profile,
		}, *fl.jsonPath, *fl.check)
	case "perfgate":
		return perfgate(perfgateConfig{
			Baseline:         *fl.baseline,
			Fresh:            *fl.freshPath,
			MaxRegression:    *fl.maxRegression,
			ServeBaseline:    *fl.serveBaseline,
			ServeFresh:       *fl.serveFresh,
			WorkloadBaseline: *fl.workloadBaseline,
			WorkloadFresh:    *fl.workloadFresh,
			ScenarioBaseline: *fl.scenarioBaseline,
			ScenarioFresh:    *fl.scenarioFresh,
			ClusterBaseline:  *fl.clusterBaseline,
			ClusterFresh:     *fl.clusterFresh,
		})
	case "all":
		fmt.Print(analysis.FormatTableIII())
		fmt.Println()
		for _, f := range []func(*analysis.Runner) error{table2, table4, table5, fig7, fig9, keycomp, ocf} {
			if err := f(r); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, b := range params.All() {
			if err := fig4(r, b); err != nil {
				return err
			}
			fmt.Println()
		}
		if err := figStream(r, params.BTS3, "Figure 5: BTS3 runtime, evk streamed vs on-chip"); err != nil {
			return err
		}
		fmt.Println()
		if err := figStream(r, params.ARK, "Figure 6: ARK runtime, evk streamed vs on-chip"); err != nil {
			return err
		}
		fmt.Println()
		if err := fig8(r, params.ARK); err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(analysis.AreaSummary())
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (try: ciflow help)", verb)
	}
}

// csvMode switches the output format of the experiments that support
// CSV emission.
var csvMode bool

// writeJSONReport writes one experiment's report (indented JSON) to
// path and confirms it on stdout — the shared tail of every verb with
// a -json flag.
func writeJSONReport(path string, rep any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func table2(r *analysis.Runner) error {
	rows, err := r.TableII()
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteTableIICSV(os.Stdout, rows)
	}
	fmt.Print(analysis.FormatTableII(rows))
	return nil
}

func memorySweep(b params.Benchmark) error {
	sizes := []int64{8, 16, 32, 64, 128, 256, 512, 1024}
	pts, err := analysis.MemorySweep(b, sizes)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteMemoryCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatMemory(b, pts))
	return nil
}

func table4(r *analysis.Runner) error {
	rows, err := r.TableIV()
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteTableIVCSV(os.Stdout, rows)
	}
	fmt.Print(analysis.FormatTableIV(rows))
	return nil
}

func table5(r *analysis.Runner) error {
	rows, err := r.TableV()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatTableV(rows))
	return nil
}

func fig4(r *analysis.Runner, b params.Benchmark) error {
	bws := analysis.StdBandwidthsGBs
	if b.Name == "ARK" || b.Name == "BTS3" {
		bws = analysis.ExtBandwidthsGBs // the paper extends these two to 1 TB/s
	}
	pts, err := r.Figure4(b, bws)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteSweepCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatSweep(
		fmt.Sprintf("Figure 4 (%s): HKS runtime vs off-chip bandwidth, evk on-chip", b.Name), pts))
	return nil
}

func figStream(r *analysis.Runner, b params.Benchmark, title string) error {
	pts, err := r.FigureStream(b, analysis.ExtBandwidthsGBs)
	if err != nil {
		return err
	}
	if csvMode {
		return analysis.WriteStreamCSV(os.Stdout, pts)
	}
	fmt.Print(analysis.FormatStream(title, pts))
	return nil
}

func fig7(r *analysis.Runner) error {
	rows, err := r.Figure7()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure7(rows))
	return nil
}

func fig8(r *analysis.Runner, b params.Benchmark) error {
	pts, err := r.Figure8(b, analysis.ExtBandwidthsGBs)
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure8(
		fmt.Sprintf("Figure 8 (%s): OC runtime at 1-16x MODOPS, evk on-chip", b.Name), pts))
	return nil
}

func fig9(r *analysis.Runner) error {
	sat, base, err := r.Figure9()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatFigure9(sat, base))
	return nil
}

func ocf(r *analysis.Runner) error {
	rows, err := r.AblationOCF()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatOCF(rows))
	return nil
}

func keycomp(r *analysis.Runner) error {
	rows, err := r.AblationKeyCompression()
	if err != nil {
		return err
	}
	fmt.Print(analysis.FormatKeyCompression(rows))
	return keycompMeasured()
}

// keycompMeasured generates one real evaluation key and reports the
// two resident footprints the serving cache accounts — the model rows
// above say what compression buys at accelerator scale; these numbers
// are what the hks types deliver in this process (seed-compressed
// a-halves, dense b-halves).
func keycompMeasured() error {
	rg, err := ring.NewRingGenerated(1<<10, 6, 40, 3, 41)
	if err != nil {
		return err
	}
	sw, err := hks.NewSwitcher(rg, rg.NumQ-1, 3)
	if err != nil {
		return err
	}
	s := ring.NewSampler(rg, 1)
	full := rg.DBasis(rg.NumQ - 1)
	evk := sw.GenEvk(s, s.Ternary(full), s.Ternary(full))
	comp, ok := evk.Compress()
	if !ok {
		return fmt.Errorf("generated evk carries no seeds to compress")
	}
	dense, compressed := evk.SizeBytes(), comp.SizeBytes()
	fmt.Printf("Measured (N=%d, %d towers, dnum=%d): dense evk %.2f MiB, compressed %.2f MiB (%.2fx)\n",
		rg.N, len(sw.DBasis()), sw.Dnum,
		float64(dense)/(1<<20), float64(compressed)/(1<<20), float64(dense)/float64(compressed))
	return nil
}
