package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ciflow/internal/workload"
)

// TestMain lets the test binary stand in for the ciflow executable
// when the cluster experiment re-execs itself as shard backends:
// `clusterRun` spawns os.Executable() with "shard" as the first
// argument, which in a test process is this binary.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		if err := run(os.Args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "ciflow:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// tinyClusterConfig is the smallest real fabric: 2 shard processes,
// 2 tenants, the radix-16 bootstrap schedule on a 32-degree ring.
func tinyClusterConfig() clusterConfig {
	return clusterConfig{
		shards: 2, tenants: 2, replicas: 1,
		workload: "bootstrap", bts: 2, radix: 16,
		dfName: "mp", logN: 5, towers: 4, dnum: 2, workers: 2,
		window: time.Millisecond,
	}
}

func TestClusterExperiment(t *testing.T) {
	rep, err := clusterRun(tinyClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := clusterCheck(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Drained != -1 {
		t.Fatalf("drained shard %d without -kill", rep.Drained)
	}
	total := uint64(rep.Tenants) * uint64(rep.Predicted.Switches)
	if rep.Served != total || rep.Delivered != total {
		t.Fatalf("served %d, delivered %d, want %d each", rep.Served, rep.Delivered, total)
	}
	if len(rep.PerShard) != 2 {
		t.Fatalf("per-shard rows %d, want 2", len(rep.PerShard))
	}
	for _, s := range rep.PerShard {
		if s.State != "live" {
			t.Fatalf("shard %d state %q, want live", s.Shard, s.State)
		}
	}
}

func TestClusterExperimentKill(t *testing.T) {
	cfg := tinyClusterConfig()
	cfg.shards, cfg.kill = 3, true
	rep, err := clusterRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := clusterCheck(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Drained < 0 {
		t.Fatal("no shard drained despite -kill")
	}
	for _, s := range rep.PerShard {
		want := "live"
		if s.Shard == rep.Drained {
			want = "drained"
		}
		if s.State != want {
			t.Fatalf("shard %d state %q, want %q", s.Shard, s.State, want)
		}
	}
}

func TestClusterCmdJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := clusterCmd(tinyClusterConfig(), path, true); err != nil {
		t.Fatal(err)
	}
	rep, err := readClusterReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != 2 || rep.Tenants != 2 || !rep.ShardSumExact || !rep.BitExact {
		t.Fatalf("report from disk: %+v", rep)
	}
}

func TestClusterConfigErrors(t *testing.T) {
	for name, mut := range map[string]func(*clusterConfig){
		"zero shards":   func(c *clusterConfig) { c.shards = 0 },
		"zero tenants":  func(c *clusterConfig) { c.tenants = 0 },
		"kill solo":     func(c *clusterConfig) { c.shards, c.kill = 1, true },
		"fanout":        func(c *clusterConfig) { c.workload = "fanout" },
		"bad workload":  func(c *clusterConfig) { c.workload = "nope" },
		"bad logn":      func(c *clusterConfig) { c.logN = 2 },
		"dnum > towers": func(c *clusterConfig) { c.dnum = 99 },
		"bad bts":       func(c *clusterConfig) { c.bts = 9 },
	} {
		cfg := tinyClusterConfig()
		mut(&cfg)
		if _, err := clusterRun(cfg); err == nil {
			t.Errorf("%s: clusterRun accepted %+v", name, cfg)
		}
	}
	if err := routerCmd(routerConfig{logN: 5, towers: 4, dnum: 2}); err == nil ||
		!strings.Contains(err.Error(), "shardaddrs") {
		t.Errorf("router without -shardaddrs: %v", err)
	}
	if err := shardCmd(shardConfig{tenants: 0, logN: 5, towers: 4, dnum: 2}); err == nil {
		t.Error("shard accepted zero tenants")
	}
}

// goodClusterReport is a self-consistent report that passes
// clusterCheck: 2 tenants x the 13-switch radix-16 bootstrap.
func goodClusterReport() clusterReport {
	return clusterReport{
		N: 32, Towers: 4, Dnum: 2, Workers: 2,
		Shards: 2, Tenants: 2, Replicas: 1, Drained: -1,
		Workload: "bootstrap", Radix: 16, Schedule: "bootstrap-r16",
		Predicted: workload.Counts{
			Switches: 13, ModUps: 9, Coalesced: 6, HoistGroups: 2,
		},
		OpsPerSec: 100,
		Served:    26, ModUps: 18, Groups: 18, Coalesced: 12,
		Delivered: 26, CompletedSum: 26,
		ShardSumExact: true, CountsExact: true, BitExact: true,
		HoistCoalescingFactor: 13.0 / 9,
	}
}

func TestPerfgateCluster(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep clusterReport) string {
		path := filepath.Join(dir, name)
		if err := writeJSONReport(path, rep); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", goodClusterReport())

	if err := perfgatePaths("x", "x", 2, "", "", "", "", basePath, ""); err == nil {
		t.Fatal("-cluster-baseline without -cluster-fresh accepted")
	}

	// The cluster gate composes with the main throughput gate, so
	// feed that one a trivially passing pair.
	tBase := filepath.Join(dir, "tbase.json")
	writeReport(t, tBase, &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "MP", OpsPerSec: 100}},
	})
	if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", basePath, basePath); err != nil {
		t.Fatalf("identical cluster reports failed the gate: %v", err)
	}

	bad := map[string]func(*clusterReport){
		"regression":   func(r *clusterReport) { r.OpsPerSec = 1 },
		"sum drift":    func(r *clusterReport) { r.ShardSumExact = false },
		"inexact":      func(r *clusterReport) { r.CountsExact = false },
		"not bitexact": func(r *clusterReport) { r.BitExact = false },
		"dep viol":     func(r *clusterReport) { r.DepViolations = 1 },
		"lost result":  func(r *clusterReport) { r.Delivered = 25 },
		"double count": func(r *clusterReport) { r.CompletedSum = 27 },
		"no coalesce":  func(r *clusterReport) { r.HoistCoalescingFactor = 1 },
		"fewer shards": func(r *clusterReport) { r.Shards = 1 },
		"fewer tenants": func(r *clusterReport) {
			r.Tenants = 1
			r.Served, r.Delivered, r.CompletedSum = 13, 13, 13
			r.ModUps, r.Groups, r.Coalesced = 9, 9, 6
		},
	}
	for name, mut := range bad {
		rep := goodClusterReport()
		mut(&rep)
		p := write(strings.ReplaceAll(name, " ", "_")+".json", rep)
		if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", basePath, p); err == nil {
			t.Errorf("%s: cluster gate passed", name)
		}
	}

	// A baseline that drained a shard pins the -kill half of the gate.
	drainedBase := goodClusterReport()
	drainedBase.Drained = 1
	dPath := write("drained_base.json", drainedBase)
	if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", dPath, basePath); err == nil {
		t.Error("fresh run without a drain passed against a drained baseline")
	}
	if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", dPath, dPath); err != nil {
		t.Errorf("drained pair failed: %v", err)
	}

	if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", dir+"/missing.json", basePath); err == nil {
		t.Error("missing cluster baseline accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := perfgatePaths(tBase, tBase, 2, "", "", "", "", empty, basePath); err == nil {
		t.Error("empty cluster baseline accepted")
	}
}
