package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestRunVerbs(t *testing.T) {
	// Fast verbs run end to end; slower sweeps are covered by the
	// analysis package's own tests.
	for _, args := range [][]string{
		{"table3"},
		{"table2"},
		{"area"},
		{"ablate-keycomp"},
		{"memory", "-bench", "ARK"},
		{"table2", "-csv"},
		{"fig4", "-bench", "DPRIVE"},
		{"fig4", "-bench", "DPRIVE", "-csv"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"fig4", "-bench", "NOPE"},
		{"table2", "-mem", "1"}, // far below any benchmark's minimum
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestThroughputRun(t *testing.T) {
	// Tiny configuration keeps this a smoke test; the hks package
	// owns the exhaustive bit-exactness matrix.
	rep, err := throughputRun("all", 2, 2, 5, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitExact {
		t.Fatal("engine output not bit-exact with serial")
	}
	if len(rep.Results) != 4 { // serial + MP + DC + OC
		t.Fatalf("got %d result rows, want 4", len(rep.Results))
	}
	for _, row := range rep.Results {
		if row.OpsPerSec <= 0 || row.P50Ms < 0 || row.P99Ms < row.P50Ms {
			t.Fatalf("implausible row %+v", row)
		}
	}
	if rep.Hoisted != nil {
		t.Fatal("hoisted section present without -hoisted")
	}
}

func TestThroughputRunHoisted(t *testing.T) {
	rep, err := throughputRun("mp", 2, 2, 5, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hr := rep.Hoisted
	if hr == nil {
		t.Fatal("missing hoisted section")
	}
	if !hr.BitExact {
		t.Fatal("hoisted outputs not bit-exact with per-rotation")
	}
	if hr.Rotations != 3 || len(hr.Results) != 2 { // serial + MP
		t.Fatalf("unexpected hoisted shape: %+v", hr)
	}
	if hr.ModelOpsSaved != 2*hr.ModUpModOps {
		t.Fatalf("model ops saved %d, want (k-1)*ModUp = %d", hr.ModelOpsSaved, 2*hr.ModUpModOps)
	}
	if hr.ModelSpeedup <= 1 || hr.ModelSavedFrac <= 0 || hr.ModelSavedFrac >= 1 {
		t.Fatalf("implausible model: %+v", hr)
	}
	for _, row := range hr.Results {
		if row.PerRotOpsPerSec <= 0 || row.HoistedOpsPerSec <= 0 || row.MeasuredSpeedup <= 0 {
			t.Fatalf("implausible hoisted row %+v", row)
		}
		// The hoisted-never-loses invariant is gated by perfgate on
		// bench-scale runs; at this noise-scale configuration (N=32,
		// 2 requests) asserting it would be timing-flaky.
	}
}

func TestThroughputVerb(t *testing.T) {
	jsonPath := t.TempDir() + "/bench.json"
	args := []string{"throughput", "-dataflow", "oc", "-workers", "2",
		"-requests", "2", "-logn", "5", "-towers", "4", "-dnum", "2",
		"-json", jsonPath}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	if _, err := os.Stat(jsonPath); err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
}

func TestThroughputErrors(t *testing.T) {
	for _, args := range [][]string{
		{"throughput", "-dataflow", "nope", "-logn", "5"},
		{"throughput", "-requests", "0", "-logn", "5"},
		{"throughput", "-logn", "3"},
		{"throughput", "-logn", "5", "-towers", "4", "-dnum", "9"},
		{"throughput", "-logn", "5", "-towers", "4", "-dnum", "2", "-hoisted", "-rotations", "1"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func writeReport(t *testing.T, path string, rep *throughputReport) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(rep); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfgate(t *testing.T) {
	dir := t.TempDir()
	base := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 100},
			{Dataflow: "MP", OpsPerSec: 120},
		},
	}
	basePath := dir + "/base.json"
	writeReport(t, basePath, base)

	// Within tolerance (half the baseline exactly is still allowed at 2.01x).
	ok := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 51},
			{Dataflow: "MP", OpsPerSec: 300},
			{Dataflow: "OC", OpsPerSec: 10}, // new dataflow: no baseline, no gate
		},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "MP", MeasuredSpeedup: 1.2}}},
	}
	okPath := dir + "/ok.json"
	writeReport(t, okPath, ok)
	if err := perfgate(basePath, okPath, 2); err != nil {
		t.Fatalf("perfgate failed on healthy report: %v", err)
	}

	// Gross regression on one dataflow.
	bad := &throughputReport{
		BitExact: true,
		Results: []throughputRow{
			{Dataflow: "serial", OpsPerSec: 99},
			{Dataflow: "MP", OpsPerSec: 10},
		},
	}
	badPath := dir + "/bad.json"
	writeReport(t, badPath, bad)
	if err := perfgate(basePath, badPath, 2); err == nil {
		t.Fatal("perfgate passed a >2x regression")
	}

	// Hoisting losing to per-rotation must fail regardless of speed.
	slowHoist := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 200}},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "serial", MeasuredSpeedup: 0.9}}},
	}
	slowPath := dir + "/slow.json"
	writeReport(t, slowPath, slowHoist)
	if err := perfgate(basePath, slowPath, 2); err == nil {
		t.Fatal("perfgate passed a hoisted slowdown")
	}

	// A baseline with a hoisted section pins it in the fresh report.
	hoistedBase := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
		Hoisted: &hoistedReport{BitExact: true, ModelSpeedup: 1.4,
			Results: []hoistedRow{{Dataflow: "serial", MeasuredSpeedup: 1.5}}},
	}
	hoistedBasePath := dir + "/hoisted_base.json"
	writeReport(t, hoistedBasePath, hoistedBase)
	noHoist := &throughputReport{
		BitExact: true,
		Results:  []throughputRow{{Dataflow: "serial", OpsPerSec: 100}},
	}
	noHoistPath := dir + "/no_hoist.json"
	writeReport(t, noHoistPath, noHoist)
	if err := perfgate(hoistedBasePath, noHoistPath, 2); err == nil {
		t.Fatal("perfgate passed a fresh report that dropped the hoisted section")
	}

	// Non-bit-exact fresh reports are rejected outright.
	inexact := &throughputReport{
		Results: []throughputRow{{Dataflow: "serial", OpsPerSec: 500}},
	}
	inexactPath := dir + "/inexact.json"
	writeReport(t, inexactPath, inexact)
	if err := perfgate(basePath, inexactPath, 2); err == nil {
		t.Fatal("perfgate passed a non-bit-exact report")
	}
}

func TestPerfgateErrors(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.json"
	writeReport(t, good, &throughputReport{BitExact: true,
		Results: []throughputRow{{Dataflow: "serial", OpsPerSec: 1}}})
	if err := perfgate(dir+"/missing.json", good, 2); err == nil {
		t.Error("missing baseline accepted")
	}
	if err := perfgate(good, dir+"/missing.json", 2); err == nil {
		t.Error("missing fresh report accepted")
	}
	if err := perfgate(good, good, 0.5); err == nil {
		t.Error("tolerance below 1 accepted")
	}
	empty := dir + "/empty.json"
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := perfgate(empty, good, 2); err == nil {
		t.Error("empty baseline accepted")
	}
}
