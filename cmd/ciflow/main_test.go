package main

import "testing"

func TestRunVerbs(t *testing.T) {
	// Fast verbs run end to end; slower sweeps are covered by the
	// analysis package's own tests.
	for _, args := range [][]string{
		{"table3"},
		{"table2"},
		{"area"},
		{"ablate-keycomp"},
		{"memory", "-bench", "ARK"},
		{"table2", "-csv"},
		{"fig4", "-bench", "DPRIVE"},
		{"fig4", "-bench", "DPRIVE", "-csv"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus"},
		{"fig4", "-bench", "NOPE"},
		{"table2", "-mem", "1"}, // far below any benchmark's minimum
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
